/**
 * @file
 * Differential / metamorphic fidelity runner (docs/verification.md).
 *
 * Each pair runs two configurations that must be stat-identical and
 * diffs every timing-visible field of their RunResults:
 *
 *   degree0  degree-0 Triage vs the no-prefetcher baseline (a disabled
 *            prefetcher must not perturb timing);
 *   mix1     a 1-program mix on the multi-core system vs the same
 *            benchmark on the single-core system;
 *   split    trace replay split at arbitrary record boundaries vs the
 *            unsplit trace;
 *   jobs     a sweep executed on a parallel lab (--jobs=N) vs the same
 *            sweep run serially;
 *   ckpt     a run forked from a memoized warm-state checkpoint vs the
 *            same run warming up cold (single-core and 2-core mix);
 *   threaded a Sharded-mode mix on N worker threads vs the same mix on
 *            one thread (sharded results are thread-count invariant);
 *   stream   a trace replayed through the streaming frontend (bounded
 *            memory, plus a gzip leg and a warm-checkpoint fork) vs
 *            the same trace fully loaded in memory.
 *
 * Exit status 0 iff every selected pair matches; mismatching fields
 * are printed one per line.
 */
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <cstdlib>

#include "exec/checkpoint.hpp"
#include "exec/job.hpp"
#include "exec/lab.hpp"
#include "frontend/frontend.hpp"
#include "sim/config.hpp"
#include "verify/diff.hpp"
#include "workloads/chain.hpp"
#include "workloads/spec.hpp"
#include "workloads/trace_io.hpp"

namespace {

using namespace triage;

struct Options {
    std::string pair = "all";
    std::string benchmark = "mcf";
    std::uint64_t warmup = 100000;
    std::uint64_t measure = 400000;
    std::uint32_t degree = 4;
    unsigned jobs = 4;
    bool smoke = false;
};

void
usage(const char* argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --pair=P        degree0 | mix1 | split | jobs | ckpt | "
        "threaded | stream | all (default all)\n"
        "  --benchmark=B   benchmark analog (default mcf)\n"
        "  --warmup=N      warmup records per run (default 100000)\n"
        "  --measure=N     measured records per run (default 400000)\n"
        "  --degree=N      prefetch degree for the Triage runs "
        "(default 4)\n"
        "  --jobs=N        parallel worker count for the jobs pair "
        "(default 4)\n"
        "  --smoke         quarter-size windows (CI)\n",
        argv0);
}

bool
parse(int argc, char** argv, Options& o)
{
    auto val = [](const char* arg, const char* name) -> const char* {
        std::size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (const char* v = val(a, "--pair"))
            o.pair = v;
        else if (const char* v = val(a, "--benchmark"))
            o.benchmark = v;
        else if (const char* v = val(a, "--warmup"))
            o.warmup = std::strtoull(v, nullptr, 10);
        else if (const char* v = val(a, "--measure"))
            o.measure = std::strtoull(v, nullptr, 10);
        else if (const char* v = val(a, "--degree"))
            o.degree = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 10));
        else if (const char* v = val(a, "--jobs"))
            o.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (std::strcmp(a, "--smoke") == 0)
            o.smoke = true;
        else if (std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", a);
            usage(argv[0]);
            return false;
        }
    }
    if (o.smoke) {
        o.warmup /= 4;
        o.measure /= 4;
    }
    return true;
}

/** Print a pair verdict; @return true on a clean diff. */
bool
report(const std::string& name, const std::vector<std::string>& diff)
{
    if (diff.empty()) {
        std::printf("PASS %s\n", name.c_str());
        return true;
    }
    std::printf("FAIL %s (%zu differing fields)\n", name.c_str(),
                diff.size());
    for (const auto& line : diff)
        std::printf("  %s\n", line.c_str());
    return false;
}

exec::Job
base_job(const Options& o)
{
    exec::Job j;
    j.benchmark = o.benchmark;
    j.scale.warmup_records = o.warmup;
    j.scale.measure_records = o.measure;
    return j;
}

/** Degree-0 Triage must be timing-identical to no prefetcher at all. */
bool
pair_degree0(const Options& o)
{
    exec::Job baseline = base_job(o);
    baseline.pf_spec = "none";
    exec::Job disabled = base_job(o);
    disabled.pf_spec = "triage_dyn";
    disabled.degree = 0;
    return report("degree0",
                  verify::diff_results(exec::run_job(baseline),
                                       exec::run_job(disabled)));
}

/** A 1-program mix has no co-runners: it must match single-core. */
bool
pair_mix1(const Options& o)
{
    exec::Job single = base_job(o);
    single.pf_spec = "triage_dyn";
    single.degree = o.degree;
    exec::Job mix = single;
    mix.benchmark.clear();
    mix.mix = {o.benchmark};
    return report("mix1", verify::diff_results(exec::run_job(single),
                                               exec::run_job(mix)));
}

/** Replay split at a record boundary must match the unsplit replay. */
bool
pair_split(const Options& o)
{
    // Record a trace prefix long enough to cover the run (the replay
    // wraps at EOF either way, and the wrap point must line up).
    auto src = workloads::make_benchmark(o.benchmark);
    std::vector<sim::TraceRecord> records;
    records.reserve(o.measure / 2);
    sim::TraceRecord r;
    src->reset();
    for (std::uint64_t i = 0; i < o.measure / 2 && src->next(r); ++i)
        records.push_back(r);

    auto job_for = [&](std::size_t cut) {
        exec::Job j = base_job(o);
        j.benchmark.clear();
        j.pf_spec = "triage_dyn";
        j.degree = o.degree;
        j.variant = cut == 0 ? std::string("trace:whole")
                             : "trace:split@" + std::to_string(cut);
        j.workload_factory = [&records, cut]() {
            if (cut == 0) {
                return std::unique_ptr<sim::Workload>(
                    std::make_unique<sim::VectorWorkload>("trace",
                                                          records));
            }
            std::vector<std::unique_ptr<sim::Workload>> parts;
            parts.push_back(std::make_unique<sim::VectorWorkload>(
                "trace.a", std::vector<sim::TraceRecord>(
                               records.begin(),
                               records.begin() +
                                   static_cast<std::ptrdiff_t>(cut))));
            parts.push_back(std::make_unique<sim::VectorWorkload>(
                "trace.b", std::vector<sim::TraceRecord>(
                               records.begin() +
                                   static_cast<std::ptrdiff_t>(cut),
                               records.end())));
            return std::unique_ptr<sim::Workload>(
                std::make_unique<workloads::ChainWorkload>(
                    "trace", std::move(parts)));
        };
        return j;
    };

    const sim::RunResult whole = exec::run_job(job_for(0));
    // Deliberately awkward boundaries: first record, a non-round prime
    // fraction, and last record.
    std::vector<std::size_t> cuts = {1, records.size() * 5 / 13,
                                     records.size() - 1};
    bool ok = true;
    for (std::size_t cut : cuts) {
        ok &= report("split@" + std::to_string(cut),
                     verify::diff_results(whole,
                                          exec::run_job(job_for(cut))));
    }
    return ok;
}

/** A parallel lab must reproduce the serial lab bit for bit. */
bool
pair_jobs(const Options& o)
{
    const std::vector<std::string> specs = {"none", "bo", "triage_dyn"};
    auto sweep = [&](unsigned workers) {
        exec::Lab lab(exec::LabOptions{workers});
        std::vector<exec::Lab::JobId> ids;
        for (const auto& spec : specs) {
            for (std::uint32_t d : {1u, o.degree}) {
                exec::Job j = base_job(o);
                j.pf_spec = spec;
                j.degree = d;
                ids.push_back(lab.submit(std::move(j)));
            }
        }
        std::vector<sim::RunResult> out;
        out.reserve(ids.size());
        for (auto id : ids)
            out.push_back(lab.result(id));
        return out;
    };
    const auto serial = sweep(1);
    const auto parallel = sweep(o.jobs);
    bool ok = true;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ok &= report("jobs[" + std::to_string(i) + "]",
                     verify::diff_results(serial[i], parallel[i]));
    }
    return ok;
}

/**
 * A measurement forked from a memoized warm checkpoint must be
 * bit-identical to one that warmed up cold in the same process.
 * Covers both system kinds: a single-core run and a 2-core mix. Each
 * sub-pair runs three times — cold (no store), producing (cold warmup
 * + snapshot publish), and forked (restore from the published blob) —
 * and both store-backed runs must match the cold one.
 */
bool
pair_ckpt(const Options& o)
{
    bool ok = true;
    auto check = [&](const char* name, exec::Job j) {
        const sim::RunResult cold = exec::run_job(j);
        exec::CheckpointStore store; // memory tier only
        const sim::RunResult produced = exec::run_job(j, &store);
        const sim::RunResult forked = exec::run_job(j, &store);
        ok &= report(std::string("ckpt-produce-") + name,
                     verify::diff_results(cold, produced));
        ok &= report(std::string("ckpt-fork-") + name,
                     verify::diff_results(cold, forked));
        const auto st = store.stats();
        if (st.misses != 1 || st.mem_hits != 1) {
            std::printf("FAIL ckpt-stats-%s (misses=%llu mem_hits=%llu, "
                        "want 1/1)\n",
                        name,
                        static_cast<unsigned long long>(st.misses),
                        static_cast<unsigned long long>(st.mem_hits));
            ok = false;
        }
    };

    exec::Job single = base_job(o);
    single.pf_spec = "triage_dyn";
    single.degree = o.degree;
    check("single", single);

    exec::Job mix = base_job(o);
    mix.benchmark.clear();
    mix.mix = {o.benchmark, "omnetpp"};
    mix.pf_spec = "triage_dyn";
    mix.degree = o.degree;
    check("mix2", mix);
    return ok;
}

/** Sharded measurement must be bit-identical for any thread count. */
bool
pair_threaded(const Options& o)
{
    exec::Job j = base_job(o);
    j.benchmark.clear();
    // Core counts stay powers of two so the scaled LLC keeps a pow2
    // set count (the paper's mixes are 2/4/8/16-core for this reason).
    j.mix = {o.benchmark, "omnetpp", "bwaves", "sphinx3"};
    j.pf_spec = "triage_dyn";
    j.degree = o.degree;
    j.exec_mode = sim::ExecMode::Sharded;

    j.threads = 1;
    const sim::RunResult serial = exec::run_job(j);
    bool ok = true;
    for (unsigned t : {2u, 3u}) {
        j.threads = t;
        ok &= report("threaded[x" + std::to_string(t) + "]",
                     verify::diff_results(serial, exec::run_job(j)));
    }
    return ok;
}

/**
 * A trace replayed through the streaming frontend must be
 * stat-identical to the same trace fully loaded into memory — the
 * bounded-memory path changes nothing observable. Extra legs: the
 * same replay from a gzip-compressed copy (skipped when the gzip tool
 * is unavailable), and a streamed run forked from a warm checkpoint
 * vs the cold streamed run (the skip()-based cursor restore).
 */
bool
pair_stream(const Options& o)
{
    const std::string path = "diff_fidelity_stream.tria";
    {
        auto src = workloads::make_benchmark(o.benchmark);
        const std::uint64_t n = o.warmup + o.measure;
        if (workloads::save_trace(path, *src, n) != n) {
            std::printf("FAIL stream (cannot record %s)\n",
                        path.c_str());
            return false;
        }
    }

    exec::Job streamed = base_job(o);
    streamed.benchmark = "trace:" + path;
    streamed.pf_spec = "triage_dyn";
    streamed.degree = o.degree;

    exec::Job loaded = base_job(o);
    loaded.benchmark.clear();
    loaded.pf_spec = "triage_dyn";
    loaded.degree = o.degree;
    loaded.variant = "inmem:" + path;
    loaded.workload_factory = [path] {
        return workloads::load_trace(path);
    };

    const sim::RunResult mem = exec::run_job(loaded);
    bool ok = report("stream-vs-inmem",
                     verify::diff_results(mem, exec::run_job(streamed)));

    {
        // Warm-checkpoint fork on the streamed workload: produce then
        // restore, both matching the in-memory reference.
        exec::CheckpointStore store;
        ok &= report("stream-ckpt-produce",
                     verify::diff_results(
                         mem, exec::run_job(streamed, &store)));
        ok &= report("stream-ckpt-fork",
                     verify::diff_results(
                         mem, exec::run_job(streamed, &store)));
    }

    if (std::system(("gzip -kf " + path + " 2>/dev/null").c_str()) == 0) {
        exec::Job gz = streamed;
        gz.benchmark = "trace:" + path + ".gz";
        ok &= report("stream-gz",
                     verify::diff_results(mem, exec::run_job(gz)));
        std::remove((path + ".gz").c_str());
    } else {
        std::printf("SKIP stream-gz (gzip unavailable)\n");
    }
    std::remove(path.c_str());
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    Options o;
    if (!parse(argc, argv, o))
        return 2;
    bool ok = true;
    const bool all = o.pair == "all";
    if (all || o.pair == "degree0")
        ok &= pair_degree0(o);
    if (all || o.pair == "mix1")
        ok &= pair_mix1(o);
    if (all || o.pair == "split")
        ok &= pair_split(o);
    if (all || o.pair == "jobs")
        ok &= pair_jobs(o);
    if (all || o.pair == "ckpt")
        ok &= pair_ckpt(o);
    if (all || o.pair == "threaded")
        ok &= pair_threaded(o);
    if (all || o.pair == "stream")
        ok &= pair_stream(o);
    if (!all && o.pair != "degree0" && o.pair != "mix1" &&
        o.pair != "split" && o.pair != "jobs" && o.pair != "ckpt" &&
        o.pair != "threaded" && o.pair != "stream") {
        std::fprintf(stderr, "unknown pair: %s\n", o.pair.c_str());
        return 2;
    }
    std::printf("%s\n", ok ? "all pairs identical" : "DIVERGENCE");
    return ok ? 0 : 1;
}
