/**
 * @file
 * Randomized configuration / trace fuzz driver for the invariant
 * harness (docs/verification.md). Each iteration draws a machine
 * configuration from a curated pow2-safe space, a prefetcher spec and
 * a benchmark, runs a short window with an InvariantSuite attached,
 * and fails on any invariant violation. A trace save/load round-trip
 * with a random record count rides along, as does a warm-snapshot
 * round-trip: a randomly configured, randomly warmed system must
 * resave byte-identically after restore, and the sealed blob must be
 * rejected under a flipped byte, a wrong version, or a mismatched
 * fingerprint. Each iteration also coin-flips the SIMD set-probe
 * dispatch (util/simd_probe.hpp) between the resolved vector kernels
 * and the forced-scalar path, so the flat maps and probe tables
 * inside the fuzzed components run under both code paths with the
 * invariant suite attached. Intended for the CI verify job under
 * ASan/UBSan (fixed --seed; --smoke shrinks the windows).
 */
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/job.hpp"
#include "sim/config.hpp"
#include "sim/snapshot.hpp"
#include "sim/system.hpp"
#include "stats/experiment.hpp"
#include "util/rng.hpp"
#include "util/simd_probe.hpp"
#include "verify/invariants.hpp"
#include "workloads/spec.hpp"
#include "workloads/trace_io.hpp"

namespace {

using namespace triage;

struct Options {
    std::uint64_t seed = 0x7261676521ULL;
    unsigned iters = 8;
    bool smoke = false;
};

bool
parse(int argc, char** argv, Options& o)
{
    auto val = [](const char* arg, const char* name) -> const char* {
        std::size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (const char* v = val(a, "--seed"))
            o.seed = std::strtoull(v, nullptr, 0);
        else if (const char* v = val(a, "--iters"))
            o.iters =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (std::strcmp(a, "--smoke") == 0)
            o.smoke = true;
        else {
            std::fprintf(stderr,
                         "usage: %s [--seed=S] [--iters=N] [--smoke]\n",
                         argv[0]);
            return false;
        }
    }
    return true;
}

/** Draw a machine config from a pow2-safe space of small geometries. */
sim::MachineConfig
random_config(util::Rng& rng)
{
    sim::MachineConfig cfg;
    static const std::uint64_t l1_sizes[] = {16 << 10, 32 << 10,
                                             64 << 10};
    static const std::uint64_t l2_sizes[] = {128 << 10, 256 << 10,
                                             512 << 10};
    static const std::uint64_t llc_sizes[] = {512 << 10, 1 << 20,
                                              2 << 20};
    cfg.l1d.size_bytes = l1_sizes[rng.next_below(3)];
    cfg.l1d.assoc = 1u << rng.next_range(1, 3);
    cfg.l2.size_bytes = l2_sizes[rng.next_below(3)];
    cfg.l2.assoc = 1u << rng.next_range(2, 3);
    cfg.llc.size_bytes = llc_sizes[rng.next_below(3)];
    cfg.llc.assoc = 16; // Triage's way-granular partition assumes 16
    cfg.llc_extra_latency =
        static_cast<std::uint32_t>(rng.next_range(0, 6));
    cfg.l2_mshrs =
        rng.chance(0.5)
            ? 0
            : static_cast<std::uint32_t>(rng.next_range(4, 16));
    cfg.l1_stride_prefetcher = rng.chance(0.75);
    cfg.model_tlb = rng.chance(0.25);
    cfg.dram_prefetch_queue_limit =
        static_cast<std::uint32_t>(rng.next_range(4, 32));
    return cfg;
}

bool
fuzz_run(util::Rng& rng, const Options& o, unsigned iter)
{
    static const char* specs[] = {"none",       "bo",        "markov",
                                  "stms",       "misb",      "triage_512KB",
                                  "triage_dyn", "bo+triage_dyn"};
    static const char* benches[] = {"mcf", "omnetpp", "soplex_k",
                                    "sphinx3", "milc"};
    exec::Job job;
    job.config = random_config(rng);
    job.benchmark = benches[rng.next_below(5)];
    job.pf_spec = specs[rng.next_below(8)];
    job.degree = static_cast<std::uint32_t>(rng.next_range(0, 8));
    job.scale.warmup_records = o.smoke ? 5000 : 20000;
    job.scale.measure_records =
        (o.smoke ? 20000 : 80000) + rng.next_below(10000);
    if (rng.chance(0.3)) {
        job.benchmark.clear();
        job.mix = {benches[rng.next_below(5)],
                   benches[rng.next_below(5)]};
    }

    obs::Observability obs;
    verify::InvariantSuite suite;
    obs.verifier = &suite;
    job.obs = &obs;

    exec::run_job(job);

    std::printf("iter %u: %s / %s degree %u -> %llu checks, "
                "%llu violations\n",
                iter, job.mix.empty() ? job.benchmark.c_str() : "mix2",
                job.pf_spec.c_str(), job.degree,
                static_cast<unsigned long long>(suite.checks_run()),
                static_cast<unsigned long long>(suite.violations()));
    for (const auto& v : suite.recorded())
        std::printf("  [%s] %s\n", v.checker.c_str(),
                    v.message.c_str());
    return suite.violations() == 0;
}

bool
fuzz_trace_roundtrip(util::Rng& rng, unsigned iter)
{
    static const char* benches[] = {"mcf", "lbm", "libquantum"};
    const std::string bench = benches[rng.next_below(3)];
    const std::uint64_t n = rng.next_range(1, 5000);
    const std::string path =
        "fuzz_trace_" + std::to_string(iter) + ".bin";

    auto src = workloads::make_benchmark(bench);
    const std::uint64_t saved = workloads::save_trace(path, *src, n);
    auto loaded = workloads::load_trace(path);
    std::remove(path.c_str());

    src->reset();
    sim::TraceRecord a, b;
    std::uint64_t replayed = 0;
    bool ok = true;
    while (loaded->next(b)) {
        if (!src->next(a)) {
            std::printf("iter %u: trace %s longer than source\n", iter,
                        path.c_str());
            ok = false;
            break;
        }
        if (a.pc != b.pc || a.addr != b.addr ||
            a.is_write != b.is_write ||
            a.nonmem_before != b.nonmem_before ||
            a.dep_distance != b.dep_distance) {
            std::printf("iter %u: trace record %llu diverges after "
                        "round-trip\n",
                        iter,
                        static_cast<unsigned long long>(replayed));
            ok = false;
            break;
        }
        ++replayed;
    }
    if (ok && replayed != saved) {
        std::printf("iter %u: saved %llu records, replayed %llu\n",
                    iter, static_cast<unsigned long long>(saved),
                    static_cast<unsigned long long>(replayed));
        ok = false;
    }
    return ok;
}

/**
 * Warm-snapshot round-trip under a random geometry, prefetcher and
 * warmup length: save(A) -> restore(B) -> save(B) must be byte-equal,
 * and the sealed frame must reject corruption and mismatched
 * version/fingerprint (docs/parallel-runs.md §checkpointing).
 */
bool
fuzz_snapshot_roundtrip(util::Rng& rng, const Options& o, unsigned iter)
{
    static const char* specs[] = {"none",      "bo",     "sms",
                                  "markov",    "stms",   "domino",
                                  "ghb_pcdc",  "misb",   "next_line",
                                  "triage_dyn", "triage_unlimited"};
    static const char* benches[] = {"mcf", "omnetpp", "soplex_k",
                                    "sphinx3", "milc"};
    const sim::MachineConfig cfg = random_config(rng);
    const std::string spec = specs[rng.next_below(11)];
    const std::string bench = benches[rng.next_below(5)];
    const auto degree =
        static_cast<std::uint32_t>(rng.next_range(1, 8));
    const std::uint64_t warm =
        (o.smoke ? 2000 : 10000) + rng.next_below(10000);

    auto build = [&]() {
        auto sys = std::make_unique<sim::SingleCoreSystem>(cfg);
        sys->set_prefetcher(stats::make_prefetcher(spec, degree));
        return sys;
    };
    const std::string fp = spec + "|" + bench + "|warm";

    auto wl_a = workloads::make_benchmark(bench);
    wl_a->reset();
    auto a = build();
    a->bind(*wl_a);
    a->run_warmup(warm);
    sim::Snapshot save;
    a->checkpoint_warm(save);
    const sim::SnapshotBlob blob = save.seal(exec::CKPT_VERSION, fp);

    bool ok = true;
    auto fail = [&](const char* what) {
        std::printf("iter %u: snapshot %s / %s degree %u warm %llu: "
                    "%s\n",
                    iter, bench.c_str(), spec.c_str(), degree,
                    static_cast<unsigned long long>(warm), what);
        ok = false;
    };

    auto wl_b = workloads::make_benchmark(bench);
    wl_b->reset();
    auto b = build();
    b->bind(*wl_b);
    sim::Snapshot load;
    if (!sim::Snapshot::open(blob, exec::CKPT_VERSION, fp, load)) {
        fail("own blob failed to open");
        return false;
    }
    b->checkpoint_warm(load);
    if (!load.exhausted())
        fail("payload not fully consumed on restore");
    sim::Snapshot resave;
    b->checkpoint_warm(resave);
    if (resave.seal(exec::CKPT_VERSION, fp) != blob)
        fail("resave not byte-identical");

    // Every sealed frame rejects tampering and mismatched identity.
    sim::Snapshot probe;
    sim::SnapshotBlob corrupt = blob;
    corrupt[rng.next_below(static_cast<std::uint32_t>(corrupt.size()))] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    if (sim::Snapshot::open(corrupt, exec::CKPT_VERSION, fp, probe))
        fail("accepted a corrupted blob");
    if (sim::Snapshot::open(blob, exec::CKPT_VERSION + 1, fp, probe))
        fail("accepted a mismatched version");
    if (sim::Snapshot::open(blob, exec::CKPT_VERSION, fp + "!", probe))
        fail("accepted a mismatched fingerprint");
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    Options o;
    if (!parse(argc, argv, o))
        return 2;
    util::Rng rng(o.seed);
    bool ok = true;
    for (unsigned i = 0; i < o.iters; ++i) {
        const bool scalar = rng.chance(0.5);
        util::simd::force_scalar(scalar);
        std::printf("iter %u: simd kernel %s\n", i,
                    util::simd::active_kernel());
        ok &= fuzz_run(rng, o, i);
        ok &= fuzz_trace_roundtrip(rng, i);
        ok &= fuzz_snapshot_roundtrip(rng, o, i);
    }
    util::simd::force_scalar(false);
    std::printf("%s\n", ok ? "fuzz clean" : "FUZZ FAILURES");
    return ok ? 0 : 1;
}
