/**
 * @file
 * check_stats_json — validate a triagesim --stats-json report.
 *
 * Exits non-zero (with a message per failure) unless the file is valid
 * JSON with the expected structure:
 *
 *   - "run.cores" is a non-empty array whose entries carry the summary
 *     metrics (ipc, coverage, accuracy, meta_ways);
 *   - with --require-epochs: "epochs" is a non-empty array of closed
 *     epochs with monotonically advancing [begin, end) intervals and
 *     finite values, each carrying the per-epoch IPC / coverage /
 *     accuracy / metadata-hit-rate / way-allocation probes;
 *   - with --require-stats: "stats" is a non-empty object (the
 *     hierarchical registry dump) containing a few load-bearing paths;
 *   - each --require-key=PATH names a dotted path that must exist.
 *
 * Used by the ctest smoke test (tests/CMakeLists.txt) to pin the
 * structured-output contract.
 */
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using triage::obs::json::Value;

namespace {

int g_failures = 0;

void
fail(const std::string& msg)
{
    std::cerr << "FAIL: " << msg << "\n";
    ++g_failures;
}

/** Per-epoch probe keys the acceptance contract requires for core 0. */
const char* const EPOCH_KEYS[] = {
    "core0.ipc",
    "core0.coverage",
    "core0.pf.accuracy",
    "core0.pf.meta_hit_rate",
    "core0.meta_ways",
};

void
check_run(const Value& root)
{
    const Value* cores = root.find_path("run.cores");
    if (cores == nullptr || !cores->is_array() || cores->array.empty()) {
        fail("run.cores missing or empty");
        return;
    }
    for (std::size_t c = 0; c < cores->array.size(); ++c) {
        const Value& core = cores->array[c];
        for (const char* key :
             {"ipc", "coverage", "accuracy", "meta_ways", "cycles"}) {
            const Value* v = core.get(key);
            if (v == nullptr || !v->is_number() ||
                !std::isfinite(v->number)) {
                fail("run.cores[" + std::to_string(c) + "]." + key +
                     " missing or not a finite number");
            }
        }
    }
    const Value* ipc = cores->array[0].get("ipc");
    if (ipc != nullptr && ipc->is_number() && ipc->number <= 0.0)
        fail("run.cores[0].ipc is not positive");
}

void
check_epochs(const Value& root)
{
    const Value* epochs = root.get("epochs");
    if (epochs == nullptr || !epochs->is_array()) {
        fail("epochs missing or not an array");
        return;
    }
    if (epochs->array.empty()) {
        fail("epochs array is empty");
        return;
    }
    double prev_end = -1.0;
    for (std::size_t i = 0; i < epochs->array.size(); ++i) {
        const Value& e = epochs->array[i];
        const std::string tag = "epochs[" + std::to_string(i) + "]";
        const Value* begin = e.get("begin");
        const Value* end = e.get("end");
        if (begin == nullptr || end == nullptr || !begin->is_number() ||
            !end->is_number()) {
            fail(tag + " lacks numeric begin/end");
            continue;
        }
        if (end->number <= begin->number)
            fail(tag + " has end <= begin");
        if (prev_end >= 0.0 && begin->number != prev_end)
            fail(tag + " does not start where the previous epoch ended");
        prev_end = end->number;
        for (const char* key : EPOCH_KEYS) {
            const Value* v = e.get(key);
            if (v == nullptr || !v->is_number() ||
                !std::isfinite(v->number)) {
                fail(tag + " lacks finite probe '" + key + "'");
            }
        }
    }
}

void
check_stats(const Value& root)
{
    const Value* st = root.get("stats");
    if (st == nullptr || !st->is_object() || st->object.empty()) {
        fail("stats missing or empty");
        return;
    }
    for (const char* path :
         {"stats.llc.demand_misses", "stats.dram.total_bytes",
          "stats.core0.ipc", "stats.llc.metadata_ways"}) {
        const Value* v = root.find_path(path);
        if (v == nullptr || !v->is_number())
            fail(std::string(path) + " missing or not a number");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    bool require_epochs = false;
    bool require_stats = false;
    std::vector<std::string> require_keys;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--require-epochs") {
            require_epochs = true;
        } else if (a == "--require-stats") {
            require_stats = true;
        } else if (a.rfind("--require-key=", 0) == 0) {
            require_keys.push_back(a.substr(std::strlen("--require-key=")));
        } else if (!a.empty() && a[0] != '-') {
            path = a;
        } else {
            std::cerr << "usage: check_stats_json FILE [--require-epochs]"
                         " [--require-stats] [--require-key=PATH]...\n";
            return 2;
        }
    }
    if (path.empty()) {
        std::cerr << "check_stats_json: no input file\n";
        return 2;
    }

    std::ifstream f(path);
    if (!f) {
        std::cerr << "check_stats_json: cannot read " << path << "\n";
        return 2;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::string err;
    auto root = triage::obs::json::parse(buf.str(), &err);
    if (!root.has_value()) {
        std::cerr << "check_stats_json: " << path << ": " << err << "\n";
        return 1;
    }

    check_run(*root);
    if (require_epochs)
        check_epochs(*root);
    if (require_stats)
        check_stats(*root);
    for (const auto& key : require_keys) {
        if (root->find_path(key) == nullptr)
            fail("required key '" + key + "' missing");
    }

    if (g_failures > 0) {
        std::cerr << path << ": " << g_failures << " check(s) failed\n";
        return 1;
    }
    std::cout << path << ": OK\n";
    return 0;
}
