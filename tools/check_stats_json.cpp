/**
 * @file
 * check_stats_json — validate a triagesim --stats-json report.
 *
 * Exits non-zero (with a message per failure) unless the file is valid
 * JSON with the expected structure:
 *
 *   - "run.cores" is a non-empty array whose entries carry the summary
 *     metrics (ipc, coverage, accuracy, meta_ways);
 *   - with --require-epochs: "epochs" is a non-empty array of closed
 *     epochs with monotonically advancing [begin, end) intervals and
 *     finite values, each carrying the per-epoch IPC / coverage /
 *     accuracy / metadata-hit-rate / way-allocation probes;
 *   - with --require-stats: "stats" is a non-empty object (the
 *     hierarchical registry dump) containing a few load-bearing paths;
 *   - with --require-lifecycle: "lifecycle" carries one class-count
 *     object per run core, the classes sum exactly to issued, issued
 *     matches run.cores[i].pf_issued, and the top-PC attribution
 *     tables are arrays;
 *   - with --require-partition-timeline: "partition_timeline" is an
 *     object with a numeric "dropped" and one per-core sample array
 *     (possibly empty) of well-formed, epoch-monotonic samples;
 *   - with --require-profile: "profile" is the host profiler block
 *     (backend, wall/attributed seconds, a non-empty phase table with
 *     warmup and measure phases, checkpoint counters, worker rows);
 *     --min-attributed=F additionally requires attributed_frac >= F
 *     and --expect-backend=NAME pins the counter backend
 *     ("perf_event" or "software");
 *   - each --require-key=PATH names a dotted path that must exist.
 *
 * A second mode, --perfetto, validates a --trace-perfetto output
 * instead: "traceEvents" must be a non-empty array of well-formed
 * Chrome trace events containing at least one epoch span and one
 * partition instant; --expect-workers=N additionally requires worker
 * thread-name metadata for at least N lab workers, and
 * --expect-profile requires host-profiler phase slices and at least
 * one hw.* counter sample (pid 4).
 *
 * A third mode, --golden=FILE, compares the input against a checked-in
 * golden dump: every leaf (numbers exact, strings, bools) must match,
 * arrays must have equal lengths and objects equal key sets. This is
 * the bit-identity proof the hot-path work rests on — see
 * docs/performance.md.
 *
 * A fourth mode, --bench, validates a hotpath_throughput trajectory
 * (BENCH_hotpath.json): a non-empty "runs" array whose entries carry a
 * label, a mode, and finite positive throughput numbers per result.
 *
 * Used by the ctest smoke tests (tests/CMakeLists.txt) to pin the
 * structured-output contract.
 */
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using triage::obs::json::Value;

namespace {

int g_failures = 0;

void
fail(const std::string& msg)
{
    std::cerr << "FAIL: " << msg << "\n";
    ++g_failures;
}

/** Per-epoch probe keys the acceptance contract requires for core 0. */
const char* const EPOCH_KEYS[] = {
    "core0.ipc",
    "core0.coverage",
    "core0.pf.accuracy",
    "core0.pf.meta_hit_rate",
    "core0.meta_ways",
};

void
check_run(const Value& root)
{
    const Value* cores = root.find_path("run.cores");
    if (cores == nullptr || !cores->is_array() || cores->array.empty()) {
        fail("run.cores missing or empty");
        return;
    }
    for (std::size_t c = 0; c < cores->array.size(); ++c) {
        const Value& core = cores->array[c];
        for (const char* key :
             {"ipc", "coverage", "accuracy", "meta_ways", "cycles"}) {
            const Value* v = core.get(key);
            if (v == nullptr || !v->is_number() ||
                !std::isfinite(v->number)) {
                fail("run.cores[" + std::to_string(c) + "]." + key +
                     " missing or not a finite number");
            }
        }
    }
    const Value* ipc = cores->array[0].get("ipc");
    if (ipc != nullptr && ipc->is_number() && ipc->number <= 0.0)
        fail("run.cores[0].ipc is not positive");
}

void
check_epochs(const Value& root)
{
    const Value* epochs = root.get("epochs");
    if (epochs == nullptr || !epochs->is_array()) {
        fail("epochs missing or not an array");
        return;
    }
    if (epochs->array.empty()) {
        fail("epochs array is empty");
        return;
    }
    double prev_end = -1.0;
    for (std::size_t i = 0; i < epochs->array.size(); ++i) {
        const Value& e = epochs->array[i];
        const std::string tag = "epochs[" + std::to_string(i) + "]";
        const Value* begin = e.get("begin");
        const Value* end = e.get("end");
        if (begin == nullptr || end == nullptr || !begin->is_number() ||
            !end->is_number()) {
            fail(tag + " lacks numeric begin/end");
            continue;
        }
        if (end->number <= begin->number)
            fail(tag + " has end <= begin");
        if (prev_end >= 0.0 && begin->number != prev_end)
            fail(tag + " does not start where the previous epoch ended");
        prev_end = end->number;
        for (const char* key : EPOCH_KEYS) {
            const Value* v = e.get(key);
            if (v == nullptr || !v->is_number() ||
                !std::isfinite(v->number)) {
                fail(tag + " lacks finite probe '" + key + "'");
            }
        }
    }
}

/** Sum-to-issued contract for one lifecycle class-count object. */
void
check_lifecycle_counts(const Value& counts, const std::string& tag,
                       double expect_issued)
{
    for (const char* key : {"issued", "accurate", "late", "early_evicted",
                            "useless", "dropped"}) {
        const Value* v = counts.get(key);
        if (v == nullptr || !v->is_number()) {
            fail(tag + "." + key + " missing or not a number");
            return;
        }
    }
    double sum = counts.get("accurate")->number +
                 counts.get("late")->number +
                 counts.get("early_evicted")->number +
                 counts.get("useless")->number;
    double issued = counts.get("issued")->number;
    if (sum != issued) {
        fail(tag + ": classes sum to " + std::to_string(sum) +
             " but issued is " + std::to_string(issued));
    }
    if (expect_issued >= 0.0 && issued != expect_issued) {
        fail(tag + ": issued " + std::to_string(issued) +
             " does not match run pf_issued " +
             std::to_string(expect_issued));
    }
}

void
check_lifecycle(const Value& root)
{
    const Value* lc = root.get("lifecycle");
    if (lc == nullptr || !lc->is_object()) {
        fail("lifecycle missing or not an object");
        return;
    }
    const Value* cores = lc->get("cores");
    const Value* run_cores = root.find_path("run.cores");
    if (cores == nullptr || !cores->is_array() || cores->array.empty()) {
        fail("lifecycle.cores missing or empty");
        return;
    }
    if (run_cores != nullptr && run_cores->is_array() &&
        cores->array.size() != run_cores->array.size()) {
        fail("lifecycle.cores length does not match run.cores");
    }
    for (std::size_t c = 0; c < cores->array.size(); ++c) {
        double expect = -1.0;
        if (run_cores != nullptr && c < run_cores->array.size()) {
            const Value* pi = run_cores->array[c].get("pf_issued");
            if (pi != nullptr && pi->is_number())
                expect = pi->number;
        }
        check_lifecycle_counts(cores->array[c],
                               "lifecycle.cores[" + std::to_string(c) + "]",
                               expect);
    }
    const Value* total = lc->get("total");
    if (total == nullptr || !total->is_object())
        fail("lifecycle.total missing");
    else
        check_lifecycle_counts(*total, "lifecycle.total", -1.0);
    const Value* open = lc->get("open");
    if (open == nullptr || !open->is_number() || open->number != 0.0)
        fail("lifecycle.open missing or non-zero after finalize");
    for (const char* key :
         {"top_pcs_by_coverage", "top_pcs_by_pollution"}) {
        const Value* t = lc->get(key);
        if (t == nullptr || !t->is_array()) {
            fail(std::string("lifecycle.") + key + " missing or not array");
            continue;
        }
        for (std::size_t i = 0; i < t->array.size(); ++i) {
            const Value& row = t->array[i];
            if (row.get("pc") == nullptr || row.get("counts") == nullptr)
                fail(std::string("lifecycle.") + key + "[" +
                     std::to_string(i) + "] lacks pc/counts");
        }
    }
}

void
check_partition_timeline(const Value& root)
{
    const Value* pt = root.get("partition_timeline");
    if (pt == nullptr || !pt->is_object()) {
        fail("partition_timeline missing or not an object");
        return;
    }
    const Value* dropped = pt->get("dropped");
    if (dropped == nullptr || !dropped->is_number())
        fail("partition_timeline.dropped missing or not a number");
    const Value* cores = pt->get("cores");
    if (cores == nullptr || !cores->is_array()) {
        fail("partition_timeline.cores missing or not an array");
        return;
    }
    for (std::size_t c = 0; c < cores->array.size(); ++c) {
        const Value& samples = cores->array[c];
        const std::string tag =
            "partition_timeline.cores[" + std::to_string(c) + "]";
        if (!samples.is_array()) {
            fail(tag + " is not an array");
            continue;
        }
        double prev_epoch = 0.0;
        for (std::size_t i = 0; i < samples.array.size(); ++i) {
            const Value& s = samples.array[i];
            const std::string stag = tag + "[" + std::to_string(i) + "]";
            for (const char* key :
                 {"epoch", "level", "verdict", "size_bytes"}) {
                const Value* v = s.get(key);
                if (v == nullptr || !v->is_number())
                    fail(stag + "." + key + " missing or not a number");
            }
            const Value* event = s.get("event");
            if (event == nullptr || !event->is_string())
                fail(stag + ".event missing or not a string");
            const Value* rates = s.get("hit_rates");
            if (rates == nullptr || !rates->is_array())
                fail(stag + ".hit_rates missing or not an array");
            const Value* epoch = s.get("epoch");
            if (epoch != nullptr && epoch->is_number()) {
                if (epoch->number <= prev_epoch)
                    fail(stag + ".epoch not strictly increasing");
                prev_epoch = epoch->number;
            }
        }
    }
}

/**
 * Validate the host-profiler block written by triagesim --profile.
 * @p min_attributed < 0 skips the attribution-floor check;
 * @p expect_backend empty accepts either backend.
 */
void
check_profile(const Value& root, double min_attributed,
              const std::string& expect_backend)
{
    const Value* p = root.get("profile");
    if (p == nullptr || !p->is_object()) {
        fail("profile block missing — rerun triagesim with --profile");
        return;
    }
    const Value* enabled = p->get("enabled");
    if (enabled == nullptr || !enabled->is_bool() || !enabled->boolean)
        fail("profile.enabled missing or false");
    const Value* backend = p->get("backend");
    if (backend == nullptr || !backend->is_string() ||
        (backend->str != "perf_event" && backend->str != "software")) {
        fail("profile.backend must be 'perf_event' or 'software'");
    } else if (!expect_backend.empty() &&
               backend->str != expect_backend) {
        fail("profile.backend is '" + backend->str + "', expected '" +
             expect_backend + "'");
    }
    for (const char* key :
         {"wall_seconds", "attributed_seconds", "attributed_frac"}) {
        const Value* v = p->get(key);
        if (v == nullptr || !v->is_number() ||
            !std::isfinite(v->number) || v->number < 0.0)
            fail(std::string("profile.") + key +
                 " missing or not a finite non-negative number");
    }
    const Value* wall = p->get("wall_seconds");
    if (wall != nullptr && wall->is_number() && wall->number <= 0.0)
        fail("profile.wall_seconds is not positive");
    if (min_attributed >= 0.0) {
        const Value* frac = p->get("attributed_frac");
        if (frac != nullptr && frac->is_number() &&
            frac->number < min_attributed) {
            fail("profile.attributed_frac " +
                 std::to_string(frac->number) + " < required " +
                 std::to_string(min_attributed));
        }
    }

    const Value* phases = p->get("phases");
    if (phases == nullptr || !phases->is_object() ||
        phases->object.empty()) {
        fail("profile.phases missing or empty");
        return;
    }
    bool saw_warmup = false;
    bool saw_measure = false;
    for (const auto& [name, ph] : phases->object) {
        const std::string tag = "profile.phases['" + name + "']";
        if (!ph.is_object()) {
            fail(tag + " not an object");
            continue;
        }
        const Value* count = ph.get("count");
        if (count == nullptr || !count->is_number() ||
            count->number <= 0.0)
            fail(tag + ".count missing or not positive");
        for (const char* key : {"seconds", "hw_samples", "cycles",
                                "instructions", "llc_misses",
                                "branch_misses"}) {
            const Value* v = ph.get(key);
            if (v == nullptr || !v->is_number() ||
                !std::isfinite(v->number) || v->number < 0.0)
                fail(tag + "." + key +
                     " missing or not a finite non-negative number");
        }
        // Phase keys are dotted call paths ("job.measure.epoch");
        // warmup and measure must appear somewhere in the tree.
        if (name == "warmup" ||
            (name.size() >= 7 &&
             name.compare(name.size() - 7, 7, ".warmup") == 0))
            saw_warmup = true;
        if (name == "measure" ||
            (name.size() >= 8 &&
             name.compare(name.size() - 8, 8, ".measure") == 0))
            saw_measure = true;
    }
    if (!saw_warmup)
        fail("profile.phases has no warmup phase");
    if (!saw_measure)
        fail("profile.phases has no measure phase");

    const Value* ckpt = root.find_path("profile.counters.ckpt");
    if (ckpt == nullptr || !ckpt->is_object()) {
        fail("profile.counters.ckpt missing (Lab checkpoint telemetry)");
    } else {
        for (const char* key :
             {"mem_hits", "disk_hits", "misses", "produces", "waits",
              "evictions", "lease_wait_seconds", "bytes_published",
              "bytes_mem", "bytes_disk_read", "bytes_disk_written"}) {
            const Value* v = ckpt->get(key);
            if (v == nullptr || !v->is_number() ||
                !std::isfinite(v->number) || v->number < 0.0)
                fail(std::string("profile.counters.ckpt.") + key +
                     " missing or not a finite non-negative number");
        }
    }

    const Value* workers = p->get("workers");
    if (workers == nullptr || !workers->is_array() ||
        workers->array.empty()) {
        fail("profile.workers missing or empty");
    } else {
        for (std::size_t i = 0; i < workers->array.size(); ++i) {
            const Value& w = workers->array[i];
            const std::string tag =
                "profile.workers[" + std::to_string(i) + "]";
            for (const char* key :
                 {"worker", "jobs", "busy_seconds", "peak_rss_kb"}) {
                const Value* v = w.get(key);
                if (v == nullptr || !v->is_number() ||
                    !std::isfinite(v->number) || v->number < 0.0)
                    fail(tag + "." + key +
                         " missing or not a finite non-negative "
                         "number");
            }
        }
    }
}

/** Validate a --trace-perfetto Chrome trace-event file. */
void
check_perfetto(const Value& root, int expect_workers,
               bool expect_profile)
{
    const Value* events = root.get("traceEvents");
    if (events == nullptr || !events->is_array() ||
        events->array.empty()) {
        fail("traceEvents missing or empty");
        return;
    }
    bool saw_epoch = false;
    bool saw_partition = false;
    bool saw_prof_slice = false;
    bool saw_prof_counter = false;
    int workers = 0;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const Value& e = events->array[i];
        const std::string tag = "traceEvents[" + std::to_string(i) + "]";
        const Value* name = e.get("name");
        const Value* ph = e.get("ph");
        if (name == nullptr || !name->is_string() || ph == nullptr ||
            !ph->is_string()) {
            fail(tag + " lacks string name/ph");
            continue;
        }
        const Value* pid = e.get("pid");
        const Value* tid = e.get("tid");
        if (pid == nullptr || !pid->is_number() || tid == nullptr ||
            !tid->is_number())
            fail(tag + " lacks numeric pid/tid");
        if (ph->str != "M") {
            const Value* ts = e.get("ts");
            if (ts == nullptr || !ts->is_number())
                fail(tag + " lacks numeric ts");
        }
        if (name->str.rfind("epoch", 0) == 0)
            saw_epoch = true;
        if (name->str.rfind("partition", 0) == 0)
            saw_partition = true;
        if (ph->str == "M" && name->str == "thread_name" &&
            pid != nullptr && pid->is_number() && pid->number == 1.0)
            ++workers;
        // Host profiler track is pid 4 (see obs/perfetto.hpp).
        if (pid != nullptr && pid->is_number() && pid->number == 4.0) {
            if (ph->str == "X")
                saw_prof_slice = true;
            if (ph->str == "C" && name->str.rfind("hw.", 0) == 0)
                saw_prof_counter = true;
        }
    }
    if (!saw_epoch)
        fail("no epoch event in traceEvents");
    if (!saw_partition)
        fail("no partition event in traceEvents");
    if (expect_workers > 0 && workers < expect_workers) {
        fail("expected >= " + std::to_string(expect_workers) +
             " lab worker tracks, found " + std::to_string(workers));
    }
    if (expect_profile && !saw_prof_slice)
        fail("no host-profiler phase slice (pid 4) in traceEvents");
    if (expect_profile && !saw_prof_counter)
        fail("no hw.* counter sample (pid 4) in traceEvents");
}

/** Type name for golden-mismatch messages. */
const char*
type_name(const Value& v)
{
    switch (v.type) {
      case Value::Type::Null: return "null";
      case Value::Type::Bool: return "bool";
      case Value::Type::Number: return "number";
      case Value::Type::String: return "string";
      case Value::Type::Array: return "array";
      case Value::Type::Object: return "object";
    }
    return "?";
}

/**
 * Exact structural comparison for --golden: every counter and formula
 * in the actual dump must equal the golden one bit-for-bit. Failure
 * output is capped so a systemic divergence stays readable.
 */
void
compare_golden(const Value& actual, const Value& golden,
               const std::string& path)
{
    constexpr int MAX_REPORTED = 50;
    if (g_failures >= MAX_REPORTED)
        return;
    if (actual.type != golden.type) {
        fail(path + ": type " + type_name(actual) + " != golden " +
             type_name(golden));
        return;
    }
    switch (actual.type) {
      case Value::Type::Null:
        break;
      case Value::Type::Bool:
        if (actual.boolean != golden.boolean)
            fail(path + ": bool mismatch");
        break;
      case Value::Type::Number:
        if (actual.number != golden.number) {
            std::ostringstream os;
            os << path << ": " << actual.number << " != golden "
               << golden.number;
            fail(os.str());
        }
        break;
      case Value::Type::String:
        if (actual.str != golden.str)
            fail(path + ": '" + actual.str + "' != golden '" +
                 golden.str + "'");
        break;
      case Value::Type::Array:
        if (actual.array.size() != golden.array.size()) {
            fail(path + ": array length " +
                 std::to_string(actual.array.size()) + " != golden " +
                 std::to_string(golden.array.size()));
            return;
        }
        for (std::size_t i = 0; i < actual.array.size(); ++i)
            compare_golden(actual.array[i], golden.array[i],
                           path + "[" + std::to_string(i) + "]");
        break;
      case Value::Type::Object:
        for (const auto& [key, gv] : golden.object) {
            auto it = actual.object.find(key);
            if (it == actual.object.end()) {
                fail(path + "." + key + ": missing (present in golden)");
                continue;
            }
            compare_golden(it->second, gv, path + "." + key);
        }
        for (const auto& [key, av] : actual.object) {
            (void)av;
            if (golden.object.find(key) == golden.object.end())
                fail(path + "." + key + ": extra key absent from golden");
        }
        break;
    }
}

/** Validate a hotpath_throughput trajectory file (--bench). */
void
check_bench(const Value& root)
{
    const Value* runs = root.get("runs");
    if (runs == nullptr || !runs->is_array() || runs->array.empty()) {
        fail("runs missing or empty");
        return;
    }
    for (std::size_t i = 0; i < runs->array.size(); ++i) {
        const Value& run = runs->array[i];
        const std::string tag = "runs[" + std::to_string(i) + "]";
        const Value* label = run.get("label");
        if (label == nullptr || !label->is_string() || label->str.empty())
            fail(tag + ".label missing or empty");
        const Value* mode = run.get("mode");
        if (mode == nullptr || !mode->is_string() ||
            (mode->str != "full" && mode->str != "smoke"))
            fail(tag + ".mode must be 'full' or 'smoke'");
        // Hot-path v2 onwards: which counter backend produced the hw
        // rates. Absent on older entries, constrained when present.
        if (const Value* hb = run.get("hw_backend"); hb != nullptr) {
            if (!hb->is_string() ||
                (hb->str != "perf_event" && hb->str != "software"))
                fail(tag + ".hw_backend must be 'perf_event' or "
                           "'software'");
        }
        // Newer runs carry the end-to-end sweep wall clock (cold vs
        // checkpoint-forked); absent on pre-checkpoint trajectory
        // entries, validated whenever present.
        if (const Value* sw = run.get("sweep_wallclock");
            sw != nullptr) {
            const std::string stag = tag + ".sweep_wallclock";
            if (!sw->is_object()) {
                fail(stag + " not an object");
            } else {
                const Value* name = sw->get("sweep");
                if (name == nullptr || !name->is_string() ||
                    name->str.empty())
                    fail(stag + ".sweep missing or empty");
                for (const char* key :
                     {"jobs", "cold_seconds", "ckpt_seconds",
                      "speedup"}) {
                    const Value* v = sw->get(key);
                    if (v == nullptr || !v->is_number() ||
                        !std::isfinite(v->number) || v->number <= 0.0)
                        fail(stag + "." + key +
                             " missing or not a finite positive "
                             "number");
                }
            }
        }
        const Value* results = run.get("results");
        if (results == nullptr || !results->is_array() ||
            results->array.empty()) {
            fail(tag + ".results missing or empty");
            continue;
        }
        for (std::size_t j = 0; j < results->array.size(); ++j) {
            const Value& r = results->array[j];
            const std::string rtag =
                tag + ".results[" + std::to_string(j) + "]";
            for (const char* key : {"config", "workload"}) {
                const Value* v = r.get(key);
                if (v == nullptr || !v->is_string() || v->str.empty())
                    fail(rtag + "." + key + " missing or empty");
            }
            for (const char* key :
                 {"cores", "accesses", "seconds", "accesses_per_sec",
                  "ns_per_access"}) {
                const Value* v = r.get(key);
                if (v == nullptr || !v->is_number() ||
                    !std::isfinite(v->number) || v->number <= 0.0)
                    fail(rtag + "." + key +
                         " missing or not a finite positive number");
            }
            // Rep spread (hot-path v2 onwards): median protocol rows
            // carry min/max/reps, and the median must sit inside the
            // spread. Absent on older best-of entries.
            const Value* reps = r.get("reps");
            if (reps != nullptr) {
                if (!reps->is_number() || reps->number < 1.0)
                    fail(rtag + ".reps must be a positive count");
                const Value* lo = r.get("seconds_min");
                const Value* hi = r.get("seconds_max");
                const Value* med = r.get("seconds");
                if (lo == nullptr || hi == nullptr ||
                    !lo->is_number() || !hi->is_number()) {
                    fail(rtag + ": reps present but seconds_min/"
                                "seconds_max missing");
                } else if (med != nullptr && med->is_number() &&
                           (med->number < lo->number ||
                            med->number > hi->number)) {
                    fail(rtag + ": seconds (median) outside "
                                "[seconds_min, seconds_max]");
                }
            }
            // Hardware-counter rates (pr8 onwards): absent on older
            // trajectory entries, validated whenever present. The
            // instruction rate must be genuinely positive — hot-path
            // v2 gates it on a scheduled perf sample precisely so a
            // fabricated 0 can no longer appear.
            if (const Value* v = r.get("cycles_per_access");
                v != nullptr) {
                if (!v->is_number() || !std::isfinite(v->number) ||
                    v->number < 0.0)
                    fail(rtag + ".cycles_per_access not a finite "
                                "non-negative number");
            }
            if (const Value* v = r.get("instructions_per_access");
                v != nullptr) {
                if (!v->is_number() || !std::isfinite(v->number) ||
                    v->number <= 0.0)
                    fail(rtag + ".instructions_per_access must be "
                                "positive when present (a 0 means the "
                                "counter group never scheduled)");
            }
        }
    }
}

void
check_stats(const Value& root)
{
    const Value* st = root.get("stats");
    if (st == nullptr || !st->is_object() || st->object.empty()) {
        fail("stats missing or empty");
        return;
    }
    for (const char* path :
         {"stats.llc.demand_misses", "stats.dram.total_bytes",
          "stats.core0.ipc", "stats.llc.metadata_ways"}) {
        const Value* v = root.find_path(path);
        if (v == nullptr || !v->is_number())
            fail(std::string(path) + " missing or not a number");
    }
}

void
check_verify(const Value& root)
{
    const Value* v = root.get("verify");
    if (v == nullptr || !v->is_object()) {
        fail("verify block missing — rerun triagesim with --verify");
        return;
    }
    const Value* checks = v->get("checks");
    if (checks == nullptr || !checks->is_number() ||
        checks->number <= 0.0)
        fail("verify.checks missing or zero — no invariants ran");
    const Value* viol = v->get("violations");
    if (viol == nullptr || !viol->is_number()) {
        fail("verify.violations missing or not a number");
    } else if (viol->number != 0.0) {
        fail("verify.violations is " +
             std::to_string(static_cast<long long>(viol->number)) +
             ", expected 0");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string path;
    bool require_epochs = false;
    bool require_stats = false;
    bool require_lifecycle = false;
    bool require_partition_timeline = false;
    bool require_verify_clean = false;
    bool require_profile = false;
    double min_attributed = -1.0;
    std::string expect_backend;
    bool perfetto = false;
    bool expect_profile = false;
    bool bench = false;
    std::string golden_path;
    int expect_workers = 0;
    std::vector<std::string> require_keys;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--require-epochs") {
            require_epochs = true;
        } else if (a == "--require-stats") {
            require_stats = true;
        } else if (a == "--require-lifecycle") {
            require_lifecycle = true;
        } else if (a == "--require-partition-timeline") {
            require_partition_timeline = true;
        } else if (a == "--require-verify-clean") {
            require_verify_clean = true;
        } else if (a == "--require-profile") {
            require_profile = true;
        } else if (a.rfind("--min-attributed=", 0) == 0) {
            min_attributed =
                std::stod(a.substr(std::strlen("--min-attributed=")));
        } else if (a.rfind("--expect-backend=", 0) == 0) {
            expect_backend =
                a.substr(std::strlen("--expect-backend="));
        } else if (a == "--perfetto") {
            perfetto = true;
        } else if (a == "--expect-profile") {
            expect_profile = true;
        } else if (a == "--bench") {
            bench = true;
        } else if (a.rfind("--golden=", 0) == 0) {
            golden_path = a.substr(std::strlen("--golden="));
        } else if (a.rfind("--expect-workers=", 0) == 0) {
            expect_workers =
                std::stoi(a.substr(std::strlen("--expect-workers=")));
        } else if (a.rfind("--require-key=", 0) == 0) {
            require_keys.push_back(a.substr(std::strlen("--require-key=")));
        } else if (!a.empty() && a[0] != '-') {
            path = a;
        } else {
            std::cerr << "usage: check_stats_json FILE [--require-epochs]"
                         " [--require-stats] [--require-lifecycle]"
                         " [--require-partition-timeline]"
                         " [--require-verify-clean]"
                         " [--require-profile [--min-attributed=F]"
                         " [--expect-backend=NAME]]"
                         " [--require-key=PATH]...\n"
                         "       check_stats_json FILE --perfetto"
                         " [--expect-workers=N] [--expect-profile]\n"
                         "       check_stats_json FILE --golden=GOLDEN\n"
                         "       check_stats_json FILE --bench\n";
            return 2;
        }
    }
    if (path.empty()) {
        std::cerr << "check_stats_json: no input file\n";
        return 2;
    }

    std::ifstream f(path);
    if (!f) {
        std::cerr << "check_stats_json: cannot read " << path << "\n";
        return 2;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::string err;
    auto root = triage::obs::json::parse(buf.str(), &err);
    if (!root.has_value()) {
        std::cerr << "check_stats_json: " << path << ": " << err << "\n";
        return 1;
    }

    if (!golden_path.empty()) {
        std::ifstream gf(golden_path);
        if (!gf) {
            std::cerr << "check_stats_json: cannot read " << golden_path
                      << "\n";
            return 2;
        }
        std::ostringstream gbuf;
        gbuf << gf.rdbuf();
        auto golden = triage::obs::json::parse(gbuf.str(), &err);
        if (!golden.has_value()) {
            std::cerr << "check_stats_json: " << golden_path << ": "
                      << err << "\n";
            return 1;
        }
        compare_golden(*root, *golden, "$");
    } else if (bench) {
        check_bench(*root);
    } else if (perfetto) {
        check_perfetto(*root, expect_workers, expect_profile);
    } else {
        check_run(*root);
        if (require_epochs)
            check_epochs(*root);
        if (require_stats)
            check_stats(*root);
        if (require_lifecycle)
            check_lifecycle(*root);
        if (require_partition_timeline)
            check_partition_timeline(*root);
        if (require_verify_clean)
            check_verify(*root);
        if (require_profile)
            check_profile(*root, min_attributed, expect_backend);
        for (const auto& key : require_keys) {
            if (root->find_path(key) == nullptr)
                fail("required key '" + key + "' missing");
        }
    }

    if (g_failures > 0) {
        std::cerr << path << ": " << g_failures << " check(s) failed\n";
        return 1;
    }
    std::cout << path << ": OK\n";
    return 0;
}
