/**
 * @file
 * Checkpoint-cache smoke runner (docs/parallel-runs.md §checkpointing).
 *
 * Runs a small sweep — one workload, one prefetcher, three measurement
 * lengths — through an exec::Lab with an on-disk checkpoint cache, and
 * prints the store's hit/miss counters. Run it twice against the same
 * --dir: the first process warms up once and publishes the snapshot
 * (1 miss, 2 in-memory forks), the second process never simulates a
 * warmup at all (1 disk hit, 2 in-memory forks). CI asserts both
 * profiles with the --expect-* flags.
 */
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/lab.hpp"

namespace {

using namespace triage;

struct Options {
    std::string dir;
    std::string benchmark = "mcf";
    std::uint64_t warmup = 60000;
    bool fresh = false;
    long expect_mem_hits = -1;
    long expect_disk_hits = -1;
    long expect_misses = -1;
};

void
usage(const char* argv0)
{
    std::printf(
        "usage: %s --dir=DIR [options]\n"
        "  --dir=DIR             on-disk checkpoint cache directory\n"
        "  --benchmark=B         benchmark analog (default mcf)\n"
        "  --warmup=N            warmup records (default 60000)\n"
        "  --fresh               wipe DIR before running\n"
        "  --expect-mem-hits=N   fail unless mem_hits == N\n"
        "  --expect-disk-hits=N  fail unless disk_hits == N\n"
        "  --expect-misses=N     fail unless misses == N\n",
        argv0);
}

bool
parse(int argc, char** argv, Options& o)
{
    auto val = [](const char* arg, const char* name) -> const char* {
        std::size_t n = std::strlen(name);
        if (std::strncmp(arg, name, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (const char* v = val(a, "--dir"))
            o.dir = v;
        else if (const char* v = val(a, "--benchmark"))
            o.benchmark = v;
        else if (const char* v = val(a, "--warmup"))
            o.warmup = std::strtoull(v, nullptr, 10);
        else if (std::strcmp(a, "--fresh") == 0)
            o.fresh = true;
        else if (const char* v = val(a, "--expect-mem-hits"))
            o.expect_mem_hits = std::strtol(v, nullptr, 10);
        else if (const char* v = val(a, "--expect-disk-hits"))
            o.expect_disk_hits = std::strtol(v, nullptr, 10);
        else if (const char* v = val(a, "--expect-misses"))
            o.expect_misses = std::strtol(v, nullptr, 10);
        else if (std::strcmp(a, "--help") == 0) {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", a);
            usage(argv[0]);
            return false;
        }
    }
    if (o.dir.empty()) {
        std::fprintf(stderr, "--dir is required\n");
        usage(argv[0]);
        return false;
    }
    return true;
}

bool
check(const char* name, long expect, std::uint64_t got)
{
    if (expect < 0 || static_cast<std::uint64_t>(expect) == got)
        return true;
    std::fprintf(stderr, "FAIL %s: expected %ld, got %llu\n", name,
                 expect, static_cast<unsigned long long>(got));
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    Options o;
    if (!parse(argc, argv, o))
        return 2;
    if (o.fresh) {
        std::error_code ec;
        std::filesystem::remove_all(o.dir, ec);
    }

    exec::LabOptions opt;
    opt.jobs = 1; // deterministic log order; parallelism is tested elsewhere
    opt.ckpt_dir = o.dir;
    exec::Lab lab(opt);

    // Three jobs sharing one warm prefix (only the window length
    // differs): the canonical checkpoint-forking sweep shape.
    for (std::uint64_t measure : {30000ULL, 60000ULL, 90000ULL}) {
        exec::Job j;
        j.benchmark = o.benchmark;
        j.pf_spec = "triage_dyn";
        j.degree = 4;
        j.scale.warmup_records = o.warmup;
        j.scale.measure_records = measure;
        lab.submit(std::move(j));
    }
    lab.wait_all();

    const auto st = lab.checkpoints()->stats();
    std::printf("{\"mem_hits\": %llu, \"disk_hits\": %llu, "
                "\"misses\": %llu, \"produces\": %llu}\n",
                static_cast<unsigned long long>(st.mem_hits),
                static_cast<unsigned long long>(st.disk_hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.produces));

    bool ok = true;
    ok &= check("mem_hits", o.expect_mem_hits, st.mem_hits);
    ok &= check("disk_hits", o.expect_disk_hits, st.disk_hits);
    ok &= check("misses", o.expect_misses, st.misses);
    return ok ? 0 : 1;
}
