/**
 * @file
 * triagesim — the command-line simulator driver.
 *
 * Runs any benchmark analog (or an external trace file) under any
 * prefetcher configuration on 1-N cores and prints a full report:
 * IPC/speedup, cache behaviour, prefetcher effectiveness, DRAM traffic
 * by class, and metadata energy.
 *
 * Examples:
 *   triagesim --benchmark=mcf --prefetcher=triage_dyn
 *   triagesim --mix=mcf,omnetpp,bwaves,sphinx3 --prefetcher=bo+triage_dyn
 *   triagesim --benchmark=mcf --save-trace=mcf.tria --records=1000000
 *   triagesim --trace=mcf.tria.gz --prefetcher=misb --no-baseline
 *   triagesim --trace=app.champsimtrace.xz --trace-format=champsim
 *   triagesim --trace=app.champsimtrace.xz --save-trace=app.tria
 *   triagesim --mix=mcf,trace:app.tria.gz,bwaves,sphinx3
 *   triagesim --list
 */
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "exec/lab.hpp"
#include "frontend/frontend.hpp"
#include "obs/observer.hpp"
#include "obs/profile.hpp"
#include "verify/invariants.hpp"

#include "sim/multicore.hpp"
#include "util/log.hpp"
#include "sim/system.hpp"
#include "stats/experiment.hpp"
#include "stats/metrics.hpp"
#include "stats/report.hpp"
#include "stats/table.hpp"
#include "workloads/spec.hpp"
#include "workloads/trace_io.hpp"

using namespace triage;

namespace {

struct Options {
    std::string benchmark = "mcf";
    std::vector<std::string> mix;
    std::string trace_path;
    std::string trace_format; ///< tria|champsim|memtrace ("" = auto)
    std::string save_trace_path;
    std::string prefetcher = "triage_dyn";
    std::uint32_t degree = 1;
    std::uint64_t warmup = 400000;
    std::uint64_t measure = 1000000;
    std::uint64_t records = 1000000; ///< for --save-trace
    double scale = 1.0;
    unsigned jobs = 0; ///< worker threads (0 = hardware concurrency)
    std::uint32_t mshrs = 0;
    bool tlb = false;
    std::string llc_repl = "lru";
    bool baseline = true;
    bool list = false;
    bool help = false;
    bool json = false;
    bool records_set = false;
    bool measure_set = false;
#ifdef TRIAGE_VERIFY_DEFAULT
    bool verify = true; ///< -DTRIAGE_VERIFY=ON build: harness always on
#else
    bool verify = false;
#endif
    // Observability.
    bool profile = false;
    std::string stats_json_path;
    std::string trace_events_path;
    std::string trace_perfetto_path;
    std::uint64_t epoch = 0;
    std::uint64_t trace_capacity = 0; ///< 0 = EventTrace default
};

void
usage()
{
    std::cout <<
        "triagesim — Triage prefetcher simulator driver\n\n"
        "  --benchmark=NAME       synthetic analog to run (default mcf)\n"
        "  --mix=A,B,C,D          multi-core mix (one benchmark or\n"
        "                         trace:FILE spec per core)\n"
        "  --trace=FILE           replay a trace file instead, streamed\n"
        "                         with bounded memory; .tria, ChampSim\n"
        "                         and memtrace formats, transparently\n"
        "                         decompressing .gz/.xz (docs/traces.md)\n"
        "  --trace-format=F       tria|champsim|memtrace; default: infer\n"
        "                         from the extension, .tria if unnamed\n"
        "  --save-trace=FILE      record the benchmark — or convert\n"
        "                         --trace=FILE — to a .tria file, then\n"
        "                         exit\n"
        "  --records=N            records to save with --save-trace;\n"
        "                         without --save-trace, an alias for\n"
        "                         --measure (explicit --measure wins)\n"
        "  --prefetcher=SPEC      none|bo|sms|markov|next_line|ghb_pcdc|\n"
        "                         stms|domino|isb|misb|triage_<size>|\n"
        "                         triage_dyn|triage_unlimited, '+'-joined\n"
        "                         hybrids (default triage_dyn)\n"
        "  --degree=N             prefetch degree (default 1)\n"
        "  --warmup=N --measure=N window sizes in memory references\n"
        "  --scale=F              workload pass-length scale\n"
        "  --llc-repl=P           lru|srrip|drrip|ship|hawkeye\n"
        "  --mshrs=N              finite L2 MSHR file (0 = unlimited)\n"
        "  --tlb                  model the Table 1 TLBs\n"
        "  --no-baseline          skip the no-prefetch comparison run\n"
        "  --jobs=N               worker threads for independent runs\n"
        "                         (default: hardware concurrency;\n"
        "                         results are identical at any N)\n"
        "  --json                 emit the report as JSON\n"
        "  --profile              profile the simulator itself: phase\n"
        "                         timers (warmup/measure/epoch/weave/\n"
        "                         snapshot), hardware counters where\n"
        "                         perf_event_open works (TSC fallback\n"
        "                         otherwise), worker + checkpoint-store\n"
        "                         telemetry; adds a \"profile\" block\n"
        "                         to --stats-json and host-profiler\n"
        "                         tracks to --trace-perfetto\n"
        "  --stats-json=FILE      write the full stats registry, epoch\n"
        "                         series and run summary as JSON\n"
        "  --trace-events=FILE    write the structured event trace\n"
        "                         (.jsonl = JSON lines, else binary)\n"
        "  --trace-perfetto=FILE  write a Chrome trace-event JSON\n"
        "                         timeline (job spans, partition\n"
        "                         decisions, epoch series) loadable in\n"
        "                         ui.perfetto.dev\n"
        "  --trace-capacity=N     event-trace ring capacity in events\n"
        "                         (default 1M; raise when a run warns\n"
        "                         about dropped events)\n"
        "  --epoch=N              sample the epoch series every N\n"
        "                         measured records (0 = off;\n"
        "                         --trace-perfetto defaults it to\n"
        "                         measure/20)\n"
        "  --verify               run the invariant harness during the\n"
        "                         measurement window (cache/metadata/\n"
        "                         partition/lifecycle checkers; exit\n"
        "                         nonzero on any violation)\n"
        "  --no-verify            force the harness off (the default\n"
        "                         unless built with -DTRIAGE_VERIFY=ON)\n"
        "  --list                 list available benchmark analogs\n";
}

bool
parse(int argc, char** argv, Options& o)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char* key) -> std::optional<std::string> {
            std::string k = std::string("--") + key + "=";
            if (a.rfind(k, 0) == 0)
                return a.substr(k.size());
            return std::nullopt;
        };
        if (a == "--help" || a == "-h") {
            o.help = true;
        } else if (a == "--list") {
            o.list = true;
        } else if (a == "--tlb") {
            o.tlb = true;
        } else if (a == "--no-baseline") {
            o.baseline = false;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--profile") {
            o.profile = true;
        } else if (a == "--verify") {
            o.verify = true;
        } else if (a == "--no-verify") {
            o.verify = false;
        } else if (auto v = val("benchmark")) {
            o.benchmark = *v;
        } else if (auto v = val("mix")) {
            o.mix.clear();
            std::size_t start = 0;
            while (start <= v->size()) {
                std::size_t comma = v->find(',', start);
                if (comma == std::string::npos) {
                    o.mix.push_back(v->substr(start));
                    break;
                }
                o.mix.push_back(v->substr(start, comma - start));
                start = comma + 1;
            }
        } else if (auto v = val("trace")) {
            o.trace_path = *v;
        } else if (auto v = val("trace-format")) {
            o.trace_format = *v;
        } else if (auto v = val("save-trace")) {
            o.save_trace_path = *v;
        } else if (auto v = val("prefetcher")) {
            o.prefetcher = *v;
        } else if (auto v = val("degree")) {
            o.degree = static_cast<std::uint32_t>(std::stoul(*v));
        } else if (auto v = val("warmup")) {
            o.warmup = std::stoull(*v);
        } else if (auto v = val("measure")) {
            o.measure = std::stoull(*v);
            o.measure_set = true;
        } else if (auto v = val("records")) {
            o.records = std::stoull(*v);
            o.records_set = true;
        } else if (auto v = val("stats-json")) {
            o.stats_json_path = *v;
        } else if (auto v = val("trace-events")) {
            o.trace_events_path = *v;
        } else if (auto v = val("trace-perfetto")) {
            o.trace_perfetto_path = *v;
        } else if (auto v = val("trace-capacity")) {
            o.trace_capacity = std::stoull(*v);
        } else if (auto v = val("epoch")) {
            o.epoch = std::stoull(*v);
        } else if (auto v = val("jobs")) {
            o.jobs = static_cast<unsigned>(std::stoul(*v));
        } else if (auto v = val("scale")) {
            o.scale = std::stod(*v);
        } else if (auto v = val("mshrs")) {
            o.mshrs = static_cast<std::uint32_t>(std::stoul(*v));
        } else if (auto v = val("llc-repl")) {
            o.llc_repl = *v;
        } else {
            std::cerr << "unknown option: " << a << "\n";
            return false;
        }
    }
    return true;
}

sim::ReplPolicy
repl_of(const std::string& s)
{
    if (s == "lru")
        return sim::ReplPolicy::Lru;
    if (s == "srrip")
        return sim::ReplPolicy::Srrip;
    if (s == "drrip")
        return sim::ReplPolicy::Drrip;
    if (s == "ship")
        return sim::ReplPolicy::Ship;
    if (s == "hawkeye")
        return sim::ReplPolicy::Hawkeye;
    util::fatal("unknown LLC replacement policy: " + s);
}

void
report(const std::string& label, const sim::RunResult& r,
       const sim::RunResult* base)
{
    stats::banner(std::cout, "Report: " + label);
    stats::Table t({"core", "IPC", "L1 miss", "L2 miss", "coverage",
                    "accuracy", "meta ways"});
    for (std::size_t c = 0; c < r.per_core.size(); ++c) {
        const auto& s = r.per_core[c];
        t.row({std::to_string(c), stats::fmt(s.ipc()),
               std::to_string(s.l1.demand_misses),
               std::to_string(s.l2.demand_misses),
               stats::fmt_pct(s.coverage()),
               stats::fmt_pct(s.accuracy()),
               stats::fmt(s.avg_metadata_ways, 1)});
    }
    t.print(std::cout);

    std::cout << "\nDRAM traffic: total "
              << r.traffic.total() / 1024 << " KB (demand "
              << r.traffic.of(sim::TrafficClass::DemandRead) / 1024
              << ", prefetch "
              << r.traffic.of(sim::TrafficClass::PrefetchRead) / 1024
              << ", writeback "
              << r.traffic.of(sim::TrafficClass::Writeback) / 1024
              << ", metadata "
              << (r.traffic.of(sim::TrafficClass::MetadataRead) +
                  r.traffic.of(sim::TrafficClass::MetadataWrite)) /
                     1024
              << " KB)\n";
    if (base != nullptr) {
        std::cout << "Speedup over no-L2-prefetch: "
                  << stats::fmt_x(stats::speedup(r, *base))
                  << "   traffic overhead: "
                  << stats::fmt_pct(stats::traffic_overhead(r, *base))
                  << "\n";
    }
}

/** Does any option ask for the observability subsystem? */
bool
wants_observability(const Options& o)
{
    return !o.stats_json_path.empty() || !o.trace_events_path.empty() ||
           !o.trace_perfetto_path.empty() || o.epoch > 0;
}

/**
 * Post-run profile wiring: pull the Lab's worker/checkpoint telemetry
 * into the profiler and mirror the checkpoint counters into the stats
 * registry under profile.ckpt.* (integer view of the same numbers the
 * profile block reports; docs/observability.md §10).
 */
void
finish_profile(const Options& o, obs::Observability& obs,
               exec::Lab& lab)
{
    lab.publish_profile();
    if (wants_observability(o)) {
        exec::CheckpointStore* ckpt = lab.checkpoints();
        if (ckpt != nullptr) {
            const exec::CheckpointStore::Stats s = ckpt->stats();
            auto put = [&](const char* leaf, std::uint64_t v,
                           const char* desc) {
                obs.registry
                    .counter(std::string("profile.ckpt.") + leaf, desc)
                    .add(v);
            };
            put("mem_hits", s.mem_hits, "warm forks from the memory tier");
            put("disk_hits", s.disk_hits, "warm forks from the disk tier");
            put("misses", s.misses, "acquires that became producers");
            put("produces", s.produces, "warm snapshots published");
            put("waits", s.waits, "acquires blocked on a producer");
            put("evictions", s.evictions, "memory-tier LRU evictions");
            put("lease_wait_ns", s.lease_wait_ns,
                "total ns blocked on producer leases");
            put("bytes_published", s.bytes_published,
                "bytes of published warm snapshots");
            put("bytes_mem", s.bytes_mem, "memory tier bytes, at exit");
            put("bytes_disk_read", s.bytes_disk_read,
                "bytes loaded from the disk tier");
            put("bytes_disk_written", s.bytes_disk_written,
                "bytes written to the disk tier");
        }
    }
    if (!o.json) {
        auto& prof = obs::prof::Profiler::instance();
        const double wall = prof.wall_seconds();
        const double frac =
            wall > 0.0 ? prof.attributed_seconds() / wall : 0.0;
        std::cout << "profile: " << static_cast<int>(frac * 100.0 + 0.5)
                  << "% of " << wall << "s wall attributed, backend "
                  << obs::prof::Profiler::backend_name(prof.backend())
                  << "\n";
    }
}

/** Write --stats-json / --trace-events / --trace-perfetto outputs. */
int
emit_observability(const Options& o, const sim::RunResult& r,
                   const obs::Observability& obs, const exec::Lab& lab)
{
    if (!o.stats_json_path.empty()) {
        std::ofstream f(o.stats_json_path);
        if (!f) {
            std::cerr << "cannot write " << o.stats_json_path << "\n";
            return 1;
        }
        stats::write_stats_json(f, r, &obs);
        if (!o.json)
            std::cout << "stats json: " << o.stats_json_path << "\n";
    }
    if (!o.trace_events_path.empty()) {
        bool jsonl =
            o.trace_events_path.size() >= 6 &&
            o.trace_events_path.substr(o.trace_events_path.size() - 6) ==
                ".jsonl";
        std::ofstream f(o.trace_events_path,
                        jsonl ? std::ios::out
                              : std::ios::out | std::ios::binary);
        if (!f) {
            std::cerr << "cannot write " << o.trace_events_path << "\n";
            return 1;
        }
        if (jsonl)
            obs.trace.write_jsonl(f);
        else
            obs.trace.write_binary(f);
        if (!o.json) {
            std::cout << "trace events: " << o.trace_events_path << " ("
                      << obs.trace.size() << " buffered of "
                      << obs.trace.total() << " emitted)\n";
        }
    }
    if (!o.trace_perfetto_path.empty()) {
        std::ofstream f(o.trace_perfetto_path);
        if (!f) {
            std::cerr << "cannot write " << o.trace_perfetto_path << "\n";
            return 1;
        }
        obs::perfetto::TraceOptions topt;
        topt.n_workers = lab.workers();
        obs::perfetto::write_trace(f, &obs, lab.job_spans(), topt);
        if (!o.json) {
            std::cout << "perfetto trace: " << o.trace_perfetto_path
                      << " (open in ui.perfetto.dev)\n";
        }
    }
    if (obs.trace.enabled() && obs.trace.dropped() > 0) {
        util::warn(util::format_msg(
            "event trace overflowed: ", obs.trace.dropped(), " of ",
            obs.trace.total(),
            " events were overwritten; rerun with --trace-capacity=",
            obs.trace.total(), " to keep them all"));
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    Options o;
    if (!parse(argc, argv, o)) {
        usage();
        return 1;
    }
    if (o.help) {
        usage();
        return 0;
    }
    // Convenience: --records=N without --save-trace sets the
    // measurement window (the observability smoke-test invocation).
    // An explicit --measure always wins over the alias.
    if (o.records_set && !o.measure_set && o.save_trace_path.empty())
        o.measure = o.records;
    if (o.list) {
        std::cout << "irregular SPEC analogs:\n";
        for (const auto& b : workloads::irregular_spec())
            std::cout << "  " << b << "\n";
        std::cout << "regular SPEC analogs:\n";
        for (const auto& b : workloads::regular_spec())
            std::cout << "  " << b << "\n";
        std::cout << "CloudSuite analogs:\n";
        for (const auto& b : workloads::cloudsuite())
            std::cout << "  " << b << "\n";
        return 0;
    }

    // Resolve the input trace format once: the explicit flag wins,
    // then the extension, then .tria for unnamed legacy paths (the
    // header magic still rejects anything that is not one).
    frontend::TraceFormat tfmt = frontend::TraceFormat::Auto;
    if (!o.trace_format.empty() &&
        (!frontend::parse_format(o.trace_format, tfmt) ||
         tfmt == frontend::TraceFormat::Auto)) {
        std::cerr << "unknown --trace-format: " << o.trace_format
                  << " (tria | champsim | memtrace)\n";
        return 1;
    }
    if (!o.trace_path.empty() && tfmt == frontend::TraceFormat::Auto &&
        !frontend::detect_format(o.trace_path, tfmt))
        tfmt = frontend::TraceFormat::Tria;

    if (!o.save_trace_path.empty()) {
        // Source: --trace (format conversion, e.g. ChampSim -> .tria)
        // or a benchmark analog (trace recording). Both stream.
        std::unique_ptr<sim::Workload> wl;
        std::string source;
        if (!o.trace_path.empty()) {
            wl = frontend::open_trace(o.trace_path, tfmt);
            if (wl == nullptr)
                return 1;
            source = o.trace_path;
        } else {
            wl = workloads::make_benchmark(o.benchmark, o.scale);
            source = o.benchmark;
        }
        auto n = workloads::save_trace(o.save_trace_path, *wl,
                                       o.records);
        std::cout << "wrote " << n << " records of '" << source
                  << "' to " << o.save_trace_path << "\n";
        return n > 0 ? 0 : 1;
    }

    // Arm before any simulation work so wall_seconds covers the whole
    // run and the ≥95% attribution target is judged honestly.
    if (o.profile)
        obs::prof::Profiler::instance().enable();
    const auto prof_t0 = std::chrono::steady_clock::now();

    sim::MachineConfig cfg;
    cfg.l2_mshrs = o.mshrs;
    cfg.model_tlb = o.tlb;
    cfg.llc_replacement = repl_of(o.llc_repl);
    cfg.prefetch_degree = o.degree;

    stats::RunScale scale;
    scale.warmup_records = o.warmup;
    scale.measure_records = o.measure;
    scale.workload_scale = o.scale;

    // Validate the trace file before handing it to worker threads —
    // a streaming open (header only), never a whole-file load.
    std::string label;
    if (!o.mix.empty()) {
        label = o.prefetcher;
    } else if (!o.trace_path.empty()) {
        if (frontend::open_trace(o.trace_path, tfmt) == nullptr)
            return 1;
        label = o.trace_path + " / " + o.prefetcher;
    } else {
        label = o.benchmark + " / " + o.prefetcher;
    }

    if (!o.json) {
        auto cores =
            o.mix.empty() ? 1u : static_cast<unsigned>(o.mix.size());
        std::cout << "Machine: " << cores
                  << (cores == 1 ? " core\n" : " cores\n")
                  << cfg.describe(cores) << "\n";
    }

    // A Perfetto timeline without epoch spans is mostly empty; default
    // to ~20 epochs across the measurement window when unset.
    if (!o.trace_perfetto_path.empty() && o.epoch == 0)
        o.epoch = std::max<std::uint64_t>(1, o.measure / 20);

    obs::Observability obs;
    verify::InvariantSuite suite;
    if (o.verify)
        obs.verifier = &suite;
    obs.sampler.configure(o.epoch);
    if (!o.trace_events_path.empty() || !o.trace_perfetto_path.empty()) {
        obs.trace.enable(o.trace_capacity != 0
                             ? o.trace_capacity
                             : obs::EventTrace::DEFAULT_CAPACITY);
    }

    // The baseline and main runs are independent jobs; with --jobs>=2
    // they execute on parallel workers, byte-identical to serial.
    exec::Lab lab({.jobs = o.jobs});
    auto make_job = [&](const std::string& pf, bool with_obs) {
        exec::Job j;
        j.config = cfg;
        j.pf_spec = pf;
        j.degree = o.degree;
        j.scale = scale;
        if (!o.mix.empty()) {
            j.mix = o.mix;
        } else if (!o.trace_path.empty()) {
            // A trace spec is a first-class benchmark name: the job
            // streams the file with bounded memory and its JobKey
            // carries the resolved format + path + byte size.
            j.benchmark = frontend::trace_spec(o.trace_path, tfmt);
        } else {
            j.benchmark = o.benchmark;
        }
        if (with_obs && (wants_observability(o) || o.verify))
            j.obs = &obs;
        return j;
    };

    // Config / workload-table / Lab construction ran outside any
    // scope; attribute it so short runs still clear the ≥95% target.
    if (o.profile)
        obs::prof::Profiler::instance().add_external(
            "startup",
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - prof_t0)
                    .count()));

    std::optional<exec::Lab::JobId> base_id;
    if (o.baseline)
        base_id = lab.submit(make_job("none", false));
    auto main_id = lab.submit(make_job(o.prefetcher, true));

    const sim::RunResult* base =
        base_id ? &lab.result(*base_id) : nullptr;
    const auto& r = lab.result(main_id);
    {
        obs::prof::ProfScope prof_report("report");
        if (o.json)
            stats::write_json(std::cout, r);
        else
            report(label, r, base);
    }
    if (o.profile)
        finish_profile(o, obs, lab);
    int rc = emit_observability(o, r, obs, lab);
    if (o.verify) {
        if (!o.json) {
            std::cout << "verify: " << suite.checks_run()
                      << " checks, " << suite.violations()
                      << " violations\n";
        }
        for (const auto& v : suite.recorded())
            std::cerr << "verify: [" << v.checker << "] " << v.message
                      << "\n";
        if (suite.violations() > 0 && rc == 0)
            rc = 1;
    }
    return rc;
}
