file(REMOVE_RECURSE
  "CMakeFiles/triagesim.dir/triagesim.cpp.o"
  "CMakeFiles/triagesim.dir/triagesim.cpp.o.d"
  "triagesim"
  "triagesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triagesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
