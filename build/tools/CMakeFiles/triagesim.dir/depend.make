# Empty dependencies file for triagesim.
# This may be replaced when dependencies are built.
