file(REMOVE_RECURSE
  "CMakeFiles/fig20_degree.dir/fig20_degree.cpp.o"
  "CMakeFiles/fig20_degree.dir/fig20_degree.cpp.o.d"
  "fig20_degree"
  "fig20_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
