# Empty dependencies file for fig20_degree.
# This may be replaced when dependencies are built.
