# Empty dependencies file for fig17_core_scaling.
# This may be replaced when dependencies are built.
