file(REMOVE_RECURSE
  "CMakeFiles/fig17_core_scaling.dir/fig17_core_scaling.cpp.o"
  "CMakeFiles/fig17_core_scaling.dir/fig17_core_scaling.cpp.o.d"
  "fig17_core_scaling"
  "fig17_core_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
