# Empty dependencies file for fig16_multiprog_irregular.
# This may be replaced when dependencies are built.
