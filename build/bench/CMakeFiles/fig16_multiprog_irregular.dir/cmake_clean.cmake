file(REMOVE_RECURSE
  "CMakeFiles/fig16_multiprog_irregular.dir/fig16_multiprog_irregular.cpp.o"
  "CMakeFiles/fig16_multiprog_irregular.dir/fig16_multiprog_irregular.cpp.o.d"
  "fig16_multiprog_irregular"
  "fig16_multiprog_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_multiprog_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
