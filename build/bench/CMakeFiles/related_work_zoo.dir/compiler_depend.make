# Empty compiler generated dependencies file for related_work_zoo.
# This may be replaced when dependencies are built.
