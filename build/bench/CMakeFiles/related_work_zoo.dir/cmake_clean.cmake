file(REMOVE_RECURSE
  "CMakeFiles/related_work_zoo.dir/related_work_zoo.cpp.o"
  "CMakeFiles/related_work_zoo.dir/related_work_zoo.cpp.o.d"
  "related_work_zoo"
  "related_work_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
