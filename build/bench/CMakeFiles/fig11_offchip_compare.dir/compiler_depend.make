# Empty compiler generated dependencies file for fig11_offchip_compare.
# This may be replaced when dependencies are built.
