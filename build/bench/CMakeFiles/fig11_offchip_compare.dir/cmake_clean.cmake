file(REMOVE_RECURSE
  "CMakeFiles/fig11_offchip_compare.dir/fig11_offchip_compare.cpp.o"
  "CMakeFiles/fig11_offchip_compare.dir/fig11_offchip_compare.cpp.o.d"
  "fig11_offchip_compare"
  "fig11_offchip_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_offchip_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
