file(REMOVE_RECURSE
  "CMakeFiles/ablation_triage.dir/ablation_triage.cpp.o"
  "CMakeFiles/ablation_triage.dir/ablation_triage.cpp.o.d"
  "ablation_triage"
  "ablation_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
