# Empty compiler generated dependencies file for ablation_triage.
# This may be replaced when dependencies are built.
