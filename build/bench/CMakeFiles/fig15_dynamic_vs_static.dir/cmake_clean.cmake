file(REMOVE_RECURSE
  "CMakeFiles/fig15_dynamic_vs_static.dir/fig15_dynamic_vs_static.cpp.o"
  "CMakeFiles/fig15_dynamic_vs_static.dir/fig15_dynamic_vs_static.cpp.o.d"
  "fig15_dynamic_vs_static"
  "fig15_dynamic_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dynamic_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
