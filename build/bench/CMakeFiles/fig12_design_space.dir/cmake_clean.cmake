file(REMOVE_RECURSE
  "CMakeFiles/fig12_design_space.dir/fig12_design_space.cpp.o"
  "CMakeFiles/fig12_design_space.dir/fig12_design_space.cpp.o.d"
  "fig12_design_space"
  "fig12_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
