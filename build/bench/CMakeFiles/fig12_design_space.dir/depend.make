# Empty dependencies file for fig12_design_space.
# This may be replaced when dependencies are built.
