# Empty compiler generated dependencies file for fig06_coverage_accuracy.
# This may be replaced when dependencies are built.
