file(REMOVE_RECURSE
  "CMakeFiles/fig06_coverage_accuracy.dir/fig06_coverage_accuracy.cpp.o"
  "CMakeFiles/fig06_coverage_accuracy.dir/fig06_coverage_accuracy.cpp.o.d"
  "fig06_coverage_accuracy"
  "fig06_coverage_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_coverage_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
