# Empty compiler generated dependencies file for fig19_way_allocation.
# This may be replaced when dependencies are built.
