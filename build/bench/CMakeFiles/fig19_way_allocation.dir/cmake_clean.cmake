file(REMOVE_RECURSE
  "CMakeFiles/fig19_way_allocation.dir/fig19_way_allocation.cpp.o"
  "CMakeFiles/fig19_way_allocation.dir/fig19_way_allocation.cpp.o.d"
  "fig19_way_allocation"
  "fig19_way_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_way_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
