file(REMOVE_RECURSE
  "CMakeFiles/sens_epoch.dir/sens_epoch.cpp.o"
  "CMakeFiles/sens_epoch.dir/sens_epoch.cpp.o.d"
  "sens_epoch"
  "sens_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
