# Empty compiler generated dependencies file for sens_epoch.
# This may be replaced when dependencies are built.
