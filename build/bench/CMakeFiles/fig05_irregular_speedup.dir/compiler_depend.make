# Empty compiler generated dependencies file for fig05_irregular_speedup.
# This may be replaced when dependencies are built.
