file(REMOVE_RECURSE
  "CMakeFiles/fig05_irregular_speedup.dir/fig05_irregular_speedup.cpp.o"
  "CMakeFiles/fig05_irregular_speedup.dir/fig05_irregular_speedup.cpp.o.d"
  "fig05_irregular_speedup"
  "fig05_irregular_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_irregular_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
