file(REMOVE_RECURSE
  "CMakeFiles/fig14_cloudsuite.dir/fig14_cloudsuite.cpp.o"
  "CMakeFiles/fig14_cloudsuite.dir/fig14_cloudsuite.cpp.o.d"
  "fig14_cloudsuite"
  "fig14_cloudsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cloudsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
