# Empty compiler generated dependencies file for fig14_cloudsuite.
# This may be replaced when dependencies are built.
