# Empty compiler generated dependencies file for sens_phases.
# This may be replaced when dependencies are built.
