file(REMOVE_RECURSE
  "CMakeFiles/sens_phases.dir/sens_phases.cpp.o"
  "CMakeFiles/sens_phases.dir/sens_phases.cpp.o.d"
  "sens_phases"
  "sens_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
