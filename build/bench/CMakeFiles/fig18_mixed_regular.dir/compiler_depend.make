# Empty compiler generated dependencies file for fig18_mixed_regular.
# This may be replaced when dependencies are built.
