file(REMOVE_RECURSE
  "CMakeFiles/fig18_mixed_regular.dir/fig18_mixed_regular.cpp.o"
  "CMakeFiles/fig18_mixed_regular.dir/fig18_mixed_regular.cpp.o.d"
  "fig18_mixed_regular"
  "fig18_mixed_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_mixed_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
