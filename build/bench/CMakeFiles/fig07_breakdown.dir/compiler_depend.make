# Empty compiler generated dependencies file for fig07_breakdown.
# This may be replaced when dependencies are built.
