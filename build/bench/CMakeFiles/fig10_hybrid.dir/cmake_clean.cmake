file(REMOVE_RECURSE
  "CMakeFiles/fig10_hybrid.dir/fig10_hybrid.cpp.o"
  "CMakeFiles/fig10_hybrid.dir/fig10_hybrid.cpp.o.d"
  "fig10_hybrid"
  "fig10_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
