# Empty dependencies file for fig10_hybrid.
# This may be replaced when dependencies are built.
