file(REMOVE_RECURSE
  "CMakeFiles/sens_latency.dir/sens_latency.cpp.o"
  "CMakeFiles/sens_latency.dir/sens_latency.cpp.o.d"
  "sens_latency"
  "sens_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
