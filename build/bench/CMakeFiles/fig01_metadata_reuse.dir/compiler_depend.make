# Empty compiler generated dependencies file for fig01_metadata_reuse.
# This may be replaced when dependencies are built.
