file(REMOVE_RECURSE
  "CMakeFiles/fig01_metadata_reuse.dir/fig01_metadata_reuse.cpp.o"
  "CMakeFiles/fig01_metadata_reuse.dir/fig01_metadata_reuse.cpp.o.d"
  "fig01_metadata_reuse"
  "fig01_metadata_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_metadata_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
