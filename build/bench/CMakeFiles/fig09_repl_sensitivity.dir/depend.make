# Empty dependencies file for fig09_repl_sensitivity.
# This may be replaced when dependencies are built.
