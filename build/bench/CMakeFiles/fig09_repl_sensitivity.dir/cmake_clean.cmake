file(REMOVE_RECURSE
  "CMakeFiles/fig09_repl_sensitivity.dir/fig09_repl_sensitivity.cpp.o"
  "CMakeFiles/fig09_repl_sensitivity.dir/fig09_repl_sensitivity.cpp.o.d"
  "fig09_repl_sensitivity"
  "fig09_repl_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_repl_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
