# Empty compiler generated dependencies file for fig08_regular_spec.
# This may be replaced when dependencies are built.
