file(REMOVE_RECURSE
  "CMakeFiles/fig08_regular_spec.dir/fig08_regular_spec.cpp.o"
  "CMakeFiles/fig08_regular_spec.dir/fig08_regular_spec.cpp.o.d"
  "fig08_regular_spec"
  "fig08_regular_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_regular_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
