file(REMOVE_RECURSE
  "CMakeFiles/sens_fidelity.dir/sens_fidelity.cpp.o"
  "CMakeFiles/sens_fidelity.dir/sens_fidelity.cpp.o.d"
  "sens_fidelity"
  "sens_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
