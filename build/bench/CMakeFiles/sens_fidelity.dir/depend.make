# Empty dependencies file for sens_fidelity.
# This may be replaced when dependencies are built.
