# Empty compiler generated dependencies file for triage_workloads.
# This may be replaced when dependencies are built.
