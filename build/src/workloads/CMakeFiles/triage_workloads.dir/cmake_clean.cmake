file(REMOVE_RECURSE
  "CMakeFiles/triage_workloads.dir/kernels.cpp.o"
  "CMakeFiles/triage_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/triage_workloads.dir/mixes.cpp.o"
  "CMakeFiles/triage_workloads.dir/mixes.cpp.o.d"
  "CMakeFiles/triage_workloads.dir/phased.cpp.o"
  "CMakeFiles/triage_workloads.dir/phased.cpp.o.d"
  "CMakeFiles/triage_workloads.dir/spec.cpp.o"
  "CMakeFiles/triage_workloads.dir/spec.cpp.o.d"
  "CMakeFiles/triage_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/triage_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/triage_workloads.dir/trace_io.cpp.o"
  "CMakeFiles/triage_workloads.dir/trace_io.cpp.o.d"
  "libtriage_workloads.a"
  "libtriage_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
