file(REMOVE_RECURSE
  "libtriage_workloads.a"
)
