
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernels.cpp" "src/workloads/CMakeFiles/triage_workloads.dir/kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/triage_workloads.dir/kernels.cpp.o.d"
  "/root/repo/src/workloads/mixes.cpp" "src/workloads/CMakeFiles/triage_workloads.dir/mixes.cpp.o" "gcc" "src/workloads/CMakeFiles/triage_workloads.dir/mixes.cpp.o.d"
  "/root/repo/src/workloads/phased.cpp" "src/workloads/CMakeFiles/triage_workloads.dir/phased.cpp.o" "gcc" "src/workloads/CMakeFiles/triage_workloads.dir/phased.cpp.o.d"
  "/root/repo/src/workloads/spec.cpp" "src/workloads/CMakeFiles/triage_workloads.dir/spec.cpp.o" "gcc" "src/workloads/CMakeFiles/triage_workloads.dir/spec.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/triage_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/triage_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/trace_io.cpp" "src/workloads/CMakeFiles/triage_workloads.dir/trace_io.cpp.o" "gcc" "src/workloads/CMakeFiles/triage_workloads.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/triage_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/triage_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
