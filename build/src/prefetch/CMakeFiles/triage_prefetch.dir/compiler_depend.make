# Empty compiler generated dependencies file for triage_prefetch.
# This may be replaced when dependencies are built.
