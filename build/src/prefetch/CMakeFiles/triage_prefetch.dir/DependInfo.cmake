
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/best_offset.cpp" "src/prefetch/CMakeFiles/triage_prefetch.dir/best_offset.cpp.o" "gcc" "src/prefetch/CMakeFiles/triage_prefetch.dir/best_offset.cpp.o.d"
  "/root/repo/src/prefetch/ghb_pcdc.cpp" "src/prefetch/CMakeFiles/triage_prefetch.dir/ghb_pcdc.cpp.o" "gcc" "src/prefetch/CMakeFiles/triage_prefetch.dir/ghb_pcdc.cpp.o.d"
  "/root/repo/src/prefetch/ghb_temporal.cpp" "src/prefetch/CMakeFiles/triage_prefetch.dir/ghb_temporal.cpp.o" "gcc" "src/prefetch/CMakeFiles/triage_prefetch.dir/ghb_temporal.cpp.o.d"
  "/root/repo/src/prefetch/hybrid.cpp" "src/prefetch/CMakeFiles/triage_prefetch.dir/hybrid.cpp.o" "gcc" "src/prefetch/CMakeFiles/triage_prefetch.dir/hybrid.cpp.o.d"
  "/root/repo/src/prefetch/markov.cpp" "src/prefetch/CMakeFiles/triage_prefetch.dir/markov.cpp.o" "gcc" "src/prefetch/CMakeFiles/triage_prefetch.dir/markov.cpp.o.d"
  "/root/repo/src/prefetch/misb.cpp" "src/prefetch/CMakeFiles/triage_prefetch.dir/misb.cpp.o" "gcc" "src/prefetch/CMakeFiles/triage_prefetch.dir/misb.cpp.o.d"
  "/root/repo/src/prefetch/sms.cpp" "src/prefetch/CMakeFiles/triage_prefetch.dir/sms.cpp.o" "gcc" "src/prefetch/CMakeFiles/triage_prefetch.dir/sms.cpp.o.d"
  "/root/repo/src/prefetch/stride.cpp" "src/prefetch/CMakeFiles/triage_prefetch.dir/stride.cpp.o" "gcc" "src/prefetch/CMakeFiles/triage_prefetch.dir/stride.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/triage_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/triage_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
