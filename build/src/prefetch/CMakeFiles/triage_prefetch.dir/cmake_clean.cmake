file(REMOVE_RECURSE
  "CMakeFiles/triage_prefetch.dir/best_offset.cpp.o"
  "CMakeFiles/triage_prefetch.dir/best_offset.cpp.o.d"
  "CMakeFiles/triage_prefetch.dir/ghb_pcdc.cpp.o"
  "CMakeFiles/triage_prefetch.dir/ghb_pcdc.cpp.o.d"
  "CMakeFiles/triage_prefetch.dir/ghb_temporal.cpp.o"
  "CMakeFiles/triage_prefetch.dir/ghb_temporal.cpp.o.d"
  "CMakeFiles/triage_prefetch.dir/hybrid.cpp.o"
  "CMakeFiles/triage_prefetch.dir/hybrid.cpp.o.d"
  "CMakeFiles/triage_prefetch.dir/markov.cpp.o"
  "CMakeFiles/triage_prefetch.dir/markov.cpp.o.d"
  "CMakeFiles/triage_prefetch.dir/misb.cpp.o"
  "CMakeFiles/triage_prefetch.dir/misb.cpp.o.d"
  "CMakeFiles/triage_prefetch.dir/sms.cpp.o"
  "CMakeFiles/triage_prefetch.dir/sms.cpp.o.d"
  "CMakeFiles/triage_prefetch.dir/stride.cpp.o"
  "CMakeFiles/triage_prefetch.dir/stride.cpp.o.d"
  "libtriage_prefetch.a"
  "libtriage_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
