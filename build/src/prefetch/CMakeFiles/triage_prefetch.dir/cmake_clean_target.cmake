file(REMOVE_RECURSE
  "libtriage_prefetch.a"
)
