file(REMOVE_RECURSE
  "libtriage_replacement.a"
)
