file(REMOVE_RECURSE
  "CMakeFiles/triage_replacement.dir/belady.cpp.o"
  "CMakeFiles/triage_replacement.dir/belady.cpp.o.d"
  "CMakeFiles/triage_replacement.dir/drrip.cpp.o"
  "CMakeFiles/triage_replacement.dir/drrip.cpp.o.d"
  "CMakeFiles/triage_replacement.dir/hawkeye.cpp.o"
  "CMakeFiles/triage_replacement.dir/hawkeye.cpp.o.d"
  "CMakeFiles/triage_replacement.dir/lru.cpp.o"
  "CMakeFiles/triage_replacement.dir/lru.cpp.o.d"
  "CMakeFiles/triage_replacement.dir/optgen.cpp.o"
  "CMakeFiles/triage_replacement.dir/optgen.cpp.o.d"
  "CMakeFiles/triage_replacement.dir/ship.cpp.o"
  "CMakeFiles/triage_replacement.dir/ship.cpp.o.d"
  "CMakeFiles/triage_replacement.dir/srrip.cpp.o"
  "CMakeFiles/triage_replacement.dir/srrip.cpp.o.d"
  "libtriage_replacement.a"
  "libtriage_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
