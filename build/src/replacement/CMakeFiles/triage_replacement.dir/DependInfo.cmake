
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replacement/belady.cpp" "src/replacement/CMakeFiles/triage_replacement.dir/belady.cpp.o" "gcc" "src/replacement/CMakeFiles/triage_replacement.dir/belady.cpp.o.d"
  "/root/repo/src/replacement/drrip.cpp" "src/replacement/CMakeFiles/triage_replacement.dir/drrip.cpp.o" "gcc" "src/replacement/CMakeFiles/triage_replacement.dir/drrip.cpp.o.d"
  "/root/repo/src/replacement/hawkeye.cpp" "src/replacement/CMakeFiles/triage_replacement.dir/hawkeye.cpp.o" "gcc" "src/replacement/CMakeFiles/triage_replacement.dir/hawkeye.cpp.o.d"
  "/root/repo/src/replacement/lru.cpp" "src/replacement/CMakeFiles/triage_replacement.dir/lru.cpp.o" "gcc" "src/replacement/CMakeFiles/triage_replacement.dir/lru.cpp.o.d"
  "/root/repo/src/replacement/optgen.cpp" "src/replacement/CMakeFiles/triage_replacement.dir/optgen.cpp.o" "gcc" "src/replacement/CMakeFiles/triage_replacement.dir/optgen.cpp.o.d"
  "/root/repo/src/replacement/ship.cpp" "src/replacement/CMakeFiles/triage_replacement.dir/ship.cpp.o" "gcc" "src/replacement/CMakeFiles/triage_replacement.dir/ship.cpp.o.d"
  "/root/repo/src/replacement/srrip.cpp" "src/replacement/CMakeFiles/triage_replacement.dir/srrip.cpp.o" "gcc" "src/replacement/CMakeFiles/triage_replacement.dir/srrip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/triage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
