# Empty compiler generated dependencies file for triage_replacement.
# This may be replaced when dependencies are built.
