file(REMOVE_RECURSE
  "libtriage_cache.a"
)
