# Empty compiler generated dependencies file for triage_cache.
# This may be replaced when dependencies are built.
