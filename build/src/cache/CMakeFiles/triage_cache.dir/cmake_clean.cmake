file(REMOVE_RECURSE
  "CMakeFiles/triage_cache.dir/cache.cpp.o"
  "CMakeFiles/triage_cache.dir/cache.cpp.o.d"
  "CMakeFiles/triage_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/triage_cache.dir/hierarchy.cpp.o.d"
  "libtriage_cache.a"
  "libtriage_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
