# Empty dependencies file for triage_stats.
# This may be replaced when dependencies are built.
