file(REMOVE_RECURSE
  "CMakeFiles/triage_stats.dir/csv.cpp.o"
  "CMakeFiles/triage_stats.dir/csv.cpp.o.d"
  "CMakeFiles/triage_stats.dir/experiment.cpp.o"
  "CMakeFiles/triage_stats.dir/experiment.cpp.o.d"
  "CMakeFiles/triage_stats.dir/metrics.cpp.o"
  "CMakeFiles/triage_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/triage_stats.dir/report.cpp.o"
  "CMakeFiles/triage_stats.dir/report.cpp.o.d"
  "CMakeFiles/triage_stats.dir/table.cpp.o"
  "CMakeFiles/triage_stats.dir/table.cpp.o.d"
  "libtriage_stats.a"
  "libtriage_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
