file(REMOVE_RECURSE
  "libtriage_stats.a"
)
