file(REMOVE_RECURSE
  "libtriage_core.a"
)
