file(REMOVE_RECURSE
  "CMakeFiles/triage_core.dir/meta_repl.cpp.o"
  "CMakeFiles/triage_core.dir/meta_repl.cpp.o.d"
  "CMakeFiles/triage_core.dir/metadata_store.cpp.o"
  "CMakeFiles/triage_core.dir/metadata_store.cpp.o.d"
  "CMakeFiles/triage_core.dir/partition.cpp.o"
  "CMakeFiles/triage_core.dir/partition.cpp.o.d"
  "CMakeFiles/triage_core.dir/tag_compressor.cpp.o"
  "CMakeFiles/triage_core.dir/tag_compressor.cpp.o.d"
  "CMakeFiles/triage_core.dir/training_unit.cpp.o"
  "CMakeFiles/triage_core.dir/training_unit.cpp.o.d"
  "CMakeFiles/triage_core.dir/triage.cpp.o"
  "CMakeFiles/triage_core.dir/triage.cpp.o.d"
  "libtriage_core.a"
  "libtriage_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
