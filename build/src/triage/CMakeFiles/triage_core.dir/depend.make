# Empty dependencies file for triage_core.
# This may be replaced when dependencies are built.
