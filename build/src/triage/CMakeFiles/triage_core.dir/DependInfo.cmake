
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/triage/meta_repl.cpp" "src/triage/CMakeFiles/triage_core.dir/meta_repl.cpp.o" "gcc" "src/triage/CMakeFiles/triage_core.dir/meta_repl.cpp.o.d"
  "/root/repo/src/triage/metadata_store.cpp" "src/triage/CMakeFiles/triage_core.dir/metadata_store.cpp.o" "gcc" "src/triage/CMakeFiles/triage_core.dir/metadata_store.cpp.o.d"
  "/root/repo/src/triage/partition.cpp" "src/triage/CMakeFiles/triage_core.dir/partition.cpp.o" "gcc" "src/triage/CMakeFiles/triage_core.dir/partition.cpp.o.d"
  "/root/repo/src/triage/tag_compressor.cpp" "src/triage/CMakeFiles/triage_core.dir/tag_compressor.cpp.o" "gcc" "src/triage/CMakeFiles/triage_core.dir/tag_compressor.cpp.o.d"
  "/root/repo/src/triage/training_unit.cpp" "src/triage/CMakeFiles/triage_core.dir/training_unit.cpp.o" "gcc" "src/triage/CMakeFiles/triage_core.dir/training_unit.cpp.o.d"
  "/root/repo/src/triage/triage.cpp" "src/triage/CMakeFiles/triage_core.dir/triage.cpp.o" "gcc" "src/triage/CMakeFiles/triage_core.dir/triage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/triage_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/triage_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/triage_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/replacement/CMakeFiles/triage_replacement.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
