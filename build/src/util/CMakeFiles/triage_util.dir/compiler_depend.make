# Empty compiler generated dependencies file for triage_util.
# This may be replaced when dependencies are built.
