file(REMOVE_RECURSE
  "CMakeFiles/triage_util.dir/log.cpp.o"
  "CMakeFiles/triage_util.dir/log.cpp.o.d"
  "CMakeFiles/triage_util.dir/rng.cpp.o"
  "CMakeFiles/triage_util.dir/rng.cpp.o.d"
  "libtriage_util.a"
  "libtriage_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
