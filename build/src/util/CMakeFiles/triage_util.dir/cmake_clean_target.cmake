file(REMOVE_RECURSE
  "libtriage_util.a"
)
