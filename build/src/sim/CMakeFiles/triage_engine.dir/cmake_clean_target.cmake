file(REMOVE_RECURSE
  "libtriage_engine.a"
)
