file(REMOVE_RECURSE
  "CMakeFiles/triage_engine.dir/cpu.cpp.o"
  "CMakeFiles/triage_engine.dir/cpu.cpp.o.d"
  "CMakeFiles/triage_engine.dir/multicore.cpp.o"
  "CMakeFiles/triage_engine.dir/multicore.cpp.o.d"
  "CMakeFiles/triage_engine.dir/system.cpp.o"
  "CMakeFiles/triage_engine.dir/system.cpp.o.d"
  "libtriage_engine.a"
  "libtriage_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
