# Empty compiler generated dependencies file for triage_engine.
# This may be replaced when dependencies are built.
