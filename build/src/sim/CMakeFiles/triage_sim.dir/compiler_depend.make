# Empty compiler generated dependencies file for triage_sim.
# This may be replaced when dependencies are built.
