
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/triage_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/triage_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/dram.cpp" "src/sim/CMakeFiles/triage_sim.dir/dram.cpp.o" "gcc" "src/sim/CMakeFiles/triage_sim.dir/dram.cpp.o.d"
  "/root/repo/src/sim/tlb.cpp" "src/sim/CMakeFiles/triage_sim.dir/tlb.cpp.o" "gcc" "src/sim/CMakeFiles/triage_sim.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/triage_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
