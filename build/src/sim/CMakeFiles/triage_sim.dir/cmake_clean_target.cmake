file(REMOVE_RECURSE
  "libtriage_sim.a"
)
