file(REMOVE_RECURSE
  "CMakeFiles/triage_sim.dir/config.cpp.o"
  "CMakeFiles/triage_sim.dir/config.cpp.o.d"
  "CMakeFiles/triage_sim.dir/dram.cpp.o"
  "CMakeFiles/triage_sim.dir/dram.cpp.o.d"
  "CMakeFiles/triage_sim.dir/tlb.cpp.o"
  "CMakeFiles/triage_sim.dir/tlb.cpp.o.d"
  "libtriage_sim.a"
  "libtriage_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triage_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
