file(REMOVE_RECURSE
  "CMakeFiles/database_index.dir/database_index.cpp.o"
  "CMakeFiles/database_index.dir/database_index.cpp.o.d"
  "database_index"
  "database_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
