# Empty dependencies file for database_index.
# This may be replaced when dependencies are built.
