file(REMOVE_RECURSE
  "CMakeFiles/test_misb.dir/test_misb.cpp.o"
  "CMakeFiles/test_misb.dir/test_misb.cpp.o.d"
  "test_misb"
  "test_misb.pdb"
  "test_misb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
