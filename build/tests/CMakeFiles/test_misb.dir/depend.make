# Empty dependencies file for test_misb.
# This may be replaced when dependencies are built.
