# Empty compiler generated dependencies file for test_model_details.
# This may be replaced when dependencies are built.
