file(REMOVE_RECURSE
  "CMakeFiles/test_model_details.dir/test_model_details.cpp.o"
  "CMakeFiles/test_model_details.dir/test_model_details.cpp.o.d"
  "test_model_details"
  "test_model_details.pdb"
  "test_model_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
