file(REMOVE_RECURSE
  "CMakeFiles/test_triage.dir/test_triage.cpp.o"
  "CMakeFiles/test_triage.dir/test_triage.cpp.o.d"
  "test_triage"
  "test_triage.pdb"
  "test_triage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
