file(REMOVE_RECURSE
  "CMakeFiles/test_prefetcher_internals.dir/test_prefetcher_internals.cpp.o"
  "CMakeFiles/test_prefetcher_internals.dir/test_prefetcher_internals.cpp.o.d"
  "test_prefetcher_internals"
  "test_prefetcher_internals.pdb"
  "test_prefetcher_internals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetcher_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
