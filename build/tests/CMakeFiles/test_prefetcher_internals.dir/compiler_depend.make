# Empty compiler generated dependencies file for test_prefetcher_internals.
# This may be replaced when dependencies are built.
