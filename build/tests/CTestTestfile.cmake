# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_replacement[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_prefetchers[1]_include.cmake")
include("/root/repo/build/tests/test_misb[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_model_details[1]_include.cmake")
include("/root/repo/build/tests/test_prefetcher_internals[1]_include.cmake")
include("/root/repo/build/tests/test_triage[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_multicore[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
