/**
 * @file
 * Replacement-policy interface used by SetAssocCache and by Triage's
 * metadata store. Concrete policies live in src/replacement/.
 */
#ifndef TRIAGE_CACHE_REPLACEMENT_HPP
#define TRIAGE_CACHE_REPLACEMENT_HPP

#include <cstdint>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace triage::cache {

/**
 * Direct view of a concrete LRU policy's state, for hosts that want to
 * run the (trivial) LRU bookkeeping inline instead of paying a virtual
 * call per touch. The policy object remains the owner; the view only
 * aliases its storage (docs/performance.md).
 */
struct LruFastView {
    std::uint64_t* stamps = nullptr; ///< sets x assoc recency stamps
    std::uint64_t* clock = nullptr;  ///< shared monotonic counter
    std::uint32_t assoc = 0;
};

/** Per-access context handed to the replacement policy. */
struct ReplAccess {
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    sim::Addr tag = 0; ///< block address (or metadata key)
    sim::Pc pc = 0;    ///< PC of the triggering access (Hawkeye training)
    bool is_prefetch = false;
};

/**
 * Replacement policy for one set-associative structure.
 *
 * The host structure owns validity; @c victim() is only consulted when
 * every candidate way is valid. @p way_begin / @p way_end bound the
 * ways eligible under the current partition mask.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A resident entry was re-referenced. */
    virtual void on_hit(const ReplAccess& a) = 0;

    /** A new entry was installed in @p a.way (after victim()). */
    virtual void on_insert(const ReplAccess& a) = 0;

    /**
     * An access missed (before insertion); lets history-based policies
     * (Hawkeye) train even when the host decides not to insert.
     */
    virtual void on_miss(std::uint32_t set, sim::Addr tag, sim::Pc pc) = 0;

    /** Entry evicted or invalidated without reuse. */
    virtual void on_invalidate(std::uint32_t set, std::uint32_t way) = 0;

    /** Choose a victim way in [way_begin, way_end). */
    virtual std::uint32_t victim(std::uint32_t set, std::uint32_t way_begin,
                                 std::uint32_t way_end) = 0;

    virtual const char* name() const = 0;

    /**
     * Fill @p out with a direct view of this policy's state if it is a
     * plain LRU whose callbacks a host may replay inline (the LRU
     * callbacks are pure stamp updates, so running them in the host
     * instead of through the vtable is observationally identical).
     * Stateful policies keep the default and stay fully virtual.
     */
    virtual bool lru_fast_view(LruFastView* out)
    {
        (void)out;
        return false;
    }

    /**
     * Save/restore the policy's mutable state (recency stamps, RRPVs,
     * predictor tables, …). Geometry comes from construction and must
     * already match. Every concrete policy overrides this; the pure
     * interface has no state of its own.
     */
    virtual void checkpoint(sim::Snapshot& s) = 0;
};

} // namespace triage::cache

#endif // TRIAGE_CACHE_REPLACEMENT_HPP
