/**
 * @file
 * MshrQueue: completion times of outstanding off-chip fills, kept as a
 * sorted ring over a flat vector (docs/performance.md §Hot-path v2).
 *
 * Every L2-miss demand access retires completed fills and registers a
 * new one; the prefetch path does the same minus the stall. The
 * previous `std::multiset<Cycle>` paid a node allocation/free and a
 * tree rebalance per event. Completion times are near-monotonic (DRAM
 * estimates only exceed the running maximum by bounded reordering), so
 * a sorted vector insert is almost always a push_back, and retiring
 * completed fills is a *batched drain*: advance a head index over the
 * leading run of completed entries — no per-element structure work at
 * all. The dead prefix is compacted lazily (a memmove of the few live
 * entries) so the vector never grows unboundedly.
 *
 * Semantics match the multiset exactly: duplicates allowed, front() is
 * the minimum, and the serialized form is the same ascending sequence.
 */
#ifndef TRIAGE_CACHE_MSHR_QUEUE_HPP
#define TRIAGE_CACHE_MSHR_QUEUE_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace triage::cache {

class MshrQueue
{
  public:
    bool empty() const { return head_ == q_.size(); }
    std::size_t size() const { return q_.size() - head_; }

    /** Earliest outstanding completion. @pre !empty(). */
    sim::Cycle front() const { return q_[head_]; }

    void
    pop_front()
    {
        ++head_;
        maybe_compact();
    }

    /** Batched drain: retire every fill completed by @p now. */
    void
    retire_until(sim::Cycle now)
    {
        while (head_ < q_.size() && q_[head_] <= now)
            ++head_;
        maybe_compact();
    }

    void
    insert(sim::Cycle completion)
    {
        q_.insert(std::upper_bound(q_.begin() +
                                       static_cast<std::ptrdiff_t>(head_),
                                   q_.end(), completion),
                  completion);
    }

    void
    clear()
    {
        q_.clear();
        head_ = 0;
    }

    void
    checkpoint(sim::Snapshot& s)
    {
        std::vector<sim::Cycle> live(
            q_.begin() + static_cast<std::ptrdiff_t>(head_), q_.end());
        s.io_pod_vec(live);
        if (s.loading()) {
            q_ = std::move(live);
            head_ = 0;
        }
    }

  private:
    void
    maybe_compact()
    {
        if (head_ == q_.size()) {
            q_.clear();
            head_ = 0;
        } else if (head_ >= 256) {
            q_.erase(q_.begin(),
                     q_.begin() + static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
    }

    std::vector<sim::Cycle> q_; ///< ascending in [head_, q_.size())
    std::size_t head_ = 0;      ///< completed prefix already drained
};

} // namespace triage::cache

#endif // TRIAGE_CACHE_MSHR_QUEUE_HPP
