#include "cache/hierarchy.hpp"

#include <algorithm>
#include <optional>

#include "obs/event_trace.hpp"
#include "obs/lifecycle.hpp"
#include "obs/registry.hpp"

#include "replacement/drrip.hpp"
#include "replacement/hawkeye.hpp"
#include "replacement/lru.hpp"
#include "replacement/ship.hpp"
#include "replacement/srrip.hpp"
#include "util/log.hpp"

namespace triage::cache {

namespace {

std::unique_ptr<ReplacementPolicy>
make_policy(sim::ReplPolicy kind, std::uint32_t sets, std::uint32_t assoc)
{
    switch (kind) {
      case sim::ReplPolicy::Lru:
        return std::make_unique<replacement::Lru>(sets, assoc);
      case sim::ReplPolicy::Srrip:
        return std::make_unique<replacement::Srrip>(sets, assoc);
      case sim::ReplPolicy::Drrip:
        return std::make_unique<replacement::Drrip>(sets, assoc);
      case sim::ReplPolicy::Ship:
        return std::make_unique<replacement::Ship>(sets, assoc);
      case sim::ReplPolicy::Hawkeye:
        return std::make_unique<replacement::Hawkeye>(sets, assoc);
    }
    util::panic("unknown ReplPolicy");
}

std::unique_ptr<SetAssocCache>
make_cache(const std::string& name, const sim::CacheConfig& cc,
           sim::ReplPolicy repl = sim::ReplPolicy::Lru)
{
    CacheGeometry geom{name, cc.size_bytes, cc.assoc};
    auto sets = static_cast<std::uint32_t>(
        cc.size_bytes / (sim::BLOCK_SIZE * cc.assoc));
    return std::make_unique<SetAssocCache>(
        geom, make_policy(repl, sets, cc.assoc));
}

} // namespace

MemorySystem::MemorySystem(const sim::MachineConfig& cfg, unsigned n_cores)
    : cfg_(cfg), n_cores_(n_cores), dram_(cfg)
{
    TRIAGE_ASSERT(n_cores >= 1);
    cores_.resize(n_cores);
    for (unsigned c = 0; c < n_cores; ++c) {
        cores_[c].l1 = make_cache("l1d", cfg.l1d);
        cores_[c].l2 = make_cache("l2", cfg.l2);
        if (cfg.l1_stride_prefetcher)
            cores_[c].stride =
                std::make_unique<prefetch::StridePrefetcher>();
        if (cfg.model_tlb) {
            cores_[c].tlb = std::make_unique<sim::Tlb>(
                cfg.l1_tlb_entries, cfg.l2_tlb_entries,
                cfg.l2_tlb_latency, cfg.page_walk_latency);
        }
    }
    sim::CacheConfig shared = cfg.llc;
    shared.size_bytes = cfg.llc.size_bytes * n_cores;
    llc_ = make_cache("llc", shared, cfg.llc_replacement);
}

void
MemorySystem::set_prefetcher(unsigned core,
                             std::unique_ptr<prefetch::Prefetcher> pf)
{
    cores_[core].l2pf = std::move(pf);
}

prefetch::Prefetcher*
MemorySystem::prefetcher(unsigned core)
{
    return cores_[core].l2pf.get();
}

prefetch::StridePrefetcher*
MemorySystem::l1_stride(unsigned core)
{
    return cores_[core].stride.get();
}

sim::Cycle
MemorySystem::llc_latency() const
{
    return cfg_.llc.latency + cfg_.llc_extra_latency;
}

void
MemorySystem::credit_prefetch(unsigned core, sim::Addr block,
                              const LookupResult& r)
{
    if (!r.first_prefetch_use || r.pf_owner == nullptr)
        return;
    ++r.pf_owner->stats().useful;
    if (r.late_prefetch)
        ++r.pf_owner->stats().late;
    if (trace_ != nullptr)
        trace_->emit(obs::EventKind::PrefetchUseful, block,
                     r.late_prefetch ? 1 : 0);
    // Close the lifecycle record, if one is open for this block
    // (stride-owned and warmup-era prefetches have none).
    if (lifecycle_ != nullptr)
        lifecycle_->on_use(core, block, r.late_prefetch);
}

sim::Cycle
MemorySystem::claim_mshr(PerCore& pcs, sim::Cycle issue,
                         sim::Cycle completion_estimate)
{
    if (cfg_.l2_mshrs == 0)
        return issue;
    // Batched drain: retire every fill completed by issue time in one
    // head advance (cache/mshr_queue.hpp).
    pcs.mshrs.retire_until(issue);
    if (pcs.mshrs.size() >= cfg_.l2_mshrs) {
        // Full: the request leaves when the oldest fill returns.
        issue = pcs.mshrs.front();
        pcs.mshrs.pop_front();
    }
    pcs.mshrs.insert(std::max(completion_estimate, issue));
    return issue;
}

void
MemorySystem::lookahead_hint(unsigned core, sim::Addr byte_addr)
{
    PerCore& pcs = cores_[core];
    const sim::Addr block = sim::block_of(byte_addr);
    pcs.l1->prefetch_hint(block);
    pcs.l2->prefetch_hint(block);
    llc_->prefetch_hint(block);
    if (pcs.l2pf != nullptr)
        pcs.l2pf->pre_train_hint(block);
    // Remember the hinted block so the in-access hints (the fallback
    // for drivers without lookahead, e.g. the multicore quantum loop)
    // skip the duplicate work. Host-only state: never checkpointed.
    pcs.hinted_prev = pcs.hinted_block;
    pcs.hinted_block = block;
}

sim::Cycle
MemorySystem::access(unsigned core, sim::Pc pc, sim::Addr byte_addr,
                     bool is_write, sim::Cycle now)
{
    PerCore& pcs = cores_[core];
    sim::Addr block = sim::block_of(byte_addr);

    if (trace_ != nullptr)
        trace_->set_context(now, core);
    if (lifecycle_ != nullptr)
        lifecycle_->set_trigger_pc(pc);

    // Start pulling the host-machine cache lines the miss path will
    // touch — the LLC's tag/stamp rows and the prefetcher's metadata
    // rows — while the TLB/L1/L2 lookups run. On miss-heavy streams
    // (the ones that are slow to simulate) nearly every access reaches
    // those structures; on hit-heavy streams the wasted hints are
    // cheap. Wall-clock only, no simulated effect (docs/performance.md).
    // Skipped when the run loop's one-record lookahead already hinted
    // this block with far more lead time.
    if (block != pcs.hinted_block && block != pcs.hinted_prev) {
        llc_->prefetch_hint(block);
        if (pcs.l2pf != nullptr)
            pcs.l2pf->pre_train_hint(block);
    }

    // Address translation (optional Table 1 TLBs): latency only.
    if (pcs.tlb != nullptr)
        now += pcs.tlb->access(byte_addr);

    // L1D.
    LookupResult r1 = pcs.l1->access(block, pc, now, is_write);
    if (pcs.stride != nullptr) {
        prefetch::TrainEvent l1ev{pc, block, now, core, is_write,
                                  r1.hit, false};
        pcs.stride->train(l1ev, *this);
    }
    if (r1.hit) {
        sim::Cycle done = now + cfg_.l1d.latency;
        return std::max(done, r1.ready_time);
    }

    // L2: the prefetcher training stream.
    LookupResult r2 = pcs.l2->access(block, pc, now, is_write);
    sim::Cycle completion;
    prefetch::TrainEvent ev{pc,       block, now,
                            core,     is_write, r2.hit,
                            r2.first_prefetch_use};
    if (r2.hit) {
        credit_prefetch(core, block, r2);
        completion = std::max(now + cfg_.l2.latency, r2.ready_time);
    } else {
        completion = fetch_into_l2(core, pc, block, now, false, nullptr,
                                   nullptr);
    }
    if (pcs.l2pf != nullptr)
        pcs.l2pf->train(ev, *this);

    // Fill L1 (write-allocate); L1 victims write back into L2.
    Eviction e1 = pcs.l1->insert(block, pc, completion, is_write, false);
    if (e1.valid && e1.dirty) {
        if (!pcs.l2->mark_dirty(e1.block))
            writeback_to_llc(core, e1.block, now);
    }
    return completion;
}

sim::Cycle
MemorySystem::fetch_into_l2(unsigned core, sim::Pc pc, sim::Addr block,
                            sim::Cycle now, bool is_prefetch,
                            prefetch::Prefetcher* owner,
                            prefetch::PfOutcome* outcome)
{
    PerCore& pcs = cores_[core];
    sim::Cycle completion;
    Shard* sh = sharded_ ? shards_[core].get() : nullptr;

    // LLC probe.
    LookupResult r3;
    if (sh != nullptr) {
        r3 = shard_llc_access(*sh, block, now, is_prefetch);
        sh->ops.push_back({.kind = ShardOp::Kind::LlcAccess,
                           .flag1 = is_prefetch,
                           .block = block,
                           .pc = pc,
                           .t0 = now});
    } else {
        r3 = llc_->access(block, pc, now, false, is_prefetch);
    }
    if (r3.hit) {
        completion = std::max(now + llc_latency(), r3.ready_time);
        if (outcome != nullptr)
            *outcome = prefetch::PfOutcome::FilledFromLlc;
    } else {
        // Request leaves the chip after the LLC lookup.
        sim::Cycle issue = now + llc_latency();
        if (is_prefetch) {
            // Prefetches never stall on MSHRs; a full file drops them.
            if (cfg_.l2_mshrs != 0) {
                pcs.mshrs.retire_until(issue);
                if (pcs.mshrs.size() >= cfg_.l2_mshrs) {
                    if (outcome != nullptr)
                        *outcome = prefetch::PfOutcome::DroppedBandwidth;
                    return 0;
                }
            }
            if (sh != nullptr) {
                completion = sh->dram.prefetch_read(block, issue);
                // A drop never happened from this core's view, so it is
                // not replayed either.
                if (completion != 0) {
                    sh->ops.push_back(
                        {.kind = ShardOp::Kind::DramPrefetch,
                         .block = block,
                         .t0 = issue});
                }
            } else {
                completion = dram_.prefetch_read(block, issue);
            }
            if (completion == 0) {
                if (outcome != nullptr)
                    *outcome = prefetch::PfOutcome::DroppedBandwidth;
                return 0;
            }
            if (cfg_.l2_mshrs != 0)
                pcs.mshrs.insert(completion);
        } else {
            issue = claim_mshr(pcs, issue, issue + cfg_.dram_latency);
            if (sh != nullptr) {
                completion = sh->dram.demand_read(block, issue);
                sh->ops.push_back({.kind = ShardOp::Kind::DramDemand,
                                   .block = block,
                                   .t0 = issue});
            } else {
                completion = dram_.demand_read(block, issue);
            }
        }
        if (outcome != nullptr)
            *outcome = prefetch::PfOutcome::IssuedToDram;
        if (sh != nullptr) {
            // Mirror insert() for this core's view; the canonical fill
            // (and its eviction + writeback) happens at replay.
            sh->overlay.ref(block) = LineState{
                false, is_prefetch, completion,
                is_prefetch ? owner : nullptr};
            sh->ops.push_back({.kind = ShardOp::Kind::LlcInsert,
                               .flag1 = is_prefetch,
                               .block = block,
                               .pc = pc,
                               .t0 = completion,
                               .t1 = now,
                               .owner = owner});
        } else {
            Eviction ev = llc_->insert(block, pc, completion, false,
                                       is_prefetch, owner);
            if (ev.valid && ev.dirty)
                dram_.writeback(ev.block, now);
        }
    }

    Eviction e2 = pcs.l2->insert(block, pc, completion, false, is_prefetch,
                                 owner);
    if (e2.valid && e2.dirty)
        writeback_to_llc(core, e2.block, now);
    // A still-unused prefetched victim closes its lifecycle record as
    // early-evicted (absent records — e.g. warmup-era — are ignored).
    if (lifecycle_ != nullptr && e2.valid && e2.prefetched)
        lifecycle_->on_evict(core, e2.block);
    if (pcs.l2pf != nullptr)
        pcs.l2pf->on_fill(block, completion, is_prefetch);
    return completion;
}

void
MemorySystem::writeback_to_llc(unsigned core, sim::Addr block,
                               sim::Cycle now)
{
    if (sharded_) {
        // Log the writeback (the replay re-runs this function against
        // the real LLC) and mirror its effect on this core's overlay.
        Shard& sh = *shards_[core];
        sh.ops.push_back({.kind = ShardOp::Kind::Writeback,
                          .block = block,
                          .t0 = now});
        if (LineState* st = shard_line(sh, block)) {
            st->dirty = true;
            return;
        }
        sh.overlay.ref(block) = LineState{true, false, now, nullptr};
        return;
    }
    (void)core;
    if (llc_->mark_dirty(block))
        return;
    // Non-inclusive victim fill: install the dirty block in the LLC.
    Eviction ev = llc_->insert(block, 0, now, true, false);
    if (ev.valid && ev.dirty)
        dram_.writeback(ev.block, now);
}

prefetch::PfOutcome
MemorySystem::issue_prefetch(unsigned core, sim::Addr block,
                             sim::Cycle when, prefetch::Prefetcher* owner)
{
    PerCore& pcs = cores_[core];
    if (trace_ != nullptr)
        trace_->set_context(when, core);
    if (pcs.l2->contains(block)) {
        if (trace_ != nullptr)
            trace_->emit(obs::EventKind::PrefetchRedundant, block);
        return prefetch::PfOutcome::RedundantL2;
    }
    prefetch::PfOutcome outcome = prefetch::PfOutcome::RedundantL2;
    fetch_into_l2(core, 0, block, when, true, owner, &outcome);
    // Lifecycle tracking covers the L2 prefetcher under test only:
    // owner-less direct issues and the L1 stride are excluded so class
    // counts reconcile against that prefetcher's issued aggregate.
    if (lifecycle_ != nullptr && owner != nullptr &&
        owner != static_cast<prefetch::Prefetcher*>(pcs.stride.get())) {
        switch (outcome) {
          case prefetch::PfOutcome::IssuedToDram:
          case prefetch::PfOutcome::FilledFromLlc:
            lifecycle_->on_issue(core, block);
            break;
          case prefetch::PfOutcome::DroppedBandwidth:
            lifecycle_->on_drop(core);
            break;
          default:
            break;
        }
    }
    if (trace_ != nullptr) {
        switch (outcome) {
          case prefetch::PfOutcome::IssuedToDram:
            trace_->emit(obs::EventKind::PrefetchIssued, block, 0);
            break;
          case prefetch::PfOutcome::FilledFromLlc:
            trace_->emit(obs::EventKind::PrefetchIssued, block, 1);
            break;
          case prefetch::PfOutcome::DroppedBandwidth:
            trace_->emit(obs::EventKind::PrefetchDropped, block);
            break;
          default:
            trace_->emit(obs::EventKind::PrefetchRedundant, block);
            break;
        }
    }
    return outcome;
}

void
MemorySystem::count_metadata_llc_access(unsigned core, bool is_write)
{
    ++cores_[core].energy.onchip_accesses;
    (void)is_write;
}

sim::Cycle
MemorySystem::offchip_metadata_access(unsigned core, sim::Cycle now,
                                      std::uint32_t bytes, bool is_write,
                                      bool charge_time)
{
    cores_[core].energy.offchip_accesses +=
        (bytes + sim::BLOCK_SIZE - 1) / sim::BLOCK_SIZE;
    if (sharded_) {
        Shard& sh = *shards_[core];
        sh.ops.push_back({.kind = ShardOp::Kind::Metadata,
                          .flag0 = is_write,
                          .flag1 = charge_time,
                          .bytes = bytes,
                          .t0 = now});
        return sh.dram.metadata_access(now, bytes, is_write, charge_time);
    }
    return dram_.metadata_access(now, bytes, is_write, charge_time);
}

void
MemorySystem::request_metadata_capacity(unsigned core, std::uint64_t bytes,
                                        sim::Cycle now)
{
    if (sharded_) {
        // Partition changes move LLC ways (flush-on-shrink) — far too
        // global for a shard. Defer to the quantum barrier; the shard's
        // own view dedups repeat requests like the live path would.
        Shard& sh = *shards_[core];
        if (sh.meta_bytes == bytes)
            return;
        sh.meta_bytes = bytes;
        sh.ops.push_back({.kind = ShardOp::Kind::Partition,
                          .t0 = now,
                          .arg = bytes});
        return;
    }
    PerCore& pcs = cores_[core];
    if (pcs.meta_bytes == bytes)
        return;
    pcs.meta_bytes = bytes;
    apply_partition(now);
}

void
MemorySystem::apply_partition(sim::Cycle now)
{
    const std::uint64_t way_bytes = cfg_.llc_way_bytes(n_cores_);
    std::uint64_t total_bytes = 0;
    for (const auto& c : cores_)
        total_bytes += c.meta_bytes;
    auto meta_ways = static_cast<std::uint32_t>(
        (total_bytes + way_bytes - 1) / way_bytes);
    // At most half the LLC may hold metadata (Section 4.5).
    meta_ways = std::min(meta_ways, llc_->assoc() / 2);
    std::uint32_t new_data_ways = llc_->assoc() - meta_ways;

    if (new_data_ways != llc_->data_ways()) {
        std::uint64_t flushed = 0;
        llc_->set_data_ways(new_data_ways, &flushed);
        // Flushed dirty lines consume writeback bandwidth. The flush is
        // spread over the following epoch in reality; we charge the
        // traffic in full but reserve only a bounded number of slots so
        // a repartition does not serialize the channel for megacycles.
        std::uint64_t reserved = std::min<std::uint64_t>(flushed, 256);
        for (std::uint64_t i = 0; i < reserved; ++i)
            dram_.writeback(i, now);
        if (flushed > reserved) {
            // Remaining bytes: traffic counted, no reservation.
            dram_.account_traffic(sim::TrafficClass::Writeback,
                                  (flushed - reserved) * sim::BLOCK_SIZE);
        }
    }

    // Update per-core time-weighted way attribution. Cores advance in
    // quanta, so a repartition can be timestamped slightly before a
    // previous one observed from another core; clamp rather than wrap.
    for (auto& c : cores_) {
        if (now > c.way_since) {
            c.way_integral +=
                c.ways_now * static_cast<double>(now - c.way_since);
            c.way_since = now;
        }
        c.ways_now = way_bytes == 0
                         ? 0.0
                         : static_cast<double>(c.meta_bytes) /
                               static_cast<double>(way_bytes);
    }
}

const MetadataEnergy&
MemorySystem::metadata_energy(unsigned core) const
{
    return cores_[core].energy;
}

std::uint32_t
MemorySystem::metadata_ways() const
{
    return llc_->assoc() - llc_->data_ways();
}

std::uint64_t
MemorySystem::metadata_bytes(unsigned core) const
{
    return cores_[core].meta_bytes;
}

double
MemorySystem::avg_metadata_ways(unsigned core, sim::Cycle end_cycle) const
{
    const PerCore& c = cores_[core];
    double integral = c.way_integral;
    if (end_cycle > c.way_since) {
        integral +=
            c.ways_now * static_cast<double>(end_cycle - c.way_since);
    }
    if (end_cycle <= stats_epoch_start_)
        return c.ways_now;
    double span = static_cast<double>(end_cycle - stats_epoch_start_);
    return std::min(integral / span,
                    static_cast<double>(llc_->assoc()));
}

void
MemorySystem::clear_stats(sim::Cycle now)
{
    for (auto& c : cores_) {
        c.l1->clear_stats();
        c.l2->clear_stats();
        if (c.stride)
            c.stride->clear_stats();
        if (c.l2pf)
            c.l2pf->clear_stats();
        c.energy = {};
        c.way_integral = 0.0;
        c.way_since = now;
    }
    llc_->clear_stats();
    dram_.clear_traffic();
    stats_epoch_start_ = now;
}

void
MemorySystem::register_stats(obs::Registry& reg) const
{
    for (unsigned c = 0; c < n_cores_; ++c) {
        const PerCore& pcs = cores_[c];
        const std::string base = "core" + std::to_string(c);
        pcs.l1->register_stats(reg, base + ".l1");
        pcs.l2->register_stats(reg, base + ".l2");
        if (pcs.tlb)
            pcs.tlb->register_stats(reg, base + ".tlb");
        if (pcs.stride)
            pcs.stride->register_stats(reg, base + ".stride");
        if (pcs.l2pf)
            pcs.l2pf->register_stats(reg, base + ".pf");
        obs::Scope s(reg, base + ".meta");
        s.bind_counter("onchip_accesses", &pcs.energy.onchip_accesses);
        s.bind_counter("offchip_accesses", &pcs.energy.offchip_accesses);
        s.bind_counter("capacity_bytes", &pcs.meta_bytes);
        const PerCore* pp = &pcs;
        s.add_formula("ways_now", [pp] { return pp->ways_now; });
        s.add_formula("energy_units",
                      [pp] { return pp->energy.units(); });
    }
    llc_->register_stats(reg, "llc");
    dram_.register_stats(reg, "dram");
    const SetAssocCache* llc = llc_.get();
    reg.add_formula("llc.metadata_ways", [llc] {
        return static_cast<double>(llc->assoc() - llc->data_ways());
    });
    reg.add_formula("llc.data_ways", [llc] {
        return static_cast<double>(llc->data_ways());
    });
}

void
MemorySystem::set_trace(obs::EventTrace* trace)
{
    trace_ = trace;
    for (auto& c : cores_) {
        if (c.l2pf)
            c.l2pf->set_trace(trace);
        if (c.stride)
            c.stride->set_trace(trace);
    }
}

PfOwnerCodec
MemorySystem::pf_owner_codec()
{
    PfOwnerCodec codec;
    for (auto& c : cores_) {
        if (c.stride)
            c.stride->enumerate(codec.owners);
        if (c.l2pf)
            c.l2pf->enumerate(codec.owners);
    }
    return codec;
}

void
MemorySystem::checkpoint(sim::Snapshot& s)
{
    const PfOwnerCodec codec = pf_owner_codec();
    s.section("mem");
    for (auto& c : cores_) {
        c.l1->checkpoint(s, codec);
        c.l2->checkpoint(s, codec);
        if (c.stride)
            c.stride->checkpoint(s);
        // Presence of the L2 prefetcher and TLB is fixed by the job
        // spec / machine config, which the snapshot fingerprint pins.
        if (c.l2pf)
            c.l2pf->checkpoint(s);
        if (c.tlb)
            c.tlb->checkpoint(s);
        s.section("mem.core");
        c.mshrs.checkpoint(s);
        s.io_pod(c.energy);
        s.io(c.meta_bytes);
        s.io(c.way_integral);
        s.io(c.way_since);
        s.io(c.ways_now);
    }
    llc_->checkpoint(s, codec);
    dram_.checkpoint(s);
    s.io(stats_epoch_start_);
}

LineState*
MemorySystem::shard_line(Shard& sh, sim::Addr block)
{
    if (LineState* hit = sh.overlay.find(block))
        return hit;
    if (std::optional<LineState> base = llc_->peek(block)) {
        LineState& st = sh.overlay.ref(block);
        st = *base;
        return &st;
    }
    return nullptr;
}

LookupResult
MemorySystem::shard_llc_access(Shard& sh, sim::Addr block, sim::Cycle now,
                               bool is_prefetch_probe)
{
    LineState* st = shard_line(sh, block);
    if (st == nullptr)
        return {};
    LookupResult res{true, false, false, st->ready_time, nullptr};
    if (is_prefetch_probe)
        return res;
    // Mirror SetAssocCache::access's demand-touch of a prefetched line
    // on the shard's view; the replayed access performs the canonical
    // transition (stats, replacement state, lifecycle credit).
    if (st->prefetched) {
        res.first_prefetch_use = true;
        res.pf_owner = st->pf_owner;
        if (st->ready_time > now)
            res.late_prefetch = true;
        st->prefetched = false;
        st->pf_owner = nullptr;
    }
    return res;
}

void
MemorySystem::shard_begin()
{
    TRIAGE_ASSERT(!sharded_, "nested shard_begin");
    if (trace_ != nullptr || lifecycle_ != nullptr) {
        util::fatal("sharded execution cannot drive the event trace or "
                    "lifecycle tracker; detach observers first");
    }
    if (shards_.empty()) {
        shards_.reserve(n_cores_);
        for (unsigned c = 0; c < n_cores_; ++c)
            shards_.push_back(std::make_unique<Shard>(dram_));
    }
    for (unsigned c = 0; c < n_cores_; ++c) {
        Shard& sh = *shards_[c];
        sh.dram = dram_;
        sh.overlay.clear();
        sh.ops.clear();
        sh.meta_bytes = cores_[c].meta_bytes;
    }
    sharded_ = true;
}

void
MemorySystem::shard_merge()
{
    TRIAGE_ASSERT(sharded_, "shard_merge without shard_begin");
    // Replay runs against the real structures via the legacy paths.
    sharded_ = false;
    for (unsigned c = 0; c < n_cores_; ++c) {
        for (const ShardOp& op : shards_[c]->ops) {
            switch (op.kind) {
              case ShardOp::Kind::LlcAccess:
                llc_->access(op.block, op.pc, op.t0, false, op.flag1);
                break;
              case ShardOp::Kind::LlcInsert: {
                  Eviction ev = llc_->insert(op.block, op.pc, op.t0,
                                             op.flag0, op.flag1, op.owner);
                  if (ev.valid && ev.dirty)
                      dram_.writeback(ev.block, op.t1);
                  break;
              }
              case ShardOp::Kind::Writeback:
                writeback_to_llc(c, op.block, op.t0);
                break;
              case ShardOp::Kind::DramDemand:
                dram_.demand_read(op.block, op.t0);
                break;
              case ShardOp::Kind::DramPrefetch:
                dram_.prefetch_read(op.block, op.t0);
                break;
              case ShardOp::Kind::Metadata:
                dram_.metadata_access(op.t0, op.bytes, op.flag0, op.flag1);
                break;
              case ShardOp::Kind::Partition:
                request_metadata_capacity(c, op.arg, op.t0);
                break;
            }
        }
    }
}

} // namespace triage::cache
