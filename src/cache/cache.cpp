#include "cache/cache.hpp"

#include "obs/registry.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::cache {

SetAssocCache::SetAssocCache(const CacheGeometry& geom,
                             std::unique_ptr<ReplacementPolicy> repl)
    : name_(geom.name), assoc_(geom.assoc), data_ways_(geom.assoc),
      repl_(std::move(repl))
{
    TRIAGE_ASSERT(geom.assoc > 0);
    TRIAGE_ASSERT(geom.size_bytes % (sim::BLOCK_SIZE * geom.assoc) == 0,
                  "cache size must be a whole number of sets");
    sets_ = static_cast<std::uint32_t>(
        geom.size_bytes / (sim::BLOCK_SIZE * geom.assoc));
    TRIAGE_ASSERT(util::is_pow2(sets_), "set count must be a power of two");
    tags_.assign(static_cast<std::size_t>(sets_) * assoc_, INVALID_TAG);
    state_.assign(static_cast<std::size_t>(sets_) * assoc_, LineState{});
    TRIAGE_ASSERT(repl_ != nullptr);
    if (!repl_->lru_fast_view(&lru_))
        lru_ = {};
}

std::uint32_t
SetAssocCache::set_of(sim::Addr block) const
{
    return static_cast<std::uint32_t>(block & (sets_ - 1));
}

std::uint32_t
SetAssocCache::find_way(std::size_t base, sim::Addr block) const
{
    // Invalid ways hold INVALID_TAG (never a real block), so validity
    // needs no separate test: one compare per way, vectorizable.
    const sim::Addr* row = tags_.data() + base;
    for (std::uint32_t w = 0; w < data_ways_; ++w) {
        if (row[w] == block)
            return w;
    }
    return NO_WAY;
}

LookupResult
SetAssocCache::access(sim::Addr block, sim::Pc pc, sim::Cycle now,
                      bool is_write, bool is_prefetch_probe)
{
    const std::uint32_t set = set_of(block);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const std::uint32_t way = find_way(base, block);
    if (way == NO_WAY) {
        if (is_prefetch_probe)
            ++stats_.pf_probe_misses;
        else
            ++stats_.demand_misses;
        repl_miss(set, block, pc);
        return {};
    }
    LineState& st = state_[base + way];
    LookupResult res{true, false, false, st.ready_time, nullptr};
    if (is_prefetch_probe) {
        ++stats_.pf_probe_hits;
        repl_touch(set, way, block, pc, true, false);
        return res;
    }
    ++stats_.demand_hits;
    if (st.prefetched) {
        ++stats_.prefetch_hits;
        res.first_prefetch_use = true;
        res.pf_owner = st.pf_owner;
        if (st.ready_time > now) {
            ++stats_.late_prefetch_hits;
            res.late_prefetch = true;
        }
        st.prefetched = false;
        st.pf_owner = nullptr;
    }
    if (is_write)
        st.dirty = true;
    repl_touch(set, way, block, pc, false, false);
    return res;
}

bool
SetAssocCache::contains(sim::Addr block) const
{
    const std::size_t base =
        static_cast<std::size_t>(set_of(block)) * assoc_;
    return find_way(base, block) != NO_WAY;
}

std::optional<LineState>
SetAssocCache::peek(sim::Addr block) const
{
    const std::size_t base =
        static_cast<std::size_t>(set_of(block)) * assoc_;
    const std::uint32_t way = find_way(base, block);
    if (way == NO_WAY)
        return std::nullopt;
    return state_[base + way];
}

bool
SetAssocCache::mark_dirty(sim::Addr block)
{
    const std::size_t base =
        static_cast<std::size_t>(set_of(block)) * assoc_;
    const std::uint32_t way = find_way(base, block);
    if (way == NO_WAY)
        return false;
    state_[base + way].dirty = true;
    return true;
}

Eviction
SetAssocCache::insert(sim::Addr block, sim::Pc pc, sim::Cycle ready_time,
                      bool dirty, bool is_prefetch,
                      prefetch::Prefetcher* pf_owner)
{
    const std::uint32_t set = set_of(block);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    sim::Addr* row = tags_.data() + base;

    // One pass finds both the resident way (re-insertion refresh) and
    // the first invalid way (preferred fill target).
    std::uint32_t resident = NO_WAY;
    std::uint32_t invalid_way = NO_WAY;
    for (std::uint32_t w = 0; w < data_ways_; ++w) {
        if (row[w] == block) {
            resident = w;
            break;
        }
        if (row[w] == INVALID_TAG && invalid_way == NO_WAY)
            invalid_way = w;
    }

    // Re-insertion of a resident block just refreshes its state.
    if (resident != NO_WAY) {
        LineState& st = state_[base + resident];
        st.dirty |= dirty;
        if (ready_time < st.ready_time)
            st.ready_time = ready_time;
        return {};
    }

    std::uint32_t victim_way = invalid_way;
    Eviction ev;
    if (victim_way == NO_WAY) {
        victim_way = repl_victim(set, 0, data_ways_);
        TRIAGE_ASSERT(victim_way < data_ways_, "victim outside partition");
        const LineState& v = state_[base + victim_way];
        ev.valid = true;
        ev.block = row[victim_way];
        ev.dirty = v.dirty;
        ev.prefetched = v.prefetched;
        ++stats_.evictions;
        if (v.dirty)
            ++stats_.dirty_evictions;
        if (v.prefetched)
            ++stats_.unused_prefetch_evictions;
        repl_invalidate(set, victim_way);
        --live_lines_;
    }
    row[victim_way] = block;
    state_[base + victim_way] = {dirty, is_prefetch, ready_time,
                                 is_prefetch ? pf_owner : nullptr};
    ++live_lines_;
    repl_touch(set, victim_way, block, pc, is_prefetch, true);
    return ev;
}

bool
SetAssocCache::invalidate(sim::Addr block)
{
    const std::uint32_t set = set_of(block);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const std::uint32_t way = find_way(base, block);
    if (way == NO_WAY)
        return false;
    repl_invalidate(set, way);
    tags_[base + way] = INVALID_TAG;
    --live_lines_;
    return true;
}

void
SetAssocCache::set_data_ways(std::uint32_t n, std::uint64_t* flushed_dirty)
{
    TRIAGE_ASSERT(n >= 1 && n <= assoc_, "data partition out of range");
    if (n < data_ways_) {
        // Shrinking: hand ways [n, data_ways_) to metadata; invalidate.
        std::uint64_t dirty_count = 0;
        for (std::uint32_t set = 0; set < sets_; ++set) {
            const std::size_t base =
                static_cast<std::size_t>(set) * assoc_;
            for (std::uint32_t w = n; w < data_ways_; ++w) {
                if (tags_[base + w] != INVALID_TAG) {
                    if (state_[base + w].dirty)
                        ++dirty_count;
                    repl_invalidate(set, w);
                    tags_[base + w] = INVALID_TAG;
                    --live_lines_;
                }
            }
        }
        if (flushed_dirty != nullptr)
            *flushed_dirty = dirty_count;
    } else if (flushed_dirty != nullptr) {
        *flushed_dirty = 0;
    }
    // Growing needs no work: reclaimed ways are already invalid.
    data_ways_ = n;
}

std::uint64_t
SetAssocCache::count_valid_lines_slow() const
{
    std::uint64_t n = 0;
    for (const auto& t : tags_)
        n += t != INVALID_TAG ? 1 : 0;
    return n;
}

void
SetAssocCache::self_check(
    const std::function<void(const std::string&)>& report) const
{
    const std::uint64_t slow = count_valid_lines_slow();
    if (slow != live_lines_) {
        report(name_ + ": live-line counter " +
               std::to_string(live_lines_) + " != tag scan " +
               std::to_string(slow));
    }
    for (std::uint32_t set = 0; set < sets_; ++set) {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const sim::Addr tag = tags_[base + w];
            if (tag == INVALID_TAG)
                continue;
            if (w >= data_ways_) {
                report(name_ + ": set " + std::to_string(set) + " way " +
                       std::to_string(w) +
                       " holds a line outside the data partition (" +
                       std::to_string(data_ways_) + " ways)");
            }
            if (set_of(tag) != set) {
                report(name_ + ": set " + std::to_string(set) +
                       " holds block mapping to set " +
                       std::to_string(set_of(tag)));
            }
            for (std::uint32_t v = w + 1; v < assoc_; ++v) {
                if (tags_[base + v] == tag) {
                    report(name_ + ": set " + std::to_string(set) +
                           " holds duplicate tag in ways " +
                           std::to_string(w) + " and " +
                           std::to_string(v));
                }
            }
        }
        if (lru_.stamps == nullptr)
            continue;
        // Inline-LRU stamp discipline: 0 marks an invalid way, valid
        // ways carry a stamp the global clock has already passed.
        const std::uint64_t* row =
            lru_.stamps + static_cast<std::size_t>(set) * lru_.assoc;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const bool valid = tags_[base + w] != INVALID_TAG;
            if (!valid && row[w] != 0) {
                report(name_ + ": set " + std::to_string(set) + " way " +
                       std::to_string(w) + " invalid but LRU stamp " +
                       std::to_string(row[w]) + " nonzero");
            }
            if (valid && (row[w] == 0 || row[w] > *lru_.clock)) {
                report(name_ + ": set " + std::to_string(set) + " way " +
                       std::to_string(w) + " valid with LRU stamp " +
                       std::to_string(row[w]) + " outside (0, clock=" +
                       std::to_string(*lru_.clock) + "]");
            }
        }
    }
}

void
SetAssocCache::register_stats(obs::Registry& reg,
                              const std::string& prefix) const
{
    obs::Scope s(reg, prefix);
    s.bind_counter("demand_hits", &stats_.demand_hits);
    s.bind_counter("demand_misses", &stats_.demand_misses);
    s.bind_counter("pf_probe_hits", &stats_.pf_probe_hits);
    s.bind_counter("pf_probe_misses", &stats_.pf_probe_misses);
    s.bind_counter("prefetch_hits", &stats_.prefetch_hits);
    s.bind_counter("late_prefetch_hits", &stats_.late_prefetch_hits);
    s.bind_counter("evictions", &stats_.evictions);
    s.bind_counter("dirty_evictions", &stats_.dirty_evictions);
    s.bind_counter("unused_prefetch_evictions",
                   &stats_.unused_prefetch_evictions);
    const CacheStats* st = &stats_;
    s.add_formula("demand_miss_rate", [st] {
        const double acc = static_cast<double>(st->demand_accesses());
        return acc > 0.0 ? static_cast<double>(st->demand_misses) / acc : 0.0;
    });
}

void
SetAssocCache::checkpoint(sim::Snapshot& s, const PfOwnerCodec& codec)
{
    s.section("cache");
    std::uint32_t sets = sets_, assoc = assoc_;
    s.io(sets);
    s.io(assoc);
    TRIAGE_ASSERT(sets == sets_ && assoc == assoc_,
                  "cache geometry mismatch on restore");
    s.io(data_ways_);
    s.io_pod_vec(tags_);
    s.io(live_lines_);
    std::uint64_t n = state_.size();
    s.io(n);
    TRIAGE_ASSERT(n == state_.size(), "cache state size mismatch");
    for (auto& st : state_) {
        s.io(st.dirty);
        s.io(st.prefetched);
        s.io(st.ready_time);
        std::uint32_t owner = s.saving() ? codec.encode(st.pf_owner) : 0;
        s.io(owner);
        if (s.loading())
            st.pf_owner = codec.decode(owner);
    }
    repl_->checkpoint(s);
    s.io_pod(stats_);
    if (s.loading()) {
        // Defensive: the fast view aliases the policy's storage; its
        // vectors were resized in place (same size, no realloc), but
        // re-fetch anyway so a policy that reallocates stays correct.
        lru_ = {};
        repl_->lru_fast_view(&lru_);
    }
}

} // namespace triage::cache
