#include "cache/cache.hpp"

#include "obs/registry.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"
#include "util/mem.hpp"
#include "util/simd_probe.hpp"

namespace triage::cache {

SetAssocCache::SetAssocCache(const CacheGeometry& geom,
                             std::unique_ptr<ReplacementPolicy> repl)
    : name_(geom.name), assoc_(geom.assoc), data_ways_(geom.assoc),
      repl_(std::move(repl))
{
    TRIAGE_ASSERT(geom.assoc > 0);
    TRIAGE_ASSERT(geom.size_bytes % (sim::BLOCK_SIZE * geom.assoc) == 0,
                  "cache size must be a whole number of sets");
    sets_ = static_cast<std::uint32_t>(
        geom.size_bytes / (sim::BLOCK_SIZE * geom.assoc));
    TRIAGE_ASSERT(util::is_pow2(sets_), "set count must be a power of two");
    tags_.assign(static_cast<std::size_t>(sets_) * assoc_, INVALID_TAG);
    hot_.assign(static_cast<std::size_t>(sets_) * assoc_, 0);
    owners_.assign(static_cast<std::size_t>(sets_) * assoc_, nullptr);
    // LLC-sized tag/state arrays see hashed-set random rows; back them
    // with huge pages so probes don't each pay a dTLB walk (no-op for
    // the small L1/L2 arrays — see util/mem.hpp).
    util::hint_hugepages(tags_);
    util::hint_hugepages(hot_);
    TRIAGE_ASSERT(repl_ != nullptr);
    if (!repl_->lru_fast_view(&lru_))
        lru_ = {};
}

std::uint32_t
SetAssocCache::set_of(sim::Addr block) const
{
    return static_cast<std::uint32_t>(block & (sets_ - 1));
}

std::uint32_t
SetAssocCache::find_way(std::size_t base, sim::Addr block) const
{
    // Invalid ways hold INVALID_TAG (never a real block), so validity
    // needs no separate test: one compare per way, SIMD-probed
    // (util/simd_probe.hpp; NPOS and NO_WAY are both all-ones).
    return util::simd::find_first_eq(tags_.data() + base, data_ways_,
                                     block);
}

LookupResult
SetAssocCache::access(sim::Addr block, sim::Pc pc, sim::Cycle now,
                      bool is_write, bool is_prefetch_probe)
{
    const std::uint32_t set = set_of(block);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const std::uint32_t way = find_way(base, block);
    if (way == NO_WAY) {
        if (is_prefetch_probe)
            ++stats_.pf_probe_misses;
        else
            ++stats_.demand_misses;
        repl_miss(set, block, pc);
        return {};
    }
    std::uint64_t& h = hot_[base + way];
    LookupResult res{true, false, false, h & HOT_READY_MASK, nullptr};
    if (is_prefetch_probe) {
        ++stats_.pf_probe_hits;
        repl_touch(set, way, block, pc, true, false);
        return res;
    }
    ++stats_.demand_hits;
    if ((h & HOT_PREFETCHED) != 0) {
        ++stats_.prefetch_hits;
        res.first_prefetch_use = true;
        res.pf_owner = owners_[base + way];
        if ((h & HOT_READY_MASK) > now) {
            ++stats_.late_prefetch_hits;
            res.late_prefetch = true;
        }
        h &= ~HOT_PREFETCHED;
        owners_[base + way] = nullptr;
    }
    if (is_write)
        h |= HOT_DIRTY;
    repl_touch(set, way, block, pc, false, false);
    return res;
}

bool
SetAssocCache::contains(sim::Addr block) const
{
    const std::size_t base =
        static_cast<std::size_t>(set_of(block)) * assoc_;
    return find_way(base, block) != NO_WAY;
}

std::optional<LineState>
SetAssocCache::peek(sim::Addr block) const
{
    const std::size_t base =
        static_cast<std::size_t>(set_of(block)) * assoc_;
    const std::uint32_t way = find_way(base, block);
    if (way == NO_WAY)
        return std::nullopt;
    const std::uint64_t h = hot_[base + way];
    return LineState{(h & HOT_DIRTY) != 0, (h & HOT_PREFETCHED) != 0,
                     h & HOT_READY_MASK, owners_[base + way]};
}

bool
SetAssocCache::mark_dirty(sim::Addr block)
{
    const std::size_t base =
        static_cast<std::size_t>(set_of(block)) * assoc_;
    const std::uint32_t way = find_way(base, block);
    if (way == NO_WAY)
        return false;
    hot_[base + way] |= HOT_DIRTY;
    return true;
}

Eviction
SetAssocCache::insert(sim::Addr block, sim::Pc pc, sim::Cycle ready_time,
                      bool dirty, bool is_prefetch,
                      prefetch::Prefetcher* pf_owner)
{
    const std::uint32_t set = set_of(block);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    sim::Addr* row = tags_.data() + base;

    // Re-insertion of a resident block just refreshes its state; only
    // a miss needs the first invalid way (preferred fill target). One
    // fused tag-or-invalid scan covers the steady state (full set, no
    // holes); only when a hole precedes the probe point can the block
    // still sit behind it, needing a second look at the tail.
    std::uint32_t resident = NO_WAY;
    std::uint32_t victim_way = NO_WAY;
    const std::uint32_t probe = util::simd::find_first_eq_either(
        row, data_ways_, block, INVALID_TAG);
    if (probe != NO_WAY) {
        if (row[probe] == block) {
            resident = probe;
        } else {
            victim_way = probe;
            const std::uint32_t rest = util::simd::find_first_eq(
                row + probe + 1, data_ways_ - probe - 1, block);
            if (rest != NO_WAY)
                resident = probe + 1 + rest;
        }
    }
    if (resident != NO_WAY) {
        std::uint64_t& h = hot_[base + resident];
        if (dirty)
            h |= HOT_DIRTY;
        if (ready_time < (h & HOT_READY_MASK))
            h = (h & ~HOT_READY_MASK) | ready_time;
        return {};
    }

    Eviction ev;
    if (victim_way == NO_WAY) {
        victim_way = repl_victim(set, 0, data_ways_);
        TRIAGE_ASSERT(victim_way < data_ways_, "victim outside partition");
        const std::uint64_t v = hot_[base + victim_way];
        ev.valid = true;
        ev.block = row[victim_way];
        ev.dirty = (v & HOT_DIRTY) != 0;
        ev.prefetched = (v & HOT_PREFETCHED) != 0;
        ++stats_.evictions;
        if (ev.dirty)
            ++stats_.dirty_evictions;
        if (ev.prefetched)
            ++stats_.unused_prefetch_evictions;
        repl_invalidate(set, victim_way);
        --live_lines_;
    }
    row[victim_way] = block;
    hot_[base + victim_way] = ready_time | (dirty ? HOT_DIRTY : 0) |
                              (is_prefetch ? HOT_PREFETCHED : 0);
    owners_[base + victim_way] = is_prefetch ? pf_owner : nullptr;
    ++live_lines_;
    repl_touch(set, victim_way, block, pc, is_prefetch, true);
    return ev;
}

bool
SetAssocCache::invalidate(sim::Addr block)
{
    const std::uint32_t set = set_of(block);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const std::uint32_t way = find_way(base, block);
    if (way == NO_WAY)
        return false;
    repl_invalidate(set, way);
    tags_[base + way] = INVALID_TAG;
    --live_lines_;
    return true;
}

void
SetAssocCache::set_data_ways(std::uint32_t n, std::uint64_t* flushed_dirty)
{
    TRIAGE_ASSERT(n >= 1 && n <= assoc_, "data partition out of range");
    if (n < data_ways_) {
        // Shrinking: hand ways [n, data_ways_) to metadata; invalidate.
        std::uint64_t dirty_count = 0;
        for (std::uint32_t set = 0; set < sets_; ++set) {
            const std::size_t base =
                static_cast<std::size_t>(set) * assoc_;
            for (std::uint32_t w = n; w < data_ways_; ++w) {
                if (tags_[base + w] != INVALID_TAG) {
                    if ((hot_[base + w] & HOT_DIRTY) != 0)
                        ++dirty_count;
                    repl_invalidate(set, w);
                    tags_[base + w] = INVALID_TAG;
                    --live_lines_;
                }
            }
        }
        if (flushed_dirty != nullptr)
            *flushed_dirty = dirty_count;
    } else if (flushed_dirty != nullptr) {
        *flushed_dirty = 0;
    }
    // Growing needs no work: reclaimed ways are already invalid.
    data_ways_ = n;
}

std::uint64_t
SetAssocCache::count_valid_lines_slow() const
{
    std::uint64_t n = 0;
    for (const auto& t : tags_)
        n += t != INVALID_TAG ? 1 : 0;
    return n;
}

void
SetAssocCache::self_check(
    const std::function<void(const std::string&)>& report) const
{
    const std::uint64_t slow = count_valid_lines_slow();
    if (slow != live_lines_) {
        report(name_ + ": live-line counter " +
               std::to_string(live_lines_) + " != tag scan " +
               std::to_string(slow));
    }
    for (std::uint32_t set = 0; set < sets_; ++set) {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const sim::Addr tag = tags_[base + w];
            if (tag == INVALID_TAG)
                continue;
            if (w >= data_ways_) {
                report(name_ + ": set " + std::to_string(set) + " way " +
                       std::to_string(w) +
                       " holds a line outside the data partition (" +
                       std::to_string(data_ways_) + " ways)");
            }
            if (set_of(tag) != set) {
                report(name_ + ": set " + std::to_string(set) +
                       " holds block mapping to set " +
                       std::to_string(set_of(tag)));
            }
            for (std::uint32_t v = w + 1; v < assoc_; ++v) {
                if (tags_[base + v] == tag) {
                    report(name_ + ": set " + std::to_string(set) +
                           " holds duplicate tag in ways " +
                           std::to_string(w) + " and " +
                           std::to_string(v));
                }
            }
        }
        if (lru_.stamps == nullptr)
            continue;
        // Inline-LRU stamp discipline: 0 marks an invalid way, valid
        // ways carry a stamp the global clock has already passed.
        const std::uint64_t* row =
            lru_.stamps + static_cast<std::size_t>(set) * lru_.assoc;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const bool valid = tags_[base + w] != INVALID_TAG;
            if (!valid && row[w] != 0) {
                report(name_ + ": set " + std::to_string(set) + " way " +
                       std::to_string(w) + " invalid but LRU stamp " +
                       std::to_string(row[w]) + " nonzero");
            }
            if (valid && (row[w] == 0 || row[w] > *lru_.clock)) {
                report(name_ + ": set " + std::to_string(set) + " way " +
                       std::to_string(w) + " valid with LRU stamp " +
                       std::to_string(row[w]) + " outside (0, clock=" +
                       std::to_string(*lru_.clock) + "]");
            }
        }
    }
}

void
SetAssocCache::register_stats(obs::Registry& reg,
                              const std::string& prefix) const
{
    obs::Scope s(reg, prefix);
    s.bind_counter("demand_hits", &stats_.demand_hits);
    s.bind_counter("demand_misses", &stats_.demand_misses);
    s.bind_counter("pf_probe_hits", &stats_.pf_probe_hits);
    s.bind_counter("pf_probe_misses", &stats_.pf_probe_misses);
    s.bind_counter("prefetch_hits", &stats_.prefetch_hits);
    s.bind_counter("late_prefetch_hits", &stats_.late_prefetch_hits);
    s.bind_counter("evictions", &stats_.evictions);
    s.bind_counter("dirty_evictions", &stats_.dirty_evictions);
    s.bind_counter("unused_prefetch_evictions",
                   &stats_.unused_prefetch_evictions);
    const CacheStats* st = &stats_;
    s.add_formula("demand_miss_rate", [st] {
        const double acc = static_cast<double>(st->demand_accesses());
        return acc > 0.0 ? static_cast<double>(st->demand_misses) / acc : 0.0;
    });
}

void
SetAssocCache::checkpoint(sim::Snapshot& s, const PfOwnerCodec& codec)
{
    s.section("cache");
    std::uint32_t sets = sets_, assoc = assoc_;
    s.io(sets);
    s.io(assoc);
    TRIAGE_ASSERT(sets == sets_ && assoc == assoc_,
                  "cache geometry mismatch on restore");
    s.io(data_ways_);
    s.io_pod_vec(tags_);
    s.io(live_lines_);
    std::uint64_t n = hot_.size();
    s.io(n);
    TRIAGE_ASSERT(n == hot_.size(), "cache state size mismatch");
    // Field-for-field the same stream as the old LineState loop (bool
    // dirty, bool prefetched, u64 ready_time, u32 owner id), so
    // snapshots written before the hot/cold split load unchanged.
    for (std::size_t i = 0; i < hot_.size(); ++i) {
        bool dirty = (hot_[i] & HOT_DIRTY) != 0;
        bool prefetched = (hot_[i] & HOT_PREFETCHED) != 0;
        sim::Cycle ready_time = hot_[i] & HOT_READY_MASK;
        s.io(dirty);
        s.io(prefetched);
        s.io(ready_time);
        std::uint32_t owner = s.saving() ? codec.encode(owners_[i]) : 0;
        s.io(owner);
        if (s.loading()) {
            hot_[i] = (ready_time & HOT_READY_MASK) |
                      (dirty ? HOT_DIRTY : 0) |
                      (prefetched ? HOT_PREFETCHED : 0);
            owners_[i] = codec.decode(owner);
        }
    }
    repl_->checkpoint(s);
    s.io_pod(stats_);
    if (s.loading()) {
        // Defensive: the fast view aliases the policy's storage; its
        // vectors were resized in place (same size, no realloc), but
        // re-fetch anyway so a policy that reallocates stays correct.
        lru_ = {};
        repl_->lru_fast_view(&lru_);
    }
}

} // namespace triage::cache
