#include "cache/cache.hpp"

#include "obs/registry.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::cache {

SetAssocCache::SetAssocCache(const CacheGeometry& geom,
                             std::unique_ptr<ReplacementPolicy> repl)
    : name_(geom.name), assoc_(geom.assoc), data_ways_(geom.assoc),
      repl_(std::move(repl))
{
    TRIAGE_ASSERT(geom.assoc > 0);
    TRIAGE_ASSERT(geom.size_bytes % (sim::BLOCK_SIZE * geom.assoc) == 0,
                  "cache size must be a whole number of sets");
    sets_ = static_cast<std::uint32_t>(
        geom.size_bytes / (sim::BLOCK_SIZE * geom.assoc));
    TRIAGE_ASSERT(util::is_pow2(sets_), "set count must be a power of two");
    lines_.resize(static_cast<std::size_t>(sets_) * assoc_);
    TRIAGE_ASSERT(repl_ != nullptr);
}

std::uint32_t
SetAssocCache::set_of(sim::Addr block) const
{
    return static_cast<std::uint32_t>(block & (sets_ - 1));
}

Line*
SetAssocCache::find_line(sim::Addr block)
{
    std::uint32_t set = set_of(block);
    Line* row = &lines_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t w = 0; w < data_ways_; ++w) {
        if (row[w].valid && row[w].block == block)
            return &row[w];
    }
    return nullptr;
}

LookupResult
SetAssocCache::access(sim::Addr block, sim::Pc pc, sim::Cycle now,
                      bool is_write, bool is_prefetch_probe)
{
    Line* line = find_line(block);
    if (line == nullptr) {
        if (is_prefetch_probe)
            ++stats_.pf_probe_misses;
        else
            ++stats_.demand_misses;
        repl_->on_miss(set_of(block), block, pc);
        return {false, nullptr};
    }
    LookupResult res{true, line, false, false, nullptr};
    if (is_prefetch_probe) {
        ++stats_.pf_probe_hits;
        std::uint32_t pway = static_cast<std::uint32_t>(
            line - &lines_[static_cast<std::size_t>(set_of(block)) *
                           assoc_]);
        repl_->on_hit({set_of(block), pway, block, pc, true});
        return res;
    }
    ++stats_.demand_hits;
    if (line->prefetched) {
        ++stats_.prefetch_hits;
        res.first_prefetch_use = true;
        res.pf_owner = line->pf_owner;
        if (line->ready_time > now) {
            ++stats_.late_prefetch_hits;
            res.late_prefetch = true;
        }
        line->prefetched = false;
        line->pf_owner = nullptr;
    }
    if (is_write)
        line->dirty = true;
    std::uint32_t way =
        static_cast<std::uint32_t>(line - &lines_[static_cast<std::size_t>(
                                              set_of(block)) * assoc_]);
    repl_->on_hit({set_of(block), way, block, pc, false});
    return res;
}

const Line*
SetAssocCache::peek(sim::Addr block) const
{
    return const_cast<SetAssocCache*>(this)->find_line(block);
}

Line*
SetAssocCache::peek_mutable(sim::Addr block)
{
    return find_line(block);
}

Eviction
SetAssocCache::insert(sim::Addr block, sim::Pc pc, sim::Cycle ready_time,
                      bool dirty, bool is_prefetch,
                      prefetch::Prefetcher* pf_owner)
{
    std::uint32_t set = set_of(block);
    Line* row = &lines_[static_cast<std::size_t>(set) * assoc_];

    // Re-insertion of a resident block just refreshes its state.
    for (std::uint32_t w = 0; w < data_ways_; ++w) {
        if (row[w].valid && row[w].block == block) {
            row[w].dirty |= dirty;
            if (ready_time < row[w].ready_time)
                row[w].ready_time = ready_time;
            return {};
        }
    }

    // Prefer an invalid way.
    std::uint32_t victim_way = data_ways_;
    for (std::uint32_t w = 0; w < data_ways_; ++w) {
        if (!row[w].valid) {
            victim_way = w;
            break;
        }
    }
    Eviction ev;
    if (victim_way == data_ways_) {
        victim_way = repl_->victim(set, 0, data_ways_);
        TRIAGE_ASSERT(victim_way < data_ways_, "victim outside partition");
        Line& v = row[victim_way];
        ev.valid = true;
        ev.block = v.block;
        ev.dirty = v.dirty;
        ev.prefetched = v.prefetched;
        ++stats_.evictions;
        if (v.dirty)
            ++stats_.dirty_evictions;
        if (v.prefetched)
            ++stats_.unused_prefetch_evictions;
        repl_->on_invalidate(set, victim_way);
    }
    Line& l = row[victim_way];
    l.block = block;
    l.valid = true;
    l.dirty = dirty;
    l.prefetched = is_prefetch;
    l.ready_time = ready_time;
    l.pf_owner = is_prefetch ? pf_owner : nullptr;
    repl_->on_insert({set, victim_way, block, pc, is_prefetch});
    return ev;
}

bool
SetAssocCache::invalidate(sim::Addr block)
{
    Line* line = find_line(block);
    if (line == nullptr)
        return false;
    std::uint32_t set = set_of(block);
    std::uint32_t way =
        static_cast<std::uint32_t>(line -
                                   &lines_[static_cast<std::size_t>(set) *
                                           assoc_]);
    repl_->on_invalidate(set, way);
    line->valid = false;
    return true;
}

void
SetAssocCache::set_data_ways(std::uint32_t n, std::uint64_t* flushed_dirty)
{
    TRIAGE_ASSERT(n >= 1 && n <= assoc_, "data partition out of range");
    if (n < data_ways_) {
        // Shrinking: hand ways [n, data_ways_) to metadata; invalidate.
        std::uint64_t dirty_count = 0;
        for (std::uint32_t set = 0; set < sets_; ++set) {
            Line* row = &lines_[static_cast<std::size_t>(set) * assoc_];
            for (std::uint32_t w = n; w < data_ways_; ++w) {
                if (row[w].valid) {
                    if (row[w].dirty)
                        ++dirty_count;
                    repl_->on_invalidate(set, w);
                    row[w].valid = false;
                }
            }
        }
        if (flushed_dirty != nullptr)
            *flushed_dirty = dirty_count;
    } else if (flushed_dirty != nullptr) {
        *flushed_dirty = 0;
    }
    // Growing needs no work: reclaimed ways are already invalid.
    data_ways_ = n;
}

std::uint64_t
SetAssocCache::valid_lines() const
{
    std::uint64_t n = 0;
    for (const auto& l : lines_)
        n += l.valid ? 1 : 0;
    return n;
}

void
SetAssocCache::register_stats(obs::Registry& reg,
                              const std::string& prefix) const
{
    obs::Scope s(reg, prefix);
    s.bind_counter("demand_hits", &stats_.demand_hits);
    s.bind_counter("demand_misses", &stats_.demand_misses);
    s.bind_counter("pf_probe_hits", &stats_.pf_probe_hits);
    s.bind_counter("pf_probe_misses", &stats_.pf_probe_misses);
    s.bind_counter("prefetch_hits", &stats_.prefetch_hits);
    s.bind_counter("late_prefetch_hits", &stats_.late_prefetch_hits);
    s.bind_counter("evictions", &stats_.evictions);
    s.bind_counter("dirty_evictions", &stats_.dirty_evictions);
    s.bind_counter("unused_prefetch_evictions",
                   &stats_.unused_prefetch_evictions);
    const CacheStats* st = &stats_;
    s.add_formula("demand_miss_rate", [st] {
        const double acc = static_cast<double>(st->demand_accesses());
        return acc > 0.0 ? static_cast<double>(st->demand_misses) / acc : 0.0;
    });
}

} // namespace triage::cache
