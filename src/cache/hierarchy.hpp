/**
 * @file
 * The three-level memory hierarchy (per-core L1D + L2, shared LLC,
 * shared DRAM) that implements PrefetchHost.
 *
 * Latencies are load-to-use from request issue (Table 1): L1 3, L2 11,
 * LLC 20 (+ optional penalty), DRAM 170 + queueing. In-flight fills are
 * modeled with per-line ready times, so demands that race an ongoing
 * fill merge like MSHR hits. Triage's LLC metadata partition is applied
 * here as way partitioning with flush-on-shrink.
 */
#ifndef TRIAGE_CACHE_HIERARCHY_HPP
#define TRIAGE_CACHE_HIERARCHY_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include <set>

#include "cache/cache.hpp"
#include "prefetch/prefetcher.hpp"
#include "prefetch/stride.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"
#include "sim/tlb.hpp"
#include "sim/types.hpp"

namespace triage::obs {
class EventTrace;
class LifecycleTracker;
class Registry;
} // namespace triage::obs

namespace triage::cache {

/** Per-core on-/off-chip metadata access counters (energy model). */
struct MetadataEnergy {
    std::uint64_t onchip_accesses = 0;  ///< LLC metadata reads+writes
    std::uint64_t offchip_accesses = 0; ///< DRAM metadata bursts

    /**
     * Energy in "LLC units" (Figure 13): 1 per LLC access,
     * @p dram_unit per DRAM access (paper midpoint 25, bounds 10/50).
     */
    double
    units(double dram_unit = 25.0) const
    {
        return static_cast<double>(onchip_accesses) +
               dram_unit * static_cast<double>(offchip_accesses);
    }
};

/**
 * Shared memory system for @p n_cores cores.
 *
 * Thread-unsafe by design: the (single-threaded) core models interleave
 * accesses in quantum order.
 */
class MemorySystem final : public prefetch::PrefetchHost
{
  public:
    MemorySystem(const sim::MachineConfig& cfg, unsigned n_cores);

    /** Attach the L2 prefetcher under test for @p core (may be null). */
    void set_prefetcher(unsigned core,
                        std::unique_ptr<prefetch::Prefetcher> pf);
    prefetch::Prefetcher* prefetcher(unsigned core);

    /**
     * Demand access from @p core.
     * @return absolute completion (load-to-use) time.
     */
    sim::Cycle access(unsigned core, sim::Pc pc, sim::Addr byte_addr,
                      bool is_write, sim::Cycle now);

    // --- PrefetchHost interface -----------------------------------------
    prefetch::PfOutcome issue_prefetch(unsigned core, sim::Addr block,
                                       sim::Cycle when,
                                       prefetch::Prefetcher* owner) override;
    sim::Cycle llc_latency() const override;
    void count_metadata_llc_access(unsigned core, bool is_write) override;
    sim::Cycle offchip_metadata_access(unsigned core, sim::Cycle now,
                                       std::uint32_t bytes, bool is_write,
                                       bool charge_time) override;
    void request_metadata_capacity(unsigned core, std::uint64_t bytes,
                                   sim::Cycle now) override;

    // --- Introspection ---------------------------------------------------
    sim::Dram& dram() { return dram_; }
    const sim::Dram& dram() const { return dram_; }
    SetAssocCache& l1(unsigned core) { return *cores_[core].l1; }
    SetAssocCache& l2(unsigned core) { return *cores_[core].l2; }
    SetAssocCache& llc() { return *llc_; }
    prefetch::StridePrefetcher* l1_stride(unsigned core);
    sim::Tlb* tlb(unsigned core) { return cores_[core].tlb.get(); }
    unsigned num_cores() const { return n_cores_; }
    const sim::MachineConfig& config() const { return cfg_; }

    /** Metadata-energy counters for @p core. */
    const MetadataEnergy& metadata_energy(unsigned core) const;

    /** LLC ways currently reserved for metadata, total across cores. */
    std::uint32_t metadata_ways() const;
    /** Current per-core metadata capacity grant in bytes. */
    std::uint64_t metadata_bytes(unsigned core) const;
    /** Time-weighted average metadata ways attributable to @p core. */
    double avg_metadata_ways(unsigned core, sim::Cycle end_cycle) const;

    /** Reset all statistics (cache contents stay warm). */
    void clear_stats(sim::Cycle now);

    /**
     * Bind the whole hierarchy's counters into @p reg:
     * "core<i>.l1"/"l2"/"tlb"/"pf", "llc", "dram", plus per-core
     * metadata energy and way-allocation formulas.
     */
    void register_stats(obs::Registry& reg) const;

    /** Attach (or detach, with null) the event trace; propagated to
     *  per-core prefetchers. */
    void set_trace(obs::EventTrace* trace);
    obs::EventTrace* trace() { return trace_; }

    /**
     * Attach (or detach, with null) the per-prefetch lifecycle
     * tracker. Only the L2 prefetcher under test is tracked (L1
     * stride prefetches and owner-less direct issues are excluded, so
     * class counts reconcile with that prefetcher's issued count).
     */
    void set_lifecycle(obs::LifecycleTracker* lc) { lifecycle_ = lc; }
    obs::LifecycleTracker* lifecycle() { return lifecycle_; }

  private:
    struct PerCore {
        std::unique_ptr<SetAssocCache> l1;
        std::unique_ptr<SetAssocCache> l2;
        std::unique_ptr<prefetch::StridePrefetcher> stride;
        std::unique_ptr<prefetch::Prefetcher> l2pf;
        std::unique_ptr<sim::Tlb> tlb; ///< null unless cfg.model_tlb
        /** Completion times of outstanding off-chip fills (MSHRs). */
        std::multiset<sim::Cycle> mshrs;
        MetadataEnergy energy;
        std::uint64_t meta_bytes = 0;
        // Time-weighted integral of this core's metadata ways.
        double way_integral = 0.0;
        sim::Cycle way_since = 0;
        double ways_now = 0.0;
    };

    /**
     * Claim an MSHR for a demand fill issued at @p issue; if the file
     * is full, returns the (possibly later) time the request can
     * actually leave. Prefetches use try_claim semantics instead.
     */
    sim::Cycle claim_mshr(PerCore& pcs, sim::Cycle issue,
                          sim::Cycle completion_estimate);

    /** Fill path shared by demands and prefetches below L2. */
    sim::Cycle fetch_into_l2(unsigned core, sim::Pc pc, sim::Addr block,
                             sim::Cycle now, bool is_prefetch,
                             prefetch::Prefetcher* owner,
                             prefetch::PfOutcome* outcome);
    void writeback_to_llc(unsigned core, sim::Addr block, sim::Cycle now);
    void apply_partition(sim::Cycle now);
    void credit_prefetch(unsigned core, sim::Addr block,
                         const LookupResult& r);

    sim::MachineConfig cfg_;
    unsigned n_cores_;
    std::vector<PerCore> cores_;
    std::unique_ptr<SetAssocCache> llc_;
    sim::Dram dram_;
    sim::Cycle stats_epoch_start_ = 0;
    obs::EventTrace* trace_ = nullptr;
    obs::LifecycleTracker* lifecycle_ = nullptr;
};

} // namespace triage::cache

#endif // TRIAGE_CACHE_HIERARCHY_HPP
