/**
 * @file
 * The three-level memory hierarchy (per-core L1D + L2, shared LLC,
 * shared DRAM) that implements PrefetchHost.
 *
 * Latencies are load-to-use from request issue (Table 1): L1 3, L2 11,
 * LLC 20 (+ optional penalty), DRAM 170 + queueing. In-flight fills are
 * modeled with per-line ready times, so demands that race an ongoing
 * fill merge like MSHR hits. Triage's LLC metadata partition is applied
 * here as way partitioning with flush-on-shrink.
 */
#ifndef TRIAGE_CACHE_HIERARCHY_HPP
#define TRIAGE_CACHE_HIERARCHY_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr_queue.hpp"
#include "util/flat_map.hpp"
#include "prefetch/prefetcher.hpp"
#include "prefetch/stride.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"
#include "sim/tlb.hpp"
#include "sim/types.hpp"

namespace triage::obs {
class EventTrace;
class LifecycleTracker;
class Registry;
} // namespace triage::obs

namespace triage::cache {

/** Per-core on-/off-chip metadata access counters (energy model). */
struct MetadataEnergy {
    std::uint64_t onchip_accesses = 0;  ///< LLC metadata reads+writes
    std::uint64_t offchip_accesses = 0; ///< DRAM metadata bursts

    /**
     * Energy in "LLC units" (Figure 13): 1 per LLC access,
     * @p dram_unit per DRAM access (paper midpoint 25, bounds 10/50).
     */
    double
    units(double dram_unit = 25.0) const
    {
        return static_cast<double>(onchip_accesses) +
               dram_unit * static_cast<double>(offchip_accesses);
    }
};

/**
 * One shared-state operation logged during a sharded quantum, replayed
 * against the real LLC/DRAM/partition controller at the quantum barrier
 * in fixed core-major order (docs/parallel-runs.md).
 */
struct ShardOp {
    enum class Kind : std::uint8_t {
        LlcAccess,    ///< demand/prefetch probe of the shared LLC
        LlcInsert,    ///< fill into the shared LLC (eviction at replay)
        Writeback,    ///< L2 victim writeback into the LLC
        DramDemand,   ///< demand read
        DramPrefetch, ///< prefetch read (may drop at replay)
        Metadata,     ///< off-chip prefetcher-metadata burst
        Partition,    ///< deferred metadata-capacity request
    };
    Kind kind{};
    bool flag0 = false;       ///< dirty / is_write
    bool flag1 = false;       ///< is_prefetch / charge_time
    std::uint32_t bytes = 0;  ///< Metadata burst size
    sim::Addr block = 0;
    sim::Pc pc = 0;
    sim::Cycle t0 = 0;        ///< primary time (now / issue / ready)
    sim::Cycle t1 = 0;        ///< secondary time (eviction writeback)
    std::uint64_t arg = 0;    ///< Partition byte grant
    prefetch::Prefetcher* owner = nullptr;
};

/**
 * One core's private view of the shared structures during a sharded
 * quantum: a copy of the DRAM channel state (timing estimates), an
 * overlay of LLC lines this core has touched or filled (consulted
 * before the frozen base array), and the op log the barrier replays.
 * Shard contents are a function of the frozen pre-quantum state and
 * this core's own actions only, which is why sharded execution is
 * bit-identical for any thread count.
 */
struct Shard {
    explicit Shard(const sim::Dram& d) : dram(d) {}

    sim::Dram dram;                                   ///< re-seeded per quantum
    /** This core's LLC view — an arena-backed flat map whose capacity
     *  survives the per-quantum clear() (util/flat_map.hpp). */
    util::FlatMap<sim::Addr, LineState> overlay;
    std::vector<ShardOp> ops;                         ///< replayed core-major
    std::uint64_t meta_bytes = 0;                     ///< deferred partition view
};

/**
 * Shared memory system for @p n_cores cores.
 *
 * Thread-unsafe by design: the (single-threaded) core models interleave
 * accesses in quantum order. The exception is a sharded quantum
 * (shard_begin()/shard_merge()): between those calls, each core's
 * access stream may run on its own thread — shared structures are
 * frozen, per-core mutations go to private shards, and the merge
 * replays them deterministically.
 */
class MemorySystem final : public prefetch::PrefetchHost
{
  public:
    MemorySystem(const sim::MachineConfig& cfg, unsigned n_cores);

    /** Attach the L2 prefetcher under test for @p core (may be null). */
    void set_prefetcher(unsigned core,
                        std::unique_ptr<prefetch::Prefetcher> pf);
    prefetch::Prefetcher* prefetcher(unsigned core);

    /**
     * Demand access from @p core.
     * @return absolute completion (load-to-use) time.
     */
    sim::Cycle access(unsigned core, sim::Pc pc, sim::Addr byte_addr,
                      bool is_write, sim::Cycle now);

    /**
     * Wall-clock-only hint for an access that will be simulated soon:
     * pull the L1/L2/LLC tag rows and the prefetcher's metadata rows
     * toward the host cache. CoreModel::run_records issues this one
     * record ahead, which buys the fetches a whole record's worth of
     * simulation work to complete under — the in-access hints alone
     * fire only a few dozen instructions before the rows are read
     * (docs/performance.md §Hot-path v2). No simulated effect.
     */
    void lookahead_hint(unsigned core, sim::Addr byte_addr);

    // --- PrefetchHost interface -----------------------------------------
    prefetch::PfOutcome issue_prefetch(unsigned core, sim::Addr block,
                                       sim::Cycle when,
                                       prefetch::Prefetcher* owner) override;
    sim::Cycle llc_latency() const override;
    void count_metadata_llc_access(unsigned core, bool is_write) override;
    sim::Cycle offchip_metadata_access(unsigned core, sim::Cycle now,
                                       std::uint32_t bytes, bool is_write,
                                       bool charge_time) override;
    void request_metadata_capacity(unsigned core, std::uint64_t bytes,
                                   sim::Cycle now) override;

    // --- Introspection ---------------------------------------------------
    sim::Dram& dram() { return dram_; }
    const sim::Dram& dram() const { return dram_; }
    SetAssocCache& l1(unsigned core) { return *cores_[core].l1; }
    SetAssocCache& l2(unsigned core) { return *cores_[core].l2; }
    SetAssocCache& llc() { return *llc_; }
    prefetch::StridePrefetcher* l1_stride(unsigned core);
    sim::Tlb* tlb(unsigned core) { return cores_[core].tlb.get(); }
    unsigned num_cores() const { return n_cores_; }
    const sim::MachineConfig& config() const { return cfg_; }

    /** Metadata-energy counters for @p core. */
    const MetadataEnergy& metadata_energy(unsigned core) const;

    /** LLC ways currently reserved for metadata, total across cores. */
    std::uint32_t metadata_ways() const;
    /** Current per-core metadata capacity grant in bytes. */
    std::uint64_t metadata_bytes(unsigned core) const;
    /** Time-weighted average metadata ways attributable to @p core. */
    double avg_metadata_ways(unsigned core, sim::Cycle end_cycle) const;

    /** Reset all statistics (cache contents stay warm). */
    void clear_stats(sim::Cycle now);

    /**
     * Bind the whole hierarchy's counters into @p reg:
     * "core<i>.l1"/"l2"/"tlb"/"pf", "llc", "dram", plus per-core
     * metadata energy and way-allocation formulas.
     */
    void register_stats(obs::Registry& reg) const;

    /** Attach (or detach, with null) the event trace; propagated to
     *  per-core prefetchers. */
    void set_trace(obs::EventTrace* trace);
    obs::EventTrace* trace() { return trace_; }

    /**
     * Attach (or detach, with null) the per-prefetch lifecycle
     * tracker. Only the L2 prefetcher under test is tracked (L1
     * stride prefetches and owner-less direct issues are excluded, so
     * class counts reconcile with that prefetcher's issued count).
     */
    void set_lifecycle(obs::LifecycleTracker* lc) { lifecycle_ = lc; }
    obs::LifecycleTracker* lifecycle() { return lifecycle_; }

    /**
     * Pointer<->index codec over every prefetcher that can own a line
     * (each core's L1 stride and L2 prefetcher, hybrids flattened).
     * Enumeration order is fixed by core index, so a restoring system
     * configured identically decodes to its own equivalent objects.
     */
    PfOwnerCodec pf_owner_codec();

    /**
     * Save/restore the full hierarchy warm state: every cache level,
     * prefetcher, TLB, MSHR file, DRAM channel state, and the
     * partition/energy accounting (docs/parallel-runs.md).
     */
    void checkpoint(sim::Snapshot& s);

    /**
     * Enter sharded execution for one quantum: freeze the shared LLC
     * and DRAM, hand each core a private DRAM copy, an empty LLC
     * overlay and an empty op log. Until shard_merge(), core @p c's
     * access stream may run on any thread as long as no two threads
     * drive the same core. Fatal if an event trace or lifecycle
     * tracker is attached (they cannot be driven from shard threads).
     */
    void shard_begin();

    /**
     * Leave sharded execution: replay every core's logged shared-state
     * operations against the real LLC / DRAM / partition controller in
     * core-major order. The fixed merge order is what makes sharded
     * results deterministic and independent of the thread count.
     */
    void shard_merge();

    bool sharded() const { return sharded_; }

  private:
    struct PerCore {
        std::unique_ptr<SetAssocCache> l1;
        std::unique_ptr<SetAssocCache> l2;
        std::unique_ptr<prefetch::StridePrefetcher> stride;
        std::unique_ptr<prefetch::Prefetcher> l2pf;
        std::unique_ptr<sim::Tlb> tlb; ///< null unless cfg.model_tlb
        /** Completion times of outstanding off-chip fills (MSHRs),
         *  retired in batched drains (cache/mshr_queue.hpp). */
        MshrQueue mshrs;
        /** Last two blocks pushed by lookahead_hint(); access() skips
         *  its own (shorter-lead) host-cache hints for them. Two-deep
         *  because the run loop hints record i+1 before it simulates
         *  record i. Wall-clock only — never checkpointed. */
        sim::Addr hinted_block = ~sim::Addr{0};
        sim::Addr hinted_prev = ~sim::Addr{0};
        MetadataEnergy energy;
        std::uint64_t meta_bytes = 0;
        // Time-weighted integral of this core's metadata ways.
        double way_integral = 0.0;
        sim::Cycle way_since = 0;
        double ways_now = 0.0;
    };

    /**
     * Claim an MSHR for a demand fill issued at @p issue; if the file
     * is full, returns the (possibly later) time the request can
     * actually leave. Prefetches use try_claim semantics instead.
     */
    sim::Cycle claim_mshr(PerCore& pcs, sim::Cycle issue,
                          sim::Cycle completion_estimate);

    /** Fill path shared by demands and prefetches below L2. */
    sim::Cycle fetch_into_l2(unsigned core, sim::Pc pc, sim::Addr block,
                             sim::Cycle now, bool is_prefetch,
                             prefetch::Prefetcher* owner,
                             prefetch::PfOutcome* outcome);
    void writeback_to_llc(unsigned core, sim::Addr block, sim::Cycle now);
    void apply_partition(sim::Cycle now);
    void credit_prefetch(unsigned core, sim::Addr block,
                         const LookupResult& r);

    /** Overlay-or-frozen-base view of @p block; pulls the base line
     *  into the overlay on first touch. Null when not resident. */
    LineState* shard_line(Shard& sh, sim::Addr block);
    /** Shard-local emulation of SetAssocCache::access on the LLC
     *  (stats and replacement state update at replay, not here). */
    LookupResult shard_llc_access(Shard& sh, sim::Addr block,
                                  sim::Cycle now, bool is_prefetch_probe);

    sim::MachineConfig cfg_;
    unsigned n_cores_;
    std::vector<PerCore> cores_;
    std::unique_ptr<SetAssocCache> llc_;
    sim::Dram dram_;
    sim::Cycle stats_epoch_start_ = 0;
    obs::EventTrace* trace_ = nullptr;
    obs::LifecycleTracker* lifecycle_ = nullptr;

    /** Per-core shards, lazily built on the first shard_begin(). */
    std::vector<std::unique_ptr<Shard>> shards_;
    bool sharded_ = false;
};

} // namespace triage::cache

#endif // TRIAGE_CACHE_HIERARCHY_HPP
