/**
 * @file
 * Set-associative cache with pluggable replacement, per-line fill
 * timestamps (so in-flight fills behave like MSHR merges), prefetch
 * bits, and way partitioning (used by Triage to carve metadata ways out
 * of the LLC).
 */
#ifndef TRIAGE_CACHE_CACHE_HPP
#define TRIAGE_CACHE_CACHE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "sim/types.hpp"

namespace triage::prefetch {
class Prefetcher;
} // namespace triage::prefetch

namespace triage::obs {
class Registry;
} // namespace triage::obs

namespace triage::cache {

/** One cache line's bookkeeping state. */
struct Line {
    sim::Addr block = 0;
    bool valid = false;
    bool dirty = false;
    /** Set by prefetch fill; cleared on first demand touch. */
    bool prefetched = false;
    /** Fill completes at this time; before it, hits see extra latency. */
    sim::Cycle ready_time = 0;
    /** Prefetcher to credit when a prefetched line is first demanded. */
    prefetch::Prefetcher* pf_owner = nullptr;
};

/** Result of a lookup. */
struct LookupResult {
    bool hit = false;
    Line* line = nullptr; ///< valid only when hit
    /** This demand touch was the first use of a prefetched line. */
    bool first_prefetch_use = false;
    /** ...and the prefetch fill was still in flight (late prefetch). */
    bool late_prefetch = false;
    /** Owner of the consumed prefetch (valid iff first_prefetch_use). */
    prefetch::Prefetcher* pf_owner = nullptr;
};

/** Information about a line displaced by insert(). */
struct Eviction {
    bool valid = false; ///< a valid line was displaced
    sim::Addr block = 0;
    bool dirty = false;
    bool prefetched = false; ///< evicted before any demand use
};

/** Hit/miss/eviction counters. */
struct CacheStats {
    std::uint64_t demand_hits = 0;
    std::uint64_t demand_misses = 0;
    std::uint64_t pf_probe_hits = 0;   ///< prefetch-initiated lookups
    std::uint64_t pf_probe_misses = 0;
    std::uint64_t prefetch_hits = 0;   ///< demand hits on prefetched lines
    std::uint64_t late_prefetch_hits = 0; ///< ...whose fill was in flight
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;
    std::uint64_t unused_prefetch_evictions = 0;

    std::uint64_t
    demand_accesses() const
    {
        return demand_hits + demand_misses;
    }
};

/** Construction parameters. */
struct CacheGeometry {
    std::string name;
    std::uint64_t size_bytes = 0;
    std::uint32_t assoc = 0;
};

/**
 * A set-associative cache of 64 B lines.
 *
 * Way partitioning: @c set_data_ways(n) restricts data to the first n
 * ways of every set; the remaining ways model space repurposed for
 * prefetcher metadata. Shrinking the data partition invalidates the
 * ways handed over (dirty lines are reported so the caller can charge
 * writeback traffic), matching Triage's flush-on-repartition rule.
 */
class SetAssocCache
{
  public:
    SetAssocCache(const CacheGeometry& geom,
                  std::unique_ptr<ReplacementPolicy> repl);

    /**
     * Lookup. Updates replacement state and stats; demand lookups clear
     * the prefetch bit on first touch (recording a useful prefetch),
     * prefetch probes (@p is_prefetch_probe) keep it and use separate
     * stat counters.
     */
    LookupResult access(sim::Addr block, sim::Pc pc, sim::Cycle now,
                        bool is_write, bool is_prefetch_probe = false);

    /** Tag probe with no side effects. */
    const Line* peek(sim::Addr block) const;
    Line* peek_mutable(sim::Addr block);

    /**
     * Install @p block (fill completes at @p ready_time).
     * @p pf_owner credits the issuing prefetcher on first demand use.
     * @return the displaced line, if any.
     */
    Eviction insert(sim::Addr block, sim::Pc pc, sim::Cycle ready_time,
                    bool dirty, bool is_prefetch,
                    prefetch::Prefetcher* pf_owner = nullptr);

    /** Drop @p block if present (no writeback). @return line was present. */
    bool invalidate(sim::Addr block);

    /**
     * Restrict data to the first @p n ways per set.
     * @param[out] flushed_dirty number of dirty lines invalidated.
     */
    void set_data_ways(std::uint32_t n, std::uint64_t* flushed_dirty = nullptr);

    std::uint32_t data_ways() const { return data_ways_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t num_sets() const { return sets_; }
    const CacheStats& stats() const { return stats_; }

    /** Bind hit/miss/eviction counters into @p reg under @p prefix. */
    void register_stats(obs::Registry& reg,
                        const std::string& prefix) const;
    void clear_stats() { stats_ = {}; }
    const std::string& name() const { return name_; }

    /** Number of currently valid lines (tests / utilization metrics). */
    std::uint64_t valid_lines() const;

  private:
    std::uint32_t set_of(sim::Addr block) const;
    Line* find_line(sim::Addr block);

    std::string name_;
    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t data_ways_;
    std::vector<Line> lines_; ///< sets_ x assoc_, row-major
    std::unique_ptr<ReplacementPolicy> repl_;
    CacheStats stats_;
};

} // namespace triage::cache

#endif // TRIAGE_CACHE_CACHE_HPP
