/**
 * @file
 * Set-associative cache with pluggable replacement, per-line fill
 * timestamps (so in-flight fills behave like MSHR merges), prefetch
 * bits, and way partitioning (used by Triage to carve metadata ways out
 * of the LLC).
 *
 * Hot-path layout (docs/performance.md): the lookup loop scans a
 * packed per-set tag array (one 64-bit word per way, validity folded
 * into an INVALID_TAG sentinel) so find-way is a tight,
 * auto-vectorizable compare loop. Cold per-line state — dirty and
 * prefetch bits, fill time, prefetch owner — lives in a parallel
 * array touched only on hit or insert. Every operation computes the
 * set index exactly once and threads {set, way} through to the
 * replacement callbacks.
 */
#ifndef TRIAGE_CACHE_CACHE_HPP
#define TRIAGE_CACHE_CACHE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hpp"
#include "sim/types.hpp"
#include "util/simd_probe.hpp"

namespace triage::prefetch {
class Prefetcher;
} // namespace triage::prefetch

namespace triage::obs {
class Registry;
} // namespace triage::obs

namespace triage::cache {

/**
 * Per-line bookkeeping, only read or written on a hit or insert (never
 * by the tag scan). This is the *value type* handed across the cache
 * API (peek(), shard overlays); internally SetAssocCache stores the
 * frequently-touched fields packed one 64-bit word per line (see
 * `hot_`), with the rarely-read prefetch-owner pointer in a parallel
 * cold array, so a 16-way set's hot state spans two host cache lines
 * instead of six.
 */
struct LineState {
    bool dirty = false;
    /** Set by prefetch fill; cleared on first demand touch. */
    bool prefetched = false;
    /** Fill completes at this time; before it, hits see extra latency. */
    sim::Cycle ready_time = 0;
    /** Prefetcher to credit when a prefetched line is first demanded. */
    prefetch::Prefetcher* pf_owner = nullptr;
};

/** Result of a lookup. */
struct LookupResult {
    bool hit = false;
    /** This demand touch was the first use of a prefetched line. */
    bool first_prefetch_use = false;
    /** ...and the prefetch fill was still in flight (late prefetch). */
    bool late_prefetch = false;
    /** Fill-completion time of the hit line (valid only when hit). */
    sim::Cycle ready_time = 0;
    /** Owner of the consumed prefetch (valid iff first_prefetch_use). */
    prefetch::Prefetcher* pf_owner = nullptr;
};

/** Information about a line displaced by insert(). */
struct Eviction {
    bool valid = false; ///< a valid line was displaced
    sim::Addr block = 0;
    bool dirty = false;
    bool prefetched = false; ///< evicted before any demand use
};

/** Hit/miss/eviction counters. */
struct CacheStats {
    std::uint64_t demand_hits = 0;
    std::uint64_t demand_misses = 0;
    std::uint64_t pf_probe_hits = 0;   ///< prefetch-initiated lookups
    std::uint64_t pf_probe_misses = 0;
    std::uint64_t prefetch_hits = 0;   ///< demand hits on prefetched lines
    std::uint64_t late_prefetch_hits = 0; ///< ...whose fill was in flight
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;
    std::uint64_t unused_prefetch_evictions = 0;

    std::uint64_t
    demand_accesses() const
    {
        return demand_hits + demand_misses;
    }
};

/**
 * Pointer<->index codec for LineState::pf_owner across serialization.
 * The host (MemorySystem) enumerates every prefetcher that can own a
 * line, in a fixed order; snapshots store 0 for "no owner" and
 * 1 + index otherwise. Restore resolves indices against the restoring
 * system's enumeration, so save and restore hosts must be configured
 * identically (the sealed fingerprint enforces that).
 */
struct PfOwnerCodec {
    std::vector<prefetch::Prefetcher*> owners;

    std::uint32_t
    encode(const prefetch::Prefetcher* p) const
    {
        if (p == nullptr)
            return 0;
        for (std::size_t i = 0; i < owners.size(); ++i) {
            if (owners[i] == p)
                return static_cast<std::uint32_t>(i + 1);
        }
        util::panic("PfOwnerCodec: line owned by an unenumerated "
                    "prefetcher");
    }

    prefetch::Prefetcher*
    decode(std::uint32_t id) const
    {
        if (id == 0)
            return nullptr;
        TRIAGE_ASSERT(id <= owners.size(),
                      "PfOwnerCodec: owner index out of range");
        return owners[id - 1];
    }
};

/** Construction parameters. */
struct CacheGeometry {
    std::string name;
    std::uint64_t size_bytes = 0;
    std::uint32_t assoc = 0;
};

/**
 * A set-associative cache of 64 B lines.
 *
 * Way partitioning: @c set_data_ways(n) restricts data to the first n
 * ways of every set; the remaining ways model space repurposed for
 * prefetcher metadata. Shrinking the data partition invalidates the
 * ways handed over (dirty lines are reported so the caller can charge
 * writeback traffic), matching Triage's flush-on-repartition rule.
 */
class SetAssocCache
{
  public:
    SetAssocCache(const CacheGeometry& geom,
                  std::unique_ptr<ReplacementPolicy> repl);

    /**
     * Lookup. Updates replacement state and stats; demand lookups clear
     * the prefetch bit on first touch (recording a useful prefetch),
     * prefetch probes (@p is_prefetch_probe) keep it and use separate
     * stat counters.
     */
    LookupResult access(sim::Addr block, sim::Pc pc, sim::Cycle now,
                        bool is_write, bool is_prefetch_probe = false);

    /** Tag probe with no side effects. */
    bool contains(sim::Addr block) const;

    /**
     * Request @p block's tag row (and LRU stamp row) from the
     * simulating machine's memory ahead of a lookup. Pure wall-clock
     * latency hint; no simulated (architectural) effect.
     */
    void
    prefetch_hint(sim::Addr block) const
    {
        const std::size_t set = set_of(block);
        const sim::Addr* row = tags_.data() + set * assoc_;
        __builtin_prefetch(row);
        if (assoc_ > 8) // a 16-way tag row spans two 64 B lines
            __builtin_prefetch(row + 8);
        if (lru_.stamps != nullptr)
            __builtin_prefetch(lru_.stamps + set * lru_.assoc);
        // The packed hot-state row is written by every fill and read on
        // hit; at one word per way it is fully covered by two lines.
        const std::uint64_t* hrow = hot_.data() + set * assoc_;
        __builtin_prefetch(hrow, 1);
        if (assoc_ > 8)
            __builtin_prefetch(hrow + 8, 1);
    }

    /** Cold-state snapshot of a resident line (no side effects). */
    std::optional<LineState> peek(sim::Addr block) const;

    /** Set the dirty bit if @p block is resident. @return resident. */
    bool mark_dirty(sim::Addr block);

    /**
     * Install @p block (fill completes at @p ready_time).
     * @p pf_owner credits the issuing prefetcher on first demand use.
     * @return the displaced line, if any.
     */
    Eviction insert(sim::Addr block, sim::Pc pc, sim::Cycle ready_time,
                    bool dirty, bool is_prefetch,
                    prefetch::Prefetcher* pf_owner = nullptr);

    /** Drop @p block if present (no writeback). @return line was present. */
    bool invalidate(sim::Addr block);

    /**
     * Restrict data to the first @p n ways per set.
     * @param[out] flushed_dirty number of dirty lines invalidated.
     */
    void set_data_ways(std::uint32_t n, std::uint64_t* flushed_dirty = nullptr);

    std::uint32_t data_ways() const { return data_ways_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t num_sets() const { return sets_; }
    const CacheStats& stats() const { return stats_; }

    /** Bind hit/miss/eviction counters into @p reg under @p prefix. */
    void register_stats(obs::Registry& reg,
                        const std::string& prefix) const;
    void clear_stats() { stats_ = {}; }
    const std::string& name() const { return name_; }

    /** Number of currently valid lines, O(1) (counter-maintained). */
    std::uint64_t valid_lines() const { return live_lines_; }

    /** Full tag-array scan, O(sets x ways); tests cross-check the
     *  live-line counter against it. */
    std::uint64_t count_valid_lines_slow() const;

    /**
     * Internal-consistency sweep for the verify harness: live-line
     * counter vs a slow tag scan, no duplicate tags within a set, ways
     * outside the data partition invalid, and (for inline LRU) stamps
     * zero on invalid ways and within the global clock on valid ones.
     * Calls @p report once per violation.
     */
    void self_check(
        const std::function<void(const std::string&)>& report) const;

    /**
     * Save/restore tags, cold line state (owners via @p codec),
     * partition width, replacement state and stats. Geometry must
     * already match (same sets/assoc construction).
     */
    void checkpoint(sim::Snapshot& s, const PfOwnerCodec& codec);

  private:
    /** Tag value meaning "way holds no line" (blocks are byte
     *  addresses >> 6, so all-ones can never be a real tag). */
    static constexpr sim::Addr INVALID_TAG = ~sim::Addr{0};
    /** find_way() result meaning "not resident". */
    static constexpr std::uint32_t NO_WAY = ~std::uint32_t{0};

    // Packed hot line state, one word per way: ready_time in the low
    // 62 bits (cycle counts never approach 2^62), dirty and prefetched
    // in the top two. The pf-owner pointer lives in the parallel cold
    // `owners_` array, mirrored field-for-field with the old LineState
    // semantics (including stale values on invalidated ways) so
    // snapshots stay byte-identical.
    static constexpr std::uint64_t HOT_DIRTY = std::uint64_t{1} << 62;
    static constexpr std::uint64_t HOT_PREFETCHED = std::uint64_t{1} << 63;
    static constexpr std::uint64_t HOT_READY_MASK = HOT_DIRTY - 1;

    std::uint32_t set_of(sim::Addr block) const;
    /** Scan the data partition of the set at @p base for @p block. */
    std::uint32_t find_way(std::size_t base, sim::Addr block) const;

    // Replacement dispatch. When the policy is plain LRU its callbacks
    // are pure stamp updates, so they run inline here instead of
    // through the vtable — identical state transitions, no virtual
    // call on the ~3 replacement touches per access
    // (docs/performance.md). Stateful policies take the virtual path.
    void
    repl_touch(std::uint32_t set, std::uint32_t way, sim::Addr block,
               sim::Pc pc, bool is_prefetch, bool is_insert)
    {
        if (lru_.stamps != nullptr) {
            lru_.stamps[static_cast<std::size_t>(set) * lru_.assoc + way] =
                ++*lru_.clock;
            return;
        }
        if (is_insert)
            repl_->on_insert({set, way, block, pc, is_prefetch});
        else
            repl_->on_hit({set, way, block, pc, is_prefetch});
    }

    void
    repl_miss(std::uint32_t set, sim::Addr block, sim::Pc pc)
    {
        if (lru_.stamps != nullptr)
            return; // LRU ignores misses
        repl_->on_miss(set, block, pc);
    }

    void
    repl_invalidate(std::uint32_t set, std::uint32_t way)
    {
        if (lru_.stamps != nullptr) {
            lru_.stamps[static_cast<std::size_t>(set) * lru_.assoc + way] =
                0;
            return;
        }
        repl_->on_invalidate(set, way);
    }

    std::uint32_t
    repl_victim(std::uint32_t set, std::uint32_t way_begin,
                std::uint32_t way_end)
    {
        if (lru_.stamps != nullptr) {
            // First-minimum stamp scan, SIMD-probed; ties resolve to
            // the lowest way exactly like the scalar `<` update did.
            const std::uint64_t* row =
                lru_.stamps + static_cast<std::size_t>(set) * lru_.assoc;
            return way_begin +
                   util::simd::min_index(row + way_begin,
                                         way_end - way_begin);
        }
        return repl_->victim(set, way_begin, way_end);
    }

    std::string name_;
    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t data_ways_;
    std::vector<sim::Addr> tags_;    ///< sets_ x assoc_, row-major
    std::vector<std::uint64_t> hot_; ///< packed ready/dirty/prefetched
    std::vector<prefetch::Prefetcher*> owners_; ///< cold pf-owner slots
    std::uint64_t live_lines_ = 0;
    std::unique_ptr<ReplacementPolicy> repl_;
    LruFastView lru_; ///< aliases repl_'s state iff it is plain LRU
    CacheStats stats_;
};

} // namespace triage::cache

#endif // TRIAGE_CACHE_CACHE_HPP
