#include "prefetch/ghb_temporal.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::prefetch {

GhbTemporal::GhbTemporal(GhbTemporalConfig cfg)
    : cfg_(cfg), ghb_(cfg.ghb_entries, 0),
      name_(cfg.mode == GhbIndexMode::SingleAddress ? "stms" : "domino")
{
    TRIAGE_ASSERT(util::is_pow2(cfg.ghb_entries));
}

std::uint64_t
GhbTemporal::index_key(sim::Addr block) const
{
    if (cfg_.mode == GhbIndexMode::SingleAddress)
        return block;
    // Domino: correlate on the (previous, current) pair.
    return util::mix64(last_trigger_) ^ (block * 0x9e3779b97f4a7c15ULL);
}

void
GhbTemporal::train(const TrainEvent& ev, PrefetchHost& host)
{
    ++stats_.train_events;
    // Temporal prefetchers train on the miss stream (plus prefetched
    // hits, which would have been misses without the prefetcher).
    if (ev.l2_hit && !ev.was_prefetch_hit)
        return;

    const bool charge = !cfg_.idealized;

    // --- Predict: find the previous occurrence and replay successors.
    if (cfg_.mode != GhbIndexMode::AddressPair || have_last_) {
        auto it = index_.find(index_key(ev.block));
        // Off-chip index probe.
        ++stats_.meta_offchip_reads;
        host.offchip_metadata_access(ev.core, ev.now, sim::BLOCK_SIZE,
                                     false, charge);
        if (it != index_.end() &&
            next_pos_ - it->second <= cfg_.ghb_entries) {
            // Off-chip history-buffer read (one burst covers a stream).
            ++stats_.meta_offchip_reads;
            host.offchip_metadata_access(ev.core, ev.now, sim::BLOCK_SIZE,
                                         false, charge);
            for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
                std::uint64_t pos = it->second + d;
                if (pos >= next_pos_)
                    break;
                sim::Addr target = ghb_[pos % cfg_.ghb_entries];
                if (target == ev.block)
                    continue;
                send(ev, host, target, ev.now);
            }
        }
    }

    // --- Record: append to the history buffer, update the index.
    ghb_[next_pos_ % cfg_.ghb_entries] = ev.block;
    index_[index_key(ev.block)] = next_pos_;
    ++next_pos_;
    have_last_ = true;
    last_trigger_ = ev.block;

    // Index update write per trigger; buffer appends coalesce 8 entries
    // per 64 B burst.
    ++stats_.meta_offchip_writes;
    host.offchip_metadata_access(ev.core, ev.now, sim::BLOCK_SIZE, true,
                                 charge);
    if (++appends_ % 8 == 0) {
        ++stats_.meta_offchip_writes;
        host.offchip_metadata_access(ev.core, ev.now, sim::BLOCK_SIZE,
                                     true, charge);
    }

    // Bound the index map: drop entries that fell out of the buffer.
    if (index_.size() > 2ULL * cfg_.ghb_entries) {
        for (auto it = index_.begin(); it != index_.end();) {
            if (next_pos_ - it->second > cfg_.ghb_entries)
                it = index_.erase(it);
            else
                ++it;
        }
    }
}

} // namespace triage::prefetch
