/**
 * @file
 * Hybrid prefetcher: compose several prefetchers on the same training
 * stream (the paper evaluates BO+Triage and BO+SMS, Figures 10, 14-18).
 * Each child issues prefetches under its own identity, so usefulness
 * and accuracy remain per-child; snapshot() aggregates.
 */
#ifndef TRIAGE_PREFETCH_HYBRID_HPP
#define TRIAGE_PREFETCH_HYBRID_HPP

#include <memory>
#include <string>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Composition of child prefetchers trained on the same stream. */
class Hybrid final : public Prefetcher
{
  public:
    explicit Hybrid(std::vector<std::unique_ptr<Prefetcher>> children);

    void train(const TrainEvent& ev, PrefetchHost& host) override;
    void
    pre_train_hint(sim::Addr block) const override
    {
        for (const auto& c : children_)
            c->pre_train_hint(block);
    }
    void on_fill(sim::Addr block, sim::Cycle now,
                 bool was_prefetch) override;
    const std::string& name() const override { return name_; }

    PrefetcherStats snapshot() const override;
    void clear_stats() override;

    /** Children register under "<prefix>.<child name>". */
    void register_stats(obs::Registry& reg,
                        const std::string& prefix) const override;
    void register_probes(obs::EpochSampler& sampler,
                         const std::string& prefix) const override;
    void set_trace(obs::EventTrace* trace) override;
    void set_partition_timeline(obs::PartitionTimeline* timeline,
                                unsigned core) override;

    Prefetcher& child(std::size_t i) { return *children_[i]; }
    std::size_t num_children() const { return children_.size(); }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.hybrid");
        for (auto& c : children_)
            c->checkpoint(s);
    }

    /** Children issue under their own identity; enumerate them too. */
    void
    enumerate(std::vector<Prefetcher*>& out) override
    {
        out.push_back(this);
        for (auto& c : children_)
            c->enumerate(out);
    }

  private:
    std::vector<std::unique_ptr<Prefetcher>> children_;
    std::string name_;
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_HYBRID_HPP
