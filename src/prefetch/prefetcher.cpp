#include "prefetch/prefetcher.hpp"

#include "obs/registry.hpp"
#include "obs/sampler.hpp"

namespace triage::prefetch {

void
Prefetcher::register_stats(obs::Registry& reg,
                           const std::string& prefix) const
{
    obs::Scope s(reg, prefix);
    s.bind_counter("train_events", &stats_.train_events);
    s.bind_counter("candidates", &stats_.candidates);
    s.bind_counter("redundant", &stats_.redundant);
    s.bind_counter("filled_from_llc", &stats_.filled_from_llc);
    s.bind_counter("issued_to_dram", &stats_.issued_to_dram);
    s.bind_counter("dropped", &stats_.dropped);
    s.bind_counter("useful", &stats_.useful);
    s.bind_counter("late", &stats_.late);
    s.bind_counter("meta_onchip_reads", &stats_.meta_onchip_reads);
    s.bind_counter("meta_onchip_writes", &stats_.meta_onchip_writes);
    s.bind_counter("meta_offchip_reads", &stats_.meta_offchip_reads);
    s.bind_counter("meta_offchip_writes", &stats_.meta_offchip_writes);
    const PrefetcherStats* st = &stats_;
    s.add_formula("issued", [st] {
        return static_cast<double>(st->issued());
    });
    s.add_formula("accuracy", [st] { return st->accuracy(); });
}

void
Prefetcher::register_probes(obs::EpochSampler& sampler,
                            const std::string& prefix) const
{
    const PrefetcherStats* st = &stats_;
    sampler.add_rate(
        prefix + ".accuracy",
        [st] { return static_cast<double>(st->useful); },
        [st] { return static_cast<double>(st->issued()); });
}

} // namespace triage::prefetch
