/**
 * @file
 * GHB PC/DC: delta-correlation prefetching over a global history
 * buffer (Nesbit & Smith, IEEE Micro 2005).
 *
 * The paper's related work cites delta correlation as the classic
 * "weaker form of correlation" that trades generality for metadata
 * compactness: instead of memorizing address pairs, PC/DC memorizes
 * per-PC *delta* sequences, which repeats well on strided and some
 * linked patterns but cannot capture arbitrary address correlation.
 * Included so the design-space comparisons have the on-chip temporal
 * middle ground between stride and full address correlation.
 */
#ifndef TRIAGE_PREFETCH_GHB_PCDC_HPP
#define TRIAGE_PREFETCH_GHB_PCDC_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Tuning knobs. */
struct GhbPcdcConfig {
    std::uint32_t ghb_entries = 256;   ///< circular history buffer
    std::uint32_t index_entries = 256; ///< PC index table (power of 2)
    std::uint32_t degree = 2;          ///< deltas replayed per trigger
    std::uint32_t history = 2;         ///< deltas matched (delta pair)
};

/** GHB-based per-PC delta-correlation prefetcher. */
class GhbPcdc final : public Prefetcher
{
  public:
    explicit GhbPcdc(GhbPcdcConfig cfg = {});

    void train(const TrainEvent& ev, PrefetchHost& host) override;
    const std::string& name() const override { return name_; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.ghb_pcdc");
        s.io_vec(ghb_, [](sim::Snapshot& a, GhbEntry& e) {
            a.io(e.block);
            a.io(e.prev);
            a.io(e.valid);
        });
        s.io_vec(index_, [](sim::Snapshot& a, IndexEntry& e) {
            a.io(e.pc);
            a.io(e.head);
            a.io(e.valid);
        });
        s.io(next_pos_);
    }

  private:
    struct GhbEntry {
        sim::Addr block = 0;
        /** Previous GHB position of the same PC (absolute), or ~0. */
        std::uint64_t prev = ~0ULL;
        bool valid = false;
    };

    struct IndexEntry {
        sim::Pc pc = 0;
        std::uint64_t head = ~0ULL; ///< newest GHB position for pc
        bool valid = false;
    };

    /** Walk this PC's chain, newest first; returns up to n blocks. */
    std::vector<sim::Addr> pc_history(sim::Pc pc, std::uint32_t n) const;

    GhbPcdcConfig cfg_;
    std::vector<GhbEntry> ghb_;
    std::vector<IndexEntry> index_;
    std::uint64_t next_pos_ = 0;
    std::string name_ = "ghb_pcdc";
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_GHB_PCDC_HPP
