/**
 * @file
 * Spatial Memory Streaming (Somogyi et al., ISCA 2006): correlate
 * spatial footprints of memory regions with the (PC, region-offset)
 * that first touched the region, and replay the footprint on the next
 * trigger — the paper's representative of on-chip *irregular spatial*
 * prefetching.
 */
#ifndef TRIAGE_PREFETCH_SMS_HPP
#define TRIAGE_PREFETCH_SMS_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Tuning knobs (2 KB regions = 32 blocks, as in the original paper). */
struct SmsConfig {
    std::uint32_t region_blocks = 32;     ///< power of two
    std::uint32_t filter_entries = 32;    ///< regions touched once
    std::uint32_t accum_entries = 64;     ///< active generations
    std::uint32_t pht_sets = 1024;        ///< pattern history table
    std::uint32_t pht_ways = 4;
};

/** SMS prefetcher. */
class Sms final : public Prefetcher
{
  public:
    explicit Sms(SmsConfig cfg = {});

    void train(const TrainEvent& ev, PrefetchHost& host) override;
    const std::string& name() const override { return name_; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.sms");
        auto gen = [](sim::Snapshot& a, Generation& g) {
            a.io(g.region);
            a.io(g.trigger_pc);
            a.io(g.trigger_offset);
            a.io(g.pattern);
            a.io(g.lru);
            a.io(g.valid);
        };
        s.io_vec(filter_, gen);
        s.io_vec(accum_, gen);
        s.io_vec(pht_, [](sim::Snapshot& a, PhtEntry& e) {
            a.io(e.key);
            a.io(e.pattern);
            a.io(e.lru);
            a.io(e.valid);
        });
        s.io(clock_);
    }

  private:
    struct Generation {
        sim::Addr region = 0;
        sim::Pc trigger_pc = 0;
        std::uint32_t trigger_offset = 0;
        std::uint32_t pattern = 0; ///< bitmap over region blocks
        std::uint64_t lru = 0;
        bool valid = false;
    };

    struct PhtEntry {
        std::uint64_t key = 0; ///< hash of (pc, offset)
        std::uint32_t pattern = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint64_t pht_key(sim::Pc pc, std::uint32_t offset) const;
    void pht_store(std::uint64_t key, std::uint32_t pattern);
    const PhtEntry* pht_find(std::uint64_t key) const;
    /** Close a generation: record its footprint in the PHT. */
    void retire_generation(Generation& g);
    Generation* find_generation(std::vector<Generation>& table,
                                sim::Addr region);
    Generation* allocate(std::vector<Generation>& table);

    SmsConfig cfg_;
    std::uint32_t offset_mask_;
    unsigned region_shift_;
    std::vector<Generation> filter_;
    std::vector<Generation> accum_;
    std::vector<PhtEntry> pht_; ///< pht_sets x pht_ways
    std::uint64_t clock_ = 0;
    std::string name_ = "sms";
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_SMS_HPP
