#include "prefetch/markov.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::prefetch {

Markov::Markov(MarkovConfig cfg)
    : cfg_(cfg), sets_(cfg.table_entries / cfg.ways)
{
    TRIAGE_ASSERT(util::is_pow2(sets_));
    table_.resize(cfg.table_entries);
    for (auto& e : table_)
        e.succ.assign(cfg.successors, 0);
}

Markov::Entry*
Markov::find(sim::Addr addr)
{
    std::size_t set = util::mix64(addr) & (sets_ - 1);
    Entry* row = &table_[set * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (row[w].valid && row[w].addr == addr)
            return &row[w];
    }
    return nullptr;
}

Markov::Entry&
Markov::allocate(sim::Addr addr)
{
    std::size_t set = util::mix64(addr) & (sets_ - 1);
    Entry* row = &table_[set * cfg_.ways];
    Entry* victim = &row[0];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!row[w].valid) {
            victim = &row[w];
            break;
        }
        if (row[w].lru < victim->lru)
            victim = &row[w];
    }
    victim->addr = addr;
    std::fill(victim->succ.begin(), victim->succ.end(), 0);
    victim->valid = true;
    return *victim;
}

void
Markov::train(const TrainEvent& ev, PrefetchHost& host)
{
    ++stats_.train_events;
    if (ev.l2_hit && !ev.was_prefetch_hit)
        return;

    // Predict: issue all recorded successors (MRU first).
    if (Entry* e = find(ev.block)) {
        e->lru = ++clock_;
        for (sim::Addr s : e->succ) {
            if (s != 0 && s != ev.block)
                send(ev, host, s, ev.now);
        }
    }

    // Train the global predecessor's successor list (MRU insertion).
    if (have_last_ && last_miss_ != ev.block) {
        Entry* p = find(last_miss_);
        if (p == nullptr)
            p = &allocate(last_miss_);
        p->lru = ++clock_;
        auto hit = std::find(p->succ.begin(), p->succ.end(), ev.block);
        if (hit != p->succ.end()) {
            std::rotate(p->succ.begin(), hit, hit + 1);
        } else {
            std::rotate(p->succ.begin(), p->succ.end() - 1,
                        p->succ.end());
            p->succ.front() = ev.block;
        }
    }
    last_miss_ = ev.block;
    have_last_ = true;
}

} // namespace triage::prefetch
