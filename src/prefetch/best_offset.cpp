#include "prefetch/best_offset.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::prefetch {

namespace {

/**
 * Michaud's candidate list: offsets in [1, 256] whose prime factors are
 * all in {2, 3, 5} (52 values). Generated once.
 */
std::vector<std::int32_t>
make_offsets()
{
    std::vector<std::int32_t> v;
    for (std::int32_t n = 1; n <= 256; ++n) {
        std::int32_t m = n;
        for (std::int32_t p : {2, 3, 5}) {
            while (m % p == 0)
                m /= p;
        }
        if (m == 1)
            v.push_back(n);
    }
    return v;
}

} // namespace

BestOffset::BestOffset(BestOffsetConfig cfg)
    : cfg_(cfg), offsets_(make_offsets()),
      scores_(offsets_.size(), 0),
      rr_table_(cfg.rr_entries, ~sim::Addr{0})
{
    TRIAGE_ASSERT(util::is_pow2(cfg.rr_entries));
    TRIAGE_ASSERT(cfg_.score_max >= cfg_.bad_score,
                  "an offset could never reach bad_score");
}

void
BestOffset::rr_insert(sim::Addr block)
{
    rr_table_[static_cast<std::uint32_t>(util::mix64(block)) &
              (cfg_.rr_entries - 1)] = block;
}

bool
BestOffset::rr_contains(sim::Addr block) const
{
    return rr_table_[static_cast<std::uint32_t>(util::mix64(block)) &
                     (cfg_.rr_entries - 1)] == block;
}

void
BestOffset::on_fill(sim::Addr block, sim::Cycle, bool was_prefetch)
{
    // A completed fill of X means a request for X - D issued when X was
    // demanded would have been timely; the RR table remembers the base
    // address that would have triggered it.
    if (was_prefetch) {
        std::int64_t base =
            static_cast<std::int64_t>(block) - best_offset_;
        if (base > 0)
            rr_insert(static_cast<sim::Addr>(base));
    } else {
        rr_insert(block);
    }
}

void
BestOffset::finish_learning_phase()
{
    auto best = std::max_element(scores_.begin(), scores_.end());
    std::uint32_t best_score = *best;
    best_offset_ = offsets_[static_cast<std::size_t>(
        best - scores_.begin())];
    prefetching_on_ = best_score >= cfg_.bad_score;
    std::fill(scores_.begin(), scores_.end(), 0);
    test_index_ = 0;
    round_ = 0;
}

void
BestOffset::train(const TrainEvent& ev, PrefetchHost& host)
{
    ++stats_.train_events;
    // BO triggers on L2 misses and on first hits to prefetched lines.
    if (ev.l2_hit && !ev.was_prefetch_hit)
        return;

    // Learning: test one candidate offset per trigger access.
    std::int64_t probe = static_cast<std::int64_t>(ev.block) -
                         offsets_[test_index_];
    if (probe > 0 && rr_contains(static_cast<sim::Addr>(probe))) {
        if (++scores_[test_index_] >= cfg_.score_max) {
            finish_learning_phase();
            test_index_ = 0;
        }
    }
    if (++test_index_ >= offsets_.size()) {
        test_index_ = 0;
        if (++round_ >= cfg_.round_max)
            finish_learning_phase();
    }

    if (!prefetching_on_)
        return;
    for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
        std::int64_t target =
            static_cast<std::int64_t>(ev.block) +
            static_cast<std::int64_t>(best_offset_) * d;
        if (target <= 0)
            break;
        send(ev, host, static_cast<sim::Addr>(target), ev.now);
    }
}

} // namespace triage::prefetch
