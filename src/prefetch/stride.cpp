#include "prefetch/stride.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::prefetch {

StridePrefetcher::StridePrefetcher(StrideConfig cfg)
    : cfg_(cfg), table_(cfg.table_entries)
{
    TRIAGE_ASSERT(util::is_pow2(cfg.table_entries));
}

StridePrefetcher::Entry&
StridePrefetcher::entry_for(sim::Pc pc)
{
    return table_[static_cast<std::uint32_t>(util::mix64(pc)) &
                  (cfg_.table_entries - 1)];
}

void
StridePrefetcher::train(const TrainEvent& ev, PrefetchHost& host)
{
    ++stats_.train_events;
    Entry& e = entry_for(ev.pc);
    if (!e.valid || e.pc != ev.pc) {
        e = {ev.pc, ev.block, 0, 0, true};
        return;
    }
    std::int64_t delta =
        static_cast<std::int64_t>(ev.block) -
        static_cast<std::int64_t>(e.last_block);
    if (delta == 0)
        return; // same-line access carries no stride information
    if (delta == e.stride) {
        e.confidence = util::sat_inc<std::uint8_t>(e.confidence, 3);
    } else {
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = delta;
        }
    }
    e.last_block = ev.block;
    if (e.confidence >= cfg_.confidence_threshold && e.stride != 0) {
        for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
            std::int64_t target =
                static_cast<std::int64_t>(ev.block) +
                e.stride * static_cast<std::int64_t>(d);
            if (target <= 0)
                break;
            send(ev, host, static_cast<sim::Addr>(target), ev.now);
        }
    }
}

} // namespace triage::prefetch
