/**
 * @file
 * Next-line / sequential prefetcher (Smith 1978, Jouppi 1990): the
 * simplest commercial baseline the paper's related work cites — on
 * every trigger access, prefetch the next N sequential lines.
 */
#ifndef TRIAGE_PREFETCH_NEXT_LINE_HPP
#define TRIAGE_PREFETCH_NEXT_LINE_HPP

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Tuning knobs. */
struct NextLineConfig {
    std::uint32_t degree = 1;  ///< sequential lines per trigger
    bool on_miss_only = true;  ///< trigger on misses (tagged) or all
};

/** Sequential next-line prefetcher. */
class NextLine final : public Prefetcher
{
  public:
    explicit NextLine(NextLineConfig cfg = {}) : cfg_(cfg) {}

    void
    train(const TrainEvent& ev, PrefetchHost& host) override
    {
        ++stats_.train_events;
        if (cfg_.on_miss_only && ev.l2_hit && !ev.was_prefetch_hit)
            return;
        for (std::uint32_t d = 1; d <= cfg_.degree; ++d)
            send(ev, host, ev.block + d, ev.now);
    }

    const std::string& name() const override { return name_; }

  private:
    NextLineConfig cfg_;
    std::string name_ = "next_line";
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_NEXT_LINE_HPP
