#include "prefetch/sms.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::prefetch {

Sms::Sms(SmsConfig cfg)
    : cfg_(cfg), offset_mask_(cfg.region_blocks - 1),
      region_shift_(util::log2_exact(cfg.region_blocks)),
      filter_(cfg.filter_entries),
      accum_(cfg.accum_entries),
      pht_(static_cast<std::size_t>(cfg.pht_sets) * cfg.pht_ways)
{
    TRIAGE_ASSERT(util::is_pow2(cfg.region_blocks));
    TRIAGE_ASSERT(util::is_pow2(cfg.pht_sets));
}

std::uint64_t
Sms::pht_key(sim::Pc pc, std::uint32_t offset) const
{
    return util::mix64(pc * 37 + offset + 1);
}

void
Sms::pht_store(std::uint64_t key, std::uint32_t pattern)
{
    std::size_t set = key & (cfg_.pht_sets - 1);
    PhtEntry* row = &pht_[set * cfg_.pht_ways];
    PhtEntry* victim = &row[0];
    for (std::uint32_t w = 0; w < cfg_.pht_ways; ++w) {
        if (row[w].valid && row[w].key == key) {
            victim = &row[w];
            break;
        }
        if (!row[w].valid) {
            victim = &row[w];
            break;
        }
        if (row[w].lru < victim->lru)
            victim = &row[w];
    }
    victim->key = key;
    victim->pattern = pattern;
    victim->valid = true;
    victim->lru = ++clock_;
}

const Sms::PhtEntry*
Sms::pht_find(std::uint64_t key) const
{
    std::size_t set = key & (cfg_.pht_sets - 1);
    const PhtEntry* row = &pht_[set * cfg_.pht_ways];
    for (std::uint32_t w = 0; w < cfg_.pht_ways; ++w) {
        if (row[w].valid && row[w].key == key)
            return &row[w];
    }
    return nullptr;
}

void
Sms::retire_generation(Generation& g)
{
    if (!g.valid)
        return;
    // Only multi-block footprints are worth remembering.
    if ((g.pattern & (g.pattern - 1)) != 0)
        pht_store(pht_key(g.trigger_pc, g.trigger_offset), g.pattern);
    g.valid = false;
}

Sms::Generation*
Sms::find_generation(std::vector<Generation>& table, sim::Addr region)
{
    for (auto& g : table) {
        if (g.valid && g.region == region)
            return &g;
    }
    return nullptr;
}

Sms::Generation*
Sms::allocate(std::vector<Generation>& table)
{
    Generation* victim = &table[0];
    for (auto& g : table) {
        if (!g.valid)
            return &g;
        if (g.lru < victim->lru)
            victim = &g;
    }
    // Evicting an active accumulation generation ends it (its footprint
    // is recorded); evicting a filter entry just forgets it.
    retire_generation(*victim);
    victim->valid = false;
    return victim;
}

void
Sms::train(const TrainEvent& ev, PrefetchHost& host)
{
    ++stats_.train_events;
    sim::Addr region = ev.block >> region_shift_;
    auto offset = static_cast<std::uint32_t>(ev.block & offset_mask_);

    if (Generation* g = find_generation(accum_, region)) {
        g->pattern |= 1u << offset;
        g->lru = ++clock_;
        return;
    }
    if (Generation* f = find_generation(filter_, region)) {
        if ((f->pattern & (1u << offset)) != 0)
            return; // same block again: still a one-block generation
        // Second distinct block: promote to the accumulation table.
        Generation* g = allocate(accum_);
        *g = *f;
        g->pattern |= 1u << offset;
        g->lru = ++clock_;
        f->valid = false;
        return;
    }

    // New generation: predict its footprint from the PHT, then track it.
    const PhtEntry* p = pht_find(pht_key(ev.pc, offset));
    if (p != nullptr) {
        sim::Addr base = region << region_shift_;
        for (std::uint32_t b = 0; b < cfg_.region_blocks; ++b) {
            if ((p->pattern & (1u << b)) == 0 || b == offset)
                continue;
            send(ev, host, base + b, ev.now);
        }
    }
    Generation* f = allocate(filter_);
    f->region = region;
    f->trigger_pc = ev.pc;
    f->trigger_offset = offset;
    f->pattern = 1u << offset;
    f->lru = ++clock_;
    f->valid = true;
}

} // namespace triage::prefetch
