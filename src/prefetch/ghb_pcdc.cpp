#include "prefetch/ghb_pcdc.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::prefetch {

GhbPcdc::GhbPcdc(GhbPcdcConfig cfg)
    : cfg_(cfg), ghb_(cfg.ghb_entries), index_(cfg.index_entries)
{
    TRIAGE_ASSERT(util::is_pow2(cfg.index_entries));
    TRIAGE_ASSERT(cfg.history >= 1);
}

std::vector<sim::Addr>
GhbPcdc::pc_history(sim::Pc pc, std::uint32_t n) const
{
    std::vector<sim::Addr> out;
    const IndexEntry& ie =
        index_[static_cast<std::uint32_t>(util::mix64(pc)) &
               (cfg_.index_entries - 1)];
    if (!ie.valid || ie.pc != pc)
        return out;
    std::uint64_t pos = ie.head;
    while (out.size() < n && pos != ~0ULL &&
           next_pos_ - pos <= cfg_.ghb_entries) {
        const GhbEntry& e = ghb_[pos % cfg_.ghb_entries];
        if (!e.valid)
            break;
        out.push_back(e.block);
        pos = e.prev;
    }
    return out;
}

void
GhbPcdc::train(const TrainEvent& ev, PrefetchHost& host)
{
    ++stats_.train_events;
    if (ev.l2_hit && !ev.was_prefetch_hit)
        return;

    // Link the new access into the GHB before predicting so the
    // current delta participates in the match.
    IndexEntry& ie =
        index_[static_cast<std::uint32_t>(util::mix64(ev.pc)) &
               (cfg_.index_entries - 1)];
    std::uint64_t prev_head =
        (ie.valid && ie.pc == ev.pc) ? ie.head : ~0ULL;
    ghb_[next_pos_ % cfg_.ghb_entries] = {ev.block, prev_head, true};
    ie = {ev.pc, next_pos_, true};
    ++next_pos_;

    // Delta correlation: take the most recent `history` deltas of this
    // PC and search for the previous occurrence of that delta sequence
    // in the PC's history; replay the deltas that followed it.
    std::uint32_t need = cfg_.history + 1;
    auto hist = pc_history(ev.pc, cfg_.ghb_entries);
    if (hist.size() < need + cfg_.history)
        return;
    // hist[0] is the current block; deltas[i] = hist[i] - hist[i+1].
    std::vector<std::int64_t> deltas;
    deltas.reserve(hist.size() - 1);
    for (std::size_t i = 0; i + 1 < hist.size(); ++i) {
        deltas.push_back(static_cast<std::int64_t>(hist[i]) -
                         static_cast<std::int64_t>(hist[i + 1]));
    }
    // Search for the newest earlier match of the leading delta pair.
    for (std::size_t m = cfg_.history; m + cfg_.history <= deltas.size();
         ++m) {
        bool match = true;
        for (std::uint32_t k = 0; k < cfg_.history; ++k) {
            if (deltas[m + k] != deltas[k]) {
                match = false;
                break;
            }
        }
        if (!match)
            continue;
        // Replay the deltas that preceded the matched position (they
        // came *after* it in program order).
        sim::Addr target = ev.block;
        std::uint32_t issued = 0;
        for (std::size_t k = m; k-- > 0 && issued < cfg_.degree;) {
            std::int64_t next =
                static_cast<std::int64_t>(target) + deltas[k];
            if (next <= 0)
                break;
            target = static_cast<sim::Addr>(next);
            send(ev, host, target, ev.now);
            ++issued;
        }
        return;
    }
}

} // namespace triage::prefetch
