#include "prefetch/hybrid.hpp"

#include "util/log.hpp"

namespace triage::prefetch {

Hybrid::Hybrid(std::vector<std::unique_ptr<Prefetcher>> children)
    : children_(std::move(children))
{
    TRIAGE_ASSERT(!children_.empty());
    for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0)
            name_ += "+";
        name_ += children_[i]->name();
    }
}

void
Hybrid::train(const TrainEvent& ev, PrefetchHost& host)
{
    ++stats_.train_events;
    for (auto& c : children_)
        c->train(ev, host);
}

void
Hybrid::on_fill(sim::Addr block, sim::Cycle now, bool was_prefetch)
{
    for (auto& c : children_)
        c->on_fill(block, now, was_prefetch);
}

PrefetcherStats
Hybrid::snapshot() const
{
    PrefetcherStats agg;
    agg.train_events = stats_.train_events;
    for (const auto& c : children_) {
        PrefetcherStats s = c->snapshot();
        agg.candidates += s.candidates;
        agg.redundant += s.redundant;
        agg.filled_from_llc += s.filled_from_llc;
        agg.issued_to_dram += s.issued_to_dram;
        agg.dropped += s.dropped;
        agg.useful += s.useful;
        agg.late += s.late;
        agg.meta_onchip_reads += s.meta_onchip_reads;
        agg.meta_onchip_writes += s.meta_onchip_writes;
        agg.meta_offchip_reads += s.meta_offchip_reads;
        agg.meta_offchip_writes += s.meta_offchip_writes;
    }
    return agg;
}

void
Hybrid::clear_stats()
{
    stats_ = {};
    for (auto& c : children_)
        c->clear_stats();
}

void
Hybrid::register_stats(obs::Registry& reg, const std::string& prefix) const
{
    for (const auto& c : children_)
        c->register_stats(reg, prefix + "." + c->name());
}

void
Hybrid::register_probes(obs::EpochSampler& sampler,
                        const std::string& prefix) const
{
    for (const auto& c : children_)
        c->register_probes(sampler, prefix + "." + c->name());
}

void
Hybrid::set_trace(obs::EventTrace* trace)
{
    for (auto& c : children_)
        c->set_trace(trace);
}

void
Hybrid::set_partition_timeline(obs::PartitionTimeline* timeline,
                               unsigned core)
{
    for (auto& c : children_)
        c->set_partition_timeline(timeline, core);
}

} // namespace triage::prefetch
