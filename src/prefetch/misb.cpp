#include "prefetch/misb.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::prefetch {

MetadataCache::MetadataCache(std::uint32_t entries, std::uint32_t ways)
    : sets_(entries / ways), ways_(ways),
      entries_(static_cast<std::size_t>(entries))
{
    TRIAGE_ASSERT(util::is_pow2(sets_), "metadata cache sets");
}

std::optional<std::uint64_t>
MetadataCache::find(std::uint64_t key)
{
    std::size_t set = util::mix64(key) & (sets_ - 1);
    Entry* row = &entries_[set * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (row[w].valid && row[w].key == key) {
            row[w].lru = ++clock_;
            ++hits_;
            return row[w].value;
        }
    }
    ++misses_;
    return std::nullopt;
}

MetadataCache::Evicted
MetadataCache::insert(std::uint64_t key, std::uint64_t value, bool dirty)
{
    std::size_t set = util::mix64(key) & (sets_ - 1);
    Entry* row = &entries_[set * ways_];
    Entry* victim = &row[0];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (row[w].valid && row[w].key == key) {
            row[w].value = value;
            row[w].dirty |= dirty;
            row[w].lru = ++clock_;
            return {};
        }
        if (!row[w].valid)
            victim = &row[w];
        else if (victim->valid && row[w].lru < victim->lru)
            victim = &row[w];
    }
    Evicted ev;
    if (victim->valid)
        ev = {true, victim->dirty, victim->key, victim->value};
    *victim = {key, value, ++clock_, dirty, true};
    return ev;
}

MisbConfig
isb_config(std::uint32_t degree)
{
    MisbConfig cfg;
    cfg.degree = degree;
    cfg.granule_entries = 64; // page-granular metadata movement
    cfg.metadata_prefetch = false;
    cfg.stream_ps_charge = false; // page residency covers the stream
    cfg.display_name = "isb";
    return cfg;
}

Misb::Misb(MisbConfig cfg)
    : cfg_(cfg),
      ps_cache_(cfg.ps_cache_entries, cfg.cache_ways),
      sp_cache_(cfg.sp_cache_entries, cfg.cache_ways),
      tu_(cfg.training_unit_entries),
      streams_(32),
      name_(cfg.display_name)
{
}

void
Misb::handle_eviction(const MetadataCache::Evicted& ev_entry, bool is_ps,
                      const TrainEvent& ev, PrefetchHost& host)
{
    if (!ev_entry.valid || !ev_entry.dirty)
        return;
    // Fine-grained metadata management (MISB's central idea): dirty
    // 4-byte entries coalesce in a write buffer and drain to DRAM one
    // 64 B burst per granule_entries evictions, instead of a full line
    // per entry.
    (void)is_ps;
    if (++pending_dirty_ >= cfg_.granule_entries) {
        pending_dirty_ = 0;
        ++stats_.meta_offchip_writes;
        host.offchip_metadata_access(ev.core, ev.now, sim::BLOCK_SIZE,
                                     true, cfg_.charge_time);
    }
}

sim::Cycle
Misb::fetch_granule(bool is_ps, std::uint64_t first_key,
                    const TrainEvent& ev, PrefetchHost& host)
{
    // A granule of granule_entries 4-byte entries moves in 64 B bursts
    // (one burst for MISB's 16-entry granules, four for ISB's pages).
    std::uint64_t base =
        first_key / cfg_.granule_entries * cfg_.granule_entries;
    std::uint32_t bursts =
        std::max(1u, cfg_.granule_entries * 4 / 64);
    stats_.meta_offchip_reads += bursts;
    sim::Cycle done = host.offchip_metadata_access(
        ev.core, ev.now, bursts * sim::BLOCK_SIZE, false,
        cfg_.charge_time);
    auto& backing = is_ps ? ps_backing_ : sp_backing_;
    auto& mcache = is_ps ? ps_cache_ : sp_cache_;
    for (std::uint32_t i = 0; i < cfg_.granule_entries; ++i) {
        auto it = backing.find(base + i);
        if (it == backing.end())
            continue;
        handle_eviction(mcache.insert(base + i, it->second, false), is_ps,
                        ev, host);
    }
    return done;
}

std::uint64_t
Misb::ps_lookup(sim::Addr phys, const TrainEvent& ev, PrefetchHost& host,
                sim::Cycle& avail)
{
    avail = ev.now;
    if (auto v = ps_cache_.find(phys))
        return *v;
    // Bloom filter: untracked addresses never go off chip.
    if (mapped_.find(phys) == mapped_.end())
        return INVALID;
    avail = fetch_granule(true, phys, ev, host);
    auto it = ps_backing_.find(phys);
    return it == ps_backing_.end() ? INVALID : it->second;
}

sim::Addr
Misb::sp_lookup(std::uint64_t structural, const TrainEvent& ev,
                PrefetchHost& host, sim::Cycle& avail)
{
    avail = ev.now;
    if (auto v = sp_cache_.find(structural))
        return *v;
    auto it = sp_backing_.find(structural);
    if (it == sp_backing_.end())
        return INVALID;
    avail = fetch_granule(false, structural, ev, host);
    return it->second;
}

void
Misb::ps_update(sim::Addr phys, std::uint64_t structural,
                const TrainEvent& ev, PrefetchHost& host)
{
    ps_backing_[phys] = structural;
    mapped_.insert(phys);
    handle_eviction(ps_cache_.insert(phys, structural, true), true, ev,
                    host);
}

void
Misb::sp_update(std::uint64_t structural, sim::Addr phys,
                const TrainEvent& ev, PrefetchHost& host)
{
    sp_backing_[structural] = phys;
    handle_eviction(sp_cache_.insert(structural, phys, true), false, ev,
                    host);
}

void
Misb::train(const TrainEvent& ev, PrefetchHost& host)
{
    ++stats_.train_events;
    if (ev.l2_hit && !ev.was_prefetch_hit)
        return;

    // --- Predict from the current access. An active stream buffer
    // supplies the structural address without any PS access; only
    // stream starts pay for a PS lookup.
    sim::Cycle ps_avail = ev.now;
    std::uint64_t s = INVALID;
    ActiveStream* stream = nullptr;
    for (auto& st : streams_) {
        if (st.valid && st.expected_phys == ev.block) {
            s = st.structural;
            st.lru = ++stream_clock_;
            stream = &st;
            break;
        }
        if (stream == nullptr || !st.valid ||
            (stream->valid && st.lru < stream->lru)) {
            stream = &st; // LRU fallback for allocation below
        }
    }
    bool from_stream = s != INVALID;
    if (from_stream) {
        // The stream advanced onto this trigger. MISB's metadata
        // prefetcher staged the trigger's PS entry ahead of time —
        // which hides the latency (the prediction below proceeds at
        // ev.now) but not the traffic: PS entries live in physical
        // address space with no locality, so each staged trigger cost
        // one off-chip burst unless it was still cached.
        if (!ps_cache_.find(ev.block)) {
            if (cfg_.stream_ps_charge) {
                ++stats_.meta_offchip_reads;
                host.offchip_metadata_access(ev.core, ev.now,
                                             sim::BLOCK_SIZE, false,
                                             cfg_.charge_time);
            }
            handle_eviction(ps_cache_.insert(ev.block, s, false), true,
                            ev, host);
        }
    } else {
        s = ps_lookup(ev.block, ev, host, ps_avail);
    }
    if (s != INVALID) {
        sim::Addr first_target = INVALID;
        for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
            sim::Cycle sp_avail = ps_avail;
            sim::Addr target = sp_lookup(s + d, ev, host, sp_avail);
            if (target == INVALID)
                break;
            if (d == 1)
                first_target = target;
            if (target != ev.block)
                send(ev, host, target, std::max(ps_avail, sp_avail));
        }
        // Arm / advance the stream buffer for the predicted successor.
        if (first_target != INVALID) {
            stream->expected_phys = first_target;
            stream->structural = s + 1;
            stream->lru = ++stream_clock_;
            stream->valid = true;
        } else if (from_stream) {
            stream->valid = false; // stream ran off its mapped chunk
        }
        if (cfg_.metadata_prefetch &&
            (s + cfg_.degree + 1) % cfg_.granule_entries ==
                cfg_.granule_entries / 2) {
            // Walk-ahead metadata prefetch, once per granule per
            // stream: stage the next SP granule so upcoming lookups
            // hit on chip.
            std::uint64_t key =
                (s / cfg_.granule_entries + 1) * cfg_.granule_entries;
            if (sp_backing_.find(key) != sp_backing_.end() &&
                !sp_cache_.find(key)) {
                fetch_granule(false, key, ev, host);
            }
        }
    }

    // --- Train on the PC-localized pair (last, current).
    TuEntry* e = nullptr;
    TuEntry* victim = &tu_[0];
    for (auto& t : tu_) {
        if (t.valid && t.pc == ev.pc) {
            e = &t;
            break;
        }
        if (!t.valid)
            victim = &t;
        else if (victim->valid && t.lru < victim->lru)
            victim = &t;
    }
    if (e == nullptr) {
        *victim = {ev.pc, ev.block, ++tu_clock_, true};
        return;
    }
    sim::Addr a = e->last;
    sim::Addr b = ev.block;
    e->last = b;
    e->lru = ++tu_clock_;
    if (a == b)
        return;

    sim::Cycle t_ignore = ev.now;
    std::uint64_t sa = ps_lookup(a, ev, host, t_ignore);
    if (sa == INVALID) {
        // Start a new structural stream for this correlation.
        sa = next_structural_;
        next_structural_ += cfg_.stream_length;
        ps_update(a, sa, ev, host);
        sp_update(sa, a, ev, host);
    }
    std::uint64_t expected = sa + 1;
    if (expected % cfg_.stream_length == 0) {
        // Stream chunk exhausted: B begins a new stream.
        expected = next_structural_;
        next_structural_ += cfg_.stream_length;
    }
    std::uint64_t sb = ps_lookup(b, ev, host, t_ignore);
    if (sb == expected) {
        ps_confident_.insert(b);
    } else if (sb != INVALID && sb % cfg_.stream_length == 0) {
        // B anchors its own stream chunk (a loop header or stream
        // head). Re-mapping it would shift its whole stream one slot
        // every lap of a cyclic structure; ISB leaves heads in place
        // and lets A's chunk simply end here.
    } else if (sb != INVALID && ps_confident_.erase(b) > 0) {
        // First disagreement: keep the existing mapping (confidence
        // bit cleared); a second one will trigger the remap.
    } else {
        ps_update(b, expected, ev, host);
        sp_update(expected, b, ev, host);
        ps_confident_.insert(b);
    }
}

} // namespace triage::prefetch
