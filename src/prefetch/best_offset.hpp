/**
 * @file
 * Best-Offset prefetcher (Michaud, HPCA 2016) — winner of the 2nd Data
 * Prefetching Championship and the paper's representative of
 * state-of-the-art regular prefetching with on-chip metadata.
 *
 * BO learns a single block offset D that maximizes timeliness: an
 * offset scores a point whenever, for a trigger access to line X, line
 * X - D was recently *completed* (present in the recent-requests
 * table), meaning a prefetch issued at X - D would have been timely.
 * After a learning round, the best-scoring offset drives prefetches of
 * X + D on every trigger access.
 */
#ifndef TRIAGE_PREFETCH_BEST_OFFSET_HPP
#define TRIAGE_PREFETCH_BEST_OFFSET_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Tuning knobs (defaults follow the HPCA'16 paper). */
struct BestOffsetConfig {
    std::uint32_t rr_entries = 256; ///< recent-requests table, power of 2
    std::uint32_t score_max = 31;   ///< learning ends when a score hits this
    std::uint32_t round_max = 100;  ///< ...or after this many full rounds
    std::uint32_t bad_score = 10;   ///< best < this disables prefetching
    std::uint32_t degree = 1;       ///< chained multiples of D per trigger
};

/** Best-Offset prefetcher. */
class BestOffset final : public Prefetcher
{
  public:
    explicit BestOffset(BestOffsetConfig cfg = {});

    void train(const TrainEvent& ev, PrefetchHost& host) override;
    void on_fill(sim::Addr block, sim::Cycle now,
                 bool was_prefetch) override;
    const std::string& name() const override { return name_; }

    /** Currently selected offset (0 while prefetching is disabled). */
    std::int32_t current_offset() const { return prefetching_on_ ? best_offset_ : 0; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.bo");
        s.io_pod_vec(scores_);
        s.io_pod_vec(rr_table_);
        s.io(test_index_);
        s.io(round_);
        s.io(best_offset_);
        s.io(prefetching_on_);
    }

  private:
    void rr_insert(sim::Addr block);
    bool rr_contains(sim::Addr block) const;
    void finish_learning_phase();

    BestOffsetConfig cfg_;
    std::vector<std::int32_t> offsets_; ///< candidate offsets
    std::vector<std::uint32_t> scores_;
    std::vector<sim::Addr> rr_table_;   ///< direct-mapped, tag = block
    std::uint32_t test_index_ = 0;
    std::uint32_t round_ = 0;
    std::int32_t best_offset_ = 1;
    bool prefetching_on_ = true;
    std::string name_ = "bo";
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_BEST_OFFSET_HPP
