/**
 * @file
 * The prefetcher interface and the host interface the memory hierarchy
 * exposes to prefetchers.
 *
 * All L2 prefetchers observe the L2 access stream (paper Section 4.1)
 * and insert into L2. A prefetcher receives every L2 demand access as a
 * TrainEvent and may issue any number of prefetch candidates through
 * its PrefetchHost. The host reports the fate of each candidate, which
 * Triage uses to filter its Hawkeye training (only prefetches that miss
 * in the cache train positively).
 */
#ifndef TRIAGE_PREFETCH_PREFETCHER_HPP
#define TRIAGE_PREFETCH_PREFETCHER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace triage::obs {
class Registry;
class EpochSampler;
class EventTrace;
class PartitionTimeline;
} // namespace triage::obs

namespace triage::prefetch {

/** What happened to an issued prefetch candidate. */
enum class PfOutcome : std::uint8_t {
    RedundantL2,      ///< target already resident (or in flight) in L2
    FilledFromLlc,    ///< LLC hit; moved into L2 with no off-chip traffic
    IssuedToDram,     ///< missed everywhere; fetched from memory
    DroppedBandwidth, ///< memory controller prefetch queue was full
};

/** One L2 demand access, as seen by prefetchers. */
struct TrainEvent {
    sim::Pc pc = 0;
    sim::Addr block = 0; ///< block (line) address, not byte address
    sim::Cycle now = 0;
    unsigned core = 0;
    bool is_write = false;
    bool l2_hit = false;
    /** The access hit a line whose first demand touch this is. */
    bool was_prefetch_hit = false;
};

/** Counters every prefetcher accumulates (host-maintained where noted). */
struct PrefetcherStats {
    std::uint64_t train_events = 0;
    std::uint64_t candidates = 0;   ///< prefetches attempted
    std::uint64_t redundant = 0;    ///< already in L2
    std::uint64_t filled_from_llc = 0;
    std::uint64_t issued_to_dram = 0;
    std::uint64_t dropped = 0;
    std::uint64_t useful = 0;       ///< prefetched lines later demanded (host)
    std::uint64_t late = 0;         ///< ...still in flight on demand (host)

    // Metadata accounting.
    std::uint64_t meta_onchip_reads = 0;  ///< LLC-resident metadata lookups
    std::uint64_t meta_onchip_writes = 0; ///< LLC-resident metadata updates
    std::uint64_t meta_offchip_reads = 0; ///< DRAM metadata reads (MISB...)
    std::uint64_t meta_offchip_writes = 0;

    /** Prefetches that actually entered the hierarchy. */
    std::uint64_t
    issued() const
    {
        return filled_from_llc + issued_to_dram;
    }

    /** Fraction of issued prefetches that were demanded before eviction. */
    double
    accuracy() const
    {
        return issued() == 0 ? 0.0
                             : static_cast<double>(useful) /
                                   static_cast<double>(issued());
    }
};

/**
 * Services the hierarchy provides to prefetchers: issuing prefetches,
 * charging metadata latency/energy/traffic, and (for Triage) resizing
 * the LLC metadata partition.
 */
class PrefetchHost
{
  public:
    virtual ~PrefetchHost() = default;

    /**
     * Try to prefetch @p block for @p core; the request leaves the
     * prefetcher at time @p when (e.g. delayed by metadata lookups).
     * @p owner receives credit when the line is later demanded.
     */
    virtual PfOutcome issue_prefetch(unsigned core, sim::Addr block,
                                     sim::Cycle when,
                                     class Prefetcher* owner) = 0;

    /** LLC load-to-use latency (per on-chip metadata table lookup). */
    virtual sim::Cycle llc_latency() const = 0;

    /**
     * Account one LLC access made on behalf of on-chip prefetcher
     * metadata (energy model: 1 unit per access, Figure 13).
     */
    virtual void count_metadata_llc_access(unsigned core, bool is_write) = 0;

    /**
     * Perform an off-chip metadata access of @p bytes (MISB/STMS/
     * Domino). When @p charge_time is false the access is counted as
     * traffic but does not occupy DRAM channels (idealized prefetchers).
     * @return completion time of the access.
     */
    virtual sim::Cycle offchip_metadata_access(unsigned core, sim::Cycle now,
                                               std::uint32_t bytes,
                                               bool is_write,
                                               bool charge_time) = 0;

    /**
     * Request @p bytes of LLC capacity for core-private prefetcher
     * metadata (Triage's dynamic partitioning). The host converts the
     * aggregate demand across cores into way partitioning.
     */
    virtual void request_metadata_capacity(unsigned core,
                                           std::uint64_t bytes,
                                           sim::Cycle now) = 0;
};

/** Base class for all L2 prefetchers. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Observe one L2 demand access; may issue prefetches via @p host. */
    virtual void train(const TrainEvent& ev, PrefetchHost& host) = 0;

    /**
     * The hierarchy detected an L2 miss for @p block and is about to do
     * the fill bookkeeping before calling train(). Prefetchers with
     * large host-memory tables (Triage's metadata store) use this to
     * start pulling the rows train() will touch into the simulating
     * machine's caches while the fill work proceeds. Pure wall-clock
     * latency hint — no simulated (architectural) effect.
     */
    virtual void pre_train_hint(sim::Addr /*block*/) const {}

    /**
     * A line this prefetcher fetched received its first demand hit
     * (useful prefetch). Invoked by the hierarchy.
     */
    virtual void on_prefetch_used(sim::Addr /*block*/, sim::Cycle /*now*/) {}

    /**
     * A block finished filling into L2 (demand or prefetch). Best-Offset
     * uses fills to populate its recent-requests table.
     */
    virtual void on_fill(sim::Addr /*block*/, sim::Cycle /*now*/,
                         bool /*was_prefetch*/)
    {}

    virtual const std::string& name() const = 0;

    /** Stats snapshot; composites (hybrids) aggregate their children. */
    virtual PrefetcherStats snapshot() const { return stats_; }
    virtual void clear_stats() { stats_ = {}; }

    // --- Observability ---------------------------------------------------

    /**
     * Bind this prefetcher's counters (and any internal structures —
     * Triage adds its metadata store and partition controller) into
     * @p reg under dot-prefix @p prefix.
     */
    virtual void register_stats(obs::Registry& reg,
                                const std::string& prefix) const;

    /**
     * Contribute per-epoch time-series probes under @p prefix (default:
     * accuracy; Triage adds metadata hit rate and store size).
     */
    virtual void register_probes(obs::EpochSampler& sampler,
                                 const std::string& prefix) const;

    /** Attach (null: detach) a structured event trace. */
    virtual void set_trace(obs::EventTrace* trace) { (void)trace; }

    /**
     * Attach (null: detach) a partition-decision timeline for @p core.
     * Only prefetchers with a dynamic partition controller (Triage)
     * record into it; the default is a no-op.
     */
    virtual void
    set_partition_timeline(obs::PartitionTimeline* timeline, unsigned core)
    {
        (void)timeline;
        (void)core;
    }

    PrefetcherStats& stats() { return stats_; }
    const PrefetcherStats& stats() const { return stats_; }

    // --- Warm-state checkpointing ----------------------------------------

    /**
     * Save/restore all mutable prediction state through the archive
     * (docs/parallel-runs.md §checkpointing). The default covers the
     * shared stats block; stateful prefetchers override, call the base
     * first, then serialize their tables.
     */
    virtual void
    checkpoint(sim::Snapshot& s)
    {
        s.section("pf.stats");
        s.io_pod(stats_);
    }

    /**
     * Append every Prefetcher that can appear as a line's pf_owner to
     * @p out — i.e. every object whose `this` reaches send(). Leaf
     * prefetchers push themselves (the default); composites push
     * themselves and recurse, since hybrid children issue with their
     * own identity. Feeds cache::PfOwnerCodec.
     */
    virtual void
    enumerate(std::vector<Prefetcher*>& out)
    {
        out.push_back(this);
    }

  protected:
    /**
     * A prefetch whose issue time slipped this far past its trigger
     * (e.g. behind saturated off-chip metadata reads) is pointless;
     * send() drops it instead of scheduling a fill in the far future.
     */
    static constexpr sim::Cycle MAX_ISSUE_DELAY = 1000;

    /** Helper: issue one candidate and do the standard stats accounting. */
    PfOutcome
    send(const TrainEvent& ev, PrefetchHost& host, sim::Addr block,
         sim::Cycle when)
    {
        ++stats_.candidates;
        if (when > ev.now + MAX_ISSUE_DELAY) {
            ++stats_.dropped;
            return PfOutcome::DroppedBandwidth;
        }
        PfOutcome out = host.issue_prefetch(ev.core, block, when, this);
        switch (out) {
          case PfOutcome::RedundantL2: ++stats_.redundant; break;
          case PfOutcome::FilledFromLlc: ++stats_.filled_from_llc; break;
          case PfOutcome::IssuedToDram: ++stats_.issued_to_dram; break;
          case PfOutcome::DroppedBandwidth: ++stats_.dropped; break;
        }
        return out;
    }

    PrefetcherStats stats_;
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_PREFETCHER_HPP
