/**
 * @file
 * Markov prefetcher (Joseph & Grunwald, ISCA 1997): a bounded on-chip
 * table mapping each miss address to its most likely successors, with
 * no PC localization. Included as the historical table-based baseline
 * Triage's Section 2 discusses (its 2-4x larger tables motivate
 * Triage's PC-localized single-successor entries).
 */
#ifndef TRIAGE_PREFETCH_MARKOV_HPP
#define TRIAGE_PREFETCH_MARKOV_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Tuning knobs. */
struct MarkovConfig {
    std::uint32_t table_entries = 65536; ///< power of two
    std::uint32_t ways = 8;
    std::uint32_t successors = 2; ///< successor slots per entry
};

/** Markov correlation-table prefetcher. */
class Markov final : public Prefetcher
{
  public:
    explicit Markov(MarkovConfig cfg = {});

    void train(const TrainEvent& ev, PrefetchHost& host) override;
    const std::string& name() const override { return name_; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.markov");
        s.io_vec(table_, [](sim::Snapshot& a, Entry& e) {
            a.io(e.addr);
            a.io_pod_vec(e.succ);
            a.io(e.lru);
            a.io(e.valid);
        });
        s.io(clock_);
        s.io(last_miss_);
        s.io(have_last_);
    }

  private:
    struct Entry {
        sim::Addr addr = 0;
        std::vector<sim::Addr> succ;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    Entry* find(sim::Addr addr);
    Entry& allocate(sim::Addr addr);

    MarkovConfig cfg_;
    std::uint32_t sets_;
    std::vector<Entry> table_;
    std::uint64_t clock_ = 0;
    sim::Addr last_miss_ = 0;
    bool have_last_ = false;
    std::string name_ = "markov";
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_MARKOV_HPP
