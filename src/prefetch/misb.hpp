/**
 * @file
 * MISB (Wu et al., ISCA 2019): the state-of-the-art off-chip temporal
 * prefetcher Triage is compared against.
 *
 * Like ISB, MISB maps PC-localized correlated addresses onto a
 * *structural address space* so that temporal neighbours become
 * spatial neighbours: PS (physical->structural) and SP
 * (structural->physical) mappings live off chip, with small on-chip
 * metadata caches managed at fine granularity. MISB adds a metadata
 * prefetcher that walks ahead in the structural space, and a Bloom
 * filter that suppresses off-chip lookups for untracked addresses.
 *
 * Unlike the idealized STMS/Domino models, MISB's metadata traffic is
 * charged against the DRAM model in full (reads delay the dependent
 * data prefetch; dirty metadata evictions write back), reproducing the
 * paper's "faithfully modeled" comparison (Figures 11-13, 17).
 */
#ifndef TRIAGE_PREFETCH_MISB_HPP
#define TRIAGE_PREFETCH_MISB_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Tuning knobs. Default on-chip budget is the paper's MISB_48KB. */
struct MisbConfig {
    std::uint32_t ps_cache_entries = 8192; ///< 32 KB at 4 B/entry
    std::uint32_t sp_cache_entries = 4096; ///< 16 KB at 4 B/entry
    std::uint32_t cache_ways = 8;
    std::uint32_t training_unit_entries = 64;
    /** Structural stream chunk; new PC streams start on this boundary. */
    std::uint32_t stream_length = 256;
    /** Metadata entries moved per off-chip 64 B burst. */
    std::uint32_t granule_entries = 16;
    std::uint32_t degree = 1;
    /** Walk-ahead metadata prefetching (MISB's key addition). */
    bool metadata_prefetch = true;
    /** Charge metadata latency/bandwidth (false only in ablations). */
    bool charge_time = true;
    /**
     * Charge an off-chip read when a stream advance needs a PS entry
     * that is no longer cached (MISB's fine-grained PS metadata
     * prefetching: latency hidden, traffic real). ISB's page-synced
     * variant instead pays at page granularity via larger granules.
     */
    bool stream_ps_charge = true;
    /** Display name ("misb" or "isb"). */
    const char* display_name = "misb";
};

/** ISB (Jain & Lin, MICRO 2013): the TLB-synced predecessor of MISB.
 *  Metadata moves at page granularity (64 entries = 4 bursts per
 *  fetch), there is no metadata prefetcher, and cache utilization is
 *  correspondingly poor — the 200-400% traffic regime the paper's
 *  related work describes. */
MisbConfig isb_config(std::uint32_t degree = 1);

/**
 * On-chip metadata cache: set-associative, LRU, key->value entries
 * with dirty bits. Shared by the PS and SP sides.
 */
class MetadataCache
{
  public:
    MetadataCache(std::uint32_t entries, std::uint32_t ways);

    /** Probe; refreshes LRU on hit. */
    std::optional<std::uint64_t> find(std::uint64_t key);

    struct Evicted {
        bool valid = false;
        bool dirty = false;
        std::uint64_t key = 0;
        std::uint64_t value = 0;
    };

    /** Install or update (key -> value). */
    Evicted insert(std::uint64_t key, std::uint64_t value, bool dirty);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void
    checkpoint(sim::Snapshot& s)
    {
        s.section("misb.mdcache");
        s.io_vec(entries_, [](sim::Snapshot& a, Entry& e) {
            a.io(e.key);
            a.io(e.value);
            a.io(e.lru);
            a.io(e.dirty);
            a.io(e.valid);
        });
        s.io(clock_);
        s.io(hits_);
        s.io(misses_);
    }

  private:
    struct Entry {
        std::uint64_t key = 0;
        std::uint64_t value = 0;
        std::uint64_t lru = 0;
        bool dirty = false;
        bool valid = false;
    };

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** MISB prefetcher. */
class Misb final : public Prefetcher
{
  public:
    explicit Misb(MisbConfig cfg = {});

    void train(const TrainEvent& ev, PrefetchHost& host) override;
    const std::string& name() const override { return name_; }

    const MetadataCache& ps_cache() const { return ps_cache_; }
    const MetadataCache& sp_cache() const { return sp_cache_; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.misb");
        s.io_map(ps_backing_);
        s.io_map(sp_backing_);
        s.io_set(ps_confident_);
        s.io_set(mapped_);
        ps_cache_.checkpoint(s);
        sp_cache_.checkpoint(s);
        s.io_vec(tu_, [](sim::Snapshot& a, TuEntry& e) {
            a.io(e.pc);
            a.io(e.last);
            a.io(e.lru);
            a.io(e.valid);
        });
        s.io(tu_clock_);
        s.io_vec(streams_, [](sim::Snapshot& a, ActiveStream& e) {
            a.io(e.expected_phys);
            a.io(e.structural);
            a.io(e.lru);
            a.io(e.valid);
        });
        s.io(stream_clock_);
        s.io(next_structural_);
        s.io(pending_dirty_);
    }

  private:
    static constexpr std::uint64_t INVALID = ~std::uint64_t{0};

    /**
     * Look up PS[phys]; on on-chip miss fetch the off-chip granule
     * (charged). @return structural address (INVALID if unmapped) and
     * the time the answer is available.
     */
    std::uint64_t ps_lookup(sim::Addr phys, const TrainEvent& ev,
                            PrefetchHost& host, sim::Cycle& avail);
    sim::Addr sp_lookup(std::uint64_t structural, const TrainEvent& ev,
                        PrefetchHost& host, sim::Cycle& avail);
    void ps_update(sim::Addr phys, std::uint64_t structural,
                   const TrainEvent& ev, PrefetchHost& host);
    void sp_update(std::uint64_t structural, sim::Addr phys,
                   const TrainEvent& ev, PrefetchHost& host);
    void handle_eviction(const MetadataCache::Evicted& ev_entry,
                         bool is_ps, const TrainEvent& ev,
                         PrefetchHost& host);
    /** Fetch one off-chip granule into the on-chip cache. */
    sim::Cycle fetch_granule(bool is_ps, std::uint64_t first_key,
                             const TrainEvent& ev, PrefetchHost& host);

    MisbConfig cfg_;
    // Off-chip backing store (DRAM-resident metadata, unbounded).
    std::unordered_map<std::uint64_t, std::uint64_t> ps_backing_;
    std::unordered_map<std::uint64_t, std::uint64_t> sp_backing_;
    /**
     * 1-bit remap confidence per mapped physical block (part of the PS
     * entry architecturally): a block is re-mapped to a new structural
     * address only after two consecutive disagreements, so blocks with
     * several valid successors stop churning the structural space.
     */
    std::unordered_set<std::uint64_t> ps_confident_;
    /** Architecturally a Bloom filter: is this address tracked at all? */
    std::unordered_set<std::uint64_t> mapped_;
    MetadataCache ps_cache_;
    MetadataCache sp_cache_;

    // Training unit: PC -> last physical block (small, LRU via clock).
    struct TuEntry {
        sim::Pc pc = 0;
        sim::Addr last = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };
    std::vector<TuEntry> tu_;
    std::uint64_t tu_clock_ = 0;

    /**
     * Stream buffers (ISB's key structure): once a stream is active,
     * the next trigger's structural address is known (s+1), so no PS
     * lookup — on or off chip — is needed while the prediction holds.
     */
    struct ActiveStream {
        sim::Addr expected_phys = 0;
        std::uint64_t structural = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };
    std::vector<ActiveStream> streams_;
    std::uint64_t stream_clock_ = 0;

    std::uint64_t next_structural_ = 0;
    std::uint32_t pending_dirty_ = 0; ///< coalescing write buffer fill
    std::string name_;
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_MISB_HPP
