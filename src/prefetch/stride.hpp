/**
 * @file
 * Per-PC stride prefetcher (Baer & Chen style), used as the always-on
 * L1D prefetcher from Table 1.
 */
#ifndef TRIAGE_PREFETCH_STRIDE_HPP
#define TRIAGE_PREFETCH_STRIDE_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Tuning knobs. */
struct StrideConfig {
    std::uint32_t table_entries = 256; ///< power of two, PC-indexed
    std::uint32_t degree = 2;          ///< blocks ahead once confident
    std::uint8_t confidence_threshold = 2;
};

/**
 * Classic reference-prediction-table stride prefetcher: per PC, track
 * the last block and stride with a 2-bit confidence counter; once
 * confident, prefetch the next `degree` strided blocks.
 */
class StridePrefetcher final : public Prefetcher
{
  public:
    explicit StridePrefetcher(StrideConfig cfg = {});

    void train(const TrainEvent& ev, PrefetchHost& host) override;
    const std::string& name() const override { return name_; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.stride");
        s.io_vec(table_, [](sim::Snapshot& a, Entry& e) {
            a.io(e.pc);
            a.io(e.last_block);
            a.io(e.stride);
            a.io(e.confidence);
            a.io(e.valid);
        });
    }

  private:
    struct Entry {
        sim::Pc pc = 0;
        sim::Addr last_block = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    Entry& entry_for(sim::Pc pc);

    StrideConfig cfg_;
    std::vector<Entry> table_;
    std::string name_ = "stride";
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_STRIDE_HPP
