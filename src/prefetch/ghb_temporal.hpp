/**
 * @file
 * Global-history-buffer temporal prefetchers: STMS (Wenisch et al.,
 * HPCA 2009) and Domino (Bakhshalipour et al., HPCA 2018).
 *
 * Both record the global miss stream in a large circular history buffer
 * (conceptually off-chip) and index it to locate the previous
 * occurrence of the current trigger:
 *  - STMS indexes by single miss address;
 *  - Domino indexes by the (previous, current) miss-address pair, which
 *    disambiguates streams that share one address.
 *
 * Following the paper's methodology (Section 4.1), both are modeled as
 * *idealized*: their off-chip metadata transactions complete instantly
 * and add no latency, but the traffic they *would* generate is counted
 * so Figures 11/12 can report it.
 */
#ifndef TRIAGE_PREFETCH_GHB_TEMPORAL_HPP
#define TRIAGE_PREFETCH_GHB_TEMPORAL_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace triage::prefetch {

/** Indexing scheme selecting STMS or Domino behaviour. */
enum class GhbIndexMode : std::uint8_t {
    SingleAddress, ///< STMS
    AddressPair,   ///< Domino
};

/** Tuning knobs. */
struct GhbTemporalConfig {
    GhbIndexMode mode = GhbIndexMode::SingleAddress;
    /** History buffer entries (millions => tens of MB off chip). */
    std::uint32_t ghb_entries = 1u << 21;
    std::uint32_t degree = 1;
    /**
     * Idealized timing (no latency / no bus occupancy for metadata).
     * Traffic is counted either way.
     */
    bool idealized = true;
};

/** STMS / Domino. */
class GhbTemporal final : public Prefetcher
{
  public:
    explicit GhbTemporal(GhbTemporalConfig cfg);

    void train(const TrainEvent& ev, PrefetchHost& host) override;
    const std::string& name() const override { return name_; }

    std::uint64_t history_length() const { return next_pos_; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.ghb_temporal");
        s.io_pod_vec(ghb_);
        s.io(next_pos_);
        s.io_map(index_);
        s.io(last_trigger_);
        s.io(have_last_);
        s.io(appends_);
    }

  private:
    std::uint64_t index_key(sim::Addr block) const;

    GhbTemporalConfig cfg_;
    std::vector<sim::Addr> ghb_;
    std::uint64_t next_pos_ = 0; ///< absolute append position
    std::unordered_map<std::uint64_t, std::uint64_t> index_;
    sim::Addr last_trigger_ = 0;
    bool have_last_ = false;
    std::uint64_t appends_ = 0;
    std::string name_;
};

} // namespace triage::prefetch

#endif // TRIAGE_PREFETCH_GHB_TEMPORAL_HPP
