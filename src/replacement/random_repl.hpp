/**
 * @file
 * Random replacement (deterministic PCG32 stream).
 */
#ifndef TRIAGE_REPLACEMENT_RANDOM_REPL_HPP
#define TRIAGE_REPLACEMENT_RANDOM_REPL_HPP

#include "cache/replacement.hpp"
#include "util/rng.hpp"

namespace triage::replacement {

/** Uniform-random victim selection; useful as a baseline in tests. */
class RandomRepl final : public cache::ReplacementPolicy
{
  public:
    explicit RandomRepl(std::uint64_t seed = 1) : rng_(seed) {}

    void on_hit(const cache::ReplAccess&) override {}
    void on_insert(const cache::ReplAccess&) override {}
    void on_miss(std::uint32_t, sim::Addr, sim::Pc) override {}
    void on_invalidate(std::uint32_t, std::uint32_t) override {}

    std::uint32_t
    victim(std::uint32_t, std::uint32_t way_begin,
           std::uint32_t way_end) override
    {
        return way_begin + rng_.next_below(way_end - way_begin);
    }

    const char* name() const override { return "random"; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        s.section("repl.random");
        rng_.checkpoint(s);
    }

  private:
    util::Rng rng_;
};

} // namespace triage::replacement

#endif // TRIAGE_REPLACEMENT_RANDOM_REPL_HPP
