#include "replacement/drrip.hpp"

#include "util/log.hpp"

namespace triage::replacement {

Drrip::Drrip(std::uint32_t sets, std::uint32_t assoc, DrripConfig cfg)
    : assoc_(assoc), cfg_(cfg),
      rrpv_(static_cast<std::size_t>(sets) * assoc, cfg.max_rrpv),
      rng_(sets * 31 + assoc)
{
    TRIAGE_ASSERT(cfg_.dueling_stride >= 2);
}

Drrip::SetRole
Drrip::role_of(std::uint32_t set) const
{
    // Leader sets are spread through the index space: one SRRIP and
    // one BRRIP leader per dueling_stride sets.
    std::uint32_t r = set % cfg_.dueling_stride;
    if (r == 0)
        return SetRole::LeadSrrip;
    if (r == cfg_.dueling_stride / 2)
        return SetRole::LeadBrrip;
    return SetRole::FollowSrrip;
}

std::uint8_t&
Drrip::rrpv(std::uint32_t set, std::uint32_t way)
{
    return rrpv_[static_cast<std::size_t>(set) * assoc_ + way];
}

void
Drrip::on_hit(const cache::ReplAccess& a)
{
    rrpv(a.set, a.way) = 0;
}

void
Drrip::on_miss(std::uint32_t set, sim::Addr, sim::Pc)
{
    // Misses in leader sets train the selector: a miss in the SRRIP
    // leader votes for BRRIP and vice versa.
    switch (role_of(set)) {
      case SetRole::LeadSrrip:
        psel_ = std::min(psel_ + 1, cfg_.psel_max);
        break;
      case SetRole::LeadBrrip:
        psel_ = std::max(psel_ - 1, -cfg_.psel_max - 1);
        break;
      default:
        break;
    }
}

void
Drrip::on_insert(const cache::ReplAccess& a)
{
    bool use_brrip;
    switch (role_of(a.set)) {
      case SetRole::LeadSrrip:
        use_brrip = false;
        break;
      case SetRole::LeadBrrip:
        use_brrip = true;
        break;
      default:
        use_brrip = psel_ > 0;
        break;
    }
    if (use_brrip) {
        // BRRIP: distant insertion, occasionally long.
        rrpv(a.set, a.way) =
            rng_.next_below(cfg_.brrip_epsilon) == 0
                ? static_cast<std::uint8_t>(cfg_.max_rrpv - 1)
                : cfg_.max_rrpv;
    } else {
        rrpv(a.set, a.way) =
            static_cast<std::uint8_t>(cfg_.max_rrpv - 1);
    }
}

void
Drrip::on_invalidate(std::uint32_t set, std::uint32_t way)
{
    rrpv(set, way) = cfg_.max_rrpv;
}

std::uint32_t
Drrip::victim(std::uint32_t set, std::uint32_t way_begin,
              std::uint32_t way_end)
{
    TRIAGE_ASSERT(way_begin < way_end);
    for (;;) {
        for (std::uint32_t w = way_begin; w < way_end; ++w) {
            if (rrpv(set, w) >= cfg_.max_rrpv)
                return w;
        }
        for (std::uint32_t w = way_begin; w < way_end; ++w)
            ++rrpv(set, w);
    }
}

} // namespace triage::replacement
