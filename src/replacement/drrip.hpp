/**
 * @file
 * DRRIP: dynamic re-reference interval prediction (Jaleel et al.,
 * ISCA 2010). Set-dueling between SRRIP and BRRIP insertion, with the
 * winner applied to follower sets. Provided as an alternative LLC data
 * policy for ablations against the paper's LRU-managed data partition.
 */
#ifndef TRIAGE_REPLACEMENT_DRRIP_HPP
#define TRIAGE_REPLACEMENT_DRRIP_HPP

#include <cstdint>
#include <vector>

#include "cache/replacement.hpp"
#include "util/rng.hpp"

namespace triage::replacement {

/** Tuning knobs. */
struct DrripConfig {
    std::uint8_t max_rrpv = 3;
    /** 1-in-N dedicated sets per policy (set dueling). */
    std::uint32_t dueling_stride = 32;
    /** BRRIP inserts at max_rrpv-1 with probability 1/brrip_epsilon. */
    std::uint32_t brrip_epsilon = 32;
    /** Saturating policy-selector width (psel). */
    std::int32_t psel_max = 1023;
};

/** DRRIP replacement. */
class Drrip final : public cache::ReplacementPolicy
{
  public:
    Drrip(std::uint32_t sets, std::uint32_t assoc, DrripConfig cfg = {});

    void on_hit(const cache::ReplAccess& a) override;
    void on_insert(const cache::ReplAccess& a) override;
    void on_miss(std::uint32_t set, sim::Addr tag, sim::Pc pc) override;
    void on_invalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set, std::uint32_t way_begin,
                         std::uint32_t way_end) override;
    const char* name() const override { return "drrip"; }

    /** True when the selector currently favours SRRIP (tests). */
    bool srrip_winning() const { return psel_ <= 0; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        s.section("repl.drrip");
        s.io_pod_vec(rrpv_);
        s.io(psel_);
        rng_.checkpoint(s);
    }

  private:
    enum class SetRole : std::uint8_t { FollowSrrip, LeadSrrip, LeadBrrip };

    SetRole role_of(std::uint32_t set) const;
    std::uint8_t& rrpv(std::uint32_t set, std::uint32_t way);

    std::uint32_t assoc_;
    DrripConfig cfg_;
    std::vector<std::uint8_t> rrpv_;
    std::int32_t psel_ = 0;
    util::Rng rng_;
};

} // namespace triage::replacement

#endif // TRIAGE_REPLACEMENT_DRRIP_HPP
