/**
 * @file
 * Static RRIP replacement (Jaleel et al., ISCA 2010).
 */
#ifndef TRIAGE_REPLACEMENT_SRRIP_HPP
#define TRIAGE_REPLACEMENT_SRRIP_HPP

#include <cstdint>
#include <vector>

#include "cache/replacement.hpp"

namespace triage::replacement {

/** 2-bit SRRIP: insert at RRPV 2, promote to 0 on hit, age to find 3. */
class Srrip final : public cache::ReplacementPolicy
{
  public:
    Srrip(std::uint32_t sets, std::uint32_t assoc);

    void on_hit(const cache::ReplAccess& a) override;
    void on_insert(const cache::ReplAccess& a) override;
    void on_miss(std::uint32_t, sim::Addr, sim::Pc) override {}
    void on_invalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set, std::uint32_t way_begin,
                         std::uint32_t way_end) override;
    const char* name() const override { return "srrip"; }

    void
    checkpoint(sim::Snapshot& s) override
    {
        s.section("repl.srrip");
        s.io_pod_vec(rrpv_);
    }

  private:
    static constexpr std::uint8_t MAX_RRPV = 3;

    std::uint8_t& rrpv(std::uint32_t set, std::uint32_t way);

    std::uint32_t assoc_;
    std::vector<std::uint8_t> rrpv_;
};

} // namespace triage::replacement

#endif // TRIAGE_REPLACEMENT_SRRIP_HPP
