/**
 * @file
 * SHiP: signature-based hit prediction (Wu et al., MICRO 2011).
 * PC-signature counters learn whether lines inserted by a signature
 * are re-referenced; dead-on-arrival signatures insert at distant
 * RRPV. The intellectual midpoint between SRRIP and Hawkeye, included
 * to round out the replacement-policy design space used in ablations.
 */
#ifndef TRIAGE_REPLACEMENT_SHIP_HPP
#define TRIAGE_REPLACEMENT_SHIP_HPP

#include <cstdint>
#include <vector>

#include "cache/replacement.hpp"

namespace triage::replacement {

/** Tuning knobs. */
struct ShipConfig {
    std::uint8_t max_rrpv = 3;
    std::uint32_t shct_entries = 16384; ///< signature counters (pow2)
    std::uint8_t shct_max = 7;          ///< 3-bit counters
};

/** SHiP replacement. */
class Ship final : public cache::ReplacementPolicy
{
  public:
    Ship(std::uint32_t sets, std::uint32_t assoc, ShipConfig cfg = {});

    void on_hit(const cache::ReplAccess& a) override;
    void on_insert(const cache::ReplAccess& a) override;
    void on_miss(std::uint32_t set, sim::Addr tag, sim::Pc pc) override;
    void on_invalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set, std::uint32_t way_begin,
                         std::uint32_t way_end) override;
    const char* name() const override { return "ship"; }

    /** Counter for a PC signature (tests). */
    std::uint8_t counter_of(sim::Pc pc) const;

    void
    checkpoint(sim::Snapshot& s) override
    {
        s.section("repl.ship");
        s.io_vec(lines_, [](sim::Snapshot& a, LineState& l) {
            a.io(l.rrpv);
            a.io(l.outcome);
            a.io(l.signature);
        });
        s.io_pod_vec(shct_);
    }

  private:
    struct LineState {
        std::uint8_t rrpv;
        bool outcome; ///< re-referenced since insertion
        std::uint32_t signature;
    };

    std::uint32_t signature_of(sim::Pc pc) const;
    LineState& line(std::uint32_t set, std::uint32_t way);

    std::uint32_t assoc_;
    ShipConfig cfg_;
    std::vector<LineState> lines_;
    std::vector<std::uint8_t> shct_;
};

} // namespace triage::replacement

#endif // TRIAGE_REPLACEMENT_SHIP_HPP
