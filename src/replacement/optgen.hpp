/**
 * @file
 * OPTgen: incremental reconstruction of Belady's optimal policy over a
 * sliding history window (Jain & Lin, ISCA 2016).
 *
 * OPTgen answers, for each access, "would the optimal policy have hit?"
 * using the *liveness interval* argument: an access to X at time t whose
 * previous access was at time p is an OPT hit iff, at every time slot in
 * [p, t), fewer than `capacity` lines are simultaneously live. Per-slot
 * occupancy over the most recent 8 x capacity slots lives in a lazy
 * segment tree (range max + range add), so the interval test and the
 * subsequent occupancy bump are O(log window) instead of the O(window)
 * scans of the naive vector (docs/performance.md).
 *
 * Triage uses OPTgen in two places: inside the Hawkeye-style metadata
 * replacement policy, and as the 1 KB "sandbox" that estimates metadata
 * hit rates at candidate store sizes for dynamic partitioning.
 */
#ifndef TRIAGE_REPLACEMENT_OPTGEN_HPP
#define TRIAGE_REPLACEMENT_OPTGEN_HPP

#include <cstdint>
#include "util/flat_map.hpp"
#include <vector>

#include "sim/snapshot.hpp"

namespace triage::replacement {

/** One OPTgen instance models a single fully-associative set/sandbox. */
class OptGen
{
  public:
    /**
     * @param capacity modeled cache capacity in entries.
     * @param history_factor window length as a multiple of capacity
     *        (the paper uses 8x).
     */
    explicit OptGen(std::uint32_t capacity, std::uint32_t history_factor = 8);

    /**
     * Feed the next access.
     * @return true if OPT would hit this access.
     */
    bool access(std::uint64_t key);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }

    /** OPT hit rate over everything fed so far. */
    double
    hit_rate() const
    {
        return accesses_ == 0
                   ? 0.0
                   : static_cast<double>(hits_) / static_cast<double>(accesses_);
    }

    std::uint32_t capacity() const { return capacity_; }

    /**
     * Exact maximum per-slot occupancy over the whole history window
     * (the segment tree root; its pending add is already applied).
     * Occupancy bumps are guarded by a peak < capacity test over the
     * liveness interval, so this can never exceed capacity() — the
     * verify harness checks that invariant on the live tree.
     */
    std::uint32_t occupancy_peak() const { return tmax_[1]; }

    /** Forget all history and counters. */
    void clear();

    /** Reset only the hit/access counters (start a new measurement epoch). */
    void clear_counters() { accesses_ = 0; hits_ = 0; }

    /**
     * Save/restore the mutable window state. Geometry (capacity_,
     * window_, leaves_) is construction-time and must already match.
     */
    void
    checkpoint(sim::Snapshot& s)
    {
        s.section("optgen");
        s.io(now_);
        s.io_pod_vec(tmax_);
        s.io_pod_vec(tadd_);
        s.io_flat_map(last_seen_);
        s.io(accesses_);
        s.io(hits_);
        s.io(last_prune_);
    }

  private:
    // Lazy segment tree over the circular occupancy window. Nodes
    // 1..leaves_-1 are internal, leaves_..2*leaves_-1 are the slots
    // (time % window_); tmax_[n] is the exact max of n's range with
    // its own pending add applied, tadd_[n] the add not yet pushed to
    // n's children.
    void tree_build();
    void tree_push(std::uint32_t node);
    void tree_assign(std::uint32_t node, std::uint32_t lo,
                     std::uint32_t hi, std::uint32_t pos,
                     std::uint32_t val);
    void tree_add(std::uint32_t node, std::uint32_t lo, std::uint32_t hi,
                  std::uint32_t a, std::uint32_t b);
    std::uint32_t tree_max(std::uint32_t node, std::uint32_t lo,
                           std::uint32_t hi, std::uint32_t a,
                           std::uint32_t b);

    std::uint32_t capacity_;
    std::uint32_t window_;
    std::uint64_t now_ = 0; ///< access count == logical time
    std::uint32_t leaves_ = 1;        ///< power of two >= window_
    std::vector<std::uint32_t> tmax_; ///< 2*leaves_ max values
    std::vector<std::uint32_t> tadd_; ///< leaves_ pending adds
    util::FlatMap<std::uint64_t, std::uint64_t> last_seen_;
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t last_prune_ = 0;
};

} // namespace triage::replacement

#endif // TRIAGE_REPLACEMENT_OPTGEN_HPP
