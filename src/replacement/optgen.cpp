#include "replacement/optgen.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace triage::replacement {

OptGen::OptGen(std::uint32_t capacity, std::uint32_t history_factor)
    : capacity_(capacity), window_(capacity * history_factor)
{
    TRIAGE_ASSERT(capacity_ > 0);
    TRIAGE_ASSERT(window_ > 0);
    tree_build();
}

void
OptGen::tree_build()
{
    leaves_ = 1;
    while (leaves_ < window_)
        leaves_ <<= 1;
    tmax_.assign(2 * static_cast<std::size_t>(leaves_), 0);
    tadd_.assign(leaves_, 0);
}

void
OptGen::tree_push(std::uint32_t node)
{
    std::uint32_t a = tadd_[node];
    if (a == 0)
        return;
    for (std::uint32_t ch = 2 * node; ch <= 2 * node + 1; ++ch) {
        tmax_[ch] += a;
        if (ch < leaves_)
            tadd_[ch] += a;
    }
    tadd_[node] = 0;
}

void
OptGen::tree_assign(std::uint32_t node, std::uint32_t lo, std::uint32_t hi,
                    std::uint32_t pos, std::uint32_t val)
{
    if (lo == hi) {
        tmax_[node] = val;
        return;
    }
    tree_push(node);
    std::uint32_t mid = lo + (hi - lo) / 2;
    if (pos <= mid)
        tree_assign(2 * node, lo, mid, pos, val);
    else
        tree_assign(2 * node + 1, mid + 1, hi, pos, val);
    tmax_[node] = std::max(tmax_[2 * node], tmax_[2 * node + 1]);
}

void
OptGen::tree_add(std::uint32_t node, std::uint32_t lo, std::uint32_t hi,
                 std::uint32_t a, std::uint32_t b)
{
    if (b < lo || hi < a)
        return;
    if (a <= lo && hi <= b) {
        ++tmax_[node];
        if (node < leaves_)
            ++tadd_[node];
        return;
    }
    tree_push(node);
    std::uint32_t mid = lo + (hi - lo) / 2;
    tree_add(2 * node, lo, mid, a, b);
    tree_add(2 * node + 1, mid + 1, hi, a, b);
    tmax_[node] = std::max(tmax_[2 * node], tmax_[2 * node + 1]);
}

std::uint32_t
OptGen::tree_max(std::uint32_t node, std::uint32_t lo, std::uint32_t hi,
                 std::uint32_t a, std::uint32_t b)
{
    if (b < lo || hi < a)
        return 0;
    if (a <= lo && hi <= b)
        return tmax_[node];
    tree_push(node);
    std::uint32_t mid = lo + (hi - lo) / 2;
    return std::max(tree_max(2 * node, lo, mid, a, b),
                    tree_max(2 * node + 1, mid + 1, hi, a, b));
}

bool
OptGen::access(std::uint64_t key)
{
    ++accesses_;

    // The slot for "now" starts a fresh interval.
    tree_assign(1, 0, leaves_ - 1,
                static_cast<std::uint32_t>(now_ % window_), 0);

    bool hit = false;
    std::uint64_t* it = last_seen_.find(key);
    if (it != nullptr && now_ - *it < window_) {
        std::uint64_t prev = *it;
        // OPT keeps the line iff no slot in [prev, now) is full. The
        // absolute interval maps to at most two contiguous index
        // ranges of the circular window.
        auto a = static_cast<std::uint32_t>(prev % window_);
        auto len = static_cast<std::uint32_t>(now_ - prev);
        std::uint32_t peak;
        if (a + len <= window_) {
            peak = tree_max(1, 0, leaves_ - 1, a, a + len - 1);
        } else {
            peak = std::max(
                tree_max(1, 0, leaves_ - 1, a, window_ - 1),
                tree_max(1, 0, leaves_ - 1, 0, a + len - window_ - 1));
        }
        if (peak < capacity_) {
            if (a + len <= window_) {
                tree_add(1, 0, leaves_ - 1, a, a + len - 1);
            } else {
                tree_add(1, 0, leaves_ - 1, a, window_ - 1);
                tree_add(1, 0, leaves_ - 1, 0, a + len - window_ - 1);
            }
            hit = true;
            ++hits_;
        }
    }
    if (it != nullptr)
        *it = now_;
    else
        last_seen_.ref(key) = now_;
    ++now_;

    // Periodically drop stale last-seen entries so the map stays O(window).
    if (now_ - last_prune_ > 4ULL * window_) {
        last_seen_.erase_if([&](std::uint64_t, std::uint64_t seen) {
            return now_ - seen >= window_;
        });
        last_prune_ = now_;
    }
    return hit;
}

void
OptGen::clear()
{
    tree_build();
    last_seen_.clear();
    now_ = 0;
    accesses_ = 0;
    hits_ = 0;
    last_prune_ = 0;
}

} // namespace triage::replacement
