#include "replacement/optgen.hpp"

#include "util/log.hpp"

namespace triage::replacement {

OptGen::OptGen(std::uint32_t capacity, std::uint32_t history_factor)
    : capacity_(capacity), window_(capacity * history_factor)
{
    TRIAGE_ASSERT(capacity_ > 0);
    TRIAGE_ASSERT(window_ > 0);
    occupancy_.assign(window_, 0);
}

bool
OptGen::access(std::uint64_t key)
{
    ++accesses_;

    // The slot for "now" starts a fresh interval.
    occupancy_[now_ % window_] = 0;

    bool hit = false;
    auto it = last_seen_.find(key);
    if (it != last_seen_.end() && now_ - it->second < window_) {
        std::uint64_t prev = it->second;
        // OPT keeps the line iff no slot in [prev, now) is full.
        bool fits = true;
        for (std::uint64_t t = prev; t < now_; ++t) {
            if (occupancy_[t % window_] >= capacity_) {
                fits = false;
                break;
            }
        }
        if (fits) {
            for (std::uint64_t t = prev; t < now_; ++t)
                ++occupancy_[t % window_];
            hit = true;
            ++hits_;
        }
    }
    if (it != last_seen_.end())
        it->second = now_;
    else
        last_seen_.emplace(key, now_);
    ++now_;

    // Periodically drop stale last-seen entries so the map stays O(window).
    if (now_ - last_prune_ > 4ULL * window_) {
        for (auto i = last_seen_.begin(); i != last_seen_.end();) {
            if (now_ - i->second >= window_)
                i = last_seen_.erase(i);
            else
                ++i;
        }
        last_prune_ = now_;
    }
    return hit;
}

void
OptGen::clear()
{
    occupancy_.assign(window_, 0);
    last_seen_.clear();
    now_ = 0;
    accesses_ = 0;
    hits_ = 0;
    last_prune_ = 0;
}

} // namespace triage::replacement
