#include "replacement/hawkeye.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::replacement {

HawkeyePredictor::HawkeyePredictor(std::uint32_t entries)
    : table_(entries, 4), mask_(entries - 1)
{
    TRIAGE_ASSERT(util::is_pow2(entries));
}

std::uint32_t
HawkeyePredictor::index(sim::Pc pc) const
{
    return static_cast<std::uint32_t>(util::mix64(pc)) & mask_;
}

void
HawkeyePredictor::train_positive(sim::Pc pc)
{
    auto& c = table_[index(pc)];
    c = util::sat_inc<std::uint8_t>(c, 7);
}

void
HawkeyePredictor::train_negative(sim::Pc pc)
{
    auto& c = table_[index(pc)];
    c = util::sat_dec<std::uint8_t>(c);
}

bool
HawkeyePredictor::predict(sim::Pc pc) const
{
    return table_[index(pc)] >= 4;
}

std::uint8_t
HawkeyePredictor::counter(sim::Pc pc) const
{
    return table_[index(pc)];
}

Hawkeye::Hawkeye(std::uint32_t sets, std::uint32_t assoc, HawkeyeConfig cfg)
    : sets_(sets), assoc_(assoc), cfg_(cfg),
      predictor_(cfg.predictor_entries),
      rrpv_(static_cast<std::size_t>(sets) * assoc, cfg.max_rrpv),
      line_pcs_(static_cast<std::size_t>(sets) * assoc, 0)
{
    TRIAGE_ASSERT(util::is_pow2(sets_));
    std::uint32_t n_sampled = cfg_.sampled_sets;
    if (n_sampled > sets_)
        n_sampled = sets_;
    TRIAGE_ASSERT(util::is_pow2(n_sampled));
    // A set is sampled iff its low log2(sets/n_sampled) bits are zero;
    // sampler index is the remaining high bits.
    sample_shift_ = util::log2_exact(sets_ / n_sampled);
    sample_mask_ = (1u << sample_shift_) - 1;
    samplers_.reserve(n_sampled);
    for (std::uint32_t i = 0; i < n_sampled; ++i)
        samplers_.emplace_back(assoc_, cfg_.history_factor);
}

bool
Hawkeye::is_sampled(std::uint32_t set) const
{
    return (set & sample_mask_) == 0;
}

Hawkeye::SampledSet&
Hawkeye::sampler_for(std::uint32_t set)
{
    return samplers_[set >> sample_shift_];
}

std::uint8_t&
Hawkeye::rrpv(std::uint32_t set, std::uint32_t way)
{
    return rrpv_[static_cast<std::size_t>(set) * assoc_ + way];
}

sim::Pc&
Hawkeye::line_pc(std::uint32_t set, std::uint32_t way)
{
    return line_pcs_[static_cast<std::size_t>(set) * assoc_ + way];
}

void
Hawkeye::sample_access(std::uint32_t set, sim::Addr tag, sim::Pc pc)
{
    SampledSet& s = sampler_for(set);
    sim::Pc* it = s.last_pc.find(tag);
    bool opt_hit = s.optgen.access(tag);
    if (it != nullptr) {
        // OPT's verdict trains the PC that last touched this line: that
        // load decided whether keeping the line would have paid off.
        if (opt_hit)
            predictor_.train_positive(*it);
        else
            predictor_.train_negative(*it);
        *it = pc;
    } else {
        s.last_pc.ref(tag) = pc;
    }
    // Bound the last-PC map (entries older than the OPTgen window are
    // dead weight; a size cap keeps memory honest without timestamps).
    if (s.last_pc.size() > 16ULL * assoc_ * cfg_.history_factor) {
        s.last_pc.clear();
    }
}

void
Hawkeye::on_hit(const cache::ReplAccess& a)
{
    if (is_sampled(a.set))
        sample_access(a.set, a.tag, a.pc);
    line_pc(a.set, a.way) = a.pc;
    rrpv(a.set, a.way) = predictor_.predict(a.pc) ? 0 : cfg_.max_rrpv;
}

void
Hawkeye::on_miss(std::uint32_t set, sim::Addr tag, sim::Pc pc)
{
    if (is_sampled(set))
        sample_access(set, tag, pc);
}

void
Hawkeye::on_insert(const cache::ReplAccess& a)
{
    line_pc(a.set, a.way) = a.pc;
    bool friendly = predictor_.predict(a.pc);
    if (friendly) {
        // Age everyone else so older friendly lines become victims
        // before fresher ones.
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (w == a.way)
                continue;
            auto& r = rrpv(a.set, w);
            if (r < cfg_.max_rrpv - 1)
                ++r;
        }
        rrpv(a.set, a.way) = 0;
    } else {
        rrpv(a.set, a.way) = cfg_.max_rrpv;
    }
}

void
Hawkeye::on_invalidate(std::uint32_t set, std::uint32_t way)
{
    rrpv(set, way) = cfg_.max_rrpv;
    line_pc(set, way) = 0;
}

std::uint32_t
Hawkeye::victim(std::uint32_t set, std::uint32_t way_begin,
                std::uint32_t way_end)
{
    TRIAGE_ASSERT(way_begin < way_end);
    // Prefer a predicted-averse line (RRPV == max).
    for (std::uint32_t w = way_begin; w < way_end; ++w) {
        if (rrpv(set, w) == cfg_.max_rrpv)
            return w;
    }
    // All friendly: evict the oldest and detrain its PC — the predictor
    // was wrong about this line's reuse fitting in the cache.
    std::uint32_t best = way_begin;
    std::uint8_t best_rrpv = rrpv(set, way_begin);
    for (std::uint32_t w = way_begin + 1; w < way_end; ++w) {
        if (rrpv(set, w) > best_rrpv) {
            best_rrpv = rrpv(set, w);
            best = w;
        }
    }
    predictor_.train_negative(line_pc(set, best));
    return best;
}

double
Hawkeye::sampled_opt_hit_rate() const
{
    std::uint64_t acc = 0;
    std::uint64_t hits = 0;
    for (const auto& s : samplers_) {
        acc += s.optgen.accesses();
        hits += s.optgen.hits();
    }
    return acc == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(acc);
}

} // namespace triage::replacement
