/**
 * @file
 * Hawkeye replacement (Jain & Lin, ISCA 2016): learn from OPT's
 * decisions on sampled sets, predict per-PC whether lines will be
 * cache-friendly, and manage insertion/eviction with RRIP state.
 *
 * Triage modifies Hawkeye for its metadata store (Section 3): training
 * events are filtered so only metadata reuse that produced a
 * *non-redundant* prefetch trains positively. That filtering lives in
 * triage::MetadataStore; this class implements the policy itself and is
 * also usable as a drop-in data-cache policy.
 */
#ifndef TRIAGE_REPLACEMENT_HAWKEYE_HPP
#define TRIAGE_REPLACEMENT_HAWKEYE_HPP

#include <cstdint>
#include "util/flat_map.hpp"
#include <vector>

#include "cache/replacement.hpp"
#include "replacement/optgen.hpp"

namespace triage::replacement {

/** Tuning knobs for Hawkeye. */
struct HawkeyeConfig {
    /** Number of sampled sets feeding OPTgen (power of two). */
    std::uint32_t sampled_sets = 64;
    /** Predictor table entries (3-bit counters), power of two. */
    std::uint32_t predictor_entries = 8192;
    /** History window as a multiple of associativity. */
    std::uint32_t history_factor = 8;
    /** Max RRPV (7 in the paper). */
    std::uint8_t max_rrpv = 7;
};

/**
 * PC-indexed 3-bit confidence predictor shared by Hawkeye instances.
 * Exposed separately so Triage's metadata policy can train it under its
 * own filtering rules.
 */
class HawkeyePredictor
{
  public:
    explicit HawkeyePredictor(std::uint32_t entries = 8192);

    void train_positive(sim::Pc pc);
    void train_negative(sim::Pc pc);
    /** Predicted cache-friendly? */
    bool predict(sim::Pc pc) const;
    /** Raw counter value (tests). */
    std::uint8_t counter(sim::Pc pc) const;

    void
    checkpoint(sim::Snapshot& s)
    {
        s.section("hawkeye.predictor");
        s.io_pod_vec(table_);
    }

  private:
    std::uint32_t index(sim::Pc pc) const;
    std::vector<std::uint8_t> table_;
    std::uint32_t mask_;
};

/** Full Hawkeye policy for a sets x assoc structure. */
class Hawkeye final : public cache::ReplacementPolicy
{
  public:
    Hawkeye(std::uint32_t sets, std::uint32_t assoc,
            HawkeyeConfig cfg = {});

    void on_hit(const cache::ReplAccess& a) override;
    void on_insert(const cache::ReplAccess& a) override;
    void on_miss(std::uint32_t set, sim::Addr tag, sim::Pc pc) override;
    void on_invalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set, std::uint32_t way_begin,
                         std::uint32_t way_end) override;
    const char* name() const override { return "hawkeye"; }

    const HawkeyePredictor& predictor() const { return predictor_; }

    /** Fraction of sampled accesses OPT would have hit (diagnostics). */
    double sampled_opt_hit_rate() const;

    void
    checkpoint(sim::Snapshot& s) override
    {
        s.section("repl.hawkeye");
        predictor_.checkpoint(s);
        for (auto& sampled : samplers_) {
            sampled.optgen.checkpoint(s);
            s.io_flat_map(sampled.last_pc);
            s.io(sampled.last_prune);
        }
        s.io_pod_vec(rrpv_);
        s.io_pod_vec(line_pcs_);
    }

  private:
    struct SampledSet {
        OptGen optgen;
        /** addr -> PC of the most recent access (the training target). */
        util::FlatMap<std::uint64_t, sim::Pc> last_pc;
        std::uint64_t last_prune = 0;

        explicit SampledSet(std::uint32_t assoc, std::uint32_t factor)
            : optgen(assoc, factor)
        {}
    };

    bool is_sampled(std::uint32_t set) const;
    SampledSet& sampler_for(std::uint32_t set);
    void sample_access(std::uint32_t set, sim::Addr tag, sim::Pc pc);
    std::uint8_t& rrpv(std::uint32_t set, std::uint32_t way);
    sim::Pc& line_pc(std::uint32_t set, std::uint32_t way);

    std::uint32_t sets_;
    std::uint32_t assoc_;
    HawkeyeConfig cfg_;
    std::uint32_t sample_shift_; ///< sampled iff low bits pattern matches
    std::uint32_t sample_mask_;
    HawkeyePredictor predictor_;
    std::vector<SampledSet> samplers_;
    std::vector<std::uint8_t> rrpv_;
    std::vector<sim::Pc> line_pcs_;
};

} // namespace triage::replacement

#endif // TRIAGE_REPLACEMENT_HAWKEYE_HPP
