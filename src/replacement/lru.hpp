/**
 * @file
 * Least-recently-used replacement.
 */
#ifndef TRIAGE_REPLACEMENT_LRU_HPP
#define TRIAGE_REPLACEMENT_LRU_HPP

#include <cstdint>
#include <vector>

#include "cache/replacement.hpp"

namespace triage::replacement {

/** Classic LRU over a sets x assoc structure. */
class Lru final : public cache::ReplacementPolicy
{
  public:
    Lru(std::uint32_t sets, std::uint32_t assoc);

    void on_hit(const cache::ReplAccess& a) override;
    void on_insert(const cache::ReplAccess& a) override;
    void on_miss(std::uint32_t set, sim::Addr tag, sim::Pc pc) override;
    void on_invalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set, std::uint32_t way_begin,
                         std::uint32_t way_end) override;
    const char* name() const override { return "lru"; }

    /** LRU state is just stamps + a clock; hosts may drive it inline. */
    bool
    lru_fast_view(cache::LruFastView* out) override
    {
        out->stamps = stamps_.data();
        out->clock = &clock_;
        out->assoc = assoc_;
        return true;
    }

    void
    checkpoint(sim::Snapshot& s) override
    {
        s.section("repl.lru");
        s.io(clock_);
        s.io_pod_vec(stamps_);
    }

  private:
    std::uint64_t& stamp(std::uint32_t set, std::uint32_t way);

    std::uint32_t assoc_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_;
};

} // namespace triage::replacement

#endif // TRIAGE_REPLACEMENT_LRU_HPP
