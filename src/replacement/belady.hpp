/**
 * @file
 * Offline Belady (MIN) oracle: the ground truth OPTgen approximates.
 * Used by property tests and by "Perfect" baselines.
 */
#ifndef TRIAGE_REPLACEMENT_BELADY_HPP
#define TRIAGE_REPLACEMENT_BELADY_HPP

#include <cstdint>
#include <vector>

namespace triage::replacement {

/**
 * Simulate Belady's MIN on an access sequence with the given capacity.
 * @return the number of hits OPT achieves.
 */
std::uint64_t belady_hits(const std::vector<std::uint64_t>& keys,
                          std::uint32_t capacity);

} // namespace triage::replacement

#endif // TRIAGE_REPLACEMENT_BELADY_HPP
