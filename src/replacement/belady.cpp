#include "replacement/belady.hpp"

#include <limits>
#include <set>
#include <unordered_map>

namespace triage::replacement {

std::uint64_t
belady_hits(const std::vector<std::uint64_t>& keys, std::uint32_t capacity)
{
    const std::uint64_t INF = std::numeric_limits<std::uint64_t>::max();
    const std::size_t n = keys.size();

    // next_use[i]: index of the next access to keys[i] after i (INF if none).
    std::vector<std::uint64_t> next_use(n, INF);
    std::unordered_map<std::uint64_t, std::uint64_t> last_index;
    for (std::size_t i = n; i-- > 0;) {
        auto it = last_index.find(keys[i]);
        next_use[i] = it == last_index.end() ? INF : it->second;
        last_index[keys[i]] = i;
    }

    // Resident set ordered by next use (farthest = evict first).
    // Entries: (next_use, key). Also map key -> its current next_use.
    std::set<std::pair<std::uint64_t, std::uint64_t>> by_next_use;
    std::unordered_map<std::uint64_t, std::uint64_t> resident;

    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t key = keys[i];
        auto r = resident.find(key);
        if (r != resident.end()) {
            ++hits;
            by_next_use.erase({r->second, key});
            r->second = next_use[i];
            by_next_use.insert({next_use[i], key});
            continue;
        }
        if (resident.size() == capacity) {
            auto farthest = std::prev(by_next_use.end());
            // MIN refinement: if the incoming line is re-used later than
            // every resident, bypassing it is optimal.
            if (farthest->first < next_use[i])
                continue;
            resident.erase(farthest->second);
            by_next_use.erase(farthest);
        }
        resident[key] = next_use[i];
        by_next_use.insert({next_use[i], key});
    }
    return hits;
}

} // namespace triage::replacement
