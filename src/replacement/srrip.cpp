#include "replacement/srrip.hpp"

#include "util/log.hpp"

namespace triage::replacement {

Srrip::Srrip(std::uint32_t sets, std::uint32_t assoc)
    : assoc_(assoc),
      rrpv_(static_cast<std::size_t>(sets) * assoc, MAX_RRPV)
{
}

std::uint8_t&
Srrip::rrpv(std::uint32_t set, std::uint32_t way)
{
    return rrpv_[static_cast<std::size_t>(set) * assoc_ + way];
}

void
Srrip::on_hit(const cache::ReplAccess& a)
{
    rrpv(a.set, a.way) = 0;
}

void
Srrip::on_insert(const cache::ReplAccess& a)
{
    rrpv(a.set, a.way) = MAX_RRPV - 1;
}

void
Srrip::on_invalidate(std::uint32_t set, std::uint32_t way)
{
    rrpv(set, way) = MAX_RRPV;
}

std::uint32_t
Srrip::victim(std::uint32_t set, std::uint32_t way_begin,
              std::uint32_t way_end)
{
    TRIAGE_ASSERT(way_begin < way_end);
    for (;;) {
        for (std::uint32_t w = way_begin; w < way_end; ++w) {
            if (rrpv(set, w) == MAX_RRPV)
                return w;
        }
        for (std::uint32_t w = way_begin; w < way_end; ++w)
            ++rrpv(set, w);
    }
}

} // namespace triage::replacement
