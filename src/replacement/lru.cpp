#include "replacement/lru.hpp"

#include "util/log.hpp"

namespace triage::replacement {

Lru::Lru(std::uint32_t sets, std::uint32_t assoc)
    : assoc_(assoc),
      stamps_(static_cast<std::size_t>(sets) * assoc, 0)
{
}

std::uint64_t&
Lru::stamp(std::uint32_t set, std::uint32_t way)
{
    return stamps_[static_cast<std::size_t>(set) * assoc_ + way];
}

void
Lru::on_hit(const cache::ReplAccess& a)
{
    stamp(a.set, a.way) = ++clock_;
}

void
Lru::on_insert(const cache::ReplAccess& a)
{
    stamp(a.set, a.way) = ++clock_;
}

void
Lru::on_miss(std::uint32_t, sim::Addr, sim::Pc)
{
}

void
Lru::on_invalidate(std::uint32_t set, std::uint32_t way)
{
    stamp(set, way) = 0;
}

std::uint32_t
Lru::victim(std::uint32_t set, std::uint32_t way_begin,
            std::uint32_t way_end)
{
    TRIAGE_ASSERT(way_begin < way_end);
    std::uint32_t best = way_begin;
    std::uint64_t best_stamp = stamp(set, way_begin);
    for (std::uint32_t w = way_begin + 1; w < way_end; ++w) {
        if (stamp(set, w) < best_stamp) {
            best_stamp = stamp(set, w);
            best = w;
        }
    }
    return best;
}

} // namespace triage::replacement
