#include "replacement/ship.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::replacement {

Ship::Ship(std::uint32_t sets, std::uint32_t assoc, ShipConfig cfg)
    : assoc_(assoc), cfg_(cfg),
      lines_(static_cast<std::size_t>(sets) * assoc,
             {cfg.max_rrpv, false, 0}),
      shct_(cfg.shct_entries, 1)
{
    TRIAGE_ASSERT(util::is_pow2(cfg.shct_entries));
}

std::uint32_t
Ship::signature_of(sim::Pc pc) const
{
    return static_cast<std::uint32_t>(util::mix64(pc)) &
           (cfg_.shct_entries - 1);
}

Ship::LineState&
Ship::line(std::uint32_t set, std::uint32_t way)
{
    return lines_[static_cast<std::size_t>(set) * assoc_ + way];
}

std::uint8_t
Ship::counter_of(sim::Pc pc) const
{
    return shct_[signature_of(pc)];
}

void
Ship::on_hit(const cache::ReplAccess& a)
{
    LineState& l = line(a.set, a.way);
    l.rrpv = 0;
    if (!l.outcome) {
        l.outcome = true;
        shct_[l.signature] =
            util::sat_inc<std::uint8_t>(shct_[l.signature],
                                        cfg_.shct_max);
    }
}

void
Ship::on_miss(std::uint32_t, sim::Addr, sim::Pc)
{
}

void
Ship::on_insert(const cache::ReplAccess& a)
{
    LineState& l = line(a.set, a.way);
    l.signature = signature_of(a.pc);
    l.outcome = false;
    // Predicted-dead signatures insert at the eviction boundary.
    l.rrpv = shct_[l.signature] == 0
                 ? cfg_.max_rrpv
                 : static_cast<std::uint8_t>(cfg_.max_rrpv - 1);
}

void
Ship::on_invalidate(std::uint32_t set, std::uint32_t way)
{
    LineState& l = line(set, way);
    if (!l.outcome)
        shct_[l.signature] = util::sat_dec(shct_[l.signature]);
    l.rrpv = cfg_.max_rrpv;
    l.outcome = false;
}

std::uint32_t
Ship::victim(std::uint32_t set, std::uint32_t way_begin,
             std::uint32_t way_end)
{
    TRIAGE_ASSERT(way_begin < way_end);
    for (;;) {
        for (std::uint32_t w = way_begin; w < way_end; ++w) {
            if (line(set, w).rrpv >= cfg_.max_rrpv)
                return w;
        }
        for (std::uint32_t w = way_begin; w < way_end; ++w)
            ++line(set, w).rrpv;
    }
}

} // namespace triage::replacement
