#include "workloads/spec.hpp"

#include <functional>
#include <unordered_map>

#include "frontend/frontend.hpp"
#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::workloads {

namespace {

using Builder =
    std::function<std::vector<WeightedKernel>(std::uint64_t seed)>;

struct BenchmarkSpec {
    std::uint64_t length; ///< memory references per pass at scale 1.0
    Builder build;
};

std::uint64_t
seed_of(const std::string& name)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return h | 1;
}

// Kernel-parameter helpers. Address bases are spaced so kernels never
// overlap; PC bases likewise.

PointerChaseKernel::Params
chase(std::uint32_t nodes, std::uint32_t chains, double mutate,
      double skew, std::uint64_t seed)
{
    PointerChaseKernel::Params p;
    p.nodes = nodes;
    p.chains = chains;
    p.mutate_prob = mutate;
    p.chain_skew = skew;
    p.seed = seed;
    return p;
}

RepeatedScanKernel::Params
scan(std::uint32_t entries, std::uint32_t space, std::uint32_t pcs,
     std::uint64_t seed)
{
    RepeatedScanKernel::Params p;
    p.entries = entries;
    p.space_blocks = space;
    p.pcs = pcs;
    p.seed = seed;
    return p;
}

StreamingKernel::Params
stream(std::uint32_t arrays, std::uint64_t window, std::uint32_t stride,
       std::uint64_t shift, std::uint64_t seed)
{
    StreamingKernel::Params p;
    p.arrays = arrays;
    p.window_blocks = window;
    p.stride_blocks = stride;
    p.shift_per_pass = shift;
    p.seed = seed;
    return p;
}

ZipfHashKernel::Params
zipf(std::uint64_t buckets, double s, std::uint64_t seed)
{
    ZipfHashKernel::Params p;
    p.buckets = buckets;
    p.zipf_s = s;
    p.seed = seed;
    return p;
}

FootprintKernel::Params
footprint(std::uint64_t regions, double density, bool recur,
          std::uint64_t seed)
{
    FootprintKernel::Params p;
    p.regions = regions;
    p.density = density;
    p.recur = recur;
    p.seed = seed;
    return p;
}

CacheResidentKernel::Params
resident(std::uint64_t blocks, double temporal, std::uint64_t seed)
{
    CacheResidentKernel::Params p;
    p.footprint_blocks = blocks;
    p.temporal_fraction = temporal;
    p.seed = seed;
    return p;
}

GraphWalkKernel::Params
graph(std::uint32_t nodes, std::uint32_t degree, std::uint64_t seed)
{
    GraphWalkKernel::Params p;
    p.nodes = nodes;
    p.degree = degree;
    p.seed = seed;
    return p;
}

/** Element of a kernels(...) list; the pointer is adopted immediately. */
struct KernelSpec {
    Kernel* kernel;
    double weight;
};

std::vector<WeightedKernel>
kernels(std::initializer_list<KernelSpec> list)
{
    // initializer_list copies its elements, which rules out
    // unique_ptr-holding aggregates; adopt raw pointers here instead so
    // the benchmark table below stays declarative.
    std::vector<WeightedKernel> v;
    v.reserve(list.size());
    for (const auto& s : list)
        v.push_back({std::unique_ptr<Kernel>(s.kernel), s.weight});
    return v;
}

/**
 * The benchmark table. Irregular analogs lead with PC-localized
 * temporal kernels; regular analogs lead with streaming/spatial
 * kernels; the CloudSuite analogs split the same way.
 */
const std::unordered_map<std::string, BenchmarkSpec>&
table()
{
    static const std::unordered_map<std::string, BenchmarkSpec> t = [] {
        std::unordered_map<std::string, BenchmarkSpec> m;
        auto add = [&m](const std::string& name, std::uint64_t len,
                        Builder b) {
            m.emplace(name, BenchmarkSpec{len, std::move(b)});
        };

        // ----- Irregular SPEC subset (Figure 5). ---------------------
        add("mcf", 2000000, [](std::uint64_t s) {
            return kernels({
                {new StreamingKernel(
                     stream(2, 1u << 13, 1, 1u << 12, s)),
                 0.08},
                {new CacheResidentKernel(
                     resident(24 * 1024, 0.3, s)),
                 0.1},
                {new PointerChaseKernel(
                     chase(8u << 16, 16, 2e-6, 0.9, s)),
                 0.9},
                {new ZipfHashKernel(zipf(1u << 16, 0.9, s)),
                 0.1},
            });
        });
        add("omnetpp", 2000000, [](std::uint64_t s) {
            return kernels({
                {new StreamingKernel(
                     stream(2, 1u << 13, 1, 1u << 12, s)),
                 0.08},
                {new CacheResidentKernel(
                     resident(24 * 1024, 0.3, s)),
                 0.1},
                {new PointerChaseKernel(
                     chase(4u << 16, 8, 1e-5, 0.7, s)),
                 0.8},
                {new ZipfHashKernel(zipf(1u << 15, 1.0, s)),
                 0.2},
            });
        });
        add("xalancbmk", 2000000, [](std::uint64_t s) {
            return kernels({
                {new StreamingKernel(
                     stream(2, 1u << 13, 1, 1u << 12, s)),
                 0.08},
                {new CacheResidentKernel(
                     resident(24 * 1024, 0.3, s)),
                 0.1},
                {new PointerChaseKernel(
                     chase(1u << 16, 12, 5e-6, 0.8, s)),
                 0.6},
                {new GraphWalkKernel(graph(1u << 14, 4, s)),
                 0.25},
                {new ZipfHashKernel(zipf(1u << 14, 1.1, s)),
                 0.15},
            });
        });
        add("astar_lakes", 2000000, [](std::uint64_t s) {
            return kernels({
                {new StreamingKernel(
                     stream(2, 1u << 13, 1, 1u << 12, s)),
                 0.08},
                {new CacheResidentKernel(
                     resident(24 * 1024, 0.3, s)),
                 0.1},
                {new GraphWalkKernel(graph(1u << 15, 4, s)),
                 0.85},
                {new ZipfHashKernel(zipf(1u << 13, 0.8, s)),
                 0.15},
            });
        });
        add("sphinx3", 2000000, [](std::uint64_t s) {
            return kernels({
                {new CacheResidentKernel(
                     resident(24 * 1024, 0.3, s)),
                 0.1},
                {new RepeatedScanKernel(
                     scan(1u << 18, 1u << 18, 8, s)),
                 0.85},
                {new StreamingKernel(
                     stream(2, 1u << 14, 1, 1u << 12, s)),
                 0.15},
            });
        });
        add("soplex_k", 2000000, [](std::uint64_t s) {
            return kernels({
                {new CacheResidentKernel(
                     resident(24 * 1024, 0.3, s)),
                 0.1},
                {new SparseMatVecKernel([&] {
                     SparseMatVecKernel::Params p;
                     p.rows = 1u << 14;
                     p.nnz_per_row = 8;
                     p.x_blocks = 1u << 17;
                     p.seed = s;
                     return p;
                 }()),
                 0.9},
                {new StreamingKernel(
                     stream(2, 1u << 14, 2, 1u << 13, s)),
                 0.1},
            });
        });
        add("gcc_166", 2000000, [](std::uint64_t s) {
            return kernels({
                {new CacheResidentKernel(
                     resident(24 * 1024, 0.3, s)),
                 0.1},
                {new GraphWalkKernel(graph(1u << 15, 4, s)),
                 0.5},
                {new RepeatedScanKernel(
                     scan(1u << 16, 1u << 16, 6, s)),
                 0.3},
                {new StreamingKernel(
                     stream(3, 1u << 13, 1, 1u << 12, s)),
                 0.2},
            });
        });

        // ----- Regular memory-intensive SPEC set (Figure 8). ---------
        auto add_streaming = [&](const std::string& name,
                                 std::uint32_t arrays,
                                 std::uint32_t stride) {
            add(name, 2000000, [arrays, stride](std::uint64_t s) {
                return kernels({
                    {new StreamingKernel(
                         stream(arrays, 1u << 16, stride, 1u << 16, s)),
                     0.9},
                    {new ZipfHashKernel(
                         zipf(1u << 14, 0.8, s)),
                     0.1},
                });
            });
        };
        add_streaming("bwaves", 6, 1);
        add_streaming("milc", 4, 2);
        add_streaming("zeusmp", 5, 1);
        add_streaming("cactusADM", 8, 1);
        add_streaming("leslie3d", 6, 2);
        add_streaming("GemsFDTD", 7, 1);
        add_streaming("libquantum", 2, 1);
        add_streaming("lbm", 4, 1);
        add_streaming("wrf", 5, 2);

        auto add_resident = [&](const std::string& name,
                                std::uint64_t blocks, double temporal) {
            add(name, 2000000, [blocks, temporal](std::uint64_t s) {
                return kernels({
                    {new CacheResidentKernel(
                         resident(blocks, temporal, s)),
                     0.85},
                    {new StreamingKernel(
                         stream(2, 1u << 12, 1, 1u << 11, s)),
                     0.15},
                });
            });
        };
        add_resident("perlbench", 8 * 1024, 0.4);
        add_resident("bzip2", 18 * 1024, 0.4);
        add_resident("gamess", 4 * 1024, 0.3);
        add_resident("gromacs", 6 * 1024, 0.3);
        add_resident("namd", 6 * 1024, 0.2);
        add_resident("gobmk", 10 * 1024, 0.4);
        add_resident("dealII", 16 * 1024, 0.5);
        add_resident("povray", 4 * 1024, 0.3);
        add_resident("calculix", 8 * 1024, 0.3);
        add_resident("hmmer", 5 * 1024, 0.4);
        add_resident("sjeng", 9 * 1024, 0.4);
        add_resident("h264ref", 7 * 1024, 0.3);
        add_resident("tonto", 6 * 1024, 0.3);

        add("gcc", 2000000, [](std::uint64_t s) {
            return kernels({
                {new FootprintKernel(
                     footprint(1u << 15, 0.4, false, s)),
                 0.5},
                {new StreamingKernel(
                     stream(3, 1u << 14, 1, 1u << 13, s)),
                 0.3},
                {new CacheResidentKernel(
                     resident(12 * 1024, 0.4, s)),
                 0.2},
            });
        });
        add("soplex_r", 2000000, [](std::uint64_t s) {
            return kernels({
                {new SparseMatVecKernel([&] {
                     SparseMatVecKernel::Params p;
                     p.rows = 1u << 14;
                     p.nnz_per_row = 12;
                     p.x_blocks = 1u << 15; // mostly cache-resident x
                     p.seed = s;
                     return p;
                 }()),
                 0.7},
                {new StreamingKernel(
                     stream(3, 1u << 15, 1, 1u << 15, s)),
                 0.3},
            });
        });
        add("astar_rivers", 2000000, [](std::uint64_t s) {
            return kernels({
                {new GraphWalkKernel(graph(1u << 14, 8, s)),
                 0.6},
                {new StreamingKernel(
                     stream(2, 1u << 14, 1, 1u << 14, s)),
                 0.4},
            });
        });

        // ----- CloudSuite analogs (Figure 14). -----------------------
        add("cassandra", 1500000, [](std::uint64_t s) {
            return kernels({
                {new PointerChaseKernel(
                     chase(1u << 16, 12, 1e-5, 0.8, s)),
                 0.6},
                {new RepeatedScanKernel(
                     scan(1u << 16, 1u << 16, 8, s)),
                 0.2},
                {new ZipfHashKernel(zipf(1u << 16, 1.0, s)),
                 0.2},
            });
        });
        add("classification", 1500000, [](std::uint64_t s) {
            return kernels({
                {new RepeatedScanKernel(
                     scan(1u << 17, 1u << 17, 10, s)),
                 0.75},
                {new ZipfHashKernel(zipf(1u << 15, 0.9, s)),
                 0.25},
            });
        });
        add("cloud9", 1500000, [](std::uint64_t s) {
            return kernels({
                {new GraphWalkKernel(graph(1u << 14, 6, s)),
                 0.65},
                {new PointerChaseKernel(
                     chase(1u << 14, 6, 1e-5, 0.6, s)),
                 0.2},
                {new ZipfHashKernel(zipf(1u << 14, 1.0, s)),
                 0.15},
            });
        });
        add("nutch", 1500000, [](std::uint64_t s) {
            return kernels({
                {new FootprintKernel(
                     footprint(1u << 16, 0.45, false, s)),
                 0.6},
                {new ZipfHashKernel(zipf(1u << 16, 0.9, s)),
                 0.25},
                {new StreamingKernel(
                     stream(2, 1u << 14, 1, 1u << 14, s)),
                 0.15},
            });
        });
        add("stream", 1500000, [](std::uint64_t s) {
            return kernels({
                {new StreamingKernel(
                     stream(4, 1u << 16, 1, 1u << 16, s)),
                 0.8},
                {new FootprintKernel(
                     footprint(1u << 15, 0.5, false, s)),
                 0.2},
            });
        });
        return m;
    }();
    return t;
}

} // namespace

std::unique_ptr<SyntheticWorkload>
make_benchmark(const std::string& name, double scale,
               std::uint64_t seed_jitter)
{
    auto it = table().find(name);
    if (it == table().end())
        util::fatal("unknown benchmark analog: " + name);
    std::uint64_t seed = seed_of(name) ^ seed_jitter;
    auto length = static_cast<std::uint64_t>(
        static_cast<double>(it->second.length) * scale);
    if (length == 0)
        length = 1;
    return std::make_unique<SyntheticWorkload>(name, seed, length,
                                               it->second.build(seed));
}

std::unique_ptr<sim::Workload>
make_workload(const std::string& spec, double scale,
              std::uint64_t seed_jitter, unsigned instance)
{
    if (frontend::is_trace_spec(spec)) {
        frontend::TraceSpec ts;
        if (!frontend::parse_trace_spec(spec, ts))
            return nullptr; // parse already warned
        auto wl = frontend::open_trace(ts.path, ts.format);
        if (wl != nullptr && instance != 0)
            wl->set_instance(instance);
        // scale / seed_jitter intentionally unused: a trace is a fixed
        // recording, so every replica replays the identical stream.
        return wl;
    }
    auto wl = make_benchmark(spec, scale, seed_jitter);
    if (instance != 0)
        wl->set_instance(instance);
    return wl;
}

const std::vector<std::string>&
irregular_spec()
{
    static const std::vector<std::string> v = {
        "gcc_166", "mcf",     "soplex_k",  "omnetpp",
        "astar_lakes", "sphinx3", "xalancbmk",
    };
    return v;
}

const std::vector<std::string>&
regular_spec()
{
    static const std::vector<std::string> v = {
        "perlbench", "bzip2",    "gcc",        "bwaves",   "gamess",
        "milc",      "zeusmp",   "gromacs",    "cactusADM", "leslie3d",
        "namd",      "gobmk",    "dealII",     "soplex_r",  "povray",
        "calculix",  "hmmer",    "sjeng",      "GemsFDTD",  "libquantum",
        "h264ref",   "tonto",    "lbm",        "astar_rivers", "wrf",
    };
    return v;
}

const std::vector<std::string>&
cloudsuite()
{
    static const std::vector<std::string> v = {
        "cassandra", "classification", "cloud9", "nutch", "stream",
    };
    return v;
}

std::vector<std::string>
all_spec()
{
    std::vector<std::string> v = irregular_spec();
    const auto& r = regular_spec();
    v.insert(v.end(), r.begin(), r.end());
    return v;
}

} // namespace triage::workloads
