/**
 * @file
 * SyntheticWorkload: composes weighted kernels into a named benchmark
 * analog, with deterministic reset/clone and per-instance address
 * offsets so co-running copies do not share data.
 */
#ifndef TRIAGE_WORKLOADS_SYNTHETIC_HPP
#define TRIAGE_WORKLOADS_SYNTHETIC_HPP

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "workloads/kernels.hpp"

namespace triage::workloads {

/** A weighted kernel inside a benchmark. */
struct WeightedKernel {
    std::unique_ptr<Kernel> kernel;
    double weight = 1.0;
};

/** Kernel-composition workload. */
class SyntheticWorkload final : public sim::Workload
{
  public:
    /**
     * @param length memory references per pass (EOF, then reset()).
     */
    SyntheticWorkload(std::string name, std::uint64_t seed,
                      std::uint64_t length,
                      std::vector<WeightedKernel> kernels);

    void reset() override;
    bool next(sim::TraceRecord& out) override;
    const std::string& name() const override { return name_; }
    std::unique_ptr<sim::Workload> clone() const override;

    /**
     * Shift every emitted address/PC by per-instance constants, giving
     * co-scheduled copies of one benchmark disjoint address spaces (as
     * distinct processes would have).
     */
    void set_instance(unsigned instance_id);

    std::uint64_t length() const { return length_; }

  private:
    std::string name_;
    std::uint64_t seed_;
    std::uint64_t length_;
    std::vector<WeightedKernel> kernels_;
    std::vector<double> cumulative_;
    util::Rng rng_;
    std::uint64_t pos_ = 0;
    std::uint64_t seq_ = 0;
    sim::Addr addr_offset_ = 0;
    sim::Pc pc_offset_ = 0;
    unsigned instance_ = 0;
};

} // namespace triage::workloads

#endif // TRIAGE_WORKLOADS_SYNTHETIC_HPP
