/**
 * @file
 * PhasedWorkload: concatenate workloads into program phases. The paper
 * motivates periodic partition re-evaluation with phase changes
 * (Section 3, "Adjusting the Size of the Metadata Store"); this is the
 * workload shape that exercises it — e.g. an irregular pointer-chase
 * phase followed by a streaming phase should see the metadata ways
 * grow and then be handed back.
 */
#ifndef TRIAGE_WORKLOADS_PHASED_HPP
#define TRIAGE_WORKLOADS_PHASED_HPP

#include <memory>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace triage::workloads {

/** One phase: a workload and how many records it contributes. */
struct Phase {
    std::unique_ptr<sim::Workload> workload;
    std::uint64_t records = 0;
};

/** Sequential phases, restartable as a whole. */
class PhasedWorkload final : public sim::Workload
{
  public:
    PhasedWorkload(std::string name, std::vector<Phase> phases);

    void reset() override;
    bool next(sim::TraceRecord& out) override;
    const std::string& name() const override { return name_; }
    std::unique_ptr<sim::Workload> clone() const override;

    /** Index of the phase the next record comes from. */
    std::size_t current_phase() const { return phase_; }

  private:
    std::string name_;
    std::vector<Phase> phases_;
    std::size_t phase_ = 0;
    std::uint64_t emitted_in_phase_ = 0;
};

} // namespace triage::workloads

#endif // TRIAGE_WORKLOADS_PHASED_HPP
