/**
 * @file
 * Trace file I/O: record a workload's reference stream to a compact
 * binary file and replay it later (or replay traces produced by an
 * external tool). This is the interchange point for users who want to
 * drive the simulator with their own traces instead of the synthetic
 * analogs.
 *
 * Format (little-endian):
 *   magic   u32  'TRIA' (0x41495254)
 *   version u32  (currently 1)
 *   count   u64  number of records
 *   records count x { pc u64, addr u64, dep u16, nonmem u8, flags u8 }
 * flags bit 0: is_write.
 */
#ifndef TRIAGE_WORKLOADS_TRACE_IO_HPP
#define TRIAGE_WORKLOADS_TRACE_IO_HPP

#include <memory>
#include <string>

#include "sim/trace.hpp"

namespace triage::workloads {

inline constexpr std::uint32_t TRACE_MAGIC = 0x41495254; // "TRIA"
inline constexpr std::uint32_t TRACE_VERSION = 1;

/** Header bytes preceding the record array (magic + version + count). */
inline constexpr std::size_t TRACE_HEADER_BYTES = 16;

/** flags bit 0: the reference is a store. */
inline constexpr std::uint8_t TRACE_FLAG_WRITE = 0x01;

/**
 * Every flags bit this reader understands. Records with any other bit
 * set are rejected: bits 1-7 are reserved for future format revisions,
 * and silently ignoring them would let a version-2 writer feed a
 * version-1 reader without anyone noticing the lost semantics.
 */
inline constexpr std::uint8_t TRACE_FLAG_MASK = TRACE_FLAG_WRITE;

/** On-disk record layout (packed, exactly 20 bytes, little-endian).
 *  Shared by the in-memory loader here and the streaming frontend
 *  (src/frontend/decoder.cpp). */
#pragma pack(push, 1)
struct PackedTraceRecord {
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint16_t dep;
    std::uint8_t nonmem;
    std::uint8_t flags;
};
#pragma pack(pop)
static_assert(sizeof(PackedTraceRecord) == 20, "packed record layout");

inline constexpr std::size_t TRACE_RECORD_BYTES =
    sizeof(PackedTraceRecord);

/**
 * Unpack one on-disk record. @return false when @p in carries unknown
 * flags bits (reserved-bit guard above); @p out is then unspecified.
 */
inline bool
unpack_trace_record(const PackedTraceRecord& in, sim::TraceRecord& out)
{
    if ((in.flags & ~TRACE_FLAG_MASK) != 0)
        return false;
    out.pc = in.pc;
    out.addr = in.addr;
    out.is_write = (in.flags & TRACE_FLAG_WRITE) != 0;
    out.nonmem_before = in.nonmem;
    out.dep_distance = in.dep;
    return true;
}

/**
 * Record up to @p max_records references of @p wl into @p path.
 * @return the number of records written (0 on I/O failure).
 */
std::uint64_t save_trace(const std::string& path, sim::Workload& wl,
                         std::uint64_t max_records);

/**
 * Load a trace file as a replayable workload (whole file in memory).
 * @return null on I/O or format error (a warning is printed).
 */
std::unique_ptr<sim::Workload> load_trace(const std::string& path);

} // namespace triage::workloads

#endif // TRIAGE_WORKLOADS_TRACE_IO_HPP
