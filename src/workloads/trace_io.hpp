/**
 * @file
 * Trace file I/O: record a workload's reference stream to a compact
 * binary file and replay it later (or replay traces produced by an
 * external tool). This is the interchange point for users who want to
 * drive the simulator with their own traces instead of the synthetic
 * analogs.
 *
 * Format (little-endian):
 *   magic   u32  'TRIA' (0x41495254)
 *   version u32  (currently 1)
 *   count   u64  number of records
 *   records count x { pc u64, addr u64, dep u16, nonmem u8, flags u8 }
 * flags bit 0: is_write.
 */
#ifndef TRIAGE_WORKLOADS_TRACE_IO_HPP
#define TRIAGE_WORKLOADS_TRACE_IO_HPP

#include <memory>
#include <string>

#include "sim/trace.hpp"

namespace triage::workloads {

inline constexpr std::uint32_t TRACE_MAGIC = 0x41495254; // "TRIA"
inline constexpr std::uint32_t TRACE_VERSION = 1;

/**
 * Record up to @p max_records references of @p wl into @p path.
 * @return the number of records written (0 on I/O failure).
 */
std::uint64_t save_trace(const std::string& path, sim::Workload& wl,
                         std::uint64_t max_records);

/**
 * Load a trace file as a replayable workload (whole file in memory).
 * @return null on I/O or format error (a warning is printed).
 */
std::unique_ptr<sim::Workload> load_trace(const std::string& path);

} // namespace triage::workloads

#endif // TRIAGE_WORKLOADS_TRACE_IO_HPP
