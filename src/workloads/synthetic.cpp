#include "workloads/synthetic.hpp"

#include "util/log.hpp"

namespace triage::workloads {

SyntheticWorkload::SyntheticWorkload(std::string name, std::uint64_t seed,
                                     std::uint64_t length,
                                     std::vector<WeightedKernel> kernels)
    : name_(std::move(name)), seed_(seed), length_(length),
      kernels_(std::move(kernels)), rng_(seed)
{
    TRIAGE_ASSERT(!kernels_.empty());
    TRIAGE_ASSERT(length_ > 0);
    double total = 0;
    for (const auto& k : kernels_) {
        TRIAGE_ASSERT(k.weight > 0);
        total += k.weight;
    }
    double acc = 0;
    for (const auto& k : kernels_) {
        acc += k.weight / total;
        cumulative_.push_back(acc);
    }
    cumulative_.back() = 1.0;
}

void
SyntheticWorkload::reset()
{
    pos_ = 0;
    rng_ = util::Rng(seed_);
    for (auto& k : kernels_)
        k.kernel->reset();
    // seq_ keeps counting across passes so dependency distances stay
    // valid through a restart.
}

bool
SyntheticWorkload::next(sim::TraceRecord& out)
{
    if (pos_ >= length_)
        return false;
    ++pos_;
    ++seq_;
    std::size_t pick = 0;
    if (kernels_.size() > 1) {
        double r = rng_.next_double();
        while (pick + 1 < cumulative_.size() && r > cumulative_[pick])
            ++pick;
    }
    kernels_[pick].kernel->emit(rng_, seq_, out);
    out.addr += addr_offset_;
    out.pc += pc_offset_;
    return true;
}

std::unique_ptr<sim::Workload>
SyntheticWorkload::clone() const
{
    std::vector<WeightedKernel> copies;
    copies.reserve(kernels_.size());
    for (const auto& k : kernels_)
        copies.push_back({k.kernel->clone(), k.weight});
    auto w = std::make_unique<SyntheticWorkload>(name_, seed_, length_,
                                                 std::move(copies));
    w->set_instance(instance_);
    return w;
}

void
SyntheticWorkload::set_instance(unsigned instance_id)
{
    instance_ = instance_id;
    addr_offset_ = static_cast<sim::Addr>(instance_id) << 44;
    pc_offset_ = static_cast<sim::Pc>(instance_id) << 48;
}

} // namespace triage::workloads
