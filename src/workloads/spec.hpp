/**
 * @file
 * Named benchmark analogs.
 *
 * Each SPEC2006 / CloudSuite benchmark from the paper's evaluation maps
 * to a deterministic synthetic workload whose kernels reproduce the
 * properties the paper's mechanisms depend on (PC-localized temporal
 * correlation, footprint size vs LLC, regular vs irregular split,
 * compulsory-miss fraction). DESIGN.md documents the substitution.
 */
#ifndef TRIAGE_WORKLOADS_SPEC_HPP
#define TRIAGE_WORKLOADS_SPEC_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/synthetic.hpp"

namespace triage::workloads {

/**
 * Build the analog for @p name.
 * @param scale multiplies the pass length (1.0 = default bench scale).
 * @param seed_jitter XORed into the benchmark's canonical seed; 0 (the
 *        default) reproduces the published streams, non-zero values
 *        give reproducible independent replicas (exec::Job::replica).
 * Fatal if the name is unknown.
 */
std::unique_ptr<SyntheticWorkload>
make_benchmark(const std::string& name, double scale = 1.0,
               std::uint64_t seed_jitter = 0);

/**
 * Resolve any workload spec string: a benchmark-analog name from the
 * table, or a `trace:<path>` / `trace[<fmt>]:<path>` spec naming an
 * external trace file (frontend::parse_trace_spec grammar). Trace
 * workloads stream from disk with bounded memory; @p scale and
 * @p seed_jitter apply to benchmark analogs only (a trace is a fixed
 * recording — replicas of it are the identical stream). @p instance
 * selects the per-core address-space offset for multi-programmed
 * mixes (Workload-level set_instance for analogs happens in the
 * kernels; traces shift addr/pc by the instance id).
 * Fatal on unknown benchmark names; returns nullptr only if a trace
 * file cannot be opened.
 */
std::unique_ptr<sim::Workload>
make_workload(const std::string& spec, double scale = 1.0,
              std::uint64_t seed_jitter = 0, unsigned instance = 0);

/** The paper's irregular SPEC2006 subset (Figure 5 x-axis). */
const std::vector<std::string>& irregular_spec();

/** The remaining memory-intensive (regular) SPEC2006 set (Figure 8). */
const std::vector<std::string>& regular_spec();

/** CloudSuite server benchmarks (Figure 14). */
const std::vector<std::string>& cloudsuite();

/** All SPEC names (irregular + regular), the mix-drawing pool. */
std::vector<std::string> all_spec();

} // namespace triage::workloads

#endif // TRIAGE_WORKLOADS_SPEC_HPP
