#include "workloads/trace_io.hpp"

#include <cstdio>
#include <vector>

#include "util/log.hpp"

namespace triage::workloads {

namespace {

struct FileCloser {
    void
    operator()(std::FILE* f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/**
 * Records buffered between fwrite calls, on both the save and load
 * paths. An explicit constant rather than vector capacity: capacity
 * after reserve() is only a lower bound, so flushing on
 * size()==capacity() would tie the on-disk write pattern to the
 * allocator. The round-trip test straddles this boundary.
 */
constexpr std::size_t kFlushRecords = 4096;

} // namespace

std::uint64_t
save_trace(const std::string& path, sim::Workload& wl,
           std::uint64_t max_records)
{
    File f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        util::warn("save_trace: cannot open " + path);
        return 0;
    }
    std::uint32_t magic = TRACE_MAGIC;
    std::uint32_t version = TRACE_VERSION;
    std::uint64_t count = 0;
    if (std::fwrite(&magic, sizeof(magic), 1, f.get()) != 1 ||
        std::fwrite(&version, sizeof(version), 1, f.get()) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
        util::warn("save_trace: header write failed for " + path);
        return 0;
    }
    sim::TraceRecord r;
    std::vector<PackedTraceRecord> buf;
    buf.reserve(kFlushRecords);
    while (count < max_records && wl.next(r)) {
        buf.push_back({r.pc, r.addr, r.dep_distance, r.nonmem_before,
                       static_cast<std::uint8_t>(
                           r.is_write ? TRACE_FLAG_WRITE : 0)});
        ++count;
        if (buf.size() == kFlushRecords) {
            if (std::fwrite(buf.data(), sizeof(PackedTraceRecord),
                            buf.size(), f.get()) != buf.size()) {
                util::warn(util::format_msg(
                    "save_trace: short write after ", count,
                    " records to ", path));
                return 0;
            }
            buf.clear();
        }
    }
    if (!buf.empty() &&
        std::fwrite(buf.data(), sizeof(PackedTraceRecord), buf.size(),
                    f.get()) != buf.size()) {
        util::warn(util::format_msg("save_trace: short write after ",
                                    count, " records to ", path));
        return 0;
    }
    // Patch the record count in the header.
    if (std::fseek(f.get(), sizeof(magic) + sizeof(version), SEEK_SET) !=
            0 ||
        std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
        util::warn("save_trace: header count patch failed for " + path);
        return 0;
    }
    // The stdio buffer still holds the tail of the trace; an ENOSPC
    // (or any other error) surfacing only at the destructor's fclose
    // would be swallowed there and let a torn file report success.
    // Flush and check the stream NOW, before declaring victory.
    if (std::fflush(f.get()) != 0 || std::ferror(f.get()) != 0) {
        util::warn("save_trace: flush failed for " + path +
                   " (disk full?) — the file is incomplete");
        return 0;
    }
    return count;
}

std::unique_ptr<sim::Workload>
load_trace(const std::string& path)
{
    File f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        util::warn("load_trace: cannot open " + path);
        return nullptr;
    }
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 ||
        std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
        std::fread(&count, sizeof(count), 1, f.get()) != 1 ||
        magic != TRACE_MAGIC || version != TRACE_VERSION) {
        util::warn("load_trace: bad header in " + path);
        return nullptr;
    }
    // The header count sizes the upcoming reserve(); trusting it as
    // read would let a corrupt or hostile header drive an unbounded
    // allocation. It must agree exactly with the bytes present.
    if (std::fseek(f.get(), 0, SEEK_END) != 0) {
        util::warn("load_trace: cannot stat " + path);
        return nullptr;
    }
    const long end = std::ftell(f.get());
    if (end < 0 ||
        static_cast<std::uint64_t>(end) < TRACE_HEADER_BYTES) {
        util::warn("load_trace: truncated header in " + path);
        return nullptr;
    }
    const std::uint64_t body =
        static_cast<std::uint64_t>(end) - TRACE_HEADER_BYTES;
    if (body % TRACE_RECORD_BYTES != 0 ||
        body / TRACE_RECORD_BYTES != count) {
        util::warn(util::format_msg(
            "load_trace: header count ", count,
            " disagrees with file size ", end, " in ", path,
            " (corrupt or truncated trace)"));
        return nullptr;
    }
    if (std::fseek(f.get(), static_cast<long>(TRACE_HEADER_BYTES),
                   SEEK_SET) != 0) {
        util::warn("load_trace: seek failed in " + path);
        return nullptr;
    }
    std::vector<sim::TraceRecord> records;
    records.reserve(count);
    std::vector<PackedTraceRecord> buf(kFlushRecords);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        std::size_t want = std::min<std::uint64_t>(remaining, buf.size());
        if (std::fread(buf.data(), sizeof(PackedTraceRecord), want,
                       f.get()) != want) {
            util::warn("load_trace: truncated trace " + path);
            return nullptr;
        }
        for (std::size_t i = 0; i < want; ++i) {
            sim::TraceRecord rec;
            if (!unpack_trace_record(buf[i], rec)) {
                util::warn(util::format_msg(
                    "load_trace: unknown flags bits 0x",
                    static_cast<unsigned>(buf[i].flags), " at record ",
                    count - remaining + i, " in ", path,
                    " (written by a newer format revision?)"));
                return nullptr;
            }
            records.push_back(rec);
        }
        remaining -= want;
    }
    return std::make_unique<sim::VectorWorkload>(path,
                                                 std::move(records));
}

} // namespace triage::workloads
