#include "workloads/trace_io.hpp"

#include <cstdio>
#include <vector>

#include "util/log.hpp"

namespace triage::workloads {

namespace {

/** On-disk record layout (packed, exactly 20 bytes). */
#pragma pack(push, 1)
struct PackedRecord {
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint16_t dep;
    std::uint8_t nonmem;
    std::uint8_t flags;
};
#pragma pack(pop)
static_assert(sizeof(PackedRecord) == 20, "packed record layout");

struct FileCloser {
    void
    operator()(std::FILE* f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/**
 * Records buffered between fwrite calls, on both the save and load
 * paths. An explicit constant rather than vector capacity: capacity
 * after reserve() is only a lower bound, so flushing on
 * size()==capacity() would tie the on-disk write pattern to the
 * allocator. The round-trip test straddles this boundary.
 */
constexpr std::size_t kFlushRecords = 4096;

} // namespace

std::uint64_t
save_trace(const std::string& path, sim::Workload& wl,
           std::uint64_t max_records)
{
    File f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        util::warn("save_trace: cannot open " + path);
        return 0;
    }
    std::uint32_t magic = TRACE_MAGIC;
    std::uint32_t version = TRACE_VERSION;
    std::uint64_t count = 0;
    if (std::fwrite(&magic, sizeof(magic), 1, f.get()) != 1 ||
        std::fwrite(&version, sizeof(version), 1, f.get()) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
        return 0;
    }
    sim::TraceRecord r;
    std::vector<PackedRecord> buf;
    buf.reserve(kFlushRecords);
    while (count < max_records && wl.next(r)) {
        buf.push_back({r.pc, r.addr, r.dep_distance, r.nonmem_before,
                       static_cast<std::uint8_t>(r.is_write ? 1 : 0)});
        ++count;
        if (buf.size() == kFlushRecords) {
            if (std::fwrite(buf.data(), sizeof(PackedRecord),
                            buf.size(), f.get()) != buf.size())
                return 0;
            buf.clear();
        }
    }
    if (!buf.empty() &&
        std::fwrite(buf.data(), sizeof(PackedRecord), buf.size(),
                    f.get()) != buf.size()) {
        return 0;
    }
    // Patch the record count in the header.
    if (std::fseek(f.get(), sizeof(magic) + sizeof(version), SEEK_SET) !=
            0 ||
        std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
        return 0;
    }
    return count;
}

std::unique_ptr<sim::Workload>
load_trace(const std::string& path)
{
    File f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        util::warn("load_trace: cannot open " + path);
        return nullptr;
    }
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 ||
        std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
        std::fread(&count, sizeof(count), 1, f.get()) != 1 ||
        magic != TRACE_MAGIC || version != TRACE_VERSION) {
        util::warn("load_trace: bad header in " + path);
        return nullptr;
    }
    std::vector<sim::TraceRecord> records;
    records.reserve(count);
    std::vector<PackedRecord> buf(kFlushRecords);
    std::uint64_t remaining = count;
    while (remaining > 0) {
        std::size_t want = std::min<std::uint64_t>(remaining, buf.size());
        if (std::fread(buf.data(), sizeof(PackedRecord), want,
                       f.get()) != want) {
            util::warn("load_trace: truncated trace " + path);
            return nullptr;
        }
        for (std::size_t i = 0; i < want; ++i) {
            records.push_back({buf[i].pc, buf[i].addr,
                               (buf[i].flags & 1) != 0, buf[i].nonmem,
                               buf[i].dep});
        }
        remaining -= want;
    }
    return std::make_unique<sim::VectorWorkload>(path,
                                                 std::move(records));
}

} // namespace triage::workloads
