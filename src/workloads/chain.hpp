/**
 * @file
 * Workload concatenation: play a sequence of workloads back to back as
 * one stream. The metamorphic property this enables — replaying a
 * trace split at an arbitrary record boundary must be indistinguishable
 * from replaying it unsplit — is one of the differential-fidelity
 * checks (tools/diff_fidelity), and the chain is also handy for
 * stitching phase traces together.
 */
#ifndef TRIAGE_WORKLOADS_CHAIN_HPP
#define TRIAGE_WORKLOADS_CHAIN_HPP

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/trace.hpp"
#include "util/log.hpp"

namespace triage::workloads {

/** Plays each part to end-of-trace, then the next; reset rewinds all. */
class ChainWorkload final : public sim::Workload
{
  public:
    ChainWorkload(std::string name,
                  std::vector<std::unique_ptr<sim::Workload>> parts)
        : name_(std::move(name)), parts_(std::move(parts))
    {
        TRIAGE_ASSERT(!parts_.empty(), "chain needs at least one part");
    }

    void
    reset() override
    {
        for (auto& p : parts_)
            p->reset();
        idx_ = 0;
    }

    bool
    next(sim::TraceRecord& out) override
    {
        while (idx_ < parts_.size()) {
            if (parts_[idx_]->next(out))
                return true;
            ++idx_;
        }
        return false;
    }

    const std::string& name() const override { return name_; }

    std::unique_ptr<sim::Workload>
    clone() const override
    {
        std::vector<std::unique_ptr<sim::Workload>> copies;
        copies.reserve(parts_.size());
        for (const auto& p : parts_)
            copies.push_back(p->clone());
        return std::make_unique<ChainWorkload>(name_, std::move(copies));
    }

  private:
    std::string name_;
    std::vector<std::unique_ptr<sim::Workload>> parts_;
    std::size_t idx_ = 0;
};

} // namespace triage::workloads

#endif // TRIAGE_WORKLOADS_CHAIN_HPP
