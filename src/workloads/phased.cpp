#include "workloads/phased.hpp"

#include "util/log.hpp"

namespace triage::workloads {

PhasedWorkload::PhasedWorkload(std::string name, std::vector<Phase> phases)
    : name_(std::move(name)), phases_(std::move(phases))
{
    TRIAGE_ASSERT(!phases_.empty());
    for (const auto& p : phases_) {
        TRIAGE_ASSERT(p.workload != nullptr);
        TRIAGE_ASSERT(p.records > 0);
    }
}

void
PhasedWorkload::reset()
{
    phase_ = 0;
    emitted_in_phase_ = 0;
    for (auto& p : phases_)
        p.workload->reset();
}

bool
PhasedWorkload::next(sim::TraceRecord& out)
{
    while (phase_ < phases_.size()) {
        Phase& p = phases_[phase_];
        if (emitted_in_phase_ >= p.records) {
            ++phase_;
            emitted_in_phase_ = 0;
            continue;
        }
        if (p.workload->next(out)) {
            ++emitted_in_phase_;
            return true;
        }
        // Underlying phase ran out early: restart it within the phase.
        p.workload->reset();
        if (!p.workload->next(out))
            return false; // empty underlying workload
        ++emitted_in_phase_;
        return true;
    }
    return false;
}

std::unique_ptr<sim::Workload>
PhasedWorkload::clone() const
{
    std::vector<Phase> copies;
    copies.reserve(phases_.size());
    for (const auto& p : phases_)
        copies.push_back({p.workload->clone(), p.records});
    return std::make_unique<PhasedWorkload>(name_, std::move(copies));
}

} // namespace triage::workloads
