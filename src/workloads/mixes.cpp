#include "workloads/mixes.hpp"

#include "util/rng.hpp"
#include "workloads/spec.hpp"

namespace triage::workloads {

std::vector<Mix>
make_mixes(const std::vector<std::string>& pool, unsigned cores,
           unsigned n_mixes, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<Mix> mixes;
    mixes.reserve(n_mixes);
    for (unsigned m = 0; m < n_mixes; ++m) {
        Mix mix;
        mix.reserve(cores);
        for (unsigned c = 0; c < cores; ++c) {
            mix.push_back(pool[rng.next_below(
                static_cast<std::uint32_t>(pool.size()))]);
        }
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

std::vector<Mix>
paper_mixes(unsigned cores, unsigned n_mixes, std::uint64_t seed)
{
    unsigned irregular_only = n_mixes * 3 / 8; // 30 of 80
    std::vector<Mix> mixes =
        make_mixes(irregular_spec(), cores, irregular_only, seed);
    std::vector<Mix> rest = make_mixes(all_spec(), cores,
                                       n_mixes - irregular_only,
                                       seed ^ 0x5bd1e995);
    mixes.insert(mixes.end(), rest.begin(), rest.end());
    return mixes;
}

} // namespace triage::workloads
