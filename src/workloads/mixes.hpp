/**
 * @file
 * Multi-programmed mix construction (paper Section 4.1): each core
 * runs a benchmark drawn uniformly at random from a pool; 30 of every
 * 80 mixes draw from irregular programs only, the rest from the full
 * memory-bound pool.
 */
#ifndef TRIAGE_WORKLOADS_MIXES_HPP
#define TRIAGE_WORKLOADS_MIXES_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace triage::workloads {

/** One mix: the benchmark name per core. */
using Mix = std::vector<std::string>;

/**
 * Draw @p n_mixes mixes of @p cores benchmarks each from @p pool,
 * uniformly at random, deterministically from @p seed.
 */
std::vector<Mix> make_mixes(const std::vector<std::string>& pool,
                            unsigned cores, unsigned n_mixes,
                            std::uint64_t seed);

/**
 * The paper's construction: @p n_mixes mixes where the first 3/8 are
 * irregular-only and the rest mix regular and irregular programs.
 */
std::vector<Mix> paper_mixes(unsigned cores, unsigned n_mixes,
                             std::uint64_t seed);

} // namespace triage::workloads

#endif // TRIAGE_WORKLOADS_MIXES_HPP
