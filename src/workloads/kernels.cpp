#include "workloads/kernels.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::workloads {

namespace {

std::uint8_t
jitter(util::Rng& rng, std::uint8_t lo, std::uint8_t hi)
{
    if (hi <= lo)
        return lo;
    return static_cast<std::uint8_t>(lo + rng.next_below(hi - lo + 1));
}

} // namespace

// --------------------------------------------------------------------
// PointerChaseKernel
// --------------------------------------------------------------------

PointerChaseKernel::PointerChaseKernel(Params p)
    : p_(p), mutate_rng_(p.seed * 977 + 5)
{
    TRIAGE_ASSERT(p_.chains >= 1);
    TRIAGE_ASSERT(p_.nodes >= p_.chains * 2);
    build();
}

void
PointerChaseKernel::build()
{
    // Split the node space into one shuffled cycle per chain, so every
    // chain revisits the same node order lap after lap.
    next_.assign(p_.nodes, 0);
    cur_.assign(p_.chains, 0);
    last_seq_.assign(p_.chains, 0);
    util::Rng build_rng(p_.seed);
    std::uint32_t seg = p_.nodes / p_.chains;
    for (std::uint32_t c = 0; c < p_.chains; ++c) {
        std::uint32_t lo = c * seg;
        std::vector<std::uint32_t> order(seg);
        for (std::uint32_t i = 0; i < seg; ++i)
            order[i] = lo + i;
        build_rng.shuffle(order);
        for (std::uint32_t i = 0; i + 1 < seg; ++i)
            next_[order[i]] = order[i + 1];
        next_[order[seg - 1]] = order[0];
        cur_[c] = order[0];
    }
    rr_ = 0;
}

void
PointerChaseKernel::reset()
{
    mutate_rng_ = util::Rng(p_.seed * 977 + 5);
    build();
}

std::unique_ptr<Kernel>
PointerChaseKernel::clone() const
{
    return std::make_unique<PointerChaseKernel>(p_);
}

void
PointerChaseKernel::emit(util::Rng& rng, std::uint64_t seq,
                         sim::TraceRecord& out)
{
    std::uint32_t c;
    if (p_.chain_skew > 0.0 && p_.chains > 1) {
        c = static_cast<std::uint32_t>(
            rng.next_zipf(p_.chains, p_.chain_skew));
    } else {
        c = rr_;
        rr_ = (rr_ + 1) % p_.chains;
    }

    std::uint32_t node = cur_[c];
    out.pc = p_.pc_base + c * 4;
    out.addr = p_.base + static_cast<sim::Addr>(node) * sim::BLOCK_SIZE;
    out.is_write = false;
    out.nonmem_before = jitter(rng, p_.nonmem_min, p_.nonmem_max);
    std::uint64_t gap = seq - last_seq_[c];
    out.dep_distance = (last_seq_[c] != 0 && gap <= 1000)
                           ? static_cast<std::uint16_t>(gap)
                           : 0;
    last_seq_[c] = seq;

    cur_[c] = next_[node];
    // The walk is DRAM-latency bound on this dependent load; request
    // the successor's line now so the next visit to this chain (at
    // least one emit away) finds it resident.
    __builtin_prefetch(&next_[cur_[c]]);

    if (p_.mutate_prob > 0 && mutate_rng_.chance(p_.mutate_prob)) {
        // Relink two nodes in this chain's segment: successors change,
        // exercising confidence bits and replacement.
        std::uint32_t seg = p_.nodes / p_.chains;
        std::uint32_t lo = c * seg;
        std::uint32_t a = lo + mutate_rng_.next_below(seg);
        std::uint32_t b = lo + mutate_rng_.next_below(seg);
        std::swap(next_[a], next_[b]);
    }
}

// --------------------------------------------------------------------
// RepeatedScanKernel
// --------------------------------------------------------------------

RepeatedScanKernel::RepeatedScanKernel(Params p) : p_(p)
{
    TRIAGE_ASSERT(p_.entries > 0 && p_.pcs > 0);
    TRIAGE_ASSERT(util::is_pow2(p_.space_blocks),
                  "scan space must be a power of two (bijective walk)");
}

sim::Addr
RepeatedScanKernel::addr_at(std::uint64_t i) const
{
    // A *bijective* pseudo-random walk of the block space: position i
    // maps to a unique block, so each trigger has a unique successor
    // (real PC-localized streams rarely alias) and every pass replays
    // identical correlations. Multiply-xorshift-multiply by odd
    // constants is invertible modulo a power of two.
    std::uint64_t mask = p_.space_blocks - 1;
    std::uint64_t x = (i + p_.seed) & mask;
    x = (x * 0x9E3779B97F4A7C15ULL) & mask;
    x ^= x >> 7;
    x = (x * 0xC2B2AE3D27D4EB4FULL) & mask;
    x &= mask;
    return p_.base + x * sim::BLOCK_SIZE;
}

void
RepeatedScanKernel::reset()
{
    pos_ = 0;
}

std::unique_ptr<Kernel>
RepeatedScanKernel::clone() const
{
    auto k = std::make_unique<RepeatedScanKernel>(p_);
    return k;
}

void
RepeatedScanKernel::emit(util::Rng& rng, std::uint64_t, sim::TraceRecord& out)
{
    std::uint64_t i = pos_ % p_.entries;
    out.pc = p_.pc_base + (i % p_.pcs) * 4;
    out.addr = addr_at(i);
    out.is_write = false;
    out.nonmem_before = jitter(rng, p_.nonmem_min, p_.nonmem_max);
    out.dep_distance = 0;
    ++pos_;
}

// --------------------------------------------------------------------
// SparseMatVecKernel
// --------------------------------------------------------------------

SparseMatVecKernel::SparseMatVecKernel(Params p) : p_(p)
{
    TRIAGE_ASSERT(p_.rows > 0 && p_.nnz_per_row > 0);
}

std::uint32_t
SparseMatVecKernel::col_of(std::uint64_t flat_index) const
{
    // Bijective when rows*nnz_per_row == x_blocks (the benchmark table
    // keeps them equal): each dense-vector block is gathered exactly
    // once per pass, with a stable successor across passes.
    std::uint64_t mask = p_.x_blocks - 1;
    std::uint64_t x = (flat_index ^ p_.seed) & mask;
    x = (x * 0x9E3779B97F4A7C15ULL) & mask;
    x ^= x >> 6;
    x = (x * 0xC2B2AE3D27D4EB4FULL) & mask;
    return static_cast<std::uint32_t>(x & mask);
}

void
SparseMatVecKernel::reset()
{
    row_ = 0;
    k_ = 0;
    phase_ = 0;
}

std::unique_ptr<Kernel>
SparseMatVecKernel::clone() const
{
    return std::make_unique<SparseMatVecKernel>(p_);
}

void
SparseMatVecKernel::emit(util::Rng& rng, std::uint64_t,
                         sim::TraceRecord& out)
{
    const sim::Addr col_array = p_.base;
    const sim::Addr x_array = p_.base + (1ULL << 32);
    std::uint64_t flat =
        static_cast<std::uint64_t>(row_) * p_.nnz_per_row + k_;
    out.is_write = false;
    out.dep_distance = 0;
    out.nonmem_before = jitter(rng, p_.nonmem_min, p_.nonmem_max);
    if (phase_ == 0) {
        // Stream through the column-index array (16 indices per line).
        out.pc = p_.pc_base;
        out.addr = col_array + (flat / 16) * sim::BLOCK_SIZE;
        phase_ = 1;
        return;
    }
    // Gather x[col]: depends on the col-index load just issued, and
    // sometimes on the previous gather (serialized accumulation).
    out.pc = p_.pc_base + 4;
    out.addr = x_array +
               static_cast<sim::Addr>(col_of(flat)) * sim::BLOCK_SIZE;
    out.dep_distance =
        rng.chance(p_.serial_prob) ? 2 : 1;
    phase_ = 0;
    if (++k_ >= p_.nnz_per_row) {
        k_ = 0;
        row_ = (row_ + 1) % p_.rows;
    }
}

// --------------------------------------------------------------------
// GraphWalkKernel
// --------------------------------------------------------------------

GraphWalkKernel::GraphWalkKernel(Params p) : p_(p)
{
    TRIAGE_ASSERT(p_.nodes > 0 && p_.degree > 0);
    TRIAGE_ASSERT(util::is_pow2(p_.nodes),
                  "graph nodes must be a power of two (bijective order)");
}

std::uint32_t
GraphWalkKernel::order_at(std::uint32_t i) const
{
    // Fixed pseudo-random visitation order, bijective over the node
    // set: every node is visited exactly once per pass, so node and
    // edge streams have unique, stable successors.
    std::uint64_t mask = p_.nodes - 1;
    std::uint64_t x = (i + p_.seed * 31) & mask;
    x = (x * 0x9E3779B97F4A7C15ULL) & mask;
    x ^= x >> 5;
    x = (x * 0xC2B2AE3D27D4EB4FULL) & mask;
    return static_cast<std::uint32_t>(x & mask);
}

std::uint32_t
GraphWalkKernel::edge_target(std::uint32_t node, std::uint32_t e) const
{
    // Per-edge payload index, bijective over nodes*degree: spatially
    // irregular but temporally unique (an edge-weights array walked in
    // traversal order), the pattern temporal prefetchers can learn and
    // spatial ones cannot.
    std::uint64_t flat =
        static_cast<std::uint64_t>(node) * p_.degree + e;
    std::uint64_t span =
        static_cast<std::uint64_t>(p_.nodes) * p_.degree;
    std::uint64_t x = (flat * 0x9E3779B97F4A7C15ULL + p_.seed * 101) %
                      span;
    return static_cast<std::uint32_t>(x);
}

void
GraphWalkKernel::reset()
{
    visit_ = 0;
    edge_ = 0;
    phase_ = 0;
}

std::unique_ptr<Kernel>
GraphWalkKernel::clone() const
{
    return std::make_unique<GraphWalkKernel>(p_);
}

void
GraphWalkKernel::emit(util::Rng& rng, std::uint64_t, sim::TraceRecord& out)
{
    const sim::Addr node_array = p_.base;
    const sim::Addr edge_array = p_.base + (1ULL << 33);
    const sim::Addr data_array = p_.base + (1ULL << 34);
    std::uint32_t node = order_at(visit_);
    out.is_write = false;
    out.dep_distance = 0;
    out.nonmem_before = jitter(rng, 6, 12);
    switch (phase_) {
      case 0: // node record
        out.pc = p_.pc_base;
        out.addr = node_array +
                   static_cast<sim::Addr>(node) * sim::BLOCK_SIZE;
        phase_ = 1;
        edge_ = 0;
        return;
      case 1: // edge list (sequential within the node)
        out.pc = p_.pc_base + 4;
        out.addr = edge_array +
                   (static_cast<sim::Addr>(node) * p_.degree + edge_) /
                       8 * sim::BLOCK_SIZE;
        phase_ = 2;
        return;
      default: // edge payload (irregular, fixed per edge)
        out.pc = p_.pc_base + 8;
        out.addr = data_array +
                   static_cast<sim::Addr>(edge_target(node, edge_)) *
                       sim::BLOCK_SIZE;
        out.dep_distance = 1; // depends on the edge-list load
        if (++edge_ >= p_.degree) {
            phase_ = 0;
            visit_ = (visit_ + 1) % p_.nodes;
        } else {
            phase_ = 1;
        }
        return;
    }
}

// --------------------------------------------------------------------
// StreamingKernel
// --------------------------------------------------------------------

StreamingKernel::StreamingKernel(Params p) : p_(p)
{
    TRIAGE_ASSERT(p_.arrays > 0 && p_.window_blocks > 0);
}

void
StreamingKernel::reset()
{
    arr_ = 0;
    idx_ = 0;
    pass_ = 0;
}

std::unique_ptr<Kernel>
StreamingKernel::clone() const
{
    return std::make_unique<StreamingKernel>(p_);
}

void
StreamingKernel::emit(util::Rng& rng, std::uint64_t, sim::TraceRecord& out)
{
    std::uint64_t start = (pass_ * p_.shift_per_pass) % p_.array_blocks;
    std::uint64_t block =
        (start + idx_ * p_.stride_blocks) % p_.array_blocks;
    out.pc = p_.pc_base + arr_ * 4;
    out.addr = p_.base + (static_cast<sim::Addr>(arr_) << 36) +
               block * sim::BLOCK_SIZE;
    out.is_write = rng.chance(p_.store_ratio);
    out.nonmem_before = jitter(rng, p_.nonmem_min, p_.nonmem_max);
    out.dep_distance = 0;

    arr_ = (arr_ + 1) % p_.arrays;
    if (arr_ == 0) {
        if (++idx_ >= p_.window_blocks) {
            idx_ = 0;
            ++pass_;
        }
    }
}

// --------------------------------------------------------------------
// FootprintKernel
// --------------------------------------------------------------------

FootprintKernel::FootprintKernel(Params p) : p_(p)
{
    TRIAGE_ASSERT(p_.region_blocks <= 32);
    // Pre-generate the distinct footprint shapes.
    util::Rng shape_rng(p_.seed);
    patterns_.resize(p_.patterns);
    for (auto& pat : patterns_) {
        pat = 0;
        for (std::uint32_t b = 0; b < p_.region_blocks; ++b) {
            if (shape_rng.chance(p_.density))
                pat |= 1u << b;
        }
        if (pat == 0)
            pat = 1;
    }
}

std::uint32_t
FootprintKernel::pattern_of(std::uint64_t region) const
{
    return static_cast<std::uint32_t>(util::mix64(region * 3 + p_.seed) %
                                      p_.patterns);
}

void
FootprintKernel::reset()
{
    visit_ = 0;
    region_ = 0;
    bit_ = 0;
    pass_ = 0;
}

std::unique_ptr<Kernel>
FootprintKernel::clone() const
{
    return std::make_unique<FootprintKernel>(p_);
}

void
FootprintKernel::emit(util::Rng& rng, std::uint64_t, sim::TraceRecord& out)
{
    std::uint32_t pat = patterns_[pattern_of(region_)];
    // Find the next touched block of the current region.
    while (bit_ < p_.region_blocks && (pat & (1u << bit_)) == 0)
        ++bit_;
    if (bit_ >= p_.region_blocks) {
        // Move to the next region: either a recurring order or a fresh
        // (compulsory) one, depending on configuration.
        ++visit_;
        std::uint64_t index = p_.recur
                                  ? visit_ % p_.regions
                                  : visit_ + pass_ * p_.regions;
        region_ = util::mix64(index ^ (p_.seed << 1)) % p_.regions +
                  (p_.recur ? 0 : (visit_ / p_.regions) * p_.regions);
        bit_ = 0;
        pat = patterns_[pattern_of(region_)];
        while (bit_ < p_.region_blocks && (pat & (1u << bit_)) == 0)
            ++bit_;
    }
    // The trigger PC is stable per pattern: SMS correlates (pc, offset)
    // with the footprint.
    out.pc = p_.pc_base + (pattern_of(region_) % 8) * 4;
    out.addr = p_.base + (region_ * p_.region_blocks + bit_) *
                             sim::BLOCK_SIZE;
    out.is_write = false;
    out.nonmem_before = jitter(rng, 4, 8);
    out.dep_distance = 0;
    ++bit_;
}

// --------------------------------------------------------------------
// ZipfHashKernel
// --------------------------------------------------------------------

ZipfHashKernel::ZipfHashKernel(Params p) : p_(p)
{
    TRIAGE_ASSERT(p_.buckets > 1 && p_.probe_blocks >= 1);
}

void
ZipfHashKernel::reset()
{
    bucket_ = 0;
    step_ = 0;
}

std::unique_ptr<Kernel>
ZipfHashKernel::clone() const
{
    return std::make_unique<ZipfHashKernel>(p_);
}

void
ZipfHashKernel::emit(util::Rng& rng, std::uint64_t, sim::TraceRecord& out)
{
    if (step_ == 0) {
        // Popularity-ranked bucket, then scatter ranks over the table.
        std::uint64_t rank = rng.next_zipf(p_.buckets, p_.zipf_s);
        bucket_ = util::mix64(rank * 11 + p_.seed) % p_.buckets;
    }
    out.pc = p_.pc_base + step_ * 4;
    out.addr = p_.base +
               (bucket_ * p_.probe_blocks + step_) * sim::BLOCK_SIZE;
    out.is_write = false;
    out.nonmem_before = jitter(rng, 6, 12);
    out.dep_distance = step_ == 0 ? 0 : 1;
    if (++step_ >= p_.probe_blocks)
        step_ = 0;
}

// --------------------------------------------------------------------
// CacheResidentKernel
// --------------------------------------------------------------------

CacheResidentKernel::CacheResidentKernel(Params p) : p_(p)
{
    TRIAGE_ASSERT(p_.footprint_blocks > 0 && p_.pcs > 0);
}

void
CacheResidentKernel::reset()
{
    pos_ = 0;
}

std::unique_ptr<Kernel>
CacheResidentKernel::clone() const
{
    return std::make_unique<CacheResidentKernel>(p_);
}

void
CacheResidentKernel::emit(util::Rng& rng, std::uint64_t,
                          sim::TraceRecord& out)
{
    std::uint64_t block;
    if (pos_ != 0 && rng.chance(p_.temporal_fraction)) {
        // Short spatial run: continue from the previous block (table
        // rows, neighbouring tree nodes). Gives stride/BO something
        // real to chew on without temporal correlation.
        block = (last_block_ + 1) % p_.footprint_blocks;
    } else {
        // Zipf-weighted reuse over the resident set: hot entries are
        // re-touched constantly, cold ones rarely — a *smooth* miss
        // curve under shrinking capacity (real table-driven codes
        // degrade gradually, not over a cliff), and a visit order that
        // never recurs, so temporal prefetchers find nothing stable.
        std::uint64_t rank = rng.next_zipf(p_.footprint_blocks, 0.6);
        block = util::mix64(rank * 131 + p_.seed) % p_.footprint_blocks;
    }
    last_block_ = block;
    ++pos_;
    out.pc = p_.pc_base + (block % p_.pcs) * 4;
    out.addr = p_.base + block * sim::BLOCK_SIZE;
    out.is_write = rng.chance(0.15);
    out.nonmem_before = jitter(rng, 4, 10);
    out.dep_distance = 0;
}

// --------------------------------------------------------------------
// BTreeProbeKernel
// --------------------------------------------------------------------

BTreeProbeKernel::BTreeProbeKernel(Params p) : p_(p)
{
    TRIAGE_ASSERT(p_.levels >= 2 && p_.fanout >= 2);
    // Node-id space: level l holds fanout^l nodes (capped so deep
    // trees do not overflow); level_base_[l] is the first id.
    level_base_.resize(p_.levels);
    std::uint64_t base_id = 0;
    std::uint64_t width = 1;
    for (std::uint32_t l = 0; l < p_.levels; ++l) {
        level_base_[l] = base_id;
        base_id += width;
        if (width < (1ULL << 40) / p_.fanout)
            width *= p_.fanout;
    }
}

std::uint64_t
BTreeProbeKernel::node_at(std::uint64_t key, std::uint32_t level) const
{
    if (level == 0)
        return level_base_[0]; // the root
    // The path is a stable function of the key: the same key always
    // walks the same nodes (what a real search does).
    std::uint64_t width = 1;
    for (std::uint32_t l = 0; l < level; ++l)
        width = std::min<std::uint64_t>(width * p_.fanout, 1ULL << 40);
    return level_base_[level] +
           util::mix64(key * 131 + level + p_.seed) % width;
}

void
BTreeProbeKernel::reset()
{
    key_ = 0;
    level_ = 0;
    scan_cursor_ = 0;
}

std::unique_ptr<Kernel>
BTreeProbeKernel::clone() const
{
    return std::make_unique<BTreeProbeKernel>(p_);
}

void
BTreeProbeKernel::emit(util::Rng& rng, std::uint64_t,
                       sim::TraceRecord& out)
{
    if (level_ == 0) {
        if (rng.chance(p_.point_query_prob)) {
            // Point query: Zipf-popular key scattered over id space.
            std::uint64_t rank = rng.next_zipf(p_.keys, p_.zipf_s);
            key_ = util::mix64(rank * 17 + p_.seed) % p_.keys;
        } else {
            // Index scan: the probe order recurs lap after lap, which
            // is what a temporal prefetcher can learn.
            key_ = scan_cursor_;
            scan_cursor_ = (scan_cursor_ + 1) % p_.keys;
            scan_chained_ = true;
        }
    }
    // One traversal loop = one load PC for every level (the realistic
    // shape); PC-localized pairs then chain root -> inner -> leaf of
    // the same probe, which recurs for hot keys.
    out.pc = p_.pc_base;
    out.addr = p_.base + node_at(key_, level_) * sim::BLOCK_SIZE;
    out.is_write = false;
    out.nonmem_before = jitter(rng, p_.nonmem_min, p_.nonmem_max);
    // Each level's node address comes from the previous node's child
    // pointer: a true dependent chain. Scan probes additionally chase
    // the previous probe's leaf sibling pointer (B+-tree leaf chain),
    // so consecutive scan probes serialize end to end.
    if (level_ == 0)
        out.dep_distance = scan_chained_ ? 1 : 0;
    else
        out.dep_distance = 1;
    if (++level_ >= p_.levels) {
        level_ = 0;
        scan_chained_ = false;
    }
}

} // namespace triage::workloads
