/**
 * @file
 * Access-pattern kernels: the building blocks of the synthetic
 * benchmark analogs (see DESIGN.md Section 2 for the substitution
 * argument). Each kernel is a deterministic state machine that emits
 * one memory reference at a time; benchmarks compose kernels with
 * mixing weights.
 */
#ifndef TRIAGE_WORKLOADS_KERNELS_HPP
#define TRIAGE_WORKLOADS_KERNELS_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/trace.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace triage::workloads {

/**
 * One access-pattern generator. Kernels receive the global record
 * sequence number so they can encode load-dependency distances, and a
 * shared RNG so composition stays deterministic.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Emit the next reference (out.pc/addr/flags). */
    virtual void emit(util::Rng& rng, std::uint64_t seq,
                      sim::TraceRecord& out) = 0;

    /** Rewind to initial state (same stream again). */
    virtual void reset() = 0;

    virtual std::unique_ptr<Kernel> clone() const = 0;
};

/**
 * Multi-chain pointer chase over a mutating successor network
 * (mcf/omnetpp-style). Each chain is traversed with one PC and true
 * load-to-load dependencies; the traversal order recurs across laps,
 * which is exactly the PC-localized temporal correlation Triage
 * learns. A small mutation rate relinks nodes to exercise confidence
 * bits and metadata replacement.
 */
class PointerChaseKernel final : public Kernel
{
  public:
    struct Params {
        std::uint32_t nodes = 1u << 20;   ///< footprint = nodes * 64 B
        std::uint32_t chains = 4;         ///< independent dependent chains
        double mutate_prob = 0.0;         ///< per-step relink probability
        /**
         * Zipf exponent skewing how often each chain is visited
         * (0 = round-robin). Skewed visits concentrate metadata reuse
         * in a few chains, reproducing Figure 1's reuse distribution.
         */
        double chain_skew = 0.0;
        std::uint8_t nonmem_min = 6;
        std::uint8_t nonmem_max = 12;
        sim::Addr base = 0x100000000ULL;
        sim::Pc pc_base = 0x400000;
        std::uint64_t seed = 7;
    };

    explicit PointerChaseKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    void build();

    Params p_;
    std::vector<std::uint32_t> next_;
    std::vector<std::uint32_t> cur_;       ///< per-chain position
    std::vector<std::uint64_t> last_seq_;  ///< per-chain last record seq
    std::uint32_t rr_ = 0;
    util::Rng mutate_rng_;
};

/**
 * Fixed pseudo-random scan replayed every pass (sphinx3-style model
 * evaluation): a long irregular sequence, stable across iterations,
 * partitioned over several PCs so PC localization pays off. No load
 * dependencies — high MLP, coverage-limited only by metadata capacity.
 */
class RepeatedScanKernel final : public Kernel
{
  public:
    struct Params {
        std::uint32_t entries = 1u << 20;   ///< sequence length
        std::uint32_t space_blocks = 1u << 20; ///< footprint in blocks
        std::uint32_t pcs = 4;
        std::uint8_t nonmem_min = 8;
        std::uint8_t nonmem_max = 16;
        sim::Addr base = 0x200000000ULL;
        sim::Pc pc_base = 0x410000;
        std::uint64_t seed = 11;
    };

    explicit RepeatedScanKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    sim::Addr addr_at(std::uint64_t i) const;

    Params p_;
    std::uint64_t pos_ = 0;
};

/**
 * CSR sparse matrix-vector product, repeated (soplex-style): streaming
 * row/col arrays plus irregular-but-recurring gathers from the dense
 * vector.
 */
class SparseMatVecKernel final : public Kernel
{
  public:
    struct Params {
        std::uint32_t rows = 1u << 16;
        std::uint32_t nnz_per_row = 8;
        std::uint32_t x_blocks = 1u << 19; ///< dense-vector footprint
        /**
         * Fraction of gathers serialized on the previous gather
         * (accumulation chains, bank conflicts, branch repair): keeps
         * the baseline latency-sensitive rather than purely MLP-bound.
         */
        double serial_prob = 0.3;
        std::uint8_t nonmem_min = 6;
        std::uint8_t nonmem_max = 12;
        sim::Addr base = 0x300000000ULL;
        sim::Pc pc_base = 0x420000;
        std::uint64_t seed = 13;
    };

    explicit SparseMatVecKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    std::uint32_t col_of(std::uint64_t flat_index) const;

    Params p_;
    std::uint32_t row_ = 0;
    std::uint32_t k_ = 0;     ///< nnz index within row
    std::uint32_t phase_ = 0; ///< 0: col load, 1: x gather
};

/**
 * Graph traversal in a fixed iteration order (astar/gcc-style): node
 * record, sequential edge list, then the (irregular, recurring) data
 * of each neighbour.
 */
class GraphWalkKernel final : public Kernel
{
  public:
    struct Params {
        std::uint32_t nodes = 1u << 17;
        std::uint32_t degree = 6;
        sim::Addr base = 0x400000000ULL;
        sim::Pc pc_base = 0x430000;
        std::uint64_t seed = 17;
    };

    explicit GraphWalkKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    std::uint32_t order_at(std::uint32_t i) const;
    std::uint32_t edge_target(std::uint32_t node, std::uint32_t e) const;

    Params p_;
    std::uint32_t visit_ = 0; ///< position in the iteration order
    std::uint32_t edge_ = 0;
    std::uint32_t phase_ = 0; ///< 0: node, 1: edge list, 2: neighbour
};

/**
 * Sequential/strided streaming over large arrays (libquantum/lbm-style
 * regular benchmarks). With shift_per_pass != 0, every pass visits a
 * fresh window, making misses compulsory — the case temporal
 * prefetchers cannot cover but BO can.
 */
class StreamingKernel final : public Kernel
{
  public:
    struct Params {
        std::uint32_t arrays = 4;
        std::uint64_t array_blocks = 1u << 22; ///< per-array footprint
        std::uint64_t window_blocks = 1u << 16; ///< blocks per pass
        std::uint32_t stride_blocks = 1;
        std::uint64_t shift_per_pass = 1u << 16; ///< fresh data per pass
        std::uint8_t nonmem_min = 2;
        std::uint8_t nonmem_max = 8;
        double store_ratio = 0.2;
        sim::Addr base = 0x500000000ULL;
        sim::Pc pc_base = 0x440000;
        std::uint64_t seed = 19;
    };

    explicit StreamingKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    Params p_;
    std::uint32_t arr_ = 0;
    std::uint64_t idx_ = 0;
    std::uint64_t pass_ = 0;
};

/**
 * Spatially-correlated region footprints (SMS's home turf, used by the
 * nutch/streaming CloudSuite analogs): regions are visited in a
 * non-recurring order, but each region's footprint is a stable
 * function of the PC+offset that first touches it.
 */
class FootprintKernel final : public Kernel
{
  public:
    struct Params {
        std::uint32_t region_blocks = 32; ///< 2 KB regions
        std::uint64_t regions = 1u << 16;
        std::uint32_t patterns = 64; ///< distinct footprint shapes
        double density = 0.4;        ///< fraction of region touched
        bool recur = false;          ///< revisit same region sequence
        sim::Addr base = 0x600000000ULL;
        sim::Pc pc_base = 0x450000;
        std::uint64_t seed = 23;
    };

    explicit FootprintKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    std::uint32_t pattern_of(std::uint64_t region) const;

    Params p_;
    std::vector<std::uint32_t> patterns_; ///< bitmap per pattern id
    std::uint64_t visit_ = 0;
    std::uint64_t region_ = 0;
    std::uint32_t bit_ = 0;
    std::uint64_t pass_ = 0;
};

/**
 * Zipf-popular hash-table probes (server-cache behaviour): hot keys
 * hit in the cache hierarchy, cold keys miss unpredictably. Temporal
 * correlation is weak by construction — a prefetcher that fires here
 * mostly wastes bandwidth.
 */
class ZipfHashKernel final : public Kernel
{
  public:
    struct Params {
        std::uint64_t buckets = 1u << 20;
        double zipf_s = 0.9;
        std::uint32_t probe_blocks = 2; ///< blocks touched per probe
        sim::Addr base = 0x700000000ULL;
        sim::Pc pc_base = 0x460000;
        std::uint64_t seed = 29;
    };

    explicit ZipfHashKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    Params p_;
    std::uint64_t bucket_ = 0;
    std::uint32_t step_ = 0;
};

/**
 * B-tree index probes (database/key-value lookups): each probe walks
 * root -> inner -> leaf with true pointer dependencies. The root and
 * hot inner nodes cache well; leaves are the irregular tail. Probe
 * keys recur under a Zipf distribution, so *partial* temporal
 * correlation exists (hot probe paths repeat; cold ones are
 * effectively compulsory) — the access pattern ISB/MISB's evaluations
 * lean on.
 */
class BTreeProbeKernel final : public Kernel
{
  public:
    struct Params {
        std::uint32_t levels = 4;          ///< tree depth (>= 2)
        std::uint32_t fanout = 16;         ///< children per node
        std::uint64_t keys = 1u << 16;     ///< distinct probe keys
        double zipf_s = 0.8;               ///< probe-key popularity
        /**
         * Fraction of probes that are random point queries; the rest
         * advance a sequential scan cursor (range scans / index scans
         * whose probe order recurs lap after lap).
         */
        double point_query_prob = 0.25;
        std::uint8_t nonmem_min = 6;
        std::uint8_t nonmem_max = 12;
        sim::Addr base = 0x900000000ULL;
        sim::Pc pc_base = 0x480000;
        std::uint64_t seed = 37;
    };

    explicit BTreeProbeKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    /** Node index visited at @p level for @p key (stable mapping). */
    std::uint64_t node_at(std::uint64_t key, std::uint32_t level) const;

    Params p_;
    std::uint64_t key_ = 0;
    std::uint32_t level_ = 0;
    std::uint64_t scan_cursor_ = 0;
    bool scan_chained_ = false; ///< probe entered via leaf sibling link
    std::vector<std::uint64_t> level_base_; ///< first node id per level
};

/**
 * Small-working-set compute kernel (cache-resident data, bzip2-style):
 * accesses recur heavily inside a footprint comparable to the LLC.
 * Repurposing LLC ways for metadata hurts here — the Figure 8 bzip2
 * case the dynamic partition must avoid (and the static one cannot).
 */
class CacheResidentKernel final : public Kernel
{
  public:
    struct Params {
        std::uint64_t footprint_blocks = 28 * 1024; ///< ~1.75 MB
        std::uint32_t pcs = 6;
        /** Probability of continuing a short sequential run instead of
         *  drawing a fresh Zipf-popular block. */
        double temporal_fraction = 0.5;
        sim::Addr base = 0x800000000ULL;
        sim::Pc pc_base = 0x470000;
        std::uint64_t seed = 31;
    };

    explicit CacheResidentKernel(Params p);

    void emit(util::Rng& rng, std::uint64_t seq,
              sim::TraceRecord& out) override;
    void reset() override;
    std::unique_ptr<Kernel> clone() const override;

  private:
    Params p_;
    std::uint64_t pos_ = 0;
    std::uint64_t last_block_ = 0;
};

} // namespace triage::workloads

#endif // TRIAGE_WORKLOADS_KERNELS_HPP
