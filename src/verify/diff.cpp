#include "verify/diff.hpp"

namespace triage::verify {

namespace {

/** Accumulates named field mismatches under a dotted prefix. */
class Differ
{
  public:
    explicit Differ(std::vector<std::string>& out) : out_(out) {}

    template <typename T>
    void
    field(const std::string& name, const T& a, const T& b)
    {
        if (a != b) {
            out_.push_back(name + ": " + std::to_string(a) + " vs " +
                           std::to_string(b));
        }
    }

    void
    cache(const std::string& p, const cache::CacheStats& a,
          const cache::CacheStats& b)
    {
        field(p + ".demand_hits", a.demand_hits, b.demand_hits);
        field(p + ".demand_misses", a.demand_misses, b.demand_misses);
        field(p + ".pf_probe_hits", a.pf_probe_hits, b.pf_probe_hits);
        field(p + ".pf_probe_misses", a.pf_probe_misses,
              b.pf_probe_misses);
        field(p + ".prefetch_hits", a.prefetch_hits, b.prefetch_hits);
        field(p + ".late_prefetch_hits", a.late_prefetch_hits,
              b.late_prefetch_hits);
        field(p + ".evictions", a.evictions, b.evictions);
        field(p + ".dirty_evictions", a.dirty_evictions,
              b.dirty_evictions);
        field(p + ".unused_prefetch_evictions",
              a.unused_prefetch_evictions, b.unused_prefetch_evictions);
    }

    void
    prefetcher(const std::string& p, const prefetch::PrefetcherStats& a,
               const prefetch::PrefetcherStats& b)
    {
        field(p + ".train_events", a.train_events, b.train_events);
        field(p + ".candidates", a.candidates, b.candidates);
        field(p + ".redundant", a.redundant, b.redundant);
        field(p + ".filled_from_llc", a.filled_from_llc,
              b.filled_from_llc);
        field(p + ".issued_to_dram", a.issued_to_dram, b.issued_to_dram);
        field(p + ".dropped", a.dropped, b.dropped);
        field(p + ".useful", a.useful, b.useful);
        field(p + ".late", a.late, b.late);
        field(p + ".meta_onchip_reads", a.meta_onchip_reads,
              b.meta_onchip_reads);
        field(p + ".meta_onchip_writes", a.meta_onchip_writes,
              b.meta_onchip_writes);
        field(p + ".meta_offchip_reads", a.meta_offchip_reads,
              b.meta_offchip_reads);
        field(p + ".meta_offchip_writes", a.meta_offchip_writes,
              b.meta_offchip_writes);
    }

  private:
    std::vector<std::string>& out_;
};

} // namespace

std::vector<std::string>
diff_results(const sim::RunResult& a, const sim::RunResult& b)
{
    std::vector<std::string> out;
    Differ d(out);

    if (a.per_core.size() != b.per_core.size()) {
        out.push_back("per_core.size: " +
                      std::to_string(a.per_core.size()) + " vs " +
                      std::to_string(b.per_core.size()));
        return out;
    }
    d.field("span", a.span, b.span);
    for (std::size_t c = 0; c < a.per_core.size(); ++c) {
        const std::string p = "core" + std::to_string(c);
        const sim::RunStats& x = a.per_core[c];
        const sim::RunStats& y = b.per_core[c];
        d.field(p + ".instructions", x.instructions, y.instructions);
        d.field(p + ".mem_records", x.mem_records, y.mem_records);
        d.field(p + ".cycles", x.cycles, y.cycles);
        d.cache(p + ".l1", x.l1, y.l1);
        d.cache(p + ".l2", x.l2, y.l2);
        d.prefetcher(p + ".l2pf", x.l2pf, y.l2pf);
        d.prefetcher(p + ".l1_stride", x.l1_stride, y.l1_stride);
        d.field(p + ".energy.onchip", x.energy.onchip_accesses,
                y.energy.onchip_accesses);
        d.field(p + ".energy.offchip", x.energy.offchip_accesses,
                y.energy.offchip_accesses);
        d.field(p + ".avg_metadata_ways", x.avg_metadata_ways,
                y.avg_metadata_ways);
    }
    d.cache("llc", a.llc, b.llc);
    for (std::size_t i = 0; i < a.traffic.bytes.size(); ++i) {
        d.field("traffic.bytes[" + std::to_string(i) + "]",
                a.traffic.bytes[i], b.traffic.bytes[i]);
    }
    return out;
}

} // namespace triage::verify
