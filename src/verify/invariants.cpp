#include "verify/invariants.hpp"

#include <ostream>

#include "cache/hierarchy.hpp"
#include "obs/lifecycle.hpp"
#include "triage/triage.hpp"

namespace triage::verify {

namespace {

void
write_escaped(std::ostream& os, const std::string& s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void
InvariantSuite::clear()
{
    checkers_.clear();
    partition_prev_.clear();
    checks_ = 0;
    violations_ = 0;
    recorded_.clear();
}

void
InvariantSuite::add_checker(std::string name, CheckFn fn)
{
    checkers_.push_back({std::move(name), std::move(fn)});
}

void
InvariantSuite::attach(cache::MemorySystem& mem)
{
    clear();
    cache::MemorySystem* m = &mem;

    for (unsigned i = 0; i < mem.num_cores(); ++i) {
        const std::string core = "core" + std::to_string(i);
        add_checker(core + ".l1.cache",
                    [m, i](const ReportFn& r) { m->l1(i).self_check(r); });
        add_checker(core + ".l2.cache",
                    [m, i](const ReportFn& r) { m->l2(i).self_check(r); });
    }
    add_checker("llc.cache",
                [m](const ReportFn& r) { m->llc().self_check(r); });

    partition_prev_.assign(mem.num_cores(), PartitionSnap{});
    for (unsigned i = 0; i < mem.num_cores(); ++i) {
        const auto* tri =
            dynamic_cast<const core::Triage*>(mem.prefetcher(i));
        if (tri == nullptr)
            continue;
        const std::string core = "core" + std::to_string(i);
        add_checker(core + ".triage.store", [tri](const ReportFn& r) {
            tri->store().self_check(r);
        });
        const core::PartitionController* pc = tri->partition();
        if (pc == nullptr)
            continue;
        add_checker(core + ".triage.partition",
                    [pc](const ReportFn& r) { pc->self_check(r); });
        // Cross-epoch transition legality: the controller can only move
        // the level through a counted change, and the cooldown clock
        // only rises when the utility gate fires.
        PartitionSnap* prev = &partition_prev_[i];
        add_checker(core + ".triage.partition.transitions",
                    [pc, prev](const ReportFn& r) {
            const auto& ds = pc->decision_stats();
            PartitionSnap cur;
            cur.valid = true;
            cur.level = pc->level();
            cur.cooldown = pc->cooldown();
            cur.epochs = pc->epochs();
            cur.changes = ds.changes;
            cur.gate_fires = ds.gate_fires;
            if (prev->valid) {
                if (cur.epochs < prev->epochs ||
                    cur.changes < prev->changes ||
                    cur.gate_fires < prev->gate_fires) {
                    r("partition counters moved backwards between "
                      "sweeps");
                }
                if (cur.level != prev->level &&
                    cur.changes == prev->changes) {
                    r("partition level moved " +
                      std::to_string(prev->level) + " -> " +
                      std::to_string(cur.level) +
                      " without a counted change");
                }
                if (cur.cooldown > prev->cooldown &&
                    cur.gate_fires == prev->gate_fires) {
                    r("partition cooldown rose " +
                      std::to_string(prev->cooldown) + " -> " +
                      std::to_string(cur.cooldown) +
                      " without a gate fire");
                }
            }
            *prev = cur;
        });
    }

    // Lifecycle conservation: every opened record is either closed or
    // still open, so the classes plus the open set always reconcile
    // with the issue count (the tracker header's core invariant).
    add_checker("lifecycle.class_sum", [m](const ReportFn& r) {
        const obs::LifecycleTracker* lc = m->lifecycle();
        if (lc == nullptr || !lc->enabled())
            return;
        const obs::LifecycleCounts t = lc->total();
        if (t.closed() + lc->open_records() != t.issued) {
            r("lifecycle classes (" + std::to_string(t.closed()) +
              " closed + " + std::to_string(lc->open_records()) +
              " open) do not sum to issued " +
              std::to_string(t.issued));
        }
        for (unsigned i = 0; i < lc->num_cores(); ++i) {
            const obs::LifecycleCounts& c = lc->core_counts(i);
            if (c.closed() > c.issued) {
                r("core " + std::to_string(i) + " closed " +
                  std::to_string(c.closed()) + " records but issued " +
                  std::to_string(c.issued));
            }
        }
    });
}

void
InvariantSuite::sweep()
{
    for (const Checker& c : checkers_) {
        ++checks_;
        const Checker* cp = &c;
        c.fn([this, cp](const std::string& msg) {
            ++violations_;
            if (recorded_.size() < MAX_RECORDED)
                recorded_.push_back({cp->name, msg});
        });
    }
}

void
InvariantSuite::write_json(std::ostream& os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string pad2 = pad + "  ";
    const std::string pad4 = pad2 + "  ";
    os << "{\n";
    os << pad2 << "\"checks\": " << checks_ << ",\n";
    os << pad2 << "\"violations\": " << violations_ << ",\n";
    os << pad2 << "\"failures\": [";
    for (std::size_t i = 0; i < recorded_.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << pad4 << "{\"checker\": ";
        write_escaped(os, recorded_[i].checker);
        os << ", \"message\": ";
        write_escaped(os, recorded_[i].message);
        os << "}";
    }
    if (!recorded_.empty())
        os << "\n" << pad2;
    os << "]\n" << pad << "}";
}

} // namespace triage::verify
