/**
 * @file
 * Field-by-field RunResult comparison for the differential-fidelity
 * suite (tools/diff_fidelity, tests/test_verify.cpp). Two runs that
 * should be indistinguishable — degree-0 Triage vs no prefetcher, a
 * 1-program mix vs the single-core system, split vs unsplit trace
 * replay, parallel vs serial lab execution — must agree on every
 * timing-visible statistic; the comparator names each field that does
 * not so a failure reads as a diagnosis, not a boolean.
 */
#ifndef TRIAGE_VERIFY_DIFF_HPP
#define TRIAGE_VERIFY_DIFF_HPP

#include <string>
#include <vector>

#include "sim/run_stats.hpp"

namespace triage::verify {

/**
 * Compare two runs field by field.
 * @return one human-readable line per differing field ("<field>: A vs
 *         B"), empty when the runs are stat-identical.
 */
std::vector<std::string> diff_results(const sim::RunResult& a,
                                      const sim::RunResult& b);

} // namespace triage::verify

#endif // TRIAGE_VERIFY_DIFF_HPP
