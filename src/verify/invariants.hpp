/**
 * @file
 * The concrete invariant suite behind obs::RunVerifier
 * (docs/verification.md).
 *
 * attach() walks the memory system and registers one named checker per
 * component: cache tag/LRU consistency (SetAssocCache::self_check),
 * metadata-store entry/key conservation (MetadataStore::self_check),
 * partition-controller state legality and OPTgen occupancy bounds
 * (PartitionController::self_check), cross-epoch partition transitions
 * (level moves only with a counted change, cooldown only rises when
 * the gate fires), and the prefetch-lifecycle class sum. The run loop
 * then calls on_epoch() at every epoch boundary and on_run_end() once
 * after drain; each sweep runs every checker and records violations
 * (messages capped, counts exact).
 */
#ifndef TRIAGE_VERIFY_INVARIANTS_HPP
#define TRIAGE_VERIFY_INVARIANTS_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/observer.hpp"

namespace triage::verify {

/** One recorded invariant failure. */
struct Violation {
    std::string checker; ///< name of the checker that reported it
    std::string message;
};

/** The registered-checker invariant harness. */
class InvariantSuite final : public obs::RunVerifier
{
  public:
    /** Violation messages kept verbatim; the count is always exact. */
    static constexpr std::size_t MAX_RECORDED = 64;

    using ReportFn = std::function<void(const std::string&)>;
    using CheckFn = std::function<void(const ReportFn&)>;

    /**
     * Drop all checkers and results, then register the component
     * checkers for @p mem. Called by attach_observability() at
     * measurement start, so re-running a system re-arms the suite.
     */
    void attach(cache::MemorySystem& mem) override;

    void on_epoch() override { sweep(); }
    void on_run_end() override { sweep(); }

    std::uint64_t checks_run() const override { return checks_; }
    std::uint64_t violations() const override { return violations_; }
    void write_json(std::ostream& os, int indent = 0) const override;

    /** Register an extra checker under @p name (tests, experiments). */
    void add_checker(std::string name, CheckFn fn);

    /** Run every registered checker once, outside the run loop. */
    void sweep();

    /** The first MAX_RECORDED violations, in discovery order. */
    const std::vector<Violation>& recorded() const { return recorded_; }

    /** Forget checkers, results and cross-epoch snapshots. */
    void clear();

  private:
    /** Cross-epoch partition-controller state, one per attached core. */
    struct PartitionSnap {
        bool valid = false;
        std::uint32_t level = 0;
        std::uint32_t cooldown = 0;
        std::uint64_t epochs = 0;
        std::uint64_t changes = 0;
        std::uint64_t gate_fires = 0;
    };

    struct Checker {
        std::string name;
        CheckFn fn;
    };

    std::vector<Checker> checkers_;
    std::vector<PartitionSnap> partition_prev_;
    std::uint64_t checks_ = 0;
    std::uint64_t violations_ = 0;
    std::vector<Violation> recorded_;
};

} // namespace triage::verify

#endif // TRIAGE_VERIFY_INVARIANTS_HPP
