#include "stats/metrics.hpp"

#include <cmath>
#include <limits>

#include "util/log.hpp"

namespace triage::stats {

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 1.0;
    // Non-positive or non-finite entries (a hung baseline's 0 IPC, a
    // 0/0 ratio) would poison every other value via log(); skip them,
    // but never silently — a dropped entry changes the mean's meaning.
    double log_sum = 0;
    std::size_t n = 0;
    for (double v : values) {
        if (!std::isfinite(v) || v <= 0.0)
            continue;
        log_sum += std::log(v);
        ++n;
    }
    if (n < values.size()) {
        TRIAGE_LOG_WARN("geomean: skipped ", values.size() - n,
                        " non-positive/non-finite of ", values.size(),
                        " entries");
    }
    if (n == 0)
        return 1.0;
    return std::exp(log_sum / static_cast<double>(n));
}

double
speedup(const sim::RunResult& with_pf, const sim::RunResult& baseline)
{
    TRIAGE_ASSERT(with_pf.per_core.size() == baseline.per_core.size());
    std::vector<double> ratios;
    ratios.reserve(with_pf.per_core.size());
    for (std::size_t c = 0; c < with_pf.per_core.size(); ++c) {
        double base_ipc = baseline.per_core[c].ipc();
        double pf_ipc = with_pf.per_core[c].ipc();
        if (base_ipc == 0.0) {
            // No meaningful ratio; geomean() skips the non-finite
            // placeholder rather than returning inf.
            util::warn(util::format_msg(
                "speedup: core ", c,
                " baseline IPC is zero; core excluded from geomean"));
            ratios.push_back(std::numeric_limits<double>::infinity());
        } else if (pf_ipc == 0.0) {
            // A core that retired nothing WITH prefetching enabled is
            // almost certainly a broken/hung prefetcher run, not a
            // slow one. The zero ratio is excluded from the geomean
            // (log(0) would poison it), so shout: the reported speedup
            // overstates reality.
            util::warn(util::format_msg(
                "speedup: core ", c,
                " IPC is zero with prefetching enabled (hung run?); "
                "core excluded from geomean — result overstated"));
            ratios.push_back(0.0);
        } else {
            ratios.push_back(pf_ipc / base_ipc);
        }
    }
    return geomean(ratios);
}

std::uint64_t
total_traffic(const sim::RunResult& r)
{
    return r.traffic.total();
}

double
traffic_overhead(const sim::RunResult& with_pf,
                 const sim::RunResult& baseline)
{
    double base = static_cast<double>(total_traffic(baseline));
    if (base == 0)
        return 0;
    return (static_cast<double>(total_traffic(with_pf)) - base) / base;
}

double
miss_reduction(const sim::RunResult& with_pf,
               const sim::RunResult& baseline)
{
    std::uint64_t base = 0;
    std::uint64_t pf = 0;
    for (const auto& c : baseline.per_core)
        base += c.l2.demand_misses;
    for (const auto& c : with_pf.per_core)
        pf += c.l2.demand_misses;
    if (base == 0)
        return 0;
    return (static_cast<double>(base) - static_cast<double>(pf)) /
           static_cast<double>(base);
}

double
avg_coverage(const sim::RunResult& r)
{
    if (r.per_core.empty())
        return 0.0;
    double sum = 0;
    for (const auto& c : r.per_core)
        sum += c.coverage();
    return sum / static_cast<double>(r.per_core.size());
}

double
avg_accuracy(const sim::RunResult& r)
{
    if (r.per_core.empty())
        return 0.0;
    double sum = 0;
    for (const auto& c : r.per_core)
        sum += c.accuracy();
    return sum / static_cast<double>(r.per_core.size());
}

} // namespace triage::stats
