#include "stats/metrics.hpp"

#include <cmath>

#include "util/log.hpp"

namespace triage::stats {

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
speedup(const sim::RunResult& with_pf, const sim::RunResult& baseline)
{
    TRIAGE_ASSERT(with_pf.per_core.size() == baseline.per_core.size());
    std::vector<double> ratios;
    ratios.reserve(with_pf.per_core.size());
    for (std::size_t c = 0; c < with_pf.per_core.size(); ++c)
        ratios.push_back(with_pf.per_core[c].ipc() /
                         baseline.per_core[c].ipc());
    return geomean(ratios);
}

std::uint64_t
total_traffic(const sim::RunResult& r)
{
    return r.traffic.total();
}

double
traffic_overhead(const sim::RunResult& with_pf,
                 const sim::RunResult& baseline)
{
    double base = static_cast<double>(total_traffic(baseline));
    if (base == 0)
        return 0;
    return (static_cast<double>(total_traffic(with_pf)) - base) / base;
}

double
miss_reduction(const sim::RunResult& with_pf,
               const sim::RunResult& baseline)
{
    std::uint64_t base = 0;
    std::uint64_t pf = 0;
    for (const auto& c : baseline.per_core)
        base += c.l2.demand_misses;
    for (const auto& c : with_pf.per_core)
        pf += c.l2.demand_misses;
    if (base == 0)
        return 0;
    return (static_cast<double>(base) - static_cast<double>(pf)) /
           static_cast<double>(base);
}

double
avg_coverage(const sim::RunResult& r)
{
    double sum = 0;
    for (const auto& c : r.per_core)
        sum += c.coverage();
    return sum / static_cast<double>(r.per_core.size());
}

double
avg_accuracy(const sim::RunResult& r)
{
    double sum = 0;
    for (const auto& c : r.per_core)
        sum += c.accuracy();
    return sum / static_cast<double>(r.per_core.size());
}

} // namespace triage::stats
