#include "stats/metrics.hpp"

#include <cmath>
#include <limits>

#include "util/log.hpp"

namespace triage::stats {

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 1.0;
    // Non-positive or non-finite entries (a hung baseline's 0 IPC, a
    // 0/0 ratio) would poison every other value via log(); skip them.
    double log_sum = 0;
    std::size_t n = 0;
    for (double v : values) {
        if (!std::isfinite(v) || v <= 0.0)
            continue;
        log_sum += std::log(v);
        ++n;
    }
    if (n == 0)
        return 1.0;
    return std::exp(log_sum / static_cast<double>(n));
}

double
speedup(const sim::RunResult& with_pf, const sim::RunResult& baseline)
{
    TRIAGE_ASSERT(with_pf.per_core.size() == baseline.per_core.size());
    std::vector<double> ratios;
    ratios.reserve(with_pf.per_core.size());
    for (std::size_t c = 0; c < with_pf.per_core.size(); ++c) {
        double base_ipc = baseline.per_core[c].ipc();
        // A zero-IPC baseline core has no meaningful ratio; geomean()
        // skips the non-finite placeholder rather than returning inf.
        ratios.push_back(base_ipc == 0.0
                             ? std::numeric_limits<double>::infinity()
                             : with_pf.per_core[c].ipc() / base_ipc);
    }
    return geomean(ratios);
}

std::uint64_t
total_traffic(const sim::RunResult& r)
{
    return r.traffic.total();
}

double
traffic_overhead(const sim::RunResult& with_pf,
                 const sim::RunResult& baseline)
{
    double base = static_cast<double>(total_traffic(baseline));
    if (base == 0)
        return 0;
    return (static_cast<double>(total_traffic(with_pf)) - base) / base;
}

double
miss_reduction(const sim::RunResult& with_pf,
               const sim::RunResult& baseline)
{
    std::uint64_t base = 0;
    std::uint64_t pf = 0;
    for (const auto& c : baseline.per_core)
        base += c.l2.demand_misses;
    for (const auto& c : with_pf.per_core)
        pf += c.l2.demand_misses;
    if (base == 0)
        return 0;
    return (static_cast<double>(base) - static_cast<double>(pf)) /
           static_cast<double>(base);
}

double
avg_coverage(const sim::RunResult& r)
{
    if (r.per_core.empty())
        return 0.0;
    double sum = 0;
    for (const auto& c : r.per_core)
        sum += c.coverage();
    return sum / static_cast<double>(r.per_core.size());
}

double
avg_accuracy(const sim::RunResult& r)
{
    if (r.per_core.empty())
        return 0.0;
    double sum = 0;
    for (const auto& c : r.per_core)
        sum += c.accuracy();
    return sum / static_cast<double>(r.per_core.size());
}

} // namespace triage::stats
