#include "stats/report.hpp"

#include <ostream>
#include <sstream>

#include "obs/observer.hpp"
#include "obs/profile.hpp"

namespace triage::stats {

namespace {

/** Doubles serialized with enough precision to round-trip metrics. */
std::string
num(double v)
{
    std::ostringstream os;
    os.precision(10);
    os << v;
    return os.str();
}

} // namespace

void
write_json(std::ostream& os, const sim::RunResult& r)
{
    os << "{\n  \"cores\": [\n";
    for (std::size_t c = 0; c < r.per_core.size(); ++c) {
        const auto& s = r.per_core[c];
        os << "    {\"ipc\": " << num(s.ipc())
           << ", \"instructions\": " << s.instructions
           << ", \"cycles\": " << s.cycles
           << ", \"mem_records\": " << s.mem_records
           << ",\n     \"l1_misses\": " << s.l1.demand_misses
           << ", \"l2_misses\": " << s.l2.demand_misses
           << ", \"coverage\": " << num(s.coverage())
           << ", \"accuracy\": " << num(s.accuracy())
           << ",\n     \"pf_issued\": " << s.l2pf.issued()
           << ", \"pf_useful\": " << s.l2pf.useful
           << ", \"pf_late\": " << s.l2pf.late
           << ", \"pf_dropped\": " << s.l2pf.dropped
           << ",\n     \"meta_onchip\": " << s.energy.onchip_accesses
           << ", \"meta_offchip\": " << s.energy.offchip_accesses
           << ", \"meta_ways\": " << num(s.avg_metadata_ways) << "}"
           << (c + 1 < r.per_core.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"llc\": {\"demand_hits\": " << r.llc.demand_hits
       << ", \"demand_misses\": " << r.llc.demand_misses << "},\n";
    const auto& t = r.traffic;
    os << "  \"traffic\": {\"demand\": "
       << t.of(sim::TrafficClass::DemandRead)
       << ", \"prefetch\": " << t.of(sim::TrafficClass::PrefetchRead)
       << ", \"writeback\": " << t.of(sim::TrafficClass::Writeback)
       << ", \"metadata_read\": "
       << t.of(sim::TrafficClass::MetadataRead)
       << ", \"metadata_write\": "
       << t.of(sim::TrafficClass::MetadataWrite)
       << ", \"total\": " << t.total() << "},\n";
    os << "  \"span_cycles\": " << r.span << "\n}\n";
}

std::string
to_json(const sim::RunResult& r)
{
    std::ostringstream os;
    write_json(os, r);
    return os.str();
}


void
write_stats_json(std::ostream& os, const sim::RunResult& r,
                 const obs::Observability* obs)
{
    os << "{\n\"run\": ";
    write_json(os, r);
    if (obs != nullptr) {
        os << ",\n\"epochs\": ";
        obs->sampler.write_json(os, 1);
        os << ",\n\"stats\": ";
        obs->registry.write_json(os, 1);
        if (obs->lifecycle.enabled()) {
            os << ",\n\"lifecycle\": ";
            obs->lifecycle.write_json(os, 1);
        }
        if (obs->partition_timeline.num_cores() > 0) {
            os << ",\n\"partition_timeline\": ";
            obs->partition_timeline.write_json(os, 1);
        }
        os << ",\n\"trace\": {\"enabled\": "
           << (obs->trace.enabled() ? "true" : "false")
           << ", \"total\": " << obs->trace.total()
           << ", \"buffered\": " << obs->trace.size()
           << ", \"dropped\": " << obs->trace.dropped() << "}";
        if (obs->verifier != nullptr) {
            os << ",\n\"verify\": ";
            obs->verifier->write_json(os, 1);
        }
    }
    // Strictly gated on the profiler being armed: golden runs compare
    // the whole JSON tree byte-for-byte, so the block must not appear
    // unless --profile asked for it.
    if (obs::prof::Profiler::armed()) {
        os << ",\n\"profile\": ";
        obs::prof::Profiler::instance().write_json(os, 1);
    }
    os << "\n}\n";
}

} // namespace triage::stats
