/**
 * @file
 * CSV emission for bench results: machine-readable output alongside
 * the human-readable tables, so figures can be re-plotted without
 * scraping text.
 */
#ifndef TRIAGE_STATS_CSV_HPP
#define TRIAGE_STATS_CSV_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace triage::stats {

/**
 * Minimal RFC-4180 CSV writer: quotes fields containing commas,
 * quotes, or newlines; doubles embedded quotes.
 */
class CsvWriter
{
  public:
    /** Write to @p os (kept by reference; must outlive the writer). */
    explicit CsvWriter(std::ostream& os);

    /** Emit one row. */
    void row(const std::vector<std::string>& cells);

    /** Escape one field per RFC 4180 (exposed for tests). */
    static std::string escape(const std::string& field);

  private:
    std::ostream& os_;
};

} // namespace triage::stats

#endif // TRIAGE_STATS_CSV_HPP
