/**
 * @file
 * Aligned plain-text table printer for bench output, plus small
 * number-formatting helpers so every figure harness reports the same
 * way (paper value vs measured value).
 */
#ifndef TRIAGE_STATS_TABLE_HPP
#define TRIAGE_STATS_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace triage::stats {

/** Simple column-aligned table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row (must match the header count). */
    void row(std::vector<std::string> cells);

    void print(std::ostream& os) const;

    /** Emit the same table as RFC-4180 CSV (header + rows). */
    void print_csv(std::ostream& os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "1.235" with @p decimals places. */
std::string fmt(double v, int decimals = 3);

/** "+23.5%" (signed percentage). */
std::string fmt_pct(double fraction, int decimals = 1);

/** "1.23x" speedup notation. */
std::string fmt_x(double ratio, int decimals = 3);

/** Print a section banner ("== Figure 5: ... =="). */
void banner(std::ostream& os, const std::string& title);

} // namespace triage::stats

#endif // TRIAGE_STATS_TABLE_HPP
