#include "stats/csv.hpp"

#include <ostream>

namespace triage::stats {

CsvWriter::CsvWriter(std::ostream& os) : os_(os) {}

std::string
CsvWriter::escape(const std::string& field)
{
    bool needs_quotes = field.find_first_of(",\"\n\r") !=
                        std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::row(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

} // namespace triage::stats
