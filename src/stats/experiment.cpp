#include "stats/experiment.hpp"

#include <cstring>

#include "prefetch/best_offset.hpp"
#include "prefetch/ghb_pcdc.hpp"
#include "prefetch/ghb_temporal.hpp"
#include "prefetch/hybrid.hpp"
#include "prefetch/markov.hpp"
#include "prefetch/misb.hpp"
#include "prefetch/next_line.hpp"
#include "prefetch/sms.hpp"
#include "triage/triage.hpp"
#include "util/log.hpp"

namespace triage::stats {

namespace {

std::unique_ptr<prefetch::Prefetcher>
make_one(const std::string& spec, std::uint32_t degree)
{
    using namespace prefetch;
    if (spec == "bo") {
        BestOffsetConfig cfg;
        cfg.degree = degree;
        return std::make_unique<BestOffset>(cfg);
    }
    if (spec == "sms")
        return std::make_unique<Sms>();
    if (spec == "markov")
        return std::make_unique<Markov>();
    if (spec == "stms" || spec == "domino") {
        GhbTemporalConfig cfg;
        cfg.mode = spec == "stms" ? GhbIndexMode::SingleAddress
                                  : GhbIndexMode::AddressPair;
        cfg.degree = degree;
        return std::make_unique<GhbTemporal>(cfg);
    }
    if (spec == "misb") {
        MisbConfig cfg;
        cfg.degree = degree;
        return std::make_unique<Misb>(cfg);
    }
    if (spec == "isb")
        return std::make_unique<Misb>(isb_config(degree));
    if (spec == "next_line") {
        NextLineConfig cfg;
        cfg.degree = degree;
        return std::make_unique<NextLine>(cfg);
    }
    if (spec == "ghb_pcdc") {
        GhbPcdcConfig cfg;
        cfg.degree = std::max(degree, 2u);
        return std::make_unique<GhbPcdc>(cfg);
    }
    if (spec.rfind("triage_", 0) == 0) {
        // Grammar: triage_<size|dyn|unlimited>[_lru][_free][_nocompress]
        //   size: <N>KB or <N>MB static store;
        //   lru: LRU metadata replacement instead of Hawkeye;
        //   free: do not charge LLC capacity (Figure 9's assumption);
        //   nocompress: full-address entries (compression ablation).
        core::TriageConfig cfg;
        cfg.degree = degree;
        std::vector<std::string> toks;
        std::size_t pos = 7;
        while (pos <= spec.size()) {
            std::size_t us = spec.find('_', pos);
            if (us == std::string::npos) {
                toks.push_back(spec.substr(pos));
                break;
            }
            toks.push_back(spec.substr(pos, us - pos));
            pos = us + 1;
        }
        if (toks.empty())
            util::fatal("bad triage spec: " + spec);
        const std::string& size = toks[0];
        if (size == "dyn") {
            cfg.dynamic = true;
        } else if (size == "unlimited") {
            cfg.unlimited = true;
            cfg.charge_llc_capacity = false;
        } else if (size.size() > 2 &&
                   (size.substr(size.size() - 2) == "KB" ||
                    size.substr(size.size() - 2) == "MB")) {
            std::uint64_t n =
                std::stoull(size.substr(0, size.size() - 2));
            cfg.static_bytes = size.substr(size.size() - 2) == "KB"
                                   ? n * 1024
                                   : n * 1024 * 1024;
        } else {
            util::fatal("bad triage store size: " + spec);
        }
        for (std::size_t i = 1; i < toks.size(); ++i) {
            if (toks[i] == "lru")
                cfg.repl = core::MetaReplKind::Lru;
            else if (toks[i] == "free")
                cfg.charge_llc_capacity = false;
            else if (toks[i] == "nocompress")
                cfg.compressed_tags = false;
            else
                util::fatal("bad triage flag in spec: " + spec);
        }
        return std::make_unique<core::Triage>(cfg);
    }
    util::fatal("unknown prefetcher spec: " + spec);
}

} // namespace

std::unique_ptr<prefetch::Prefetcher>
make_prefetcher(const std::string& spec, std::uint32_t degree)
{
    if (spec == "none")
        return nullptr;
    // Hybrids: components joined with '+'.
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        std::size_t plus = spec.find('+', start);
        if (plus == std::string::npos) {
            parts.push_back(spec.substr(start));
            break;
        }
        parts.push_back(spec.substr(start, plus - start));
        start = plus + 1;
    }
    if (parts.size() == 1)
        return make_one(parts[0], degree);
    std::vector<std::unique_ptr<prefetch::Prefetcher>> children;
    children.reserve(parts.size());
    for (const auto& p : parts)
        children.push_back(make_one(p, degree));
    return std::make_unique<prefetch::Hybrid>(std::move(children));
}

RunScale
RunScale::from_args(int argc, char** argv)
{
    RunScale s;
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strncmp(a, "--scale=", 8) == 0) {
            s.workload_scale = std::stod(a + 8);
            s.scale_set = true;
        } else if (std::strncmp(a, "--warmup=", 9) == 0) {
            s.warmup_records = std::stoull(a + 9);
            s.warmup_set = true;
        } else if (std::strncmp(a, "--measure=", 10) == 0) {
            s.measure_records = std::stoull(a + 10);
            s.measure_set = true;
        }
    }
    return s;
}

unsigned
RunScale::mixes_from_args(int argc, char** argv, unsigned def)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--mixes=", 8) == 0)
            return static_cast<unsigned>(std::stoul(argv[i] + 8));
    }
    return def;
}

} // namespace triage::stats
