/**
 * @file
 * Machine-readable run reports: serialize a RunResult as JSON so
 * external tooling (plotters, regression dashboards) can consume
 * simulator output without scraping tables.
 */
#ifndef TRIAGE_STATS_REPORT_HPP
#define TRIAGE_STATS_REPORT_HPP

#include <iosfwd>
#include <string>

#include "sim/run_stats.hpp"

namespace triage::obs {
struct Observability;
} // namespace triage::obs

namespace triage::stats {

/**
 * Write @p r as a JSON object:
 * {
 *   "cores": [ {ipc, instructions, cycles, l1_misses, l2_misses,
 *               coverage, accuracy, pf_issued, pf_useful,
 *               meta_onchip, meta_offchip, meta_ways}, ... ],
 *   "llc": {demand_hits, demand_misses},
 *   "traffic": {demand, prefetch, writeback, metadata_read,
 *               metadata_write, total},
 *   "span_cycles": N
 * }
 * Pretty-printed with two-space indentation.
 */
void write_json(std::ostream& os, const sim::RunResult& r);

/** Convenience: JSON to a string. */
std::string to_json(const sim::RunResult& r);

/**
 * Full structured report for --stats-json: the RunResult under "run",
 * plus — when @p obs is non-null — the epoch time series under
 * "epochs" (one object per closed epoch, keys = probe names), the
 * hierarchical stats registry dump under "stats", and ring-buffer
 * accounting for the event trace under "trace".
 */
void write_stats_json(std::ostream& os, const sim::RunResult& r,
                      const obs::Observability* obs);

} // namespace triage::stats

#endif // TRIAGE_STATS_REPORT_HPP
