/**
 * @file
 * Machine-readable run reports: serialize a RunResult as JSON so
 * external tooling (plotters, regression dashboards) can consume
 * simulator output without scraping tables.
 */
#ifndef TRIAGE_STATS_REPORT_HPP
#define TRIAGE_STATS_REPORT_HPP

#include <iosfwd>
#include <string>

#include "sim/run_stats.hpp"

namespace triage::stats {

/**
 * Write @p r as a JSON object:
 * {
 *   "cores": [ {ipc, instructions, cycles, l1_misses, l2_misses,
 *               coverage, accuracy, pf_issued, pf_useful,
 *               meta_onchip, meta_offchip, meta_ways}, ... ],
 *   "llc": {demand_hits, demand_misses},
 *   "traffic": {demand, prefetch, writeback, metadata_read,
 *               metadata_write, total},
 *   "span_cycles": N
 * }
 * Pretty-printed with two-space indentation.
 */
void write_json(std::ostream& os, const sim::RunResult& r);

/** Convenience: JSON to a string. */
std::string to_json(const sim::RunResult& r);

} // namespace triage::stats

#endif // TRIAGE_STATS_REPORT_HPP
