/**
 * @file
 * Experiment harness shared by the figure benches and examples: a
 * string-spec prefetcher factory and single-/multi-core run drivers.
 *
 * Prefetcher specs: "none", "bo", "sms", "markov", "stms", "domino",
 * "misb", "triage_512KB", "triage_1MB", "triage_dyn",
 * "triage_unlimited", and hybrids joined with '+', e.g.
 * "bo+triage_dyn". Every spec takes the run's prefetch degree.
 */
#ifndef TRIAGE_STATS_EXPERIMENT_HPP
#define TRIAGE_STATS_EXPERIMENT_HPP

#include <memory>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/config.hpp"
#include "sim/run_stats.hpp"
#include "workloads/mixes.hpp"

namespace triage::stats {

/** Scale knobs every bench accepts (see DESIGN.md Section 6). */
struct RunScale {
    std::uint64_t warmup_records = 400000;
    std::uint64_t measure_records = 1000000;
    double workload_scale = 1.0;

    /**
     * Presence flags: set by from_args when the corresponding flag was
     * explicitly given on the command line. Lets callers with
     * different defaults (e.g. bench::multi_core_scale) honor an
     * explicit CLI value even when it equals the single-core default.
     */
    bool warmup_set = false;
    bool measure_set = false;
    bool scale_set = false;

    /** Parse --scale=F / --warmup=N / --measure=N / --mixes=N args. */
    static RunScale from_args(int argc, char** argv);
    /** --mixes=N when present (default @p def). */
    static unsigned mixes_from_args(int argc, char** argv, unsigned def);
};

/** Build one prefetcher instance from a spec string. */
std::unique_ptr<prefetch::Prefetcher>
make_prefetcher(const std::string& spec, std::uint32_t degree = 1);

/**
 * Single-core run of @p benchmark under @p pf_spec.
 * "none" runs the no-L2-prefetch baseline (the L1 stride prefetcher
 * from Table 1 stays on in all configurations).
 *
 * Thin wrapper over a one-job exec::Lab (defined in exec/wrappers.cpp);
 * batch sweeps should build exec::Jobs and submit them to a shared
 * Lab instead — see docs/parallel-runs.md.
 */
sim::RunResult run_single(const sim::MachineConfig& cfg,
                          const std::string& benchmark,
                          const std::string& pf_spec,
                          const RunScale& scale,
                          std::uint32_t degree = 1,
                          obs::Observability* obs = nullptr);

/** Multi-core run of @p mix (benchmark name per core); same wrapper
 *  arrangement as run_single. Per-core metadata ways are in
 *  RunResult::per_core[c].avg_metadata_ways. */
sim::RunResult run_mix(const sim::MachineConfig& cfg,
                       const workloads::Mix& mix,
                       const std::string& pf_spec, const RunScale& scale,
                       std::uint32_t degree = 1,
                       obs::Observability* obs = nullptr);

} // namespace triage::stats

#endif // TRIAGE_STATS_EXPERIMENT_HPP
