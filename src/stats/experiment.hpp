/**
 * @file
 * Experiment harness shared by the figure benches and examples: a
 * string-spec prefetcher factory and single-/multi-core run drivers.
 *
 * Prefetcher specs: "none", "bo", "sms", "markov", "stms", "domino",
 * "misb", "triage_512KB", "triage_1MB", "triage_dyn",
 * "triage_unlimited", and hybrids joined with '+', e.g.
 * "bo+triage_dyn". Every spec takes the run's prefetch degree.
 */
#ifndef TRIAGE_STATS_EXPERIMENT_HPP
#define TRIAGE_STATS_EXPERIMENT_HPP

#include <memory>
#include <string>
#include <vector>

#include "obs/observer.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/config.hpp"
#include "sim/run_stats.hpp"
#include "workloads/mixes.hpp"

namespace triage::stats {

/** Scale knobs every bench accepts (see DESIGN.md Section 6). */
struct RunScale {
    std::uint64_t warmup_records = 400000;
    std::uint64_t measure_records = 1000000;
    double workload_scale = 1.0;

    /** Parse --scale=F / --warmup=N / --measure=N / --mixes=N args. */
    static RunScale from_args(int argc, char** argv);
    /** --mixes=N when present (default @p def). */
    static unsigned mixes_from_args(int argc, char** argv, unsigned def);
};

/** Build one prefetcher instance from a spec string. */
std::unique_ptr<prefetch::Prefetcher>
make_prefetcher(const std::string& spec, std::uint32_t degree = 1);

/**
 * Single-core run of @p benchmark under @p pf_spec.
 * "none" runs the no-L2-prefetch baseline (the L1 stride prefetcher
 * from Table 1 stays on in all configurations).
 */
sim::RunResult run_single(const sim::MachineConfig& cfg,
                          const std::string& benchmark,
                          const std::string& pf_spec,
                          const RunScale& scale,
                          std::uint32_t degree = 1,
                          obs::Observability* obs = nullptr);

/** Multi-core run of @p mix (benchmark name per core). */
sim::RunResult run_mix(const sim::MachineConfig& cfg,
                       const workloads::Mix& mix,
                       const std::string& pf_spec, const RunScale& scale,
                       std::uint32_t degree = 1,
                       obs::Observability* obs = nullptr);

/** Per-core average metadata ways of the last run_mix call (Fig 19). */
const std::vector<double>& last_mix_metadata_ways();

} // namespace triage::stats

#endif // TRIAGE_STATS_EXPERIMENT_HPP
