#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "stats/csv.hpp"
#include "util/log.hpp"

namespace triage::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    TRIAGE_ASSERT(!headers_.empty());
}

void
Table::row(std::vector<std::string> cells)
{
    TRIAGE_ASSERT(cells.size() == headers_.size(), "column count mismatch");
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto& r : rows_) {
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    }
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& r : rows_)
        emit(r);
}

void
Table::print_csv(std::ostream& os) const
{
    CsvWriter csv(os);
    csv.row(headers_);
    for (const auto& r : rows_)
        csv.row(r);
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmt_pct(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

std::string
fmt_x(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, ratio);
    return buf;
}

void
banner(std::ostream& os, const std::string& title)
{
    os << "\n== " << title << " ==\n";
}

} // namespace triage::stats
