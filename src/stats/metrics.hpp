/**
 * @file
 * Derived metrics shared by the bench harness: speedups, traffic
 * overheads, geometric means.
 */
#ifndef TRIAGE_STATS_METRICS_HPP
#define TRIAGE_STATS_METRICS_HPP

#include <vector>

#include "sim/run_stats.hpp"

namespace triage::stats {

/** Geometric mean of @p values (empty => 1.0). */
double geomean(const std::vector<double>& values);

/**
 * Speedup of @p with_pf over @p baseline: geometric mean of per-core
 * IPC ratios (the paper's multi-programmed metric; single-core it is
 * just the IPC ratio).
 */
double speedup(const sim::RunResult& with_pf,
               const sim::RunResult& baseline);

/**
 * Off-chip traffic overhead relative to the no-prefetch baseline:
 * (bytes_pf - bytes_base) / bytes_base (Figure 11's bottom panel uses
 * the same quantity as a ratio; Figure 12's x-axis as a percentage).
 */
double traffic_overhead(const sim::RunResult& with_pf,
                        const sim::RunResult& baseline);

/** Total bytes moved in a run. */
std::uint64_t total_traffic(const sim::RunResult& r);

/**
 * LLC demand-miss reduction vs baseline (Figure 14's secondary
 * metric), as a fraction in [-inf, 1].
 */
double miss_reduction(const sim::RunResult& with_pf,
                      const sim::RunResult& baseline);

/** Average prefetch coverage across cores. */
double avg_coverage(const sim::RunResult& r);

/** Average prefetch accuracy across cores. */
double avg_accuracy(const sim::RunResult& r);

} // namespace triage::stats

#endif // TRIAGE_STATS_METRICS_HPP
