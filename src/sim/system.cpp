#include "sim/system.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "sim/obs_wiring.hpp"
#include "util/log.hpp"

namespace triage::sim {

SingleCoreSystem::SingleCoreSystem(const MachineConfig& cfg)
    : cfg_(cfg), mem_(cfg, 1), core_(cfg, mem_, 0)
{
}

void
SingleCoreSystem::set_prefetcher(std::unique_ptr<prefetch::Prefetcher> pf)
{
    mem_.set_prefetcher(0, std::move(pf));
}

EpochRun::EpochRun(cache::MemorySystem& mem, CoreModel& core)
    : mem_(mem), core_(core)
{
}

void
EpochRun::run_warmup(std::uint64_t warmup_records)
{
    TRIAGE_ASSERT(phase_ == Phase::Fresh, "EpochRun: warmup ran twice");
    obs::prof::ProfScope prof("warmup");
    core_.run_records(warmup_records);
    phase_ = Phase::Warm;
}

void
EpochRun::begin_measure(std::uint64_t measure_records,
                        obs::Observability* obs)
{
    TRIAGE_ASSERT(phase_ == Phase::Warm,
                  "EpochRun: begin_measure needs the warm state");
    obs_ = obs;
    measure_records_ = measure_records;
    done_ = 0;

    mem_.clear_stats(core_.now());
    before_ = core_.stats();
    start_ = core_.now();

    if (obs_ != nullptr)
        attach_observability(*obs_, mem_, {&core_});
    if (obs_ != nullptr && obs_->sampler.enabled())
        obs_->sampler.begin(0);
    phase_ = Phase::Measuring;
}

std::uint64_t
EpochRun::epoch_len() const
{
    // Epoch-chunked measurement: chunking run_records is
    // behavior-identical to one big call, so the epoch length only
    // decides where sampler/verifier boundaries fall, never the result.
    if (obs_ != nullptr && obs_->sampler.enabled())
        return obs_->sampler.epoch_len();
    return obs::RunVerifier::DEFAULT_EPOCH_RECORDS;
}

bool
EpochRun::step_epoch()
{
    TRIAGE_ASSERT(phase_ == Phase::Measuring,
                  "EpochRun: step_epoch outside the measurement window");
    if (done_ >= measure_records_) {
        phase_ = Phase::Done;
        return false;
    }
    obs::prof::ProfScope prof("epoch");
    const std::uint64_t chunk =
        std::min(epoch_len(), measure_records_ - done_);
    core_.run_records(chunk);
    done_ += chunk;
    if (obs_ != nullptr && obs_->sampler.enabled())
        obs_->sampler.sample(done_);
    obs::RunVerifier* verifier = obs_ != nullptr ? obs_->verifier : nullptr;
    if (verifier != nullptr)
        verifier->on_epoch();
    return true;
}

RunResult
EpochRun::finish()
{
    TRIAGE_ASSERT(phase_ == Phase::Done,
                  "EpochRun: finish before the window completed");
    Cycle end = core_.drain();
    obs::RunVerifier* verifier = obs_ != nullptr ? obs_->verifier : nullptr;
    if (verifier != nullptr)
        verifier->on_run_end();

    RunResult res;
    RunStats s;
    s.instructions = core_.stats().instructions - before_.instructions;
    s.mem_records = core_.stats().mem_records - before_.mem_records;
    s.cycles = end - start_;
    s.l1 = mem_.l1(0).stats();
    s.l2 = mem_.l2(0).stats();
    if (mem_.prefetcher(0) != nullptr)
        s.l2pf = mem_.prefetcher(0)->snapshot();
    if (mem_.l1_stride(0) != nullptr)
        s.l1_stride = mem_.l1_stride(0)->snapshot();
    s.energy = mem_.metadata_energy(0);
    s.avg_metadata_ways = mem_.avg_metadata_ways(0, end);
    res.per_core.push_back(s);
    res.llc = mem_.llc().stats();
    res.traffic = mem_.dram().traffic();
    res.span = end - start_;

    // The registry's bound stats and formulas point into this system,
    // and none of them change once the run is over — snapshot them now
    // so harnesses (e.g. stats::run_single callers emitting
    // --stats-json) can dump the registry after the system dies.
    if (obs_ != nullptr)
        obs_->freeze();
    return res;
}

void
EpochRun::checkpoint(Snapshot& s)
{
    if (s.saving()) {
        TRIAGE_ASSERT(
            phase_ == Phase::Warm ||
                (phase_ == Phase::Measuring && obs_ == nullptr),
            "EpochRun checkpoints are taken at the warm point, or at an "
            "epoch boundary with no observability attached");
    }
    s.section("epoch_run");
    auto ph = static_cast<std::uint8_t>(phase_);
    s.io(ph);
    if (s.loading()) {
        TRIAGE_ASSERT(ph == static_cast<std::uint8_t>(Phase::Warm) ||
                          ph == static_cast<std::uint8_t>(Phase::Measuring),
                      "EpochRun snapshot taken at a non-resumable phase");
        phase_ = static_cast<Phase>(ph);
        obs_ = nullptr;
    }
    s.io(measure_records_);
    s.io(done_);
    s.io_pod(before_);
    s.io(start_);
    mem_.checkpoint(s);
    core_.checkpoint(s);
}

RunResult
run_one_core(cache::MemorySystem& mem, CoreModel& core,
             std::uint64_t warmup_records, std::uint64_t measure_records,
             obs::Observability* obs)
{
    EpochRun er(mem, core);
    er.run_warmup(warmup_records);
    obs::prof::ProfScope prof("measure");
    er.begin_measure(measure_records, obs);
    while (er.step_epoch()) {
    }
    return er.finish();
}

void
SingleCoreSystem::run_warmup(std::uint64_t warmup_records)
{
    er_ = std::make_unique<EpochRun>(mem_, core_);
    er_->run_warmup(warmup_records);
}

void
SingleCoreSystem::checkpoint_warm(Snapshot& s)
{
    if (s.loading() && er_ == nullptr)
        er_ = std::make_unique<EpochRun>(mem_, core_);
    TRIAGE_ASSERT(er_ != nullptr,
                  "checkpoint_warm before run_warmup (save side)");
    er_->checkpoint(s);
}

RunResult
SingleCoreSystem::run_measure(std::uint64_t measure_records)
{
    TRIAGE_ASSERT(er_ != nullptr && er_->phase() == EpochRun::Phase::Warm,
                  "run_measure needs a warm system (run_warmup or a "
                  "restoring checkpoint_warm)");
    obs::prof::ProfScope prof("measure");
    er_->begin_measure(measure_records, obs_);
    while (er_->step_epoch()) {
    }
    RunResult r = er_->finish();
    er_.reset();
    return r;
}

RunResult
SingleCoreSystem::run(Workload& wl, std::uint64_t warmup_records,
                      std::uint64_t measure_records)
{
    core_.bind(&wl);
    return run_one_core(mem_, core_, warmup_records, measure_records,
                        obs_);
}

} // namespace triage::sim
