#include "sim/system.hpp"

#include <algorithm>

#include "sim/obs_wiring.hpp"

namespace triage::sim {

SingleCoreSystem::SingleCoreSystem(const MachineConfig& cfg)
    : cfg_(cfg), mem_(cfg, 1), core_(cfg, mem_, 0)
{
}

void
SingleCoreSystem::set_prefetcher(std::unique_ptr<prefetch::Prefetcher> pf)
{
    mem_.set_prefetcher(0, std::move(pf));
}

RunResult
SingleCoreSystem::run(Workload& wl, std::uint64_t warmup_records,
                      std::uint64_t measure_records)
{
    core_.bind(&wl);
    core_.run_records(warmup_records);

    mem_.clear_stats(core_.now());
    CoreStats before = core_.stats();
    Cycle start = core_.now();

    if (obs_ != nullptr)
        attach_observability(*obs_, mem_, {&core_});

    if (obs_ != nullptr && obs_->sampler.enabled()) {
        // Epoch-chunked measurement: close a sampler epoch every
        // epoch_len measured records.
        obs_->sampler.begin(0);
        const std::uint64_t n = obs_->sampler.epoch_len();
        std::uint64_t done = 0;
        while (done < measure_records) {
            std::uint64_t chunk = std::min(n, measure_records - done);
            core_.run_records(chunk);
            done += chunk;
            obs_->sampler.sample(done);
        }
    } else {
        core_.run_records(measure_records);
    }
    Cycle end = core_.drain();

    RunResult res;
    RunStats s;
    s.instructions = core_.stats().instructions - before.instructions;
    s.mem_records = core_.stats().mem_records - before.mem_records;
    s.cycles = end - start;
    s.l1 = mem_.l1(0).stats();
    s.l2 = mem_.l2(0).stats();
    if (mem_.prefetcher(0) != nullptr)
        s.l2pf = mem_.prefetcher(0)->snapshot();
    if (mem_.l1_stride(0) != nullptr)
        s.l1_stride = mem_.l1_stride(0)->snapshot();
    s.energy = mem_.metadata_energy(0);
    s.avg_metadata_ways = mem_.avg_metadata_ways(0, end);
    res.per_core.push_back(s);
    res.llc = mem_.llc().stats();
    res.traffic = mem_.dram().traffic();
    res.span = end - start;

    // The registry's bound stats and formulas point into this system,
    // and none of them change once the run is over — snapshot them now
    // so harnesses (e.g. stats::run_single callers emitting
    // --stats-json) can dump the registry after the system dies.
    if (obs_ != nullptr)
        obs_->freeze();
    return res;
}

} // namespace triage::sim
