#include "sim/system.hpp"

#include <algorithm>

#include "sim/obs_wiring.hpp"

namespace triage::sim {

SingleCoreSystem::SingleCoreSystem(const MachineConfig& cfg)
    : cfg_(cfg), mem_(cfg, 1), core_(cfg, mem_, 0)
{
}

void
SingleCoreSystem::set_prefetcher(std::unique_ptr<prefetch::Prefetcher> pf)
{
    mem_.set_prefetcher(0, std::move(pf));
}

RunResult
run_one_core(cache::MemorySystem& mem, CoreModel& core,
             std::uint64_t warmup_records, std::uint64_t measure_records,
             obs::Observability* obs)
{
    core.run_records(warmup_records);

    mem.clear_stats(core.now());
    CoreStats before = core.stats();
    Cycle start = core.now();

    if (obs != nullptr)
        attach_observability(*obs, mem, {&core});

    const bool sampling = obs != nullptr && obs->sampler.enabled();
    obs::RunVerifier* verifier = obs != nullptr ? obs->verifier : nullptr;
    if (sampling || verifier != nullptr) {
        // Epoch-chunked measurement: close a sampler epoch (and run
        // the invariant sweep) every epoch_len measured records.
        // Chunking run_records is behavior-identical to one big call,
        // so the chunked and plain paths produce the same RunResult.
        if (sampling)
            obs->sampler.begin(0);
        const std::uint64_t n =
            sampling ? obs->sampler.epoch_len()
                     : obs::RunVerifier::DEFAULT_EPOCH_RECORDS;
        std::uint64_t done = 0;
        while (done < measure_records) {
            std::uint64_t chunk = std::min(n, measure_records - done);
            core.run_records(chunk);
            done += chunk;
            if (sampling)
                obs->sampler.sample(done);
            if (verifier != nullptr)
                verifier->on_epoch();
        }
    } else {
        core.run_records(measure_records);
    }
    Cycle end = core.drain();
    if (verifier != nullptr)
        verifier->on_run_end();

    RunResult res;
    RunStats s;
    s.instructions = core.stats().instructions - before.instructions;
    s.mem_records = core.stats().mem_records - before.mem_records;
    s.cycles = end - start;
    s.l1 = mem.l1(0).stats();
    s.l2 = mem.l2(0).stats();
    if (mem.prefetcher(0) != nullptr)
        s.l2pf = mem.prefetcher(0)->snapshot();
    if (mem.l1_stride(0) != nullptr)
        s.l1_stride = mem.l1_stride(0)->snapshot();
    s.energy = mem.metadata_energy(0);
    s.avg_metadata_ways = mem.avg_metadata_ways(0, end);
    res.per_core.push_back(s);
    res.llc = mem.llc().stats();
    res.traffic = mem.dram().traffic();
    res.span = end - start;

    // The registry's bound stats and formulas point into this system,
    // and none of them change once the run is over — snapshot them now
    // so harnesses (e.g. stats::run_single callers emitting
    // --stats-json) can dump the registry after the system dies.
    if (obs != nullptr)
        obs->freeze();
    return res;
}

RunResult
SingleCoreSystem::run(Workload& wl, std::uint64_t warmup_records,
                      std::uint64_t measure_records)
{
    core_.bind(&wl);
    return run_one_core(mem_, core_, warmup_records, measure_records,
                        obs_);
}

} // namespace triage::sim
