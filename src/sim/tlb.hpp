/**
 * @file
 * Two-level TLB model (Table 1: 48-entry fully-associative L1,
 * 1024-entry 4-way L2). Translation is identity (the workloads use
 * flat addresses); the model charges latency only: an L1-TLB miss adds
 * the L2-TLB latency, an L2-TLB miss adds a fixed page-walk penalty.
 */
#ifndef TRIAGE_SIM_TLB_HPP
#define TRIAGE_SIM_TLB_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace triage::obs {
class Registry;
} // namespace triage::obs

namespace triage::sim {

/** Statistics. */
struct TlbStats {
    std::uint64_t accesses = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t walks = 0;
};

/** Two-level data TLB charging translation latency. */
class Tlb
{
  public:
    /**
     * @param l1_entries fully-associative first level.
     * @param l2_entries 4-way second level.
     */
    Tlb(std::uint32_t l1_entries, std::uint32_t l2_entries,
        std::uint32_t l2_latency, std::uint32_t walk_latency);

    /**
     * Translate the page of @p byte_addr.
     * @return extra cycles charged to this access.
     */
    std::uint32_t access(Addr byte_addr);

    const TlbStats& stats() const { return stats_; }
    void clear_stats() { stats_ = {}; }

    /** Bind access/miss/walk counters into @p reg under @p prefix. */
    void register_stats(obs::Registry& reg, const std::string& prefix) const;

    /** Save/restore warm TLB contents (docs/parallel-runs.md). */
    void
    checkpoint(Snapshot& s)
    {
        s.section("tlb");
        auto per = [](Snapshot& a, Entry& e) {
            a.io(e.page);
            a.io(e.lru);
            a.io(e.valid);
        };
        s.io_vec(l1_, per);
        s.io_vec(l2_, per);
        s.io(clock_);
        s.io_pod(stats_);
    }

  private:
    static constexpr unsigned PAGE_SHIFT = 12;

    struct Entry {
        Addr page = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    /** Probe a table; returns hit and touches LRU. */
    static bool probe(std::vector<Entry>& table, std::uint32_t ways,
                      Addr page, std::uint64_t& clock);
    /** Install a page into a table (LRU victim within its set). */
    static void install(std::vector<Entry>& table, std::uint32_t ways,
                        Addr page, std::uint64_t& clock);

    std::uint32_t l2_latency_;
    std::uint32_t walk_latency_;
    std::vector<Entry> l1_; ///< fully associative (ways == size)
    std::vector<Entry> l2_; ///< 4-way
    std::uint32_t l2_ways_ = 4;
    std::uint64_t clock_ = 0;
    TlbStats stats_;
};

} // namespace triage::sim

#endif // TRIAGE_SIM_TLB_HPP
