/**
 * @file
 * Multi-programmed multi-core harness (paper Section 4.1): N cores with
 * private L1/L2, shared LLC and DRAM. Cores advance in bounded cycle
 * quanta; early-finishing benchmarks restart so every benchmark always
 * observes contention; per-core measurement windows are counted in
 * memory references from the global warm point.
 */
#ifndef TRIAGE_SIM_MULTICORE_HPP
#define TRIAGE_SIM_MULTICORE_HPP

#include <memory>
#include <vector>

#include "cache/hierarchy.hpp"
#include "obs/observer.hpp"
#include "sim/cpu.hpp"
#include "sim/run_stats.hpp"
#include "sim/trace.hpp"

namespace triage::sim {

/** N-core simulation harness. */
class MultiCoreSystem
{
  public:
    MultiCoreSystem(const MachineConfig& cfg, unsigned n_cores);

    /** Install the L2 prefetcher for @p core (null = none). */
    void set_prefetcher(unsigned core,
                        std::unique_ptr<prefetch::Prefetcher> pf);

    /** Assign @p core its benchmark (the system clones and owns it). */
    void bind(unsigned core, const Workload& wl);

    /**
     * Warm every core for @p warmup_records references, clear stats,
     * then measure until every core has executed @p measure_records
     * more references. @p quantum bounds cross-core time skew.
     */
    RunResult run(std::uint64_t warmup_records,
                  std::uint64_t measure_records, Cycle quantum = 1000);

    cache::MemorySystem& memory() { return mem_; }
    unsigned num_cores() const { return n_cores_; }

    /**
     * Attach an observability bundle. Epoch progress is the minimum
     * measured-record count across cores, so every core has executed
     * at least [begin, end) records when an epoch closes. Null
     * detaches.
     */
    void set_observability(obs::Observability* o) { obs_ = o; }

  private:
    /** Advance @p core to @p target, restarting its workload at EOF. */
    void advance(unsigned core, Cycle target);

    MachineConfig cfg_;
    unsigned n_cores_;
    cache::MemorySystem mem_;
    std::vector<std::unique_ptr<Workload>> workloads_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    obs::Observability* obs_ = nullptr;
};

} // namespace triage::sim

#endif // TRIAGE_SIM_MULTICORE_HPP
