/**
 * @file
 * Multi-programmed multi-core harness (paper Section 4.1): N cores with
 * private L1/L2, shared LLC and DRAM. Cores advance in bounded cycle
 * quanta; early-finishing benchmarks restart so every benchmark always
 * observes contention; per-core measurement windows are counted in
 * memory references from the global warm point.
 *
 * The run is split into resumable phases: run_warmup() reaches the warm
 * point, checkpoint_warm() serializes/restores it (exec::Lab forks
 * sweeps from shared warm snapshots), and run_measure() executes the
 * measurement window — serially (ExecMode::Legacy) or with per-core
 * epoch units on a thread pool rendezvousing at quantum barriers
 * (ExecMode::Sharded, see docs/parallel-runs.md). Sharded results are
 * bit-identical for any thread count.
 */
#ifndef TRIAGE_SIM_MULTICORE_HPP
#define TRIAGE_SIM_MULTICORE_HPP

#include <memory>
#include <vector>

#include "cache/hierarchy.hpp"
#include "obs/observer.hpp"
#include "sim/cpu.hpp"
#include "sim/run_stats.hpp"
#include "sim/snapshot.hpp"
#include "sim/trace.hpp"

namespace triage::sim {

class EpochRun;

/** N-core simulation harness. */
class MultiCoreSystem
{
  public:
    MultiCoreSystem(const MachineConfig& cfg, unsigned n_cores);
    ~MultiCoreSystem();

    /** Install the L2 prefetcher for @p core (null = none). */
    void set_prefetcher(unsigned core,
                        std::unique_ptr<prefetch::Prefetcher> pf);

    /** Assign @p core its benchmark (the system clones and owns it). */
    void bind(unsigned core, const Workload& wl);

    /**
     * Warm every core for @p warmup_records references, clear stats,
     * then measure until every core has executed @p measure_records
     * more references. @p quantum bounds cross-core time skew.
     * Equivalent to run_warmup() followed by run_measure().
     */
    RunResult run(std::uint64_t warmup_records,
                  std::uint64_t measure_records, Cycle quantum = 1000,
                  ExecMode mode = ExecMode::Legacy, unsigned threads = 0);

    /**
     * Phase 1: advance every core past its warmup window. Warmup always
     * runs the legacy serial interleaving, so the warm state is
     * independent of the measurement-phase ExecMode (a warm checkpoint
     * serves both). @p quantum must match the later run_measure()'s.
     */
    void run_warmup(std::uint64_t warmup_records, Cycle quantum = 1000);

    /**
     * Serialize the warm state (after run_warmup), or restore it into a
     * freshly constructed, identically configured system with the same
     * workloads bound. A restoring call leaves the system ready for
     * run_measure(), bit-identical to having warmed up in-process.
     */
    void checkpoint_warm(Snapshot& s);

    /**
     * Phase 2: the measurement window, from the warm point. Legacy mode
     * interleaves cores serially; Sharded mode runs each core's quantum
     * on @p threads workers (0 = one per core, capped at the hardware)
     * against a frozen view of the shared state, merging logged
     * operations in fixed core-major order at each quantum barrier.
     */
    RunResult run_measure(std::uint64_t measure_records,
                          Cycle quantum = 1000,
                          ExecMode mode = ExecMode::Legacy,
                          unsigned threads = 0);

    cache::MemorySystem& memory() { return mem_; }
    unsigned num_cores() const { return n_cores_; }

    /**
     * Attach an observability bundle. Epoch progress is the minimum
     * measured-record count across cores, so every core has executed
     * at least [begin, end) records when an epoch closes. Null
     * detaches. Sharded measurement keeps the registry, sampler and
     * verifier (all driven at quantum barriers) but detaches the event
     * trace, lifecycle tracker and partition timeline — those observers
     * cannot be driven from shard threads.
     */
    void set_observability(obs::Observability* o) { obs_ = o; }

  private:
    /** Advance @p core to @p target, restarting its workload at EOF. */
    void advance(unsigned core, Cycle target);

    MachineConfig cfg_;
    unsigned n_cores_;
    cache::MemorySystem mem_;
    std::vector<std::unique_ptr<Workload>> workloads_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    obs::Observability* obs_ = nullptr;

    /** Record-exact protocol when n_cores_ == 1 (see run_one_core). */
    std::unique_ptr<EpochRun> er_;
    /** Global cycle target at the warm point (n_cores_ > 1). */
    Cycle warm_global_ = 0;
    /** run_warmup/checkpoint_warm completed; consumed by run_measure. */
    bool warmed_ = false;
};

} // namespace triage::sim

#endif // TRIAGE_SIM_MULTICORE_HPP
