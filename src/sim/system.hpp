/**
 * @file
 * Single-core simulation harness: wire a workload, a prefetcher and the
 * memory hierarchy together, warm up, measure, and report RunStats.
 */
#ifndef TRIAGE_SIM_SYSTEM_HPP
#define TRIAGE_SIM_SYSTEM_HPP

#include <memory>

#include "cache/hierarchy.hpp"
#include "obs/observer.hpp"
#include "sim/cpu.hpp"
#include "sim/run_stats.hpp"
#include "sim/snapshot.hpp"
#include "sim/trace.hpp"

namespace triage::sim {

/**
 * The single-core measurement protocol as an explicit state machine:
 * warmup, measurement in epoch units, and epoch boundaries a run can
 * stop at, serialize, and resume from bit-identically.
 *
 * Phases advance Fresh -> Warm -> Measuring -> Done:
 *
 *   EpochRun er(mem, core);
 *   er.run_warmup(warmup_records);        // Fresh -> Warm
 *   er.begin_measure(measure, obs);       // Warm -> Measuring
 *   while (er.step_epoch()) {}            // Measuring -> Done
 *   RunResult r = er.finish();
 *
 * Chunking the window into epoch units is behavior-identical to one
 * big run_records() call, so this decomposition reproduces the legacy
 * protocol byte for byte (tools/diff_fidelity pins it). checkpoint()
 * serializes the whole run — hierarchy, core, workload cursor, and the
 * measurement bookkeeping — at the warm point or at any epoch boundary;
 * restoring into an identically constructed system resumes the run as
 * if it had never stopped.
 *
 * Shared by SingleCoreSystem and by MultiCoreSystem when it runs
 * exactly one core, which is what makes a 1-program mix bit-identical
 * to the single-core system.
 */
class EpochRun
{
  public:
    enum class Phase : std::uint8_t {
        Fresh = 0,
        Warm = 1,
        Measuring = 2,
        Done = 3,
    };

    EpochRun(cache::MemorySystem& mem, CoreModel& core);

    /** Execute the warmup window (Fresh -> Warm). */
    void run_warmup(std::uint64_t warmup_records);

    /**
     * Start the measurement window (Warm -> Measuring): clear stats,
     * capture baselines, attach @p obs (may be null).
     */
    void begin_measure(std::uint64_t measure_records,
                       obs::Observability* obs);

    /**
     * Run one epoch unit (the sampler's epoch length when sampling,
     * otherwise the verifier's default), then close the epoch: sample,
     * run the invariant sweep. @return false once the window is
     * complete (Measuring -> Done).
     */
    bool step_epoch();

    /** Drain and assemble the RunResult (requires Done). */
    RunResult finish();

    Phase phase() const { return phase_; }

    /**
     * Save/restore the run at a phase boundary: valid at Warm (warm
     * forking — exec::Lab's checkpoint sharing) or between step_epoch()
     * calls with no observability attached (mid-run resume; the
     * sampler's accumulators are not serializable).
     */
    void checkpoint(Snapshot& s);

  private:
    std::uint64_t epoch_len() const;

    cache::MemorySystem& mem_;
    CoreModel& core_;
    obs::Observability* obs_ = nullptr;
    Phase phase_ = Phase::Fresh;
    std::uint64_t measure_records_ = 0;
    std::uint64_t done_ = 0;
    CoreStats before_{};
    Cycle start_ = 0;
};

/**
 * The legacy single-call protocol: warm @p core for @p warmup_records
 * references, measure the next @p measure_records, and assemble the
 * RunResult. Composed from EpochRun — one implementation of the epoch
 * protocol serves the single-core system, 1-program mixes, and the
 * checkpoint/resume paths.
 */
RunResult run_one_core(cache::MemorySystem& mem, CoreModel& core,
                       std::uint64_t warmup_records,
                       std::uint64_t measure_records,
                       obs::Observability* obs);

/** Convenience owner of one core + memory system. */
class SingleCoreSystem
{
  public:
    explicit SingleCoreSystem(const MachineConfig& cfg);

    /** Install the L2 prefetcher under test (null = no L2 prefetching). */
    void set_prefetcher(std::unique_ptr<prefetch::Prefetcher> pf);

    /**
     * Warm up for @p warmup_records memory references, then measure the
     * next @p measure_records (restarting the workload as needed).
     */
    RunResult run(Workload& wl, std::uint64_t warmup_records,
                  std::uint64_t measure_records);

    // --- Resumable protocol (the phases run() composes) ---------------

    /** Attach the workload without running anything. */
    void bind(Workload& wl) { core_.bind(&wl); }

    /** Execute the warmup window (requires bind()). */
    void run_warmup(std::uint64_t warmup_records);

    /**
     * Save the warm state, or restore it into a freshly constructed,
     * identically configured system (requires bind(); the workload is
     * restored by deterministic replay, see CoreModel::checkpoint).
     */
    void checkpoint_warm(Snapshot& s);

    /** Measure from the warm point (after run_warmup or a restoring
     *  checkpoint_warm) and return the result. */
    RunResult run_measure(std::uint64_t measure_records);

    cache::MemorySystem& memory() { return mem_; }
    CoreModel& core() { return core_; }

    /**
     * Attach an observability bundle (registry + epoch sampler + event
     * trace). Wiring happens at measurement start inside run(); the
     * sampler closes an epoch every sampler.epoch_len() measured
     * records. Null detaches.
     */
    void set_observability(obs::Observability* o) { obs_ = o; }

  private:
    MachineConfig cfg_;
    cache::MemorySystem mem_;
    CoreModel core_;
    obs::Observability* obs_ = nullptr;
    std::unique_ptr<EpochRun> er_; ///< live between run_warmup and finish
};

} // namespace triage::sim

#endif // TRIAGE_SIM_SYSTEM_HPP
