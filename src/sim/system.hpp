/**
 * @file
 * Single-core simulation harness: wire a workload, a prefetcher and the
 * memory hierarchy together, warm up, measure, and report RunStats.
 */
#ifndef TRIAGE_SIM_SYSTEM_HPP
#define TRIAGE_SIM_SYSTEM_HPP

#include <memory>

#include "cache/hierarchy.hpp"
#include "obs/observer.hpp"
#include "sim/cpu.hpp"
#include "sim/run_stats.hpp"
#include "sim/trace.hpp"

namespace triage::sim {

/**
 * The single-core measurement protocol, shared by SingleCoreSystem and
 * by MultiCoreSystem when it runs exactly one core: warm @p core for
 * @p warmup_records references, clear stats, attach @p obs (when
 * non-null), run the measurement window — chunked when the sampler or
 * an attached RunVerifier needs epoch boundaries — drain, and
 * assemble the RunResult. Keeping one implementation is what makes a
 * 1-program mix bit-identical to the single-core system, a property
 * the differential suite (tools/diff_fidelity) pins.
 */
RunResult run_one_core(cache::MemorySystem& mem, CoreModel& core,
                       std::uint64_t warmup_records,
                       std::uint64_t measure_records,
                       obs::Observability* obs);

/** Convenience owner of one core + memory system. */
class SingleCoreSystem
{
  public:
    explicit SingleCoreSystem(const MachineConfig& cfg);

    /** Install the L2 prefetcher under test (null = no L2 prefetching). */
    void set_prefetcher(std::unique_ptr<prefetch::Prefetcher> pf);

    /**
     * Warm up for @p warmup_records memory references, then measure the
     * next @p measure_records (restarting the workload as needed).
     */
    RunResult run(Workload& wl, std::uint64_t warmup_records,
                  std::uint64_t measure_records);

    cache::MemorySystem& memory() { return mem_; }
    CoreModel& core() { return core_; }

    /**
     * Attach an observability bundle (registry + epoch sampler + event
     * trace). Wiring happens at measurement start inside run(); the
     * sampler closes an epoch every sampler.epoch_len() measured
     * records. Null detaches.
     */
    void set_observability(obs::Observability* o) { obs_ = o; }

  private:
    MachineConfig cfg_;
    cache::MemorySystem mem_;
    CoreModel core_;
    obs::Observability* obs_ = nullptr;
};

} // namespace triage::sim

#endif // TRIAGE_SIM_SYSTEM_HPP
