/**
 * @file
 * Glue between the simulation harnesses and the observability
 * subsystem: one call registers every component's counters into the
 * stats registry, installs the per-epoch probes the paper's trajectory
 * plots need (IPC, coverage, accuracy, metadata hit rate, way
 * allocation), attaches the event trace to the hierarchy, and arms the
 * prefetch lifecycle tracker and partition-decision timeline for the
 * run's core count.
 *
 * Registration happens at measurement start (after warmup), so
 * registry formulas that need "since measurement began" semantics
 * capture their baselines by value here.
 */
#ifndef TRIAGE_SIM_OBS_WIRING_HPP
#define TRIAGE_SIM_OBS_WIRING_HPP

#include <vector>

#include "obs/observer.hpp"

namespace triage::cache {
class MemorySystem;
} // namespace triage::cache

namespace triage::sim {

class CoreModel;

/**
 * Wire @p obs to a system at measurement start. Clears any previous
 * registration (safe across repeated runs), binds the hierarchy's
 * counters, adds per-core performance formulas baselined at the
 * current core state, installs epoch probes, and attaches the trace.
 * @p cores holds one CoreModel per hierarchy core, in order.
 */
void attach_observability(obs::Observability& obs,
                          cache::MemorySystem& mem,
                          const std::vector<CoreModel*>& cores);

/** Detach the trace from @p mem (leaves registry contents intact). */
void detach_observability(cache::MemorySystem& mem);

} // namespace triage::sim

#endif // TRIAGE_SIM_OBS_WIRING_HPP
