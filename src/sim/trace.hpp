/**
 * @file
 * Trace records and the Workload streaming interface.
 *
 * A trace is a deterministic stream of memory references annotated with
 * the issuing PC, enough surrounding compute work to pace the core
 * model, and an optional *load dependency* so that pointer chases are
 * latency-bound in the timing model (a trace-driven stand-in for the
 * register dependences real simulators extract).
 */
#ifndef TRIAGE_SIM_TRACE_HPP
#define TRIAGE_SIM_TRACE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace triage::sim {

/** One memory reference in a trace. */
struct TraceRecord {
    Pc pc = 0;
    Addr addr = 0;
    /** Store (true) or load (false). */
    bool is_write = false;
    /** Non-memory instructions dispatched before this reference. */
    std::uint8_t nonmem_before = 0;
    /**
     * Dependency distance: this load's address depends on the result of
     * the memory reference @c dep_distance records earlier (0 = none).
     * Drives serialization of pointer chases in the core model.
     */
    std::uint16_t dep_distance = 0;
};

/**
 * A deterministic, restartable stream of trace records.
 *
 * Workloads are state machines, not stored vectors, so multi-million
 * reference runs need no trace memory. @c reset() rewinds to the
 * beginning (used to restart early-finishing benchmarks in
 * multi-programmed mixes, Section 4.1).
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Rewind to the first record. */
    virtual void reset() = 0;

    /**
     * Produce the next record.
     * @return false at end-of-trace (call reset() to rerun).
     */
    virtual bool next(TraceRecord& out) = 0;

    /**
     * Advance the cursor by up to @p n records, discarding them.
     * @return records actually skipped — less than @p n only at
     * end-of-trace (the caller may reset() and continue).
     *
     * Semantically identical to @p n next() calls with the output
     * ignored; overrides exist so cursor restoration after a
     * checkpoint restore (CoreModel::restore_workload_position) can
     * seek instead of re-decoding a long prefix. An override MUST
     * leave the stream in exactly the state the next() loop would
     * have — the replay-equality contract checkpoints depend on.
     */
    virtual std::uint64_t
    skip(std::uint64_t n)
    {
        TraceRecord r;
        std::uint64_t done = 0;
        while (done < n && next(r))
            ++done;
        return done;
    }

    /** Benchmark name (matches the paper's x-axis labels). */
    virtual const std::string& name() const = 0;

    /** Fresh, rewound copy (for running the same benchmark on 2 cores). */
    virtual std::unique_ptr<Workload> clone() const = 0;
};

/** Workload backed by an in-memory vector (tests, tiny examples). */
class VectorWorkload final : public Workload
{
  public:
    VectorWorkload(std::string name, std::vector<TraceRecord> records)
        : name_(std::move(name)), records_(std::move(records))
    {}

    void reset() override { pos_ = 0; }

    bool
    next(TraceRecord& out) override
    {
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

    std::uint64_t
    skip(std::uint64_t n) override
    {
        const std::uint64_t avail = records_.size() - pos_;
        const std::uint64_t take = n < avail ? n : avail;
        pos_ += static_cast<std::size_t>(take);
        return take;
    }

    const std::string& name() const override { return name_; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<VectorWorkload>(name_, records_);
    }

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

} // namespace triage::sim

#endif // TRIAGE_SIM_TRACE_HPP
