#include "sim/config.hpp"

#include <sstream>

namespace triage::sim {

std::string
MachineConfig::describe(unsigned n_cores) const
{
    std::ostringstream os;
    os << "Core       : out-of-order, 2 GHz, " << fetch_width
       << "-wide fetch/dispatch, " << retire_width << "-wide retire, "
       << rob_entries << " ROB entries\n"
       << "L1D        : " << l1d.size_bytes / 1024 << " KB, " << l1d.assoc
       << "-way, " << l1d.latency << "-cycle latency"
       << (l1_stride_prefetcher ? ", stride prefetcher" : "") << "\n"
       << "L2         : " << l2.size_bytes / 1024 << " KB, private, "
       << l2.assoc << "-way, " << l2.latency << "-cycle load-to-use\n"
       << "L3         : " << llc.size_bytes / (1024 * 1024)
       << " MB/core (x" << n_cores << " cores), shared, " << llc.assoc
       << "-way, " << llc.latency + llc_extra_latency
       << "-cycle load-to-use\n"
       << "DRAM       : " << dram_latency << "-cycle (85 ns) latency, "
       << dram_channels << " channels, "
       << (16 / dram_channels) * dram_channels
       << " B/cycle total (32 GB/s at 2 GHz)\n"
       << "Prefetch   : degree " << prefetch_degree
       << ", trained on L2 access stream, fills L2";
    return os.str();
}

} // namespace triage::sim
