#include "sim/multicore.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/profile.hpp"
#include "sim/obs_wiring.hpp"
#include "sim/system.hpp"

#include "util/log.hpp"

namespace triage::sim {

namespace {

/**
 * Persistent worker pool driving one sharded measurement phase: each
 * quantum, every core index is dispatched exactly once (static stride
 * partition — which thread runs which core cannot affect results, the
 * shards are independent), and run() returns only after all cores hit
 * the barrier. With one thread the quantum runs inline on the caller,
 * which is the serial execution the determinism suite compares against.
 */
class QuantumCrew
{
  public:
    QuantumCrew(unsigned threads, unsigned cores)
        : threads_(std::max(1u, std::min(threads, cores))), cores_(cores)
    {
        if (threads_ <= 1)
            return;
        workers_.reserve(threads_ - 1);
        for (unsigned t = 1; t < threads_; ++t)
            workers_.emplace_back([this, t] { worker(t); });
    }

    ~QuantumCrew()
    {
        if (threads_ <= 1)
            return;
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_)
            w.join();
    }

    unsigned threads() const { return threads_; }

    /** Run fn(core) for every core; returns once all are done. */
    void
    run(const std::function<void(unsigned)>& fn)
    {
        if (threads_ <= 1) {
            for (unsigned c = 0; c < cores_; ++c)
                fn(c);
            return;
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            fn_ = &fn;
            pending_ = threads_ - 1;
            ++generation_;
        }
        cv_.notify_all();
        slice(0);
        // The wait below is the quantum barrier: the main thread has
        // finished its own slice and stalls for the slowest worker.
        // That stall is the sharding speedup ceiling, so the profiler
        // accounts it separately (profile phase measure.barrier_stall).
        if (obs::prof::Profiler::armed()) {
            const auto t0 = std::chrono::steady_clock::now();
            std::unique_lock<std::mutex> lk(mu_);
            done_cv_.wait(lk, [&] { return pending_ == 0; });
            fn_ = nullptr;
            stall_ns_ += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            ++stalls_;
            return;
        }
        std::unique_lock<std::mutex> lk(mu_);
        done_cv_.wait(lk, [&] { return pending_ == 0; });
        fn_ = nullptr;
    }

    /** Main-thread barrier-stall totals (profiling runs only). */
    std::uint64_t stall_ns() const { return stall_ns_; }
    std::uint64_t stalls() const { return stalls_; }

  private:
    void
    slice(unsigned id)
    {
        for (unsigned c = id; c < cores_; c += threads_)
            (*fn_)(c);
    }

    void
    worker(unsigned id)
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
            cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            lk.unlock();
            slice(id);
            lk.lock();
            if (--pending_ == 0)
                done_cv_.notify_one();
        }
    }

    unsigned threads_;
    unsigned cores_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    const std::function<void(unsigned)>* fn_ = nullptr;
    unsigned pending_ = 0;
    std::uint64_t generation_ = 0;
    std::uint64_t stall_ns_ = 0;
    std::uint64_t stalls_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

unsigned
effective_threads(unsigned requested, unsigned cores)
{
    if (requested == 0) {
        requested =
            std::min(cores, std::max(1u, std::thread::hardware_concurrency()));
    }
    return std::max(1u, std::min(requested, cores));
}

} // namespace

MultiCoreSystem::MultiCoreSystem(const MachineConfig& cfg, unsigned n_cores)
    : cfg_(cfg), n_cores_(n_cores), mem_(cfg, n_cores),
      workloads_(n_cores)
{
    cores_.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c)
        cores_.push_back(std::make_unique<CoreModel>(cfg, mem_, c));
}

MultiCoreSystem::~MultiCoreSystem() = default;

void
MultiCoreSystem::set_prefetcher(unsigned core,
                                std::unique_ptr<prefetch::Prefetcher> pf)
{
    mem_.set_prefetcher(core, std::move(pf));
}

void
MultiCoreSystem::bind(unsigned core, const Workload& wl)
{
    workloads_[core] = wl.clone();
    cores_[core]->bind(workloads_[core].get());
}

void
MultiCoreSystem::advance(unsigned core, Cycle target)
{
    while (!cores_[core]->run_until(target)) {
        // Benchmark finished a pass: restart it so slower co-runners
        // always observe contention (Section 4.1).
        workloads_[core]->reset();
    }
}

void
MultiCoreSystem::run_warmup(std::uint64_t warmup_records, Cycle quantum)
{
    for (unsigned c = 0; c < n_cores_; ++c)
        TRIAGE_ASSERT(workloads_[c] != nullptr, "core without workload");
    TRIAGE_ASSERT(!warmed_, "run_warmup on an already-warm system");

    // A 1-program "mix" has no co-runners, so it must be
    // indistinguishable from the single-core system. The quantum-based
    // warmup below overshoots the warm point (it stops at a cycle
    // boundary, not a record boundary), so delegate to the shared
    // record-exact protocol instead (tools/diff_fidelity pins this).
    if (n_cores_ == 1) {
        er_ = std::make_unique<EpochRun>(mem_, *cores_[0]);
        er_->run_warmup(warmup_records);
        warmed_ = true;
        return;
    }

    // Warm until every core has executed warmup_records.
    obs::prof::ProfScope prof("warmup");
    Cycle global = quantum;
    auto all_warm = [&] {
        for (unsigned c = 0; c < n_cores_; ++c) {
            if (cores_[c]->stats().mem_records < warmup_records)
                return false;
        }
        return true;
    };
    while (!all_warm()) {
        for (unsigned c = 0; c < n_cores_; ++c)
            advance(c, global);
        global += quantum;
    }
    warm_global_ = global;
    warmed_ = true;
}

void
MultiCoreSystem::checkpoint_warm(Snapshot& s)
{
    for (unsigned c = 0; c < n_cores_; ++c)
        TRIAGE_ASSERT(workloads_[c] != nullptr, "core without workload");
    if (s.saving())
        TRIAGE_ASSERT(warmed_, "checkpoint_warm before run_warmup");

    s.section("multicore.warm");
    std::uint32_t n = n_cores_;
    s.io(n);
    TRIAGE_ASSERT(n == n_cores_, "core-count mismatch on restore");
    if (n_cores_ == 1) {
        if (s.loading() && er_ == nullptr)
            er_ = std::make_unique<EpochRun>(mem_, *cores_[0]);
        er_->checkpoint(s);
    } else {
        s.io(warm_global_);
        mem_.checkpoint(s);
        for (auto& c : cores_)
            c->checkpoint(s);
    }
    if (s.loading())
        warmed_ = true;
}

RunResult
MultiCoreSystem::run_measure(std::uint64_t measure_records, Cycle quantum,
                             ExecMode mode, unsigned threads)
{
    TRIAGE_ASSERT(warmed_,
                  "run_measure needs a warm system (run_warmup or a "
                  "restoring checkpoint_warm)");
    warmed_ = false;
    obs::prof::ProfScope prof("measure");

    if (n_cores_ == 1) {
        er_->begin_measure(measure_records, obs_);
        while (er_->step_epoch()) {
        }
        RunResult r = er_->finish();
        er_.reset();
        return r;
    }

    // Global measurement start.
    Cycle global = warm_global_;
    mem_.clear_stats(global);
    std::vector<CoreStats> base(n_cores_);
    std::vector<Cycle> start_cycle(n_cores_);
    std::vector<Cycle> end_cycle(n_cores_, 0);
    std::vector<CoreStats> final_stats(n_cores_);
    std::vector<bool> done(n_cores_, false);
    for (unsigned c = 0; c < n_cores_; ++c) {
        base[c] = cores_[c]->stats();
        start_cycle[c] = cores_[c]->now();
    }

    if (obs_ != nullptr) {
        std::vector<CoreModel*> core_ptrs;
        for (auto& c : cores_)
            core_ptrs.push_back(c.get());
        attach_observability(*obs_, mem_, core_ptrs);
    }
    const bool sharded = mode == ExecMode::Sharded;
    if (sharded) {
        // The registry, sampler and verifier read only at quantum
        // barriers (main thread) and stay attached; the event trace,
        // lifecycle tracker and partition timeline are driven from the
        // access path and cannot cross shard threads.
        detach_observability(mem_);
    }
    QuantumCrew crew(sharded ? effective_threads(threads, n_cores_) : 1,
                     n_cores_);

    const bool sampling = obs_ != nullptr && obs_->sampler.enabled();
    obs::RunVerifier* verifier =
        obs_ != nullptr ? obs_->verifier : nullptr;
    std::uint64_t next_epoch = 0;
    std::uint64_t next_verify =
        verifier != nullptr ? obs::RunVerifier::DEFAULT_EPOCH_RECORDS : 0;
    if (sampling) {
        obs_->sampler.begin(0);
        next_epoch = obs_->sampler.epoch_len();
    }
    // Epoch progress: the slowest core's measured records, so each
    // closed epoch covers at least [begin, end) records on every core.
    auto progress = [&] {
        std::uint64_t p = measure_records;
        for (unsigned c = 0; c < n_cores_; ++c) {
            std::uint64_t r =
                cores_[c]->stats().mem_records - base[c].mem_records;
            p = std::min(p, r);
        }
        return p;
    };

    // Run until every core finishes its measurement window. Each
    // iteration is one epoch unit per core: a bounded quantum ending at
    // a barrier where shared-state ops merge (sharded) and the sampler
    // and verifier observe a consistent system.
    unsigned remaining = n_cores_;
    while (remaining > 0) {
        if (sharded) {
            mem_.shard_begin();
            crew.run([this, global](unsigned c) { advance(c, global); });
            // hw=false: one weave per quantum, and two counter-read
            // syscalls per quantum would dominate what is measured.
            obs::prof::ProfScope weave("weave", /*hw=*/false);
            mem_.shard_merge();
        } else {
            for (unsigned c = 0; c < n_cores_; ++c)
                advance(c, global);
        }
        global += quantum;
        for (unsigned c = 0; c < n_cores_; ++c) {
            if (done[c])
                continue;
            if (cores_[c]->stats().mem_records - base[c].mem_records >=
                measure_records) {
                done[c] = true;
                end_cycle[c] = cores_[c]->drain();
                final_stats[c] = cores_[c]->stats();
                --remaining;
            }
        }
        if (sampling || verifier != nullptr) {
            std::uint64_t p = progress();
            while (sampling && next_epoch <= p) {
                obs_->sampler.sample(next_epoch);
                next_epoch += obs_->sampler.epoch_len();
            }
            while (verifier != nullptr && next_verify <= p) {
                verifier->on_epoch();
                next_verify += obs::RunVerifier::DEFAULT_EPOCH_RECORDS;
            }
        }
    }
    if (crew.stalls() > 0) {
        obs::prof::Profiler::instance().add_external(
            "measure.barrier_stall", crew.stall_ns(), crew.stalls());
    }
    if (sampling)
        obs_->sampler.finalize(measure_records);
    if (verifier != nullptr)
        verifier->on_run_end();

    RunResult res;
    res.per_core.resize(n_cores_);
    Cycle max_end = 0;
    Cycle min_start = start_cycle[0];
    for (unsigned c = 0; c < n_cores_; ++c) {
        RunStats& s = res.per_core[c];
        s.instructions =
            final_stats[c].instructions - base[c].instructions;
        s.mem_records = final_stats[c].mem_records - base[c].mem_records;
        s.cycles = end_cycle[c] - start_cycle[c];
        s.l1 = mem_.l1(c).stats();
        s.l2 = mem_.l2(c).stats();
        if (mem_.prefetcher(c) != nullptr)
            s.l2pf = mem_.prefetcher(c)->snapshot();
        if (mem_.l1_stride(c) != nullptr)
            s.l1_stride = mem_.l1_stride(c)->snapshot();
        s.energy = mem_.metadata_energy(c);
        s.avg_metadata_ways = mem_.avg_metadata_ways(c, end_cycle[c]);
        max_end = std::max(max_end, end_cycle[c]);
        min_start = std::min(min_start, start_cycle[c]);
    }
    res.llc = mem_.llc().stats();
    res.traffic = mem_.dram().traffic();
    res.span = max_end - min_start;

    // The registry's bound stats and formulas point into this system,
    // and none of them change once the run is over — snapshot them now
    // so harnesses (e.g. triagesim --mix, whose system is local to
    // stats::run_mix) can dump the registry after the system dies.
    if (obs_ != nullptr)
        obs_->freeze();
    return res;
}

RunResult
MultiCoreSystem::run(std::uint64_t warmup_records,
                     std::uint64_t measure_records, Cycle quantum,
                     ExecMode mode, unsigned threads)
{
    run_warmup(warmup_records, quantum);
    return run_measure(measure_records, quantum, mode, threads);
}

} // namespace triage::sim
