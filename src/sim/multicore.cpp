#include "sim/multicore.hpp"

#include <algorithm>

#include "sim/obs_wiring.hpp"
#include "sim/system.hpp"

#include "util/log.hpp"

namespace triage::sim {

MultiCoreSystem::MultiCoreSystem(const MachineConfig& cfg, unsigned n_cores)
    : cfg_(cfg), n_cores_(n_cores), mem_(cfg, n_cores),
      workloads_(n_cores)
{
    cores_.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c)
        cores_.push_back(std::make_unique<CoreModel>(cfg, mem_, c));
}

void
MultiCoreSystem::set_prefetcher(unsigned core,
                                std::unique_ptr<prefetch::Prefetcher> pf)
{
    mem_.set_prefetcher(core, std::move(pf));
}

void
MultiCoreSystem::bind(unsigned core, const Workload& wl)
{
    workloads_[core] = wl.clone();
    cores_[core]->bind(workloads_[core].get());
}

void
MultiCoreSystem::advance(unsigned core, Cycle target)
{
    while (!cores_[core]->run_until(target)) {
        // Benchmark finished a pass: restart it so slower co-runners
        // always observe contention (Section 4.1).
        workloads_[core]->reset();
    }
}

RunResult
MultiCoreSystem::run(std::uint64_t warmup_records,
                     std::uint64_t measure_records, Cycle quantum)
{
    for (unsigned c = 0; c < n_cores_; ++c)
        TRIAGE_ASSERT(workloads_[c] != nullptr, "core without workload");

    // A 1-program "mix" has no co-runners, so it must be
    // indistinguishable from the single-core system. The quantum-based
    // warmup below overshoots the warm point (it stops at a cycle
    // boundary, not a record boundary), so delegate to the shared
    // record-exact protocol instead (tools/diff_fidelity pins this).
    if (n_cores_ == 1)
        return run_one_core(mem_, *cores_[0], warmup_records,
                            measure_records, obs_);

    // Phase 1: warm until every core has executed warmup_records.
    Cycle global = quantum;
    auto all_warm = [&] {
        for (unsigned c = 0; c < n_cores_; ++c) {
            if (cores_[c]->stats().mem_records < warmup_records)
                return false;
        }
        return true;
    };
    while (!all_warm()) {
        for (unsigned c = 0; c < n_cores_; ++c)
            advance(c, global);
        global += quantum;
    }

    // Global measurement start.
    mem_.clear_stats(global);
    std::vector<CoreStats> base(n_cores_);
    std::vector<Cycle> start_cycle(n_cores_);
    std::vector<Cycle> end_cycle(n_cores_, 0);
    std::vector<CoreStats> final_stats(n_cores_);
    std::vector<bool> done(n_cores_, false);
    for (unsigned c = 0; c < n_cores_; ++c) {
        base[c] = cores_[c]->stats();
        start_cycle[c] = cores_[c]->now();
    }

    if (obs_ != nullptr) {
        std::vector<CoreModel*> core_ptrs;
        for (auto& c : cores_)
            core_ptrs.push_back(c.get());
        attach_observability(*obs_, mem_, core_ptrs);
    }
    const bool sampling = obs_ != nullptr && obs_->sampler.enabled();
    obs::RunVerifier* verifier =
        obs_ != nullptr ? obs_->verifier : nullptr;
    std::uint64_t next_epoch = 0;
    std::uint64_t next_verify =
        verifier != nullptr ? obs::RunVerifier::DEFAULT_EPOCH_RECORDS : 0;
    if (sampling) {
        obs_->sampler.begin(0);
        next_epoch = obs_->sampler.epoch_len();
    }
    // Epoch progress: the slowest core's measured records, so each
    // closed epoch covers at least [begin, end) records on every core.
    auto progress = [&] {
        std::uint64_t p = measure_records;
        for (unsigned c = 0; c < n_cores_; ++c) {
            std::uint64_t r =
                cores_[c]->stats().mem_records - base[c].mem_records;
            p = std::min(p, r);
        }
        return p;
    };

    // Phase 2: run until every core finishes its measurement window.
    unsigned remaining = n_cores_;
    while (remaining > 0) {
        for (unsigned c = 0; c < n_cores_; ++c)
            advance(c, global);
        global += quantum;
        for (unsigned c = 0; c < n_cores_; ++c) {
            if (done[c])
                continue;
            if (cores_[c]->stats().mem_records - base[c].mem_records >=
                measure_records) {
                done[c] = true;
                end_cycle[c] = cores_[c]->drain();
                final_stats[c] = cores_[c]->stats();
                --remaining;
            }
        }
        if (sampling || verifier != nullptr) {
            std::uint64_t p = progress();
            while (sampling && next_epoch <= p) {
                obs_->sampler.sample(next_epoch);
                next_epoch += obs_->sampler.epoch_len();
            }
            while (verifier != nullptr && next_verify <= p) {
                verifier->on_epoch();
                next_verify += obs::RunVerifier::DEFAULT_EPOCH_RECORDS;
            }
        }
    }
    if (sampling)
        obs_->sampler.finalize(measure_records);
    if (verifier != nullptr)
        verifier->on_run_end();

    RunResult res;
    res.per_core.resize(n_cores_);
    Cycle max_end = 0;
    Cycle min_start = start_cycle[0];
    for (unsigned c = 0; c < n_cores_; ++c) {
        RunStats& s = res.per_core[c];
        s.instructions =
            final_stats[c].instructions - base[c].instructions;
        s.mem_records = final_stats[c].mem_records - base[c].mem_records;
        s.cycles = end_cycle[c] - start_cycle[c];
        s.l1 = mem_.l1(c).stats();
        s.l2 = mem_.l2(c).stats();
        if (mem_.prefetcher(c) != nullptr)
            s.l2pf = mem_.prefetcher(c)->snapshot();
        if (mem_.l1_stride(c) != nullptr)
            s.l1_stride = mem_.l1_stride(c)->snapshot();
        s.energy = mem_.metadata_energy(c);
        s.avg_metadata_ways = mem_.avg_metadata_ways(c, end_cycle[c]);
        max_end = std::max(max_end, end_cycle[c]);
        min_start = std::min(min_start, start_cycle[c]);
    }
    res.llc = mem_.llc().stats();
    res.traffic = mem_.dram().traffic();
    res.span = max_end - min_start;

    // The registry's bound stats and formulas point into this system,
    // and none of them change once the run is over — snapshot them now
    // so harnesses (e.g. triagesim --mix, whose system is local to
    // stats::run_mix) can dump the registry after the system dies.
    if (obs_ != nullptr)
        obs_->freeze();
    return res;
}

} // namespace triage::sim
