/**
 * @file
 * Bandwidth-constrained DRAM model.
 *
 * Each channel is a priority queue served at one 64 B transfer per
 * `dram_cycles_per_transfer` core cycles. Demand reads are served
 * first (FIFO among themselves) and suffer from background traffic
 * only through a non-preemptible in-flight transfer and queue-full
 * blocking. Background traffic — prefetch fills, writebacks, off-chip
 * prefetcher metadata — is served from the leftover bandwidth: its
 * queueing delay scales with 1/(1 - demand utilization), so a
 * prefetcher whose metadata traffic pushes total demand past the
 * channel's capacity sees its own metadata reads and prefetch fills
 * slow to uselessness while demands keep flowing (the Figure 17
 * mechanism). Prefetch reads are dropped outright when the queue
 * backs up.
 *
 * The queue state advances lazily (drained on each request), so the
 * model needs no global event loop.
 *
 * All traffic is accounted per TrafficClass so benches can report the
 * paper's traffic-overhead numbers (Figures 11, 12).
 */
#ifndef TRIAGE_SIM_DRAM_HPP
#define TRIAGE_SIM_DRAM_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace triage::obs {
class Registry;
} // namespace triage::obs

namespace triage::sim {

/** Byte counters per traffic class. */
struct DramTraffic {
    std::array<std::uint64_t, NUM_TRAFFIC_CLASSES> bytes{};

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto b : bytes)
            t += b;
        return t;
    }

    std::uint64_t
    of(TrafficClass c) const
    {
        return bytes[static_cast<unsigned>(c)];
    }
};

/** Multi-channel DRAM with demand-priority queueing. */
class Dram
{
  public:
    explicit Dram(const MachineConfig& cfg);

    /**
     * Issue a demand read for @p block at time @p now.
     * @return absolute completion time (base latency + queueing).
     */
    Cycle demand_read(Addr block, Cycle now);

    /**
     * Issue a prefetch read. Returns the completion time, or 0 if the
     * prefetch was dropped because the channel queue exceeded the
     * prefetch queue limit (caller must treat 0 as "not issued").
     */
    Cycle prefetch_read(Addr block, Cycle now);

    /** Account a dirty writeback (fire-and-forget background write). */
    void writeback(Addr block, Cycle now);

    /**
     * Off-chip prefetcher-metadata access of @p bytes (MISB et al.).
     * Consumes background bandwidth; returns completion time of the
     * read. @p charge_time false models an *idealized* prefetcher whose
     * metadata traffic is counted but does not occupy the bus
     * (Section 4.1: idealized STMS/Domino).
     */
    Cycle metadata_access(Cycle now, std::uint32_t bytes, bool is_write,
                          bool charge_time = true);

    /** Total queued transfers on @p block's channel at @p now. */
    Cycle queue_delay(Addr block, Cycle now) const;

    const DramTraffic& traffic() const { return traffic_; }
    std::uint64_t dropped_prefetches() const { return dropped_prefetches_; }

    /** Reset byte counters (not channel state). */
    void clear_traffic() { traffic_ = {}; dropped_prefetches_ = 0; }

    /** Add bytes to a traffic class without consuming channel time. */
    void
    account_traffic(TrafficClass c, std::uint64_t bytes)
    {
        traffic_.bytes[static_cast<unsigned>(c)] += bytes;
    }

    /** Recent demand utilization of @p chan in [0, 1) (diagnostics). */
    double demand_utilization(unsigned chan) const;

    /** Bind per-class byte counters into @p reg under @p prefix. */
    void register_stats(obs::Registry& reg, const std::string& prefix) const;

    /** Save/restore channel queues and traffic accounting. */
    void
    checkpoint(Snapshot& s)
    {
        s.section("dram");
        s.io_vec(channels_, [](Snapshot& a, Channel& c) {
            a.io(c.demand_q);
            a.io(c.bg_q);
            a.io(c.last_drain);
            a.io(c.demand_iat);
            a.io(c.last_demand);
        });
        s.io_pod(traffic_);
        s.io(dropped_prefetches_);
    }

  private:
    struct Channel {
        double demand_q = 0.0; ///< queued demand transfers
        double bg_q = 0.0;     ///< queued background transfers
        Cycle last_drain = 0;
        /** EWMA of demand inter-arrival time (cycles). */
        double demand_iat = 1e6;
        Cycle last_demand = 0;
    };

    /** Total queued transfers a channel may hold before blocking. */
    static constexpr double QUEUE_CAP = 64.0;

    unsigned channel_of(Addr block) const;
    /** Serve queued transfers for the time elapsed since last drain. */
    void drain(Channel& c, Cycle now) const;
    Cycle enqueue_demand(unsigned chan, Cycle now);
    /**
     * Enqueue a background transfer.
     * @return queueing delay before its service completes.
     */
    Cycle enqueue_background(unsigned chan, Cycle now);

    std::uint32_t latency_;
    std::uint32_t cycles_per_transfer_;
    std::uint32_t prefetch_queue_limit_;
    std::vector<Channel> channels_;
    DramTraffic traffic_;
    std::uint64_t dropped_prefetches_ = 0;
};

} // namespace triage::sim

#endif // TRIAGE_SIM_DRAM_HPP
