/**
 * @file
 * Fundamental types shared across the simulator: addresses, cycles,
 * cache-block geometry.
 */
#ifndef TRIAGE_SIM_TYPES_HPP
#define TRIAGE_SIM_TYPES_HPP

#include <cstdint>

namespace triage::sim {

/** Byte address (we model a flat physical address space). */
using Addr = std::uint64_t;

/** Program counter of a load/store instruction. */
using Pc = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Cache block geometry: 64-byte lines throughout (Table 1). */
inline constexpr unsigned BLOCK_SHIFT = 6;
inline constexpr std::uint64_t BLOCK_SIZE = 1ULL << BLOCK_SHIFT;

/** Convert a byte address to a block (line) address. */
constexpr Addr
block_of(Addr byte_addr)
{
    return byte_addr >> BLOCK_SHIFT;
}

/** First byte of a block. */
constexpr Addr
block_base(Addr block)
{
    return block << BLOCK_SHIFT;
}

/**
 * How a multi-core measurement phase advances its cores.
 *
 * Legacy interleaves cores serially (core-major within each quantum).
 * Sharded runs each core's quantum against a frozen view of the shared
 * LLC/DRAM and replays the logged shared-state operations in a fixed
 * core-major merge order at the quantum barrier — results are
 * bit-identical for any worker-thread count (docs/parallel-runs.md).
 */
enum class ExecMode : std::uint8_t {
    Legacy = 0,
    Sharded = 1,
};

/** Kinds of memory traffic tracked by the DRAM model. */
enum class TrafficClass : std::uint8_t {
    DemandRead,    ///< demand load/store fill
    PrefetchRead,  ///< prefetch fill
    Writeback,     ///< dirty eviction
    MetadataRead,  ///< off-chip prefetcher metadata read (MISB/STMS/Domino)
    MetadataWrite, ///< off-chip prefetcher metadata update
    NumClasses
};

inline constexpr unsigned NUM_TRAFFIC_CLASSES =
    static_cast<unsigned>(TrafficClass::NumClasses);

} // namespace triage::sim

#endif // TRIAGE_SIM_TYPES_HPP
