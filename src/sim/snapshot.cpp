#include "sim/snapshot.hpp"

namespace triage::sim {

namespace {

/** Archive format magic ("TRSN") + layout version. Version 3: flat
 *  hot-path maps serialize as sorted (key, value) pairs and the
 *  tag-compressor probe table is rebuilt on load instead of stored
 *  (docs/performance.md §Hot-path v2). */
constexpr std::uint32_t MAGIC = 0x5452534eu;
constexpr std::uint32_t FORMAT_VERSION = 3;

/**
 * FNV-1a folded over 8-byte words (byte-wise tail). Warm blobs run to
 * tens of MB and the checksum is paid on every seal and open, so the
 * byte-at-a-time variant's serial multiply chain was a measurable
 * slice of checkpoint fork latency (format v2 broke compatibility
 * with v1's byte-wise digest).
 */
std::uint64_t
fnv1a(const std::uint8_t* p, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ull;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        h ^= w;
        h *= 1099511628211ull;
    }
    for (; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
put_u32(SnapshotBlob& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put_u64(SnapshotBlob& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool
get_u32(const SnapshotBlob& in, std::size_t& pos, std::uint32_t& v)
{
    if (pos + 4 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[pos + static_cast<std::size_t>(i)])
             << (8 * i);
    pos += 4;
    return true;
}

bool
get_u64(const SnapshotBlob& in, std::size_t& pos, std::uint64_t& v)
{
    if (pos + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
             << (8 * i);
    pos += 8;
    return true;
}

} // namespace

void
Snapshot::underrun(std::size_t need) const
{
    util::panic(util::format_msg("snapshot underrun: need ", need,
                                 " bytes at offset ", pos_, " of ",
                                 bytes_.size()));
}

void
Snapshot::section(const char* name)
{
    std::string tag = name;
    if (saving()) {
        io(tag);
        return;
    }
    std::string seen;
    io(seen);
    if (seen != tag) {
        util::panic(util::format_msg(
            "snapshot section mismatch: restore expects \"", tag,
            "\" but the archive has \"", seen,
            "\" — save/restore sequences have drifted"));
    }
}

void
Snapshot::io(std::string& s)
{
    std::uint64_t n = s.size();
    io(n);
    if (loading())
        s.resize(static_cast<std::size_t>(n));
    if (n > 0)
        io_bytes(reinterpret_cast<std::uint8_t*>(s.data()), s.size());
}

SnapshotBlob
Snapshot::seal(std::uint32_t version, const std::string& fingerprint) const
{
    TRIAGE_ASSERT(saving(), "seal() is for save-mode archives");
    SnapshotBlob out;
    out.reserve(bytes_.size() + fingerprint.size() + 40);
    put_u32(out, MAGIC);
    put_u32(out, FORMAT_VERSION);
    put_u32(out, version);
    put_u32(out, static_cast<std::uint32_t>(fingerprint.size()));
    out.insert(out.end(), fingerprint.begin(), fingerprint.end());
    put_u64(out, bytes_.size());
    out.insert(out.end(), bytes_.begin(), bytes_.end());
    put_u64(out, fnv1a(bytes_.data(), bytes_.size()));
    return out;
}

bool
Snapshot::open(const SnapshotBlob& blob, std::uint32_t version,
               const std::string& fingerprint, Snapshot& out)
{
    std::size_t pos = 0;
    std::uint32_t magic = 0, fmt = 0, ver = 0, fp_len = 0;
    if (!get_u32(blob, pos, magic) || magic != MAGIC)
        return false;
    if (!get_u32(blob, pos, fmt) || fmt != FORMAT_VERSION)
        return false;
    if (!get_u32(blob, pos, ver) || ver != version)
        return false;
    if (!get_u32(blob, pos, fp_len) || pos + fp_len > blob.size())
        return false;
    std::string fp(blob.begin() + static_cast<std::ptrdiff_t>(pos),
                   blob.begin() + static_cast<std::ptrdiff_t>(pos + fp_len));
    pos += fp_len;
    if (fp != fingerprint)
        return false;
    std::uint64_t payload_len = 0;
    if (!get_u64(blob, pos, payload_len) || pos + payload_len > blob.size())
        return false;
    std::vector<std::uint8_t> payload(
        blob.begin() + static_cast<std::ptrdiff_t>(pos),
        blob.begin() + static_cast<std::ptrdiff_t>(pos + payload_len));
    pos += static_cast<std::size_t>(payload_len);
    std::uint64_t sum = 0;
    if (!get_u64(blob, pos, sum) ||
        sum != fnv1a(payload.data(), payload.size()))
        return false;
    out.mode_ = Mode::Load;
    out.bytes_ = std::move(payload);
    out.pos_ = 0;
    return true;
}

Snapshot
Snapshot::open_or_die(const SnapshotBlob& blob, std::uint32_t version,
                      const std::string& fingerprint)
{
    Snapshot s;
    if (!open(blob, version, fingerprint, s)) {
        util::fatal(util::format_msg(
            "snapshot rejected: bad magic/version/fingerprint/checksum "
            "(expected version ", version, ", fingerprint \"", fingerprint,
            "\", got ", blob.size(), " bytes)"));
    }
    return s;
}

} // namespace triage::sim
