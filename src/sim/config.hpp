/**
 * @file
 * Machine configuration (the paper's Table 1) plus simulator knobs.
 */
#ifndef TRIAGE_SIM_CONFIG_HPP
#define TRIAGE_SIM_CONFIG_HPP

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace triage::sim {

/** Parameters of one cache level. */
struct CacheConfig {
    std::uint64_t size_bytes = 0;
    std::uint32_t assoc = 0;
    /** Load-to-use latency in cycles, measured from request issue. */
    std::uint32_t latency = 0;
};

/** Data-cache replacement policy selector (LLC). */
enum class ReplPolicy : std::uint8_t {
    Lru,
    Srrip,
    Drrip,
    Ship,
    Hawkeye,
};

/**
 * Full machine configuration. Defaults reproduce the paper's Table 1:
 * 2 GHz 4-wide out-of-order core, 128-entry ROB, 64 KB L1D (stride
 * prefetcher), 512 KB private L2, 2 MB/core shared 16-way L3, DRAM at
 * 85 ns / 32 GB/s.
 */
struct MachineConfig {
    // Core.
    std::uint32_t rob_entries = 128;
    std::uint32_t fetch_width = 4;
    std::uint32_t retire_width = 4;

    // Cache hierarchy.
    CacheConfig l1d{64 * 1024, 4, 3};
    CacheConfig l2{512 * 1024, 8, 11};
    /** LLC size is per core; the shared cache scales with core count. */
    CacheConfig llc{2 * 1024 * 1024, 16, 20};

    /**
     * Extra LLC access latency in cycles (Section 4.6 sensitivity study:
     * fine-grained metadata lookup logic could lengthen the LLC pipeline
     * by up to 6 cycles; applied to both data and metadata accesses).
     */
    std::uint32_t llc_extra_latency = 0;

    // DRAM (Table 1: 85 ns latency, 32 GB/s total over 2 channels).
    std::uint32_t dram_channels = 2;
    /** Idle-queue DRAM latency in cycles (85 ns at 2 GHz). */
    std::uint32_t dram_latency = 170;
    /**
     * Per-channel occupancy per 64 B transfer, in core cycles.
     * 32 GB/s at 2 GHz is 16 B/cycle total, i.e. 8 B/cycle per channel,
     * so one 64 B line occupies a channel for 8 cycles.
     */
    std::uint32_t dram_cycles_per_transfer = 8;
    /**
     * Prefetch reads are dropped when a channel backlog exceeds this many
     * pending transfers; models a bounded prefetch queue with
     * demand-over-prefetch priority at the memory controller.
     */
    std::uint32_t dram_prefetch_queue_limit = 32;

    /** L1 stride prefetcher enabled (Table 1 baseline includes it). */
    bool l1_stride_prefetcher = true;

    /** Per-core L2-access-stream prefetch degree (Section 4.1: default 1). */
    std::uint32_t prefetch_degree = 1;

    /** LLC data-partition replacement policy (paper baseline: LRU). */
    ReplPolicy llc_replacement = ReplPolicy::Lru;

    /**
     * Per-core limit on outstanding off-chip demand misses (L2 MSHRs);
     * 0 = unlimited. When the MSHR file is full, a new demand miss
     * stalls until the oldest fill completes and prefetch misses are
     * dropped.
     */
    std::uint32_t l2_mshrs = 0;

    /**
     * Model address translation (Table 1's 48-entry L1 / 1024-entry L2
     * TLBs). Off by default: the synthetic analogs use flat addresses
     * and translation adds second-order latency only.
     */
    bool model_tlb = false;
    std::uint32_t l1_tlb_entries = 48;
    std::uint32_t l2_tlb_entries = 1024;
    std::uint32_t l2_tlb_latency = 7;    ///< extra cycles on L1-TLB miss
    std::uint32_t page_walk_latency = 60; ///< extra cycles on L2-TLB miss

    /** Human-readable multi-line description (for table1_config). */
    std::string describe(unsigned n_cores = 1) const;

    /** Bytes covered by one LLC way (whole shared cache / assoc). */
    std::uint64_t
    llc_way_bytes(unsigned n_cores) const
    {
        return llc.size_bytes * n_cores / llc.assoc;
    }
};

} // namespace triage::sim

#endif // TRIAGE_SIM_CONFIG_HPP
