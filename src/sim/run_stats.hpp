/**
 * @file
 * Aggregated results of a simulation run: per-core performance, cache
 * behaviour, prefetcher effectiveness, traffic and energy.
 */
#ifndef TRIAGE_SIM_RUN_STATS_HPP
#define TRIAGE_SIM_RUN_STATS_HPP

#include <cstdint>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/cpu.hpp"
#include "sim/dram.hpp"
#include "sim/types.hpp"

namespace triage::sim {

/** Everything measured for one core over one measurement window. */
struct RunStats {
    // Performance.
    std::uint64_t instructions = 0;
    std::uint64_t mem_records = 0;
    Cycle cycles = 0;

    // Cache behaviour (this core's private levels; LLC is global).
    cache::CacheStats l1;
    cache::CacheStats l2;

    // Prefetchers.
    prefetch::PrefetcherStats l2pf;
    prefetch::PrefetcherStats l1_stride;

    // Metadata accounting.
    cache::MetadataEnergy energy;
    double avg_metadata_ways = 0.0;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }

    /**
     * Prefetch coverage: fraction of would-be L2 demand misses that the
     * prefetcher eliminated (useful prefetches over useful + remaining
     * misses).
     */
    double
    coverage() const
    {
        std::uint64_t denom = l2pf.useful + l2.demand_misses;
        return denom == 0 ? 0.0
                          : static_cast<double>(l2pf.useful) /
                                static_cast<double>(denom);
    }

    /** Prefetch accuracy of the L2 prefetcher under test. */
    double accuracy() const { return l2pf.accuracy(); }
};

/** Results of a whole run (single- or multi-core). */
struct RunResult {
    std::vector<RunStats> per_core;
    /** Shared-LLC stats over the measurement window. */
    cache::CacheStats llc;
    /** DRAM bytes moved during the measurement window. */
    DramTraffic traffic;
    /** Wall-clock span (max core end minus measurement start). */
    Cycle span = 0;

    const RunStats& core0() const { return per_core.front(); }
};

} // namespace triage::sim

#endif // TRIAGE_SIM_RUN_STATS_HPP
