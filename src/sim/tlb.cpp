#include "sim/tlb.hpp"

#include "obs/registry.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::sim {

Tlb::Tlb(std::uint32_t l1_entries, std::uint32_t l2_entries,
         std::uint32_t l2_latency, std::uint32_t walk_latency)
    : l2_latency_(l2_latency), walk_latency_(walk_latency),
      l1_(l1_entries), l2_(l2_entries)
{
    TRIAGE_ASSERT(l1_entries > 0 && l2_entries >= l2_ways_);
    TRIAGE_ASSERT(l2_entries % l2_ways_ == 0);
}

bool
Tlb::probe(std::vector<Entry>& table, std::uint32_t ways, Addr page,
           std::uint64_t& clock)
{
    std::size_t sets = table.size() / ways;
    std::size_t set =
        sets == 1 ? 0 : util::mix64(page) % sets;
    Entry* row = &table[set * ways];
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (row[w].valid && row[w].page == page) {
            row[w].lru = ++clock;
            return true;
        }
    }
    return false;
}

void
Tlb::install(std::vector<Entry>& table, std::uint32_t ways, Addr page,
             std::uint64_t& clock)
{
    std::size_t sets = table.size() / ways;
    std::size_t set =
        sets == 1 ? 0 : util::mix64(page) % sets;
    Entry* row = &table[set * ways];
    Entry* victim = &row[0];
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!row[w].valid) {
            victim = &row[w];
            break;
        }
        if (row[w].lru < victim->lru)
            victim = &row[w];
    }
    *victim = {page, ++clock, true};
}

std::uint32_t
Tlb::access(Addr byte_addr)
{
    ++stats_.accesses;
    Addr page = byte_addr >> PAGE_SHIFT;
    if (probe(l1_, static_cast<std::uint32_t>(l1_.size()), page, clock_))
        return 0;
    ++stats_.l1_misses;
    if (probe(l2_, l2_ways_, page, clock_)) {
        install(l1_, static_cast<std::uint32_t>(l1_.size()), page,
                clock_);
        return l2_latency_;
    }
    ++stats_.walks;
    install(l2_, l2_ways_, page, clock_);
    install(l1_, static_cast<std::uint32_t>(l1_.size()), page, clock_);
    return l2_latency_ + walk_latency_;
}

void
Tlb::register_stats(obs::Registry& reg, const std::string& prefix) const
{
    obs::Scope s(reg, prefix);
    s.bind_counter("accesses", &stats_.accesses);
    s.bind_counter("l1_misses", &stats_.l1_misses);
    s.bind_counter("walks", &stats_.walks);
}

} // namespace triage::sim
