#include "sim/cpu.hpp"

#include <algorithm>

#include "cache/hierarchy.hpp"
#include "util/log.hpp"

namespace triage::sim {

CoreModel::CoreModel(const MachineConfig& cfg, cache::MemorySystem& mem,
                     unsigned core_id)
    : cfg_(cfg), mem_(mem), core_id_(core_id),
      rob_(cfg.rob_entries, 0),
      mem_completions_(DEP_RING, 0)
{
    TRIAGE_ASSERT(cfg.rob_entries > 0 && cfg.fetch_width > 0 &&
                  cfg.retire_width > 0);
}

void
CoreModel::bind(Workload* wl)
{
    wl_ = wl;
}

Cycle
CoreModel::retire_head()
{
    // In-order retirement: the head leaves no earlier than its own
    // completion, no earlier than the previous retirement's cycle, and
    // at most retire_width leave per cycle.
    Cycle completion = rob_[rob_head_];
    // Conditional wrap instead of % — rob_entries is a runtime value,
    // so the modulo is a real division on the per-instruction path.
    if (++rob_head_ == cfg_.rob_entries)
        rob_head_ = 0;
    --rob_count_;

    Cycle t = std::max(completion, retire_cycle_);
    if (t > retire_cycle_) {
        retire_cycle_ = t;
        retired_this_cycle_ = 1;
    } else {
        if (retired_this_cycle_ >= cfg_.retire_width) {
            ++retire_cycle_;
            retired_this_cycle_ = 1;
        } else {
            ++retired_this_cycle_;
        }
    }
    return retire_cycle_;
}

void
CoreModel::dispatch_one(Cycle completion)
{
    if (rob_count_ == cfg_.rob_entries) {
        // Window full: dispatch stalls until the head retires.
        Cycle freed = retire_head();
        if (freed > dispatch_cycle_) {
            dispatch_cycle_ = freed;
            dispatched_this_cycle_ = 0;
        }
    }
    std::uint32_t tail = rob_head_ + rob_count_;
    if (tail >= cfg_.rob_entries)
        tail -= cfg_.rob_entries;
    rob_[tail] = completion;
    ++rob_count_;

    ++dispatched_this_cycle_;
    if (dispatched_this_cycle_ >= cfg_.fetch_width) {
        ++dispatch_cycle_;
        dispatched_this_cycle_ = 0;
    }
}

void
CoreModel::step(const TraceRecord& rec)
{
    // Non-memory filler instructions complete one cycle after dispatch.
    for (std::uint32_t i = 0; i < rec.nonmem_before; ++i) {
        dispatch_one(dispatch_cycle_ + 1);
        ++stats_.instructions;
    }

    Cycle issue = dispatch_cycle_;
    if (rec.dep_distance != 0 && rec.dep_distance <= DEP_RING &&
        rec.dep_distance <= mem_seq_) {
        Cycle dep_done =
            mem_completions_[(mem_seq_ - rec.dep_distance) % DEP_RING];
        issue = std::max(issue, dep_done);
    }

    Cycle completion =
        mem_.access(core_id_, rec.pc, rec.addr, rec.is_write, issue);
    Cycle rob_completion = completion;
    if (rec.is_write) {
        // Stores retire from the store buffer without waiting for the
        // fill; dependent loads observe forwarded data one cycle later.
        rob_completion = issue + 1;
        completion = issue + 1;
        ++stats_.stores;
    } else {
        ++stats_.loads;
    }
    mem_completions_[mem_seq_ % DEP_RING] = completion;
    ++mem_seq_;

    dispatch_one(rob_completion);
    ++stats_.instructions;
    ++stats_.mem_records;
}

bool
CoreModel::run_until(Cycle target)
{
    TRIAGE_ASSERT(wl_ != nullptr, "no workload bound");
    TraceRecord rec;
    while (dispatch_cycle_ < target) {
        if (!wl_->next(rec))
            return false;
        ++wl_records_;
        step(rec);
    }
    return true;
}

void
CoreModel::run_records(std::uint64_t n)
{
    TRIAGE_ASSERT(wl_ != nullptr, "no workload bound");
    // One-record lookahead: pull record i+1 and hint its cache/metadata
    // rows *before* simulating record i, so the host-memory fetches for
    // the next access overlap a full record's worth of work. The pull
    // order and wrap-at-EOF rule are unchanged (the cursor replayed by
    // restore_workload_position stays exact), and no record is buffered
    // across calls — only wall clock moves (docs/performance.md).
    TraceRecord rec, ahead;
    bool have_ahead = false;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (have_ahead) {
            rec = ahead;
            have_ahead = false;
        } else {
            if (!wl_->next(rec)) {
                wl_->reset();
                if (!wl_->next(rec))
                    return; // empty workload
            }
            ++wl_records_;
        }
        if (i + 1 < n) {
            if (!wl_->next(ahead)) {
                wl_->reset();
                have_ahead = wl_->next(ahead);
            } else {
                have_ahead = true;
            }
            if (have_ahead) {
                ++wl_records_;
                mem_.lookahead_hint(core_id_, ahead.addr);
            }
        }
        step(rec);
    }
}

void
CoreModel::restore_workload_position(std::uint64_t n)
{
    TRIAGE_ASSERT(wl_ != nullptr, "no workload bound");
    wl_->reset();
    std::uint64_t remaining = n;
    while (remaining > 0) {
        // skip() lets seekable workloads (raw .tria streams, vectors)
        // restore a deep cursor in O(passes) instead of O(records);
        // the default implementation replays next() calls, so the
        // wrap-at-EOF rule below matches run_records exactly.
        const std::uint64_t got = wl_->skip(remaining);
        remaining -= got;
        if (remaining > 0) {
            wl_->reset();
            if (got == 0)
                break; // empty workload
        }
    }
    wl_records_ = n;
}

Cycle
CoreModel::drain() const
{
    Cycle end = std::max(dispatch_cycle_, retire_cycle_);
    std::uint32_t idx = rob_head_;
    for (std::uint32_t i = 0; i < rob_count_; ++i) {
        end = std::max(end, rob_[idx]);
        if (++idx == cfg_.rob_entries)
            idx = 0;
    }
    return end;
}

} // namespace triage::sim
