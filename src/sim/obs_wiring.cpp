#include "sim/obs_wiring.hpp"

#include <string>

#include "cache/hierarchy.hpp"
#include "sim/cpu.hpp"

namespace triage::sim {

namespace {

/** Per-core performance formulas, baselined at registration time. */
void
register_core_stats(obs::Registry& reg, const CoreModel& core,
                    const std::string& base)
{
    const CoreModel* c = &core;
    const CoreStats at_start = core.stats();
    const Cycle start = core.now();
    obs::Scope s(reg, base);
    s.add_formula("instructions", [c, at_start] {
        return static_cast<double>(c->stats().instructions -
                                   at_start.instructions);
    });
    s.add_formula("mem_records", [c, at_start] {
        return static_cast<double>(c->stats().mem_records -
                                   at_start.mem_records);
    });
    s.add_formula("cycles", [c, start] {
        return static_cast<double>(c->now() - start);
    });
    s.add_formula("ipc", [c, at_start, start] {
        const Cycle cycles = c->now() - start;
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(c->stats().instructions -
                                   at_start.instructions) /
               static_cast<double>(cycles);
    });
}

void
register_core_probes(obs::EpochSampler& sampler, const CoreModel& core,
                     cache::MemorySystem& mem, unsigned idx,
                     const std::string& base)
{
    const CoreModel* c = &core;
    sampler.add_rate(
        base + ".ipc",
        [c] { return static_cast<double>(c->stats().instructions); },
        [c] { return static_cast<double>(c->now()); });

    // Coverage = useful / (useful + remaining demand misses), both as
    // per-epoch deltas (matches RunStats::coverage over the epoch).
    cache::MemorySystem* m = &mem;
    prefetch::Prefetcher* pf = mem.prefetcher(idx);
    if (pf != nullptr) {
        sampler.add_rate(
            base + ".coverage",
            [pf] { return static_cast<double>(pf->stats().useful); },
            [pf, m, idx] {
                return static_cast<double>(
                    pf->stats().useful +
                    m->l2(idx).stats().demand_misses);
            });
    }

    // Instantaneous LLC way allocation attributable to this core.
    const std::uint64_t way_bytes =
        mem.config().llc_way_bytes(mem.num_cores());
    sampler.add_level(base + ".meta_ways", [m, idx, way_bytes] {
        if (way_bytes == 0)
            return 0.0;
        return static_cast<double>(m->metadata_bytes(idx)) /
               static_cast<double>(way_bytes);
    });
}

/**
 * Per-core lifecycle class counters and formulas. The tracker's
 * per-core array is sized once by reset(), so the bound pointers stay
 * valid until the next attach.
 */
void
register_lifecycle_stats(obs::Registry& reg,
                         const obs::LifecycleTracker& lc, unsigned idx,
                         const std::string& base)
{
    const obs::LifecycleCounts* c = &lc.core_counts(idx);
    obs::Scope s(reg, base + ".lifecycle");
    s.bind_counter("issued", &c->issued);
    s.bind_counter("accurate", &c->accurate);
    s.bind_counter("late", &c->late);
    s.bind_counter("early_evicted", &c->early_evicted);
    s.bind_counter("useless", &c->useless);
    s.bind_counter("dropped", &c->dropped);
    s.add_formula("covered", [c] {
        return static_cast<double>(c->covered());
    });
    s.add_formula("polluting", [c] {
        return static_cast<double>(c->polluting());
    });
}

void
register_lifecycle_probes(obs::EpochSampler& sampler,
                          const obs::LifecycleTracker& lc, unsigned idx,
                          const std::string& base)
{
    const obs::LifecycleCounts* c = &lc.core_counts(idx);
    sampler.add_delta(base + ".lifecycle.covered", [c] {
        return static_cast<double>(c->covered());
    });
    sampler.add_delta(base + ".lifecycle.polluting", [c] {
        return static_cast<double>(c->polluting());
    });
}

} // namespace

void
attach_observability(obs::Observability& obs, cache::MemorySystem& mem,
                     const std::vector<CoreModel*>& cores)
{
    obs.registry.clear();
    obs.sampler.clear_probes();
    obs.sampler.reset();

    mem.register_stats(obs.registry);
    mem.set_trace(&obs.trace);

    // Arm the lifecycle tracker and partition timeline for this run's
    // core count; attaching resets any previous run's records.
    obs.lifecycle.reset(static_cast<unsigned>(cores.size()));
    obs.partition_timeline.reset(static_cast<unsigned>(cores.size()));
    mem.set_lifecycle(&obs.lifecycle);

    for (unsigned i = 0; i < cores.size(); ++i) {
        const std::string base = "core" + std::to_string(i);
        register_core_stats(obs.registry, *cores[i], base);
        register_core_probes(obs.sampler, *cores[i], mem, i, base);
        register_lifecycle_stats(obs.registry, obs.lifecycle, i, base);
        register_lifecycle_probes(obs.sampler, obs.lifecycle, i, base);
        if (prefetch::Prefetcher* pf = mem.prefetcher(i)) {
            pf->register_probes(obs.sampler, base + ".pf");
            pf->set_partition_timeline(&obs.partition_timeline, i);
        }
    }

    // Shared-LLC metadata partition level probe (total ways).
    cache::MemorySystem* m = &mem;
    obs.sampler.add_level("llc.metadata_ways", [m] {
        return static_cast<double>(m->metadata_ways());
    });

    // Invariant harness last, so its checkers see the fully wired
    // system; the run loop drives on_epoch()/on_run_end() from here on.
    if (obs.verifier != nullptr)
        obs.verifier->attach(mem);
}

void
detach_observability(cache::MemorySystem& mem)
{
    mem.set_trace(nullptr);
    mem.set_lifecycle(nullptr);
    for (unsigned i = 0; i < mem.num_cores(); ++i) {
        if (prefetch::Prefetcher* pf = mem.prefetcher(i))
            pf->set_partition_timeline(nullptr, i);
    }
}

} // namespace triage::sim
