#include "sim/obs_wiring.hpp"

#include <string>

#include "cache/hierarchy.hpp"
#include "sim/cpu.hpp"

namespace triage::sim {

namespace {

/** Per-core performance formulas, baselined at registration time. */
void
register_core_stats(obs::Registry& reg, const CoreModel& core,
                    const std::string& base)
{
    const CoreModel* c = &core;
    const CoreStats at_start = core.stats();
    const Cycle start = core.now();
    obs::Scope s(reg, base);
    s.add_formula("instructions", [c, at_start] {
        return static_cast<double>(c->stats().instructions -
                                   at_start.instructions);
    });
    s.add_formula("mem_records", [c, at_start] {
        return static_cast<double>(c->stats().mem_records -
                                   at_start.mem_records);
    });
    s.add_formula("cycles", [c, start] {
        return static_cast<double>(c->now() - start);
    });
    s.add_formula("ipc", [c, at_start, start] {
        const Cycle cycles = c->now() - start;
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(c->stats().instructions -
                                   at_start.instructions) /
               static_cast<double>(cycles);
    });
}

void
register_core_probes(obs::EpochSampler& sampler, const CoreModel& core,
                     cache::MemorySystem& mem, unsigned idx,
                     const std::string& base)
{
    const CoreModel* c = &core;
    sampler.add_rate(
        base + ".ipc",
        [c] { return static_cast<double>(c->stats().instructions); },
        [c] { return static_cast<double>(c->now()); });

    // Coverage = useful / (useful + remaining demand misses), both as
    // per-epoch deltas (matches RunStats::coverage over the epoch).
    cache::MemorySystem* m = &mem;
    prefetch::Prefetcher* pf = mem.prefetcher(idx);
    if (pf != nullptr) {
        sampler.add_rate(
            base + ".coverage",
            [pf] { return static_cast<double>(pf->stats().useful); },
            [pf, m, idx] {
                return static_cast<double>(
                    pf->stats().useful +
                    m->l2(idx).stats().demand_misses);
            });
    }

    // Instantaneous LLC way allocation attributable to this core.
    const std::uint64_t way_bytes =
        mem.config().llc_way_bytes(mem.num_cores());
    sampler.add_level(base + ".meta_ways", [m, idx, way_bytes] {
        if (way_bytes == 0)
            return 0.0;
        return static_cast<double>(m->metadata_bytes(idx)) /
               static_cast<double>(way_bytes);
    });
}

} // namespace

void
attach_observability(obs::Observability& obs, cache::MemorySystem& mem,
                     const std::vector<CoreModel*>& cores)
{
    obs.registry.clear();
    obs.sampler.clear_probes();
    obs.sampler.reset();

    mem.register_stats(obs.registry);
    mem.set_trace(&obs.trace);

    for (unsigned i = 0; i < cores.size(); ++i) {
        const std::string base = "core" + std::to_string(i);
        register_core_stats(obs.registry, *cores[i], base);
        register_core_probes(obs.sampler, *cores[i], mem, i, base);
        if (prefetch::Prefetcher* pf = mem.prefetcher(i)) {
            pf->register_probes(obs.sampler, base + ".pf");
        }
    }

    // Shared-LLC metadata partition level probe (total ways).
    cache::MemorySystem* m = &mem;
    obs.sampler.add_level("llc.metadata_ways", [m] {
        return static_cast<double>(m->metadata_ways());
    });
}

void
detach_observability(cache::MemorySystem& mem)
{
    mem.set_trace(nullptr);
}

} // namespace triage::sim
