/**
 * @file
 * Snapshot: the warm-state serialization archive behind resumable
 * epoch units (docs/parallel-runs.md §checkpointing).
 *
 * One bidirectional `io()` member per component keeps save and restore
 * from drifting apart: the same statement sequence either appends to or
 * consumes from the byte stream depending on the archive Mode. Three
 * properties the rest of the system relies on:
 *
 *  - **Byte determinism.** Two identical component states always
 *    serialize to identical bytes. Unordered containers are written in
 *    sorted-key order, and every scalar goes through a fixed-width
 *    little-endian codec, so `save(A) == save(B)` is a usable equality
 *    test on warm state (tests/test_snapshot.cpp leans on this).
 *  - **Self-description.** `section("name")` writes a tag that load
 *    mode verifies; a restore that consumes fields in a different
 *    order than save wrote them panics at the first divergent section
 *    instead of silently misinterpreting bytes.
 *  - **Fingerprinted framing.** `seal()` wraps the payload with a
 *    magic, a format version, a caller fingerprint (the warm JobKey
 *    prefix + machine-config hash) and an FNV-1a checksum; `open()`
 *    rejects mismatches softly (a disk-cache miss), `open_or_die()`
 *    treats them as fatal (corrupted explicit checkpoint).
 */
#ifndef TRIAGE_SIM_SNAPSHOT_HPP
#define TRIAGE_SIM_SNAPSHOT_HPP

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_map.hpp"
#include "util/log.hpp"

namespace triage::sim {

/** A sealed snapshot blob (framed payload; see Snapshot::seal). */
using SnapshotBlob = std::vector<std::uint8_t>;

class Snapshot
{
  public:
    enum class Mode { Save, Load };

    /** Fresh archive for saving. */
    Snapshot() : mode_(Mode::Save) {}

    Mode mode() const { return mode_; }
    bool saving() const { return mode_ == Mode::Save; }
    bool loading() const { return mode_ == Mode::Load; }

    /**
     * Order-checking tag. Save writes the name; load re-reads it and
     * panics on mismatch — catching save/restore sequence drift at the
     * exact component boundary where it happens.
     */
    void section(const char* name);

    /** Scalar io: integral / enum / bool / float / double. */
    template <typename T>
    void
    io(T& v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                      "io() handles scalars; use io_pod for structs");
        if constexpr (std::is_same_v<T, bool>) {
            std::uint8_t b = saving() ? (v ? 1 : 0) : 0;
            io_bytes(&b, 1);
            if (loading())
                v = b != 0;
        } else if constexpr (std::is_floating_point_v<T>) {
            static_assert(sizeof(T) <= 8);
            std::uint64_t bits = 0;
            if (saving())
                std::memcpy(&bits, &v, sizeof(T));
            io_fixed(bits);
            if (loading())
                std::memcpy(&v, &bits, sizeof(T));
        } else {
            using Base = typename std::conditional_t<
                std::is_enum_v<T>, std::underlying_type<T>,
                std::type_identity<T>>::type;
            using U = std::make_unsigned_t<Base>;
            std::uint64_t wide =
                saving() ? static_cast<std::uint64_t>(static_cast<U>(v))
                         : 0;
            io_fixed(wide);
            if (loading())
                v = static_cast<T>(static_cast<U>(wide));
        }
    }

    void io(std::string& s);

    /**
     * Trivially-copyable struct io. The type must have no padding
     * (unique object representations): padding bytes are indeterminate
     * memory, and serializing them breaks the byte-determinism
     * property across process instances. Reorder fields or serialize
     * field-by-field when the assert fires.
     */
    template <typename T>
    void
    io_pod(T& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(std::has_unique_object_representations_v<T> ||
                          std::is_floating_point_v<T>,
                      "padded struct: padding bytes are indeterminate "
                      "and would leak into the snapshot — serialize "
                      "field-by-field or pack the struct");
        io_bytes(reinterpret_cast<std::uint8_t*>(&v), sizeof(T));
    }

    template <typename T>
    void
    io_pod_vec(std::vector<T>& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        static_assert(std::has_unique_object_representations_v<T> ||
                          std::is_floating_point_v<T>,
                      "padded struct: padding bytes are indeterminate "
                      "and would leak into the snapshot — serialize "
                      "field-by-field or pack the struct");
        std::uint64_t n = v.size();
        io(n);
        if (loading())
            v.resize(static_cast<std::size_t>(n));
        if (n > 0) {
            io_bytes(reinterpret_cast<std::uint8_t*>(v.data()),
                     v.size() * sizeof(T));
        }
    }

    /** Vector of non-POD elements; @p per(Snapshot&, T&) does each. */
    template <typename T, typename F>
    void
    io_vec(std::vector<T>& v, F&& per)
    {
        std::uint64_t n = v.size();
        io(n);
        if (loading())
            v.resize(static_cast<std::size_t>(n));
        for (auto& e : v)
            per(*this, e);
    }

    /**
     * Unordered map with POD key/value, serialized in ascending key
     * order so identical maps produce identical bytes regardless of
     * their internal bucket history.
     */
    template <typename K, typename V>
    void
    io_map(std::unordered_map<K, V>& m)
    {
        std::uint64_t n = m.size();
        io(n);
        if (saving()) {
            std::vector<K> keys;
            keys.reserve(m.size());
            for (const auto& [k, v] : m)
                keys.push_back(k);
            std::sort(keys.begin(), keys.end());
            for (K k : keys) {
                V v = m.at(k);
                io_pod(k);
                io_pod(v);
            }
        } else {
            m.clear();
            m.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                K k{};
                V v{};
                io_pod(k);
                io_pod(v);
                m.emplace(k, v);
            }
        }
    }

    /**
     * Flat hot-path map (util::FlatMap), serialized exactly like
     * io_map: count, then (key, value) pairs in sorted-key order.
     * Slot order is an artifact of the operation history, so sorting
     * keeps the byte-determinism property (two logically equal maps
     * always serialize identically, whatever their table layouts).
     */
    template <typename K, typename V>
    void
    io_flat_map(util::FlatMap<K, V>& m)
    {
        std::uint64_t n = m.size();
        io(n);
        if (saving()) {
            std::vector<K> keys;
            keys.reserve(m.size());
            m.for_each([&](K k, const V&) { keys.push_back(k); });
            std::sort(keys.begin(), keys.end());
            for (K k : keys) {
                V v = *m.find(k);
                io_pod(k);
                io_pod(v);
            }
        } else {
            m.clear();
            m.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                K k{};
                V v{};
                io_pod(k);
                io_pod(v);
                m.ref(k) = v;
            }
        }
    }

    /** Unordered set with POD key, sorted like io_map. */
    template <typename K>
    void
    io_set(std::unordered_set<K>& s)
    {
        std::uint64_t n = s.size();
        io(n);
        if (saving()) {
            std::vector<K> keys(s.begin(), s.end());
            std::sort(keys.begin(), keys.end());
            for (K k : keys)
                io_pod(k);
        } else {
            s.clear();
            s.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                K k{};
                io_pod(k);
                s.insert(k);
            }
        }
    }

    /** Bytes consumed so far (load) / written so far (save). */
    std::size_t size() const { return saving() ? bytes_.size() : pos_; }

    /** Load mode: true once the whole payload has been consumed. */
    bool exhausted() const { return loading() && pos_ == bytes_.size(); }

    /**
     * Frame the saved payload: magic + format version + @p version +
     * @p fingerprint + payload + FNV-1a checksum. Save mode only.
     */
    SnapshotBlob seal(std::uint32_t version,
                      const std::string& fingerprint) const;

    /**
     * Unframe @p blob into a load-mode archive. Returns false (leaving
     * @p out untouched) when the magic, version, fingerprint or
     * checksum does not match — the disk-cache-miss path.
     */
    static bool open(const SnapshotBlob& blob, std::uint32_t version,
                     const std::string& fingerprint, Snapshot& out);

    /** open(), but a mismatch is fatal (corrupted checkpoint file). */
    static Snapshot open_or_die(const SnapshotBlob& blob,
                                std::uint32_t version,
                                const std::string& fingerprint);

  private:
    /**
     * Inline hot path: one call per scalar field, millions per warm
     * blob — the append branch must stay branch-predictable and
     * call-free (checkpoint fork latency is directly this loop).
     */
    void
    io_fixed(std::uint64_t& v)
    {
        if (saving()) {
            std::uint8_t buf[8];
            for (int i = 0; i < 8; ++i)
                buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
            append(buf, 8);
        } else {
            std::uint8_t buf[8];
            consume(buf, 8);
            v = 0;
            for (int i = 0; i < 8; ++i)
                v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
        }
    }

    void
    io_bytes(std::uint8_t* p, std::size_t n)
    {
        if (saving())
            append(p, n);
        else
            consume(p, n);
    }

    void
    append(const std::uint8_t* p, std::size_t n)
    {
        const std::size_t old = bytes_.size();
        if (old + n > bytes_.capacity())
            bytes_.reserve(std::max(old + n, old * 2));
        bytes_.resize(old + n);
        std::memcpy(bytes_.data() + old, p, n);
    }

    void
    consume(std::uint8_t* p, std::size_t n)
    {
        if (pos_ + n > bytes_.size())
            underrun(n);
        std::memcpy(p, bytes_.data() + pos_, n);
        pos_ += n;
    }

    [[noreturn]] void underrun(std::size_t need) const;

    Mode mode_;
    std::vector<std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

} // namespace triage::sim

#endif // TRIAGE_SIM_SNAPSHOT_HPP
