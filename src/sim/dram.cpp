#include "sim/dram.hpp"

#include <algorithm>

#include "obs/registry.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::sim {

Dram::Dram(const MachineConfig& cfg)
    : latency_(cfg.dram_latency),
      cycles_per_transfer_(cfg.dram_cycles_per_transfer),
      prefetch_queue_limit_(cfg.dram_prefetch_queue_limit),
      channels_(cfg.dram_channels)
{
    TRIAGE_ASSERT(!channels_.empty());
}

unsigned
Dram::channel_of(Addr block) const
{
    // Hash the block so pathological strides interleave evenly.
    return static_cast<unsigned>(util::mix64(block) % channels_.size());
}

void
Dram::drain(Channel& c, Cycle now) const
{
    if (now <= c.last_drain)
        return;
    double served = static_cast<double>(now - c.last_drain) /
                    static_cast<double>(cycles_per_transfer_);
    // Demands are served first; background gets the leftovers.
    double demand_served = std::min(c.demand_q, served);
    c.demand_q -= demand_served;
    c.bg_q = std::max(0.0, c.bg_q - (served - demand_served));
    c.last_drain = now;
}

double
Dram::demand_utilization(unsigned chan) const
{
    const Channel& c = channels_[chan];
    double util = static_cast<double>(cycles_per_transfer_) /
                  std::max<double>(c.demand_iat, 1.0);
    return std::clamp(util, 0.0, 0.98);
}

Cycle
Dram::enqueue_demand(unsigned chan, Cycle now)
{
    Channel& c = channels_[chan];
    drain(c, now);

    // Demand arrival-rate estimate (drives background starvation).
    if (c.last_demand != 0 && now > c.last_demand) {
        double iat = static_cast<double>(now - c.last_demand);
        c.demand_iat = 0.95 * c.demand_iat + 0.05 * iat;
    }
    c.last_demand = now;

    // Wait behind queued demands plus at most one non-preemptible
    // background transfer already in service...
    double slots = c.demand_q + std::min(c.bg_q, 1.0);
    // ...and behind queue-full blocking: a demand cannot enter a
    // controller queue that background traffic has filled.
    double overflow = c.demand_q + c.bg_q - QUEUE_CAP;
    if (overflow > 0)
        slots += overflow;
    c.demand_q += 1.0;
    return static_cast<Cycle>(slots *
                              static_cast<double>(cycles_per_transfer_));
}

Cycle
Dram::enqueue_background(unsigned chan, Cycle now)
{
    Channel& c = channels_[chan];
    drain(c, now);
    // Background is served only when no demand is waiting: its
    // expected delay scales the whole queue by the leftover service
    // rate (1 - demand utilization).
    double util = demand_utilization(chan);
    double slots = (c.demand_q + c.bg_q) / (1.0 - util);
    if (c.demand_q + c.bg_q < QUEUE_CAP)
        c.bg_q += 1.0;
    // else: queue full — the request is deferred by the controller;
    // traffic still happens eventually, but no extra state is queued
    // (keeps the lazy model stable under saturation).
    return static_cast<Cycle>(slots *
                              static_cast<double>(cycles_per_transfer_));
}

Cycle
Dram::demand_read(Addr block, Cycle now)
{
    unsigned chan = channel_of(block);
    Cycle delay = enqueue_demand(chan, now);
    traffic_.bytes[static_cast<unsigned>(TrafficClass::DemandRead)] +=
        BLOCK_SIZE;
    return now + latency_ + delay;
}

Cycle
Dram::prefetch_read(Addr block, Cycle now)
{
    unsigned chan = channel_of(block);
    Channel& c = channels_[chan];
    drain(c, now);
    if (c.demand_q + c.bg_q >
        static_cast<double>(prefetch_queue_limit_)) {
        ++dropped_prefetches_;
        return 0;
    }
    Cycle delay = enqueue_background(chan, now);
    traffic_.bytes[static_cast<unsigned>(TrafficClass::PrefetchRead)] +=
        BLOCK_SIZE;
    return now + latency_ + delay;
}

void
Dram::writeback(Addr block, Cycle now)
{
    enqueue_background(channel_of(block), now);
    traffic_.bytes[static_cast<unsigned>(TrafficClass::Writeback)] +=
        BLOCK_SIZE;
}

Cycle
Dram::metadata_access(Cycle now, std::uint32_t bytes, bool is_write,
                      bool charge_time)
{
    auto cls = is_write ? TrafficClass::MetadataWrite
                        : TrafficClass::MetadataRead;
    traffic_.bytes[static_cast<unsigned>(cls)] += bytes;
    if (!charge_time)
        return now + latency_;
    // Metadata moves in whole 64 B background bursts on a channel
    // chosen by time so the load spreads.
    unsigned bursts = (bytes + BLOCK_SIZE - 1) / BLOCK_SIZE;
    Cycle completion = now;
    for (unsigned i = 0; i < bursts; ++i) {
        unsigned chan =
            static_cast<unsigned>((now + i) % channels_.size());
        Cycle delay = enqueue_background(chan, now);
        completion = std::max(completion, now + latency_ + delay);
    }
    return completion;
}

Cycle
Dram::queue_delay(Addr block, Cycle now) const
{
    const Channel& c = channels_[channel_of(block)];
    // Read-only estimate: pending service not yet drained past `now`.
    double pending = c.demand_q + c.bg_q;
    if (now > c.last_drain) {
        pending -= static_cast<double>(now - c.last_drain) /
                   static_cast<double>(cycles_per_transfer_);
    }
    if (pending <= 0)
        return 0;
    return static_cast<Cycle>(pending *
                              static_cast<double>(cycles_per_transfer_));
}

void
Dram::register_stats(obs::Registry& reg, const std::string& prefix) const
{
    obs::Scope s(reg, prefix);
    s.bind_counter("demand_read_bytes",
                   &traffic_.bytes[static_cast<unsigned>(
                       TrafficClass::DemandRead)]);
    s.bind_counter("prefetch_read_bytes",
                   &traffic_.bytes[static_cast<unsigned>(
                       TrafficClass::PrefetchRead)]);
    s.bind_counter("writeback_bytes",
                   &traffic_.bytes[static_cast<unsigned>(
                       TrafficClass::Writeback)]);
    s.bind_counter("metadata_read_bytes",
                   &traffic_.bytes[static_cast<unsigned>(
                       TrafficClass::MetadataRead)]);
    s.bind_counter("metadata_write_bytes",
                   &traffic_.bytes[static_cast<unsigned>(
                       TrafficClass::MetadataWrite)]);
    s.bind_counter("dropped_prefetches", &dropped_prefetches_);
    const DramTraffic* t = &traffic_;
    s.add_formula("total_bytes",
                  [t] { return static_cast<double>(t->total()); });
}

} // namespace triage::sim
