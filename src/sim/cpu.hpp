/**
 * @file
 * ROB-window out-of-order core model.
 *
 * The model dispatches trace instructions at up to `fetch_width` per
 * cycle into a `rob_entries`-deep window, issues memory requests at
 * dispatch (or when an annotated load dependency resolves), and retires
 * in order at up to `retire_width` per cycle. Memory-level parallelism
 * and pointer-chase serialization both fall out of this structure,
 * which is the ChampSim-style approximation the paper's multi-core
 * results rely on.
 */
#ifndef TRIAGE_SIM_CPU_HPP
#define TRIAGE_SIM_CPU_HPP

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/snapshot.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace triage::cache {
class MemorySystem;
} // namespace triage::cache

namespace triage::sim {

/** Per-core execution counters. */
struct CoreStats {
    std::uint64_t instructions = 0; ///< memory + non-memory
    std::uint64_t mem_records = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;

    double
    ipc(Cycle cycles) const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

/**
 * One core executing a Workload against a MemorySystem.
 *
 * Not tied to wall-clock stepping: run_until() advances the core's own
 * dispatch clock past a target, which lets a multi-core driver
 * interleave cores in bounded quanta without per-cycle ticking.
 */
class CoreModel
{
  public:
    CoreModel(const MachineConfig& cfg, cache::MemorySystem& mem,
              unsigned core_id);

    /** Attach (or replace) the workload; does not reset timing state. */
    void bind(Workload* wl);

    /**
     * Execute records until the dispatch clock reaches @p target or the
     * workload's current pass ends.
     * @return false if the pass ended (caller may reset() and rebind).
     */
    bool run_until(Cycle target);

    /** Execute exactly @p n records (restarting passes as needed). */
    void run_records(std::uint64_t n);

    /** Current dispatch-clock value. */
    Cycle now() const { return dispatch_cycle_; }

    /**
     * Cycle at which everything dispatched so far has retired; use this
     * as the end-of-run time when computing IPC.
     */
    Cycle drain() const;

    const CoreStats& stats() const { return stats_; }
    void clear_stats() { stats_ = {}; }
    unsigned core_id() const { return core_id_; }

    /**
     * Records successfully pulled from the bound workload since
     * construction (across passes). This is the core's *workload
     * cursor*: workloads are deterministic functions of their reset
     * state, so replaying this many next() calls from reset()
     * reproduces the cursor exactly — which is how checkpoints restore
     * workload position without serializing kernel internals.
     */
    std::uint64_t workload_records() const { return wl_records_; }

    /**
     * Re-derive the bound workload's cursor by replaying @p n records
     * from reset (mirroring run_records' wrap-at-EOF rule), and adopt
     * @p n as this core's cursor count. The workload must be the same
     * deterministic program the snapshot was taken with.
     */
    void restore_workload_position(std::uint64_t n);

    /** Save/restore timing state, ROB contents and counters. The
     *  workload cursor travels as a replay count (see above). */
    void
    checkpoint(Snapshot& s)
    {
        s.section("core");
        s.io_pod_vec(rob_);
        s.io(rob_head_);
        s.io(rob_count_);
        s.io(dispatch_cycle_);
        s.io(dispatched_this_cycle_);
        s.io(retire_cycle_);
        s.io(retired_this_cycle_);
        s.io_pod_vec(mem_completions_);
        s.io(mem_seq_);
        s.io_pod(stats_);
        std::uint64_t wl_n = wl_records_;
        s.io(wl_n);
        if (s.loading())
            restore_workload_position(wl_n);
    }

  private:
    void step(const TraceRecord& rec);
    void dispatch_one(Cycle completion);
    Cycle retire_head();

    MachineConfig cfg_;
    cache::MemorySystem& mem_;
    unsigned core_id_;
    Workload* wl_ = nullptr;

    // ROB: ring buffer of completion times in program order.
    std::vector<Cycle> rob_;
    std::uint32_t rob_head_ = 0;
    std::uint32_t rob_count_ = 0;

    Cycle dispatch_cycle_ = 0;
    std::uint32_t dispatched_this_cycle_ = 0;
    Cycle retire_cycle_ = 0;
    std::uint32_t retired_this_cycle_ = 0;

    // Completion times of recent memory records, for dep_distance.
    static constexpr std::uint32_t DEP_RING = 1024;
    std::vector<Cycle> mem_completions_;
    std::uint64_t mem_seq_ = 0;

    /** Successful wl_->next() calls since construction (see
     *  workload_records()). */
    std::uint64_t wl_records_ = 0;

    CoreStats stats_;
};

} // namespace triage::sim

#endif // TRIAGE_SIM_CPU_HPP
