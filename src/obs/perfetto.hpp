/**
 * @file
 * Perfetto / Chrome trace-event JSON exporter.
 *
 * Serializes a run's observability data as one Chrome trace-event file
 * ({"traceEvents": [...]}) that loads directly in ui.perfetto.dev or
 * chrome://tracing. Three process tracks, each in its own time domain
 * (the format has a single "ts" axis; separating domains by pid keeps
 * them visually distinct and individually zoomable):
 *
 *  - pid 1 "lab": wall-clock job spans, one thread per Lab worker
 *    (ts in real microseconds since the Lab was created);
 *  - pid 2 "simulation": decision instants filtered from the event
 *    trace — partition epochs/decisions, OPTgen verdicts, metadata
 *    resizes — one thread per core (ts in simulated cycles);
 *  - pid 3 "epochs": one complete span per sampler epoch carrying
 *    every probe value as args (ts in measured records);
 *  - pid 4 "host profiler": phase slices recorded by the host
 *    profiler (obs/profile.hpp), one thread per profiled host
 *    thread, plus hw.* counter tracks (cycles, instructions, LLC and
 *    branch misses) sampled at each slice end (ts in real
 *    microseconds since the profiler was enabled).
 *
 * Reuses the event_trace plumbing: nothing new is recorded during the
 * run; the exporter is a pure sink over EventTrace, EpochSampler and
 * the Lab's job spans.
 */
#ifndef TRIAGE_OBS_PERFETTO_HPP
#define TRIAGE_OBS_PERFETTO_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace triage::obs {

struct Observability;

namespace perfetto {

/** One executed Lab job, in wall-clock microseconds since Lab start. */
struct JobSpan {
    unsigned worker = 0;
    std::string label;
    std::uint64_t start_us = 0;
    std::uint64_t end_us = 0;
};

/** Exporter knobs. */
struct TraceOptions {
    /**
     * Emit thread-name metadata for workers [0, n_workers) even if a
     * worker executed no job, so every `--jobs` worker gets a track.
     */
    unsigned n_workers = 0;
    /** Kinds of simulation instants to include (see perfetto.cpp). */
    bool include_simulation_events = true;
    /** Include the host profiler's phase slices + counter tracks when
     *  it recorded any (a disarmed profiler contributes nothing). */
    bool include_profile = true;
};

/**
 * Write the trace. @p obs may be null (job spans only). Event-trace
 * instants are included when the trace is enabled; epoch spans when
 * the sampler recorded any.
 */
void write_trace(std::ostream& os, const Observability* obs,
                 const std::vector<JobSpan>& jobs,
                 const TraceOptions& opt = {});

} // namespace perfetto
} // namespace triage::obs

#endif // TRIAGE_OBS_PERFETTO_HPP
