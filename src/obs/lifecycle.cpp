#include "obs/lifecycle.hpp"

#include <algorithm>
#include <ostream>

#include "util/log.hpp"

namespace triage::obs {

const char*
prefetch_class_name(PrefetchClass c)
{
    switch (c) {
      case PrefetchClass::Accurate: return "accurate";
      case PrefetchClass::Late: return "late";
      case PrefetchClass::EarlyEvicted: return "early_evicted";
      case PrefetchClass::Useless: return "useless";
      case PrefetchClass::Dropped: return "dropped";
      case PrefetchClass::NumClasses: break;
    }
    return "?";
}

void
LifecycleTracker::reset(unsigned n_cores)
{
    per_core_.assign(n_cores, PerCore{});
    by_pc_.clear();
    trigger_pc_ = 0;
    finalized_ = false;
}

void
LifecycleTracker::close(PerCore& pc, std::uint64_t trigger_pc,
                        PrefetchClass c)
{
    LifecycleCounts& by_pc = by_pc_[trigger_pc];
    switch (c) {
      case PrefetchClass::Accurate:
        ++pc.counts.accurate;
        ++by_pc.accurate;
        break;
      case PrefetchClass::Late:
        ++pc.counts.late;
        ++by_pc.late;
        break;
      case PrefetchClass::EarlyEvicted:
        ++pc.counts.early_evicted;
        ++by_pc.early_evicted;
        break;
      case PrefetchClass::Useless:
        ++pc.counts.useless;
        ++by_pc.useless;
        break;
      case PrefetchClass::Dropped:
      case PrefetchClass::NumClasses:
        break;
    }
}

void
LifecycleTracker::on_issue(unsigned core, std::uint64_t block)
{
    if (core >= per_core_.size() || finalized_)
        return;
    PerCore& pc = per_core_[core];
    ++pc.counts.issued;
    ++by_pc_[trigger_pc_].issued;
    auto [it, inserted] = pc.open.emplace(block, trigger_pc_);
    if (!inserted) {
        // The hierarchy's redundancy check makes a re-issue of a live
        // block impossible in real runs; tolerate direct host calls in
        // tests by retiring the stale record first.
        close(pc, it->second, PrefetchClass::Useless);
        it->second = trigger_pc_;
    }
}

void
LifecycleTracker::on_drop(unsigned core)
{
    if (core >= per_core_.size() || finalized_)
        return;
    ++per_core_[core].counts.dropped;
    ++by_pc_[trigger_pc_].dropped;
}

void
LifecycleTracker::on_use(unsigned core, std::uint64_t block, bool late)
{
    if (core >= per_core_.size() || finalized_)
        return;
    PerCore& pc = per_core_[core];
    auto it = pc.open.find(block);
    if (it == pc.open.end())
        return; // prefetched before tracking started (warmup)
    close(pc, it->second,
          late ? PrefetchClass::Late : PrefetchClass::Accurate);
    pc.open.erase(it);
}

void
LifecycleTracker::on_evict(unsigned core, std::uint64_t block)
{
    if (core >= per_core_.size() || finalized_)
        return;
    PerCore& pc = per_core_[core];
    auto it = pc.open.find(block);
    if (it == pc.open.end())
        return;
    close(pc, it->second, PrefetchClass::EarlyEvicted);
    pc.open.erase(it);
}

void
LifecycleTracker::finalize()
{
    if (finalized_)
        return;
    for (PerCore& pc : per_core_) {
        for (const auto& [block, trigger_pc] : pc.open) {
            (void)block;
            close(pc, trigger_pc, PrefetchClass::Useless);
        }
        pc.open.clear();
    }
    finalized_ = true;
}

const LifecycleCounts&
LifecycleTracker::core_counts(unsigned core) const
{
    TRIAGE_ASSERT(core < per_core_.size());
    return per_core_[core].counts;
}

LifecycleCounts
LifecycleTracker::total() const
{
    LifecycleCounts t;
    for (const PerCore& pc : per_core_) {
        t.issued += pc.counts.issued;
        t.accurate += pc.counts.accurate;
        t.late += pc.counts.late;
        t.early_evicted += pc.counts.early_evicted;
        t.useless += pc.counts.useless;
        t.dropped += pc.counts.dropped;
    }
    return t;
}

std::size_t
LifecycleTracker::open_records() const
{
    std::size_t n = 0;
    for (const PerCore& pc : per_core_)
        n += pc.open.size();
    return n;
}

std::vector<PcAttribution>
LifecycleTracker::ranked(bool by_coverage, std::size_t n) const
{
    std::vector<PcAttribution> rows;
    rows.reserve(by_pc_.size());
    auto score = [by_coverage](const LifecycleCounts& c) {
        return by_coverage ? c.covered() : c.polluting() + c.dropped;
    };
    for (const auto& [pc, counts] : by_pc_) {
        if (score(counts) == 0)
            continue;
        rows.push_back({pc, counts});
    }
    std::sort(rows.begin(), rows.end(),
              [&](const PcAttribution& a, const PcAttribution& b) {
                  std::uint64_t sa = score(a.counts);
                  std::uint64_t sb = score(b.counts);
                  if (sa != sb)
                      return sa > sb;
                  if (a.counts.issued != b.counts.issued)
                      return a.counts.issued > b.counts.issued;
                  return a.pc < b.pc; // deterministic tie-break
              });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

std::vector<PcAttribution>
LifecycleTracker::top_by_coverage(std::size_t n) const
{
    return ranked(true, n);
}

std::vector<PcAttribution>
LifecycleTracker::top_by_pollution(std::size_t n) const
{
    return ranked(false, n);
}

namespace {

void
write_counts(std::ostream& os, const LifecycleCounts& c)
{
    os << "{\"issued\": " << c.issued << ", \"accurate\": " << c.accurate
       << ", \"late\": " << c.late
       << ", \"early_evicted\": " << c.early_evicted
       << ", \"useless\": " << c.useless
       << ", \"dropped\": " << c.dropped << "}";
}

void
write_pc_table(std::ostream& os, const std::string& pad,
               const std::vector<PcAttribution>& rows)
{
    os << "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << pad << "  {\"pc\": "
           << rows[i].pc << ", \"counts\": ";
        write_counts(os, rows[i].counts);
        os << "}";
    }
    if (!rows.empty())
        os << "\n" << pad;
    os << "]";
}

} // namespace

void
LifecycleTracker::write_json(std::ostream& os, int indent,
                             std::size_t top_n) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << "{\n" << pad << "  \"cores\": [";
    for (std::size_t c = 0; c < per_core_.size(); ++c) {
        os << (c == 0 ? "\n" : ",\n") << pad << "    ";
        write_counts(os, per_core_[c].counts);
    }
    if (!per_core_.empty())
        os << "\n" << pad << "  ";
    os << "],\n" << pad << "  \"total\": ";
    write_counts(os, total());
    os << ",\n" << pad << "  \"open\": " << open_records();
    os << ",\n" << pad << "  \"top_pcs_by_coverage\": ";
    write_pc_table(os, pad + "  ", top_by_coverage(top_n));
    os << ",\n" << pad << "  \"top_pcs_by_pollution\": ";
    write_pc_table(os, pad + "  ", top_by_pollution(top_n));
    os << "\n" << pad << "}";
}

const char*
partition_event_name(PartitionEvent e)
{
    switch (e) {
      case PartitionEvent::Warmup: return "warmup";
      case PartitionEvent::Hold: return "hold";
      case PartitionEvent::Pending: return "pending";
      case PartitionEvent::Changed: return "changed";
      case PartitionEvent::Cooldown: return "cooldown";
      case PartitionEvent::Gated: return "gated";
      case PartitionEvent::NumEvents: break;
    }
    return "?";
}

void
PartitionTimeline::reset(unsigned n_cores)
{
    n_cores_ = n_cores;
    samples_.clear();
    dropped_ = 0;
}

void
PartitionTimeline::record(PartitionSample s)
{
    if (samples_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    samples_.push_back(std::move(s));
}

void
PartitionTimeline::write_json(std::ostream& os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << "{\n" << pad << "  \"dropped\": " << dropped_ << ",\n"
       << pad << "  \"cores\": [";
    for (unsigned c = 0; c < n_cores_; ++c) {
        os << (c == 0 ? "\n" : ",\n") << pad << "    [";
        bool first = true;
        for (const PartitionSample& s : samples_) {
            if (s.core != c)
                continue;
            os << (first ? "\n" : ",\n") << pad << "      "
               << "{\"epoch\": " << s.epoch << ", \"level\": " << s.level
               << ", \"verdict\": " << s.verdict
               << ", \"size_bytes\": " << s.size_bytes << ", \"event\": \""
               << partition_event_name(s.event) << "\", \"hit_rates\": [";
            for (std::size_t i = 0; i < s.hit_rates.size(); ++i)
                os << (i == 0 ? "" : ", ") << s.hit_rates[i];
            os << "]}";
            first = false;
        }
        if (!first)
            os << "\n" << pad << "    ";
        os << "]";
    }
    if (n_cores_ != 0)
        os << "\n" << pad << "  ";
    os << "]\n" << pad << "}";
}

} // namespace triage::obs
