#include "obs/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/log.hpp"

namespace triage::obs {

void
EpochSampler::add_level(const std::string& name, Probe fn)
{
    TRIAGE_ASSERT(fn != nullptr);
    names_.push_back(name);
    ProbeEntry p;
    p.kind = Kind::Level;
    p.fn = std::move(fn);
    probes_.push_back(std::move(p));
}

void
EpochSampler::add_delta(const std::string& name, Probe fn)
{
    TRIAGE_ASSERT(fn != nullptr);
    names_.push_back(name);
    ProbeEntry p;
    p.kind = Kind::Delta;
    p.fn = std::move(fn);
    probes_.push_back(std::move(p));
}

void
EpochSampler::add_rate(const std::string& name, Probe num, Probe den)
{
    TRIAGE_ASSERT(num != nullptr && den != nullptr);
    names_.push_back(name);
    ProbeEntry p;
    p.kind = Kind::Rate;
    p.fn = std::move(num);
    p.den = std::move(den);
    probes_.push_back(std::move(p));
}

void
EpochSampler::clear_probes()
{
    names_.clear();
    probes_.clear();
}

void
EpochSampler::freeze()
{
    probes_.clear();
}

void
EpochSampler::begin(std::uint64_t at)
{
    epoch_start_ = at;
    begun_ = true;
    for (auto& p : probes_) {
        if (p.kind == Kind::Level)
            continue;
        p.last = p.fn();
        if (p.kind == Kind::Rate)
            p.last_den = p.den();
    }
}

double
EpochSampler::eval(ProbeEntry& p)
{
    switch (p.kind) {
      case Kind::Level:
        return p.fn();
      case Kind::Delta: {
        double cur = p.fn();
        double d = cur - p.last;
        p.last = cur;
        return d;
      }
      case Kind::Rate: {
        double num = p.fn();
        double den = p.den();
        double dn = num - p.last;
        double dd = den - p.last_den;
        p.last = num;
        p.last_den = den;
        return dd == 0.0 ? 0.0 : dn / dd;
      }
    }
    return 0.0;
}

void
EpochSampler::sample(std::uint64_t at)
{
    TRIAGE_ASSERT(begun_, "EpochSampler::begin() must precede sample()");
    Epoch e;
    e.begin = epoch_start_;
    e.end = at;
    e.values.reserve(probes_.size());
    for (auto& p : probes_)
        e.values.push_back(eval(p));
    epochs_.push_back(std::move(e));
    epoch_start_ = at;
}

void
EpochSampler::finalize(std::uint64_t at)
{
    if (!enabled() || !begun_ || at <= epoch_start_)
        return;
    sample(at);
}

void
EpochSampler::reset()
{
    epochs_.clear();
    begun_ = false;
    epoch_start_ = 0;
}

void
EpochSampler::write_json(std::ostream& os, int indent) const
{
    auto pad = [&](int extra) {
        os << "\n";
        for (int i = 0; i < indent + extra; ++i)
            os << "  ";
    };
    auto prec = os.precision(10);
    os << "[";
    for (std::size_t i = 0; i < epochs_.size(); ++i) {
        const Epoch& e = epochs_[i];
        if (i != 0)
            os << ",";
        pad(1);
        os << "{\"begin\": " << e.begin << ", \"end\": " << e.end;
        // A frozen sampler keeps names_ but no probes; epochs recorded
        // before older registrations may also be shorter than names_.
        const std::size_t n = std::min(names_.size(), e.values.size());
        for (std::size_t p = 0; p < n; ++p) {
            double v = e.values[p];
            os << ", \"" << names_[p]
               << "\": " << (std::isfinite(v) ? v : 0.0);
        }
        os << "}";
    }
    if (!epochs_.empty())
        pad(0);
    os << "]";
    os.precision(prec);
}

} // namespace triage::obs
