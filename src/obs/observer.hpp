/**
 * @file
 * The observability bundle a run harness attaches to a system: one
 * stats registry, one epoch sampler and one event trace. Systems that
 * have an Observability attached (re)register their components into
 * the registry at run start, wire the trace pointer through the
 * hierarchy, and drive the sampler from their run loop; with nothing
 * attached every hook is a null-pointer test.
 */
#ifndef TRIAGE_OBS_OBSERVER_HPP
#define TRIAGE_OBS_OBSERVER_HPP

#include "obs/event_trace.hpp"
#include "obs/lifecycle.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"

namespace triage::obs {

/** Registry + sampler + trace + lifecycle/timeline, one unit. */
struct Observability {
    Registry registry;
    EpochSampler sampler;
    EventTrace trace;
    LifecycleTracker lifecycle;
    PartitionTimeline partition_timeline;

    /**
     * Detach the bundle from the system it was wired into: settle the
     * lifecycle tracker (open prefetch records become "useless"), then
     * snapshot every bound/formula stat and drop the sampler's live
     * probes, so dumping after the system is destroyed reads stored
     * values rather than dangling pointers. Lifecycle finalization
     * must precede the registry freeze — the frozen formulas read the
     * settled class counts. The systems call this at the end of
     * run(); recorded epochs and trace events are unaffected.
     */
    void
    freeze()
    {
        lifecycle.finalize();
        registry.freeze();
        sampler.freeze();
    }
};

} // namespace triage::obs

#endif // TRIAGE_OBS_OBSERVER_HPP
