/**
 * @file
 * The observability bundle a run harness attaches to a system: one
 * stats registry, one epoch sampler and one event trace. Systems that
 * have an Observability attached (re)register their components into
 * the registry at run start, wire the trace pointer through the
 * hierarchy, and drive the sampler from their run loop; with nothing
 * attached every hook is a null-pointer test.
 */
#ifndef TRIAGE_OBS_OBSERVER_HPP
#define TRIAGE_OBS_OBSERVER_HPP

#include <cstdint>
#include <iosfwd>

#include "obs/event_trace.hpp"
#include "obs/lifecycle.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"

namespace triage::cache {
class MemorySystem;
} // namespace triage::cache

namespace triage::obs {

/**
 * Interface for a runtime invariant checker driven by the run loop.
 *
 * The obs layer cannot depend on the hierarchy, so only this abstract
 * hook lives here; the concrete suite (verify::InvariantSuite) sits in
 * src/verify and registers per-component checkers when the system
 * calls attach() from attach_observability(). The systems then call
 * on_epoch() at epoch boundaries (sampler epochs when sampling,
 * DEFAULT_EPOCH_RECORDS-sized chunks otherwise) and on_run_end() once
 * after drain. A null pointer in Observability::verifier keeps every
 * hook a single pointer test, so release throughput is untouched with
 * verification compiled in but disabled (docs/verification.md).
 */
class RunVerifier
{
  public:
    /** Chunking used when a verifier runs without the sampler. */
    static constexpr std::uint64_t DEFAULT_EPOCH_RECORDS = 65536;

    virtual ~RunVerifier() = default;

    /** (Re)register checkers against @p mem; called at measure start. */
    virtual void attach(cache::MemorySystem& mem) = 0;
    /** Run every checker once (epoch boundary). */
    virtual void on_epoch() = 0;
    /** Final sweep after the measurement window drains. */
    virtual void on_run_end() = 0;

    /** Checker invocations so far (one per checker per sweep). */
    virtual std::uint64_t checks_run() const = 0;
    /** Total violations reported so far. */
    virtual std::uint64_t violations() const = 0;
    /** Serialize {"checks":N,"violations":N,"failures":[...]}. */
    virtual void write_json(std::ostream& os, int indent = 0) const = 0;
};

/** Registry + sampler + trace + lifecycle/timeline, one unit. */
struct Observability {
    Registry registry;
    EpochSampler sampler;
    EventTrace trace;
    LifecycleTracker lifecycle;
    PartitionTimeline partition_timeline;
    /** Optional invariant checker (owned by the caller); see above. */
    RunVerifier* verifier = nullptr;

    /**
     * Detach the bundle from the system it was wired into: settle the
     * lifecycle tracker (open prefetch records become "useless"), then
     * snapshot every bound/formula stat and drop the sampler's live
     * probes, so dumping after the system is destroyed reads stored
     * values rather than dangling pointers. Lifecycle finalization
     * must precede the registry freeze — the frozen formulas read the
     * settled class counts. The systems call this at the end of
     * run(); recorded epochs and trace events are unaffected.
     */
    void
    freeze()
    {
        lifecycle.finalize();
        registry.freeze();
        sampler.freeze();
    }
};

} // namespace triage::obs

#endif // TRIAGE_OBS_OBSERVER_HPP
