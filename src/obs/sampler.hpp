/**
 * @file
 * Epoch time-series sampler.
 *
 * Snapshots a set of named probes every N units of progress (memory
 * records by convention; the sampler itself is unit-agnostic) into an
 * in-memory series. Three probe kinds cover the metrics the paper's
 * trajectory figures need:
 *
 *  - level: instantaneous value at the epoch boundary (metadata ways,
 *    partition level);
 *  - delta: per-epoch increase of a cumulative counter (misses,
 *    prefetches issued);
 *  - rate: ratio of two cumulative deltas (per-epoch IPC =
 *    d instructions / d cycles, coverage, accuracy, metadata hit rate).
 *
 * The run loop drives it: begin() at the measurement start, sample() at
 * each epoch boundary, finalize() to close a trailing partial epoch.
 * Disabled (epoch length 0) it costs one branch per run-loop chunk.
 */
#ifndef TRIAGE_OBS_SAMPLER_HPP
#define TRIAGE_OBS_SAMPLER_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace triage::obs {

/** One closed epoch: progress interval plus one value per probe. */
struct Epoch {
    std::uint64_t begin = 0; ///< progress units at epoch start
    std::uint64_t end = 0;   ///< progress units at epoch end
    std::vector<double> values;
};

/** The sampler. */
class EpochSampler
{
  public:
    using Probe = std::function<double()>;

    /** Enable with epoch length @p n (0 disables). */
    void configure(std::uint64_t n) { epoch_len_ = n; }
    bool enabled() const { return epoch_len_ > 0; }
    std::uint64_t epoch_len() const { return epoch_len_; }

    void add_level(const std::string& name, Probe fn);
    void add_delta(const std::string& name, Probe fn);
    /** Per-epoch delta(num)/delta(den); 0 when den did not advance. */
    void add_rate(const std::string& name, Probe num, Probe den);

    void clear_probes();

    /**
     * Drop the probe callbacks — which capture pointers into the
     * system — while keeping probe names and recorded epochs, so the
     * series stays serializable after the system dies. Re-attach
     * (clear_probes + add_*) before sampling again.
     */
    void freeze();

    /** Start sampling at progress point @p at (captures baselines). */
    void begin(std::uint64_t at);

    /** Close the epoch ending at progress point @p at. */
    void sample(std::uint64_t at);

    /** Close a trailing partial epoch, if any progress since the last
     *  boundary. Safe to call when disabled or nothing is pending. */
    void finalize(std::uint64_t at);

    const std::vector<Epoch>& epochs() const { return epochs_; }
    const std::vector<std::string>& probe_names() const { return names_; }

    /** Drop recorded epochs (probes and configuration stay). */
    void reset();

    /**
     * Serialize as a JSON array of epoch objects:
     * [{"begin": 0, "end": 10000, "core0.ipc": 1.23, ...}, ...]
     */
    void write_json(std::ostream& os, int indent = 0) const;

  private:
    enum class Kind : std::uint8_t { Level, Delta, Rate };

    struct ProbeEntry {
        Kind kind = Kind::Level;
        Probe fn;
        Probe den;          ///< rate denominator
        double last = 0.0;  ///< numerator baseline
        double last_den = 0.0;
    };

    double eval(ProbeEntry& p);

    std::uint64_t epoch_len_ = 0;
    std::uint64_t epoch_start_ = 0;
    bool begun_ = false;
    std::vector<std::string> names_;
    std::vector<ProbeEntry> probes_;
    std::vector<Epoch> epochs_;
};

} // namespace triage::obs

#endif // TRIAGE_OBS_SAMPLER_HPP
