/**
 * @file
 * Host self-profiling: where does the *simulator's* wall-clock go?
 *
 * Everything else in src/obs observes the simulated machine; this
 * subsystem observes the host process running the simulation
 * (docs/observability.md §10). Three pieces:
 *
 *  - **Phase timers.** `ProfScope` is an RAII scope a run harness drops
 *    around a phase (warmup, measure, epoch, weave, snapshot save /
 *    restore). Scopes nest; a scope's aggregation key is the
 *    dot-joined path of the scopes active on its thread ("job.warmup",
 *    "job.measure.epoch"), so the phase table doubles as a call-tree
 *    profile. When the profiler is disarmed a scope is one relaxed
 *    atomic load — the hot path pays nothing with profiling off.
 *
 *  - **Hardware counters.** Each profiled thread opens one
 *    perf_event_open group (cycles, instructions, LLC misses, branch
 *    misses) and every hw-enabled scope reads it on entry and exit, so
 *    phases carry cycles/instructions alongside wall time. When the
 *    syscall is unavailable (no PMU, perf_event_paranoid, containers —
 *    EPERM/ENOENT — or TRIAGE_PROF_NO_PERF is set) the profiler
 *    degrades to a software backend: cycles from the TSC where the
 *    architecture has one, the other counters zero. Nothing else
 *    changes; JSON reports which backend produced the numbers.
 *
 *  - **Run telemetry.** Free-form summary counters (the Lab publishes
 *    its CheckpointStore hit/miss/evict/lease-wait/byte counters under
 *    "ckpt.*") and per-worker accounting rows (jobs run, busy seconds,
 *    peak RSS) round out the `profile` block of `--stats-json`.
 *
 * Exports: `write_json` (the "profile" stats-JSON block, validated by
 * `check_stats_json --require-profile`), and recorded slices that
 * obs/perfetto.cpp turns into phase-slice + counter tracks alongside
 * the lab worker spans.
 *
 * The profiler is a process-wide singleton: phases are an attribute of
 * the process (one triagesim run, one bench invocation), not of any
 * single system object, and threading a pointer through every run
 * harness would put a parameter on paths that must stay free when
 * profiling is off.
 */
#ifndef TRIAGE_OBS_PROFILE_HPP
#define TRIAGE_OBS_PROFILE_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace triage::obs::prof {

/** One hardware-counter reading (zeros where the backend has none). */
struct HwSample {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t branch_misses = 0;
};

/**
 * Multiplex scale factor for a counter interval, from the group's
 * time_enabled / time_running deltas. Returns the standard perf
 * extrapolation ratio (>= 1.0) when the PMU ran the group for part of
 * the interval, 1.0 for a fully-scheduled (or empty) interval, and
 * **0.0 when the group was enabled but never scheduled** — the case
 * where every counter delta reads zero not because nothing executed
 * but because the PMU never hosted the group. Callers must treat a
 * 0.0 scale as "no sample", not as a measurement of zero.
 */
double multiplex_scale(std::uint64_t d_enabled, std::uint64_t d_running);

/** Where the counter numbers come from. */
enum class Backend : std::uint8_t {
    Unresolved, ///< no thread has tried to open counters yet
    PerfEvent,  ///< perf_event_open group is live
    Software,   ///< steady clock + TSC fallback (counters partial)
};

/** The process-wide host profiler. */
class Profiler
{
  public:
    /** Totals for one phase path. */
    struct Phase {
        std::uint64_t count = 0; ///< scope entries
        std::uint64_t ns = 0;    ///< inclusive wall time
        HwSample hw{};           ///< summed counter deltas
        std::uint64_t hw_samples = 0; ///< entries that carried counters
    };

    /** One recorded scope instance (Perfetto phase-slice source). */
    struct Slice {
        std::string path;
        unsigned tid = 0;            ///< dense profiler thread id
        std::uint64_t start_ns = 0;  ///< since enable()
        std::uint64_t dur_ns = 0;
        HwSample hw{};
        bool has_hw = false;
    };

    /** Per-Lab-worker resource accounting row. */
    struct WorkerAccounting {
        unsigned worker = 0;
        std::uint64_t jobs = 0;
        std::uint64_t busy_ns = 0;
        std::uint64_t peak_rss_kb = 0;
    };

    static Profiler& instance();

    /** Is any profiling active? The ProfScope fast-path gate. */
    static bool
    armed()
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Arm the profiler; wall-clock attribution starts now. */
    void enable();
    /** Disarm (recorded data stays readable). */
    void disable();
    /**
     * Disarm and drop everything recorded, re-resolving the counter
     * backend (and the TRIAGE_PROF_NO_PERF knob) on next use. Used by
     * tests; per-thread counter groups reopen lazily.
     */
    void reset();

    bool enabled() const { return armed(); }

    /**
     * The resolved counter backend. Resolves on the calling thread if
     * no profiled scope ran yet.
     */
    Backend backend();
    static const char* backend_name(Backend b);

    /** Seconds since enable() (0 when never enabled). */
    double wall_seconds() const;

    /**
     * Seconds attributed to top-level phases (paths without a '.').
     * On one thread this is <= wall_seconds(); parallel workers can
     * attribute more than one wall-second per second.
     */
    double attributed_seconds() const;

    /** Record a phase interval measured externally (e.g. the sharded
     *  quantum barrier stall, timed inside the crew). No-op when
     *  disarmed. */
    void add_external(const std::string& path, std::uint64_t ns,
                      std::uint64_t count = 1);

    /** Set / accumulate a summary counter ("ckpt.mem_hits", ...). */
    void set_counter(const std::string& name, double v);
    void add_counter(const std::string& name, double v);

    /** Install one worker accounting row (keyed by worker id). */
    void set_worker(const WorkerAccounting& w);

    /** Snapshot accessors (copy under the lock). */
    std::map<std::string, Phase> phases() const;
    std::map<std::string, double> counters() const;
    std::vector<WorkerAccounting> workers() const;
    std::vector<Slice> slices() const;
    std::uint64_t slices_dropped() const;

    /**
     * The "profile" stats-JSON block: backend, wall/attributed
     * seconds, the phase table, summary counters (nested by dotted
     * name), and worker rows. See docs/observability.md §10.
     */
    void write_json(std::ostream& os, int indent = 0);

  private:
    friend class ProfScope;
    friend class HwStopwatch;

    Profiler() = default;

    void record_slice(const char* name, std::uint64_t start_ns,
                      std::uint64_t end_ns, const HwSample& hw,
                      bool has_hw);

    static std::atomic<bool> armed_;

    mutable std::mutex mu_;
    std::uint64_t t0_ns_ = 0; ///< steady-clock ns at enable()
    std::uint64_t generation_ = 0; ///< bumped by reset(); reopens groups
    std::atomic<std::uint8_t> backend_{
        static_cast<std::uint8_t>(Backend::Unresolved)};
    std::atomic<unsigned> next_tid_{0};
    std::map<std::string, Phase> phases_;
    std::map<std::string, double> counters_;
    std::map<unsigned, WorkerAccounting> workers_;
    std::vector<Slice> slices_;
    std::uint64_t slices_dropped_ = 0;
    std::size_t slice_cap_ = 8192;
};

/**
 * RAII phase scope. Construction pushes the scope on its thread's
 * stack and samples clock + counters; destruction samples again and
 * records the interval under the dot-joined path of the active stack.
 * Scopes must unwind in LIFO order per thread — destroying one that is
 * not the innermost active scope panics (the aggregation paths would
 * be silently wrong otherwise).
 *
 * @p hw=false skips the counter read for very fine-grained scopes
 * (e.g. the per-quantum weave) where two syscalls per entry would
 * distort what is being measured; the wall timer still runs.
 */
class ProfScope
{
  public:
    explicit ProfScope(const char* name, bool hw = true)
    {
        if (Profiler::armed())
            begin(name, hw);
    }
    ~ProfScope()
    {
        if (active_)
            end();
    }
    ProfScope(const ProfScope&) = delete;
    ProfScope& operator=(const ProfScope&) = delete;

  private:
    void begin(const char* name, bool hw);
    void end();

    const char* name_ = nullptr;
    std::uint64_t t0_ns_ = 0;
    /** Raw counter snapshot (group values + enabled/running times). */
    std::uint64_t hw0_[6] = {};
    bool active_ = false;
    bool hw_ = false;
    bool hw_live_ = false;
};

/**
 * Standalone hardware-counter stopwatch for harnesses that want
 * cycles/instructions without arming the whole profiler (the
 * throughput bench records cycles-per-access with it). Opens its own
 * counter group at construction, honouring TRIAGE_PROF_NO_PERF; falls
 * back to the TSC like the profiler does.
 */
class HwStopwatch
{
  public:
    HwStopwatch();
    ~HwStopwatch();
    HwStopwatch(const HwStopwatch&) = delete;
    HwStopwatch& operator=(const HwStopwatch&) = delete;

    /** True when a perf_event group is live (not the TSC fallback). */
    bool live() const;
    Backend backend() const;

    void start();
    /**
     * Counter deltas since start() (cycles-only under the fallback).
     * @p hw_valid, when non-null, is set true only when a live
     * perf_event sample was actually scheduled during the interval —
     * false under the TSC fallback *and* when the group never ran
     * (multiplex_scale() == 0), where instructions/misses are
     * meaningless zeros rather than measurements.
     */
    HwSample stop(bool* hw_valid = nullptr);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Process peak RSS in KiB (getrusage, /proc/self/status fallback). */
std::uint64_t peak_rss_kb();

} // namespace triage::obs::prof

#endif // TRIAGE_OBS_PROFILE_HPP
