/**
 * @file
 * Minimal JSON parser for validating the simulator's own emissions
 * (tests and tools/check_stats_json). Parses the full JSON grammar
 * into a small value tree; not a performance-oriented parser and not
 * meant for untrusted megabyte inputs.
 */
#ifndef TRIAGE_OBS_JSON_HPP
#define TRIAGE_OBS_JSON_HPP

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace triage::obs::json {

/** A parsed JSON value. */
class Value
{
  public:
    enum class Type : unsigned char {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool is_null() const { return type == Type::Null; }
    bool is_bool() const { return type == Type::Bool; }
    bool is_number() const { return type == Type::Number; }
    bool is_string() const { return type == Type::String; }
    bool is_array() const { return type == Type::Array; }
    bool is_object() const { return type == Type::Object; }

    /** Object member lookup; null when absent or not an object. */
    const Value* get(const std::string& key) const;

    /** Dotted-path lookup ("cores" inside nested objects). */
    const Value* find_path(const std::string& dotted) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed).
 * @return nullopt on any syntax error; when @p error is non-null it
 *         receives a short description with a byte offset.
 */
std::optional<Value> parse(std::string_view text,
                           std::string* error = nullptr);

} // namespace triage::obs::json

#endif // TRIAGE_OBS_JSON_HPP
