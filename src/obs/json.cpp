#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace triage::obs::json {

const Value*
Value::get(const std::string& key) const
{
    if (type != Type::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

const Value*
Value::find_path(const std::string& dotted) const
{
    const Value* cur = this;
    std::size_t start = 0;
    while (cur != nullptr && start <= dotted.size()) {
        std::size_t dot = dotted.find('.', start);
        std::string seg = dot == std::string::npos
                              ? dotted.substr(start)
                              : dotted.substr(start, dot - start);
        cur = cur->get(seg);
        if (dot == std::string::npos)
            return cur;
        start = dot + 1;
    }
    return cur;
}

namespace {

/** Recursive-descent parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string* error)
        : text_(text), error_(error)
    {
    }

    std::optional<Value>
    run()
    {
        skip_ws();
        Value v;
        if (!parse_value(v))
            return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing content");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const char* what)
    {
        if (error_ != nullptr && error_->empty())
            *error_ = std::string(what) + " at byte " +
                      std::to_string(pos_);
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skip_ws()
    {
        while (!eof() && (peek() == ' ' || peek() == '\t' ||
                          peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (eof() || peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    expect(char c, const char* what)
    {
        if (consume(c))
            return true;
        fail(what);
        return false;
    }

    bool
    parse_literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            fail("bad literal");
            return false;
        }
        pos_ += word.size();
        return true;
    }

    bool
    parse_string(std::string& out)
    {
        if (!expect('"', "expected string"))
            return false;
        out.clear();
        while (!eof()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (eof()) {
                    fail("truncated escape");
                    return false;
                }
                char e = text_[pos_++];
                switch (e) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad \\u escape");
                            return false;
                        }
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs
                    // degrade to two 3-byte sequences; fine for our
                    // machine-generated inputs).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(
                            static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(
                            static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                  }
                  default:
                    fail("bad escape");
                    return false;
                }
            } else {
                out.push_back(c);
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parse_number(double& out)
    {
        std::size_t start = pos_;
        if (!eof() && peek() == '-')
            ++pos_;
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (consume('.'))
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (pos_ == start) {
            fail("expected number");
            return false;
        }
        std::string tok(text_.substr(start, pos_ - start));
        char* end = nullptr;
        out = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("malformed number");
            return false;
        }
        return true;
    }

    bool
    parse_value(Value& v)
    {
        if (++depth_ > MAX_DEPTH) {
            fail("nesting too deep");
            return false;
        }
        bool ok = parse_value_inner(v);
        --depth_;
        return ok;
    }

    bool
    parse_value_inner(Value& v)
    {
        skip_ws();
        if (eof()) {
            fail("unexpected end of input");
            return false;
        }
        switch (peek()) {
          case '{': {
            ++pos_;
            v.type = Value::Type::Object;
            skip_ws();
            if (consume('}'))
                return true;
            while (true) {
                skip_ws();
                std::string key;
                if (!parse_string(key))
                    return false;
                skip_ws();
                if (!expect(':', "expected ':'"))
                    return false;
                Value member;
                if (!parse_value(member))
                    return false;
                v.object.emplace(std::move(key), std::move(member));
                skip_ws();
                if (consume('}'))
                    return true;
                if (!expect(',', "expected ',' or '}'"))
                    return false;
            }
          }
          case '[': {
            ++pos_;
            v.type = Value::Type::Array;
            skip_ws();
            if (consume(']'))
                return true;
            while (true) {
                Value elem;
                if (!parse_value(elem))
                    return false;
                v.array.push_back(std::move(elem));
                skip_ws();
                if (consume(']'))
                    return true;
                if (!expect(',', "expected ',' or ']'"))
                    return false;
            }
          }
          case '"':
            v.type = Value::Type::String;
            return parse_string(v.str);
          case 't':
            v.type = Value::Type::Bool;
            v.boolean = true;
            return parse_literal("true");
          case 'f':
            v.type = Value::Type::Bool;
            v.boolean = false;
            return parse_literal("false");
          case 'n':
            v.type = Value::Type::Null;
            return parse_literal("null");
          default:
            v.type = Value::Type::Number;
            return parse_number(v.number);
        }
    }

    static constexpr int MAX_DEPTH = 128;

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

std::optional<Value>
parse(std::string_view text, std::string* error)
{
    return Parser(text, error).run();
}

} // namespace triage::obs::json
