#include "obs/registry.hpp"

#include <bit>
#include <cmath>
#include <ostream>

#include "util/log.hpp"

namespace triage::obs {

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

void
Histogram::sample(std::uint64_t v, std::uint64_t weight)
{
    if (weight == 0)
        return;
    buckets_[std::bit_width(v)] += weight;
    if (count_ == 0 || v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
    count_ += weight;
    sum_ += v * weight;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the q-th sample, 1-based, rounded up (q=0 -> first).
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < BUCKETS; ++b) {
        seen += buckets_[b];
        if (seen >= rank) {
            // Upper edge of bucket b, clamped into the observed range.
            std::uint64_t edge =
                b == 0 ? 0 : (b >= 64 ? max_ : (1ULL << b) - 1);
            return std::min(std::max(edge, min()), max_);
        }
    }
    return max_;
}

void
Histogram::reset()
{
    *this = Histogram{};
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

namespace {

/** Is @p outer a strict dot-prefix of @p inner ("a.b" of "a.b.c")? */
bool
nests_under(const std::string& outer, const std::string& inner)
{
    return inner.size() > outer.size() && inner[outer.size()] == '.' &&
           inner.compare(0, outer.size(), outer) == 0;
}

} // namespace

Registry::Stat&
Registry::insert(const std::string& name, const std::string& desc,
                 StatKind kind)
{
    TRIAGE_ASSERT(!name.empty(), "stat name must be non-empty");
    // A name that is both a leaf and a dot-prefix of another ("a.b"
    // next to "a.b.c") would make write_json emit the same key twice —
    // once as a number, once as an object. Fail at registration time
    // instead of corrupting the dump.
    for (const auto& entry : stats_) {
        TRIAGE_ASSERT(!nests_under(entry.first, name) &&
                          !nests_under(name, entry.first),
                      "stat name nests under / over an existing one: '",
                      name, "' vs '", entry.first, "'");
    }
    auto [it, fresh] = stats_.try_emplace(name);
    TRIAGE_ASSERT(fresh, "duplicate stat registration: ", name);
    it->second.kind = kind;
    it->second.desc = desc;
    return it->second;
}

const Registry::Stat&
Registry::find(const std::string& name) const
{
    auto it = stats_.find(name);
    TRIAGE_ASSERT(it != stats_.end(), "unknown stat: ", name);
    return it->second;
}

void
Registry::bind_counter(const std::string& name, const std::uint64_t* src,
                       const std::string& desc)
{
    TRIAGE_ASSERT(src != nullptr);
    insert(name, desc, StatKind::Counter).bound_counter = src;
}

void
Registry::bind_value(const std::string& name, const double* src,
                     const std::string& desc)
{
    TRIAGE_ASSERT(src != nullptr);
    insert(name, desc, StatKind::Value).bound_value = src;
}

void
Registry::add_formula(const std::string& name, std::function<double()> fn,
                      const std::string& desc)
{
    TRIAGE_ASSERT(fn != nullptr);
    insert(name, desc, StatKind::Formula).formula = std::move(fn);
}

Counter&
Registry::counter(const std::string& name, const std::string& desc)
{
    Stat& s = insert(name, desc, StatKind::Counter);
    s.owned = std::make_unique<Counter>();
    return *s.owned;
}

Histogram&
Registry::histogram(const std::string& name, const std::string& desc)
{
    Stat& s = insert(name, desc, StatKind::Histogram);
    s.hist = std::make_unique<Histogram>();
    return *s.hist;
}

bool
Registry::contains(const std::string& name) const
{
    return stats_.find(name) != stats_.end();
}

double
Registry::read(const std::string& name) const
{
    const Stat& s = find(name);
    switch (s.kind) {
      case StatKind::Counter:
        return static_cast<double>(s.bound_counter != nullptr
                                       ? *s.bound_counter
                                       : s.owned->value());
      case StatKind::Value:
        return *s.bound_value;
      case StatKind::Formula:
        return s.formula();
      case StatKind::Histogram:
        return s.hist->mean();
    }
    util::panic("unreachable stat kind");
}

StatKind
Registry::kind(const std::string& name) const
{
    return find(name).kind;
}

const std::string&
Registry::description(const std::string& name) const
{
    return find(name).desc;
}

const Histogram*
Registry::find_histogram(const std::string& name) const
{
    auto it = stats_.find(name);
    if (it == stats_.end() || it->second.kind != StatKind::Histogram)
        return nullptr;
    return it->second.hist.get();
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const auto& [name, stat] : stats_)
        out.push_back(name);
    return out;
}

void
Registry::reset()
{
    for (auto& [name, stat] : stats_) {
        if (stat.owned != nullptr)
            stat.owned->reset();
        if (stat.hist != nullptr)
            stat.hist->reset();
    }
}

void
Registry::freeze()
{
    for (auto& [name, s] : stats_) {
        switch (s.kind) {
          case StatKind::Counter:
            if (s.bound_counter != nullptr &&
                s.bound_counter != &s.frozen_counter) {
                s.frozen_counter = *s.bound_counter;
                s.bound_counter = &s.frozen_counter;
            }
            break;
          case StatKind::Value:
            if (s.bound_value != &s.frozen_value) {
                s.frozen_value = *s.bound_value;
                s.bound_value = &s.frozen_value;
            }
            break;
          case StatKind::Formula: {
            const double v = s.formula();
            s.formula = [v] { return v; };
            break;
          }
          case StatKind::Histogram:
            break;
        }
    }
}

void
Registry::clear()
{
    stats_.clear();
}

namespace {

/** JSON numbers cannot carry inf/nan; degrade them to 0. */
double
finite(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

void
write_number(std::ostream& os, double v)
{
    auto prec = os.precision(10);
    os << finite(v);
    os.precision(prec);
}

std::vector<std::string>
split_segments(const std::string& name)
{
    std::vector<std::string> segs;
    std::size_t start = 0;
    while (true) {
        std::size_t dot = name.find('.', start);
        if (dot == std::string::npos) {
            segs.push_back(name.substr(start));
            return segs;
        }
        segs.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
}

void
pad(std::ostream& os, int depth)
{
    for (int i = 0; i < depth; ++i)
        os << "  ";
}

} // namespace

void
Registry::write_json(std::ostream& os, int indent) const
{
    // Sorted map order groups siblings; emit nested objects by tracking
    // the shared prefix depth between consecutive names.
    std::vector<std::string> open; // currently open path segments
    os << "{";
    bool first = true;
    for (const auto& [name, stat] : stats_) {
        auto segs = split_segments(name);
        // Close objects no longer shared with this name's path.
        std::size_t shared = 0;
        while (shared < open.size() && shared + 1 < segs.size() &&
               open[shared] == segs[shared])
            ++shared;
        for (std::size_t d = open.size(); d > shared; --d) {
            os << "\n";
            pad(os, indent + static_cast<int>(d));
            os << "}";
        }
        open.resize(shared);
        if (!first)
            os << ",";
        first = false;
        // Open any new intermediate objects.
        for (std::size_t d = shared; d + 1 < segs.size(); ++d) {
            os << "\n";
            pad(os, indent + static_cast<int>(d) + 1);
            os << "\"" << segs[d] << "\": {";
            open.push_back(segs[d]);
        }
        os << "\n";
        pad(os, indent + static_cast<int>(segs.size()));
        os << "\"" << segs.back() << "\": ";
        switch (stat.kind) {
          case StatKind::Counter:
            os << (stat.bound_counter != nullptr ? *stat.bound_counter
                                                 : stat.owned->value());
            break;
          case StatKind::Value:
            write_number(os, *stat.bound_value);
            break;
          case StatKind::Formula:
            write_number(os, stat.formula());
            break;
          case StatKind::Histogram: {
            const Histogram& h = *stat.hist;
            os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
               << ", \"min\": " << h.min() << ", \"max\": " << h.max()
               << ", \"mean\": ";
            write_number(os, h.mean());
            os << ", \"p50\": " << h.percentile(0.50)
               << ", \"p90\": " << h.percentile(0.90)
               << ", \"p99\": " << h.percentile(0.99) << "}";
            break;
          }
        }
    }
    for (std::size_t d = open.size(); d > 0; --d) {
        os << "\n";
        pad(os, indent + static_cast<int>(d));
        os << "}";
    }
    os << "\n";
    pad(os, indent);
    os << "}";
}

} // namespace triage::obs
