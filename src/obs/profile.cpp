#include "obs/profile.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/log.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#define TRIAGE_HAVE_PERF_EVENT 1
#elif defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define TRIAGE_HAVE_RDTSC 1
#endif

namespace triage::obs::prof {

namespace {

std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
no_perf_env()
{
    const char* v = std::getenv("TRIAGE_PROF_NO_PERF");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

std::uint64_t
tsc_now()
{
#if defined(TRIAGE_HAVE_RDTSC)
    return __rdtsc();
#else
    return 0;
#endif
}

/**
 * One perf_event_open group: cycles leads, the other counters are
 * siblings so all four are scheduled (and multiplexed) together. A
 * sibling that fails to open is simply absent — its column reads 0 —
 * while a leader that fails to open drops the whole group to the
 * software backend. Groups are per thread (counters follow the opening
 * thread) and reopen lazily after Profiler::reset() via a generation
 * tag, which is what lets tests force the fallback with
 * TRIAGE_PROF_NO_PERF mid-process.
 */
struct PerfGroup {
    int fd = -1;          ///< leader fd (cycles); -1 = software backend
    int slot_of[4] = {-1, -1, -1, -1}; ///< counter idx -> value position
    unsigned n_open = 0;
    bool tried = false;
    std::uint64_t gen = 0;

    bool live() const { return fd >= 0; }

    void
    close_all()
    {
#if defined(TRIAGE_HAVE_PERF_EVENT)
        for (int f : sibling_fds)
            if (f >= 0)
                ::close(f);
        sibling_fds.clear();
        if (fd >= 0)
            ::close(fd);
#endif
        fd = -1;
        n_open = 0;
        for (int& s : slot_of)
            s = -1;
        tried = false;
    }

#if defined(TRIAGE_HAVE_PERF_EVENT)
    std::vector<int> sibling_fds;

    static int
    open_one(std::uint32_t type, std::uint64_t config, int group_fd)
    {
        perf_event_attr attr{};
        attr.type = type;
        attr.size = sizeof(attr);
        attr.config = config;
        attr.disabled = group_fd < 0 ? 1 : 0;
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.read_format = PERF_FORMAT_GROUP |
                           PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;
        return static_cast<int>(::syscall(SYS_perf_event_open, &attr, 0,
                                          -1, group_fd, 0UL));
    }
#endif

    void
    open()
    {
        tried = true;
#if defined(TRIAGE_HAVE_PERF_EVENT)
        if (no_perf_env())
            return;
        static const struct {
            std::uint32_t type;
            std::uint64_t config;
        } events[4] = {
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
            {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
        };
        fd = open_one(events[0].type, events[0].config, -1);
        if (fd < 0)
            return; // EPERM / ENOENT / ENOSYS: software backend
        slot_of[0] = 0;
        n_open = 1;
        for (int i = 1; i < 4; ++i) {
            int sfd = open_one(events[i].type, events[i].config, fd);
            if (sfd < 0)
                continue;
            sibling_fds.push_back(sfd);
            slot_of[i] = static_cast<int>(n_open);
            ++n_open;
        }
        ::ioctl(fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ::ioctl(fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        // A four-counter group can exceed the PMU's programmable
        // budget (NMI watchdog pinning a counter, older PMUs): the
        // opens all succeed but the group is never co-scheduled, and
        // every read reports time_running == 0 with all-zero values —
        // which used to reach the stats JSON as a plausible-looking
        // "instructions_per_access": 0. Probe after enabling; if the
        // group never runs, drop the optional cache/branch siblings
        // and retry, and if even the cycles+instructions pair cannot
        // schedule, fall back to the software backend for good.
        if (!probe_scheduled() && n_open > 2) {
            drop_optional_siblings();
            ::ioctl(fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
            ::ioctl(fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        }
        if (!probe_scheduled()) {
            close_all();
            tried = true; // stay software; don't re-probe every scope
        }
#endif
    }

#if defined(TRIAGE_HAVE_PERF_EVENT)
    /**
     * True once a read shows time_running > 0. A couple of brief spin
     * rounds give the scheduler a chance to host the group; a group
     * that stays unscheduled across them never will be (it is wider
     * than the PMU).
     */
    bool
    probe_scheduled()
    {
        std::uint64_t raw[6];
        for (int round = 0; round < 4; ++round) {
            volatile std::uint64_t sink = 0;
            for (std::uint64_t i = 0; i < 4096; ++i)
                sink = sink + i;
            if (read_raw(raw) && raw[5] > 0)
                return true;
        }
        return false;
    }

    /** Close the cache/branch-miss siblings, keeping cycles+instrs. */
    void
    drop_optional_siblings()
    {
        std::vector<int> keep;
        unsigned slot = 1;
        for (int i = 1; i < 4; ++i) {
            if (slot_of[i] < 0)
                continue;
            const int sfd =
                sibling_fds[static_cast<std::size_t>(slot_of[i] - 1)];
            if (i >= 2) {
                ::close(sfd);
                slot_of[i] = -1;
            } else {
                keep.push_back(sfd);
                slot_of[i] = static_cast<int>(slot++);
            }
        }
        sibling_fds = std::move(keep);
        n_open = slot;
    }
#endif

    /**
     * Raw group read into @p out: [v0..v3 by counter index] + enabled
     * + running, zero-filled for absent counters. Returns false when
     * the group is not live (caller falls back to the TSC).
     */
    bool
    read_raw(std::uint64_t out[6])
    {
        std::memset(out, 0, 6 * sizeof(std::uint64_t));
        if (!live())
            return false;
#if defined(TRIAGE_HAVE_PERF_EVENT)
        // nr + time_enabled + time_running + up to 4 values.
        std::uint64_t buf[3 + 4] = {};
        const ssize_t want = static_cast<ssize_t>(
            (3 + static_cast<std::size_t>(n_open)) * sizeof(std::uint64_t));
        if (::read(fd, buf, static_cast<std::size_t>(want)) != want)
            return false;
        for (int i = 0; i < 4; ++i)
            if (slot_of[i] >= 0)
                out[i] = buf[3 + slot_of[i]];
        out[4] = buf[1]; // time_enabled
        out[5] = buf[2]; // time_running
        return true;
#else
        return false;
#endif
    }
};

/**
 * Delta of two raw group reads, multiplex-scaled via multiplex_scale.
 * Returns false — leaving @p out zeroed — when the group was enabled
 * but never scheduled: those all-zero deltas are an artifact of the
 * PMU not hosting the group, not a measurement of zero work.
 */
bool
scale_delta(const std::uint64_t a[6], const std::uint64_t b[6],
            HwSample& out)
{
    out = HwSample{};
    const double scale = multiplex_scale(b[4] - a[4], b[5] - a[5]);
    if (scale == 0.0)
        return false;
    auto d = [&](int i) {
        return static_cast<std::uint64_t>(
            static_cast<double>(b[i] - a[i]) * scale);
    };
    out.cycles = d(0);
    out.instructions = d(1);
    out.llc_misses = d(2);
    out.branch_misses = d(3);
    return true;
}

/** Per-thread profiling state: the scope stack and the counter group. */
struct ThreadState {
    /** Active scopes, innermost last; entries are ProfScope addresses
     *  (for the LIFO check) paired with their names. */
    std::vector<std::pair<const void*, const char*>> stack;
    PerfGroup group;
    unsigned tid = ~0u;
    bool tid_set = false;

    ~ThreadState() { group.close_all(); }
};

thread_local ThreadState t_state;

/** JSON indentation helper matching the registry writer's style. */
std::string
pad(int indent)
{
    return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

std::vector<std::string>
split_segments(const std::string& name)
{
    std::vector<std::string> segs;
    std::size_t start = 0;
    while (true) {
        std::size_t dot = name.find('.', start);
        if (dot == std::string::npos) {
            segs.push_back(name.substr(start));
            break;
        }
        segs.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
    return segs;
}

} // namespace

double
multiplex_scale(std::uint64_t d_enabled, std::uint64_t d_running)
{
    if (d_running == 0)
        return d_enabled == 0 ? 1.0 : 0.0;
    if (d_enabled > d_running)
        return static_cast<double>(d_enabled) /
               static_cast<double>(d_running);
    return 1.0;
}

std::atomic<bool> Profiler::armed_{false};

Profiler&
Profiler::instance()
{
    static Profiler p;
    return p;
}

void
Profiler::enable()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (t0_ns_ == 0)
        t0_ns_ = now_ns();
    armed_.store(true, std::memory_order_relaxed);
}

void
Profiler::disable()
{
    armed_.store(false, std::memory_order_relaxed);
}

void
Profiler::reset()
{
    armed_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    t0_ns_ = 0;
    ++generation_;
    backend_.store(static_cast<std::uint8_t>(Backend::Unresolved),
                   std::memory_order_relaxed);
    phases_.clear();
    counters_.clear();
    workers_.clear();
    slices_.clear();
    slices_dropped_ = 0;
}

Backend
Profiler::backend()
{
    auto b = static_cast<Backend>(backend_.load(std::memory_order_relaxed));
    if (b != Backend::Unresolved)
        return b;
    // Resolve on the calling thread: open (or reopen) its group.
    ThreadState& ts = t_state;
    std::uint64_t gen;
    {
        std::lock_guard<std::mutex> lk(mu_);
        gen = generation_;
    }
    if (!ts.group.tried || ts.group.gen != gen) {
        ts.group.close_all();
        ts.group.gen = gen;
        ts.group.open();
    }
    b = ts.group.live() ? Backend::PerfEvent : Backend::Software;
    backend_.store(static_cast<std::uint8_t>(b),
                   std::memory_order_relaxed);
    return b;
}

const char*
Profiler::backend_name(Backend b)
{
    switch (b) {
    case Backend::PerfEvent:
        return "perf_event";
    case Backend::Software:
        return "software";
    case Backend::Unresolved:
        break;
    }
    return "unresolved";
}

double
Profiler::wall_seconds() const
{
    std::lock_guard<std::mutex> lk(mu_);
    if (t0_ns_ == 0)
        return 0.0;
    return static_cast<double>(now_ns() - t0_ns_) * 1e-9;
}

double
Profiler::attributed_seconds() const
{
    std::lock_guard<std::mutex> lk(mu_);
    double s = 0.0;
    for (const auto& [path, ph] : phases_)
        if (path.find('.') == std::string::npos)
            s += static_cast<double>(ph.ns) * 1e-9;
    return s;
}

void
Profiler::add_external(const std::string& path, std::uint64_t ns,
                       std::uint64_t count)
{
    if (!armed())
        return;
    std::lock_guard<std::mutex> lk(mu_);
    Phase& ph = phases_[path];
    ph.count += count;
    ph.ns += ns;
}

void
Profiler::set_counter(const std::string& name, double v)
{
    std::lock_guard<std::mutex> lk(mu_);
    counters_[name] = v;
}

void
Profiler::add_counter(const std::string& name, double v)
{
    std::lock_guard<std::mutex> lk(mu_);
    counters_[name] += v;
}

void
Profiler::set_worker(const WorkerAccounting& w)
{
    std::lock_guard<std::mutex> lk(mu_);
    workers_[w.worker] = w;
}

std::map<std::string, Profiler::Phase>
Profiler::phases() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return phases_;
}

std::map<std::string, double>
Profiler::counters() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return counters_;
}

std::vector<Profiler::WorkerAccounting>
Profiler::workers() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<WorkerAccounting> out;
    out.reserve(workers_.size());
    for (const auto& [id, w] : workers_)
        out.push_back(w);
    return out;
}

std::vector<Profiler::Slice>
Profiler::slices() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return slices_;
}

std::uint64_t
Profiler::slices_dropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return slices_dropped_;
}

void
Profiler::record_slice(const char* name, std::uint64_t start_ns,
                       std::uint64_t end_ns, const HwSample& hw,
                       bool has_hw)
{
    ThreadState& ts = t_state;
    if (!ts.tid_set) {
        ts.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
        ts.tid_set = true;
    }
    // Aggregation path: every active scope name on this thread,
    // dot-joined, with @p name innermost (already on the stack).
    std::string path;
    for (const auto& [ptr, nm] : ts.stack) {
        if (!path.empty())
            path += '.';
        path += nm;
    }
    (void)name;

    std::lock_guard<std::mutex> lk(mu_);
    Phase& ph = phases_[path];
    ph.count += 1;
    ph.ns += end_ns - start_ns;
    if (has_hw) {
        ph.hw.cycles += hw.cycles;
        ph.hw.instructions += hw.instructions;
        ph.hw.llc_misses += hw.llc_misses;
        ph.hw.branch_misses += hw.branch_misses;
        ph.hw_samples += 1;
    }
    if (slices_.size() < slice_cap_) {
        Slice s;
        s.path = std::move(path);
        s.tid = ts.tid;
        s.start_ns = start_ns - std::min(start_ns, t0_ns_);
        s.dur_ns = end_ns - start_ns;
        s.hw = hw;
        s.has_hw = has_hw;
        slices_.push_back(std::move(s));
    } else {
        ++slices_dropped_;
    }
}

void
Profiler::write_json(std::ostream& os, int indent)
{
    const Backend b = backend();
    const double wall = wall_seconds();
    const double attributed = attributed_seconds();

    std::map<std::string, Phase> phases;
    std::map<std::string, double> counters;
    std::map<unsigned, WorkerAccounting> workers;
    std::uint64_t dropped;
    std::size_t n_slices;
    {
        std::lock_guard<std::mutex> lk(mu_);
        phases = phases_;
        counters = counters_;
        workers = workers_;
        dropped = slices_dropped_;
        n_slices = slices_.size();
    }

    const std::string p0 = pad(indent);
    const std::string p1 = pad(indent + 1);
    const std::string p2 = pad(indent + 2);
    os << "{\n";
    os << p1 << "\"enabled\": " << (enabled() ? "true" : "false")
       << ",\n";
    os << p1 << "\"backend\": \"" << backend_name(b) << "\",\n";
    os << p1 << "\"wall_seconds\": " << wall << ",\n";
    os << p1 << "\"attributed_seconds\": " << attributed << ",\n";
    os << p1 << "\"attributed_frac\": "
       << (wall > 0.0 ? attributed / wall : 0.0) << ",\n";

    // Phase table: flat object keyed by full dotted path (paths embed
    // dots, so nesting them would collide with single-segment keys).
    os << p1 << "\"phases\": {";
    bool first = true;
    for (const auto& [path, ph] : phases) {
        if (!first)
            os << ",";
        first = false;
        os << "\n"
           << p2 << "\"" << path << "\": {\"count\": " << ph.count
           << ", \"seconds\": " << static_cast<double>(ph.ns) * 1e-9
           << ", \"hw_samples\": " << ph.hw_samples
           << ", \"cycles\": " << ph.hw.cycles
           << ", \"instructions\": " << ph.hw.instructions
           << ", \"llc_misses\": " << ph.hw.llc_misses
           << ", \"branch_misses\": " << ph.hw.branch_misses << "}";
    }
    os << (first ? "" : "\n" + p1) << "},\n";

    os << p1 << "\"slices\": {\"recorded\": " << n_slices
       << ", \"dropped\": " << dropped << "},\n";

    // Summary counters, nested by dotted name like the registry writer
    // (so "ckpt.mem_hits" lands at profile.counters.ckpt.mem_hits).
    os << p1 << "\"counters\": {";
    std::vector<std::string> open_path;
    first = true;
    for (const auto& [name, v] : counters) {
        auto segs = split_segments(name);
        std::size_t common = 0;
        while (common < open_path.size() && common + 1 < segs.size() &&
               open_path[common] == segs[common])
            ++common;
        for (std::size_t i = open_path.size(); i > common; --i)
            os << "\n" << pad(indent + 1 + static_cast<int>(i)) << "}";
        open_path.resize(common);
        if (!first)
            os << ",";
        first = false;
        for (std::size_t i = common; i + 1 < segs.size(); ++i) {
            os << "\n"
               << pad(indent + 2 + static_cast<int>(i)) << "\""
               << segs[i] << "\": {";
            open_path.push_back(segs[i]);
        }
        os << "\n"
           << pad(indent + 2 + static_cast<int>(open_path.size()))
           << "\"" << segs.back() << "\": " << v;
    }
    for (std::size_t i = open_path.size(); i > 0; --i)
        os << "\n" << pad(indent + 1 + static_cast<int>(i)) << "}";
    os << (first ? "" : "\n" + p1) << "},\n";

    os << p1 << "\"workers\": [";
    first = true;
    for (const auto& [id, w] : workers) {
        if (!first)
            os << ",";
        first = false;
        os << "\n"
           << p2 << "{\"worker\": " << w.worker
           << ", \"jobs\": " << w.jobs << ", \"busy_seconds\": "
           << static_cast<double>(w.busy_ns) * 1e-9
           << ", \"peak_rss_kb\": " << w.peak_rss_kb << "}";
    }
    os << (first ? "" : "\n" + p1) << "]\n";
    os << p0 << "}";
}

void
ProfScope::begin(const char* name, bool hw)
{
    ThreadState& ts = t_state;
    Profiler& prof = Profiler::instance();
    std::uint64_t gen;
    {
        std::lock_guard<std::mutex> lk(prof.mu_);
        gen = prof.generation_;
    }
    if (!ts.group.tried || ts.group.gen != gen) {
        ts.group.close_all();
        ts.group.gen = gen;
        ts.group.open();
        const auto b =
            ts.group.live() ? Backend::PerfEvent : Backend::Software;
        // First resolver wins; threads disagreeing (one got EPERM)
        // keeps the first answer, which is fine for reporting.
        std::uint8_t expect =
            static_cast<std::uint8_t>(Backend::Unresolved);
        prof.backend_.compare_exchange_strong(
            expect, static_cast<std::uint8_t>(b),
            std::memory_order_relaxed);
    }
    name_ = name;
    hw_ = hw;
    active_ = true;
    ts.stack.emplace_back(this, name);
    t0_ns_ = now_ns();
    if (hw_) {
        hw_live_ = ts.group.read_raw(hw0_);
        if (!hw_live_)
            hw0_[0] = tsc_now(); // software backend: cycles from TSC
    }
}

void
ProfScope::end()
{
    const std::uint64_t t1 = now_ns();
    ThreadState& ts = t_state;
    if (ts.stack.empty() || ts.stack.back().first != this) {
        util::fatal(std::string("ProfScope '") +
                    (name_ != nullptr ? name_ : "?") +
                    "' destroyed out of LIFO order: phase attribution "
                    "would be wrong");
    }
    HwSample hw{};
    bool has_hw = false;
    if (hw_) {
        if (hw_live_) {
            std::uint64_t hw1[6];
            if (ts.group.read_raw(hw1))
                has_hw = scale_delta(hw0_, hw1, hw);
        } else {
            const std::uint64_t c1 = tsc_now();
            if (c1 > hw0_[0] && hw0_[0] != 0) {
                hw.cycles = c1 - hw0_[0];
                has_hw = true;
            }
        }
    }
    // Record while this scope is still on the stack so the path
    // includes it, then pop.
    Profiler::instance().record_slice(name_, t0_ns_, t1, hw, has_hw);
    ts.stack.pop_back();
    active_ = false;
}

struct HwStopwatch::Impl {
    PerfGroup group;
    std::uint64_t raw0[6] = {};
    std::uint64_t tsc0 = 0;
};

HwStopwatch::HwStopwatch() : impl_(new Impl)
{
    impl_->group.open();
}

HwStopwatch::~HwStopwatch()
{
    impl_->group.close_all();
}

bool
HwStopwatch::live() const
{
    return impl_->group.live();
}

Backend
HwStopwatch::backend() const
{
    return live() ? Backend::PerfEvent : Backend::Software;
}

void
HwStopwatch::start()
{
    if (!impl_->group.read_raw(impl_->raw0))
        impl_->tsc0 = tsc_now();
}

HwSample
HwStopwatch::stop(bool* hw_valid)
{
    HwSample s;
    bool valid = false;
    if (impl_->group.live()) {
        std::uint64_t raw1[6];
        if (impl_->group.read_raw(raw1))
            valid = scale_delta(impl_->raw0, raw1, s);
    } else {
        const std::uint64_t c1 = tsc_now();
        if (impl_->tsc0 != 0 && c1 > impl_->tsc0)
            s.cycles = c1 - impl_->tsc0;
    }
    if (hw_valid != nullptr)
        *hw_valid = valid;
    return s;
}

std::uint64_t
peak_rss_kb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (::getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024; // bytes
#else
        return static_cast<std::uint64_t>(ru.ru_maxrss); // KiB
#endif
    }
#endif
#if defined(__linux__)
    // Fallback: VmHWM from /proc (containers with a stubbed getrusage).
    std::ifstream f("/proc/self/status");
    std::string line;
    while (std::getline(f, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return static_cast<std::uint64_t>(
                std::strtoull(line.c_str() + 6, nullptr, 10));
    }
#endif
    return 0;
}

} // namespace triage::obs::prof
