#include "obs/event_trace.hpp"

#include <cstring>
#include <ostream>

#include "util/log.hpp"

namespace triage::obs {

const char*
kind_name(EventKind k)
{
    switch (k) {
      case EventKind::PrefetchIssued: return "prefetch_issued";
      case EventKind::PrefetchDropped: return "prefetch_dropped";
      case EventKind::PrefetchRedundant: return "prefetch_redundant";
      case EventKind::PrefetchUseful: return "prefetch_useful";
      case EventKind::MetaInsert: return "meta_insert";
      case EventKind::MetaEvict: return "meta_evict";
      case EventKind::MetaHit: return "meta_hit";
      case EventKind::MetaResize: return "meta_resize";
      case EventKind::PartitionEpoch: return "partition_epoch";
      case EventKind::PartitionDecision: return "partition_decision";
      case EventKind::OptgenVerdict: return "optgen_verdict";
      case EventKind::NumKinds: break;
    }
    return "unknown";
}

void
EventTrace::enable(std::size_t capacity)
{
    TRIAGE_ASSERT(capacity > 0);
    ring_.assign(capacity, TraceEvent{});
    head_ = 0;
    total_ = 0;
    enabled_ = true;
}

void
EventTrace::disable()
{
    enabled_ = false;
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

std::size_t
EventTrace::size() const
{
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
}

std::uint64_t
EventTrace::dropped() const
{
    return total_ < ring_.size() ? 0 : total_ - ring_.size();
}

const TraceEvent&
EventTrace::at(std::size_t i) const
{
    TRIAGE_ASSERT(i < size());
    if (total_ < ring_.size())
        return ring_[i];
    return ring_[(head_ + i) % ring_.size()];
}

void
EventTrace::clear()
{
    head_ = 0;
    total_ = 0;
}

void
EventTrace::write_jsonl(std::ostream& os) const
{
    for (std::size_t i = 0; i < size(); ++i) {
        const TraceEvent& e = at(i);
        os << "{\"cycle\": " << e.cycle
           << ", \"core\": " << static_cast<unsigned>(e.core)
           << ", \"kind\": \"" << kind_name(e.kind)
           << "\", \"a0\": " << e.a0 << ", \"a1\": " << e.a1 << "}\n";
    }
}

void
EventTrace::write_binary(std::ostream& os) const
{
    // Header: magic, version, record size, count.
    static constexpr std::uint16_t VERSION = 1;
    static constexpr std::uint16_t RECORD_BYTES = 8 + 8 + 8 + 1 + 1;
    os.write("TRGT", 4);
    auto put16 = [&](std::uint16_t v) {
        char b[2] = {static_cast<char>(v & 0xff),
                     static_cast<char>(v >> 8)};
        os.write(b, 2);
    };
    auto put64 = [&](std::uint64_t v) {
        char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
        os.write(b, 8);
    };
    put16(VERSION);
    put16(RECORD_BYTES);
    put64(size());
    for (std::size_t i = 0; i < size(); ++i) {
        const TraceEvent& e = at(i);
        put64(e.cycle);
        put64(e.a0);
        put64(e.a1);
        char tail[2] = {static_cast<char>(e.kind),
                        static_cast<char>(e.core)};
        os.write(tail, 2);
    }
}

} // namespace triage::obs
