/**
 * @file
 * Hierarchical statistics registry (gem5-style).
 *
 * Components register named stats under dot-separated hierarchical
 * names ("core0.l2.demand_misses"). Four stat kinds:
 *
 *  - bound counters/values: non-owning views of counters a component
 *    already keeps in its own stats struct (registration costs nothing
 *    on the simulation hot path — the registry reads the live field at
 *    dump time);
 *  - owned counters: registry-native scalars for components without a
 *    legacy stats struct;
 *  - formulas: lazily evaluated derived metrics (hit rates, IPC);
 *  - histograms: log2-bucketed distributions with percentile queries.
 *
 * The registry serializes itself as nested JSON keyed by the name
 * segments, which is what `triagesim --stats-json` emits.
 */
#ifndef TRIAGE_OBS_REGISTRY_HPP
#define TRIAGE_OBS_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace triage::obs {

/** Discriminates Registry entries. */
enum class StatKind : std::uint8_t {
    Counter,   ///< monotonic integer (bound or owned)
    Value,     ///< bound floating-point gauge
    Formula,   ///< derived metric, evaluated on read
    Histogram, ///< owned distribution
};

/** Registry-owned scalar counter. */
class Counter
{
  public:
    Counter& operator++()
    {
        ++v_;
        return *this;
    }
    void add(std::uint64_t n) { v_ += n; }
    std::uint64_t value() const { return v_; }
    void reset() { v_ = 0; }

  private:
    std::uint64_t v_ = 0;
};

/**
 * Log2-bucketed histogram of unsigned samples.
 *
 * Bucket b holds samples whose bit width is b (i.e. in [2^(b-1), 2^b)),
 * so percentile queries resolve to within a factor of two — plenty for
 * latency/occupancy distributions — with 65 fixed buckets and no
 * per-sample allocation.
 */
class Histogram
{
  public:
    void sample(std::uint64_t v, std::uint64_t weight = 1);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Approximate value at quantile @p q in [0, 1]: the upper edge of
     * the bucket containing the q-th weighted sample (0 when empty).
     */
    std::uint64_t percentile(double q) const;

    void reset();

  private:
    static constexpr unsigned BUCKETS = 65;
    std::uint64_t buckets_[BUCKETS] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** The hierarchical registry. */
class Registry
{
  public:
    /** Bind a live counter field; @p src must outlive the registry use. */
    void bind_counter(const std::string& name, const std::uint64_t* src,
                      const std::string& desc = "");
    /** Bind a live double field. */
    void bind_value(const std::string& name, const double* src,
                    const std::string& desc = "");
    /** Register a derived metric evaluated at read/dump time. */
    void add_formula(const std::string& name, std::function<double()> fn,
                     const std::string& desc = "");
    /** Create (and own) a scalar counter. */
    Counter& counter(const std::string& name, const std::string& desc = "");
    /** Create (and own) a histogram. */
    Histogram& histogram(const std::string& name,
                         const std::string& desc = "");

    bool contains(const std::string& name) const;
    std::size_t size() const { return stats_.size(); }

    /**
     * Numeric view of any stat: counters and values read their source,
     * formulas evaluate, histograms report their mean. Panics on an
     * unknown name.
     */
    double read(const std::string& name) const;

    StatKind kind(const std::string& name) const;
    const std::string& description(const std::string& name) const;
    const Histogram* find_histogram(const std::string& name) const;

    /** All registered names in sorted (hierarchical) order. */
    std::vector<std::string> names() const;

    /** Zero owned counters and histograms (bound stats belong to their
     *  components, which have their own clear_stats paths). */
    void reset();

    /**
     * Snapshot every bound counter/value and formula into storage the
     * registry owns, so reads and dumps stay valid after the components
     * the stats were bound to are destroyed. Owned counters and
     * histograms are untouched. Idempotent.
     */
    void freeze();

    /** Drop every registration (used when a system re-registers). */
    void clear();

    /**
     * Serialize as nested JSON: name segments become object keys, so
     * "core0.l2.demand_misses" lands at {"core0":{"l2":{...}}}.
     * Histograms expand to {count, sum, min, max, mean, p50, p90, p99}.
     */
    void write_json(std::ostream& os, int indent = 0) const;

  private:
    struct Stat {
        StatKind kind = StatKind::Counter;
        std::string desc;
        const std::uint64_t* bound_counter = nullptr;
        const double* bound_value = nullptr;
        std::function<double()> formula;
        std::unique_ptr<Counter> owned;
        std::unique_ptr<Histogram> hist;
        // freeze() targets: bound pointers are repointed here (map
        // nodes are pointer-stable, so these addresses never move).
        std::uint64_t frozen_counter = 0;
        double frozen_value = 0;
    };

    Stat& insert(const std::string& name, const std::string& desc,
                 StatKind kind);
    const Stat& find(const std::string& name) const;

    // std::map keeps names sorted, which both groups siblings for the
    // nested JSON writer and makes dumps deterministic.
    std::map<std::string, Stat> stats_;
};

/** Convenience prefix helper: Scope(reg, "core0").name("ipc") etc. */
class Scope
{
  public:
    Scope(Registry& reg, std::string prefix)
        : reg_(reg), prefix_(std::move(prefix))
    {
    }

    std::string
    name(const std::string& leaf) const
    {
        return prefix_.empty() ? leaf : prefix_ + "." + leaf;
    }

    Registry& registry() const { return reg_; }

    void
    bind_counter(const std::string& leaf, const std::uint64_t* src,
                 const std::string& desc = "") const
    {
        reg_.bind_counter(name(leaf), src, desc);
    }
    void
    bind_value(const std::string& leaf, const double* src,
               const std::string& desc = "") const
    {
        reg_.bind_value(name(leaf), src, desc);
    }
    void
    add_formula(const std::string& leaf, std::function<double()> fn,
                const std::string& desc = "") const
    {
        reg_.add_formula(name(leaf), std::move(fn), desc);
    }

  private:
    Registry& reg_;
    std::string prefix_;
};

} // namespace triage::obs

#endif // TRIAGE_OBS_REGISTRY_HPP
