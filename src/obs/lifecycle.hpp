/**
 * @file
 * Per-prefetch lifecycle tracking and Triage decision timelines.
 *
 * The LifecycleTracker follows every L2 prefetch from issue to its
 * terminal state and classifies it:
 *
 *  - accurate:      first demand use found the fill complete;
 *  - late:          first demand use raced an in-flight fill;
 *  - early_evicted: the line left L2 before any demand touched it;
 *  - useless:       still resident and untouched when the run ended;
 *  - dropped:       never entered the hierarchy (bandwidth/MSHR drop).
 *
 * The hierarchy drives it through four hooks guarded by one pointer
 * test each (the same contract as EventTrace). Records are keyed by
 * (core, block); the invariant is that a record is open exactly while
 * an unused prefetched line is resident in that core's L2, so per core
 *
 *     accurate + late + early_evicted + useless == prefetches issued
 *
 * over any window that starts at reset() and ends at finalize().
 * Every record carries the PC of the demand access that triggered the
 * prefetch (set once per access, like EventTrace::set_context), which
 * feeds the per-PC attribution tables: top trigger PCs by coverage
 * (accurate + late) and by pollution (early_evicted + useless).
 *
 * The PartitionTimeline records one sample per Triage partition epoch
 * per core — OPTgen verdict, chosen level, and why the level did or
 * did not move — so dynamic-partition behaviour (paper Figures 15/19)
 * can be replayed decision by decision.
 */
#ifndef TRIAGE_OBS_LIFECYCLE_HPP
#define TRIAGE_OBS_LIFECYCLE_HPP

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

namespace triage::obs {

/** Terminal classification of one prefetch. */
enum class PrefetchClass : std::uint8_t {
    Accurate,
    Late,
    EarlyEvicted,
    Useless,
    Dropped,
    NumClasses
};

/** Stable lowercase name ("accurate", "late", ...). */
const char* prefetch_class_name(PrefetchClass c);

/** Lifecycle class counters (per core and per trigger PC). */
struct LifecycleCounts {
    std::uint64_t issued = 0; ///< records opened (entered the hierarchy)
    std::uint64_t accurate = 0;
    std::uint64_t late = 0;
    std::uint64_t early_evicted = 0;
    std::uint64_t useless = 0;
    std::uint64_t dropped = 0; ///< never entered (not part of issued)

    /** Records that reached a terminal class. */
    std::uint64_t
    closed() const
    {
        return accurate + late + early_evicted + useless;
    }
    /** Demand-consumed prefetches (the coverage contribution). */
    std::uint64_t
    covered() const
    {
        return accurate + late;
    }
    /** Prefetches that occupied L2 without ever being used. */
    std::uint64_t
    polluting() const
    {
        return early_evicted + useless;
    }
};

/** One row of a top-N trigger-PC attribution table. */
struct PcAttribution {
    std::uint64_t pc = 0;
    LifecycleCounts counts;
};

/** The tracker. Disabled (no cores configured) every hook no-ops. */
class LifecycleTracker
{
  public:
    /** (Re)arm for @p n_cores cores, clearing all previous state. */
    void reset(unsigned n_cores);
    bool enabled() const { return !per_core_.empty(); }
    unsigned
    num_cores() const
    {
        return static_cast<unsigned>(per_core_.size());
    }

    /** Stamp subsequent issues/drops with the demand PC that triggered
     *  them (set once per access by the hierarchy). */
    void set_trigger_pc(std::uint64_t pc) { trigger_pc_ = pc; }

    /** A prefetch entered the hierarchy (filled from LLC or DRAM). */
    void on_issue(unsigned core, std::uint64_t block);
    /** A prefetch was dropped before entering (bandwidth / MSHR). */
    void on_drop(unsigned core);
    /** First demand use of a prefetched line; @p late when in flight. */
    void on_use(unsigned core, std::uint64_t block, bool late);
    /** An unused prefetched line was evicted from L2. */
    void on_evict(unsigned core, std::uint64_t block);

    /**
     * Classify every still-open record as useless and stop tracking.
     * Called by Observability::freeze() at the end of a run, before
     * the registry snapshots bound stats. Idempotent.
     */
    void finalize();
    bool finalized() const { return finalized_; }

    const LifecycleCounts& core_counts(unsigned core) const;
    LifecycleCounts total() const;
    /** Records still awaiting a terminal state. */
    std::size_t open_records() const;

    /** Top @p n trigger PCs by covered() then issued, descending. */
    std::vector<PcAttribution> top_by_coverage(std::size_t n) const;
    /** Top @p n trigger PCs by polluting() + dropped, descending. */
    std::vector<PcAttribution> top_by_pollution(std::size_t n) const;

    /**
     * Serialize as one JSON object:
     * {"cores": [{...class counts...}], "total": {...},
     *  "top_pcs_by_coverage": [...], "top_pcs_by_pollution": [...]}
     */
    void write_json(std::ostream& os, int indent = 0,
                    std::size_t top_n = 10) const;

  private:
    struct PerCore {
        LifecycleCounts counts;
        /** Open records: block -> trigger PC. */
        std::unordered_map<std::uint64_t, std::uint64_t> open;
    };

    void close(PerCore& pc, std::uint64_t trigger_pc, PrefetchClass c);
    std::vector<PcAttribution> ranked(bool by_coverage,
                                      std::size_t n) const;

    std::uint64_t trigger_pc_ = 0;
    bool finalized_ = false;
    std::vector<PerCore> per_core_;
    std::unordered_map<std::uint64_t, LifecycleCounts> by_pc_;
};

/** Why a partition epoch ended with the level it did. */
enum class PartitionEvent : std::uint8_t {
    Warmup,   ///< sandboxes still cold; no decision taken
    Hold,     ///< verdict agreed with the current level
    Pending,  ///< change wanted, awaiting confirm_epochs agreement
    Changed,  ///< level moved this epoch
    Cooldown, ///< growth suppressed by the utility-gate cooldown
    Gated,    ///< utility gate stepped the verdict down
    NumEvents
};

/** Stable lowercase name ("warmup", "hold", ...). */
const char* partition_event_name(PartitionEvent e);

/** One per-epoch partition-controller decision record. */
struct PartitionSample {
    std::uint32_t core = 0;
    std::uint64_t epoch = 0; ///< controller epoch count (1-based)
    std::uint32_t level = 0; ///< ladder level after the decision
    std::uint32_t verdict = 0; ///< raw OPTgen verdict for the epoch
    std::uint64_t size_bytes = 0; ///< store size at the epoch boundary
    PartitionEvent event = PartitionEvent::Hold;
    std::vector<double> hit_rates; ///< sandbox hit rate per candidate
};

/**
 * Bounded, append-only timeline of partition decisions across cores.
 * Like the event trace, producers hold a raw pointer that is null when
 * nothing is attached.
 */
class PartitionTimeline
{
  public:
    static constexpr std::size_t DEFAULT_CAPACITY = 1u << 16;

    /** Clear and (re)arm for @p n_cores cores. */
    void reset(unsigned n_cores);
    void set_capacity(std::size_t cap) { capacity_ = cap; }

    void record(PartitionSample s);

    const std::vector<PartitionSample>& samples() const { return samples_; }
    unsigned num_cores() const { return n_cores_; }
    /** Samples not recorded because the capacity bound was hit. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Serialize as {"dropped": N, "cores": [[...samples...], ...]},
     * one inner array per core in epoch order.
     */
    void write_json(std::ostream& os, int indent = 0) const;

  private:
    unsigned n_cores_ = 0;
    std::size_t capacity_ = DEFAULT_CAPACITY;
    std::uint64_t dropped_ = 0;
    std::vector<PartitionSample> samples_;
};

} // namespace triage::obs

#endif // TRIAGE_OBS_LIFECYCLE_HPP
