#include "obs/perfetto.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/observer.hpp"
#include "obs/profile.hpp"

namespace triage::obs::perfetto {

namespace {

constexpr int PID_LAB = 1;
constexpr int PID_SIM = 2;
constexpr int PID_EPOCH = 3;
constexpr int PID_PROF = 4;

/** Minimal JSON string escaping for names/labels. */
std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
num(double v)
{
    std::ostringstream os;
    os.precision(10);
    os << v;
    return os.str();
}

/** Emits events with the separating commas handled centrally. */
class EventWriter
{
  public:
    explicit EventWriter(std::ostream& os) : os_(os) {}

    std::ostream&
    begin()
    {
        os_ << (first_ ? "\n  " : ",\n  ");
        first_ = false;
        return os_;
    }

    void
    metadata(const char* what, int pid, int tid, const std::string& name)
    {
        begin() << "{\"name\": \"" << what << "\", \"ph\": \"M\", \"pid\": "
                << pid << ", \"tid\": " << tid
                << ", \"args\": {\"name\": \"" << escape(name) << "\"}}";
    }

    void
    process(int pid, const std::string& name)
    {
        // tid 0 is fine for process metadata; the UI keys on "ph":"M".
        metadata("process_name", pid, 0, name);
    }

    void
    thread(int pid, int tid, const std::string& name)
    {
        begin() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
                << pid << ", \"tid\": " << tid
                << ", \"args\": {\"name\": \"" << escape(name) << "\"}}";
    }

    bool empty() const { return first_; }

  private:
    std::ostream& os_;
    bool first_ = true;
};

void
write_job_spans(EventWriter& w, const std::vector<JobSpan>& jobs,
                unsigned n_workers)
{
    unsigned max_worker = n_workers;
    for (const JobSpan& j : jobs)
        max_worker = std::max(max_worker, j.worker + 1);
    w.process(PID_LAB, "lab scheduler (wall-clock us)");
    for (unsigned t = 0; t < max_worker; ++t)
        w.thread(PID_LAB, static_cast<int>(t),
                 "worker " + std::to_string(t));
    for (const JobSpan& j : jobs) {
        std::uint64_t dur =
            j.end_us > j.start_us ? j.end_us - j.start_us : 1;
        w.begin() << "{\"name\": \"" << escape(j.label)
                  << "\", \"ph\": \"X\", \"ts\": " << j.start_us
                  << ", \"dur\": " << dur << ", \"pid\": " << PID_LAB
                  << ", \"tid\": " << j.worker << "}";
    }
}

void
write_simulation_events(EventWriter& w, const EventTrace& trace)
{
    bool named[256] = {};
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEvent& e = trace.at(i);
        const char* name = nullptr;
        const char* k0 = nullptr;
        const char* k1 = nullptr;
        switch (e.kind) {
          case EventKind::PartitionEpoch:
            name = "partition_epoch";
            k0 = "level";
            k1 = "store_bytes";
            break;
          case EventKind::PartitionDecision:
            name = "partition_decision";
            k0 = "new_level";
            k1 = "old_level";
            break;
          case EventKind::OptgenVerdict:
            name = "optgen_verdict";
            k0 = "verdict";
            k1 = "hit_rate_ppm";
            break;
          case EventKind::MetaResize:
            name = "meta_resize";
            k0 = "new_bytes";
            k1 = "old_bytes";
            break;
          default:
            continue; // high-volume per-prefetch kinds stay out
        }
        if (!named[e.core]) {
            w.thread(PID_SIM, e.core,
                     "core " + std::to_string(e.core));
            named[e.core] = true;
        }
        w.begin() << "{\"name\": \"" << name
                  << "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << e.cycle
                  << ", \"pid\": " << PID_SIM
                  << ", \"tid\": " << static_cast<int>(e.core)
                  << ", \"args\": {\"" << k0 << "\": " << e.a0 << ", \""
                  << k1 << "\": " << e.a1 << "}}";
    }
}

void
write_epoch_spans(EventWriter& w, const EpochSampler& sampler)
{
    w.process(PID_EPOCH, "epochs (measured records)");
    w.thread(PID_EPOCH, 0, "epochs");
    const auto& names = sampler.probe_names();
    const auto& epochs = sampler.epochs();
    for (std::size_t i = 0; i < epochs.size(); ++i) {
        const Epoch& e = epochs[i];
        std::uint64_t dur = e.end > e.begin ? e.end - e.begin : 1;
        auto& os = w.begin();
        os << "{\"name\": \"epoch " << i << "\", \"ph\": \"X\", \"ts\": "
           << e.begin << ", \"dur\": " << dur << ", \"pid\": " << PID_EPOCH
           << ", \"tid\": 0, \"args\": {";
        for (std::size_t p = 0; p < names.size() &&
                                p < e.values.size(); ++p) {
            os << (p == 0 ? "" : ", ") << "\"" << escape(names[p])
               << "\": " << num(e.values[p]);
        }
        os << "}}";
    }
}

void
write_profile_slices(EventWriter& w)
{
    auto& prof = prof::Profiler::instance();
    const auto slices = prof.slices();
    if (slices.empty())
        return;
    w.process(PID_PROF, "host profiler (wall-clock us)");
    bool named[64] = {};
    for (const auto& s : slices) {
        const unsigned tid = s.tid < 64 ? s.tid : 63;
        if (!named[tid]) {
            w.thread(PID_PROF, static_cast<int>(tid),
                     "host thread " + std::to_string(tid));
            named[tid] = true;
        }
        const std::uint64_t ts = s.start_ns / 1000;
        const std::uint64_t dur = std::max<std::uint64_t>(
            1, s.dur_ns / 1000);
        w.begin() << "{\"name\": \"" << escape(s.path)
                  << "\", \"ph\": \"X\", \"ts\": " << ts
                  << ", \"dur\": " << dur << ", \"pid\": " << PID_PROF
                  << ", \"tid\": " << tid << "}";
        // Counter samples at slice end: each point is the slice's
        // counter delta, making hot phases visible as spikes on the
        // hw.* tracks (all zero only when no backend produced data).
        if (s.has_hw) {
            w.begin() << "{\"name\": \"hw.cycles\", \"ph\": \"C\", "
                         "\"ts\": "
                      << ts + dur << ", \"pid\": " << PID_PROF
                      << ", \"tid\": " << tid << ", \"args\": {\"cycles\": " << s.hw.cycles
                      << "}}";
            w.begin() << "{\"name\": \"hw.instructions\", \"ph\": "
                         "\"C\", \"ts\": "
                      << ts + dur << ", \"pid\": " << PID_PROF
                      << ", \"tid\": " << tid << ", \"args\": {\"instructions\": "
                      << s.hw.instructions << "}}";
            w.begin() << "{\"name\": \"hw.llc_misses\", \"ph\": \"C\", "
                         "\"ts\": "
                      << ts + dur << ", \"pid\": " << PID_PROF
                      << ", \"tid\": " << tid << ", \"args\": {\"llc_misses\": "
                      << s.hw.llc_misses << "}}";
            w.begin() << "{\"name\": \"hw.branch_misses\", \"ph\": "
                         "\"C\", \"ts\": "
                      << ts + dur << ", \"pid\": " << PID_PROF
                      << ", \"tid\": " << tid << ", \"args\": {\"branch_misses\": "
                      << s.hw.branch_misses << "}}";
        }
    }
}

} // namespace

void
write_trace(std::ostream& os, const Observability* obs,
            const std::vector<JobSpan>& jobs, const TraceOptions& opt)
{
    os << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
    EventWriter w(os);
    if (!jobs.empty() || opt.n_workers > 0)
        write_job_spans(w, jobs, opt.n_workers);
    if (obs != nullptr) {
        if (opt.include_simulation_events && obs->trace.size() > 0) {
            w.process(PID_SIM, "simulation (cycles)");
            write_simulation_events(w, obs->trace);
        }
        if (!obs->sampler.epochs().empty())
            write_epoch_spans(w, obs->sampler);
    }
    if (opt.include_profile)
        write_profile_slices(w);
    os << (w.empty() ? "]" : "\n]") << "}\n";
}

} // namespace triage::obs::perfetto
