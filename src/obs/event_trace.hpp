/**
 * @file
 * Structured, ring-buffered event trace.
 *
 * Components that can emit events hold a raw `EventTrace*` that is null
 * by default; every emission site is guarded by a single pointer/flag
 * test, so a build with tracing disabled pays one predictable branch —
 * nothing is formatted, allocated or stored.
 *
 * Timestamp/core context is set once per simulation step by whoever
 * knows them (the memory system on each access, Triage on each train
 * event), so deep components (metadata store, partition controller)
 * can emit correctly-attributed events without widening their call
 * signatures.
 *
 * The buffer is a fixed-capacity ring: when full, the oldest events are
 * overwritten and counted as dropped. Sinks: JSONL (one event object
 * per line) and a compact binary format (16-byte header + packed
 * 26-byte records).
 */
#ifndef TRIAGE_OBS_EVENT_TRACE_HPP
#define TRIAGE_OBS_EVENT_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace triage::obs {

/** Event vocabulary. Keep in sync with kind_name(). */
enum class EventKind : std::uint8_t {
    PrefetchIssued,    ///< a0 = block, a1 = 0:dram 1:llc-fill
    PrefetchDropped,   ///< a0 = block (bandwidth / MSHR drop)
    PrefetchRedundant, ///< a0 = block (already resident)
    PrefetchUseful,    ///< a0 = block, a1 = 1 when the fill was late
    MetaInsert,        ///< a0 = trigger, a1 = successor
    MetaEvict,         ///< a0 = set, a1 = way
    MetaHit,           ///< a0 = trigger, a1 = predicted successor
    MetaResize,        ///< a0 = new bytes, a1 = old bytes
    PartitionEpoch,    ///< a0 = level after the epoch, a1 = store bytes
    PartitionDecision, ///< a0 = new level, a1 = previous level
    OptgenVerdict,     ///< a0 = verdict level, a1 = hit rate in ppm
    NumKinds
};

/** Stable lowercase name for a kind ("prefetch_issued", ...). */
const char* kind_name(EventKind k);

/** One trace record. */
struct TraceEvent {
    std::uint64_t cycle = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    EventKind kind = EventKind::PrefetchIssued;
    std::uint8_t core = 0;
};

/** The ring buffer. */
class EventTrace
{
  public:
    /** Enable with room for @p capacity events. */
    void enable(std::size_t capacity = DEFAULT_CAPACITY);
    void disable();
    bool enabled() const { return enabled_; }

    /** Stamp subsequent emissions with @p cycle / @p core. */
    void
    set_context(std::uint64_t cycle, unsigned core)
    {
        now_ = cycle;
        core_ = static_cast<std::uint8_t>(core);
    }

    void
    emit(EventKind kind, std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        if (!enabled_)
            return;
        TraceEvent& e = ring_[head_];
        e.cycle = now_;
        e.a0 = a0;
        e.a1 = a1;
        e.kind = kind;
        e.core = core_;
        head_ = (head_ + 1) % ring_.size();
        ++total_;
    }

    /** Events currently held (<= capacity). */
    std::size_t size() const;
    /** Events emitted over the trace's lifetime. */
    std::uint64_t total() const { return total_; }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const;

    /** @p i in [0, size()): oldest-first access. */
    const TraceEvent& at(std::size_t i) const;

    /** Drop buffered events (stays enabled). */
    void clear();

    /** One JSON object per line:
     *  {"cycle":N,"core":N,"kind":"...","a0":N,"a1":N} */
    void write_jsonl(std::ostream& os) const;

    /**
     * Compact binary: magic "TRGT", u16 version, u16 record size, u64
     * record count, then packed little-endian records (cycle, a0, a1,
     * kind, core).
     */
    void write_binary(std::ostream& os) const;

    static constexpr std::size_t DEFAULT_CAPACITY = 1u << 20;

  private:
    bool enabled_ = false;
    std::uint64_t now_ = 0;
    std::uint8_t core_ = 0;
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
    std::vector<TraceEvent> ring_;
};

} // namespace triage::obs

#endif // TRIAGE_OBS_EVENT_TRACE_HPP
