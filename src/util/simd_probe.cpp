#include "util/simd_probe.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && !defined(TRIAGE_SIMD_DISABLED)
#define TRIAGE_SIMD_X86 1
#include <immintrin.h>
#else
#define TRIAGE_SIMD_X86 0
#endif

namespace triage::util::simd {

// ---------------------------------------------------------------------
// Scalar reference kernels. These are the semantics; every vector
// kernel must be indistinguishable from them (first-match index).
// ---------------------------------------------------------------------

std::uint32_t
find_first_eq_scalar(const std::uint64_t* row, std::uint32_t n,
                     std::uint64_t key)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        if (row[i] == key)
            return i;
    }
    return NPOS;
}

std::uint32_t
find_first_eq_either_scalar(const std::uint64_t* row, std::uint32_t n,
                            std::uint64_t key_a, std::uint64_t key_b)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        if (row[i] == key_a || row[i] == key_b)
            return i;
    }
    return NPOS;
}

std::uint32_t
min_index_scalar(const std::uint64_t* row, std::uint32_t n)
{
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < n; ++i) {
        if (row[i] < row[best])
            best = i;
    }
    return best;
}

#if TRIAGE_SIMD_X86

// ---------------------------------------------------------------------
// AVX2: 4 x 64-bit lanes per compare.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) static std::uint32_t
find_first_eq_avx2(const std::uint64_t* row, std::uint32_t n,
                   std::uint64_t key)
{
    const __m256i k =
        _mm256_set1_epi64x(static_cast<long long>(key));
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(row + i));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, k)));
        if (m != 0)
            return i + static_cast<std::uint32_t>(__builtin_ctz(
                           static_cast<unsigned>(m)));
    }
    for (; i < n; ++i) {
        if (row[i] == key)
            return i;
    }
    return NPOS;
}

__attribute__((target("avx2"))) static std::uint32_t
find_first_eq_either_avx2(const std::uint64_t* row, std::uint32_t n,
                          std::uint64_t key_a, std::uint64_t key_b)
{
    const __m256i ka =
        _mm256_set1_epi64x(static_cast<long long>(key_a));
    const __m256i kb =
        _mm256_set1_epi64x(static_cast<long long>(key_b));
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(row + i));
        const __m256i eq = _mm256_or_si256(_mm256_cmpeq_epi64(v, ka),
                                           _mm256_cmpeq_epi64(v, kb));
        const int m = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        if (m != 0)
            return i + static_cast<std::uint32_t>(__builtin_ctz(
                           static_cast<unsigned>(m)));
    }
    for (; i < n; ++i) {
        if (row[i] == key_a || row[i] == key_b)
            return i;
    }
    return NPOS;
}

__attribute__((target("avx2"))) static std::uint32_t
min_index_avx2(const std::uint64_t* row, std::uint32_t n)
{
    if (n < 8)
        return min_index_scalar(row, n);
    // Pass 1: the minimum value. AVX2 has no unsigned 64-bit min, so
    // compare with the sign bit flipped (maps unsigned order onto
    // signed order).
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    __m256i vmin = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(row));
    std::uint32_t i = 4;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(row + i));
        const __m256i gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(vmin, bias), _mm256_xor_si256(v, bias));
        vmin = _mm256_blendv_epi8(vmin, v, gt);
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
    std::uint64_t m = lanes[0];
    for (int l = 1; l < 4; ++l) {
        if (lanes[l] < m)
            m = lanes[l];
    }
    for (; i < n; ++i) {
        if (row[i] < m)
            m = row[i];
    }
    // Pass 2: the first index holding it == the first minimum.
    return find_first_eq_avx2(row, n, m);
}

// ---------------------------------------------------------------------
// SSE4.2: 2 x 64-bit lanes per compare (pcmpeqq is SSE4.1, the signed
// 64-bit greater-than used by min_index is SSE4.2).
// ---------------------------------------------------------------------

__attribute__((target("sse4.2"))) static std::uint32_t
find_first_eq_sse42(const std::uint64_t* row, std::uint32_t n,
                    std::uint64_t key)
{
    const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
    std::uint32_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(row + i));
        const int m =
            _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(v, k)));
        if (m != 0)
            return i + static_cast<std::uint32_t>(__builtin_ctz(
                           static_cast<unsigned>(m)));
    }
    if (i < n && row[i] == key)
        return i;
    return NPOS;
}

__attribute__((target("sse4.2"))) static std::uint32_t
find_first_eq_either_sse42(const std::uint64_t* row, std::uint32_t n,
                           std::uint64_t key_a, std::uint64_t key_b)
{
    const __m128i ka = _mm_set1_epi64x(static_cast<long long>(key_a));
    const __m128i kb = _mm_set1_epi64x(static_cast<long long>(key_b));
    std::uint32_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(row + i));
        const __m128i eq = _mm_or_si128(_mm_cmpeq_epi64(v, ka),
                                        _mm_cmpeq_epi64(v, kb));
        const int m = _mm_movemask_pd(_mm_castsi128_pd(eq));
        if (m != 0)
            return i + static_cast<std::uint32_t>(__builtin_ctz(
                           static_cast<unsigned>(m)));
    }
    if (i < n && (row[i] == key_a || row[i] == key_b))
        return i;
    return NPOS;
}

__attribute__((target("sse4.2"))) static std::uint32_t
min_index_sse42(const std::uint64_t* row, std::uint32_t n)
{
    if (n < 4)
        return min_index_scalar(row, n);
    const __m128i bias = _mm_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    __m128i vmin =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
    std::uint32_t i = 2;
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(row + i));
        const __m128i gt = _mm_cmpgt_epi64(_mm_xor_si128(vmin, bias),
                                           _mm_xor_si128(v, bias));
        vmin = _mm_blendv_epi8(vmin, v, gt);
    }
    alignas(16) std::uint64_t lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), vmin);
    std::uint64_t m = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
    if (i < n && row[i] < m)
        m = row[i];
    return find_first_eq_sse42(row, n, m);
}

#endif // TRIAGE_SIMD_X86

// ---------------------------------------------------------------------
// Dispatch. Constant-initialized to scalar so any call that happens
// before dynamic initialization (static-init order) is still correct;
// a namespace-scope resolver upgrades from CPUID before main().
// ---------------------------------------------------------------------

namespace {

constexpr Kernels SCALAR_KERNELS = {find_first_eq_scalar,
                                    find_first_eq_either_scalar,
                                    min_index_scalar, "scalar"};

Kernels
resolve_kernels()
{
    const char* env = std::getenv("TRIAGE_SIMD");
    if (env != nullptr && std::strcmp(env, "scalar") == 0)
        return SCALAR_KERNELS;
#if TRIAGE_SIMD_X86
    if (__builtin_cpu_supports("avx2")) {
        return {find_first_eq_avx2, find_first_eq_either_avx2,
                min_index_avx2, "avx2"};
    }
    if (__builtin_cpu_supports("sse4.2")) {
        return {find_first_eq_sse42, find_first_eq_either_sse42,
                min_index_sse42, "sse42"};
    }
#endif
    return SCALAR_KERNELS;
}

struct Resolver {
    Resolver() { g_kernels = resolve_kernels(); }
};

Resolver g_resolver;

} // namespace

constinit Kernels g_kernels = SCALAR_KERNELS;

const char*
active_kernel()
{
    return g_kernels.name;
}

void
force_scalar(bool on)
{
    g_kernels = on ? SCALAR_KERNELS : resolve_kernels();
}

} // namespace triage::util::simd
