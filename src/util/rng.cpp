#include "util/rng.hpp"

#include <cmath>

namespace triage::util {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    next_u32();
    state_ += seed;
    next_u32();
}

std::uint32_t
Rng::next_u32()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t
Rng::next_u64()
{
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t
Rng::next_below(std::uint32_t bound)
{
    // Debiased modulo: reject draws in the short final interval.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next_u32();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::next_range(std::uint64_t lo, std::uint64_t hi)
{
    std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next_u64();
    if (span <= 0xffffffffULL)
        return lo + next_below(static_cast<std::uint32_t>(span));
    // Compose from two bounded 32-bit draws; slight bias is irrelevant
    // for workload synthesis at these magnitudes.
    return lo + (next_u64() % span);
}

double
Rng::next_double()
{
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

bool
Rng::chance(double p)
{
    return next_double() < p;
}

std::uint64_t
Rng::next_zipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    // Rejection-inversion (Hormann & Derflinger 1996). Valid for s != 1;
    // nudge s at the singularity.
    if (std::fabs(s - 1.0) < 1e-9)
        s = 1.0 + 1e-9;
    const double nd = static_cast<double>(n);
    auto h = [s](double x) {
        return std::pow(x, 1.0 - s) / (1.0 - s);
    };
    auto h_inv = [s](double x) {
        return std::pow((1.0 - s) * x, 1.0 / (1.0 - s));
    };
    if (zipf_n_ != n || zipf_s_ != s) {
        zipf_n_ = n;
        zipf_s_ = s;
        zipf_hx0_ = h(0.5) - 1.0;
        zipf_hn_ = h(nd + 0.5);
    }
    const double hx0 = zipf_hx0_;
    const double hn = zipf_hn_;
    for (;;) {
        double u = hx0 + next_double() * (hn - hx0);
        double x = h_inv(u);
        double k = std::floor(x + 0.5);
        if (k < 1.0)
            k = 1.0;
        if (k > nd)
            k = nd;
        if (k - x <= 0.5 ||
            u >= h(k + 0.5) - std::pow(k, -s)) {
            return static_cast<std::uint64_t>(k) - 1;
        }
    }
}

} // namespace triage::util
