#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace triage::util {

namespace {

LogLevel
parse_level_env()
{
    const char* env = std::getenv("TRIAGE_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Warn;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "silent") == 0 || std::strcmp(env, "none") == 0 ||
        std::strcmp(env, "3") == 0)
        return LogLevel::Silent;
    std::fprintf(stderr,
                 "warn: unknown TRIAGE_LOG_LEVEL '%s' "
                 "(want debug|info|warn|silent); using warn\n",
                 env);
    return LogLevel::Warn;
}

LogLevel&
level_ref()
{
    static LogLevel level = parse_level_env();
    return level;
}

bool&
timestamps_ref()
{
    static bool on = [] {
        const char* env = std::getenv("TRIAGE_LOG_TIMESTAMPS");
        return env != nullptr && *env != '\0' &&
               std::strcmp(env, "0") != 0;
    }();
    return on;
}

const char*
prefix_of(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Silent: break;
    }
    return "log";
}

} // namespace

LogLevel
log_level()
{
    return level_ref();
}

void
set_log_level(LogLevel level)
{
    level_ref() = level;
}

bool
log_enabled(LogLevel level)
{
    return level >= level_ref() && level != LogLevel::Silent;
}

bool
log_timestamps()
{
    return timestamps_ref();
}

void
set_log_timestamps(bool on)
{
    timestamps_ref() = on;
}

std::string
log_timestamp_prefix()
{
    using clock = std::chrono::steady_clock;
    // Epoch = the first timestamped line; deltas chain atomically so
    // concurrent worker logs each report the gap to the line printed
    // just before them.
    static const std::uint64_t t0 = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
    static std::atomic<std::uint64_t> last{t0};
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
    const std::uint64_t prev =
        last.exchange(now, std::memory_order_relaxed);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[t=%.3fms +%.3fms] ",
                  static_cast<double>(now - t0) * 1e-6,
                  static_cast<double>(now - (prev < now ? prev : now)) *
                      1e-6);
    return buf;
}

void
log(LogLevel level, const std::string& msg)
{
    if (!log_enabled(level))
        return;
    if (log_timestamps()) {
        std::fprintf(stderr, "%s: %s%s\n", prefix_of(level),
                     log_timestamp_prefix().c_str(), msg.c_str());
        return;
    }
    std::fprintf(stderr, "%s: %s\n", prefix_of(level), msg.c_str());
}

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
debug(const std::string& msg)
{
    log(LogLevel::Debug, msg);
}

void
info(const std::string& msg)
{
    log(LogLevel::Info, msg);
}

void
warn(const std::string& msg)
{
    log(LogLevel::Warn, msg);
}

} // namespace triage::util
