#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace triage::util {

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace triage::util
