/**
 * @file
 * Host-memory layout helpers for the hot-path tables.
 *
 * The simulator's working set is dominated by a handful of MB-scale
 * arrays (metadata entries/keys, Hawkeye RRPV/PC rows, compressor
 * tables) that are indexed by *hashed* keys, so nearly every touch is a
 * random row. Under 4 KB pages that is a dTLB miss per touch — and a
 * software prefetch whose translation misses the TLB is silently
 * dropped, which defeats the lookahead-hint pipeline exactly where it
 * matters most. Backing those arrays with 2 MB transparent huge pages
 * removes most of the walks (docs/performance.md §Hot-path v2).
 *
 * Wall-clock only: none of this changes simulated behavior, and all of
 * it degrades to a no-op off Linux or when THP is unavailable.
 */
#ifndef TRIAGE_UTIL_MEM_HPP
#define TRIAGE_UTIL_MEM_HPP

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/prctl.h>
#endif

namespace triage::util {

/**
 * Ask the kernel to back [p, p+bytes) with transparent huge pages.
 *
 * Safe to call on any heap range (the range is trimmed to interior page
 * boundaries, so neighboring allocations are unaffected) and after the
 * range is already populated: MADV_COLLAPSE (Linux 6.1+) synchronously
 * merges existing 4 KB pages in place, so callers just build the table
 * and then advise it. Errors are ignored — this is a hint.
 *
 * No-op for ranges under 2 MB (nothing to collapse) and on non-Linux
 * hosts.
 */
inline void
hint_hugepages(const void* p, std::size_t bytes)
{
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    constexpr std::uintptr_t PAGE = 4096;
    constexpr std::size_t HUGE = std::size_t{2} << 20;
    if (p == nullptr || bytes < HUGE)
        return;
    // Container inits commonly launch everything under
    // PR_SET_THP_DISABLE, which the process inherits and which makes
    // every madvise below a no-op; clear it once for this process.
#ifdef PR_SET_THP_DISABLE
    static const bool thp_enabled =
        prctl(PR_SET_THP_DISABLE, 0, 0, 0, 0) == 0;
    (void)thp_enabled;
#endif
    std::uintptr_t lo = reinterpret_cast<std::uintptr_t>(p);
    std::uintptr_t hi = lo + bytes;
    lo = (lo + PAGE - 1) & ~(PAGE - 1);
    hi &= ~(PAGE - 1);
    if (hi <= lo)
        return;
    void* base = reinterpret_cast<void*>(lo);
    (void)madvise(base, hi - lo, MADV_HUGEPAGE);
#ifdef MADV_COLLAPSE
    (void)madvise(base, hi - lo, MADV_COLLAPSE);
#else
    // Headers predating Linux 6.1 lack the constant; the value is ABI.
    (void)madvise(base, hi - lo, 25);
#endif
#else
    (void)p;
    (void)bytes;
#endif
}

/** Convenience overload for contiguous containers (vector, etc.). */
template <typename Vec>
inline void
hint_hugepages(const Vec& v)
{
    hint_hugepages(v.data(), v.size() * sizeof(*v.data()));
}

} // namespace triage::util

#endif // TRIAGE_UTIL_MEM_HPP
