/**
 * @file
 * SIMD kernels for the packed-64-bit-word set probes on the hot path
 * (docs/performance.md §Hot-path v2).
 *
 * PR 4 laid every hot lookup structure out as a packed array of 64-bit
 * words with an all-ones "empty" sentinel — cache tag rows
 * (`SetAssocCache::tags_`), metadata search keys
 * (`MetadataStore::keys_`), training-unit PCs (`TrainingUnit::pcs_`)
 * and the tag-compressor probe table — precisely so the per-way scan
 * could become a vector compare. These kernels are that compare:
 *
 *  - find_first_eq      : index of the first word equal to a key
 *  - find_first_eq_either: first word equal to either of two keys
 *                          (linear-probe loops: key-or-empty)
 *  - min_index          : index of the first minimum (LRU victim scans)
 *
 * All kernels return exactly what the scalar loop returns — the
 * *first* matching index — so swapping implementations can never
 * change a simulated decision; the golden bit-identity ctests run
 * against both paths in CI.
 *
 * Dispatch: one of {avx2, sse42, scalar} is resolved once at startup
 * from CPUID (never from -march, so a generic Release binary still
 * vectorizes on capable hosts). `TRIAGE_SIMD=scalar` in the
 * environment or `force_scalar(true)` pins the scalar path at runtime;
 * building with -DTRIAGE_SIMD=OFF removes the vector kernels entirely.
 *
 * The public wrappers are hybrid: rows at or below INLINE_CUTOFF are
 * scanned by an inline scalar loop at the call site — a dispatched
 * kernel is an indirect call, which at set-row widths (4/8/16 ways)
 * costs more than the whole scan (profiled in docs/performance.md
 * §Hot-path v2). The vector kernels take over where they pay: scans
 * longer than a row, such as the tag-compressor probe regions and
 * flat-map clusters. Every path returns the same first-match index,
 * so the cutoff can never change a simulated decision.
 */
#ifndef TRIAGE_UTIL_SIMD_PROBE_HPP
#define TRIAGE_UTIL_SIMD_PROBE_HPP

#include <cstdint>

namespace triage::util::simd {

/** "Not found" result, matching the NO_WAY convention of the callers. */
inline constexpr std::uint32_t NPOS = ~std::uint32_t{0};

/** The three probe shapes, bundled so dispatch swaps them atomically. */
struct Kernels {
    std::uint32_t (*find_first_eq)(const std::uint64_t* row,
                                   std::uint32_t n, std::uint64_t key);
    std::uint32_t (*find_first_eq_either)(const std::uint64_t* row,
                                          std::uint32_t n,
                                          std::uint64_t key_a,
                                          std::uint64_t key_b);
    std::uint32_t (*min_index)(const std::uint64_t* row, std::uint32_t n);
    const char* name; ///< "avx2", "sse41" or "scalar"
};

/** Active kernel set (constant-initialized to scalar; upgraded by a
 *  dynamic initializer after CPUID, so calls are always safe). */
extern Kernels g_kernels;

/** Longest row the wrappers scan inline instead of calling a kernel. */
inline constexpr std::uint32_t INLINE_CUTOFF = 16;

/** Index of the first element of row[0..n) equal to @p key, or NPOS. */
inline std::uint32_t
find_first_eq(const std::uint64_t* row, std::uint32_t n, std::uint64_t key)
{
    if (n <= INLINE_CUTOFF) {
        for (std::uint32_t i = 0; i < n; ++i) {
            if (row[i] == key)
                return i;
        }
        return NPOS;
    }
    return g_kernels.find_first_eq(row, n, key);
}

/**
 * Index of the first element equal to @p key_a *or* @p key_b, or NPOS.
 * The caller distinguishes which matched by re-reading the element —
 * linear-probe loops use this as "my tag or an empty slot, whichever
 * comes first".
 */
inline std::uint32_t
find_first_eq_either(const std::uint64_t* row, std::uint32_t n,
                     std::uint64_t key_a, std::uint64_t key_b)
{
    if (n <= INLINE_CUTOFF) {
        for (std::uint32_t i = 0; i < n; ++i) {
            if (row[i] == key_a || row[i] == key_b)
                return i;
        }
        return NPOS;
    }
    return g_kernels.find_first_eq_either(row, n, key_a, key_b);
}

/**
 * Index of the first minimum of row[0..n) (unsigned compare), matching
 * the scalar `<`-update victim scan where the earliest minimum wins.
 * @pre n >= 1.
 */
inline std::uint32_t
min_index(const std::uint64_t* row, std::uint32_t n)
{
    if (n <= INLINE_CUTOFF) {
        std::uint32_t best = 0;
        for (std::uint32_t i = 1; i < n; ++i) {
            if (row[i] < row[best])
                best = i;
        }
        return best;
    }
    return g_kernels.min_index(row, n);
}

/** Name of the dispatched kernel set: "avx2", "sse41" or "scalar". */
const char* active_kernel();

/**
 * Pin (or unpin) the scalar kernels at runtime. Used by the
 * forced-scalar dispatch tests; re-resolves from CPUID when @p on is
 * false. Not thread-safe — call only from single-threaded test setup.
 */
void force_scalar(bool on);

/** Scalar reference implementations, exposed for differential tests. */
std::uint32_t find_first_eq_scalar(const std::uint64_t* row,
                                   std::uint32_t n, std::uint64_t key);
std::uint32_t find_first_eq_either_scalar(const std::uint64_t* row,
                                          std::uint32_t n,
                                          std::uint64_t key_a,
                                          std::uint64_t key_b);
std::uint32_t min_index_scalar(const std::uint64_t* row, std::uint32_t n);

} // namespace triage::util::simd

#endif // TRIAGE_UTIL_SIMD_PROBE_HPP
