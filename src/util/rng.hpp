/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis
 * and sampled simulation.
 *
 * Everything in this simulator must be reproducible from a seed, so we
 * carry our own PCG32 generator instead of relying on std::mt19937
 * (whose distributions are implementation-defined across standard
 * libraries).
 */
#ifndef TRIAGE_UTIL_RNG_HPP
#define TRIAGE_UTIL_RNG_HPP

#include <cstdint>
#include <vector>

namespace triage::util {

/**
 * PCG32 generator (O'Neill 2014, pcg-xsh-rr-64/32). Small state, good
 * statistical quality, and fully deterministic across platforms.
 */
class Rng
{
  public:
    /** Construct from a seed; distinct streams via @p stream. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next_u32();

    /** Next raw 64-bit value (two 32-bit draws). */
    std::uint64_t next_u64();

    /** Uniform integer in [0, bound) with rejection sampling (bound > 0). */
    std::uint32_t next_below(std::uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive (lo <= hi). */
    std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Bernoulli draw: true with probability @p p. */
    bool chance(double p);

    /**
     * Zipf-distributed rank in [0, n) with exponent @p s.
     * Uses the rejection-inversion method of Hormann & Derflinger so no
     * O(n) table is required.
     */
    std::uint64_t next_zipf(std::uint64_t n, double s);

    /**
     * Serialize / restore the full generator state (including the zipf
     * envelope cache, whose doubles feed subsequent draws) through a
     * snapshot-style archive. Templated so util stays below sim in the
     * library graph; ArchiveT is sim::Snapshot.
     */
    template <typename ArchiveT>
    void
    checkpoint(ArchiveT& ar)
    {
        ar.io(state_);
        ar.io(inc_);
        ar.io(zipf_n_);
        ar.io(zipf_s_);
        ar.io(zipf_hx0_);
        ar.io(zipf_hn_);
    }

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = next_below(static_cast<std::uint32_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;

    // next_zipf() envelope constants for the most recent (n, s) pair.
    // Callers draw from a fixed distribution millions of times, and the
    // two std::pow calls behind these dominated the sampler; the cache
    // recomputes them only when the pair changes. Values are the exact
    // doubles the uncached computation produced, so draw sequences are
    // unchanged.
    std::uint64_t zipf_n_ = 0; ///< 0 = cache empty
    double zipf_s_ = 0.0;
    double zipf_hx0_ = 0.0;
    double zipf_hn_ = 0.0;
};

} // namespace triage::util

#endif // TRIAGE_UTIL_RNG_HPP
