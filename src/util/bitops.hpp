/**
 * @file
 * Bit-manipulation helpers shared by caches, predictors, and address
 * compressors.
 */
#ifndef TRIAGE_UTIL_BITOPS_HPP
#define TRIAGE_UTIL_BITOPS_HPP

#include <bit>
#include <cstdint>

namespace triage::util {

/** True iff @p v is a power of two (0 is not). */
constexpr bool
is_pow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2_exact(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Ceiling log2 (log2_ceil(1) == 0). */
constexpr unsigned
log2_ceil(std::uint64_t v)
{
    if (v <= 1)
        return 0;
    return 64u - static_cast<unsigned>(std::countl_zero(v - 1));
}

/** Largest power of two <= @p v (floor_pow2(0) == 0). */
constexpr std::uint64_t
floor_pow2(std::uint64_t v)
{
    if (v == 0)
        return 0;
    return std::uint64_t{1} << (63u -
                                static_cast<unsigned>(std::countl_zero(v)));
}

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    if (width >= 64)
        return v >> lo;
    return (v >> lo) & ((1ULL << width) - 1);
}

/**
 * Mix a 64-bit value into a well-distributed hash (splitmix64 finalizer).
 * Used for predictor indexing so nearby PCs do not collide systematically.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Saturating increment of an n-bit counter. */
template <typename T>
constexpr T
sat_inc(T v, T max)
{
    return v < max ? static_cast<T>(v + 1) : max;
}

/** Saturating decrement of a counter (floor 0). */
template <typename T>
constexpr T
sat_dec(T v)
{
    return v > 0 ? static_cast<T>(v - 1) : 0;
}

} // namespace triage::util

#endif // TRIAGE_UTIL_BITOPS_HPP
