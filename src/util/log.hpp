/**
 * @file
 * Minimal logging / fatal-error helpers, in the spirit of gem5's
 * logging.hh: fatal() for user errors, panic() for internal invariant
 * violations.
 */
#ifndef TRIAGE_UTIL_LOG_HPP
#define TRIAGE_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace triage::util {

/** Abort the process for an internal invariant violation (a bug in us). */
[[noreturn]] void panic(const std::string& msg);

/** Exit(1) for a condition that is the caller's fault (bad config). */
[[noreturn]] void fatal(const std::string& msg);

/** Print a warning to stderr and continue. */
void warn(const std::string& msg);

/** Build a message from streamable parts. */
template <typename... Args>
std::string
format_msg(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace triage::util

/** Check an invariant; panics with location info when violated. */
#define TRIAGE_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::triage::util::panic(::triage::util::format_msg(              \
                __FILE__, ":", __LINE__, ": assertion failed: ", #cond,    \
                " " __VA_OPT__(, ) __VA_ARGS__));                          \
        }                                                                  \
    } while (0)

#endif // TRIAGE_UTIL_LOG_HPP
