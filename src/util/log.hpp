/**
 * @file
 * Logging / fatal-error helpers, in the spirit of gem5's logging.hh:
 * fatal() for user errors, panic() for internal invariant violations,
 * and a leveled debug/info/warn channel gated by the TRIAGE_LOG_LEVEL
 * environment variable ("debug", "info", "warn" or "silent"; default
 * "warn"). The TRIAGE_LOG_* macros skip message formatting entirely
 * when the level is disabled.
 */
#ifndef TRIAGE_UTIL_LOG_HPP
#define TRIAGE_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace triage::util {

/** Severity of a log message (ascending). */
enum class LogLevel : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Silent = 3, ///< threshold only; not a message level
};

/**
 * Active threshold, parsed once from TRIAGE_LOG_LEVEL. Messages below
 * it are suppressed.
 */
LogLevel log_level();

/** Override the threshold programmatically (tests). */
void set_log_level(LogLevel level);

/**
 * Are timestamp prefixes on? Parsed once from TRIAGE_LOG_TIMESTAMPS
 * (any value except "" / "0" enables). Default off: expected/golden
 * outputs compare log lines byte-for-byte, and wall-clock prefixes
 * would never reproduce.
 */
bool log_timestamps();

/** Override timestamp prefixes programmatically (tests). */
void set_log_timestamps(bool on);

/**
 * The prefix log() prepends when timestamps are on:
 * "[t=<ms since first log> +<ms since previous log>] ". Monotonic
 * (steady clock); the delta makes inter-line gaps — a stalled worker,
 * a long warmup — readable without subtracting by hand.
 */
std::string log_timestamp_prefix();

/** Would a message at @p level be printed? */
bool log_enabled(LogLevel level);

/** Print @p msg to stderr with a level prefix if enabled. */
void log(LogLevel level, const std::string& msg);

/** Abort the process for an internal invariant violation (a bug in us). */
[[noreturn]] void panic(const std::string& msg);

/** Exit(1) for a condition that is the caller's fault (bad config). */
[[noreturn]] void fatal(const std::string& msg);

/** Leveled convenience wrappers. */
void debug(const std::string& msg);
void info(const std::string& msg);
/** Print a warning to stderr and continue (suppressed only by
 *  TRIAGE_LOG_LEVEL=silent). */
void warn(const std::string& msg);

/** Build a message from streamable parts. */
template <typename... Args>
std::string
format_msg(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace triage::util

/** Leveled logging that formats only when the level is enabled. */
#define TRIAGE_LOG(level, ...)                                             \
    do {                                                                   \
        if (::triage::util::log_enabled(level)) {                          \
            ::triage::util::log(level,                                     \
                                ::triage::util::format_msg(__VA_ARGS__));  \
        }                                                                  \
    } while (0)

#define TRIAGE_LOG_DEBUG(...)                                              \
    TRIAGE_LOG(::triage::util::LogLevel::Debug, __VA_ARGS__)
#define TRIAGE_LOG_INFO(...)                                               \
    TRIAGE_LOG(::triage::util::LogLevel::Info, __VA_ARGS__)
#define TRIAGE_LOG_WARN(...)                                               \
    TRIAGE_LOG(::triage::util::LogLevel::Warn, __VA_ARGS__)

/** Check an invariant; panics with location info when violated. */
#define TRIAGE_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::triage::util::panic(::triage::util::format_msg(              \
                __FILE__, ":", __LINE__, ": assertion failed: ", #cond,    \
                " " __VA_OPT__(, ) __VA_ARGS__));                          \
        }                                                                  \
    } while (0)

#endif // TRIAGE_UTIL_LOG_HPP
