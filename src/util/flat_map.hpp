/**
 * @file
 * FlatMap: the open-addressed, arena-backed hash map for the hot path
 * (docs/performance.md §Hot-path v2).
 *
 * `std::unordered_map` costs one heap node per element, a pointer
 * chase per probe, and allocator traffic on every insert/erase. The
 * simulator's remaining hot-path maps all share one shape — a 64-bit
 * key that can never be all-ones (addresses, tags, compressed
 * metadata keys) and a small trivially-copyable value — so this map
 * exploits it:
 *
 *  - **One arena allocation.** Keys and values live in a single
 *    contiguous block: a packed key array (EMPTY all-ones sentinel)
 *    followed by a parallel value array. No per-element allocation,
 *    ever; clear() just repaints the key array and keeps the arena,
 *    so per-quantum maps (the sharded-LLC overlay) reuse their
 *    capacity instead of rebuilding a node forest each quantum.
 *  - **SIMD probes.** Linear probing over the packed key array is
 *    "first slot equal to my key or EMPTY", which is exactly the
 *    find_first_eq_either kernel (util/simd_probe.hpp).
 *  - **Backward-shift deletion** (Knuth 6.4 R), so erase leaves no
 *    tombstones and probe sequences never degrade.
 *
 * Load factor is capped at 50% (grow doubles the power-of-two
 * capacity), keeping probe runs short. Iteration order is the
 * physical slot order — deterministic for a deterministic operation
 * history, but *not* sorted; serialization sorts keys explicitly
 * (sim::Snapshot::io_flat_map) so snapshot bytes stay canonical.
 */
#ifndef TRIAGE_UTIL_FLAT_MAP_HPP
#define TRIAGE_UTIL_FLAT_MAP_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/bitops.hpp"
#include "util/log.hpp"
#include "util/simd_probe.hpp"

namespace triage::util {

template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_integral_v<K> && std::is_unsigned_v<K> &&
                      sizeof(K) == 8,
                  "FlatMap keys are 64-bit unsigned (addresses/tags); "
                  "the SIMD probe kernels scan packed 64-bit words");
    static_assert(std::is_trivially_copyable_v<V>,
                  "values live in a raw arena and are moved by memcpy");

  public:
    /** Key value that can never be stored (probe-array sentinel). */
    static constexpr K EMPTY = ~K{0};

    FlatMap() = default;

    FlatMap(const FlatMap& o) { *this = o; }

    FlatMap&
    operator=(const FlatMap& o)
    {
        if (this == &o)
            return *this;
        allocate(o.cap_);
        size_ = o.size_;
        if (o.cap_ != 0) {
            std::memcpy(keys_, o.keys_, o.cap_ * sizeof(K));
            std::memcpy(vals_, o.vals_, o.cap_ * sizeof(V));
        }
        return *this;
    }

    FlatMap(FlatMap&& o) noexcept { swap(o); }

    FlatMap&
    operator=(FlatMap&& o) noexcept
    {
        swap(o);
        return *this;
    }

    void
    swap(FlatMap& o) noexcept
    {
        std::swap(arena_, o.arena_);
        std::swap(keys_, o.keys_);
        std::swap(vals_, o.vals_);
        std::swap(cap_, o.cap_);
        std::swap(mask_, o.mask_);
        std::swap(size_, o.size_);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return cap_; }

    /** Drop all elements; the arena (capacity) is retained. */
    void
    clear()
    {
        if (cap_ != 0)
            std::fill(keys_, keys_ + cap_, EMPTY);
        size_ = 0;
    }

    /** Grow so @p n elements fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = MIN_CAP;
        while (want < 2 * n)
            want <<= 1;
        if (want > cap_)
            rehash(want);
    }

    /** Pointer to the value mapped to @p k, or nullptr. */
    V*
    find(K k)
    {
        if (size_ == 0)
            return nullptr;
        const std::size_t i = probe(k);
        return keys_[i] == k ? vals_ + i : nullptr;
    }

    const V*
    find(K k) const
    {
        return const_cast<FlatMap*>(this)->find(k);
    }

    bool count(K k) const { return find(k) != nullptr; }

    const V&
    at(K k) const
    {
        const V* p = find(k);
        TRIAGE_ASSERT(p != nullptr, "FlatMap::at: key absent");
        return *p;
    }

    /**
     * Value slot for @p k, inserting a value-initialized element if
     * absent (operator[] semantics). The returned reference is
     * invalidated by any subsequent insert.
     */
    V&
    ref(K k)
    {
        TRIAGE_ASSERT(k != EMPTY, "key collides with empty sentinel");
        if ((size_ + 1) * 2 > cap_)
            rehash(cap_ == 0 ? MIN_CAP : cap_ * 2);
        const std::size_t i = probe(k);
        if (keys_[i] != k) {
            keys_[i] = k;
            vals_[i] = V{};
            ++size_;
        }
        return vals_[i];
    }

    /** Remove @p k if present. @return it was present. */
    bool
    erase(K k)
    {
        if (size_ == 0)
            return false;
        std::size_t i = probe(k);
        if (keys_[i] != k)
            return false;
        erase_slot(i);
        return true;
    }

    /**
     * Remove every element for which @p pred(key, value) holds.
     * Implemented as collect-then-erase: backward-shift deletion can
     * move a not-yet-visited element into an already-visited slot
     * across the table's wraparound, so a single erasing sweep could
     * skip elements.
     */
    template <typename Pred>
    void
    erase_if(Pred&& pred)
    {
        std::vector<K> doomed;
        for (std::size_t i = 0; i < cap_; ++i) {
            if (keys_[i] != EMPTY && pred(keys_[i], vals_[i]))
                doomed.push_back(keys_[i]);
        }
        for (K k : doomed)
            erase(k);
    }

    /** Iterate (key, value&) over live elements in slot order. */
    template <typename F>
    void
    for_each(F&& f)
    {
        for (std::size_t i = 0; i < cap_; ++i) {
            if (keys_[i] != EMPTY)
                f(keys_[i], vals_[i]);
        }
    }

    template <typename F>
    void
    for_each(F&& f) const
    {
        for (std::size_t i = 0; i < cap_; ++i) {
            if (keys_[i] != EMPTY)
                f(keys_[i], vals_[i]);
        }
    }

    /** Minimal const forward iteration (range-for; yields pairs). */
    class const_iterator
    {
      public:
        const_iterator(const FlatMap* m, std::size_t i) : m_(m), i_(i)
        {
            advance();
        }

        std::pair<K, V>
        operator*() const
        {
            return {m_->keys_[i_], m_->vals_[i_]};
        }

        const_iterator&
        operator++()
        {
            ++i_;
            advance();
            return *this;
        }

        bool
        operator!=(const const_iterator& o) const
        {
            return i_ != o.i_;
        }

        bool
        operator==(const const_iterator& o) const
        {
            return i_ == o.i_;
        }

      private:
        void
        advance()
        {
            while (i_ < m_->cap_ && m_->keys_[i_] == EMPTY)
                ++i_;
        }

        const FlatMap* m_;
        std::size_t i_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, cap_}; }

  private:
    static constexpr std::size_t MIN_CAP = 16;

    std::size_t
    home(K k) const
    {
        return static_cast<std::size_t>(mix64(k)) & mask_;
    }

    /** First slot holding @p k or EMPTY (SIMD, wraparound). */
    std::size_t
    probe(K k) const
    {
        const std::uint64_t* t =
            reinterpret_cast<const std::uint64_t*>(keys_);
        const std::size_t h = home(k);
        std::uint32_t r = simd::find_first_eq_either(
            t + h, static_cast<std::uint32_t>(cap_ - h), k, EMPTY);
        if (r != simd::NPOS)
            return h + r;
        r = simd::find_first_eq_either(
            t, static_cast<std::uint32_t>(h), k, EMPTY);
        TRIAGE_ASSERT(r != simd::NPOS,
                      "probe table full (load is capped at 50%)");
        return r;
    }

    /** Backward-shift deletion of the element at slot @p i. */
    void
    erase_slot(std::size_t i)
    {
        std::size_t j = i;
        while (true) {
            keys_[i] = EMPTY;
            std::size_t h;
            do {
                j = (j + 1) & mask_;
                if (keys_[j] == EMPTY) {
                    --size_;
                    return;
                }
                h = home(keys_[j]);
            } while (i <= j ? (i < h && h <= j) : (i < h || h <= j));
            keys_[i] = keys_[j];
            vals_[i] = vals_[j];
            i = j;
        }
    }

    /** Size and lay out the arena: packed keys, then aligned values. */
    void
    allocate(std::size_t cap)
    {
        if (cap == 0) {
            arena_.reset();
            keys_ = nullptr;
            vals_ = nullptr;
            cap_ = 0;
            mask_ = 0;
            return;
        }
        const std::size_t key_bytes = cap * sizeof(K);
        const std::size_t val_off =
            (key_bytes + alignof(V) - 1) & ~(alignof(V) - 1);
        static_assert(alignof(V) <= alignof(std::max_align_t));
        arena_ = std::make_unique<std::byte[]>(val_off +
                                               cap * sizeof(V));
        keys_ = reinterpret_cast<K*>(arena_.get());
        vals_ = reinterpret_cast<V*>(arena_.get() + val_off);
        cap_ = cap;
        mask_ = cap - 1;
        std::fill(keys_, keys_ + cap, EMPTY);
    }

    void
    rehash(std::size_t new_cap)
    {
        TRIAGE_ASSERT(is_pow2(new_cap));
        FlatMap old;
        old.swap(*this);
        allocate(new_cap);
        size_ = 0;
        if (old.cap_ != 0) {
            for (std::size_t i = 0; i < old.cap_; ++i) {
                if (old.keys_[i] != EMPTY)
                    ref(old.keys_[i]) = old.vals_[i];
            }
        }
    }

    std::unique_ptr<std::byte[]> arena_;
    K* keys_ = nullptr;
    V* vals_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace triage::util

#endif // TRIAGE_UTIL_FLAT_MAP_HPP
