/**
 * @file
 * Trace-format decoders: turn a ByteSource into sim::TraceRecords.
 *
 * Three external formats are understood (docs/traces.md):
 *
 *  - **tria** — the repo's native format (workloads/trace_io.hpp): a
 *    16-byte header (magic, version, record count) followed by packed
 *    20-byte records. The header count is validated against the file
 *    size whenever the byte layer knows it.
 *  - **champsim** — ChampSim's 64-byte `input_instr` records: one
 *    instruction each, with up to 4 source and 2 destination memory
 *    operands. Memory operands map to TraceRecords (loads then
 *    stores, in operand order); instructions without memory operands
 *    (including branches) accumulate into the next record's
 *    `nonmem_before` pacing count, saturating at 255.
 *  - **memtrace** — a minimal Scarab-style memory trace: packed
 *    24-byte records `{ pc u64, vaddr u64, size u32, flags u8,
 *    nonmem u8, reserved u16 }`, little-endian, no header. flags bit
 *    0 is "store"; reserved must be zero (forward-compat guard).
 *
 * Decoders are forward-only state machines; the StreamWorkload
 * re-creates them on reset(). A decode error (truncated record,
 * unknown flags, trailing garbage) warns once and ends the stream —
 * it never fabricates records.
 */
#ifndef TRIAGE_FRONTEND_DECODER_HPP
#define TRIAGE_FRONTEND_DECODER_HPP

#include <memory>
#include <string>

#include "frontend/byte_source.hpp"
#include "sim/trace.hpp"

namespace triage::frontend {

enum class TraceFormat : std::uint8_t {
    Auto = 0, ///< detect from the file extension
    Tria = 1,
    ChampSim = 2,
    Memtrace = 3,
};

/** Canonical lower-case name ("tria", "champsim", "memtrace"). */
const char* format_name(TraceFormat f);

/** Parse a format name; false on an unknown string. */
bool parse_format(const std::string& s, TraceFormat& out);

/**
 * Resolve TraceFormat::Auto from @p path's extension (after stripping
 * a trailing .gz/.xz): .tria/.tri, .champsim/.champsimtrace, and
 * .memtrace/.mtr. @return false when the extension names no known
 * format.
 */
bool detect_format(const std::string& path, TraceFormat& out);

/** One trace format's record reader. */
class TraceDecoder
{
  public:
    virtual ~TraceDecoder() = default;

    /**
     * Parse and validate the stream header (a no-op for headerless
     * formats). @return false (with a warning) on a malformed header.
     */
    virtual bool begin(ByteSource& src) = 0;

    /**
     * Decode the next record. @return false at end-of-stream or on a
     * decode error (a warning names the error; failed streams do not
     * resume).
     */
    virtual bool next(ByteSource& src, sim::TraceRecord& out) = 0;

    /**
     * Advance up to @p n records without decoding them, when the
     * format + byte source allow random access (raw .tria files).
     * @return true with @p skipped set (may be < n at end-of-trace);
     *         false when unsupported — caller falls back to next().
     */
    virtual bool
    fast_skip(ByteSource& src, std::uint64_t n, std::uint64_t& skipped)
    {
        (void)src;
        (void)n;
        (void)skipped;
        return false;
    }

    /** Total records when the header declares it (tria), else 0. */
    virtual std::uint64_t total_records() const { return 0; }
};

/** Build a fresh decoder for @p format (not Auto — resolve it first). */
std::unique_ptr<TraceDecoder> make_decoder(TraceFormat format);

} // namespace triage::frontend

#endif // TRIAGE_FRONTEND_DECODER_HPP
