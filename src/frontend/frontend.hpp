/**
 * @file
 * Trace-frontend entry points: open external trace files as streamed
 * workloads, and the `trace:` workload-spec grammar that names them
 * anywhere a benchmark name is accepted (docs/traces.md).
 *
 * Spec grammar:
 *
 *   trace:<path>          format auto-detected from the extension
 *   trace[<fmt>]:<path>   explicit format: tria | champsim | memtrace
 *
 * Compression is orthogonal: a `.gz` / `.xz` suffix on the path
 * selects transparent streaming decompression in the byte layer.
 */
#ifndef TRIAGE_FRONTEND_FRONTEND_HPP
#define TRIAGE_FRONTEND_FRONTEND_HPP

#include <memory>
#include <string>

#include "frontend/stream_workload.hpp"

namespace triage::frontend {

/**
 * Open @p path as a streamed workload. TraceFormat::Auto resolves
 * from the extension; an unrecognized extension warns and fails.
 * @return null (with a warning naming the cause) on any failure —
 *         missing file, bad header, unknown format.
 */
std::unique_ptr<StreamWorkload> open_trace(
    const std::string& path, TraceFormat format = TraceFormat::Auto);

/** A parsed `trace:` workload spec. */
struct TraceSpec {
    std::string path;
    TraceFormat format = TraceFormat::Auto;
};

/** Does @p name use the `trace:` / `trace[fmt]:` spec grammar? */
bool is_trace_spec(const std::string& name);

/**
 * Parse a `trace:` spec. @return false (with a warning) on a
 * malformed spec — unknown format name, empty path.
 */
bool parse_trace_spec(const std::string& name, TraceSpec& out);

/** Compose the canonical spec string for @p path / @p format. */
std::string trace_spec(const std::string& path, TraceFormat format);

/**
 * Canonical job-identity string for a trace spec: the resolved format,
 * the path, and the on-disk byte size (`trace[fmt]:path@bytes`). The
 * byte size folds "same path, regenerated contents" into a different
 * exec::JobKey, so memoized results and warm checkpoints never leak
 * across a file swap. Fatal on a malformed spec — keys must never be
 * silently ambiguous.
 */
std::string trace_job_identity(const std::string& spec);

} // namespace triage::frontend

#endif // TRIAGE_FRONTEND_FRONTEND_HPP
