#include "frontend/decoder.hpp"

#include <cstring>

#include "util/log.hpp"
#include "workloads/trace_io.hpp"

namespace triage::frontend {

namespace {

bool
has_suffix(const std::string& s, const char* suf)
{
    const std::size_t n = std::strlen(suf);
    return s.size() >= n && s.compare(s.size() - n, n, suf) == 0;
}

// ---------------------------------------------------------------------
// Native .tria

class TriaDecoder final : public TraceDecoder
{
  public:
    bool
    begin(ByteSource& src) override
    {
        std::uint8_t header[workloads::TRACE_HEADER_BYTES];
        if (!read_exact(src, header, sizeof(header))) {
            util::warn("trace frontend: truncated tria header in " +
                       src.path());
            return false;
        }
        std::uint32_t magic = 0;
        std::uint32_t version = 0;
        std::memcpy(&magic, header, 4);
        std::memcpy(&version, header + 4, 4);
        std::memcpy(&count_, header + 8, 8);
        if (magic != workloads::TRACE_MAGIC ||
            version != workloads::TRACE_VERSION) {
            util::warn("trace frontend: bad tria magic/version in " +
                       src.path());
            return false;
        }
        // With a knowable stream length (raw files), the header count
        // must agree with the bytes actually present — a forged or
        // corrupt count is rejected here instead of trusted anywhere.
        if (auto sz = src.size_bytes()) {
            const std::uint64_t body =
                *sz >= workloads::TRACE_HEADER_BYTES
                    ? *sz - workloads::TRACE_HEADER_BYTES
                    : 0;
            if (body % workloads::TRACE_RECORD_BYTES != 0 ||
                body / workloads::TRACE_RECORD_BYTES != count_) {
                util::warn(util::format_msg(
                    "trace frontend: tria header count ", count_,
                    " disagrees with file size ", *sz, " in ",
                    src.path()));
                return false;
            }
        }
        pos_ = 0;
        return true;
    }

    bool
    next(ByteSource& src, sim::TraceRecord& out) override
    {
        if (pos_ >= count_)
            return false;
        workloads::PackedTraceRecord rec;
        if (!read_exact(src, &rec, sizeof(rec))) {
            util::warn(util::format_msg(
                "trace frontend: tria trace truncated at record ", pos_,
                " of ", count_, " in ", src.path()));
            pos_ = count_; // poison: do not retry the torn record
            return false;
        }
        if (!workloads::unpack_trace_record(rec, out)) {
            util::warn(util::format_msg(
                "trace frontend: unknown flags bits 0x",
                static_cast<unsigned>(rec.flags), " at record ", pos_,
                " in ", src.path(),
                " (written by a newer format revision?)"));
            pos_ = count_;
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    fast_skip(ByteSource& src, std::uint64_t n,
              std::uint64_t& skipped) override
    {
        skipped = std::min(n, count_ - pos_);
        const std::uint64_t target =
            workloads::TRACE_HEADER_BYTES +
            (pos_ + skipped) * workloads::TRACE_RECORD_BYTES;
        if (!src.seek(target))
            return false;
        pos_ += skipped;
        return true;
    }

    std::uint64_t total_records() const override { return count_; }

  private:
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
};

// ---------------------------------------------------------------------
// ChampSim input_instr

#pragma pack(push, 1)
struct ChampSimInstr {
    std::uint64_t ip;
    std::uint8_t is_branch;
    std::uint8_t branch_taken;
    std::uint8_t destination_registers[2];
    std::uint8_t source_registers[4];
    std::uint64_t destination_memory[2];
    std::uint64_t source_memory[4];
};
#pragma pack(pop)
static_assert(sizeof(ChampSimInstr) == 64, "input_instr layout");

class ChampSimDecoder final : public TraceDecoder
{
  public:
    bool
    begin(ByteSource&) override
    {
        // Headerless format: nothing to validate up front.
        pending_count_ = 0;
        pending_pos_ = 0;
        nonmem_ = 0;
        instrs_ = 0;
        return true;
    }

    bool
    next(ByteSource& src, sim::TraceRecord& out) override
    {
        while (pending_pos_ == pending_count_) {
            ChampSimInstr in;
            std::size_t got = src.read(&in, sizeof(in));
            if (got == 0)
                return false; // clean EOF
            if (got < sizeof(in)) {
                if (!read_exact(src,
                                reinterpret_cast<std::uint8_t*>(&in) +
                                    got,
                                sizeof(in) - got)) {
                    util::warn(util::format_msg(
                        "trace frontend: champsim trace truncated "
                        "mid-instruction after ",
                        instrs_, " instructions in ", src.path()));
                    return false;
                }
            }
            ++instrs_;
            decode(in);
        }
        out = pending_[pending_pos_++];
        return true;
    }

  private:
    void
    decode(const ChampSimInstr& in)
    {
        pending_count_ = 0;
        pending_pos_ = 0;
        // Loads first, then stores, each in operand order — the order
        // a real pipeline would issue them for one instruction.
        for (std::uint64_t addr : in.source_memory) {
            if (addr != 0)
                pending_[pending_count_++] = {in.ip, addr, false, 0, 0};
        }
        for (std::uint64_t addr : in.destination_memory) {
            if (addr != 0)
                pending_[pending_count_++] = {in.ip, addr, true, 0, 0};
        }
        if (pending_count_ == 0) {
            // Non-memory instruction (branches included): it paces the
            // core model through the next record's nonmem_before.
            if (nonmem_ < 255)
                ++nonmem_;
            return;
        }
        pending_[0].nonmem_before = nonmem_;
        nonmem_ = 0;
    }

    sim::TraceRecord pending_[6];
    std::uint32_t pending_count_ = 0;
    std::uint32_t pending_pos_ = 0;
    std::uint8_t nonmem_ = 0;
    std::uint64_t instrs_ = 0;
};

// ---------------------------------------------------------------------
// Minimal Scarab-style memtrace

#pragma pack(push, 1)
struct MemtraceRecord {
    std::uint64_t pc;
    std::uint64_t vaddr;
    std::uint32_t size;
    std::uint8_t flags; ///< bit 0: store
    std::uint8_t nonmem;
    std::uint16_t reserved; ///< must be 0
};
#pragma pack(pop)
static_assert(sizeof(MemtraceRecord) == 24, "memtrace record layout");

constexpr std::uint8_t MEMTRACE_FLAG_WRITE = 0x01;
constexpr std::uint8_t MEMTRACE_FLAG_MASK = MEMTRACE_FLAG_WRITE;

class MemtraceDecoder final : public TraceDecoder
{
  public:
    bool begin(ByteSource&) override
    {
        pos_ = 0;
        return true;
    }

    bool
    next(ByteSource& src, sim::TraceRecord& out) override
    {
        MemtraceRecord rec;
        std::size_t got = src.read(&rec, sizeof(rec));
        if (got == 0)
            return false; // clean EOF
        if (got < sizeof(rec)) {
            if (!read_exact(src,
                            reinterpret_cast<std::uint8_t*>(&rec) + got,
                            sizeof(rec) - got)) {
                util::warn(util::format_msg(
                    "trace frontend: memtrace truncated at record ",
                    pos_, " in ", src.path()));
                return false;
            }
        }
        if ((rec.flags & ~MEMTRACE_FLAG_MASK) != 0 ||
            rec.reserved != 0) {
            util::warn(util::format_msg(
                "trace frontend: memtrace record ", pos_,
                " carries reserved bits in ", src.path(),
                " (newer format revision?)"));
            return false;
        }
        out.pc = rec.pc;
        out.addr = rec.vaddr;
        out.is_write = (rec.flags & MEMTRACE_FLAG_WRITE) != 0;
        out.nonmem_before = rec.nonmem;
        out.dep_distance = 0;
        ++pos_;
        return true;
    }

  private:
    std::uint64_t pos_ = 0;
};

} // namespace

const char*
format_name(TraceFormat f)
{
    switch (f) {
    case TraceFormat::Auto:
        return "auto";
    case TraceFormat::Tria:
        return "tria";
    case TraceFormat::ChampSim:
        return "champsim";
    case TraceFormat::Memtrace:
        return "memtrace";
    }
    return "?";
}

bool
parse_format(const std::string& s, TraceFormat& out)
{
    if (s == "auto")
        out = TraceFormat::Auto;
    else if (s == "tria")
        out = TraceFormat::Tria;
    else if (s == "champsim")
        out = TraceFormat::ChampSim;
    else if (s == "memtrace")
        out = TraceFormat::Memtrace;
    else
        return false;
    return true;
}

bool
detect_format(const std::string& path, TraceFormat& out)
{
    std::string base = path;
    for (const char* comp : {".gz", ".xz"}) {
        if (has_suffix(base, comp)) {
            base = base.substr(0, base.size() - std::strlen(comp));
            break;
        }
    }
    if (has_suffix(base, ".tria") || has_suffix(base, ".tri")) {
        out = TraceFormat::Tria;
    } else if (has_suffix(base, ".champsim") ||
               has_suffix(base, ".champsimtrace")) {
        out = TraceFormat::ChampSim;
    } else if (has_suffix(base, ".memtrace") || has_suffix(base, ".mtr")) {
        out = TraceFormat::Memtrace;
    } else {
        return false;
    }
    return true;
}

std::unique_ptr<TraceDecoder>
make_decoder(TraceFormat format)
{
    switch (format) {
    case TraceFormat::Tria:
        return std::make_unique<TriaDecoder>();
    case TraceFormat::ChampSim:
        return std::make_unique<ChampSimDecoder>();
    case TraceFormat::Memtrace:
        return std::make_unique<MemtraceDecoder>();
    case TraceFormat::Auto:
        break;
    }
    util::fatal("make_decoder: unresolved trace format");
}

} // namespace triage::frontend
