#include "frontend/frontend.hpp"

#include <cstdio>

#include "util/log.hpp"

namespace triage::frontend {

namespace {

constexpr const char* PREFIX = "trace";

/** Raw on-disk byte size (compressed size for .gz/.xz), 0 if unstatable. */
std::uint64_t
file_bytes(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return 0;
    std::uint64_t n = 0;
    if (std::fseek(f, 0, SEEK_END) == 0) {
        long end = std::ftell(f);
        if (end > 0)
            n = static_cast<std::uint64_t>(end);
    }
    std::fclose(f);
    return n;
}

} // namespace

std::unique_ptr<StreamWorkload>
open_trace(const std::string& path, TraceFormat format)
{
    if (format == TraceFormat::Auto && !detect_format(path, format)) {
        util::warn("trace frontend: cannot infer the format of '" +
                   path +
                   "' from its extension; name it explicitly "
                   "(trace[tria|champsim|memtrace]:<path>, or "
                   "triagesim --trace-format=...)");
        return nullptr;
    }
    return StreamWorkload::open(path, format);
}

bool
is_trace_spec(const std::string& name)
{
    if (name.rfind(PREFIX, 0) != 0)
        return false;
    const char tail = name.size() > 5 ? name[5] : '\0';
    return tail == ':' || tail == '[';
}

bool
parse_trace_spec(const std::string& name, TraceSpec& out)
{
    if (!is_trace_spec(name))
        return false;
    std::string rest = name.substr(5);
    out.format = TraceFormat::Auto;
    if (rest[0] == '[') {
        std::size_t close = rest.find(']');
        if (close == std::string::npos || close + 1 >= rest.size() ||
            rest[close + 1] != ':') {
            util::warn("trace frontend: malformed spec '" + name + "'");
            return false;
        }
        const std::string fmt = rest.substr(1, close - 1);
        if (!parse_format(fmt, out.format) ||
            out.format == TraceFormat::Auto) {
            util::warn("trace frontend: unknown trace format '" + fmt +
                       "' in '" + name +
                       "' (tria | champsim | memtrace)");
            return false;
        }
        rest = rest.substr(close + 2);
    } else {
        rest = rest.substr(1); // skip ':'
    }
    if (rest.empty()) {
        util::warn("trace frontend: empty path in spec '" + name + "'");
        return false;
    }
    out.path = rest;
    return true;
}

std::string
trace_spec(const std::string& path, TraceFormat format)
{
    if (format == TraceFormat::Auto)
        return std::string(PREFIX) + ":" + path;
    return std::string(PREFIX) + "[" + format_name(format) + "]:" +
           path;
}

std::string
trace_job_identity(const std::string& spec)
{
    TraceSpec t;
    if (!parse_trace_spec(spec, t))
        util::fatal("trace frontend: bad trace spec in a job key: '" +
                    spec + "'");
    TraceFormat fmt = t.format;
    if (fmt == TraceFormat::Auto && !detect_format(t.path, fmt))
        util::fatal("trace frontend: cannot resolve the format of '" +
                    t.path + "' for a job key");
    return std::string(PREFIX) + "[" + format_name(fmt) + "]:" +
           t.path + "@" + std::to_string(file_bytes(t.path));
}

} // namespace triage::frontend
