#include "frontend/byte_source.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/log.hpp"

#ifdef TRIAGE_HAVE_ZLIB
#include <zlib.h>
#endif
#ifdef TRIAGE_HAVE_LZMA
#include <lzma.h>
#endif

namespace triage::frontend {

namespace {

bool
has_suffix(const std::string& s, const char* suf)
{
    const std::size_t n = std::strlen(suf);
    return s.size() >= n && s.compare(s.size() - n, n, suf) == 0;
}

bool
force_pipe()
{
    return std::getenv("TRIAGE_TRACE_FORCE_PIPE") != nullptr;
}

// ---------------------------------------------------------------------
// Raw file

class RawFileSource final : public ByteSource
{
  public:
    explicit RawFileSource(std::string path) : ByteSource(std::move(path))
    {
        open();
    }

    ~RawFileSource() override
    {
        if (f_ != nullptr)
            std::fclose(f_);
    }

    bool ok() const { return f_ != nullptr; }

    std::size_t
    read(void* p, std::size_t n) override
    {
        if (f_ == nullptr)
            return 0;
        std::size_t got = std::fread(p, 1, n, f_);
        if (got < n && std::ferror(f_) != 0)
            failed_ = true;
        return got;
    }

    bool
    reopen() override
    {
        if (f_ != nullptr && std::fseek(f_, 0, SEEK_SET) == 0) {
            std::clearerr(f_);
            failed_ = false;
            return true;
        }
        if (f_ != nullptr) {
            std::fclose(f_);
            f_ = nullptr;
        }
        open();
        return f_ != nullptr;
    }

    bool failed() const override { return failed_; }

    std::optional<std::uint64_t>
    size_bytes() const override
    {
        return size_;
    }

    bool
    seek(std::uint64_t off) override
    {
        if (f_ == nullptr)
            return false;
        return std::fseek(f_, static_cast<long>(off), SEEK_SET) == 0;
    }

  private:
    void
    open()
    {
        f_ = std::fopen(path_.c_str(), "rb");
        failed_ = false;
        size_.reset();
        if (f_ == nullptr)
            return;
        if (std::fseek(f_, 0, SEEK_END) == 0) {
            long end = std::ftell(f_);
            if (end >= 0)
                size_ = static_cast<std::uint64_t>(end);
        }
        std::fseek(f_, 0, SEEK_SET);
    }

    std::FILE* f_ = nullptr;
    bool failed_ = false;
    std::optional<std::uint64_t> size_;
};

// ---------------------------------------------------------------------
// Piped decompressor fallback (zcat / xzcat)

class PipeSource final : public ByteSource
{
  public:
    PipeSource(std::string path, std::string tool)
        : ByteSource(std::move(path)), tool_(std::move(tool))
    {
        open();
    }

    ~PipeSource() override { close(); }

    bool ok() const { return f_ != nullptr; }

    std::size_t
    read(void* p, std::size_t n) override
    {
        if (f_ == nullptr)
            return 0;
        std::size_t got = std::fread(p, 1, n, f_);
        if (got < n) {
            if (std::ferror(f_) != 0)
                failed_ = true;
            // EOF: reap the child now so a failed decompressor (bad
            // archive, missing tool) surfaces as an error, not as a
            // silently short stream.
            finish();
        }
        return got;
    }

    bool
    reopen() override
    {
        close();
        open();
        return f_ != nullptr;
    }

    bool failed() const override { return failed_; }

  private:
    void
    open()
    {
        failed_ = false;
        // Single-quote the path for the shell popen() spawns;
        // embedded quotes become '\'' so arbitrary names stay one
        // argument.
        std::string quoted = "'";
        for (char c : path_) {
            if (c == '\'')
                quoted += "'\\''";
            else
                quoted += c;
        }
        quoted += "'";
        const std::string cmd = tool_ + " -- " + quoted;
        f_ = ::popen(cmd.c_str(), "r");
        if (f_ == nullptr)
            util::warn("trace frontend: cannot spawn '" + cmd + "'");
    }

    /** pclose at EOF and record a nonzero exit as a stream error. */
    void
    finish()
    {
        if (f_ == nullptr)
            return;
        int status = ::pclose(f_);
        f_ = nullptr;
        if (status != 0) {
            failed_ = true;
            util::warn(util::format_msg(
                "trace frontend: '", tool_, "' exited with status ",
                status, " decompressing ", path_));
        }
    }

    void
    close()
    {
        if (f_ != nullptr) {
            ::pclose(f_);
            f_ = nullptr;
        }
    }

    std::string tool_;
    std::FILE* f_ = nullptr;
    bool failed_ = false;
};

// ---------------------------------------------------------------------
// zlib

#ifdef TRIAGE_HAVE_ZLIB
class GzSource final : public ByteSource
{
  public:
    explicit GzSource(std::string path) : ByteSource(std::move(path))
    {
        open();
    }

    ~GzSource() override
    {
        if (gz_ != nullptr)
            gzclose(gz_);
    }

    bool ok() const { return gz_ != nullptr; }

    std::size_t
    read(void* p, std::size_t n) override
    {
        if (gz_ == nullptr)
            return 0;
        int got = gzread(gz_, p, static_cast<unsigned>(n));
        if (got < 0) {
            failed_ = true;
            int errnum = 0;
            const char* msg = gzerror(gz_, &errnum);
            util::warn(util::format_msg("trace frontend: gzip error ",
                                        errnum, " (", msg, ") in ",
                                        path_));
            return 0;
        }
        if (static_cast<std::size_t>(got) < n) {
            // Short read: distinguish clean EOF from a truncated or
            // corrupt member (gzread reports those via gzerror).
            int errnum = 0;
            gzerror(gz_, &errnum);
            if (errnum != Z_OK && errnum != Z_STREAM_END)
                failed_ = true;
        }
        return static_cast<std::size_t>(got);
    }

    bool
    reopen() override
    {
        failed_ = false;
        if (gz_ != nullptr && gzrewind(gz_) == 0)
            return true;
        if (gz_ != nullptr) {
            gzclose(gz_);
            gz_ = nullptr;
        }
        open();
        return gz_ != nullptr;
    }

    bool failed() const override { return failed_; }

  private:
    void
    open()
    {
        gz_ = gzopen(path_.c_str(), "rb");
        if (gz_ != nullptr)
            gzbuffer(gz_, 1 << 17);
    }

    gzFile gz_ = nullptr;
    bool failed_ = false;
};
#endif // TRIAGE_HAVE_ZLIB

// ---------------------------------------------------------------------
// liblzma

#ifdef TRIAGE_HAVE_LZMA
class XzSource final : public ByteSource
{
  public:
    explicit XzSource(std::string path) : ByteSource(std::move(path))
    {
        open();
    }

    ~XzSource() override { close(); }

    bool ok() const { return f_ != nullptr; }

    std::size_t
    read(void* p, std::size_t n) override
    {
        if (f_ == nullptr || failed_)
            return 0;
        strm_.next_out = static_cast<std::uint8_t*>(p);
        strm_.avail_out = n;
        while (strm_.avail_out > 0 && !done_) {
            if (strm_.avail_in == 0 && !eof_in_) {
                std::size_t got = std::fread(in_.data(), 1, in_.size(),
                                             f_);
                if (got < in_.size()) {
                    if (std::ferror(f_) != 0) {
                        failed_ = true;
                        break;
                    }
                    eof_in_ = true;
                }
                strm_.next_in = in_.data();
                strm_.avail_in = got;
            }
            lzma_ret rc = lzma_code(&strm_, eof_in_ ? LZMA_FINISH
                                                    : LZMA_RUN);
            if (rc == LZMA_STREAM_END) {
                done_ = true;
            } else if (rc != LZMA_OK) {
                failed_ = true;
                util::warn(util::format_msg(
                    "trace frontend: xz decode error ",
                    static_cast<int>(rc), " in ", path_));
                break;
            } else if (eof_in_ && strm_.avail_in == 0 &&
                       strm_.avail_out > 0 && !done_) {
                // Input exhausted mid-stream: truncated archive.
                failed_ = true;
                util::warn("trace frontend: truncated xz stream in " +
                           path_);
                break;
            }
        }
        return n - strm_.avail_out;
    }

    bool
    reopen() override
    {
        close();
        open();
        return f_ != nullptr;
    }

    bool failed() const override { return failed_; }

  private:
    void
    open()
    {
        failed_ = false;
        done_ = false;
        eof_in_ = false;
        in_.resize(1 << 16);
        f_ = std::fopen(path_.c_str(), "rb");
        if (f_ == nullptr)
            return;
        strm_ = LZMA_STREAM_INIT;
        if (lzma_stream_decoder(&strm_, UINT64_MAX,
                                LZMA_CONCATENATED) != LZMA_OK) {
            std::fclose(f_);
            f_ = nullptr;
        }
    }

    void
    close()
    {
        if (f_ != nullptr) {
            lzma_end(&strm_);
            std::fclose(f_);
            f_ = nullptr;
        }
    }

    std::FILE* f_ = nullptr;
    lzma_stream strm_ = LZMA_STREAM_INIT;
    std::vector<std::uint8_t> in_;
    bool eof_in_ = false;
    bool done_ = false;
    bool failed_ = false;
};
#endif // TRIAGE_HAVE_LZMA

template <typename T>
std::unique_ptr<ByteSource>
checked(std::unique_ptr<T> src)
{
    if (!src->ok()) {
        util::warn("trace frontend: cannot open " + src->path());
        return nullptr;
    }
    return src;
}

} // namespace

std::string
gz_backend()
{
#ifdef TRIAGE_HAVE_ZLIB
    if (!force_pipe())
        return "zlib";
#endif
    return "pipe(zcat)";
}

std::string
xz_backend()
{
#ifdef TRIAGE_HAVE_LZMA
    if (!force_pipe())
        return "liblzma";
#endif
    return "pipe(xzcat)";
}

std::unique_ptr<ByteSource>
open_byte_source(const std::string& path)
{
    if (has_suffix(path, ".gz")) {
#ifdef TRIAGE_HAVE_ZLIB
        if (!force_pipe())
            return checked(std::make_unique<GzSource>(path));
#endif
        return checked(std::make_unique<PipeSource>(path, "zcat"));
    }
    if (has_suffix(path, ".xz")) {
#ifdef TRIAGE_HAVE_LZMA
        if (!force_pipe())
            return checked(std::make_unique<XzSource>(path));
#endif
        return checked(std::make_unique<PipeSource>(path, "xzcat"));
    }
    return checked(std::make_unique<RawFileSource>(path));
}

bool
read_exact(ByteSource& src, void* p, std::size_t n)
{
    std::size_t done = 0;
    auto* bytes = static_cast<std::uint8_t*>(p);
    while (done < n) {
        std::size_t got = src.read(bytes + done, n - done);
        if (got == 0)
            return false;
        done += got;
    }
    return true;
}

} // namespace triage::frontend
