/**
 * @file
 * ByteSource: a restartable stream of bytes backing the trace-reader
 * frontend (docs/traces.md).
 *
 * The frontend replays multi-GB captured traces with bounded memory,
 * so the byte layer never loads a file whole: every implementation
 * hands out bytes from a fixed-size internal buffer. Compressed inputs
 * (`.gz`, `.xz`) decompress transparently — in-process when the build
 * found zlib / liblzma, through a piped `zcat` / `xzcat` otherwise —
 * and `reopen()` restarts the stream from byte 0, which is what makes
 * a StreamWorkload's reset()/clone()/checkpoint-replay contract work
 * on a forward-only decompressor.
 */
#ifndef TRIAGE_FRONTEND_BYTE_SOURCE_HPP
#define TRIAGE_FRONTEND_BYTE_SOURCE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace triage::frontend {

/** A restartable, forward-readable byte stream. */
class ByteSource
{
  public:
    explicit ByteSource(std::string path) : path_(std::move(path)) {}
    virtual ~ByteSource() = default;

    ByteSource(const ByteSource&) = delete;
    ByteSource& operator=(const ByteSource&) = delete;

    /**
     * Read up to @p n bytes into @p p.
     * @return bytes produced; 0 means end-of-stream or error (check
     *         failed() to tell them apart).
     */
    virtual std::size_t read(void* p, std::size_t n) = 0;

    /** Restart from byte 0. @return false if the reopen failed. */
    virtual bool reopen() = 0;

    /** An I/O or decompression error has been observed. */
    virtual bool failed() const = 0;

    /**
     * Total stream length in bytes when cheaply knowable (raw files:
     * one fseek/ftell at open). Compressed and piped sources return
     * nullopt — their decompressed size is not known up front.
     */
    virtual std::optional<std::uint64_t> size_bytes() const
    {
        return std::nullopt;
    }

    /**
     * Jump to absolute byte offset @p off. Only raw files support
     * this; decompressors are forward-only and return false (callers
     * fall back to sequential reads).
     */
    virtual bool seek(std::uint64_t off)
    {
        (void)off;
        return false;
    }

    const std::string& path() const { return path_; }

  protected:
    std::string path_;
};

/**
 * Open @p path as a byte stream, decompressing by file extension:
 * `.gz` and `.xz` decode transparently, anything else reads raw.
 * @return null (with a warning) when the file cannot be opened or no
 *         decompressor for its extension is available.
 *
 * The `TRIAGE_TRACE_FORCE_PIPE` environment variable forces the piped
 * `zcat` / `xzcat` fallback even when the in-process codecs were
 * compiled in (used by tests to cover both paths in one build).
 */
std::unique_ptr<ByteSource> open_byte_source(const std::string& path);

/** "zlib" / "pipe(zcat)" / "none" — what open_byte_source would use
 *  for a `.gz` input (diagnostics and test gating). */
std::string gz_backend();

/** Same for `.xz` inputs. */
std::string xz_backend();

/**
 * Read exactly @p n bytes. @return false on a short read (EOF or
 * error), in which case the stream position is unspecified.
 */
bool read_exact(ByteSource& src, void* p, std::size_t n);

} // namespace triage::frontend

#endif // TRIAGE_FRONTEND_BYTE_SOURCE_HPP
