/**
 * @file
 * StreamWorkload: replay an on-disk trace through the sim::Workload
 * interface with bounded memory.
 *
 * Records are decoded in fixed-size chunks (kChunkRecords at a time),
 * so a multi-million-record trace costs the same resident memory as a
 * toy one: one chunk buffer plus the byte layer's decompression
 * window. reset() re-opens the byte source and a fresh decoder, which
 * is what makes the workload restartable (multi-programmed mixes wrap
 * early finishers) and checkpoint-resumable — CoreModel restores a
 * workload cursor by deterministic replay from reset(), and skip()
 * turns that replay into a seek on raw .tria files.
 */
#ifndef TRIAGE_FRONTEND_STREAM_WORKLOAD_HPP
#define TRIAGE_FRONTEND_STREAM_WORKLOAD_HPP

#include <memory>
#include <string>
#include <vector>

#include "frontend/byte_source.hpp"
#include "frontend/decoder.hpp"
#include "sim/trace.hpp"

namespace triage::frontend {

class StreamWorkload final : public sim::Workload
{
  public:
    /** Records decoded per refill; the whole-run memory bound. */
    static constexpr std::size_t kChunkRecords = 4096;

    /**
     * Open @p path as a streamed workload. @p format must be concrete
     * (resolve Auto via detect_format first — see frontend.hpp's
     * open_trace, the usual entry point).
     * @return null (with a warning) on open or header-validation
     *         failure.
     */
    static std::unique_ptr<StreamWorkload> open(const std::string& path,
                                                TraceFormat format);

    void reset() override;
    bool next(sim::TraceRecord& out) override;
    std::uint64_t skip(std::uint64_t n) override;
    const std::string& name() const override { return name_; }
    std::unique_ptr<sim::Workload> clone() const override;

    /**
     * Shift emitted addresses/PCs by per-instance constants, exactly
     * like SyntheticWorkload::set_instance: co-scheduled replays of
     * one trace get disjoint address spaces, as distinct processes
     * would have.
     */
    void set_instance(unsigned instance_id);

    const std::string& path() const { return path_; }
    TraceFormat format() const { return format_; }

    /** Records the trace header declares (0 when the format has no
     *  header, e.g. champsim/memtrace). */
    std::uint64_t declared_records() const;

  private:
    StreamWorkload(std::string path, TraceFormat format,
                   std::unique_ptr<ByteSource> src,
                   std::unique_ptr<TraceDecoder> dec);

    bool refill();

    std::string path_;
    std::string name_;
    TraceFormat format_;
    std::unique_ptr<ByteSource> src_;
    std::unique_ptr<TraceDecoder> dec_;

    std::vector<sim::TraceRecord> chunk_;
    std::size_t chunk_pos_ = 0;
    bool at_end_ = false;

    unsigned instance_ = 0;
    sim::Addr addr_offset_ = 0;
    sim::Pc pc_offset_ = 0;
};

} // namespace triage::frontend

#endif // TRIAGE_FRONTEND_STREAM_WORKLOAD_HPP
