#include "frontend/stream_workload.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace triage::frontend {

namespace {

/** Display name: basename with compression + format suffixes shorn. */
std::string
display_name(const std::string& path)
{
    std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    for (const char* suf : {".gz", ".xz"}) {
        std::size_t n = std::string(suf).size();
        if (base.size() > n && base.compare(base.size() - n, n, suf) == 0)
            base.resize(base.size() - n);
    }
    for (const char* suf : {".tria", ".tri", ".champsimtrace",
                            ".champsim", ".memtrace", ".mtr"}) {
        std::size_t n = std::string(suf).size();
        if (base.size() > n &&
            base.compare(base.size() - n, n, suf) == 0) {
            base.resize(base.size() - n);
            break;
        }
    }
    return base.empty() ? path : base;
}

} // namespace

StreamWorkload::StreamWorkload(std::string path, TraceFormat format,
                               std::unique_ptr<ByteSource> src,
                               std::unique_ptr<TraceDecoder> dec)
    : path_(std::move(path)), name_(display_name(path_)),
      format_(format), src_(std::move(src)), dec_(std::move(dec))
{
    chunk_.reserve(kChunkRecords);
}

std::unique_ptr<StreamWorkload>
StreamWorkload::open(const std::string& path, TraceFormat format)
{
    TRIAGE_ASSERT(format != TraceFormat::Auto,
                  "resolve TraceFormat::Auto before open()");
    auto src = open_byte_source(path);
    if (src == nullptr)
        return nullptr;
    auto dec = make_decoder(format);
    if (!dec->begin(*src))
        return nullptr;
    return std::unique_ptr<StreamWorkload>(new StreamWorkload(
        path, format, std::move(src), std::move(dec)));
}

void
StreamWorkload::reset()
{
    chunk_.clear();
    chunk_pos_ = 0;
    at_end_ = false;
    // The byte source was validated at open; losing it mid-run (file
    // deleted, pipe tool gone) cannot be papered over — an empty
    // restart would silently change the simulated stream.
    if (!src_->reopen())
        util::fatal("StreamWorkload: cannot reopen " + path_);
    dec_ = make_decoder(format_);
    if (!dec_->begin(*src_))
        util::fatal("StreamWorkload: " + path_ +
                    " changed mid-run (header re-validation failed)");
}

bool
StreamWorkload::refill()
{
    chunk_.clear();
    chunk_pos_ = 0;
    sim::TraceRecord r;
    while (chunk_.size() < kChunkRecords && dec_->next(*src_, r)) {
        r.addr += addr_offset_;
        r.pc += pc_offset_;
        chunk_.push_back(r);
    }
    if (chunk_.empty()) {
        at_end_ = true;
        return false;
    }
    if (chunk_.size() < kChunkRecords)
        at_end_ = true; // decoder hit EOF; drain what it produced
    return true;
}

bool
StreamWorkload::next(sim::TraceRecord& out)
{
    if (chunk_pos_ >= chunk_.size()) {
        if (at_end_ || !refill())
            return false;
    }
    out = chunk_[chunk_pos_++];
    return true;
}

std::uint64_t
StreamWorkload::skip(std::uint64_t n)
{
    std::uint64_t done = 0;
    while (done < n) {
        if (chunk_pos_ < chunk_.size()) {
            const std::uint64_t take = std::min<std::uint64_t>(
                n - done, chunk_.size() - chunk_pos_);
            chunk_pos_ += take;
            done += take;
            continue;
        }
        if (at_end_)
            break;
        // Between chunks the decoder may seek instead of decode
        // (raw .tria): checkpoint restore of a deep stream position
        // becomes one lseek instead of a re-decode of the prefix.
        const std::uint64_t want = n - done;
        std::uint64_t skipped = 0;
        if (dec_->fast_skip(*src_, want, skipped)) {
            done += skipped;
            if (skipped < want)
                at_end_ = true;
            continue;
        }
        if (!refill())
            break;
    }
    return done;
}

std::unique_ptr<sim::Workload>
StreamWorkload::clone() const
{
    auto copy = open(path_, format_);
    if (copy == nullptr)
        util::fatal("StreamWorkload: cannot clone " + path_);
    copy->set_instance(instance_);
    return copy;
}

void
StreamWorkload::set_instance(unsigned instance_id)
{
    TRIAGE_ASSERT(chunk_.empty() && chunk_pos_ == 0,
                  "set_instance before the first read");
    instance_ = instance_id;
    addr_offset_ = static_cast<sim::Addr>(instance_id) << 44;
    pc_offset_ = static_cast<sim::Pc>(instance_id) << 48;
}

std::uint64_t
StreamWorkload::declared_records() const
{
    return dec_->total_records();
}

} // namespace triage::frontend
