/**
 * @file
 * Compressed-tag lookup table (paper Section 3.2).
 *
 * Each metadata entry must fit in 4 bytes, but a block address carries
 * a tag far wider than 10 bits. Triage interposes a lookup table that
 * assigns each distinct full tag a 10-bit id; entries store ids and the
 * table expands them back. The table is finite, so hot tags can evict
 * cold ones — metadata that still references the recycled id silently
 * decodes to the *new* tag and yields an inaccurate prefetch, exactly
 * the failure mode real hardware would have.
 */
#ifndef TRIAGE_CORE_TAG_COMPRESSOR_HPP
#define TRIAGE_CORE_TAG_COMPRESSOR_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace triage::core {

/** Width of the compressed id and the address split it implies. */
struct TagCompressorConfig {
    std::uint32_t id_bits = 10;  ///< 1024 live tags
    std::uint32_t set_bits = 11; ///< low bits of a block address (Table 1 LLC)
};

/** Bidirectional full-tag <-> compressed-id table with LRU recycling. */
class TagCompressor
{
  public:
    explicit TagCompressor(TagCompressorConfig cfg = {});

    /** Split helpers. */
    std::uint64_t tag_of(sim::Addr block) const { return block >> cfg_.set_bits; }
    std::uint32_t
    set_of(sim::Addr block) const
    {
        return static_cast<std::uint32_t>(block &
                                          ((1u << cfg_.set_bits) - 1));
    }
    sim::Addr
    combine(std::uint64_t tag, std::uint32_t set) const
    {
        return (tag << cfg_.set_bits) | set;
    }

    /** Allocating compression: returns the id for @p tag (may recycle). */
    std::uint16_t compress(std::uint64_t tag);

    /** Non-allocating probe: id only if the tag is currently mapped. */
    std::optional<std::uint16_t> find(std::uint64_t tag) const;

    /** Request the cache line of @p tag's probe slot ahead of a find()
     *  (pure latency hint, no architectural effect). */
    void
    prefetch_hint(std::uint64_t tag) const
    {
        __builtin_prefetch(map_tags_.data() + map_home(tag));
    }

    /** Expand an id back to whatever full tag currently owns it. */
    std::uint64_t decompress(std::uint16_t id) const;

    std::uint64_t recycles() const { return recycles_; }
    std::uint32_t capacity() const { return 1u << cfg_.id_bits; }

    void
    checkpoint(sim::Snapshot& s)
    {
        s.section("triage.tags");
        s.io_vec(slots_, [](sim::Snapshot& a, Slot& e) {
            a.io(e.tag);
            a.io(e.lru);
            a.io(e.valid);
        });
        s.io(clock_);
        s.io(recycles_);
        // The probe table is pure acceleration state over slots_
        // (tag -> id for every valid slot), so it is rebuilt rather
        // than serialized: lookups are layout-independent, and the
        // snapshot stays smaller and trivially byte-deterministic.
        if (s.loading())
            map_rebuild();
    }

  private:
    struct Slot {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    /**
     * tag -> id direction, an open-addressing linear-probe table
     * (docs/performance.md): find() is on the metadata lookup hot
     * path and a flat probe sequence beats the node-based
     * unordered_map it replaced. Structure-of-arrays: the packed tag
     * array (MAP_EMPTY all-ones sentinel for free slots) is what the
     * SIMD probe scans for tag-or-empty in one pass; ids sit in a
     * parallel array read only on a match. The all-ones tag itself —
     * unreachable from real block addresses but legal through the
     * public API, and the property suite compresses it — lives in a
     * one-entry side slot instead of the probe array, so every 64-bit
     * tag stays representable. Sized at 4x id
     * capacity, so load stays under 25% and probes terminate quickly;
     * erase uses the classic backward-shift so no tombstones
     * accumulate.
     */
    static constexpr std::uint64_t MAP_EMPTY = ~std::uint64_t{0};

    std::size_t map_home(std::uint64_t tag) const;
    /** Index of the first probe slot holding @p tag or MAP_EMPTY. */
    std::size_t map_probe(std::uint64_t tag) const;
    /** Pointer to @p tag's id, or nullptr when unmapped. */
    const std::uint16_t* id_lookup(std::uint64_t tag) const;
    void map_insert(std::uint64_t tag, std::uint16_t id);
    void map_erase(std::uint64_t tag);
    /** Repopulate the probe table from the valid slots_ entries. */
    void map_rebuild();

    TagCompressorConfig cfg_;
    std::vector<Slot> slots_;             ///< id -> tag
    std::vector<std::uint64_t> map_tags_; ///< probe array (hot)
    std::vector<std::uint16_t> map_ids_;  ///< parallel ids (cold)
    bool empty_tag_valid_ = false;  ///< side slot: the all-ones tag
    std::uint16_t empty_tag_id_ = 0;
    std::size_t map_mask_ = 0;
    std::uint64_t clock_ = 0;
    std::uint64_t recycles_ = 0;
};

} // namespace triage::core

#endif // TRIAGE_CORE_TAG_COMPRESSOR_HPP
