/**
 * @file
 * Compressed-tag lookup table (paper Section 3.2).
 *
 * Each metadata entry must fit in 4 bytes, but a block address carries
 * a tag far wider than 10 bits. Triage interposes a lookup table that
 * assigns each distinct full tag a 10-bit id; entries store ids and the
 * table expands them back. The table is finite, so hot tags can evict
 * cold ones — metadata that still references the recycled id silently
 * decodes to the *new* tag and yields an inaccurate prefetch, exactly
 * the failure mode real hardware would have.
 */
#ifndef TRIAGE_CORE_TAG_COMPRESSOR_HPP
#define TRIAGE_CORE_TAG_COMPRESSOR_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace triage::core {

/** Width of the compressed id and the address split it implies. */
struct TagCompressorConfig {
    std::uint32_t id_bits = 10;  ///< 1024 live tags
    std::uint32_t set_bits = 11; ///< low bits of a block address (Table 1 LLC)
};

/** Bidirectional full-tag <-> compressed-id table with LRU recycling. */
class TagCompressor
{
  public:
    explicit TagCompressor(TagCompressorConfig cfg = {});

    /** Split helpers. */
    std::uint64_t tag_of(sim::Addr block) const { return block >> cfg_.set_bits; }
    std::uint32_t
    set_of(sim::Addr block) const
    {
        return static_cast<std::uint32_t>(block &
                                          ((1u << cfg_.set_bits) - 1));
    }
    sim::Addr
    combine(std::uint64_t tag, std::uint32_t set) const
    {
        return (tag << cfg_.set_bits) | set;
    }

    /** Allocating compression: returns the id for @p tag (may recycle). */
    std::uint16_t compress(std::uint64_t tag);

    /** Non-allocating probe: id only if the tag is currently mapped. */
    std::optional<std::uint16_t> find(std::uint64_t tag) const;

    /** Request the cache line of @p tag's probe slot ahead of a find()
     *  (pure latency hint, no architectural effect). */
    void
    prefetch_hint(std::uint64_t tag) const
    {
        __builtin_prefetch(map_.data() + map_home(tag));
    }

    /** Expand an id back to whatever full tag currently owns it. */
    std::uint64_t decompress(std::uint16_t id) const;

    std::uint64_t recycles() const { return recycles_; }
    std::uint32_t capacity() const { return 1u << cfg_.id_bits; }

    void
    checkpoint(sim::Snapshot& s)
    {
        s.section("triage.tags");
        s.io_vec(slots_, [](sim::Snapshot& a, Slot& e) {
            a.io(e.tag);
            a.io(e.lru);
            a.io(e.valid);
        });
        s.io_vec(map_, [](sim::Snapshot& a, MapSlot& e) {
            a.io(e.tag);
            a.io(e.id);
            a.io(e.used);
        });
        s.io(clock_);
        s.io(recycles_);
    }

  private:
    struct Slot {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    /**
     * tag -> id direction, an open-addressing linear-probe table
     * (docs/performance.md): find() is on the metadata lookup hot
     * path and a flat probe sequence beats the node-based
     * unordered_map it replaced. Sized at 4x id capacity, so load
     * stays under 25% and probes terminate quickly; erase uses the
     * classic backward-shift so no tombstones accumulate.
     */
    struct MapSlot {
        std::uint64_t tag = 0;
        std::uint16_t id = 0;
        bool used = false;
    };

    std::size_t map_home(std::uint64_t tag) const;
    /** Slot index of @p tag, or the table size if absent. */
    std::size_t map_find(std::uint64_t tag) const;
    void map_insert(std::uint64_t tag, std::uint16_t id);
    void map_erase(std::uint64_t tag);

    TagCompressorConfig cfg_;
    std::vector<Slot> slots_;   ///< id -> tag
    std::vector<MapSlot> map_;  ///< tag -> id
    std::size_t map_mask_ = 0;
    std::uint64_t clock_ = 0;
    std::uint64_t recycles_ = 0;
};

} // namespace triage::core

#endif // TRIAGE_CORE_TAG_COMPRESSOR_HPP
