/**
 * @file
 * Triage's on-chip metadata store (paper Sections 3.1-3.2).
 *
 * The store models the LLC-resident table: 4-byte entries, 16 tagged
 * entries per 64-byte LLC line, indexed by trigger address. Each entry
 * records the compressed tag of the trigger and the compressed tag +
 * set id of its PC-localized successor, plus a 1-bit confidence
 * counter. Anything that does not fit is simply discarded — there is
 * no off-chip backing store.
 */
#ifndef TRIAGE_CORE_METADATA_STORE_HPP
#define TRIAGE_CORE_METADATA_STORE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "triage/meta_repl.hpp"
#include "triage/tag_compressor.hpp"

namespace triage::obs {
class EventTrace;
} // namespace triage::obs

namespace triage::core {

/** Store construction parameters. */
struct MetadataStoreConfig {
    std::uint64_t capacity_bytes = 1024 * 1024;
    std::uint32_t entry_bytes = 4;
    /** Entries per LLC line (the store's associativity). */
    std::uint32_t line_entries = 16;
    MetaReplKind repl = MetaReplKind::Hawkeye;
    /** Model the compressed-tag table (false stores full addresses). */
    bool compressed_tags = true;
    /**
     * Confidence of a freshly inserted correlation. Starting
     * unconfident means a pair must be observed twice before it
     * prefetches, which mutes the one-shot pairs that churn through
     * workloads without stable successors (cf. ISB's counters).
     */
    bool insert_confident = false;
};

/** Running counters. */
struct MetadataStoreStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t updates = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t confidence_flips = 0; ///< successor replaced
    std::uint64_t tag_alias_drops = 0;  ///< lookup invalidated by recycle
};

/** Result of a lookup. */
struct MetaLookup {
    bool hit = false;
    /** Confidence bit is set (prediction trustworthy). */
    bool confident = false;
    sim::Addr next = 0;  ///< reconstructed successor block
    std::uint32_t set = 0;
    std::uint32_t way = 0;
};

/**
 * Set-associative table of (trigger -> successor) correlations.
 *
 * Lookup and replacement-training are split so the caller can apply
 * Triage's filtered-training rule: probe() finds the entry, and
 * commit_access() later tells the policy whether the resulting
 * prefetch made the access "visible".
 */
class MetadataStore
{
  public:
    explicit MetadataStore(MetadataStoreConfig cfg = {});

    /** Probe for @p trigger. No replacement-policy side effects. */
    MetaLookup probe(sim::Addr trigger);

    /**
     * Request the cache lines a probe()/update() of @p trigger will
     * touch (key row + compressor slot) ahead of time. Pure latency
     * hint; no architectural effect.
     */
    void prefetch_hint(sim::Addr trigger) const;

    /**
     * Report the outcome of a probe: @p visible is false when the
     * prefetch produced was redundant (invisible to Hawkeye training).
     */
    void commit_access(sim::Addr trigger, const MetaLookup& lk, sim::Pc pc,
                       bool visible);

    /**
     * Learn the correlation (trigger -> next) with 1-bit confidence:
     * matching updates re-arm confidence, one mismatch lowers it, a
     * second mismatch replaces the successor.
     */
    void update(sim::Addr trigger, sim::Addr next, sim::Pc pc);

    /**
     * Resize to @p bytes, rehashing surviving entries into the new
     * geometry and discarding overflow (repartition semantics).
     */
    void resize(std::uint64_t bytes);

    std::uint64_t capacity_bytes() const { return capacity_bytes_; }
    std::uint64_t capacity_entries() const;
    /** Number of live correlations, O(1) (counter-maintained). */
    std::uint64_t valid_entries() const { return live_entries_; }
    /** Full table scan, O(capacity); tests cross-check the live-entry
     *  counter against it. */
    std::uint64_t count_valid_entries_slow() const;
    const MetadataStoreStats& stats() const { return stats_; }
    /** Replacement-training counters; owned here so they survive the
     *  policy rebuild a resize() performs. */
    const MetaReplStats& repl_stats() const { return repl_stats_; }
    const TagCompressor& compressor() const { return compressor_; }
    MetaRepl* repl() { return repl_.get(); }

    /** Attach (or detach, with null) the event trace. */
    void set_trace(obs::EventTrace* trace) { trace_ = trace; }

    /**
     * Internal-consistency sweep for the verify harness: live-entry
     * counter vs a slow scan, live entries within capacity, and every
     * search key mirroring its entry (valid ways match key_of_entry,
     * invalid ways hold INVALID_KEY). Calls @p report per violation.
     */
    void self_check(
        const std::function<void(const std::string&)>& report) const;

    /**
     * Save/restore the full store: current capacity (restore rebuilds
     * the geometry and policy through build() before loading into
     * them), entries, search keys, replacement + compressor state and
     * both counter blocks.
     */
    void
    checkpoint(sim::Snapshot& s)
    {
        s.section("triage.store");
        std::uint64_t cap = capacity_bytes_;
        s.io(cap);
        if (s.loading() && cap != capacity_bytes_)
            build(cap);
        s.io_vec(entries_, [](sim::Snapshot& a, Entry& e) {
            a.io(e.trigger_ctag);
            a.io(e.next_ctag);
            a.io(e.next_set);
            a.io(e.confident);
            a.io(e.valid);
            a.io(e.full_trigger);
            a.io(e.full_next);
        });
        s.io_pod_vec(keys_);
        s.io(live_entries_);
        if (repl_ != nullptr)
            repl_->checkpoint(s);
        compressor_.checkpoint(s);
        s.io_pod(stats_);
        s.io_pod(repl_stats_);
    }

  private:
    struct Entry {
        std::uint16_t trigger_ctag = 0;
        std::uint16_t next_ctag = 0;
        std::uint32_t next_set = 0;
        bool confident = false;
        bool valid = false;
        // Uncompressed mirrors (used when compressed_tags is off, and
        // for rehash-on-resize).
        sim::Addr full_trigger = 0;
        sim::Addr full_next = 0;
    };

    /**
     * Per-way search key mirrored from the entry, scanned by the hot
     * lookup loop instead of the 32-byte Entry structs
     * (docs/performance.md). Compressed mode packs
     * (trigger set id << 16) | trigger_ctag; uncompressed mode stores
     * the full trigger. INVALID_KEY marks an empty way (block
     * addresses and packed ctag keys never reach all-ones).
     */
    static constexpr std::uint64_t INVALID_KEY = ~std::uint64_t{0};
    /** find_way() result meaning "no matching way". */
    static constexpr std::uint32_t NO_WAY = ~std::uint32_t{0};

    std::uint32_t set_of(sim::Addr trigger) const;
    /** Scan the set at @p base for @p key; first match wins. */
    std::uint32_t find_way(std::size_t base, std::uint64_t key) const;
    /** Recompute an entry's search key (rehash-on-resize). */
    std::uint64_t key_of_entry(const Entry& e) const;
    void build(std::uint64_t bytes);

    MetadataStoreConfig cfg_;
    std::uint64_t capacity_bytes_;
    std::uint32_t sets_ = 0;
    std::vector<Entry> entries_;
    std::vector<std::uint64_t> keys_; ///< parallel to entries_
    std::uint64_t live_entries_ = 0;
    std::unique_ptr<MetaRepl> repl_;
    TagCompressor compressor_;
    MetadataStoreStats stats_;
    MetaReplStats repl_stats_;
    obs::EventTrace* trace_ = nullptr;
};

} // namespace triage::core

#endif // TRIAGE_CORE_METADATA_STORE_HPP
