#include "triage/partition.hpp"

#include <algorithm>

#include "obs/event_trace.hpp"
#include "obs/lifecycle.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::core {

PartitionController::PartitionController(PartitionConfig cfg)
    : cfg_(std::move(cfg)),
      last_rates_(cfg_.sizes.size(), 0.0),
      level_(std::min<std::uint32_t>(
          cfg_.initial_level,
          static_cast<std::uint32_t>(cfg_.sizes.size())))
{
    TRIAGE_ASSERT(!cfg_.sizes.empty());
    TRIAGE_ASSERT(std::is_sorted(cfg_.sizes.begin(), cfg_.sizes.end()));
    for (std::uint64_t bytes : cfg_.sizes) {
        // Sampled capacity: a 1-in-2^k access sample behaves like a
        // 1-in-2^k capacity cache for OPT (same stack distances in the
        // sampled stream), which is what keeps each sandbox ~1 KB.
        std::uint64_t entries = bytes / cfg_.entry_bytes;
        auto cap = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(entries >> cfg_.sample_shift, 16));
        sandboxes_.emplace_back(cap, cfg_.history_factor);
    }
}

bool
PartitionController::observe(sim::Addr trigger, bool visible)
{
    ++accesses_;
    if (visible &&
        (util::mix64(trigger ^ 0xabcdefULL) &
         ((1ULL << cfg_.sample_shift) - 1)) == 0) {
        ++sampled_;
        for (auto& sb : sandboxes_)
            sb.access(trigger);
    }
    if (accesses_ >= cfg_.epoch_accesses) {
        end_epoch();
        return true;
    }
    return false;
}

void
PartitionController::record_sample(std::uint32_t verdict,
                                   obs::PartitionEvent event)
{
    if (timeline_ == nullptr)
        return;
    obs::PartitionSample s;
    s.core = core_;
    s.epoch = epochs_;
    s.level = level_;
    s.verdict = verdict;
    s.size_bytes = size_bytes();
    s.event = event;
    s.hit_rates = last_rates_;
    timeline_->record(std::move(s));
}

void
PartitionController::end_epoch()
{
    accesses_ = 0;
    ++epochs_;
    ++dstats_.epochs;
    for (std::size_t i = 0; i < sandboxes_.size(); ++i)
        last_rates_[i] = sandboxes_[i].hit_rate();
    for (auto& sb : sandboxes_)
        sb.clear_counters();
    if (trace_ != nullptr)
        trace_->emit(obs::EventKind::PartitionEpoch, level_, size_bytes());

    ++epochs_at_level_;
    if (cooldown_ > 0)
        --cooldown_;
    // Per-epoch utility; judged only after the store has been resident
    // long enough to warm (otherwise cold epochs dilute the verdict).
    double issued_fraction =
        static_cast<double>(issued_) /
        static_cast<double>(cfg_.epoch_accesses);
    double accuracy = issued_ == 0
                          ? 1.0
                          : static_cast<double>(useful_) /
                                static_cast<double>(issued_);
    issued_ = 0;
    useful_ = 0;

    // A cold OPTgen reports near-zero hit rates regardless of the
    // workload; hold the initial allocation until history accumulates.
    if (sampled_ < cfg_.warmup_samples) {
        ++dstats_.warmup_epochs;
        record_sample(level_, obs::PartitionEvent::Warmup);
        return;
    }

    std::uint32_t level_before = level_;
    // Hit rate of the "no store" configuration is zero by definition.
    auto rate_at = [&](std::uint32_t level) {
        return level == 0 ? 0.0 : last_rates_[level - 1];
    };
    std::uint32_t max_level =
        static_cast<std::uint32_t>(cfg_.sizes.size());

    // Grow while the next size up is worth more than the hysteresis...
    std::uint32_t verdict = level_;
    while (verdict < max_level &&
           rate_at(verdict + 1) - rate_at(verdict) > cfg_.hysteresis) {
        ++verdict;
    }
    // ...then shrink while the next size down costs less than it.
    while (verdict > 0 &&
           rate_at(verdict) - rate_at(verdict - 1) < cfg_.hysteresis) {
        --verdict;
    }
    if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::OptgenVerdict, verdict,
                     static_cast<std::uint64_t>(rate_at(verdict) * 1e6));
    }
    // The raw sandbox verdict, before the gate or cooldown clamp it;
    // this is what the timeline reports so suppression is visible.
    std::uint32_t raw_verdict = verdict;
    bool gate_fired = false;
    // Utility gate (paper Section 4.2's "future work": account for
    // cache utility, not just metadata hit rate). A store that has
    // been resident long enough to warm and either (a) prefetches
    // actively but is rarely consumed, or (b) barely prefetches at
    // all, does not pay for its LLC ways. Step one rung down and
    // block regrowth for a cool-down (otherwise the hit-rate rule
    // rebuilds the same useless store immediately).
    if (cfg_.gate_min_accuracy > 0 && level_ > 0 &&
        epochs_at_level_ >= cfg_.gate_min_epochs) {
        bool inaccurate = issued_fraction >=
                              cfg_.gate_min_issued_fraction &&
                          accuracy < cfg_.gate_min_accuracy;
        bool quiet = issued_fraction < cfg_.gate_min_issued_fraction;
        if (inaccurate || quiet) {
            verdict = std::min(verdict, level_ - 1);
            cooldown_ = cfg_.gate_cooldown_epochs;
            gate_fired = true;
            ++dstats_.gate_fires;
        }
    }
    bool cooled = false;
    if (cooldown_ > 0 && verdict > level_) {
        verdict = level_; // growth suppressed while cooling down
        cooled = true;
    }

    if (verdict == level_) {
        pending_count_ = 0;
        if (cooled) {
            ++dstats_.cooldown_suppressed;
            record_sample(raw_verdict, obs::PartitionEvent::Cooldown);
        } else {
            ++dstats_.holds;
            record_sample(raw_verdict, obs::PartitionEvent::Hold);
        }
        return;
    }
    // Apply a change only after confirm_epochs consecutive agreeing
    // verdicts (partition stability, Section 4.6).
    if (pending_count_ > 0 && pending_level_ == verdict) {
        if (++pending_count_ >= cfg_.confirm_epochs) {
            level_ = verdict;
            pending_count_ = 0;
        }
    } else {
        pending_level_ = verdict;
        pending_count_ = 1;
        if (cfg_.confirm_epochs <= 1) {
            level_ = verdict;
            pending_count_ = 0;
        }
    }
    if (level_ != level_before) {
        if (trace_ != nullptr)
            trace_->emit(obs::EventKind::PartitionDecision, level_,
                         level_before);
        TRIAGE_LOG_INFO("partition: level ", level_before, " -> ", level_,
                        " (", size_bytes() >> 10, " KB)");
        epochs_at_level_ = 0;
        issued_ = 0;
        useful_ = 0;
        ++dstats_.changes;
        record_sample(raw_verdict, obs::PartitionEvent::Changed);
    } else {
        ++dstats_.pending;
        record_sample(raw_verdict, gate_fired
                                       ? obs::PartitionEvent::Gated
                                       : obs::PartitionEvent::Pending);
    }
}

} // namespace triage::core
