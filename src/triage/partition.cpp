#include "triage/partition.hpp"

#include <algorithm>

#include "obs/event_trace.hpp"
#include "obs/lifecycle.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::core {

PartitionController::PartitionController(PartitionConfig cfg)
    : cfg_(std::move(cfg)),
      last_rates_(cfg_.sizes.size(), 0.0),
      level_(std::min<std::uint32_t>(
          cfg_.initial_level,
          static_cast<std::uint32_t>(cfg_.sizes.size())))
{
    TRIAGE_ASSERT(!cfg_.sizes.empty());
    TRIAGE_ASSERT(std::is_sorted(cfg_.sizes.begin(), cfg_.sizes.end()));
    for (std::uint64_t bytes : cfg_.sizes) {
        // Sampled capacity: a 1-in-2^k access sample behaves like a
        // 1-in-2^k capacity cache for OPT (same stack distances in the
        // sampled stream), which is what keeps each sandbox ~1 KB.
        std::uint64_t entries = bytes / cfg_.entry_bytes;
        auto cap = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(entries >> cfg_.sample_shift, 16));
        sandboxes_.emplace_back(cap, cfg_.history_factor);
    }
}

bool
PartitionController::observe(sim::Addr trigger, bool visible)
{
    ++accesses_;
    if (visible &&
        (util::mix64(trigger ^ 0xabcdefULL) &
         ((1ULL << cfg_.sample_shift) - 1)) == 0) {
        ++sampled_;
        for (auto& sb : sandboxes_)
            sb.access(trigger);
    }
    if (accesses_ >= cfg_.epoch_accesses) {
        end_epoch();
        return true;
    }
    return false;
}

void
PartitionController::record_sample(std::uint32_t verdict,
                                   obs::PartitionEvent event)
{
    if (timeline_ == nullptr)
        return;
    obs::PartitionSample s;
    s.core = core_;
    s.epoch = epochs_;
    s.level = level_;
    s.verdict = verdict;
    s.size_bytes = size_bytes();
    s.event = event;
    s.hit_rates = last_rates_;
    timeline_->record(std::move(s));
}

void
PartitionController::end_epoch()
{
    accesses_ = 0;
    for (std::size_t i = 0; i < sandboxes_.size(); ++i)
        last_rates_[i] = sandboxes_[i].hit_rate();
    for (auto& sb : sandboxes_)
        sb.clear_counters();
    decide_epoch();
}

void
PartitionController::force_epoch(const std::vector<double>& rates,
                                 std::uint64_t issued,
                                 std::uint64_t useful)
{
    TRIAGE_ASSERT(rates.size() == cfg_.sizes.size(),
                  "force_epoch needs one rate per candidate size");
    last_rates_ = rates;
    sampled_ = std::max(sampled_, cfg_.warmup_samples);
    issued_ = issued;
    useful_ = useful;
    decide_epoch();
}

void
PartitionController::decide_epoch()
{
    ++epochs_;
    ++dstats_.epochs;
    if (trace_ != nullptr)
        trace_->emit(obs::EventKind::PartitionEpoch, level_, size_bytes());

    ++epochs_at_level_;
    if (cooldown_ > 0)
        --cooldown_;
    // Per-epoch utility; judged only after the store has been resident
    // long enough to warm (otherwise cold epochs dilute the verdict).
    double issued_fraction =
        static_cast<double>(issued_) /
        static_cast<double>(cfg_.epoch_accesses);
    double accuracy = issued_ == 0
                          ? 1.0
                          : static_cast<double>(useful_) /
                                static_cast<double>(issued_);
    issued_ = 0;
    useful_ = 0;

    // A cold OPTgen reports near-zero hit rates regardless of the
    // workload; hold the initial allocation until history accumulates.
    if (sampled_ < cfg_.warmup_samples) {
        ++dstats_.warmup_epochs;
        record_sample(level_, obs::PartitionEvent::Warmup);
        return;
    }

    std::uint32_t level_before = level_;
    // Hit rate of the "no store" configuration is zero by definition.
    auto rate_at = [&](std::uint32_t level) {
        return level == 0 ? 0.0 : last_rates_[level - 1];
    };
    std::uint32_t max_level =
        static_cast<std::uint32_t>(cfg_.sizes.size());

    // Grow while the next size up is worth more than the hysteresis...
    std::uint32_t verdict = level_;
    while (verdict < max_level &&
           rate_at(verdict + 1) - rate_at(verdict) > cfg_.hysteresis) {
        ++verdict;
    }
    // ...then shrink while the next size down costs less than it.
    while (verdict > 0 &&
           rate_at(verdict) - rate_at(verdict - 1) < cfg_.hysteresis) {
        --verdict;
    }
    if (trace_ != nullptr) {
        trace_->emit(obs::EventKind::OptgenVerdict, verdict,
                     static_cast<std::uint64_t>(rate_at(verdict) * 1e6));
    }
    // The raw sandbox verdict, before the gate or cooldown clamp it;
    // this is what the timeline reports so suppression is visible.
    std::uint32_t raw_verdict = verdict;
    bool gate_fired = false;
    // Utility gate (paper Section 4.2's "future work": account for
    // cache utility, not just metadata hit rate). A store that has
    // been resident long enough to warm and either (a) prefetches
    // actively but is rarely consumed, or (b) barely prefetches at
    // all, does not pay for its LLC ways. Step one rung down and
    // block regrowth for a cool-down (otherwise the hit-rate rule
    // rebuilds the same useless store immediately).
    if (cfg_.gate_min_accuracy > 0 && level_ > 0 &&
        epochs_at_level_ >= cfg_.gate_min_epochs) {
        bool inaccurate = issued_fraction >=
                              cfg_.gate_min_issued_fraction &&
                          accuracy < cfg_.gate_min_accuracy;
        bool quiet = issued_fraction < cfg_.gate_min_issued_fraction;
        if (inaccurate || quiet) {
            verdict = std::min(verdict, level_ - 1);
            cooldown_ = cfg_.gate_cooldown_epochs;
            gate_fired = true;
            ++dstats_.gate_fires;
        }
    }
    bool cooled = false;
    if (cooldown_ > 0 && verdict > level_) {
        verdict = level_; // growth suppressed while cooling down
        cooled = true;
    }

    if (verdict == level_) {
        pending_count_ = 0;
        if (cooled) {
            ++dstats_.cooldown_suppressed;
            record_sample(raw_verdict, obs::PartitionEvent::Cooldown);
        } else {
            ++dstats_.holds;
            record_sample(raw_verdict, obs::PartitionEvent::Hold);
        }
        return;
    }
    // Apply a change only after confirm_epochs consecutive agreeing
    // verdicts (partition stability, Section 4.6).
    if (pending_count_ > 0 && pending_level_ == verdict) {
        if (++pending_count_ >= cfg_.confirm_epochs) {
            level_ = verdict;
            pending_count_ = 0;
        }
    } else {
        pending_level_ = verdict;
        pending_count_ = 1;
        if (cfg_.confirm_epochs <= 1) {
            level_ = verdict;
            pending_count_ = 0;
        }
    }
    if (level_ != level_before) {
        if (trace_ != nullptr)
            trace_->emit(obs::EventKind::PartitionDecision, level_,
                         level_before);
        TRIAGE_LOG_INFO("partition: level ", level_before, " -> ", level_,
                        " (", size_bytes() >> 10, " KB)");
        // issued_/useful_ are per-epoch counters, already zeroed above
        // where the gate consumed them; only the residency clock resets
        // on a level change.
        epochs_at_level_ = 0;
        ++dstats_.changes;
        record_sample(raw_verdict, obs::PartitionEvent::Changed);
    } else {
        ++dstats_.pending;
        record_sample(raw_verdict, gate_fired
                                       ? obs::PartitionEvent::Gated
                                       : obs::PartitionEvent::Pending);
    }
}

void
PartitionController::self_check(
    const std::function<void(const std::string&)>& report) const
{
    const auto max_level = static_cast<std::uint32_t>(cfg_.sizes.size());
    if (level_ > max_level) {
        report("partition level " + std::to_string(level_) +
               " above ladder top " + std::to_string(max_level));
    }
    if (accesses_ >= cfg_.epoch_accesses) {
        report("partition epoch accumulator " +
               std::to_string(accesses_) + " >= epoch length " +
               std::to_string(cfg_.epoch_accesses));
    }
    // decide_epoch() resets the confirmation counter the moment it
    // reaches confirm_epochs, so a resting value at or above it means
    // a level change was skipped.
    const std::uint32_t confirm =
        std::max<std::uint32_t>(cfg_.confirm_epochs, 1);
    if (pending_count_ >= confirm) {
        report("partition pending_count " +
               std::to_string(pending_count_) +
               " not consumed at confirm_epochs " +
               std::to_string(cfg_.confirm_epochs));
    }
    if (pending_count_ > 0 &&
        (pending_level_ > max_level || pending_level_ == level_)) {
        report("partition pending_level " +
               std::to_string(pending_level_) +
               " invalid while pending at level " +
               std::to_string(level_));
    }
    if (cooldown_ > cfg_.gate_cooldown_epochs) {
        report("partition cooldown " + std::to_string(cooldown_) +
               " above configured window " +
               std::to_string(cfg_.gate_cooldown_epochs));
    }
    if (dstats_.epochs != epochs_) {
        report("partition decision-stat epochs " +
               std::to_string(dstats_.epochs) +
               " != controller epochs " + std::to_string(epochs_));
    }
    const std::uint64_t outcome_sum =
        dstats_.warmup_epochs + dstats_.holds + dstats_.pending +
        dstats_.changes + dstats_.cooldown_suppressed;
    if (outcome_sum != dstats_.epochs) {
        report("partition outcome counters sum to " +
               std::to_string(outcome_sum) + " but epochs is " +
               std::to_string(dstats_.epochs));
    }
    if (last_rates_.size() != cfg_.sizes.size()) {
        report("partition hit-rate vector has " +
               std::to_string(last_rates_.size()) + " entries for " +
               std::to_string(cfg_.sizes.size()) + " candidate sizes");
    }
    for (std::size_t i = 0; i < last_rates_.size(); ++i) {
        if (!(last_rates_[i] >= 0.0 && last_rates_[i] <= 1.0)) {
            report("partition sandbox " + std::to_string(i) +
                   " hit rate " + std::to_string(last_rates_[i]) +
                   " outside [0, 1]");
        }
    }
    for (std::size_t i = 0; i < sandboxes_.size(); ++i) {
        const replacement::OptGen& sb = sandboxes_[i];
        if (sb.hits() > sb.accesses()) {
            report("partition sandbox " + std::to_string(i) + " hits " +
                   std::to_string(sb.hits()) + " exceed accesses " +
                   std::to_string(sb.accesses()));
        }
        if (sb.occupancy_peak() > sb.capacity()) {
            report("partition sandbox " + std::to_string(i) +
                   " OPTgen occupancy peak " +
                   std::to_string(sb.occupancy_peak()) +
                   " above capacity " + std::to_string(sb.capacity()));
        }
    }
}

} // namespace triage::core
