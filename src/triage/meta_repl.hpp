/**
 * @file
 * Replacement policies for Triage's metadata store.
 *
 * The store needs its own policy interface (rather than the data-cache
 * one) because Triage's Hawkeye variant trains on a *filtered* access
 * stream: a metadata access only becomes visible to OPTgen and the PC
 * predictor if the prefetch it produced was issued to memory; accesses
 * whose prefetch was redundant are invisible (paper Section 3,
 * "Metadata Replacement"). Per-entry RRIP state is still updated on
 * every access.
 */
#ifndef TRIAGE_CORE_META_REPL_HPP
#define TRIAGE_CORE_META_REPL_HPP

#include <cstdint>
#include <memory>
#include "util/flat_map.hpp"
#include <vector>

#include "replacement/hawkeye.hpp"
#include "replacement/optgen.hpp"
#include "sim/types.hpp"

namespace triage::core {

/** Which replacement policy manages the metadata store. */
enum class MetaReplKind : std::uint8_t {
    Lru,
    Hawkeye,
};

/**
 * Counters for the filtered-training replacement stream. Owned by the
 * MetadataStore (NOT by the policy object — resize() rebuilds the
 * policy, and these must survive that) and bound into each policy
 * instance; every increment is null-guarded.
 */
struct MetaReplStats {
    std::uint64_t visible_events = 0; ///< accesses that trained OPTgen
    std::uint64_t hidden_events = 0;  ///< filtered out (redundant pf)
    std::uint64_t optgen_hits = 0;    ///< sampled accesses OPT would hit
    std::uint64_t optgen_misses = 0;
    std::uint64_t friendly_inserts = 0; ///< predictor said cache-friendly
    std::uint64_t averse_inserts = 0;   ///< inserted at distant RRPV
    std::uint64_t victim_demotions = 0; ///< victim without a distant entry
};

/** Replacement policy over a sets x ways metadata store. */
class MetaRepl
{
  public:
    virtual ~MetaRepl() = default;

    /**
     * A resident entry was accessed.
     * @p visible gates OPTgen / predictor training (false for accesses
     * that produced a redundant prefetch); per-entry state always
     * updates.
     */
    virtual void on_hit(std::uint32_t set, std::uint32_t way,
                        std::uint64_t key, sim::Pc pc, bool visible) = 0;

    /** An access found no entry (trains history-based policies). */
    virtual void on_miss(std::uint32_t set, std::uint64_t key, sim::Pc pc,
                         bool visible) = 0;

    /** A new entry was installed at @p way. */
    virtual void on_insert(std::uint32_t set, std::uint32_t way,
                           std::uint64_t key, sim::Pc pc) = 0;

    virtual void on_invalidate(std::uint32_t set, std::uint32_t way) = 0;

    /** Choose a victim among [0, ways). */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    virtual const char* name() const = 0;

    /**
     * Wall-clock-only hint: pull the policy's per-set rows toward the
     * host cache ahead of an access to @p set (the metadata-store
     * prefetch hint fans out here). No simulated effect.
     */
    virtual void prefetch_hint(std::uint32_t set) const { (void)set; }

    /**
     * Save/restore the policy's mutable state (stamps / RRIP +
     * predictor + samplers). The bound MetaReplStats block is owned and
     * serialized by the MetadataStore, not here.
     */
    virtual void checkpoint(sim::Snapshot& s) = 0;

    /** Attach (or detach, with null) externally-owned counters. */
    void bind_stats(MetaReplStats* stats) { stats_ = stats; }

  protected:
    MetaReplStats* stats_ = nullptr;
};

/** LRU metadata replacement (the Figure 9 baseline). */
class MetaLru final : public MetaRepl
{
  public:
    MetaLru(std::uint32_t sets, std::uint32_t ways);

    void on_hit(std::uint32_t set, std::uint32_t way, std::uint64_t key,
                sim::Pc pc, bool visible) override;
    void on_miss(std::uint32_t set, std::uint64_t key, sim::Pc pc,
                 bool visible) override;
    void on_insert(std::uint32_t set, std::uint32_t way, std::uint64_t key,
                   sim::Pc pc) override;
    void on_invalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;
    const char* name() const override { return "lru"; }

    void
    prefetch_hint(std::uint32_t set) const override
    {
        __builtin_prefetch(stamps_.data() + std::size_t{set} * ways_, 1);
    }

    void
    checkpoint(sim::Snapshot& s) override
    {
        s.section("meta_repl.lru");
        s.io(clock_);
        s.io_pod_vec(stamps_);
    }

  private:
    std::uint32_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_;
};

/** Triage's filtered-training Hawkeye for metadata. */
class MetaHawkeye final : public MetaRepl
{
  public:
    /**
     * @param sampled_sets how many sets feed OPTgen.
     * @param history_factor OPTgen window as a multiple of ways.
     */
    MetaHawkeye(std::uint32_t sets, std::uint32_t ways,
                std::uint32_t sampled_sets = 64,
                std::uint32_t history_factor = 8);

    void on_hit(std::uint32_t set, std::uint32_t way, std::uint64_t key,
                sim::Pc pc, bool visible) override;
    void on_miss(std::uint32_t set, std::uint64_t key, sim::Pc pc,
                 bool visible) override;
    void on_insert(std::uint32_t set, std::uint32_t way, std::uint64_t key,
                   sim::Pc pc) override;
    void on_invalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;
    const char* name() const override { return "hawkeye"; }

    void
    prefetch_hint(std::uint32_t set) const override
    {
        // Every on_hit/on_miss/on_insert reads this set's RRPV row and
        // most write the PC row; both live in megabyte-scale arrays
        // indexed by a hashed set, so they are rarely host-resident.
        __builtin_prefetch(rrpv_.data() + std::size_t{set} * ways_, 1);
        __builtin_prefetch(pcs_.data() + std::size_t{set} * ways_, 1);
    }

    const replacement::HawkeyePredictor& predictor() const
    {
        return predictor_;
    }

    void
    checkpoint(sim::Snapshot& s) override
    {
        s.section("meta_repl.hawkeye");
        predictor_.checkpoint(s);
        for (auto& sampled : samplers_) {
            sampled.optgen.checkpoint(s);
            s.io_flat_map(sampled.last_pc);
        }
        s.io_pod_vec(rrpv_);
        s.io_pod_vec(pcs_);
    }

  private:
    static constexpr std::uint8_t MAX_RRPV = 7;

    struct SampledSet {
        replacement::OptGen optgen;
        util::FlatMap<std::uint64_t, sim::Pc> last_pc;

        SampledSet(std::uint32_t ways, std::uint32_t factor)
            : optgen(ways, factor)
        {}
    };

    bool is_sampled(std::uint32_t set) const;
    void sample(std::uint32_t set, std::uint64_t key, sim::Pc pc);
    std::uint8_t& rrpv(std::uint32_t set, std::uint32_t way);
    sim::Pc& entry_pc(std::uint32_t set, std::uint32_t way);

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint32_t sample_shift_;
    std::uint32_t sample_mask_;
    std::uint32_t history_factor_;
    replacement::HawkeyePredictor predictor_;
    std::vector<SampledSet> samplers_;
    std::vector<std::uint8_t> rrpv_;
    std::vector<sim::Pc> pcs_;
};

/** Factory. */
std::unique_ptr<MetaRepl> make_meta_repl(MetaReplKind kind,
                                         std::uint32_t sets,
                                         std::uint32_t ways);

} // namespace triage::core

#endif // TRIAGE_CORE_META_REPL_HPP
