#include "triage/metadata_store.hpp"

#include "obs/event_trace.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"
#include "util/mem.hpp"
#include "util/simd_probe.hpp"

namespace triage::core {

MetadataStore::MetadataStore(MetadataStoreConfig cfg)
    : cfg_(cfg), capacity_bytes_(0)
{
    TRIAGE_ASSERT(cfg_.line_entries > 0);
    TRIAGE_ASSERT(cfg_.entry_bytes > 0);
    build(cfg.capacity_bytes);
}

void
MetadataStore::build(std::uint64_t bytes)
{
    capacity_bytes_ = bytes;
    std::uint64_t n_entries = bytes / cfg_.entry_bytes;
    std::uint64_t n_sets = n_entries / cfg_.line_entries;
    live_entries_ = 0;
    if (n_sets == 0) {
        sets_ = 0;
        entries_.clear();
        keys_.clear();
        repl_.reset();
        return;
    }
    // Round down to a power of two for cheap indexing.
    sets_ = static_cast<std::uint32_t>(util::floor_pow2(n_sets));
    entries_.assign(static_cast<std::size_t>(sets_) * cfg_.line_entries,
                    Entry{});
    keys_.assign(static_cast<std::size_t>(sets_) * cfg_.line_entries,
                 INVALID_KEY);
    // Hashed-set indexing makes every probe a random row; huge pages
    // keep those from each costing a dTLB walk (util/mem.hpp).
    util::hint_hugepages(entries_);
    util::hint_hugepages(keys_);
    repl_ = make_meta_repl(cfg_.repl, sets_, cfg_.line_entries);
    // Counters live in the store so the policy rebuild keeps them.
    repl_->bind_stats(&repl_stats_);
}

std::uint32_t
MetadataStore::set_of(sim::Addr trigger) const
{
    return static_cast<std::uint32_t>(util::mix64(trigger)) & (sets_ - 1);
}

std::uint32_t
MetadataStore::find_way(std::size_t base, std::uint64_t key) const
{
    // SIMD probe over the packed key row (NPOS and NO_WAY are both
    // all-ones), matching the cache tag scan (docs/performance.md).
    return util::simd::find_first_eq(keys_.data() + base,
                                     cfg_.line_entries, key);
}

std::uint64_t
MetadataStore::key_of_entry(const Entry& e) const
{
    if (cfg_.compressed_tags) {
        return (std::uint64_t{compressor_.set_of(e.full_trigger)} << 16) |
               e.trigger_ctag;
    }
    return e.full_trigger;
}

void
MetadataStore::prefetch_hint(sim::Addr trigger) const
{
    if (sets_ == 0)
        return;
    const std::uint32_t set = set_of(trigger);
    const std::size_t base =
        static_cast<std::size_t>(set) * cfg_.line_entries;
    const std::uint64_t* row = keys_.data() + base;
    __builtin_prefetch(row);
    if (cfg_.line_entries > 8) // a 16-entry key row spans two 64 B lines
        __builtin_prefetch(row + 8);
    // A probe hit or update dereferences the matching Entry; the way is
    // unknown until the key scan, so pull the front of the entry row
    // (32-byte entries: the first two lines cover ways 0-3).
    const Entry* erow = entries_.data() + base;
    __builtin_prefetch(erow, 1);
    __builtin_prefetch(reinterpret_cast<const char*>(erow) + 64, 1);
    if (repl_ != nullptr)
        repl_->prefetch_hint(set);
    if (cfg_.compressed_tags)
        compressor_.prefetch_hint(compressor_.tag_of(trigger));
}

MetaLookup
MetadataStore::probe(sim::Addr trigger)
{
    ++stats_.lookups;
    MetaLookup lk;
    if (sets_ == 0)
        return lk;
    const std::uint32_t set = set_of(trigger);
    const std::size_t base =
        static_cast<std::size_t>(set) * cfg_.line_entries;
    std::uint64_t key;
    if (cfg_.compressed_tags) {
        // Sub-tag match: compressed tag plus the trigger's set id
        // (implicit in a real set-associative layout, explicit here
        // because we hash rather than slice the index).
        auto id = compressor_.find(compressor_.tag_of(trigger));
        if (!id.has_value())
            return lk;
        key = (std::uint64_t{compressor_.set_of(trigger)} << 16) | *id;
    } else {
        key = trigger;
    }
    const std::uint32_t way = find_way(base, key);
    if (way == NO_WAY)
        return lk;
    const Entry& e = entries_[base + way];
    if (e.full_trigger != trigger)
        ++stats_.tag_alias_drops;
    lk.hit = true;
    lk.confident = e.confident;
    lk.set = set;
    lk.way = way;
    lk.next = cfg_.compressed_tags
                  ? compressor_.combine(compressor_.decompress(e.next_ctag),
                                        e.next_set)
                  : e.full_next;
    ++stats_.hits;
    if (trace_ != nullptr)
        trace_->emit(obs::EventKind::MetaHit, trigger, lk.next);
    return lk;
}

void
MetadataStore::commit_access(sim::Addr trigger, const MetaLookup& lk,
                             sim::Pc pc, bool visible)
{
    if (repl_ == nullptr)
        return;
    if (lk.hit)
        repl_->on_hit(lk.set, lk.way, trigger, pc, visible);
    else
        repl_->on_miss(set_of(trigger), trigger, pc, visible);
}

void
MetadataStore::update(sim::Addr trigger, sim::Addr next, sim::Pc pc)
{
    if (sets_ == 0)
        return;
    ++stats_.updates;
    const std::uint32_t set = set_of(trigger);
    const std::size_t base =
        static_cast<std::size_t>(set) * cfg_.line_entries;
    std::uint64_t trig_tag = 0;
    std::uint32_t way = NO_WAY;
    if (cfg_.compressed_tags) {
        trig_tag = compressor_.tag_of(trigger);
        auto id = compressor_.find(trig_tag);
        if (id.has_value()) {
            way = find_way(base,
                           (std::uint64_t{compressor_.set_of(trigger)}
                            << 16) |
                               *id);
        }
    } else {
        way = find_way(base, trigger);
    }
    if (way != NO_WAY) {
        Entry& e = entries_[base + way];
        if (e.full_trigger != trigger)
            ++stats_.tag_alias_drops;
        if (e.full_next == next) {
            e.confident = true;
        } else if (e.confident) {
            e.confident = false; // first disagreement: keep successor
        } else {
            // Second disagreement: adopt the new successor (it must
            // confirm once more before prefetching when entries start
            // unconfident).
            ++stats_.confidence_flips;
            e.full_next = next;
            if (cfg_.compressed_tags) {
                e.next_ctag =
                    compressor_.compress(compressor_.tag_of(next));
                e.next_set = compressor_.set_of(next);
            }
            e.confident = cfg_.insert_confident;
        }
        // A metadata write refreshes recency but is invisible to the
        // filtered Hawkeye training (only prefetch-producing reads are).
        repl_->on_hit(set, way, trigger, pc, false);
        return;
    }

    // Install a fresh correlation, preferring the first empty way.
    std::uint32_t target = find_way(base, INVALID_KEY);
    if (target == NO_WAY) {
        target = repl_->victim(set);
        TRIAGE_ASSERT(target < cfg_.line_entries);
        repl_->on_invalidate(set, target);
        ++stats_.evictions;
        --live_entries_;
        if (trace_ != nullptr)
            trace_->emit(obs::EventKind::MetaEvict, set, target);
    }
    Entry& n = entries_[base + target];
    n.full_trigger = trigger;
    n.full_next = next;
    n.confident = cfg_.insert_confident;
    n.valid = true;
    if (cfg_.compressed_tags) {
        n.trigger_ctag = compressor_.compress(trig_tag);
        n.next_ctag = compressor_.compress(compressor_.tag_of(next));
        n.next_set = compressor_.set_of(next);
    }
    keys_[base + target] = key_of_entry(n);
    ++live_entries_;
    repl_->on_insert(set, target, trigger, pc);
    ++stats_.inserts;
    if (trace_ != nullptr)
        trace_->emit(obs::EventKind::MetaInsert, trigger, next);
}

void
MetadataStore::resize(std::uint64_t bytes)
{
    if (bytes == capacity_bytes_)
        return;
    if (trace_ != nullptr)
        trace_->emit(obs::EventKind::MetaResize, bytes, capacity_bytes_);
    TRIAGE_LOG_DEBUG("metadata store: resize ", capacity_bytes_ >> 10,
                     " KB -> ", bytes >> 10, " KB (", valid_entries(),
                     " live entries)");
    std::vector<Entry> survivors;
    survivors.reserve(valid_entries());
    for (const auto& e : entries_) {
        if (e.valid)
            survivors.push_back(e);
    }
    build(bytes);
    if (sets_ == 0)
        return;
    // Rehash survivors into the new geometry; overflow is discarded
    // (the paper invalidates repartitioned lines — we are slightly
    // kinder and keep whatever still fits).
    for (const auto& s : survivors) {
        std::uint32_t set = set_of(s.full_trigger);
        const std::size_t base =
            static_cast<std::size_t>(set) * cfg_.line_entries;
        std::uint32_t w = find_way(base, INVALID_KEY);
        if (w == NO_WAY)
            continue;
        entries_[base + w] = s;
        keys_[base + w] = key_of_entry(s);
        ++live_entries_;
        repl_->on_insert(set, w, s.full_trigger, 0);
    }
}

std::uint64_t
MetadataStore::capacity_entries() const
{
    return static_cast<std::uint64_t>(sets_) * cfg_.line_entries;
}

std::uint64_t
MetadataStore::count_valid_entries_slow() const
{
    std::uint64_t n = 0;
    for (const auto& e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

void
MetadataStore::self_check(
    const std::function<void(const std::string&)>& report) const
{
    const std::uint64_t slow = count_valid_entries_slow();
    if (slow != live_entries_) {
        report("metadata store: live-entry counter " +
               std::to_string(live_entries_) + " != table scan " +
               std::to_string(slow));
    }
    if (live_entries_ > capacity_entries()) {
        report("metadata store: " + std::to_string(live_entries_) +
               " live entries exceed capacity " +
               std::to_string(capacity_entries()));
    }
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry& e = entries_[i];
        if (e.valid && keys_[i] != key_of_entry(e)) {
            report("metadata store: slot " + std::to_string(i) +
                   " search key " + std::to_string(keys_[i]) +
                   " does not mirror its entry (expect " +
                   std::to_string(key_of_entry(e)) + ")");
        }
        if (!e.valid && keys_[i] != INVALID_KEY) {
            report("metadata store: slot " + std::to_string(i) +
                   " invalid but search key " +
                   std::to_string(keys_[i]) + " live");
        }
    }
}

} // namespace triage::core
