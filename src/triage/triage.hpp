/**
 * @file
 * The Triage prefetcher — the paper's contribution.
 *
 * Triage is a PC-localized temporal prefetcher whose metadata lives
 * entirely on chip, in a repurposed portion of the LLC:
 *
 *  - a Training Unit pairs each access with the previous access by the
 *    same PC and records the pair in the metadata store;
 *  - the metadata store is a compact table (4 B entries, 16 per LLC
 *    line, compressed tags) managed by a filtered Hawkeye policy that
 *    keeps only entries whose prefetches actually go to memory;
 *  - a dynamic partition controller (two OPTgen sandboxes, 5 % rule,
 *    50 K-access epochs) decides how much LLC each core's metadata
 *    deserves: 0, 512 KB or 1 MB.
 *
 * Degree-k prefetching walks the successor chain with k dependent
 * table lookups, each charged one LLC access of latency and energy.
 */
#ifndef TRIAGE_CORE_TRIAGE_HPP
#define TRIAGE_CORE_TRIAGE_HPP

#include <cstdint>
#include <memory>
#include "util/flat_map.hpp"
#include <vector>

#include "prefetch/prefetcher.hpp"
#include "triage/metadata_store.hpp"
#include "triage/partition.hpp"
#include "triage/training_unit.hpp"

namespace triage::core {

/** Triage configuration. */
struct TriageConfig {
    /** Dynamic partitioning (Triage-Dynamic) vs a fixed store size. */
    bool dynamic = false;
    /** Store size for the static configuration. */
    std::uint64_t static_bytes = 1024 * 1024;
    MetaReplKind repl = MetaReplKind::Hawkeye;
    /**
     * Unlimited metadata ("Perfect" in Figure 9): an idealized
     * PC-localized temporal prefetcher with no capacity or LLC cost.
     */
    bool unlimited = false;
    bool compressed_tags = true;
    /**
     * Charge the LLC capacity (way partitioning) for the store. Figure
     * 9's sensitivity study assumes no capacity loss; everything else
     * keeps this on.
     */
    bool charge_llc_capacity = true;
    std::uint32_t degree = 1;
    std::uint32_t training_unit_entries = 128;
    /** Dynamic-partitioning knobs. */
    PartitionConfig partition{};
    /** Track per-entry reuse counts (Figure 1 instrumentation). */
    bool track_reuse = false;
};

/** The Triage prefetcher. */
class Triage final : public prefetch::Prefetcher
{
  public:
    explicit Triage(TriageConfig cfg = {});

    void train(const prefetch::TrainEvent& ev,
               prefetch::PrefetchHost& host) override;
    /** Start pulling the metadata rows train() will walk (wall-clock
     *  latency only; the store is LLC-sized and rarely cache-hot). */
    void
    pre_train_hint(sim::Addr block) const override
    {
        if (!cfg_.unlimited)
            store_.prefetch_hint(block);
    }
    void on_prefetch_used(sim::Addr block, sim::Cycle now) override;
    const std::string& name() const override { return name_; }

    /** Base prefetcher counters plus store / partition sub-scopes. */
    void register_stats(obs::Registry& reg,
                        const std::string& prefix) const override;
    /** Adds per-epoch metadata hit rate and store-size probes. */
    void register_probes(obs::EpochSampler& sampler,
                         const std::string& prefix) const override;
    void set_trace(obs::EventTrace* trace) override;
    /** Forwarded to the partition controller (dynamic config only). */
    void set_partition_timeline(obs::PartitionTimeline* timeline,
                                unsigned core) override;

    const MetadataStore& store() const { return store_; }
    const PartitionController* partition() const
    {
        return cfg_.dynamic ? &partition_ : nullptr;
    }
    const TrainingUnit& training_unit() const { return tu_; }
    std::uint64_t current_store_bytes() const;

    /** Per-trigger reuse histogram (only with cfg.track_reuse). */
    const util::FlatMap<sim::Addr, std::uint32_t>&
    reuse_counts() const
    {
        return reuse_counts_;
    }

    void
    checkpoint(sim::Snapshot& s) override
    {
        Prefetcher::checkpoint(s);
        s.section("pf.triage");
        tu_.checkpoint(s);
        store_.checkpoint(s);
        partition_.checkpoint(s);
        s.io_flat_map(unlimited_map_);
        s.io_flat_map(reuse_counts_);
        s.io(capacity_requested_);
    }

  private:
    /** One chained metadata lookup; returns successor or nullopt. */
    std::optional<sim::Addr> lookup_next(sim::Addr trigger, unsigned core,
                                         prefetch::PrefetchHost& host);
    void ensure_capacity(const prefetch::TrainEvent& ev,
                         prefetch::PrefetchHost& host);

    TriageConfig cfg_;
    TrainingUnit tu_;
    MetadataStore store_;
    PartitionController partition_;
    /** Unlimited-metadata mode table. */
    util::FlatMap<sim::Addr, sim::Addr> unlimited_map_;
    util::FlatMap<sim::Addr, std::uint32_t> reuse_counts_;
    bool capacity_requested_ = false;
    std::string name_;
};

/** Convenience factories matching the paper's configurations. */
std::unique_ptr<Triage> make_triage_static(std::uint64_t bytes,
                                           std::uint32_t degree = 1);
std::unique_ptr<Triage> make_triage_dynamic(std::uint32_t degree = 1);
std::unique_ptr<Triage> make_triage_unlimited(std::uint32_t degree = 1);

} // namespace triage::core

#endif // TRIAGE_CORE_TRIAGE_HPP
