/**
 * @file
 * Triage's Training Unit: remembers the most recently accessed address
 * for each load PC, producing PC-localized correlated pairs (A, B)
 * (paper Section 3.1, "Training").
 */
#ifndef TRIAGE_CORE_TRAINING_UNIT_HPP
#define TRIAGE_CORE_TRAINING_UNIT_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hpp"

namespace triage::core {

/** Small fully-associative PC -> last-address table with LRU. */
class TrainingUnit
{
  public:
    explicit TrainingUnit(std::uint32_t entries = 128);

    /**
     * Record that @p pc just accessed @p block.
     * @return the previous block accessed by this PC, if tracked — the
     *         "A" of the correlated pair (A, B = block).
     */
    std::optional<sim::Addr> update(sim::Pc pc, sim::Addr block);

    /** Peek without updating (tests). */
    std::optional<sim::Addr> last_of(sim::Pc pc) const;

    std::uint32_t capacity() const { return capacity_; }

  private:
    struct Entry {
        sim::Pc pc = 0;
        sim::Addr last = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint32_t capacity_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
};

} // namespace triage::core

#endif // TRIAGE_CORE_TRAINING_UNIT_HPP
