/**
 * @file
 * Triage's Training Unit: remembers the most recently accessed address
 * for each load PC, producing PC-localized correlated pairs (A, B)
 * (paper Section 3.1, "Training").
 */
#ifndef TRIAGE_CORE_TRAINING_UNIT_HPP
#define TRIAGE_CORE_TRAINING_UNIT_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace triage::core {

/**
 * Small fully-associative PC -> last-address table with LRU.
 *
 * Hot-path layout (docs/performance.md): the per-access match loop
 * scans a packed PC array instead of 32-byte entry structs; last
 * address and LRU stamp live in parallel arrays touched only on a
 * match or an insert. Empty slots occupy the prefix [0, valid_from_)
 * — the table fills from the back, which reproduces the historical
 * victim scan (the last empty slot in scan order won) — so validity
 * needs no per-entry flag.
 */
class TrainingUnit
{
  public:
    explicit TrainingUnit(std::uint32_t entries = 128);

    /**
     * Record that @p pc just accessed @p block.
     * @return the previous block accessed by this PC, if tracked — the
     *         "A" of the correlated pair (A, B = block).
     */
    std::optional<sim::Addr> update(sim::Pc pc, sim::Addr block);

    /** Peek without updating (tests). */
    std::optional<sim::Addr> last_of(sim::Pc pc) const;

    std::uint32_t capacity() const { return capacity_; }

    void
    checkpoint(sim::Snapshot& s)
    {
        s.section("triage.tu");
        s.io(valid_from_);
        s.io_pod_vec(pcs_);
        s.io_pod_vec(last_);
        s.io_pod_vec(lru_);
        s.io(clock_);
    }

  private:
    std::uint32_t capacity_;
    /** First valid slot; slots [valid_from_, capacity_) are live. */
    std::uint32_t valid_from_;
    std::vector<sim::Pc> pcs_;        ///< hot: scanned per access
    std::vector<sim::Addr> last_;     ///< parallel cold state
    std::vector<std::uint64_t> lru_;  ///< parallel LRU stamps
    std::uint64_t clock_ = 0;
};

} // namespace triage::core

#endif // TRIAGE_CORE_TRAINING_UNIT_HPP
