#include "triage/meta_repl.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"
#include "util/mem.hpp"

namespace triage::core {

MetaLru::MetaLru(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways), stamps_(static_cast<std::size_t>(sets) * ways, 0)
{
}

void
MetaLru::on_hit(std::uint32_t set, std::uint32_t way, std::uint64_t,
                sim::Pc, bool visible)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
    if (stats_ != nullptr)
        ++(visible ? stats_->visible_events : stats_->hidden_events);
}

void
MetaLru::on_miss(std::uint32_t, std::uint64_t, sim::Pc, bool visible)
{
    if (stats_ != nullptr)
        ++(visible ? stats_->visible_events : stats_->hidden_events);
}

void
MetaLru::on_insert(std::uint32_t set, std::uint32_t way, std::uint64_t,
                   sim::Pc)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

void
MetaLru::on_invalidate(std::uint32_t set, std::uint32_t way)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

std::uint32_t
MetaLru::victim(std::uint32_t set)
{
    std::uint32_t best = 0;
    std::uint64_t best_stamp =
        stamps_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 1; w < ways_; ++w) {
        std::uint64_t s = stamps_[static_cast<std::size_t>(set) * ways_ + w];
        if (s < best_stamp) {
            best_stamp = s;
            best = w;
        }
    }
    return best;
}

MetaHawkeye::MetaHawkeye(std::uint32_t sets, std::uint32_t ways,
                         std::uint32_t sampled_sets,
                         std::uint32_t history_factor)
    : sets_(sets), ways_(ways), history_factor_(history_factor),
      rrpv_(static_cast<std::size_t>(sets) * ways, MAX_RRPV),
      pcs_(static_cast<std::size_t>(sets) * ways, 0)
{
    TRIAGE_ASSERT(util::is_pow2(sets_));
    // floor_pow2, not a decrement loop: with sampled_sets == 0 the old
    // `while (!is_pow2(n)) --n;` underflowed to 0xFFFFFFFF and spun
    // ~2^31 iterations before producing a bogus shift.
    TRIAGE_ASSERT(sampled_sets > 0,
                  "MetaHawkeye needs at least one sampled set");
    auto n = static_cast<std::uint32_t>(
        util::floor_pow2(std::min(sampled_sets, sets_)));
    sample_shift_ = util::log2_exact(sets_ / n);
    sample_mask_ = (1u << sample_shift_) - 1;
    samplers_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        samplers_.emplace_back(ways_, history_factor_);
    // Hashed-set random rows, same story as the store's key/entry
    // arrays (util/mem.hpp; no-op below the 2 MB huge-page threshold).
    util::hint_hugepages(rrpv_);
    util::hint_hugepages(pcs_);
}

bool
MetaHawkeye::is_sampled(std::uint32_t set) const
{
    return (set & sample_mask_) == 0;
}

std::uint8_t&
MetaHawkeye::rrpv(std::uint32_t set, std::uint32_t way)
{
    return rrpv_[static_cast<std::size_t>(set) * ways_ + way];
}

sim::Pc&
MetaHawkeye::entry_pc(std::uint32_t set, std::uint32_t way)
{
    return pcs_[static_cast<std::size_t>(set) * ways_ + way];
}

void
MetaHawkeye::sample(std::uint32_t set, std::uint64_t key, sim::Pc pc)
{
    SampledSet& s = samplers_[set >> sample_shift_];
    bool opt_hit = s.optgen.access(key);
    if (stats_ != nullptr)
        ++(opt_hit ? stats_->optgen_hits : stats_->optgen_misses);
    sim::Pc* it = s.last_pc.find(key);
    if (it != nullptr) {
        if (opt_hit)
            predictor_.train_positive(*it);
        else
            predictor_.train_negative(*it);
        *it = pc;
    } else {
        s.last_pc.ref(key) = pc;
    }
    if (s.last_pc.size() > 16ULL * ways_ * history_factor_)
        s.last_pc.clear();
}

void
MetaHawkeye::on_hit(std::uint32_t set, std::uint32_t way,
                    std::uint64_t key, sim::Pc pc, bool visible)
{
    // Per-entry state always reflects the latest access...
    rrpv(set, way) = predictor_.predict(pc) ? 0 : MAX_RRPV;
    entry_pc(set, way) = pc;
    if (stats_ != nullptr)
        ++(visible ? stats_->visible_events : stats_->hidden_events);
    // ...but OPTgen and the predictor only see useful reuse.
    if (visible && is_sampled(set))
        sample(set, key, pc);
}

void
MetaHawkeye::on_miss(std::uint32_t set, std::uint64_t key, sim::Pc pc,
                     bool visible)
{
    if (stats_ != nullptr)
        ++(visible ? stats_->visible_events : stats_->hidden_events);
    if (visible && is_sampled(set))
        sample(set, key, pc);
}

void
MetaHawkeye::on_insert(std::uint32_t set, std::uint32_t way,
                       std::uint64_t key, sim::Pc pc)
{
    (void)key;
    entry_pc(set, way) = pc;
    bool friendly = predictor_.predict(pc);
    if (stats_ != nullptr)
        ++(friendly ? stats_->friendly_inserts : stats_->averse_inserts);
    if (friendly) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (w == way)
                continue;
            auto& r = rrpv(set, w);
            if (r < MAX_RRPV - 1)
                ++r;
        }
        rrpv(set, way) = 0;
    } else {
        rrpv(set, way) = MAX_RRPV;
    }
}

void
MetaHawkeye::on_invalidate(std::uint32_t set, std::uint32_t way)
{
    rrpv(set, way) = MAX_RRPV;
    entry_pc(set, way) = 0;
}

std::uint32_t
MetaHawkeye::victim(std::uint32_t set)
{
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (rrpv(set, w) == MAX_RRPV)
            return w;
    }
    std::uint32_t best = 0;
    std::uint8_t best_rrpv = rrpv(set, 0);
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (rrpv(set, w) > best_rrpv) {
            best_rrpv = rrpv(set, w);
            best = w;
        }
    }
    if (stats_ != nullptr)
        ++stats_->victim_demotions;
    predictor_.train_negative(entry_pc(set, best));
    return best;
}

std::unique_ptr<MetaRepl>
make_meta_repl(MetaReplKind kind, std::uint32_t sets, std::uint32_t ways)
{
    switch (kind) {
      case MetaReplKind::Lru:
        return std::make_unique<MetaLru>(sets, ways);
      case MetaReplKind::Hawkeye:
        return std::make_unique<MetaHawkeye>(sets, ways);
    }
    util::panic("unknown MetaReplKind");
}

} // namespace triage::core
