#include "triage/training_unit.hpp"

#include "util/log.hpp"

namespace triage::core {

TrainingUnit::TrainingUnit(std::uint32_t entries)
    : capacity_(entries), entries_(entries)
{
    TRIAGE_ASSERT(entries > 0);
}

std::optional<sim::Addr>
TrainingUnit::update(sim::Pc pc, sim::Addr block)
{
    Entry* victim = &entries_[0];
    for (auto& e : entries_) {
        if (e.valid && e.pc == pc) {
            sim::Addr prev = e.last;
            e.last = block;
            e.lru = ++clock_;
            if (prev == block)
                return std::nullopt; // same line: no new correlation
            return prev;
        }
        if (!e.valid)
            victim = &e;
        else if (victim->valid && e.lru < victim->lru)
            victim = &e;
    }
    *victim = {pc, block, ++clock_, true};
    return std::nullopt;
}

std::optional<sim::Addr>
TrainingUnit::last_of(sim::Pc pc) const
{
    for (const auto& e : entries_) {
        if (e.valid && e.pc == pc)
            return e.last;
    }
    return std::nullopt;
}

} // namespace triage::core
