#include "triage/training_unit.hpp"

#include "util/log.hpp"

namespace triage::core {

TrainingUnit::TrainingUnit(std::uint32_t entries)
    : capacity_(entries), valid_from_(entries), pcs_(entries),
      last_(entries), lru_(entries)
{
    TRIAGE_ASSERT(entries > 0);
}

std::optional<sim::Addr>
TrainingUnit::update(sim::Pc pc, sim::Addr block)
{
    // At most one live slot holds this PC (inserts only happen after a
    // full-miss scan), so the first match is the only match.
    const sim::Pc* row = pcs_.data();
    for (std::uint32_t i = valid_from_; i < capacity_; ++i) {
        if (row[i] == pc) {
            sim::Addr prev = last_[i];
            last_[i] = block;
            lru_[i] = ++clock_;
            if (prev == block)
                return std::nullopt; // same line: no new correlation
            return prev;
        }
    }
    // Miss: fill the last empty slot, else replace the LRU entry.
    std::uint32_t victim;
    if (valid_from_ > 0) {
        victim = --valid_from_;
    } else {
        victim = 0;
        for (std::uint32_t i = 1; i < capacity_; ++i) {
            if (lru_[i] < lru_[victim])
                victim = i;
        }
    }
    pcs_[victim] = pc;
    last_[victim] = block;
    lru_[victim] = ++clock_;
    return std::nullopt;
}

std::optional<sim::Addr>
TrainingUnit::last_of(sim::Pc pc) const
{
    for (std::uint32_t i = valid_from_; i < capacity_; ++i) {
        if (pcs_[i] == pc)
            return last_[i];
    }
    return std::nullopt;
}

} // namespace triage::core
