#include "triage/training_unit.hpp"

#include "util/log.hpp"
#include "util/simd_probe.hpp"

namespace triage::core {

TrainingUnit::TrainingUnit(std::uint32_t entries)
    : capacity_(entries), valid_from_(entries), pcs_(entries),
      last_(entries), lru_(entries)
{
    TRIAGE_ASSERT(entries > 0);
}

std::optional<sim::Addr>
TrainingUnit::update(sim::Pc pc, sim::Addr block)
{
    // At most one live slot holds this PC (inserts only happen after a
    // full-miss scan), so the first match is the only match — a SIMD
    // probe over the live suffix of the packed PC array.
    const std::uint32_t hit = util::simd::find_first_eq(
        pcs_.data() + valid_from_, capacity_ - valid_from_, pc);
    if (hit != util::simd::NPOS) {
        const std::uint32_t i = valid_from_ + hit;
        sim::Addr prev = last_[i];
        last_[i] = block;
        lru_[i] = ++clock_;
        if (prev == block)
            return std::nullopt; // same line: no new correlation
        return prev;
    }
    // Miss: fill the last empty slot, else replace the LRU entry
    // (first-minimum stamp, exactly the scalar scan's tie-break).
    std::uint32_t victim;
    if (valid_from_ > 0) {
        victim = --valid_from_;
    } else {
        victim = util::simd::min_index(lru_.data(), capacity_);
    }
    pcs_[victim] = pc;
    last_[victim] = block;
    lru_[victim] = ++clock_;
    return std::nullopt;
}

std::optional<sim::Addr>
TrainingUnit::last_of(sim::Pc pc) const
{
    const std::uint32_t hit = util::simd::find_first_eq(
        pcs_.data() + valid_from_, capacity_ - valid_from_, pc);
    if (hit != util::simd::NPOS)
        return last_[valid_from_ + hit];
    return std::nullopt;
}

} // namespace triage::core
