#include "triage/triage.hpp"

#include <algorithm>

#include "obs/event_trace.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"

#include "util/log.hpp"

namespace triage::core {

namespace {

MetadataStoreConfig
store_config(const TriageConfig& cfg)
{
    MetadataStoreConfig sc;
    sc.capacity_bytes = cfg.unlimited ? 0 : cfg.static_bytes;
    sc.repl = cfg.repl;
    sc.compressed_tags = cfg.compressed_tags;
    return sc;
}

std::string
config_name(const TriageConfig& cfg)
{
    if (cfg.unlimited)
        return "triage_unlimited";
    if (cfg.dynamic)
        return "triage_dyn";
    if (cfg.static_bytes % (1024 * 1024) == 0)
        return "triage_" +
               std::to_string(cfg.static_bytes / (1024 * 1024)) + "MB";
    return "triage_" + std::to_string(cfg.static_bytes / 1024) + "KB";
}

} // namespace

Triage::Triage(TriageConfig cfg)
    : cfg_(cfg), tu_(cfg.training_unit_entries),
      store_(store_config(cfg)), partition_(cfg.partition),
      name_(config_name(cfg))
{
    if (cfg_.dynamic && !cfg_.unlimited)
        store_.resize(partition_.size_bytes());
}

std::uint64_t
Triage::current_store_bytes() const
{
    return cfg_.unlimited ? 0 : store_.capacity_bytes();
}

void
Triage::ensure_capacity(const prefetch::TrainEvent& ev,
                        prefetch::PrefetchHost& host)
{
    if (capacity_requested_ || cfg_.unlimited ||
        !cfg_.charge_llc_capacity) {
        capacity_requested_ = true;
        return;
    }
    host.request_metadata_capacity(ev.core, current_store_bytes(), ev.now);
    capacity_requested_ = true;
}

std::optional<sim::Addr>
Triage::lookup_next(sim::Addr trigger, unsigned core,
                    prefetch::PrefetchHost& host)
{
    if (cfg_.unlimited) {
        const sim::Addr* next = unlimited_map_.find(trigger);
        if (next == nullptr)
            return std::nullopt;
        return *next;
    }
    ++stats_.meta_onchip_reads;
    host.count_metadata_llc_access(core, false);
    MetaLookup lk = store_.probe(trigger);
    if (!lk.hit)
        return std::nullopt;
    return lk.next;
}

void
Triage::train(const prefetch::TrainEvent& ev, prefetch::PrefetchHost& host)
{
    // Degree 0 means prefetching is off entirely. Return before any
    // metadata work: the old code still issued the first-hop prefetch
    // (the degree bound only limited the d >= 2 chain walk) and
    // charged LLC capacity for the store, so a degree-0 run was not
    // timing-identical to the no-prefetcher baseline — the property
    // the differential suite (tools/diff_fidelity) pins.
    if (cfg_.degree == 0)
        return;
    ++stats_.train_events;
    // Triage trains on L2 misses and prefetched hits (paper Figure 4).
    if (ev.l2_hit && !ev.was_prefetch_hit)
        return;

    ensure_capacity(ev, host);

    // 1-2: probe the metadata with the incoming address and issue a
    // prefetch chain of the configured degree.
    //
    // Visibility (paper Section 3): the Hawkeye machinery trains
    // positively only when the metadata yields a prefetch that misses
    // in the cache. Metadata *misses* stay visible (they are the reuse
    // OPTgen must learn to size the store); hits that produce no
    // memory-bound prefetch — redundant or confidence-muted — are
    // invisible to every trained component.
    bool visible = true;
    MetaLookup first_lk;
    if (cfg_.unlimited) {
        sim::Addr cur = ev.block;
        for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
            auto next = lookup_next(cur, ev.core, host);
            if (!next.has_value())
                break;
            if (cfg_.track_reuse)
                ++reuse_counts_.ref(cur);
            send(ev, host, *next,
                 ev.now + d * host.llc_latency());
            cur = *next;
        }
    } else {
        ++stats_.meta_onchip_reads;
        host.count_metadata_llc_access(ev.core, false);
        first_lk = store_.probe(ev.block);
        // Only confident links generate prefetches: the 1-bit counter
        // exists precisely to mute entries whose successor is in flux.
        if (first_lk.hit && first_lk.confident) {
            if (cfg_.track_reuse)
                ++reuse_counts_.ref(ev.block);
            prefetch::PfOutcome out =
                send(ev, host, first_lk.next,
                     ev.now + host.llc_latency());
            // The Hawkeye policy is trained positively only when the
            // metadata produced a prefetch that missed in the cache
            // (issued to memory); redundant reuse stays invisible.
            visible = out == prefetch::PfOutcome::IssuedToDram ||
                      out == prefetch::PfOutcome::DroppedBandwidth;
            if (cfg_.dynamic && out == prefetch::PfOutcome::IssuedToDram)
                partition_.note_issued();
            // Walk the chain for higher degrees; deeper lookups are
            // pure probes (latency + energy, no policy training).
            sim::Addr cur = first_lk.next;
            for (std::uint32_t d = 2; d <= cfg_.degree; ++d) {
                auto next = lookup_next(cur, ev.core, host);
                if (!next.has_value())
                    break;
                send(ev, host, *next, ev.now + d * host.llc_latency());
                cur = *next;
            }
        }
        // 4: update replacement state (filtered training).
        store_.commit_access(ev.block, first_lk, ev.pc, visible);
    }

    // 3: training unit pairs this access with the PC's previous one.
    auto prev = tu_.update(ev.pc, ev.block);
    if (prev.has_value()) {
        if (cfg_.unlimited) {
            unlimited_map_.ref(*prev) = ev.block;
        } else {
            ++stats_.meta_onchip_writes;
            host.count_metadata_llc_access(ev.core, true);
            store_.update(*prev, ev.block, ev.pc);
        }
    }

    // 5: periodically recompute the partition (dynamic configuration).
    // Like every other component of the Hawkeye machinery, the OPTgen
    // sandboxes never see metadata reuse whose prefetch was redundant
    // or muted (paper Section 3): a store full of entries that only
    // re-find already-cached lines must look worthless to the size
    // controller. Epochs still advance on every access.
    if (cfg_.dynamic && !cfg_.unlimited) {
        if (partition_.observe(ev.block, visible)) {
            std::uint64_t want = partition_.size_bytes();
            if (want != store_.capacity_bytes()) {
                store_.resize(want);
                if (cfg_.charge_llc_capacity)
                    host.request_metadata_capacity(ev.core, want, ev.now);
            }
        }
    }
}

void
Triage::on_prefetch_used(sim::Addr, sim::Cycle)
{
    // Consumed-prefetch feedback drives the partition's utility gate.
    if (cfg_.dynamic && !cfg_.unlimited)
        partition_.note_useful();
}


void
Triage::register_stats(obs::Registry& reg, const std::string& prefix) const
{
    Prefetcher::register_stats(reg, prefix);

    obs::Scope st(reg, prefix + ".store");
    const MetadataStoreStats* ms = &store_.stats();
    st.bind_counter("lookups", &ms->lookups);
    st.bind_counter("hits", &ms->hits);
    st.bind_counter("updates", &ms->updates);
    st.bind_counter("inserts", &ms->inserts);
    st.bind_counter("evictions", &ms->evictions);
    st.bind_counter("confidence_flips", &ms->confidence_flips);
    st.bind_counter("tag_alias_drops", &ms->tag_alias_drops);
    st.add_formula("hit_rate", [ms] {
        return ms->lookups == 0
                   ? 0.0
                   : static_cast<double>(ms->hits) /
                         static_cast<double>(ms->lookups);
    });
    const MetadataStore* store = &store_;
    st.add_formula("capacity_bytes", [store] {
        return static_cast<double>(store->capacity_bytes());
    });
    st.add_formula("valid_entries", [store] {
        return static_cast<double>(store->valid_entries());
    });

    // Filtered-Hawkeye training stream (owned by the store, so these
    // pointers survive resizes rebuilding the policy object).
    obs::Scope rp(reg, prefix + ".store.repl");
    const MetaReplStats* rs = &store_.repl_stats();
    rp.bind_counter("visible_events", &rs->visible_events);
    rp.bind_counter("hidden_events", &rs->hidden_events);
    rp.bind_counter("optgen_hits", &rs->optgen_hits);
    rp.bind_counter("optgen_misses", &rs->optgen_misses);
    rp.bind_counter("friendly_inserts", &rs->friendly_inserts);
    rp.bind_counter("averse_inserts", &rs->averse_inserts);
    rp.bind_counter("victim_demotions", &rs->victim_demotions);

    if (cfg_.dynamic && !cfg_.unlimited) {
        obs::Scope pt(reg, prefix + ".partition");
        const PartitionController* pc = &partition_;
        pt.add_formula("level", [pc] {
            return static_cast<double>(pc->level());
        });
        pt.add_formula("size_bytes", [pc] {
            return static_cast<double>(pc->size_bytes());
        });
        pt.add_formula("epochs", [pc] {
            return static_cast<double>(pc->epochs());
        });
        const PartitionDecisionStats* ds = &pc->decision_stats();
        pt.bind_counter("warmup_epochs", &ds->warmup_epochs);
        pt.bind_counter("holds", &ds->holds);
        pt.bind_counter("pending", &ds->pending);
        pt.bind_counter("changes", &ds->changes);
        pt.bind_counter("cooldown_suppressed", &ds->cooldown_suppressed);
        pt.bind_counter("gate_fires", &ds->gate_fires);
    }
}

void
Triage::register_probes(obs::EpochSampler& sampler,
                        const std::string& prefix) const
{
    Prefetcher::register_probes(sampler, prefix);
    const MetadataStoreStats* ms = &store_.stats();
    sampler.add_rate(
        prefix + ".meta_hit_rate",
        [ms] { return static_cast<double>(ms->hits); },
        [ms] { return static_cast<double>(ms->lookups); });
    const MetadataStore* store = &store_;
    sampler.add_level(prefix + ".store_bytes", [store] {
        return static_cast<double>(store->capacity_bytes());
    });
    // Metadata churn: per-epoch deltas of the cumulative store counters
    // show when the table is being rebuilt vs quietly reused.
    sampler.add_delta(prefix + ".store_inserts", [ms] {
        return static_cast<double>(ms->inserts);
    });
    sampler.add_delta(prefix + ".store_evictions", [ms] {
        return static_cast<double>(ms->evictions);
    });
    sampler.add_delta(prefix + ".store_confidence_flips", [ms] {
        return static_cast<double>(ms->confidence_flips);
    });
    sampler.add_delta(prefix + ".store_updates", [ms] {
        return static_cast<double>(ms->updates);
    });
    if (cfg_.dynamic && !cfg_.unlimited) {
        const PartitionController* pc = &partition_;
        sampler.add_level(prefix + ".partition_level", [pc] {
            return static_cast<double>(pc->level());
        });
        // One OPTgen-sandbox hit-rate series per candidate store size.
        for (std::size_t i = 0; i < cfg_.partition.sizes.size(); ++i) {
            std::uint64_t bytes = cfg_.partition.sizes[i];
            std::string label =
                bytes % (1024 * 1024) == 0
                    ? std::to_string(bytes / (1024 * 1024)) + "MB"
                    : std::to_string(bytes / 1024) + "KB";
            sampler.add_level(
                prefix + ".optgen_hit_rate_" + label, [pc, i] {
                    const auto& rates = pc->last_hit_rates();
                    return i < rates.size() ? rates[i] : 0.0;
                });
        }
    }
}

void
Triage::set_trace(obs::EventTrace* trace)
{
    store_.set_trace(trace);
    partition_.set_trace(trace);
}

void
Triage::set_partition_timeline(obs::PartitionTimeline* timeline,
                               unsigned core)
{
    if (cfg_.dynamic && !cfg_.unlimited)
        partition_.set_timeline(timeline, core);
}

std::unique_ptr<Triage>
make_triage_static(std::uint64_t bytes, std::uint32_t degree)
{
    TriageConfig cfg;
    cfg.dynamic = false;
    cfg.static_bytes = bytes;
    cfg.degree = degree;
    return std::make_unique<Triage>(cfg);
}

std::unique_ptr<Triage>
make_triage_dynamic(std::uint32_t degree)
{
    TriageConfig cfg;
    cfg.dynamic = true;
    cfg.degree = degree;
    return std::make_unique<Triage>(cfg);
}

std::unique_ptr<Triage>
make_triage_unlimited(std::uint32_t degree)
{
    TriageConfig cfg;
    cfg.unlimited = true;
    cfg.charge_llc_capacity = false;
    cfg.degree = degree;
    return std::make_unique<Triage>(cfg);
}

} // namespace triage::core
