#include "triage/tag_compressor.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"

namespace triage::core {

TagCompressor::TagCompressor(TagCompressorConfig cfg)
    : cfg_(cfg), slots_(1u << cfg.id_bits),
      map_(std::size_t{1} << (cfg.id_bits + 2))
{
    TRIAGE_ASSERT(cfg.id_bits >= 1 && cfg.id_bits <= 16);
    map_mask_ = map_.size() - 1;
}

std::size_t
TagCompressor::map_home(std::uint64_t tag) const
{
    return static_cast<std::size_t>(util::mix64(tag)) & map_mask_;
}

std::size_t
TagCompressor::map_find(std::uint64_t tag) const
{
    std::size_t i = map_home(tag);
    while (map_[i].used) {
        if (map_[i].tag == tag)
            return i;
        i = (i + 1) & map_mask_;
    }
    return map_.size();
}

void
TagCompressor::map_insert(std::uint64_t tag, std::uint16_t id)
{
    std::size_t i = map_home(tag);
    while (map_[i].used) {
        if (map_[i].tag == tag) {
            map_[i].id = id;
            return;
        }
        i = (i + 1) & map_mask_;
    }
    map_[i] = {tag, id, true};
}

void
TagCompressor::map_erase(std::uint64_t tag)
{
    std::size_t i = map_find(tag);
    if (i == map_.size())
        return;
    // Backward-shift deletion (Knuth 6.4 R): pull later cluster
    // members whose home slot precedes the hole back over it, so
    // probes never need tombstones.
    std::size_t j = i;
    while (true) {
        map_[i].used = false;
        std::size_t home;
        do {
            j = (j + 1) & map_mask_;
            if (!map_[j].used)
                return;
            home = map_home(map_[j].tag);
        } while (i <= j ? (i < home && home <= j)
                        : (i < home || home <= j));
        map_[i] = map_[j];
        i = j;
    }
}

std::uint16_t
TagCompressor::compress(std::uint64_t tag)
{
    std::size_t pos = map_find(tag);
    if (pos != map_.size()) {
        std::uint16_t id = map_[pos].id;
        slots_[id].lru = ++clock_;
        return id;
    }
    // Recycle the LRU id.
    std::uint16_t victim = 0;
    for (std::uint16_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].valid) {
            victim = i;
            break;
        }
        if (slots_[i].lru < slots_[victim].lru)
            victim = i;
    }
    if (slots_[victim].valid) {
        map_erase(slots_[victim].tag);
        ++recycles_;
    }
    slots_[victim] = {tag, ++clock_, true};
    map_insert(tag, victim);
    return victim;
}

std::optional<std::uint16_t>
TagCompressor::find(std::uint64_t tag) const
{
    std::size_t pos = map_find(tag);
    if (pos == map_.size())
        return std::nullopt;
    return map_[pos].id;
}

std::uint64_t
TagCompressor::decompress(std::uint16_t id) const
{
    TRIAGE_ASSERT(id < slots_.size());
    return slots_[id].tag;
}

} // namespace triage::core
