#include "triage/tag_compressor.hpp"

#include "util/log.hpp"

namespace triage::core {

TagCompressor::TagCompressor(TagCompressorConfig cfg)
    : cfg_(cfg), slots_(1u << cfg.id_bits)
{
    TRIAGE_ASSERT(cfg.id_bits >= 1 && cfg.id_bits <= 16);
}

std::uint16_t
TagCompressor::compress(std::uint64_t tag)
{
    auto it = ids_.find(tag);
    if (it != ids_.end()) {
        slots_[it->second].lru = ++clock_;
        return it->second;
    }
    // Recycle the LRU id.
    std::uint16_t victim = 0;
    for (std::uint16_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].valid) {
            victim = i;
            break;
        }
        if (slots_[i].lru < slots_[victim].lru)
            victim = i;
    }
    if (slots_[victim].valid) {
        ids_.erase(slots_[victim].tag);
        ++recycles_;
    }
    slots_[victim] = {tag, ++clock_, true};
    ids_.emplace(tag, victim);
    return victim;
}

std::optional<std::uint16_t>
TagCompressor::find(std::uint64_t tag) const
{
    auto it = ids_.find(tag);
    if (it == ids_.end())
        return std::nullopt;
    return it->second;
}

std::uint64_t
TagCompressor::decompress(std::uint16_t id) const
{
    TRIAGE_ASSERT(id < slots_.size());
    return slots_[id].tag;
}

} // namespace triage::core
