#include "triage/tag_compressor.hpp"

#include "util/bitops.hpp"
#include "util/log.hpp"
#include "util/mem.hpp"
#include "util/simd_probe.hpp"

namespace triage::core {

TagCompressor::TagCompressor(TagCompressorConfig cfg)
    : cfg_(cfg), slots_(1u << cfg.id_bits),
      map_tags_(std::size_t{1} << (cfg.id_bits + 2), MAP_EMPTY),
      map_ids_(std::size_t{1} << (cfg.id_bits + 2), 0)
{
    TRIAGE_ASSERT(cfg.id_bits >= 1 && cfg.id_bits <= 16);
    map_mask_ = map_tags_.size() - 1;
    // The probe table is hash-indexed, so touches are random rows;
    // huge pages spare each one a dTLB walk (util/mem.hpp).
    util::hint_hugepages(map_tags_);
    util::hint_hugepages(slots_);
}

std::size_t
TagCompressor::map_home(std::uint64_t tag) const
{
    return static_cast<std::size_t>(util::mix64(tag)) & map_mask_;
}

std::size_t
TagCompressor::map_probe(std::uint64_t tag) const
{
    // Linear probe == "first slot holding my tag or the empty
    // sentinel, scanning from home with wraparound" — one SIMD
    // find-first-of-two per contiguous region (at most two regions).
    const std::uint64_t* t = map_tags_.data();
    const std::size_t n = map_tags_.size();
    const std::size_t home = map_home(tag);
    std::uint32_t r = util::simd::find_first_eq_either(
        t + home, static_cast<std::uint32_t>(n - home), tag, MAP_EMPTY);
    if (r != util::simd::NPOS)
        return home + r;
    r = util::simd::find_first_eq_either(
        t, static_cast<std::uint32_t>(home), tag, MAP_EMPTY);
    TRIAGE_ASSERT(r != util::simd::NPOS,
                  "probe table full (load is capped at 25%)");
    return r;
}

const std::uint16_t*
TagCompressor::id_lookup(std::uint64_t tag) const
{
    if (tag == MAP_EMPTY)
        return empty_tag_valid_ ? &empty_tag_id_ : nullptr;
    const std::size_t i = map_probe(tag);
    return map_tags_[i] == tag ? &map_ids_[i] : nullptr;
}

void
TagCompressor::map_insert(std::uint64_t tag, std::uint16_t id)
{
    if (tag == MAP_EMPTY) { // side slot: sentinel-valued tag
        empty_tag_valid_ = true;
        empty_tag_id_ = id;
        return;
    }
    const std::size_t i = map_probe(tag);
    map_tags_[i] = tag;
    map_ids_[i] = id;
}

void
TagCompressor::map_erase(std::uint64_t tag)
{
    if (tag == MAP_EMPTY) {
        empty_tag_valid_ = false;
        return;
    }
    const std::size_t i0 = map_probe(tag);
    if (map_tags_[i0] != tag)
        return;
    std::size_t i = i0;
    // Backward-shift deletion (Knuth 6.4 R): pull later cluster
    // members whose home slot precedes the hole back over it, so
    // probes never need tombstones.
    std::size_t j = i;
    while (true) {
        map_tags_[i] = MAP_EMPTY;
        std::size_t home;
        do {
            j = (j + 1) & map_mask_;
            if (map_tags_[j] == MAP_EMPTY)
                return;
            home = map_home(map_tags_[j]);
        } while (i <= j ? (i < home && home <= j)
                        : (i < home || home <= j));
        map_tags_[i] = map_tags_[j];
        map_ids_[i] = map_ids_[j];
        i = j;
    }
}

void
TagCompressor::map_rebuild()
{
    map_tags_.assign(map_tags_.size(), MAP_EMPTY);
    map_ids_.assign(map_ids_.size(), 0);
    empty_tag_valid_ = false;
    for (std::size_t id = 0; id < slots_.size(); ++id) {
        if (slots_[id].valid)
            map_insert(slots_[id].tag, static_cast<std::uint16_t>(id));
    }
}

std::uint16_t
TagCompressor::compress(std::uint64_t tag)
{
    if (const std::uint16_t* hit = id_lookup(tag)) {
        slots_[*hit].lru = ++clock_;
        return *hit;
    }
    // Recycle the LRU id.
    std::uint16_t victim = 0;
    for (std::uint16_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].valid) {
            victim = i;
            break;
        }
        if (slots_[i].lru < slots_[victim].lru)
            victim = i;
    }
    if (slots_[victim].valid) {
        map_erase(slots_[victim].tag);
        ++recycles_;
    }
    slots_[victim] = {tag, ++clock_, true};
    map_insert(tag, victim);
    return victim;
}

std::optional<std::uint16_t>
TagCompressor::find(std::uint64_t tag) const
{
    if (const std::uint16_t* hit = id_lookup(tag))
        return *hit;
    return std::nullopt;
}

std::uint64_t
TagCompressor::decompress(std::uint16_t id) const
{
    TRIAGE_ASSERT(id < slots_.size());
    return slots_[id].tag;
}

} // namespace triage::core
