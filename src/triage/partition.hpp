/**
 * @file
 * Dynamic metadata-store sizing (paper Section 3, "Adjusting the Size
 * of the Metadata Store").
 *
 * Two sampled OPTgen sandboxes model the *optimal* metadata hit rate
 * at the candidate store sizes (512 KB and 1 MB by default; ~1 KB of
 * state each thanks to access sampling). Every epoch (50 K metadata
 * accesses) the controller walks the size ladder: grow when the next
 * size up improves optimal hit rate by more than 5 %, shrink when the
 * next size down loses less than 5 %.
 */
#ifndef TRIAGE_CORE_PARTITION_HPP
#define TRIAGE_CORE_PARTITION_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "replacement/optgen.hpp"
#include "sim/types.hpp"

namespace triage::obs {
class EventTrace;
enum class PartitionEvent : std::uint8_t;
class PartitionTimeline;
} // namespace triage::obs

namespace triage::core {

/** Controller knobs. */
struct PartitionConfig {
    /** Candidate store sizes, ascending, not including 0. */
    std::vector<std::uint64_t> sizes = {512 * 1024, 1024 * 1024};
    std::uint64_t epoch_accesses = 50000;
    double hysteresis = 0.05; ///< the 5 % rule
    /** Sample 1-in-2^sample_shift metadata accesses into the sandboxes. */
    std::uint32_t sample_shift = 8;
    std::uint32_t entry_bytes = 4;
    std::uint32_t history_factor = 8;
    /** Initial ladder position (sizes.size() = largest; 0 = no store). */
    std::uint32_t initial_level = 2;
    /**
     * Epochs whose verdict must agree before the level moves. OPTgen
     * needs a full history window before its hit rates mean anything,
     * and the paper observes partitions change infrequently; demanding
     * consecutive agreement prevents a cold sandbox from prematurely
     * surrendering the store.
     */
    std::uint32_t confirm_epochs = 2;
    /** No decisions until this many sampled accesses accumulated. */
    std::uint64_t warmup_samples = 512;
    /**
     * Utility gate (the paper's "future work" extension, Section 4.2):
     * when the store is actively prefetching (issued prefetches exceed
     * gate_min_issued_fraction of the epoch's metadata accesses) but
     * the prefetches are rarely consumed (useful/issued below
     * gate_min_accuracy), the metadata is not earning its LLC ways
     * regardless of its hit rate, and the verdict steps one rung down
     * the ladder. A cold or quiet store is inconclusive and never
     * gated. Set gate_min_accuracy to 0 for pure paper behaviour.
     */
    double gate_min_issued_fraction = 0.01;
    /**
     * 0 disables the gate entirely — the default, matching the paper:
     * its Section 4.2 explicitly leaves utility-aware partitioning to
     * future work, and at this reproduction's scaled-down windows the
     * gate's warm-up judgment window overlaps the store's own warm-up.
     * Enable (e.g. 0.25) to experiment with the extension.
     */
    double gate_min_accuracy = 0.0;
    /** Epochs a level must be resident before the gate may judge it
     *  (temporal stores need a full reuse cycle to warm up). */
    std::uint32_t gate_min_epochs = 8;
    /** Epochs growth stays blocked after the gate fires. */
    std::uint32_t gate_cooldown_epochs = 10;
};

/**
 * How the controller spent its epochs: every end_epoch() increments
 * `epochs` plus exactly one of the outcome counters, so they always sum
 * to `epochs`. `gate_fires` counts utility-gate activations separately
 * (a gated epoch also lands in changed/pending/holds).
 */
struct PartitionDecisionStats {
    std::uint64_t epochs = 0;
    std::uint64_t warmup_epochs = 0;
    std::uint64_t holds = 0;
    std::uint64_t pending = 0; ///< change wanted, awaiting confirmation
    std::uint64_t changes = 0;
    std::uint64_t cooldown_suppressed = 0;
    std::uint64_t gate_fires = 0; ///< not part of the epoch sum
};

/** OPTgen-sandbox based size controller for one core. */
class PartitionController
{
  public:
    explicit PartitionController(PartitionConfig cfg = {});

    /**
     * Observe one metadata access (keyed by trigger address). Epochs
     * advance on every access, but only @p visible accesses feed the
     * OPTgen sandboxes: reuse whose prefetch never reached memory is
     * invisible to all trained components (paper Section 3).
     * @return true if the epoch ended and the level may have changed.
     */
    bool observe(sim::Addr trigger, bool visible = true);

    /** Record that a Triage prefetch went to memory this epoch. */
    void note_issued() { ++issued_; }
    /** Record that a Triage prefetch was consumed by a demand. */
    void note_useful() { ++useful_; }

    /** Current ladder level: 0 = no metadata store. */
    std::uint32_t level() const { return level_; }

    /** Current store size in bytes (0 at level 0). */
    std::uint64_t
    size_bytes() const
    {
        return level_ == 0 ? 0 : cfg_.sizes[level_ - 1];
    }

    /** Last epoch's sampled optimal hit rate per candidate size. */
    const std::vector<double>& last_hit_rates() const { return last_rates_; }

    std::uint64_t epochs() const { return epochs_; }

    /** Attach (or detach, with null) the event trace. */
    void set_trace(obs::EventTrace* trace) { trace_ = trace; }

    /** Attach (or detach, with null) the decision timeline, recording
     *  one PartitionSample per epoch attributed to @p core. */
    void
    set_timeline(obs::PartitionTimeline* timeline, unsigned core)
    {
        timeline_ = timeline;
        core_ = core;
    }

    /** How every epoch so far was decided. */
    const PartitionDecisionStats& decision_stats() const { return dstats_; }

    const PartitionConfig& config() const { return cfg_; }

    /** Epochs growth stays suppressed (0 = gate cooldown inactive). */
    std::uint32_t cooldown() const { return cooldown_; }
    /** Consecutive epochs the pending verdict has agreed (0 = none). */
    std::uint32_t pending_count() const { return pending_count_; }
    /** Level awaiting confirmation (meaningful iff pending_count() > 0). */
    std::uint32_t pending_level() const { return pending_level_; }
    /** Epochs since the level last changed. */
    std::uint32_t epochs_at_level() const { return epochs_at_level_; }

    /** The OPTgen sandboxes, one per candidate size (verify harness). */
    const std::vector<replacement::OptGen>& sandboxes() const
    {
        return sandboxes_;
    }

    /**
     * Drive one epoch decision directly from the given per-candidate
     * hit rates, bypassing access sampling (test / verify seam). Marks
     * the sandboxes warm so the decision logic runs, and feeds the
     * utility gate with @p issued / @p useful as this epoch's counts.
     * @p rates must have one entry per configured size.
     */
    void force_epoch(const std::vector<double>& rates,
                     std::uint64_t issued = 0, std::uint64_t useful = 0);

    /**
     * Internal-consistency sweep for the verify harness: level within
     * the ladder, pending confirmation below the confirm threshold,
     * cooldown within the configured window, outcome counters summing
     * to epochs. Calls @p report once per violation.
     */
    void self_check(
        const std::function<void(const std::string&)>& report) const;

    /**
     * Save/restore sandboxes, rate history, epoch position and the
     * decision-ladder state. Config is construction-time.
     */
    void
    checkpoint(sim::Snapshot& s)
    {
        s.section("triage.partition");
        for (auto& sb : sandboxes_)
            sb.checkpoint(s);
        s.io_pod_vec(last_rates_);
        s.io(accesses_);
        s.io(sampled_);
        s.io(level_);
        s.io(epochs_);
        s.io(pending_level_);
        s.io(pending_count_);
        s.io(useful_);
        s.io(issued_);
        s.io(epochs_at_level_);
        s.io(cooldown_);
        s.io_pod(dstats_);
    }

  private:
    void end_epoch();
    /** Decision half of end_epoch(): everything after rate harvest. */
    void decide_epoch();
    void record_sample(std::uint32_t verdict, obs::PartitionEvent event);

    PartitionConfig cfg_;
    std::vector<replacement::OptGen> sandboxes_; ///< one per size
    std::vector<double> last_rates_;
    std::uint64_t accesses_ = 0;
    std::uint64_t sampled_ = 0;
    std::uint32_t level_;
    std::uint64_t epochs_ = 0;
    std::uint32_t pending_level_ = 0; ///< candidate awaiting confirmation
    std::uint32_t pending_count_ = 0;
    std::uint64_t useful_ = 0; ///< consumed prefetches this epoch
    std::uint64_t issued_ = 0; ///< memory-bound prefetches this epoch
    std::uint32_t epochs_at_level_ = 0;
    std::uint32_t cooldown_ = 0;
    obs::EventTrace* trace_ = nullptr;
    obs::PartitionTimeline* timeline_ = nullptr;
    unsigned core_ = 0;
    PartitionDecisionStats dstats_;
};

} // namespace triage::core

#endif // TRIAGE_CORE_PARTITION_HPP
