#include "exec/lab.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "util/log.hpp"

namespace triage::exec {

namespace {

std::string
progress_label(const JobKey& key)
{
    std::string s = "[run] " + key.workload + " / " + key.pf;
    if (key.degree != 1)
        s += " (degree " + std::to_string(key.degree) + ")";
    if (key.replica != 0)
        s += " (replica " + std::to_string(key.replica) + ")";
    return s;
}

} // namespace

Lab::Lab(LabOptions opt)
    : n_workers_(opt.jobs != 0
                     ? opt.jobs
                     : std::max(1u, std::thread::hardware_concurrency()))
{
    if (opt.warm_checkpoints) {
        CheckpointOptions co;
        co.mem_budget_bytes = opt.ckpt_mem_budget_bytes;
        co.disk_dir = opt.ckpt_dir;
        if (co.disk_dir.empty()) {
            if (const char* env = std::getenv("TRIAGE_CKPT_DIR"))
                co.disk_dir = env;
        }
        ckpt_ = std::make_unique<CheckpointStore>(std::move(co));
    }
}

Lab::~Lab()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
Lab::execute(Task& task, unsigned worker_id,
             std::unique_lock<std::mutex>& lock)
{
    task.started = true;
    lock.unlock();
    if (n_workers_ > 1) {
        TRIAGE_LOG_INFO("[w", worker_id, "] ",
                        progress_label(task.key));
    } else {
        TRIAGE_LOG_INFO(progress_label(task.key));
    }
    auto us_since = [this](std::chrono::steady_clock::time_point t) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t - t0_)
                .count());
    };
    const auto started = std::chrono::steady_clock::now();
    sim::RunResult r;
    {
        // Top-level profile phase: every sim phase (warmup, measure,
        // snapshot save/restore) nests under "job.", so summed job
        // time is the wall-clock the Lab's workers spent simulating.
        obs::prof::ProfScope prof("job");
        r = run_job(task.job, ckpt_.get());
    }
    const auto ended = std::chrono::steady_clock::now();
    lock.lock();
    if (worker_stats_.size() < static_cast<std::size_t>(n_workers_))
        worker_stats_.resize(n_workers_);
    auto& ws = worker_stats_[worker_id];
    ws.worker = worker_id;
    ws.jobs += 1;
    ws.busy_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(ended -
                                                             started)
            .count());
    ws.peak_rss_kb = obs::prof::peak_rss_kb();
    obs::perfetto::JobSpan span;
    span.worker = worker_id;
    span.label = task.key.workload + " / " + task.key.pf;
    span.start_us = us_since(started);
    span.end_us = us_since(ended);
    spans_.push_back(std::move(span));
    task.result = std::move(r);
    task.done = true;
    ++executed_;
    task_done_.notify_all();
}

void
Lab::worker_loop(unsigned worker_id)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        work_ready_.wait(lock,
                         [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return;
            continue;
        }
        std::shared_ptr<Task> task = queue_.front();
        queue_.pop_front();
        execute(*task, worker_id, lock);
    }
}

void
Lab::ensure_workers()
{
    if (!workers_.empty())
        return;
    workers_.reserve(n_workers_);
    for (unsigned w = 0; w < n_workers_; ++w)
        workers_.emplace_back([this, w] { worker_loop(w); });
}

Lab::JobId
Lab::submit(Job job)
{
    JobKey key = key_of(job);
    std::unique_lock<std::mutex> lock(mu_);
    JobId id = submitted_.size();
    // Observability jobs are side-effecting: never satisfy one from a
    // memoized result (the bundle would stay empty) and never let a
    // later plain job reuse its slot.
    const bool memoizable = job.obs == nullptr;
    if (memoizable) {
        auto it = memo_.find(key);
        if (it != memo_.end()) {
            submitted_.push_back(it->second);
            return id;
        }
    }
    auto task = std::make_shared<Task>();
    task->job = std::move(job);
    task->key = std::move(key);
    task->seq = id;
    submitted_.push_back(task);
    if (memoizable)
        memo_.emplace(task->key, task);
    if (n_workers_ == 1) {
        // Serial path: run synchronously at submission, exactly like
        // the hand-rolled loops this Lab replaces.
        execute(*task, 0, lock);
        return id;
    }
    queue_.push_back(std::move(task));
    ensure_workers();
    lock.unlock();
    work_ready_.notify_one();
    return id;
}

const sim::RunResult&
Lab::result(JobId id)
{
    std::unique_lock<std::mutex> lock(mu_);
    TRIAGE_ASSERT(id < submitted_.size(), "bad JobId");
    std::shared_ptr<Task> task = submitted_[id];
    task_done_.wait(lock, [&] { return task->done; });
    return task->result;
}

void
Lab::wait_all()
{
    std::unique_lock<std::mutex> lock(mu_);
    task_done_.wait(lock, [&] {
        for (const auto& t : submitted_)
            if (!t->done)
                return false;
        return true;
    });
}

std::size_t
Lab::size() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return submitted_.size();
}

std::size_t
Lab::runs_executed() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return executed_;
}

std::vector<obs::perfetto::JobSpan>
Lab::job_spans() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return spans_;
}

std::vector<obs::prof::Profiler::WorkerAccounting>
Lab::worker_stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    std::vector<obs::prof::Profiler::WorkerAccounting> out;
    for (const auto& ws : worker_stats_)
        if (ws.jobs > 0)
            out.push_back(ws);
    return out;
}

void
Lab::publish_profile() const
{
    auto& prof = obs::prof::Profiler::instance();
    for (const auto& ws : worker_stats())
        prof.set_worker(ws);
    if (ckpt_ == nullptr)
        return;
    const CheckpointStore::Stats s = ckpt_->stats();
    auto d = [](std::uint64_t v) { return static_cast<double>(v); };
    prof.set_counter("ckpt.mem_hits", d(s.mem_hits));
    prof.set_counter("ckpt.disk_hits", d(s.disk_hits));
    prof.set_counter("ckpt.misses", d(s.misses));
    prof.set_counter("ckpt.produces", d(s.produces));
    prof.set_counter("ckpt.waits", d(s.waits));
    prof.set_counter("ckpt.evictions", d(s.evictions));
    prof.set_counter("ckpt.lease_wait_seconds",
                     d(s.lease_wait_ns) * 1e-9);
    prof.set_counter("ckpt.bytes_published", d(s.bytes_published));
    prof.set_counter("ckpt.bytes_mem", d(s.bytes_mem));
    prof.set_counter("ckpt.bytes_disk_read", d(s.bytes_disk_read));
    prof.set_counter("ckpt.bytes_disk_written", d(s.bytes_disk_written));
}

unsigned
Lab::jobs_from_args(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            auto n = static_cast<unsigned>(std::stoul(argv[i] + 7));
            if (n != 0)
                return n;
            break;
        }
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace triage::exec
