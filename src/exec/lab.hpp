/**
 * @file
 * The Lab: a parallel experiment scheduler. Jobs are submitted
 * declaratively, deduplicated by JobKey, executed by a worker pool
 * (`--jobs=N`; N=1 reproduces the serial path exactly), and collected
 * in submission order.
 *
 * Each worker constructs its own SingleCoreSystem / MultiCoreSystem —
 * the systems are thread-unsafe but self-contained (see
 * cache/hierarchy.hpp), which makes job-level parallelism safe by
 * construction. Results are bit-identical across any worker count; see
 * docs/parallel-runs.md for the determinism contract.
 */
#ifndef TRIAGE_EXEC_LAB_HPP
#define TRIAGE_EXEC_LAB_HPP

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/job.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"

namespace triage::exec {

/** Lab construction knobs. */
struct LabOptions {
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /**
     * Fork jobs sharing a warm prefix from memoized warm-state
     * checkpoints instead of re-simulating their warmup
     * (docs/parallel-runs.md §checkpointing). Bit-identical to cold
     * warmup; only the wall clock changes.
     */
    bool warm_checkpoints = true;

    /** In-memory checkpoint budget in bytes. */
    std::size_t ckpt_mem_budget_bytes = 512ull << 20;

    /**
     * On-disk checkpoint cache directory; "" = the TRIAGE_CKPT_DIR
     * environment variable (no disk tier when that is unset too).
     */
    std::string ckpt_dir;
};

/**
 * Parallel, memoizing experiment engine.
 *
 * Usage: submit() every job of a sweep up front (duplicates by JobKey
 * are coalesced onto one run), then collect with result(), which
 * blocks until that job finishes. With one worker, submit() runs the
 * job synchronously on the calling thread — byte-for-byte today's
 * serial loop. Not reentrant: do not submit from inside a job.
 */
class Lab
{
  public:
    using JobId = std::size_t;

    explicit Lab(LabOptions opt = {});
    ~Lab();
    Lab(const Lab&) = delete;
    Lab& operator=(const Lab&) = delete;

    /**
     * Enqueue @p job. A job whose key was already submitted shares the
     * earlier run's result; a job with an obs bundle attached always
     * runs (observability is a side effect memoization must not skip).
     */
    JobId submit(Job job);

    /** Block until job @p id finishes and return its result. */
    const sim::RunResult& result(JobId id);

    /** submit() + result() in one call. */
    const sim::RunResult&
    run(Job job)
    {
        return result(submit(std::move(job)));
    }

    /** Block until every submitted job has finished. */
    void wait_all();

    /** Jobs submitted so far (JobIds are 0..size()-1). */
    std::size_t size() const;

    /** Distinct simulations actually executed (memo hits excluded). */
    std::size_t runs_executed() const;

    /** Effective worker count. */
    unsigned workers() const { return n_workers_; }

    /** The warm-checkpoint store (null when warm_checkpoints=false).
     *  Memoization stays keyed on the full JobKey; the store only
     *  shares warm prefixes between distinct jobs. */
    CheckpointStore* checkpoints() { return ckpt_.get(); }

    /**
     * Wall-clock span of every executed job (memo hits excluded),
     * timestamped in microseconds since Lab construction — one
     * Perfetto track row per worker. Snapshot; call after wait_all()
     * for the complete set.
     */
    std::vector<obs::perfetto::JobSpan> job_spans() const;

    /**
     * Per-worker resource accounting (jobs run, busy wall-clock).
     * Rows exist only for workers that executed at least one job;
     * peak RSS is process-wide (sampled after each job), reported on
     * every row. Snapshot; call after wait_all() for final numbers.
     */
    std::vector<obs::prof::Profiler::WorkerAccounting>
    worker_stats() const;

    /**
     * Push this Lab's telemetry into the host profiler: worker
     * accounting rows plus the CheckpointStore counters under
     * "ckpt.*" (docs/observability.md §10). Call after wait_all()
     * when profiling is enabled; a disarmed profiler still accepts
     * the counters (they are summary data, not phase timings).
     */
    void publish_profile() const;

    /**
     * Parse `--jobs=N` from a CLI argument list. Returns the effective
     * worker count: N when given, hardware_concurrency (min 1) when
     * the flag is absent or N=0.
     */
    static unsigned jobs_from_args(int argc, char** argv);

  private:
    struct Task {
        Job job;
        JobKey key;
        JobId seq = 0;       ///< first submission's JobId (for logs)
        bool started = false;
        bool done = false;
        sim::RunResult result;
    };

    void worker_loop(unsigned worker_id);
    void execute(Task& task, unsigned worker_id,
                 std::unique_lock<std::mutex>& lock);
    void ensure_workers();

    unsigned n_workers_;
    std::unique_ptr<CheckpointStore> ckpt_;
    const std::chrono::steady_clock::time_point t0_ =
        std::chrono::steady_clock::now();
    std::vector<obs::perfetto::JobSpan> spans_;
    std::vector<obs::prof::Profiler::WorkerAccounting> worker_stats_;
    mutable std::mutex mu_;
    std::condition_variable work_ready_;
    std::condition_variable task_done_;
    std::vector<std::shared_ptr<Task>> submitted_; ///< by JobId
    std::unordered_map<JobKey, std::shared_ptr<Task>, JobKeyHash> memo_;
    std::deque<std::shared_ptr<Task>> queue_;
    std::vector<std::thread> workers_;
    std::size_t executed_ = 0;
    bool stop_ = false;
};

} // namespace triage::exec

#endif // TRIAGE_EXEC_LAB_HPP
