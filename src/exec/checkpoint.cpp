#include "exec/checkpoint.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/log.hpp"

namespace triage::exec {

namespace {

/** FNV-1a of the key string — names the disk-tier file. Collisions are
 *  harmless: the full key is the sealed blob's fingerprint, so a
 *  colliding file simply fails open() and reads as a miss. */
std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

CheckpointStore::CheckpointStore(CheckpointOptions opt)
    : opt_(std::move(opt))
{
}

CheckpointStore::Lease::~Lease()
{
    if (store_ != nullptr && producer_)
        store_->abandon(key_);
}

void
CheckpointStore::Lease::publish(sim::SnapshotBlob blob)
{
    TRIAGE_ASSERT(producer_, "publish() on a non-producer lease");
    store_->do_publish(key_, std::move(blob));
    producer_ = false;
}

CheckpointStore::Lease
CheckpointStore::acquire(const std::string& key)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.ready) {
            touch_locked(key, it->second);
            ++stats_.mem_hits;
            return Lease(this, key, it->second.blob, true, false);
        }
        if (it != entries_.end() && it->second.producing) {
            // Another worker is warming this prefix; piggyback on it.
            ++stats_.waits;
            const auto t0 = std::chrono::steady_clock::now();
            ready_cv_.wait(lock, [&] {
                auto e = entries_.find(key);
                return e == entries_.end() || !e->second.producing;
            });
            stats_.lease_wait_ns += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            continue; // re-examine: ready (hit) or abandoned (produce)
        }
        // Memory miss: try the disk tier before becoming a producer.
        sim::SnapshotBlob blob;
        if (load_from_disk(key, blob)) {
            ++stats_.disk_hits;
            stats_.bytes_disk_read += blob.size();
            Entry& e = entries_[key];
            e.ready = true;
            e.blob = blob;
            lru_.push_front(key);
            e.lru_pos = lru_.begin();
            mem_bytes_ += e.blob.size();
            evict_to_budget_locked();
            return Lease(this, key, std::move(blob), true, false);
        }
        ++stats_.misses;
        entries_[key].producing = true;
        return Lease(this, key, {}, false, true);
    }
}

void
CheckpointStore::do_publish(const std::string& key,
                                sim::SnapshotBlob blob)
{
    const bool wrote = store_to_disk(key, blob);
    std::unique_lock<std::mutex> lock(mu_);
    Entry& e = entries_[key];
    TRIAGE_ASSERT(e.producing && !e.ready,
                  "publish() against a non-producing entry");
    e.producing = false;
    e.ready = true;
    e.blob = std::move(blob);
    lru_.push_front(key);
    e.lru_pos = lru_.begin();
    mem_bytes_ += e.blob.size();
    ++stats_.produces;
    stats_.bytes_published += e.blob.size();
    if (wrote)
        stats_.bytes_disk_written += e.blob.size();
    evict_to_budget_locked();
    lock.unlock();
    ready_cv_.notify_all();
}

void
CheckpointStore::abandon(const std::string& key)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end() || !it->second.producing)
            return;
        // Producer died without publishing (exception unwound through
        // the warmup): erase the placeholder so one waiter re-acquires
        // and becomes the new producer.
        entries_.erase(it);
    }
    ready_cv_.notify_all();
}

void
CheckpointStore::touch_locked(const std::string& key, Entry& e)
{
    lru_.erase(e.lru_pos);
    lru_.push_front(key);
    e.lru_pos = lru_.begin();
}

void
CheckpointStore::evict_to_budget_locked()
{
    while (mem_bytes_ > opt_.mem_budget_bytes && !lru_.empty()) {
        const std::string victim = lru_.back();
        auto it = entries_.find(victim);
        TRIAGE_ASSERT(it != entries_.end() && it->second.ready,
                      "LRU list out of sync with the entry map");
        mem_bytes_ -= it->second.blob.size();
        lru_.pop_back();
        entries_.erase(it);
        ++stats_.evictions;
    }
}

std::string
CheckpointStore::disk_path(const std::string& key) const
{
    if (opt_.disk_dir.empty())
        return {};
    return opt_.disk_dir + "/" + hex16(fnv1a(key)) + ".ckpt";
}

bool
CheckpointStore::load_from_disk(const std::string& key,
                                sim::SnapshotBlob& out)
{
    const std::string path = disk_path(key);
    if (path.empty())
        return false;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    sim::SnapshotBlob blob((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    // Full validation (magic, version, fingerprint, checksum): a
    // stale file from an older build or a different sweep is a miss.
    sim::Snapshot probe;
    if (!sim::Snapshot::open(blob, CKPT_VERSION, key, probe))
        return false;
    out = std::move(blob);
    return true;
}

bool
CheckpointStore::store_to_disk(const std::string& key,
                               const sim::SnapshotBlob& blob)
{
    const std::string path = disk_path(key);
    if (path.empty())
        return false;
    std::error_code ec;
    std::filesystem::create_directories(opt_.disk_dir, ec);
    // Write-then-rename so a concurrent reader never sees a torn file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false; // disk tier is best-effort
        out.write(reinterpret_cast<const char*>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
        if (!out)
            return false;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

void
CheckpointStore::set_disk_dir(std::string dir)
{
    std::unique_lock<std::mutex> lock(mu_);
    opt_.disk_dir = std::move(dir);
}

CheckpointStore::Stats
CheckpointStore::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    Stats s = stats_;
    s.bytes_mem = mem_bytes_;
    return s;
}

} // namespace triage::exec
