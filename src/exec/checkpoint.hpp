/**
 * @file
 * CheckpointStore: a memoized cache of warm-state snapshots keyed by
 * the warm prefix of a JobKey (docs/parallel-runs.md §checkpointing).
 *
 * Sweeps share warmup: every job whose (machine, workload, prefetcher,
 * degree, replica, warmup, scale, quantum) prefix matches an earlier
 * job forks its measurement phase from the memoized warm snapshot
 * instead of re-simulating the warmup — bit-identical to warming up
 * in-process, because the snapshot captures the complete warm state.
 *
 * Two tiers: an in-memory LRU bounded by a byte budget, and an
 * optional on-disk directory (persists across processes; every file is
 * validated against its fingerprint + checksum on load, so a stale or
 * corrupted file degrades to a cache miss, never a wrong result).
 *
 * Concurrency: acquire() hands exactly one caller per key a producer
 * lease (miss); concurrent callers for the same key block until the
 * producer publishes, then read the published blob (hit). A producer
 * that dies without publishing wakes one waiter to take over.
 */
#ifndef TRIAGE_EXEC_CHECKPOINT_HPP
#define TRIAGE_EXEC_CHECKPOINT_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/snapshot.hpp"

namespace triage::exec {

/** CheckpointStore construction knobs. */
struct CheckpointOptions {
    /** In-memory LRU budget in bytes (0 disables the memory tier). */
    std::size_t mem_budget_bytes = 512ull << 20;
    /**
     * On-disk cache directory ("" disables the disk tier). Created on
     * first write. Defaults from the TRIAGE_CKPT_DIR environment
     * variable when the owning Lab constructs the store.
     */
    std::string disk_dir;
};

/** Blob format version for warm checkpoints (bump on layout change). */
inline constexpr std::uint32_t CKPT_VERSION = 1;

/**
 * Two-tier (memory LRU + disk) cache of sealed snapshot blobs.
 * Thread-safe; see file comment for the producer/waiter protocol.
 */
class CheckpointStore
{
  public:
    /** Hit/miss counters (tests and the cache-smoke tool assert on
     *  these; disk_hits > 0 proves cross-process reuse). The Lab
     *  exports them under profile.ckpt.* when profiling is on
     *  (docs/observability.md §10). */
    struct Stats {
        std::uint64_t mem_hits = 0;
        std::uint64_t disk_hits = 0;
        std::uint64_t misses = 0;    ///< acquire() became a producer
        std::uint64_t produces = 0;  ///< blobs published
        std::uint64_t waits = 0;     ///< blocked on a concurrent producer
        std::uint64_t evictions = 0; ///< LRU evictions (memory tier)
        std::uint64_t lease_wait_ns = 0; ///< total time blocked in waits
        std::uint64_t bytes_published = 0;  ///< sum of published blobs
        std::uint64_t bytes_mem = 0;        ///< memory tier, current
        std::uint64_t bytes_disk_read = 0;  ///< disk-tier blob loads
        std::uint64_t bytes_disk_written = 0; ///< disk-tier blob writes
    };

    /**
     * The result of acquire(): either a hit carrying the blob, or a
     * producer lease obligating the caller to publish() the blob it
     * computes. Destroying an unpublished producer lease abandons it,
     * promoting one blocked waiter to producer.
     */
    class Lease
    {
      public:
        Lease(Lease&& o) noexcept
            : store_(o.store_), key_(std::move(o.key_)),
              blob_(std::move(o.blob_)), hit_(o.hit_),
              producer_(o.producer_)
        {
            o.store_ = nullptr;
            o.producer_ = false;
        }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        Lease& operator=(Lease&&) = delete;
        ~Lease();

        /** True when the store already had the blob. */
        bool hit() const { return hit_; }
        /** The cached blob (hit() only). */
        const sim::SnapshotBlob& blob() const { return blob_; }
        /** Publish the produced blob (producer lease only). */
        void publish(sim::SnapshotBlob blob);

      private:
        friend class CheckpointStore;
        Lease(CheckpointStore* store, std::string key,
              sim::SnapshotBlob blob, bool hit, bool producer)
            : store_(store), key_(std::move(key)),
              blob_(std::move(blob)), hit_(hit), producer_(producer)
        {}

        CheckpointStore* store_;
        std::string key_;
        sim::SnapshotBlob blob_;
        bool hit_;
        bool producer_;
    };

    explicit CheckpointStore(CheckpointOptions opt = {});

    /**
     * Look up @p key (its canonical string doubles as the snapshot
     * fingerprint). Returns a hit lease, or — after checking the disk
     * tier and waiting out any concurrent producer — a producer lease.
     */
    Lease acquire(const std::string& key);

    Stats stats() const;

    /** Redirect the disk tier ("" disables). Not thread-safe against
     *  in-flight acquires; call before submitting jobs. */
    void set_disk_dir(std::string dir);
    const std::string& disk_dir() const { return opt_.disk_dir; }

    /** Path of @p key's disk-tier file ("" when the tier is off). */
    std::string disk_path(const std::string& key) const;

  private:
    struct Entry {
        bool producing = false;
        bool ready = false;
        sim::SnapshotBlob blob;
        /** Position in lru_ (valid when ready). */
        std::list<std::string>::iterator lru_pos;
    };

    void do_publish(const std::string& key, sim::SnapshotBlob blob);
    void abandon(const std::string& key);
    void touch_locked(const std::string& key, Entry& e);
    void evict_to_budget_locked();
    bool load_from_disk(const std::string& key, sim::SnapshotBlob& out);
    /** Returns true when the blob reached the disk tier. */
    bool store_to_disk(const std::string& key,
                       const sim::SnapshotBlob& blob);

    CheckpointOptions opt_;
    mutable std::mutex mu_;
    std::condition_variable ready_cv_;
    std::unordered_map<std::string, Entry> entries_;
    /** Ready keys, most-recently-used first. */
    std::list<std::string> lru_;
    std::size_t mem_bytes_ = 0;
    Stats stats_;
};

} // namespace triage::exec

#endif // TRIAGE_EXEC_CHECKPOINT_HPP
