/**
 * @file
 * Declarative experiment jobs. A Job names everything one simulation
 * run depends on — machine configuration, workload (benchmark analog
 * or multi-core mix), prefetcher, degree, and run scale — and a JobKey
 * is the typed identity the Lab memoizes on.
 *
 * Determinism contract: a job's RunResult is a pure function of its
 * JobKey. Every RNG stream consumed while running a job is seeded from
 * constants recorded in the job itself (the benchmark seed table, the
 * replica-derived jitter), never from global state, scheduling order
 * or wall-clock time, so parallel and serial execution produce
 * bit-identical results. See docs/parallel-runs.md.
 */
#ifndef TRIAGE_EXEC_JOB_HPP
#define TRIAGE_EXEC_JOB_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/observer.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/config.hpp"
#include "sim/run_stats.hpp"
#include "sim/trace.hpp"
#include "stats/experiment.hpp"
#include "workloads/mixes.hpp"

namespace triage::exec {

/**
 * One unit of schedulable work: a single simulation run.
 *
 * The workload is either @ref benchmark (single-core) or @ref mix
 * (multi-core, one benchmark name per core; takes precedence when
 * non-empty). The prefetcher is named by @ref pf_spec (the
 * stats::make_prefetcher grammar); configurations the grammar cannot
 * express go through @ref prefetcher_factory plus a unique
 * @ref variant tag that stands in for the spec in the JobKey.
 */
struct Job {
    sim::MachineConfig config{};

    /** Single-core benchmark analog name (ignored when mix non-empty). */
    std::string benchmark;
    /** Multi-core mix: benchmark name per core. Empty = single-core. */
    workloads::Mix mix{};

    /** Prefetcher spec string ("none" = no L2 prefetcher). */
    std::string pf_spec = "none";
    std::uint32_t degree = 1;

    stats::RunScale scale{};

    /**
     * Replica index for statistically independent reruns: replica 0
     * uses the benchmark table's canonical seed (today's numbers);
     * replica N > 0 perturbs the workload RNG with a stream derived
     * from the JobKey, so each replica is reproducible on its own.
     */
    std::uint32_t replica = 0;

    /**
     * Measurement-phase execution mode for multi-core mixes:
     * ExecMode::Sharded runs each core's quantum on a worker pool
     * against a frozen shared-state view (sim/multicore.hpp). Sharded
     * results are deterministic but not bit-identical to Legacy, so
     * the mode is part of the JobKey. Ignored for single-core jobs.
     */
    sim::ExecMode exec_mode = sim::ExecMode::Legacy;

    /**
     * Worker threads for a Sharded measurement (0 = one per core,
     * capped at the hardware). NOT part of the JobKey: sharded results
     * are bit-identical for any thread count.
     */
    unsigned threads = 0;

    /**
     * Multi-core quantum in cycles (0 = the default 1000). Part of the
     * JobKey — the warmup interleaving depends on it.
     */
    sim::Cycle quantum = 0;

    /**
     * Unique tag naming a custom configuration in the JobKey. Required
     * whenever @ref prefetcher_factory or @ref workload_factory is
     * set; otherwise it must stay empty and pf_spec is the identity.
     */
    std::string variant;

    /**
     * Build a custom prefetcher for @p core instead of
     * stats::make_prefetcher(pf_spec, degree). Must be thread-safe to
     * call (it runs on a Lab worker) and must not capture state shared
     * with other jobs' runs.
     */
    std::function<std::unique_ptr<prefetch::Prefetcher>(unsigned core)>
        prefetcher_factory;

    /**
     * Build a custom single-core workload (e.g. a recorded trace)
     * instead of workloads::make_benchmark(benchmark, ...). Same
     * thread-safety rules as prefetcher_factory.
     */
    std::function<std::unique_ptr<sim::Workload>()> workload_factory;

    /**
     * Optional per-job observability bundle, owned by the caller and
     * alive until the result is collected. The system freezes it at
     * the end of run() — on the worker, before the job completes — so
     * collection never reads probes into a destroyed system. A job
     * with a bundle attached bypasses memoization (it is
     * side-effecting by design).
     */
    obs::Observability* obs = nullptr;
};

/**
 * Typed memoization key: the canonical identity of a Job. Two jobs
 * with equal keys produce bit-identical RunResults, so the Lab runs
 * only one of them. Replaces the "bench|pf|degree" string concat the
 * benches used to hand-roll.
 */
struct JobKey {
    /** Canonical fingerprint of every MachineConfig field. */
    std::string machine;
    /** "bench:<name>", "mix:<a>,<b>,...", or "wl:<variant>". */
    std::string workload;
    /** pf_spec, or the variant tag for factory-built prefetchers. */
    std::string pf;
    std::uint32_t degree = 1;
    std::uint32_t replica = 0;
    std::uint64_t warmup_records = 0;
    std::uint64_t measure_records = 0;
    double workload_scale = 1.0;
    /** Multi-core quantum (0 = default; "|q<N>" only when non-zero,
     *  so pre-existing key strings are unchanged). */
    std::uint64_t quantum = 0;
    /** Sharded measurement phase ("|xs" marker; mixes only). */
    bool sharded = false;

    bool operator==(const JobKey&) const = default;

    /** One-line canonical form (stable across runs; used for hashing). */
    std::string str() const;

    /** FNV-1a hash of str(). */
    std::uint64_t hash() const;

    /**
     * Per-job RNG seed stream, derived from hash() via splitmix64.
     * Deterministic in the key alone, independent of submission order
     * or worker assignment.
     */
    std::uint64_t derived_seed() const;
};

/** Functor for unordered_map<JobKey, ...>. */
struct JobKeyHash {
    std::size_t
    operator()(const JobKey& k) const
    {
        return static_cast<std::size_t>(k.hash());
    }
};

/** Compute the canonical key of @p job (fatal on malformed jobs). */
JobKey key_of(const Job& job);

/**
 * The warm prefix of @p key: everything the warm state depends on.
 * The measurement length and execution mode are zeroed out — two jobs
 * differing only in those share one warm checkpoint (warmup always
 * runs Legacy serial, and the warm point predates the measurement
 * window). Its str() doubles as the checkpoint fingerprint.
 */
JobKey warm_prefix(const JobKey& key);

class CheckpointStore;

/**
 * Run one job to completion on the calling thread. Self-contained: a
 * fresh SingleCoreSystem/MultiCoreSystem per call, all state local,
 * safe to call from any number of threads concurrently.
 */
sim::RunResult run_job(const Job& job);

/**
 * run_job() forking from @p ckpt when possible: the warm prefix is
 * restored from a cached snapshot (or simulated once and published
 * for the next job sharing it). Bit-identical to the plain overload.
 * Null @p ckpt degrades to the plain path.
 */
sim::RunResult run_job(const Job& job, CheckpointStore* ckpt);

} // namespace triage::exec

#endif // TRIAGE_EXEC_JOB_HPP
