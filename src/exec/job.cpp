#include "exec/job.hpp"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "exec/checkpoint.hpp"
#include "frontend/frontend.hpp"
#include "obs/profile.hpp"
#include "sim/multicore.hpp"
#include "sim/system.hpp"
#include "util/log.hpp"
#include "workloads/spec.hpp"

namespace triage::exec {

namespace {

/**
 * Canonical serialization of every MachineConfig field. Keep in sync
 * with sim::MachineConfig: a field missing here would let two distinct
 * machines share a memoization slot.
 */
std::string
fingerprint(const sim::MachineConfig& c)
{
    std::ostringstream os;
    os << c.rob_entries << ',' << c.fetch_width << ',' << c.retire_width
       << ';' << c.l1d.size_bytes << ',' << c.l1d.assoc << ','
       << c.l1d.latency << ';' << c.l2.size_bytes << ',' << c.l2.assoc
       << ',' << c.l2.latency << ';' << c.llc.size_bytes << ','
       << c.llc.assoc << ',' << c.llc.latency << ';'
       << c.llc_extra_latency << ';' << c.dram_channels << ','
       << c.dram_latency << ',' << c.dram_cycles_per_transfer << ','
       << c.dram_prefetch_queue_limit << ';'
       << (c.l1_stride_prefetcher ? 1 : 0) << ';' << c.prefetch_degree
       << ';' << static_cast<int>(c.llc_replacement) << ';'
       << c.l2_mshrs << ';' << (c.model_tlb ? 1 : 0) << ','
       << c.l1_tlb_entries << ',' << c.l2_tlb_entries << ','
       << c.l2_tlb_latency << ',' << c.page_walk_latency;
    return os.str();
}

/**
 * Canonical workload-identity token for one benchmark / mix slot.
 * `trace:` specs resolve through frontend::trace_job_identity so the
 * key carries the concrete format plus the file's byte size — two jobs
 * naming the same path before and after the trace is regenerated must
 * not share memoized results or warm checkpoints.
 */
std::string
workload_token(const std::string& name)
{
    return frontend::is_trace_spec(name)
               ? frontend::trace_job_identity(name)
               : name;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::string
JobKey::str() const
{
    std::ostringstream os;
    os << machine << '|' << workload << '|' << pf << "|d" << degree
       << "|r" << replica << "|w" << warmup_records << "|m"
       << measure_records << "|s" << workload_scale;
    // Appended only when set, so every pre-existing key string (and
    // the seeds derived from it) is unchanged.
    if (quantum != 0)
        os << "|q" << quantum;
    if (sharded)
        os << "|xs";
    return os.str();
}

std::uint64_t
JobKey::hash() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a 64
    for (char ch : str()) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
JobKey::derived_seed() const
{
    return splitmix64(hash());
}

JobKey
key_of(const Job& job)
{
    const bool has_factory =
        static_cast<bool>(job.prefetcher_factory) ||
        static_cast<bool>(job.workload_factory);
    if (has_factory && job.variant.empty())
        util::fatal("exec::Job with a custom factory needs a unique "
                    "variant tag for its JobKey");
    if (!has_factory && !job.variant.empty())
        util::fatal("exec::Job variant tag set without a factory: '" +
                    job.variant + "'");
    if (job.workload_factory && !job.mix.empty())
        util::fatal("exec::Job workload_factory is single-core only");

    JobKey k;
    k.machine = fingerprint(job.config);
    if (!job.mix.empty()) {
        std::string w = "mix:";
        for (std::size_t c = 0; c < job.mix.size(); ++c) {
            if (c > 0)
                w += ',';
            w += workload_token(job.mix[c]);
        }
        k.workload = w;
    } else if (job.workload_factory) {
        k.workload = "wl:" + job.variant;
    } else {
        if (job.benchmark.empty())
            util::fatal("exec::Job has neither benchmark nor mix");
        k.workload = "bench:" + workload_token(job.benchmark);
    }
    k.pf = job.prefetcher_factory ? job.variant : job.pf_spec;
    k.degree = job.degree;
    k.replica = job.replica;
    k.warmup_records = job.scale.warmup_records;
    k.measure_records = job.scale.measure_records;
    k.workload_scale = job.scale.workload_scale;
    k.quantum = job.quantum;
    // Single-core jobs have no quantum interleaving to shard; their
    // exec_mode is inert and must not split the memoization space.
    k.sharded =
        job.exec_mode == sim::ExecMode::Sharded && !job.mix.empty();
    return k;
}

JobKey
warm_prefix(const JobKey& key)
{
    JobKey warm = key;
    warm.measure_records = 0;
    warm.sharded = false;
    return warm;
}

namespace {

/**
 * Reach the warm point: restore it from @p ckpt when a checkpoint for
 * this job's warm prefix exists, otherwise simulate the warmup and
 * publish the snapshot for the next job sharing the prefix. @p warm
 * and @p restore run the System-specific run_warmup / checkpoint_warm.
 */
template <typename WarmFn, typename CheckpointFn>
void
warm_with_checkpoint(CheckpointStore* ckpt, const JobKey& key,
                     WarmFn&& warm, CheckpointFn&& checkpoint)
{
    if (ckpt == nullptr) {
        warm();
        return;
    }
    const std::string wk = warm_prefix(key).str();
    CheckpointStore::Lease lease = ckpt->acquire(wk);
    const bool timing = std::getenv("TRIAGE_CKPT_TIMING") != nullptr;
    auto now = std::chrono::steady_clock::now;
    if (lease.hit()) {
        auto t0 = now();
        obs::prof::ProfScope prof("snapshot.restore");
        // The store validated the frame; a mismatch here means the
        // blob rotted between acquire and open — fail loudly.
        sim::Snapshot s =
            sim::Snapshot::open_or_die(lease.blob(), CKPT_VERSION, wk);
        checkpoint(s);
        if (timing)
            std::cerr << "restore " << lease.blob().size() << "B "
                      << std::chrono::duration<double>(now() - t0).count()
                      << "s\n";
        return;
    }
    auto t0 = now();
    warm();
    auto t1 = now();
    sim::Snapshot s;
    {
        // Serialize + seal + publish (the publish includes the disk
        // write when a cache dir is configured).
        obs::prof::ProfScope prof("snapshot.save");
        checkpoint(s);
        lease.publish(s.seal(CKPT_VERSION, wk));
    }
    auto t2 = now();
    if (timing)
        std::cerr << "warm "
                  << std::chrono::duration<double>(t1 - t0).count()
                  << "s save "
                  << std::chrono::duration<double>(t2 - t1).count()
                  << "s\n";
}

} // namespace

sim::RunResult
run_job(const Job& job, CheckpointStore* ckpt)
{
    const JobKey key = key_of(job);
    // Replica 0 keeps the benchmark table's canonical seeds (and thus
    // today's published numbers); replicas > 0 get an independent,
    // reproducible stream derived from the key.
    const std::uint64_t jitter =
        job.replica == 0 ? 0 : key.derived_seed();
    const sim::Cycle quantum = job.quantum != 0 ? job.quantum : 1000;

    auto make_pf = [&](unsigned core) {
        return job.prefetcher_factory
                   ? job.prefetcher_factory(core)
                   : stats::make_prefetcher(job.pf_spec, job.degree);
    };

    if (!job.mix.empty()) {
        auto cores = static_cast<unsigned>(job.mix.size());
        sim::MultiCoreSystem sys(job.config, cores);
        sys.set_observability(job.obs);
        for (unsigned c = 0; c < cores; ++c) {
            sys.set_prefetcher(c, make_pf(c));
            auto wl = workloads::make_workload(
                job.mix[c], job.scale.workload_scale, jitter, c);
            if (wl == nullptr)
                util::fatal("exec::Job mix slot " + std::to_string(c) +
                            " failed to open: '" + job.mix[c] + "'");
            sys.bind(c, *wl);
        }
        warm_with_checkpoint(
            ckpt, key,
            [&] { sys.run_warmup(job.scale.warmup_records, quantum); },
            [&](sim::Snapshot& s) { sys.checkpoint_warm(s); });
        return sys.run_measure(job.scale.measure_records, quantum,
                               job.exec_mode, job.threads);
    }

    sim::SingleCoreSystem sys(job.config);
    sys.set_observability(job.obs);
    sys.set_prefetcher(make_pf(0));
    std::unique_ptr<sim::Workload> wl =
        job.workload_factory
            ? job.workload_factory()
            : workloads::make_workload(job.benchmark,
                                       job.scale.workload_scale,
                                       jitter);
    if (wl == nullptr)
        util::fatal("exec::Job workload failed to open ('" +
                    key.workload + "')");
    wl->reset();
    sys.bind(*wl);
    warm_with_checkpoint(
        ckpt, key,
        [&] { sys.run_warmup(job.scale.warmup_records); },
        [&](sim::Snapshot& s) { sys.checkpoint_warm(s); });
    return sys.run_measure(job.scale.measure_records);
}

sim::RunResult
run_job(const Job& job)
{
    return run_job(job, nullptr);
}

} // namespace triage::exec
