/**
 * @file
 * stats::run_single / stats::run_mix, reimplemented as thin wrappers
 * over a one-job exec::Lab. Declared in stats/experiment.hpp (the
 * historical entry points every example and test uses); defined here
 * because the implementation now sits above the stats layer.
 */
#include "exec/lab.hpp"
#include "stats/experiment.hpp"

namespace triage::stats {

sim::RunResult
run_single(const sim::MachineConfig& cfg, const std::string& benchmark,
           const std::string& pf_spec, const RunScale& scale,
           std::uint32_t degree, obs::Observability* obs)
{
    exec::Job job;
    job.config = cfg;
    job.benchmark = benchmark;
    job.pf_spec = pf_spec;
    job.degree = degree;
    job.scale = scale;
    job.obs = obs;
    exec::Lab lab({.jobs = 1});
    return lab.run(std::move(job));
}

sim::RunResult
run_mix(const sim::MachineConfig& cfg, const workloads::Mix& mix,
        const std::string& pf_spec, const RunScale& scale,
        std::uint32_t degree, obs::Observability* obs)
{
    exec::Job job;
    job.config = cfg;
    job.mix = mix;
    job.pf_spec = pf_spec;
    job.degree = degree;
    job.scale = scale;
    job.obs = obs;
    exec::Lab lab({.jobs = 1});
    return lab.run(std::move(job));
}

} // namespace triage::stats
