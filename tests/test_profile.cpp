/**
 * @file
 * Tests for the host self-profiler (obs/profile): phase aggregation
 * under nesting, the LIFO-unwind invariant, the forced software
 * counter backend, the stats-JSON and Perfetto exports, worker /
 * checkpoint telemetry plumbed through the Lab, and the opt-in log
 * timestamp prefix. The profiler is a process-wide singleton, so every
 * test starts from Profiler::reset() and disarms on the way out.
 */
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "exec/job.hpp"
#include "exec/lab.hpp"
#include "obs/json.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"
#include "util/log.hpp"

namespace triage {
namespace {

using obs::json::Value;
using obs::prof::Backend;
using obs::prof::ProfScope;
using obs::prof::Profiler;

/** RAII: reset the singleton on entry and fully disarm on exit. */
struct ProfilerFixture {
    ProfilerFixture() { Profiler::instance().reset(); }
    ~ProfilerFixture()
    {
        Profiler::instance().disable();
        Profiler::instance().reset();
    }
};

void
spin_for_us(unsigned us)
{
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(us);
    while (std::chrono::steady_clock::now() < until) {
    }
}

// --- Phase timers -------------------------------------------------------

TEST(Profile, DisarmedScopesRecordNothing)
{
    ProfilerFixture fx;
    ASSERT_FALSE(Profiler::armed());
    {
        ProfScope a("alpha");
        ProfScope b("beta");
    }
    EXPECT_TRUE(Profiler::instance().phases().empty());
    EXPECT_EQ(Profiler::instance().wall_seconds(), 0.0);
}

TEST(Profile, PhasesAggregateNestedPaths)
{
    ProfilerFixture fx;
    Profiler::instance().enable();
    for (int i = 0; i < 3; ++i) {
        ProfScope outer("alpha");
        spin_for_us(200);
        {
            ProfScope inner("beta");
            spin_for_us(200);
        }
    }
    const auto phases = Profiler::instance().phases();
    ASSERT_TRUE(phases.count("alpha"));
    ASSERT_TRUE(phases.count("alpha.beta"));
    EXPECT_EQ(phases.at("alpha").count, 3u);
    EXPECT_EQ(phases.at("alpha.beta").count, 3u);
    // Inclusive timing: the parent covers its child.
    EXPECT_GE(phases.at("alpha").ns, phases.at("alpha.beta").ns);
    EXPECT_GT(phases.at("alpha.beta").ns, 0u);
}

TEST(Profile, AttributedCountsOnlyTopLevelPhases)
{
    ProfilerFixture fx;
    Profiler::instance().enable();
    {
        ProfScope outer("alpha");
        spin_for_us(500);
        ProfScope inner("beta");
        spin_for_us(500);
    }
    // "alpha" is top-level; "alpha.beta" is inside it and must not be
    // double-counted. External dotted paths stay out too.
    Profiler::instance().add_external("alpha.stall", 40'000'000, 2);
    const double attributed = Profiler::instance().attributed_seconds();
    const double wall = Profiler::instance().wall_seconds();
    EXPECT_GT(attributed, 0.0);
    EXPECT_LE(attributed, wall);
    const auto phases = Profiler::instance().phases();
    ASSERT_TRUE(phases.count("alpha.stall"));
    EXPECT_EQ(phases.at("alpha.stall").count, 2u);
    EXPECT_EQ(phases.at("alpha.stall").ns, 40'000'000u);
}

TEST(Profile, ThreadsAggregateIndependently)
{
    ProfilerFixture fx;
    Profiler::instance().enable();
    auto work = [] {
        ProfScope s("worker_phase");
        spin_for_us(300);
    };
    std::thread a(work), b(work);
    a.join();
    b.join();
    const auto phases = Profiler::instance().phases();
    ASSERT_TRUE(phases.count("worker_phase"));
    EXPECT_EQ(phases.at("worker_phase").count, 2u);
}

using ProfileDeathTest = ::testing::Test;

TEST(ProfileDeathTest, NonLifoUnwindDies)
{
    EXPECT_DEATH(
        {
            Profiler::instance().reset();
            Profiler::instance().enable();
            auto* outer = new ProfScope("outer");
            auto* inner = new ProfScope("inner");
            delete outer; // not the innermost active scope
            delete inner;
        },
        "ProfScope");
}

// --- Counter backends ---------------------------------------------------

TEST(Profile, ForcedSoftwareFallback)
{
    ::setenv("TRIAGE_PROF_NO_PERF", "1", 1);
    Profiler::instance().reset(); // re-reads the env knob
    Profiler::instance().enable();
    {
        ProfScope s("forced");
        spin_for_us(200);
    }
    EXPECT_EQ(Profiler::instance().backend(), Backend::Software);
    EXPECT_STREQ(Profiler::backend_name(Profiler::instance().backend()),
                 "software");
    const auto phases = Profiler::instance().phases();
    ASSERT_TRUE(phases.count("forced"));
    EXPECT_EQ(phases.at("forced").hw_samples, 1u);
    ::unsetenv("TRIAGE_PROF_NO_PERF");
    Profiler::instance().disable();
    Profiler::instance().reset();
}

TEST(Profile, BackendResolvesToSomethingReal)
{
    ProfilerFixture fx;
    Profiler::instance().enable();
    {
        ProfScope s("probe");
        spin_for_us(100);
    }
    const Backend b = Profiler::instance().backend();
    EXPECT_TRUE(b == Backend::PerfEvent || b == Backend::Software);
    EXPECT_STRNE(Profiler::backend_name(b), "unresolved");
}

TEST(Profile, HwStopwatchMeasuresWork)
{
    obs::prof::HwStopwatch hw;
    EXPECT_TRUE(hw.backend() == Backend::PerfEvent ||
                hw.backend() == Backend::Software);
    hw.start();
    spin_for_us(2000);
    const obs::prof::HwSample s = hw.stop();
    // Both backends produce cycles on x86; other architectures may
    // report zero under the fallback, so only sanity-check types here.
    if (hw.live())
        EXPECT_GT(s.cycles, 0u);
    // A second measurement must be independent of the first.
    hw.start();
    const obs::prof::HwSample s2 = hw.stop();
    EXPECT_LE(s2.cycles, s.cycles + s.cycles / 2 + 1'000'000);
}

TEST(Profile, MultiplexScaleNeverScheduledIsInvalid)
{
    // The group enabled but never hosted by the PMU: every counter
    // delta reads zero. The scale must be 0 ("no sample"), never 1 —
    // a 1 here is exactly the bug that shipped a plausible-looking
    // "instructions_per_access": 0 into the pr8 bench trajectory.
    EXPECT_EQ(obs::prof::multiplex_scale(1'000'000, 0), 0.0);
}

TEST(Profile, MultiplexScaleFullyScheduled)
{
    EXPECT_EQ(obs::prof::multiplex_scale(500, 500), 1.0);
    // running > enabled never happens, but clamp to 1 if it did.
    EXPECT_EQ(obs::prof::multiplex_scale(400, 500), 1.0);
    // Empty interval: trivially valid, zero deltas are honest zeros.
    EXPECT_EQ(obs::prof::multiplex_scale(0, 0), 1.0);
}

TEST(Profile, MultiplexScaleExtrapolatesPartialScheduling)
{
    EXPECT_DOUBLE_EQ(obs::prof::multiplex_scale(1000, 250), 4.0);
    EXPECT_DOUBLE_EQ(obs::prof::multiplex_scale(900, 600), 1.5);
}

TEST(Profile, HwStopwatchReportsSampleValidity)
{
    obs::prof::HwStopwatch hw;
    hw.start();
    spin_for_us(500);
    bool valid = true;
    const obs::prof::HwSample s = hw.stop(&valid);
    if (hw.live()) {
        // A live group that produced a valid sample measured real
        // instructions; zero would mean the gate failed.
        if (valid)
            EXPECT_GT(s.instructions, 0u);
    } else {
        // Software fallback can never claim valid hw rates.
        EXPECT_FALSE(valid);
    }
}

// --- Exports ------------------------------------------------------------

TEST(Profile, WriteJsonShapeParses)
{
    ProfilerFixture fx;
    Profiler::instance().enable();
    {
        ProfScope s("json_phase");
        spin_for_us(300);
    }
    Profiler::instance().set_counter("ckpt.mem_hits", 4);
    Profiler::instance().set_counter("ckpt.bytes_published", 1234);
    Profiler::instance().set_worker({0, 2, 5'000'000, 4096});
    std::ostringstream os;
    Profiler::instance().write_json(os);
    std::string err;
    auto root = obs::json::parse(os.str(), &err);
    ASSERT_TRUE(root.has_value()) << err << "\n" << os.str();
    EXPECT_TRUE(root->get("enabled")->boolean);
    const Value* backend = root->get("backend");
    ASSERT_NE(backend, nullptr);
    EXPECT_TRUE(backend->str == "perf_event" || backend->str == "software");
    EXPECT_GT(root->get("wall_seconds")->number, 0.0);
    const Value* phase = root->get("phases")->get("json_phase");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->get("count")->number, 1.0);
    EXPECT_GT(phase->get("seconds")->number, 0.0);
    const Value* ckpt = root->get("counters")->get("ckpt");
    ASSERT_NE(ckpt, nullptr);
    EXPECT_EQ(ckpt->get("mem_hits")->number, 4.0);
    const Value* workers = root->get("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_EQ(workers->array.size(), 1u);
    EXPECT_EQ(workers->array[0].get("jobs")->number, 2.0);
    EXPECT_EQ(workers->array[0].get("peak_rss_kb")->number, 4096.0);
}

TEST(Profile, PerfettoRoundTripCarriesProfileTracks)
{
    ProfilerFixture fx;
    Profiler::instance().enable();
    {
        ProfScope s("trace_phase");
        spin_for_us(300);
    }
    std::ostringstream os;
    obs::perfetto::write_trace(os, nullptr, {}, {});
    std::string err;
    auto root = obs::json::parse(os.str(), &err);
    ASSERT_TRUE(root.has_value()) << err;
    const Value* events = root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_slice = false, saw_counter = false;
    for (const Value& e : events->array) {
        const Value* pid = e.get("pid");
        const Value* ph = e.get("ph");
        if (pid == nullptr || ph == nullptr || pid->number != 4)
            continue;
        ASSERT_NE(e.get("tid"), nullptr);
        if (ph->str == "X" && e.get("name")->str == "trace_phase")
            saw_slice = true;
        if (ph->str == "C" &&
            e.get("name")->str.rfind("hw.", 0) == 0)
            saw_counter = true;
    }
    EXPECT_TRUE(saw_slice);
    EXPECT_TRUE(saw_counter);
    // Opting out removes the profiler process entirely.
    std::ostringstream os2;
    obs::perfetto::TraceOptions opt;
    opt.include_profile = false;
    obs::perfetto::write_trace(os2, nullptr, {}, opt);
    EXPECT_EQ(os2.str().find("\"pid\": 4"), std::string::npos);
}

// --- Run + Lab integration ----------------------------------------------

TEST(Profile, RunJobAttributesWarmupAndMeasure)
{
    ProfilerFixture fx;
    Profiler::instance().enable();
    exec::Job j;
    j.benchmark = "mcf";
    j.pf_spec = "triage_dyn";
    j.scale.warmup_records = 5000;
    j.scale.measure_records = 10000;
    (void)exec::run_job(j);
    const auto phases = Profiler::instance().phases();
    ASSERT_TRUE(phases.count("warmup")) << "phases: " << phases.size();
    ASSERT_TRUE(phases.count("measure"));
    EXPECT_GT(phases.at("warmup").ns, 0u);
    EXPECT_GT(phases.at("measure").ns, 0u);
    // Serial run: total attribution cannot exceed wall time.
    EXPECT_LE(Profiler::instance().attributed_seconds(),
              Profiler::instance().wall_seconds());
}

TEST(Profile, LabPublishesWorkerAndCkptTelemetry)
{
    ProfilerFixture fx;
    Profiler::instance().enable();
    exec::LabOptions opt;
    opt.jobs = 1;
    opt.warm_checkpoints = true;
    exec::Lab lab(opt);
    for (std::uint64_t measure : {4000u, 8000u}) {
        exec::Job j;
        j.benchmark = "mcf";
        j.pf_spec = "triage_dyn";
        j.scale.warmup_records = 6000;
        j.scale.measure_records = measure;
        lab.submit(std::move(j));
    }
    lab.wait_all();
    lab.publish_profile();

    const auto workers = Profiler::instance().workers();
    ASSERT_EQ(workers.size(), 1u);
    EXPECT_EQ(workers[0].jobs, 2u);
    EXPECT_GT(workers[0].busy_ns, 0u);
    EXPECT_GT(workers[0].peak_rss_kb, 0u);

    const auto counters = Profiler::instance().counters();
    // Two jobs share one warm prefix: one miss produces the
    // checkpoint, the second job forks it from memory.
    ASSERT_TRUE(counters.count("ckpt.misses"));
    EXPECT_EQ(counters.at("ckpt.misses"), 1.0);
    ASSERT_TRUE(counters.count("ckpt.mem_hits"));
    EXPECT_EQ(counters.at("ckpt.mem_hits"), 1.0);
    ASSERT_TRUE(counters.count("ckpt.bytes_published"));
    EXPECT_GT(counters.at("ckpt.bytes_published"), 0.0);
    ASSERT_TRUE(counters.count("ckpt.bytes_mem"));
    EXPECT_GT(counters.at("ckpt.bytes_mem"), 0.0);
    // The lab also dropped "job" phase scopes around each execution.
    const auto phases = Profiler::instance().phases();
    ASSERT_TRUE(phases.count("job"));
    EXPECT_EQ(phases.at("job").count, 2u);
    ASSERT_TRUE(phases.count("job.warmup"));
    ASSERT_TRUE(phases.count("job.measure"));
    ASSERT_TRUE(phases.count("job.snapshot.save"));
    ASSERT_TRUE(phases.count("job.snapshot.restore"));
}

TEST(Profile, PeakRssIsPlausible)
{
    const std::uint64_t kb = obs::prof::peak_rss_kb();
    // Any live process has at least a megabyte resident.
    EXPECT_GT(kb, 1024u);
}

// --- Log timestamps -----------------------------------------------------

TEST(Profile, LogTimestampPrefixFormat)
{
    const bool was = util::log_timestamps();
    util::set_log_timestamps(true);
    const std::string p1 = util::log_timestamp_prefix();
    const std::string p2 = util::log_timestamp_prefix();
    util::set_log_timestamps(was);
    EXPECT_EQ(p1.rfind("[t=", 0), 0u) << p1;
    EXPECT_NE(p1.find("ms +"), std::string::npos) << p1;
    EXPECT_EQ(p1.substr(p1.size() - 4), "ms] ") << p1;
    EXPECT_EQ(p2.rfind("[t=", 0), 0u) << p2;
}

TEST(Profile, LogTimestampsDefaultOff)
{
    // Golden tests compare log output byte-for-byte; the prefix must
    // stay opt-in (TRIAGE_LOG_TIMESTAMPS unset here).
    EXPECT_FALSE(util::log_timestamps());
}

} // namespace
} // namespace triage
