/**
 * @file
 * Tests for the declarative job model and the parallel lab scheduler:
 * JobKey identity, memoization, the serial-wrapper equivalence, and —
 * the determinism contract — bit-identical results at any worker
 * count. These tests are also the TSan smoke target (see README).
 */
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/lab.hpp"
#include "obs/observer.hpp"
#include "stats/experiment.hpp"
#include "stats/metrics.hpp"
#include "triage/triage.hpp"
#include "workloads/mixes.hpp"

using namespace triage;

namespace {

stats::RunScale
tiny_scale()
{
    stats::RunScale s;
    s.warmup_records = 5000;
    s.measure_records = 15000;
    s.workload_scale = 0.1;
    return s;
}

exec::Job
bench_job(const std::string& bench, const std::string& pf,
          std::uint32_t degree = 1)
{
    exec::Job j;
    j.benchmark = bench;
    j.pf_spec = pf;
    j.degree = degree;
    j.scale = tiny_scale();
    return j;
}

/** Every counter the reports read, compared exactly. */
void
expect_identical(const sim::RunResult& a, const sim::RunResult& b)
{
    ASSERT_EQ(a.per_core.size(), b.per_core.size());
    for (std::size_t c = 0; c < a.per_core.size(); ++c) {
        const auto& x = a.per_core[c];
        const auto& y = b.per_core[c];
        EXPECT_EQ(x.instructions, y.instructions);
        EXPECT_EQ(x.mem_records, y.mem_records);
        EXPECT_EQ(x.cycles, y.cycles);
        EXPECT_EQ(x.ipc(), y.ipc());
        EXPECT_EQ(x.coverage(), y.coverage());
        EXPECT_EQ(x.accuracy(), y.accuracy());
        EXPECT_EQ(x.l1.demand_hits, y.l1.demand_hits);
        EXPECT_EQ(x.l1.demand_misses, y.l1.demand_misses);
        EXPECT_EQ(x.l2.demand_hits, y.l2.demand_hits);
        EXPECT_EQ(x.l2.demand_misses, y.l2.demand_misses);
        EXPECT_EQ(x.l2pf.candidates, y.l2pf.candidates);
        EXPECT_EQ(x.l2pf.issued_to_dram, y.l2pf.issued_to_dram);
        EXPECT_EQ(x.l2pf.useful, y.l2pf.useful);
        EXPECT_EQ(x.energy.onchip_accesses, y.energy.onchip_accesses);
        EXPECT_EQ(x.energy.offchip_accesses, y.energy.offchip_accesses);
        EXPECT_EQ(x.avg_metadata_ways, y.avg_metadata_ways);
    }
    EXPECT_EQ(a.llc.demand_hits, b.llc.demand_hits);
    EXPECT_EQ(a.llc.demand_misses, b.llc.demand_misses);
    EXPECT_EQ(a.traffic.total(), b.traffic.total());
    for (unsigned t = 0; t < sim::NUM_TRAFFIC_CLASSES; ++t) {
        EXPECT_EQ(a.traffic.bytes[t], b.traffic.bytes[t]);
    }
    EXPECT_EQ(a.span, b.span);
}

} // namespace

TEST(JobKey, EqualJobsShareKeyAndHash)
{
    auto a = exec::key_of(bench_job("mcf", "triage_dyn"));
    auto b = exec::key_of(bench_job("mcf", "triage_dyn"));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a.str(), b.str());
}

TEST(JobKey, DistinguishesEveryAxis)
{
    auto base = exec::key_of(bench_job("mcf", "triage_dyn"));
    EXPECT_NE(base, exec::key_of(bench_job("omnetpp", "triage_dyn")));
    EXPECT_NE(base, exec::key_of(bench_job("mcf", "bo")));
    EXPECT_NE(base, exec::key_of(bench_job("mcf", "triage_dyn", 4)));

    auto replica = bench_job("mcf", "triage_dyn");
    replica.replica = 1;
    EXPECT_NE(base, exec::key_of(replica));

    auto scaled = bench_job("mcf", "triage_dyn");
    scaled.scale.measure_records += 1;
    EXPECT_NE(base, exec::key_of(scaled));

    auto machine = bench_job("mcf", "triage_dyn");
    machine.config.l2_mshrs = 16;
    EXPECT_NE(base, exec::key_of(machine));
}

TEST(JobKey, DerivedSeedVariesByReplica)
{
    auto a = bench_job("mcf", "triage_dyn");
    auto b = bench_job("mcf", "triage_dyn");
    b.replica = 1;
    EXPECT_NE(exec::key_of(a).derived_seed(),
              exec::key_of(b).derived_seed());
}

TEST(Lab, MemoizesByKey)
{
    exec::Lab lab({.jobs = 1});
    auto first = lab.submit(bench_job("mcf", "bo"));
    auto second = lab.submit(bench_job("mcf", "bo"));
    lab.wait_all();
    EXPECT_EQ(lab.runs_executed(), 1u);
    expect_identical(lab.result(first), lab.result(second));
}

TEST(Lab, DistinctKeysRunSeparately)
{
    exec::Lab lab({.jobs = 1});
    lab.submit(bench_job("mcf", "bo"));
    lab.submit(bench_job("mcf", "bo", 2));
    lab.wait_all();
    EXPECT_EQ(lab.runs_executed(), 2u);
}

TEST(Lab, ParallelMatchesSerial)
{
    // A small sweep: benchmarks x prefetchers, run serially and on four
    // workers. The determinism contract requires bit-identical results.
    const std::vector<std::string> benches = {"mcf", "libquantum"};
    const std::vector<std::string> pfs = {"none", "bo", "triage_dyn"};

    exec::Lab serial({.jobs = 1});
    exec::Lab parallel({.jobs = 4});
    std::vector<exec::Lab::JobId> s_ids, p_ids;
    for (const auto& b : benches) {
        for (const auto& pf : pfs) {
            s_ids.push_back(serial.submit(bench_job(b, pf)));
            p_ids.push_back(parallel.submit(bench_job(b, pf)));
        }
    }
    serial.wait_all();
    parallel.wait_all();
    EXPECT_EQ(parallel.workers(), 4u);
    ASSERT_EQ(s_ids.size(), p_ids.size());
    for (std::size_t i = 0; i < s_ids.size(); ++i) {
        expect_identical(serial.result(s_ids[i]),
                         parallel.result(p_ids[i]));
    }
}

TEST(Lab, ParallelMatchesSerialForMixes)
{
    workloads::Mix mix{"mcf", "libquantum"};
    auto make = [&](const std::string& pf) {
        exec::Job j;
        j.mix = mix;
        j.pf_spec = pf;
        j.scale = tiny_scale();
        return j;
    };
    exec::Lab serial({.jobs = 1});
    exec::Lab parallel({.jobs = 2});
    auto s1 = serial.submit(make("none"));
    auto s2 = serial.submit(make("triage_dyn"));
    auto p1 = parallel.submit(make("none"));
    auto p2 = parallel.submit(make("triage_dyn"));
    serial.wait_all();
    parallel.wait_all();
    expect_identical(serial.result(s1), parallel.result(p1));
    expect_identical(serial.result(s2), parallel.result(p2));
}

TEST(Lab, WrapperEquivalence)
{
    // stats::run_single is a thin wrapper over a one-job Lab; going
    // through exec directly must give the same numbers.
    sim::MachineConfig cfg;
    auto via_wrapper =
        stats::run_single(cfg, "mcf", "triage_dyn", tiny_scale());
    auto via_job = exec::run_job(bench_job("mcf", "triage_dyn"));
    expect_identical(via_wrapper, via_job);
}

TEST(Lab, ReplicasAreReproducibleButIndependent)
{
    auto r0 = bench_job("mcf", "triage_dyn");
    auto r1 = bench_job("mcf", "triage_dyn");
    r1.replica = 1;
    // Same replica twice: identical. Replica 0 keeps the canonical
    // benchmark seed, so it matches the replica-free result.
    expect_identical(exec::run_job(r1), exec::run_job(r1));
    expect_identical(exec::run_job(r0),
                     stats::run_single(sim::MachineConfig{}, "mcf",
                                       "triage_dyn", tiny_scale()));
}

TEST(Lab, ObsJobsBypassMemoization)
{
    // A memo hit would hand back a result without populating the
    // caller's bundle, so obs-carrying jobs always run.
    exec::Lab lab({.jobs = 1});
    lab.submit(bench_job("mcf", "bo"));

    obs::Observability obs;
    obs.sampler.configure(5000);
    auto job = bench_job("mcf", "bo");
    job.obs = &obs;
    auto id = lab.submit(std::move(job));
    lab.wait_all();
    EXPECT_EQ(lab.runs_executed(), 2u);
    // The bundle was wired into the worker's system and frozen before
    // the job completed: stats registered, epochs recorded.
    EXPECT_GT(obs.registry.size(), 0u);
    EXPECT_FALSE(obs.sampler.epochs().empty());
    (void)id;
}

TEST(Lab, CustomFactoryJobsMemoizeByVariant)
{
    auto factory = [](unsigned) {
        core::TriageConfig tcfg;
        tcfg.dynamic = true;
        return std::make_unique<core::Triage>(tcfg);
    };
    auto make = [&] {
        exec::Job j;
        j.benchmark = "mcf";
        j.variant = "triage_dyn@custom";
        j.prefetcher_factory = factory;
        j.scale = tiny_scale();
        return j;
    };
    exec::Lab lab({.jobs = 1});
    auto a = lab.submit(make());
    auto b = lab.submit(make());
    lab.wait_all();
    EXPECT_EQ(lab.runs_executed(), 1u);
    expect_identical(lab.result(a), lab.result(b));
}
