/**
 * @file
 * Parameterized property tests: invariants swept across configuration
 * grids (TEST_P / INSTANTIATE_TEST_SUITE_P).
 */
#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache.hpp"
#include "prefetch/stride.hpp"
#include "replacement/belady.hpp"
#include "replacement/lru.hpp"
#include "replacement/optgen.hpp"
#include "sim/dram.hpp"
#include "sim/tlb.hpp"
#include "triage/metadata_store.hpp"
#include "triage/tag_compressor.hpp"
#include "triage/partition.hpp"
#include "triage/triage.hpp"
#include "util/rng.hpp"
#include "workloads/spec.hpp"

using namespace triage;

// ---------------------------------------------------------------------
// Property: OPTgen == Belady for any capacity / locality mix.
// ---------------------------------------------------------------------

class OptGenVsBelady
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, // capacity
                                                 std::uint32_t, // keys
                                                 double>>       // zipf s
{};

TEST_P(OptGenVsBelady, HitCountsMatchExactly)
{
    auto [capacity, keys, zipf_s] = GetParam();
    util::Rng rng(capacity * 7919 + keys);
    std::vector<std::uint64_t> seq;
    seq.reserve(600);
    for (int i = 0; i < 600; ++i) {
        seq.push_back(zipf_s > 0 ? rng.next_zipf(keys, zipf_s)
                                 : rng.next_below(keys));
    }
    replacement::OptGen og(capacity, /*history_factor=*/2000);
    std::uint64_t og_hits = 0;
    for (auto k : seq)
        og_hits += og.access(k) ? 1 : 0;
    EXPECT_EQ(og_hits, replacement::belady_hits(seq, capacity));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptGenVsBelady,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 8u, 16u),
                       ::testing::Values(4u, 16u, 64u),
                       ::testing::Values(0.0, 0.8, 1.2)));

// ---------------------------------------------------------------------
// Property: LRU stack inclusion — more ways never hurt.
// ---------------------------------------------------------------------

class LruStack : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(LruStack, MoreWaysNeverDecreaseHits)
{
    std::uint32_t assoc = GetParam();
    auto run = [](std::uint32_t ways) {
        std::uint32_t sets = 16;
        cache::SetAssocCache c(
            {"p", static_cast<std::uint64_t>(sets) * ways *
                      sim::BLOCK_SIZE,
             ways},
            std::make_unique<replacement::Lru>(sets, ways));
        util::Rng rng(99);
        std::uint64_t hits = 0;
        for (int i = 0; i < 20000; ++i) {
            sim::Addr block = rng.next_zipf(4096, 1.0);
            if (c.access(block, 1, i, false).hit)
                ++hits;
            else
                c.insert(block, 1, 0, false, false);
        }
        return hits;
    };
    EXPECT_LE(run(assoc), run(assoc * 2));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LruStack,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ---------------------------------------------------------------------
// Property: metadata store never exceeds capacity; resize keeps bound.
// ---------------------------------------------------------------------

class StoreCapacity
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, // bytes
                                                 core::MetaReplKind>>
{};

TEST_P(StoreCapacity, ValidEntriesBounded)
{
    auto [bytes, repl] = GetParam();
    core::MetadataStoreConfig cfg;
    cfg.capacity_bytes = bytes;
    cfg.repl = repl;
    core::MetadataStore s(cfg);
    util::Rng rng(static_cast<std::uint64_t>(bytes));
    for (int i = 0; i < 30000; ++i) {
        sim::Addr t = rng.next_below(1u << 20);
        auto lk = s.probe(t);
        s.commit_access(t, lk, 0x4, true);
        s.update(t, t + 1, 0x4);
    }
    EXPECT_LE(s.valid_entries(), s.capacity_entries());
    // Shrink and grow; the bound must hold throughout.
    s.resize(bytes / 2);
    EXPECT_LE(s.valid_entries(), s.capacity_entries());
    s.resize(bytes * 2);
    for (int i = 0; i < 5000; ++i)
        s.update(rng.next_below(1u << 20), i, 0x4);
    EXPECT_LE(s.valid_entries(), s.capacity_entries());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StoreCapacity,
    ::testing::Combine(::testing::Values(4096u, 65536u, 262144u),
                       ::testing::Values(core::MetaReplKind::Lru,
                                         core::MetaReplKind::Hawkeye)));

// ---------------------------------------------------------------------
// Property: Triage degree-k issues at most k chained prefetches and
// walks the learned chain in order.
// ---------------------------------------------------------------------

namespace {

class CountingHost final : public prefetch::PrefetchHost
{
  public:
    std::vector<sim::Addr> issued;

    prefetch::PfOutcome
    issue_prefetch(unsigned, sim::Addr block, sim::Cycle,
                   prefetch::Prefetcher*) override
    {
        issued.push_back(block);
        return prefetch::PfOutcome::IssuedToDram;
    }
    sim::Cycle llc_latency() const override { return 20; }
    void count_metadata_llc_access(unsigned, bool) override {}
    sim::Cycle
    offchip_metadata_access(unsigned, sim::Cycle now, std::uint32_t,
                            bool, bool) override
    {
        return now;
    }
    void request_metadata_capacity(unsigned, std::uint64_t,
                                   sim::Cycle) override
    {}
};

} // namespace

class TriageDegree : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(TriageDegree, WalksChainInOrder)
{
    std::uint32_t degree = GetParam();
    core::TriageConfig cfg;
    cfg.degree = degree;
    core::Triage t(cfg);
    CountingHost host;
    prefetch::TrainEvent ev;
    ev.pc = 0x40;
    ev.l2_hit = false;
    // Train a chain 100 -> 101 -> ... -> 140.
    for (int pass = 0; pass < 3; ++pass) {
        for (sim::Addr a = 100; a <= 140; ++a) {
            ev.block = a;
            t.train(ev, host);
        }
    }
    host.issued.clear();
    ev.block = 100;
    t.train(ev, host);
    ASSERT_LE(host.issued.size(), degree);
    for (std::size_t i = 0; i < host.issued.size(); ++i)
        EXPECT_EQ(host.issued[i], 101u + i);
    EXPECT_GE(host.issued.size(), std::min<std::uint32_t>(degree, 4u));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriageDegree,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ---------------------------------------------------------------------
// Property: stride prefetcher learns any constant stride.
// ---------------------------------------------------------------------

class StrideSweep : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(StrideSweep, LearnsStride)
{
    std::int64_t stride = GetParam();
    prefetch::StridePrefetcher pf;
    CountingHost host;
    prefetch::TrainEvent ev;
    ev.pc = 0x4;
    ev.l2_hit = false;
    sim::Addr base = 1u << 20;
    for (int i = 0; i < 16; ++i) {
        ev.block = static_cast<sim::Addr>(
            static_cast<std::int64_t>(base) + i * stride);
        pf.train(ev, host);
    }
    ASSERT_FALSE(host.issued.empty());
    // The last candidates continue the stride beyond the last access.
    auto last_access = static_cast<std::int64_t>(base) + 15 * stride;
    EXPECT_EQ(static_cast<std::int64_t>(host.issued.back()) -
                  last_access,
              stride * static_cast<std::int64_t>(
                           prefetch::StrideConfig{}.degree));
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrideSweep,
                         ::testing::Values(1, -1, 3, -7, 16));

// ---------------------------------------------------------------------
// Property: DRAM queueing is monotonic in offered load and conserves
// traffic accounting across channel counts.
// ---------------------------------------------------------------------

class DramChannels : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(DramChannels, LatencyMonotonicInLoad)
{
    sim::MachineConfig cfg;
    cfg.dram_channels = GetParam();
    auto burst_latency = [&](int n_requests) {
        sim::Dram d(cfg);
        sim::Cycle last = 0;
        for (int i = 0; i < n_requests; ++i)
            last = d.demand_read(static_cast<sim::Addr>(i), 0);
        return last;
    };
    EXPECT_LE(burst_latency(4), burst_latency(64));
    EXPECT_LE(burst_latency(64), burst_latency(256));
}

TEST_P(DramChannels, TrafficIndependentOfChannels)
{
    sim::MachineConfig cfg;
    cfg.dram_channels = GetParam();
    sim::Dram d(cfg);
    for (int i = 0; i < 100; ++i)
        d.demand_read(static_cast<sim::Addr>(i * 977), i * 10);
    EXPECT_EQ(d.traffic().of(sim::TrafficClass::DemandRead),
              100 * sim::BLOCK_SIZE);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DramChannels,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ---------------------------------------------------------------------
// Property: every benchmark analog is deterministic and restartable.
// ---------------------------------------------------------------------

class BenchmarkNames : public ::testing::TestWithParam<std::string>
{};

TEST_P(BenchmarkNames, DeterministicAndRestartable)
{
    auto wl = workloads::make_benchmark(GetParam(), 0.005);
    std::vector<sim::TraceRecord> first;
    sim::TraceRecord r;
    for (int i = 0; i < 2000 && wl->next(r); ++i)
        first.push_back(r);
    ASSERT_FALSE(first.empty());
    wl->reset();
    for (const auto& expect : first) {
        ASSERT_TRUE(wl->next(r));
        EXPECT_EQ(r.addr, expect.addr);
        EXPECT_EQ(r.pc, expect.pc);
        EXPECT_EQ(r.dep_distance, expect.dep_distance);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Irregular, BenchmarkNames,
    ::testing::ValuesIn(workloads::irregular_spec()));
INSTANTIATE_TEST_SUITE_P(
    CloudSuite, BenchmarkNames,
    ::testing::ValuesIn(workloads::cloudsuite()));

// ---------------------------------------------------------------------
// Property: tag compressor round-trips at any width until recycling.
// ---------------------------------------------------------------------

class CompressorWidth : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(CompressorWidth, RoundTripsWithinCapacity)
{
    core::TagCompressorConfig cfg;
    cfg.id_bits = GetParam();
    core::TagCompressor tc(cfg);
    std::uint32_t n = tc.capacity();
    for (std::uint64_t t = 1; t <= n; ++t) {
        auto id = tc.compress(t * 127);
        EXPECT_EQ(tc.decompress(id), t * 127);
    }
    EXPECT_EQ(tc.recycles(), 0u);
    tc.compress(~0ULL); // one past capacity: must recycle, not corrupt
    EXPECT_EQ(tc.recycles(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompressorWidth,
                         ::testing::Values(2u, 4u, 8u, 10u));

// ---------------------------------------------------------------------
// Property: the partition controller generalizes to any size ladder
// (the paper's "time-sharing OPTgen copies" extension).
// ---------------------------------------------------------------------

class PartitionLadder
    : public ::testing::TestWithParam<std::uint32_t> // working-set /64KB
{};

TEST_P(PartitionLadder, SettlesAtSmallestSufficientSize)
{
    std::uint64_t ws_bytes = GetParam() * 64ULL * 1024;
    core::PartitionConfig cfg;
    cfg.sizes = {256 * 1024, 512 * 1024, 1024 * 1024, 2048 * 1024};
    cfg.initial_level = 4;
    cfg.epoch_accesses = 50000;
    core::PartitionController pc(cfg);
    // Uniform random reuse over a working set of ws_bytes/4 triggers.
    auto ws = static_cast<std::uint32_t>(ws_bytes / 4);
    util::Rng rng(ws);
    for (std::uint64_t i = 0; i < 10ULL * ws + 600000; ++i)
        pc.observe(rng.next_below(ws));
    // The chosen store must hold the working set...
    EXPECT_GE(pc.size_bytes(), ws_bytes / 2);
    // ...and not be more than one ladder rung above it.
    EXPECT_LE(pc.size_bytes(), ws_bytes * 4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionLadder,
                         ::testing::Values(3u, 6u, 12u, 24u));

// ---------------------------------------------------------------------
// Property: a bigger TLB never increases translation latency.
// ---------------------------------------------------------------------

class TlbSize : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(TlbSize, MoreEntriesNeverSlower)
{
    std::uint32_t l1_entries = GetParam();
    auto total_latency = [](std::uint32_t l1, std::uint32_t l2) {
        sim::Tlb tlb(l1, l2, 7, 60);
        util::Rng rng(99);
        std::uint64_t sum = 0;
        for (int i = 0; i < 20000; ++i) {
            sim::Addr page = rng.next_zipf(4096, 1.0);
            sum += tlb.access(page << 12);
        }
        return sum;
    };
    EXPECT_LE(total_latency(l1_entries * 2, 1024),
              total_latency(l1_entries, 1024));
    EXPECT_LE(total_latency(l1_entries, 2048),
              total_latency(l1_entries, 1024));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TlbSize,
                         ::testing::Values(4u, 16u, 48u));
