/**
 * @file
 * Unit tests for the prefetcher zoo: stride, Best-Offset, SMS,
 * STMS/Domino, MISB, Markov, hybrid composition.
 */
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "prefetch/best_offset.hpp"
#include "prefetch/ghb_temporal.hpp"
#include "prefetch/hybrid.hpp"
#include "prefetch/markov.hpp"
#include "prefetch/misb.hpp"
#include "prefetch/sms.hpp"
#include "prefetch/stride.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

using namespace triage;
using namespace triage::prefetch;

namespace {

/** Records every candidate; answers with a scripted outcome. */
class MockHost final : public PrefetchHost
{
  public:
    PfOutcome next_outcome = PfOutcome::IssuedToDram;
    std::vector<sim::Addr> issued;
    std::uint64_t offchip_reads = 0;
    std::uint64_t offchip_writes = 0;
    std::uint64_t onchip = 0;
    std::uint64_t capacity_requested = 0;

    PfOutcome
    issue_prefetch(unsigned, sim::Addr block, sim::Cycle,
                   Prefetcher*) override
    {
        issued.push_back(block);
        return next_outcome;
    }

    sim::Cycle llc_latency() const override { return 20; }

    void count_metadata_llc_access(unsigned, bool) override { ++onchip; }

    sim::Cycle
    offchip_metadata_access(unsigned, sim::Cycle now, std::uint32_t,
                            bool is_write, bool) override
    {
        if (is_write)
            ++offchip_writes;
        else
            ++offchip_reads;
        return now + 170;
    }

    void
    request_metadata_capacity(unsigned, std::uint64_t bytes,
                              sim::Cycle) override
    {
        capacity_requested = bytes;
    }
};

TrainEvent
miss_event(sim::Pc pc, sim::Addr block, sim::Cycle now = 0)
{
    TrainEvent ev;
    ev.pc = pc;
    ev.block = block;
    ev.now = now;
    ev.l2_hit = false;
    return ev;
}

} // namespace

// ---------------------------------------------------------------------
// Stride
// ---------------------------------------------------------------------

TEST(Stride, LearnsConstantStride)
{
    StridePrefetcher pf;
    MockHost host;
    for (int i = 0; i < 10; ++i)
        pf.train(miss_event(0x400, 100 + i * 3), host);
    ASSERT_FALSE(host.issued.empty());
    // After confidence builds, candidates are current + k*3.
    EXPECT_EQ(host.issued.back() % 3, (100u) % 3);
}

TEST(Stride, NoPrefetchOnRandomPattern)
{
    StridePrefetcher pf;
    MockHost host;
    std::uint64_t addrs[] = {5, 900, 17, 4444, 2, 777, 31, 9000};
    for (int rep = 0; rep < 4; ++rep)
        for (auto a : addrs)
            pf.train(miss_event(0x400, a), host);
    EXPECT_LT(host.issued.size(), 4u);
}

TEST(Stride, PerPcIsolation)
{
    StridePrefetcher pf;
    MockHost host;
    // Interleave two PCs with different strides; both should learn.
    for (int i = 0; i < 12; ++i) {
        pf.train(miss_event(0x400, 1000 + i * 2), host);
        pf.train(miss_event(0x500, 9000 + i * 5), host);
    }
    std::unordered_set<sim::Addr> targets(host.issued.begin(),
                                          host.issued.end());
    bool has_stride2 = false, has_stride5 = false;
    for (auto t : targets) {
        if (t > 1000 && t < 1100)
            has_stride2 = true;
        if (t > 9000 && t < 9100)
            has_stride5 = true;
    }
    EXPECT_TRUE(has_stride2);
    EXPECT_TRUE(has_stride5);
}

// ---------------------------------------------------------------------
// Best-Offset
// ---------------------------------------------------------------------

TEST(BestOffset, LearnsStreamOffset)
{
    BestOffset pf;
    MockHost host;
    // Sequential miss stream with timely fills: offset 1 should win and
    // prefetches should target block+offset.
    for (int i = 0; i < 3000; ++i) {
        sim::Addr b = 1000 + i;
        pf.train(miss_event(0x400, b), host);
        pf.on_fill(b, 0, false);
    }
    ASSERT_FALSE(host.issued.empty());
    EXPECT_GT(pf.current_offset(), 0);
    // Last prefetch is ahead of the last trigger.
    EXPECT_GT(host.issued.back(), 1000u + 2999u);
}

TEST(BestOffset, IgnoresPlainL2Hits)
{
    BestOffset pf;
    MockHost host;
    TrainEvent ev = miss_event(0x400, 5);
    ev.l2_hit = true;
    for (int i = 0; i < 100; ++i)
        pf.train(ev, host);
    EXPECT_TRUE(host.issued.empty());
}

TEST(BestOffset, TurnsOffOnRandomAccesses)
{
    BestOffsetConfig cfg;
    cfg.round_max = 10;
    BestOffset pf(cfg);
    MockHost host;
    util::Rng rng(3);
    // Random misses with no spatial structure: after enough learning
    // rounds, BO should stop prefetching (score < bad_score).
    for (int i = 0; i < 30000; ++i) {
        sim::Addr b = rng.next_u64() % (1ULL << 40);
        pf.train(miss_event(0x400, b), host);
        pf.on_fill(b, 0, false);
    }
    std::size_t before = host.issued.size();
    for (int i = 0; i < 1000; ++i) {
        sim::Addr b = rng.next_u64() % (1ULL << 40);
        pf.train(miss_event(0x400, b), host);
    }
    // Nearly no prefetching in the final phase.
    EXPECT_LT(host.issued.size() - before, 100u);
}

// ---------------------------------------------------------------------
// SMS
// ---------------------------------------------------------------------

TEST(Sms, ReplaysLearnedFootprint)
{
    Sms pf;
    MockHost host;
    // Teach a footprint: region r, offsets {0, 3, 7, 12}, trigger PC 77.
    auto touch_region = [&](sim::Addr region_base) {
        for (std::uint32_t off : {0u, 3u, 7u, 12u})
            pf.train(miss_event(77, region_base + off), host);
    };
    // Several training regions (generation must be evicted into PHT; we
    // force that by touching many other regions).
    for (int r = 0; r < 100; ++r)
        touch_region(static_cast<sim::Addr>(r) * 32);
    host.issued.clear();
    // New region, same trigger: footprint should be prefetched.
    sim::Addr base = 5000 * 32;
    pf.train(miss_event(77, base + 0), host);
    std::unordered_set<sim::Addr> targets(host.issued.begin(),
                                          host.issued.end());
    EXPECT_TRUE(targets.count(base + 3));
    EXPECT_TRUE(targets.count(base + 7));
    EXPECT_TRUE(targets.count(base + 12));
}

TEST(Sms, NoPredictionForUnknownTrigger)
{
    Sms pf;
    MockHost host;
    pf.train(miss_event(123, 999 * 32 + 4), host);
    EXPECT_TRUE(host.issued.empty());
}

// ---------------------------------------------------------------------
// STMS / Domino
// ---------------------------------------------------------------------

TEST(Stms, ReplaysMissStream)
{
    GhbTemporalConfig cfg;
    cfg.degree = 2;
    GhbTemporal pf(cfg);
    MockHost host;
    std::vector<sim::Addr> stream{10, 77, 300, 5, 42, 10, 77, 300, 5};
    // First pass trains; no useful predictions yet.
    for (int pass = 0; pass < 3; ++pass)
        for (auto a : stream)
            pf.train(miss_event(0x1, a), host);
    // After the stream recurs, the successor of 10 (=77) is prefetched.
    host.issued.clear();
    pf.train(miss_event(0x1, 10), host);
    ASSERT_FALSE(host.issued.empty());
    EXPECT_EQ(host.issued[0], 77u);
}

TEST(Stms, CountsMetadataTrafficButIdealizedTiming)
{
    GhbTemporal pf(GhbTemporalConfig{});
    MockHost host;
    for (int i = 0; i < 100; ++i)
        pf.train(miss_event(0x1, 1000 + i), host);
    EXPECT_GT(host.offchip_reads + host.offchip_writes, 100u);
}

TEST(Domino, PairIndexDisambiguates)
{
    // Two contexts share address 50: A,50,B vs C,50,D. Domino keyed on
    // pairs predicts the right successor; STMS (single index) cannot.
    GhbTemporalConfig cfg;
    cfg.mode = GhbIndexMode::AddressPair;
    GhbTemporal pf(cfg);
    MockHost host;
    std::vector<sim::Addr> stream{100, 50, 200, 999, 300, 50, 400, 888};
    for (int pass = 0; pass < 4; ++pass)
        for (auto a : stream)
            pf.train(miss_event(0x1, a), host);
    host.issued.clear();
    pf.train(miss_event(0x1, 100), host); // context A
    pf.train(miss_event(0x1, 50), host);  // pair (100,50) -> 200
    ASSERT_FALSE(host.issued.empty());
    EXPECT_EQ(host.issued.back(), 200u);
}

// ---------------------------------------------------------------------
// MISB
// ---------------------------------------------------------------------

TEST(Misb, LearnsPcLocalizedCorrelation)
{
    Misb pf;
    MockHost host;
    std::vector<sim::Addr> stream{7, 19, 123, 7000, 42};
    for (int pass = 0; pass < 4; ++pass)
        for (auto a : stream)
            pf.train(miss_event(0x400, a), host);
    host.issued.clear();
    pf.train(miss_event(0x400, 7), host);
    ASSERT_FALSE(host.issued.empty());
    EXPECT_EQ(host.issued[0], 19u);
}

TEST(Misb, InterleavedPcsStayLocalized)
{
    Misb pf;
    MockHost host;
    // PC A walks 10,11,12...; PC B walks 1000,2000,...; interleaved.
    for (int pass = 0; pass < 4; ++pass) {
        for (int i = 0; i < 8; ++i) {
            pf.train(miss_event(0xA, 10 + i), host);
            pf.train(miss_event(0xB, 1000 * (i + 1)), host);
        }
    }
    host.issued.clear();
    pf.train(miss_event(0xB, 1000), host);
    ASSERT_FALSE(host.issued.empty());
    EXPECT_EQ(host.issued[0], 2000u);
}

TEST(Misb, GeneratesOffchipMetadataTraffic)
{
    Misb pf;
    MockHost host;
    util::Rng rng(5);
    // A large irregular working set overflows the 48 KB on-chip caches.
    std::vector<sim::Addr> seq;
    for (int i = 0; i < 30000; ++i)
        seq.push_back(util::mix64(i) % 100000);
    for (int pass = 0; pass < 2; ++pass)
        for (auto a : seq)
            pf.train(miss_event(0x400, a), host);
    EXPECT_GT(host.offchip_reads, 1000u);
    EXPECT_GT(host.offchip_writes, 1000u);
}

TEST(Misb, BloomFilterSuppressesUntrackedLookups)
{
    Misb pf;
    MockHost host;
    // Untrained addresses never touch off-chip metadata on the predict
    // path (only training-unit bootstrapping happens).
    pf.train(miss_event(0x400, 42), host);
    std::uint64_t reads = host.offchip_reads;
    pf.train(miss_event(0x500, 4242), host);
    EXPECT_EQ(host.offchip_reads, reads);
}

// ---------------------------------------------------------------------
// Markov
// ---------------------------------------------------------------------

TEST(Markov, GlobalSuccessorPrediction)
{
    Markov pf;
    MockHost host;
    std::vector<sim::Addr> stream{1, 2, 3, 1, 2, 3, 1, 2, 3};
    for (auto a : stream)
        pf.train(miss_event(0x400, a), host);
    host.issued.clear();
    pf.train(miss_event(0x400, 1), host);
    ASSERT_FALSE(host.issued.empty());
    EXPECT_EQ(host.issued[0], 2u);
}

TEST(Markov, TracksTwoSuccessors)
{
    Markov pf;
    MockHost host;
    // 1 is followed alternately by 2 and 3.
    std::vector<sim::Addr> stream{1, 2, 9, 1, 3, 9, 1, 2, 9, 1, 3, 9};
    for (auto a : stream)
        pf.train(miss_event(0x400, a), host);
    host.issued.clear();
    pf.train(miss_event(0x400, 1), host);
    std::unordered_set<sim::Addr> targets(host.issued.begin(),
                                          host.issued.end());
    EXPECT_TRUE(targets.count(2));
    EXPECT_TRUE(targets.count(3));
}

// ---------------------------------------------------------------------
// Hybrid
// ---------------------------------------------------------------------

TEST(Hybrid, TrainsAllChildrenAndAggregatesStats)
{
    std::vector<std::unique_ptr<Prefetcher>> children;
    children.push_back(std::make_unique<Markov>());
    children.push_back(std::make_unique<Markov>());
    Hybrid h(std::move(children));
    MockHost host;
    std::vector<sim::Addr> stream{1, 2, 1, 2, 1, 2};
    for (auto a : stream)
        h.train(miss_event(0x400, a), host);
    EXPECT_EQ(h.name(), "markov+markov");
    auto s = h.snapshot();
    EXPECT_GT(s.candidates, 0u);
    // Both children predicted: aggregate candidates are doubled.
    EXPECT_EQ(s.candidates % 2, 0u);
}

TEST(Hybrid, ClearStatsClearsChildren)
{
    std::vector<std::unique_ptr<Prefetcher>> children;
    children.push_back(std::make_unique<Markov>());
    Hybrid h(std::move(children));
    MockHost host;
    for (sim::Addr a : {1, 2, 1, 2, 1, 2})
        h.train(miss_event(0x400, a), host);
    h.clear_stats();
    EXPECT_EQ(h.snapshot().candidates, 0u);
    EXPECT_EQ(h.snapshot().train_events, 0u);
}
