/**
 * @file
 * White-box tests of prefetcher internals: Best-Offset's learning
 * rounds, SMS generation lifecycle, GHB wraparound, the metadata
 * Hawkeye's aging/victim behaviour, and stride confidence dynamics.
 */
#include <gtest/gtest.h>

#include <unordered_set>

#include "prefetch/best_offset.hpp"
#include "prefetch/ghb_temporal.hpp"
#include "prefetch/sms.hpp"
#include "prefetch/stride.hpp"
#include "triage/meta_repl.hpp"
#include "util/rng.hpp"

using namespace triage;
using namespace triage::prefetch;

namespace {

class Host final : public PrefetchHost
{
  public:
    std::vector<sim::Addr> issued;

    PfOutcome
    issue_prefetch(unsigned, sim::Addr block, sim::Cycle,
                   Prefetcher*) override
    {
        issued.push_back(block);
        return PfOutcome::IssuedToDram;
    }
    sim::Cycle llc_latency() const override { return 20; }
    void count_metadata_llc_access(unsigned, bool) override {}
    sim::Cycle
    offchip_metadata_access(unsigned, sim::Cycle now, std::uint32_t,
                            bool, bool) override
    {
        return now;
    }
    void request_metadata_capacity(unsigned, std::uint64_t,
                                   sim::Cycle) override
    {}
};

TrainEvent
miss(sim::Pc pc, sim::Addr block)
{
    TrainEvent ev;
    ev.pc = pc;
    ev.block = block;
    ev.l2_hit = false;
    return ev;
}

} // namespace

// ---------------------------------------------------------------------
// Best-Offset internals
// ---------------------------------------------------------------------

TEST(BestOffsetInternals, SwitchesOffsetWhenPatternChanges)
{
    BestOffsetConfig cfg;
    cfg.score_max = 12; // fast learning phases for the test
    cfg.bad_score = 4;
    BestOffset pf(cfg);
    Host host;
    // Phase 1: stride 1.
    for (int i = 0; i < 2000; ++i) {
        sim::Addr b = 1000 + i;
        pf.train(miss(0x4, b), host);
        pf.on_fill(b, 0, false);
    }
    // Any small offset is timely for a unit-stride stream (X-1, X-2,
    // ... are all in the recent-requests table).
    EXPECT_GT(pf.current_offset(), 0);
    EXPECT_LE(pf.current_offset(), 6);
    // Phase 2: stride 4 — BO must migrate its offset.
    for (int i = 0; i < 4000; ++i) {
        sim::Addr b = 100000 + static_cast<sim::Addr>(i) * 4;
        pf.train(miss(0x4, b), host);
        pf.on_fill(b, 0, false);
    }
    EXPECT_EQ(pf.current_offset() % 4, 0);
}

TEST(BestOffsetInternals, PrefetchedFillsTrainTheOffsetBase)
{
    // When a prefetched line fills, BO inserts (X - D) into the RR
    // table; a subsequent trigger at X scores offset D.
    BestOffsetConfig cfg;
    cfg.score_max = 6;
    cfg.bad_score = 2;
    BestOffset pf(cfg);
    Host host;
    for (int i = 0; i < 3000; ++i) {
        sim::Addr b = 5000 + i;
        pf.train(miss(0x4, b), host);
        pf.on_fill(b, 0, /*was_prefetch=*/i % 2 == 0);
    }
    EXPECT_GT(pf.current_offset(), 0);
}

// ---------------------------------------------------------------------
// SMS generation lifecycle
// ---------------------------------------------------------------------

TEST(SmsInternals, SingleBlockGenerationsAreNotRemembered)
{
    Sms pf;
    Host host;
    // Touch each region exactly once (single-block footprints).
    for (int r = 0; r < 200; ++r)
        pf.train(miss(0x9, static_cast<sim::Addr>(r) * 32 + 5), host);
    host.issued.clear();
    // A new region with the same trigger signature must not predict.
    pf.train(miss(0x9, 9999 * 32 + 5), host);
    EXPECT_TRUE(host.issued.empty());
}

TEST(SmsInternals, PatternKeyedByTriggerOffset)
{
    Sms pf;
    Host host;
    // Same PC, different trigger offsets produce distinct patterns.
    auto teach = [&](std::uint32_t off, std::uint32_t other) {
        for (int r = 0; r < 80; ++r) {
            sim::Addr base = static_cast<sim::Addr>(1000 + r) * 32;
            pf.train(miss(0x9, base + off), host);
            pf.train(miss(0x9, base + other), host);
        }
    };
    teach(1, 9);
    teach(2, 17);
    host.issued.clear();
    pf.train(miss(0x9, 5555 * 32 + 1), host); // trigger offset 1
    std::unordered_set<sim::Addr> t1(host.issued.begin(),
                                     host.issued.end());
    EXPECT_TRUE(t1.count(5555 * 32 + 9));
    EXPECT_FALSE(t1.count(5555 * 32 + 17));
}

// ---------------------------------------------------------------------
// GHB wraparound
// ---------------------------------------------------------------------

TEST(GhbInternals, OldEntriesExpireAfterWraparound)
{
    GhbTemporalConfig cfg;
    cfg.ghb_entries = 256; // tiny buffer to force wraparound
    GhbTemporal pf(cfg);
    Host host;
    // Teach a pair, then push it out of the buffer.
    pf.train(miss(0x1, 42), host);
    pf.train(miss(0x1, 43), host);
    for (sim::Addr a = 10000; a < 10000 + 300; ++a)
        pf.train(miss(0x1, a), host);
    host.issued.clear();
    pf.train(miss(0x1, 42), host);
    // The successor 43 fell out of the 256-entry history.
    for (auto b : host.issued)
        EXPECT_NE(b, 43u);
}

TEST(GhbInternals, HistoryLengthCounts)
{
    GhbTemporal pf(GhbTemporalConfig{});
    Host host;
    for (int i = 0; i < 100; ++i)
        pf.train(miss(0x1, 7000 + i), host);
    EXPECT_EQ(pf.history_length(), 100u);
}

// ---------------------------------------------------------------------
// Metadata Hawkeye aging and victims
// ---------------------------------------------------------------------

TEST(MetaHawkeyeInternals, AversePcEvictedFirst)
{
    core::MetaHawkeye repl(64, 4, /*sampled_sets=*/64);
    // Train PC 0xGOOD positively and 0xBAD negatively via sampling:
    // GOOD's keys recur inside the OPTgen window (hits), BAD's recur
    // far beyond it (misses train the predictor down).
    for (int i = 0; i < 400; ++i) {
        repl.on_miss(0, 500 + (i % 2), 0xd00d, true);
        repl.on_miss(0, 20000 + (i % 40), 0xbad, true);
    }
    // Fill a set: three GOOD entries, one BAD entry.
    repl.on_insert(1, 0, 1, 0xd00d);
    repl.on_insert(1, 1, 2, 0xbad);
    repl.on_insert(1, 2, 3, 0xd00d);
    repl.on_insert(1, 3, 4, 0xd00d);
    EXPECT_EQ(repl.victim(1), 1u); // the averse-PC way
}

TEST(MetaHawkeyeInternals, VictimAmongFriendlyDetrains)
{
    core::MetaHawkeye repl(64, 2, 64);
    for (int i = 0; i < 100; ++i)
        repl.on_miss(0, 600 + (i % 2), 0xaaaa, true);
    auto before = repl.predictor().counter(0xaaaa);
    repl.on_insert(1, 0, 1, 0xaaaa);
    repl.on_insert(1, 1, 2, 0xaaaa);
    repl.victim(1); // all friendly: eviction must detrain the PC
    EXPECT_LT(repl.predictor().counter(0xaaaa), before);
}

// ---------------------------------------------------------------------
// Stride confidence dynamics
// ---------------------------------------------------------------------

TEST(StrideInternals, ConfidenceDecaysBeforeRetraining)
{
    StridePrefetcher pf;
    Host host;
    // Build confidence on stride 2...
    for (int i = 0; i < 8; ++i)
        pf.train(miss(0x8, 100 + i * 2), host);
    std::size_t confident_count = host.issued.size();
    EXPECT_GT(confident_count, 0u);
    // ...one noise access must not immediately retrain to the noise
    // delta (confidence decays first).
    pf.train(miss(0x8, 5000), host);
    host.issued.clear();
    pf.train(miss(0x8, 5003), host);
    EXPECT_TRUE(host.issued.empty()); // not yet confident on delta 3
}

TEST(StrideInternals, SameLineAccessesCarryNoSignal)
{
    StridePrefetcher pf;
    Host host;
    for (int i = 0; i < 20; ++i)
        pf.train(miss(0x8, 777), host); // same block repeatedly
    EXPECT_TRUE(host.issued.empty());
}
