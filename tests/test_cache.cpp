/**
 * @file
 * Unit tests for the set-associative cache and the memory hierarchy.
 */
#include <gtest/gtest.h>

#include <random>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "replacement/lru.hpp"
#include "sim/config.hpp"

using namespace triage;

namespace {

cache::SetAssocCache
make_cache(std::uint64_t size, std::uint32_t assoc)
{
    std::uint32_t sets =
        static_cast<std::uint32_t>(size / (sim::BLOCK_SIZE * assoc));
    return cache::SetAssocCache(
        {"test", size, assoc},
        std::make_unique<replacement::Lru>(sets, assoc));
}

} // namespace

TEST(Cache, MissThenHit)
{
    auto c = make_cache(4096, 4);
    EXPECT_FALSE(c.access(1, 100, 0, false).hit);
    c.insert(1, 100, 0, false, false);
    EXPECT_TRUE(c.access(1, 100, 10, false).hit);
    EXPECT_EQ(c.stats().demand_hits, 1u);
    EXPECT_EQ(c.stats().demand_misses, 1u);
}

TEST(Cache, LruEvictsOldest)
{
    auto c = make_cache(4096, 4); // 16 sets
    // Fill one set (blocks that map to set 0: multiples of 16).
    for (sim::Addr b = 0; b < 5 * 16; b += 16)
        c.insert(b, 1, 0, false, false);
    // Set has 4 ways; inserting 5 blocks evicted block 0.
    EXPECT_FALSE(c.access(0, 1, 0, false).hit);
    EXPECT_TRUE(c.access(16, 1, 0, false).hit);
    EXPECT_TRUE(c.access(64, 1, 0, false).hit);
}

TEST(Cache, WriteMakesDirtyAndEvictionReportsIt)
{
    auto c = make_cache(4096, 2); // 32 sets
    c.insert(0, 1, 0, false, false);
    c.access(0, 1, 0, true); // write
    c.insert(32, 1, 0, false, false);
    auto ev = c.insert(64, 1, 0, false, false); // evicts LRU (block 0)
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.block, 0u);
    EXPECT_TRUE(ev.dirty);
}

TEST(Cache, PrefetchBitConsumedOnFirstDemandTouch)
{
    auto c = make_cache(4096, 4);
    c.insert(7, 1, 0, false, true);
    auto r1 = c.access(7, 1, 0, false);
    EXPECT_TRUE(r1.hit);
    EXPECT_TRUE(r1.first_prefetch_use);
    auto r2 = c.access(7, 1, 0, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_FALSE(r2.first_prefetch_use);
    EXPECT_EQ(c.stats().prefetch_hits, 1u);
}

TEST(Cache, LatePrefetchDetected)
{
    auto c = make_cache(4096, 4);
    c.insert(9, 1, /*ready_time=*/500, false, true);
    auto r = c.access(9, 1, /*now=*/100, false);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.late_prefetch);
    EXPECT_EQ(c.stats().late_prefetch_hits, 1u);
}

TEST(Cache, PrefetchProbeKeepsPrefetchBit)
{
    auto c = make_cache(4096, 4);
    c.insert(7, 1, 0, false, true);
    auto probe = c.access(7, 1, 0, false, /*is_prefetch_probe=*/true);
    EXPECT_TRUE(probe.hit);
    EXPECT_EQ(c.stats().pf_probe_hits, 1u);
    auto demand = c.access(7, 1, 0, false);
    EXPECT_TRUE(demand.first_prefetch_use);
}

TEST(Cache, InvalidateRemovesLine)
{
    auto c = make_cache(4096, 4);
    c.insert(3, 1, 0, false, false);
    EXPECT_TRUE(c.invalidate(3));
    EXPECT_FALSE(c.invalidate(3));
    EXPECT_FALSE(c.access(3, 1, 0, false).hit);
}

TEST(Cache, WayPartitionShrinkInvalidatesAndCountsDirty)
{
    auto c = make_cache(4096, 4); // 16 sets x 4 ways
    // Fill everything, make some lines dirty.
    for (sim::Addr b = 0; b < 64; ++b)
        c.insert(b, 1, 0, (b % 2) == 0, false);
    EXPECT_EQ(c.valid_lines(), 64u);
    std::uint64_t flushed = 0;
    c.set_data_ways(2, &flushed);
    EXPECT_EQ(c.data_ways(), 2u);
    EXPECT_EQ(c.valid_lines(), 32u);
    EXPECT_GT(flushed, 0u);
    // New insertions only use the first 2 ways.
    for (sim::Addr b = 100; b < 164; ++b)
        c.insert(b, 1, 0, false, false);
    EXPECT_LE(c.valid_lines(), 32u);
}

TEST(Cache, WayPartitionGrowRestoresCapacity)
{
    auto c = make_cache(4096, 4);
    c.set_data_ways(2);
    for (sim::Addr b = 0; b < 64; ++b)
        c.insert(b, 1, 0, false, false);
    c.set_data_ways(4);
    for (sim::Addr b = 0; b < 64; ++b)
        c.insert(b, 1, 0, false, false);
    EXPECT_EQ(c.valid_lines(), 64u);
}

TEST(Cache, WayPartitionShrinkReportsExactDirtyCount)
{
    auto c = make_cache(4096, 4); // 16 sets x 4 ways
    // Fill all 64 lines; blocks land way 0..3 in fill order within a
    // set, so ways 2 and 3 of set s hold blocks 32+s and 48+s.
    for (sim::Addr b = 0; b < 64; ++b)
        c.insert(b, 1, 0, b >= 32, false); // ways 2-3 dirty everywhere
    std::uint64_t flushed = ~0ull;
    c.set_data_ways(2, &flushed);
    EXPECT_EQ(flushed, 32u); // exactly the 32 dirty lines in ways 2-3
    EXPECT_EQ(c.valid_lines(), 32u);
    // Growing back reports zero flushes.
    c.set_data_ways(4, &flushed);
    EXPECT_EQ(flushed, 0u);
}

TEST(Cache, WayPartitionShrinkInvalidatesReplacementState)
{
    auto c = make_cache(4096, 4);
    for (sim::Addr b = 0; b < 64; ++b)
        c.insert(b, 1, 0, false, false);
    c.set_data_ways(2);
    c.set_data_ways(4);
    // The reclaimed ways were invalidated (tags and LRU stamps): new
    // fills must reuse them instead of evicting the surviving lines.
    const std::uint64_t evictions_before = c.stats().evictions;
    for (sim::Addr b = 100; b < 132; ++b)
        c.insert(b, 1, 0, false, false);
    EXPECT_EQ(c.stats().evictions, evictions_before);
    EXPECT_EQ(c.valid_lines(), 64u);
    // The survivors from before the repartition are still resident.
    for (sim::Addr b = 0; b < 32; ++b)
        EXPECT_TRUE(c.contains(b)) << "block " << b;
}

TEST(Cache, LiveLineCounterMatchesScanUnderRandomizedOps)
{
    auto c = make_cache(4096, 4); // 16 sets x 4 ways
    std::mt19937_64 rng(7);
    const std::uint32_t way_plan[] = {4, 2, 3, 1, 4};
    for (std::uint32_t ways : way_plan) {
        c.set_data_ways(ways);
        ASSERT_EQ(c.valid_lines(), c.count_valid_lines_slow());
        for (int i = 0; i < 400; ++i) {
            sim::Addr b = rng() % 128;
            switch (rng() % 4) {
              case 0:
              case 1:
                c.insert(b, 1, 0, (rng() & 1) != 0, (rng() & 1) != 0);
                break;
              case 2:
                c.invalidate(b);
                break;
              default:
                c.access(b, 1, 0, (rng() & 1) != 0);
                break;
            }
            ASSERT_EQ(c.valid_lines(), c.count_valid_lines_slow());
        }
    }
}

TEST(Cache, ReinsertionRefreshesInsteadOfDuplicating)
{
    auto c = make_cache(4096, 4);
    c.insert(5, 1, 100, false, false);
    c.insert(5, 1, 50, true, false);
    EXPECT_EQ(c.valid_lines(), 1u);
    auto line = c.peek(5);
    ASSERT_TRUE(line.has_value());
    EXPECT_TRUE(line->dirty);
    EXPECT_EQ(line->ready_time, 50u);
}

// ---------------------------------------------------------------------
// MemorySystem (hierarchy) tests.
// ---------------------------------------------------------------------

TEST(Hierarchy, LatenciesFollowTable1)
{
    sim::MachineConfig cfg;
    cfg.l1_stride_prefetcher = false;
    cache::MemorySystem mem(cfg, 1);

    // Cold miss goes to DRAM: >= LLC latency + DRAM latency.
    sim::Cycle t0 = mem.access(0, 0x400, 0x10000, false, 1000);
    EXPECT_GE(t0, 1000u + cfg.llc.latency + cfg.dram_latency);

    // Now resident everywhere: L1 hit at +3.
    sim::Cycle t1 = mem.access(0, 0x400, 0x10000, false, 200000);
    EXPECT_EQ(t1, 200000u + cfg.l1d.latency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    sim::MachineConfig cfg;
    cfg.l1_stride_prefetcher = false;
    cache::MemorySystem mem(cfg, 1);
    mem.access(0, 0x400, 0, false, 0);
    // Evict block 0 from L1 by filling its set (L1: 64KB/4way = 256
    // sets; same set needs block addresses congruent mod 256).
    for (int i = 1; i <= 4; ++i)
        mem.access(0, 0x400, static_cast<sim::Addr>(i) * 256 * 64, false,
                   100000 + i * 1000);
    sim::Cycle t = mem.access(0, 0x400, 0, false, 900000);
    EXPECT_EQ(t, 900000u + cfg.l2.latency);
}

TEST(Hierarchy, DemandMergesWithPendingFill)
{
    sim::MachineConfig cfg;
    cfg.l1_stride_prefetcher = false;
    cache::MemorySystem mem(cfg, 1);
    sim::Cycle done = mem.access(0, 0x400, 0x40000, false, 100);
    // Re-access while the fill is still in flight: completion must not
    // exceed the original fill time, and must not be a fresh miss.
    sim::Cycle t2 = mem.access(0, 0x400, 0x40000, false, 110);
    EXPECT_LE(t2, done);
    EXPECT_GE(t2, 110u);
}

TEST(Hierarchy, PartitionRequestChangesLlcWays)
{
    sim::MachineConfig cfg;
    cache::MemorySystem mem(cfg, 1);
    EXPECT_EQ(mem.llc().data_ways(), cfg.llc.assoc);
    mem.request_metadata_capacity(0, 1024 * 1024, 0);
    // 1 MB of a 2 MB 16-way LLC = 8 ways.
    EXPECT_EQ(mem.metadata_ways(), 8u);
    EXPECT_EQ(mem.llc().data_ways(), 8u);
    mem.request_metadata_capacity(0, 0, 100);
    EXPECT_EQ(mem.metadata_ways(), 0u);
}

TEST(Hierarchy, MetadataCapacityCappedAtHalf)
{
    sim::MachineConfig cfg;
    cache::MemorySystem mem(cfg, 1);
    mem.request_metadata_capacity(0, 10 * 1024 * 1024, 0);
    EXPECT_EQ(mem.metadata_ways(), cfg.llc.assoc / 2);
}

TEST(Hierarchy, PerCorePartitionsAggregate)
{
    sim::MachineConfig cfg;
    cache::MemorySystem mem(cfg, 4); // 8 MB shared LLC, way = 512 KB
    mem.request_metadata_capacity(0, 1024 * 1024, 0);
    mem.request_metadata_capacity(1, 512 * 1024, 0);
    // 1.5 MB over 512 KB ways = 3 ways.
    EXPECT_EQ(mem.metadata_ways(), 3u);
}

TEST(Hierarchy, TrafficAccountedPerClass)
{
    sim::MachineConfig cfg;
    cfg.l1_stride_prefetcher = false;
    cache::MemorySystem mem(cfg, 1);
    for (int i = 0; i < 100; ++i)
        mem.access(0, 0x400, static_cast<sim::Addr>(i) * 64, false,
                   static_cast<sim::Cycle>(i) * 1000);
    EXPECT_EQ(mem.dram().traffic().of(sim::TrafficClass::DemandRead),
              100 * sim::BLOCK_SIZE);
    EXPECT_EQ(mem.dram().traffic().of(sim::TrafficClass::PrefetchRead),
              0u);
}

TEST(Hierarchy, DirtyDataEventuallyWritesBack)
{
    sim::MachineConfig cfg;
    cfg.l1_stride_prefetcher = false;
    cache::MemorySystem mem(cfg, 1);
    // Write a footprint far larger than the whole hierarchy, then
    // stream over fresh lines to force dirty evictions to DRAM.
    for (int i = 0; i < 200000; ++i) {
        mem.access(0, 0x400, static_cast<sim::Addr>(i) * 64, true,
                   static_cast<sim::Cycle>(i) * 20);
    }
    EXPECT_GT(mem.dram().traffic().of(sim::TrafficClass::Writeback), 0u);
}

TEST(Hierarchy, ExtraLlcLatencyLengthensMissPath)
{
    auto run = [](std::uint32_t extra) {
        sim::MachineConfig cfg;
        cfg.l1_stride_prefetcher = false;
        cfg.llc_extra_latency = extra;
        cache::MemorySystem mem(cfg, 1);
        return mem.access(0, 0x400, 0x99000, false, 1000);
    };
    EXPECT_EQ(run(6), run(0) + 6);
}

TEST(Hierarchy, IssuePrefetchOutcomes)
{
    sim::MachineConfig cfg;
    cfg.l1_stride_prefetcher = false;
    cache::MemorySystem mem(cfg, 1);
    // Cold block: prefetch goes to DRAM.
    EXPECT_EQ(mem.issue_prefetch(0, 0x500, 100, nullptr),
              prefetch::PfOutcome::IssuedToDram);
    // Already in L2 now: redundant.
    EXPECT_EQ(mem.issue_prefetch(0, 0x500, 200, nullptr),
              prefetch::PfOutcome::RedundantL2);
    // Present only in LLC (evict from L2 by filling its set: L2 has
    // 1024 sets, 8 ways).
    for (int i = 1; i <= 8; ++i) {
        mem.access(0, 0x400,
                   (0x500 + static_cast<sim::Addr>(i) * 1024) * 64,
                   false, 300 + i * 400);
    }
    EXPECT_EQ(mem.issue_prefetch(0, 0x500, 10000, nullptr),
              prefetch::PfOutcome::FilledFromLlc);
}

TEST(Hierarchy, PrefetchDroppedUnderBandwidthSaturation)
{
    sim::MachineConfig cfg;
    cfg.l1_stride_prefetcher = false;
    cfg.dram_prefetch_queue_limit = 2;
    cache::MemorySystem mem(cfg, 1);
    // Saturate the channels with demands at one instant.
    for (int i = 0; i < 256; ++i)
        mem.access(0, 0x400, static_cast<sim::Addr>(i) * 64, false, 500);
    bool dropped = false;
    for (int i = 0; i < 8; ++i) {
        if (mem.issue_prefetch(0, 0x900000 + i, 500, nullptr) ==
            prefetch::PfOutcome::DroppedBandwidth)
            dropped = true;
    }
    EXPECT_TRUE(dropped);
}

TEST(Hierarchy, ClearStatsResetsCountersNotContents)
{
    sim::MachineConfig cfg;
    cfg.l1_stride_prefetcher = false;
    cache::MemorySystem mem(cfg, 1);
    mem.access(0, 0x400, 0x2000, false, 10);
    mem.clear_stats(1000);
    EXPECT_EQ(mem.l1(0).stats().demand_accesses(), 0u);
    EXPECT_EQ(mem.dram().traffic().total(), 0u);
    // Contents survive: the block is still a hit.
    sim::Cycle t = mem.access(0, 0x400, 0x2000, false, 100000);
    EXPECT_EQ(t, 100000u + cfg.l1d.latency);
}

TEST(Hierarchy, StridePrefetcherCoversStreams)
{
    sim::MachineConfig cfg; // stride on
    cache::MemorySystem mem(cfg, 1);
    sim::Cycle now = 0;
    for (int i = 0; i < 4000; ++i) {
        mem.access(0, 0x400, static_cast<sim::Addr>(i) * 64, false, now);
        now += 50;
    }
    ASSERT_NE(mem.l1_stride(0), nullptr);
    EXPECT_GT(mem.l1_stride(0)->stats().useful, 1000u);
}

// -------------------------------------------------------------- MshrQueue

#include <set>

#include "cache/mshr_queue.hpp"
#include "util/rng.hpp"

TEST(MshrQueue, MatchesMultisetUnderRandomTraffic)
{
    // The queue replaced a std::multiset; drive both with the same
    // near-monotonic completion stream (the DRAM shape: mostly
    // increasing, bounded reordering) and random drains.
    util::Rng rng(0x6d736872); // "mshr"
    cache::MshrQueue q;
    std::multiset<sim::Cycle> ref;
    sim::Cycle clock = 0;
    for (int op = 0; op < 50000; ++op) {
        switch (rng.next_below(4)) {
        case 0:
        case 1: { // insert a completion near the clock
            const sim::Cycle c = clock + rng.next_below(400);
            q.insert(c);
            ref.insert(c);
            break;
        }
        case 2: { // batched drain at the advancing clock
            clock += rng.next_below(100);
            q.retire_until(clock);
            while (!ref.empty() && *ref.begin() <= clock)
                ref.erase(ref.begin());
            break;
        }
        default: // claim-style pop of the earliest completion
            if (!ref.empty()) {
                EXPECT_EQ(q.front(), *ref.begin());
                q.pop_front();
                ref.erase(ref.begin());
            }
            break;
        }
        ASSERT_EQ(q.size(), ref.size()) << "op " << op;
        ASSERT_EQ(q.empty(), ref.empty());
        if (!ref.empty())
            ASSERT_EQ(q.front(), *ref.begin()) << "op " << op;
    }
}

TEST(MshrQueue, DuplicateCompletionsAllowed)
{
    cache::MshrQueue q;
    q.insert(10);
    q.insert(10);
    q.insert(10);
    EXPECT_EQ(q.size(), 3u);
    q.retire_until(9);
    EXPECT_EQ(q.size(), 3u);
    q.retire_until(10);
    EXPECT_TRUE(q.empty());
}

TEST(MshrQueue, CompactionPreservesOrder)
{
    // Push the head index past the lazy-compaction threshold while
    // keeping live entries, then verify order survives the memmove.
    cache::MshrQueue q;
    for (sim::Cycle c = 0; c < 600; ++c)
        q.insert(c);
    q.insert(1000);
    q.insert(999);
    q.retire_until(599); // drains 600, head well past the threshold
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front(), 999u);
    q.pop_front();
    EXPECT_EQ(q.front(), 1000u);
    q.pop_front();
    EXPECT_TRUE(q.empty());
}

TEST(MshrQueue, CheckpointRoundTripsLiveRange)
{
    cache::MshrQueue q;
    for (sim::Cycle c : {5u, 3u, 9u, 3u, 7u})
        q.insert(c);
    q.retire_until(3); // head past the duplicate 3s
    sim::Snapshot save;
    q.checkpoint(save);
    const sim::SnapshotBlob blob = save.seal(1, "mshr-test");

    cache::MshrQueue r;
    r.insert(1); // stale state the load must replace
    sim::Snapshot load =
        sim::Snapshot::open_or_die(blob, 1, "mshr-test");
    r.checkpoint(load);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.front(), 5u);
    r.pop_front();
    EXPECT_EQ(r.front(), 7u);
    r.pop_front();
    EXPECT_EQ(r.front(), 9u);
}
